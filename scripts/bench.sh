#!/usr/bin/env bash
# bench.sh — run the combination-pipeline benchmarks and emit
# BENCH_combine.json with ns/op and allocs/op for the local combine
# (serial reference vs sharded, at 1/4/8 threads) and the global combine
# (legacy decode-both-reencode tree vs sharded decode-once streamed tree
# on a 4-rank in-process world) and the per-codec global combine
# (none/flate/block over a real TCP world, recording raw and on-wire bytes
# per op alongside ns/op), then run the execution-engine benchmarks
# (static vs work-stealing schedule on skewed and uniform workloads) and
# emit BENCH_schedule.json with ns/op plus the per-run steal and batch
# counters. Both files record the host's core count: engine speedups only
# materialize with more cores than one. Then run the observability
# benchmarks (scheduler overhead with tracing off/on/flight-recorded, plus
# the raw span-record costs) and emit BENCH_obs.json — the "disabled path
# stays zero-overhead" record for the tracing subsystem. Then run the
# reduction-store ablation (the same iterative map phase under the gomap
# baseline and the arena store) and emit BENCH_mapphase.json with ns/op,
# allocs/op, and bytes/op — the allocation record for SchedArgs.MapImpl.
# Lastly run the streaming-layer benchmarks (one fired tumbling window per
# op: warm reseed vs per-window scheduler rebuild vs the bare operator
# layer) and emit BENCH_stream.json with ns/op, allocs/op, windows/sec, and
# the mean per-window firing latency — the amortization record for
# RunWindowContext.
#
# Usage: scripts/bench.sh [output.json]
#   BENCHTIME=2s scripts/bench.sh   # longer, more stable timings
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_combine.json}"
benchtime="${BENCHTIME:-0.5s}"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test ./internal/core/ -run '^$' -bench 'BenchmarkLocalCombine|BenchmarkGlobalCombine|BenchmarkCombineCodec' \
  -benchtime "$benchtime" | tee "$raw"

awk -v cores="$(nproc 2>/dev/null || echo 1)" -v benchtime="$benchtime" '
/^Benchmark(Local|Global)Combine|^BenchmarkCombineCodec/ {
    name = $1
    sub(/-[0-9]+$/, "", name)            # strip the -GOMAXPROCS suffix
    ns = ""; allocs = ""; rawb = ""; wireb = ""
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op")        ns = $(i - 1)
        if ($i == "allocs/op")    allocs = $(i - 1)
        if ($i == "rawbytes/op")  rawb = $(i - 1)
        if ($i == "wirebytes/op") wireb = $(i - 1)
    }
    if (ns != "" && allocs != "") {
        if (rawb != "" && wireb != "") {
            # Codec benchmarks also record bytes handed to the sockets before
            # and after encoding, so the file pins the compression ratio.
            entries[++n] = sprintf("    \"%s\": {\"ns_per_op\": %s, \"allocs_per_op\": %s, \"raw_bytes_per_op\": %s, \"wire_bytes_per_op\": %s}",
                                   name, ns, allocs, rawb, wireb)
        } else {
            entries[++n] = sprintf("    \"%s\": {\"ns_per_op\": %s, \"allocs_per_op\": %s}", name, ns, allocs)
        }
    }
}
END {
    printf "{\n"
    printf "  \"cores\": %s,\n", cores
    printf "  \"benchtime\": \"%s\",\n", benchtime
    printf "  \"results\": {\n"
    for (i = 1; i <= n; i++) printf "%s%s\n", entries[i], (i < n ? "," : "")
    printf "  }\n"
    printf "}\n"
}' "$raw" > "$out"

echo "wrote $out"

sched_out="BENCH_schedule.json"
go test ./internal/core/ -run '^$' -bench 'BenchmarkEngine' \
  -benchtime "$benchtime" | tee "$raw"

awk -v cores="$(nproc 2>/dev/null || echo 1)" -v benchtime="$benchtime" '
/^BenchmarkEngine/ {
    name = $1
    sub(/-[0-9]+$/, "", name)            # strip the -GOMAXPROCS suffix
    ns = ""; steals = ""; batches = ""
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op")       ns = $(i - 1)
        if ($i == "steals/run")  steals = $(i - 1)
        if ($i == "batches/run") batches = $(i - 1)
    }
    if (ns != "") {
        entries[++n] = sprintf("    \"%s\": {\"ns_per_op\": %s, \"steals_per_run\": %s, \"batches_per_run\": %s}",
                               name, ns, steals == "" ? 0 : steals, batches == "" ? 0 : batches)
    }
}
END {
    printf "{\n"
    printf "  \"cores\": %s,\n", cores
    printf "  \"benchtime\": \"%s\",\n", benchtime
    printf "  \"results\": {\n"
    for (i = 1; i <= n; i++) printf "%s%s\n", entries[i], (i < n ? "," : "")
    printf "  }\n"
    printf "}\n"
}' "$raw" > "$sched_out"

echo "wrote $sched_out"

obs_out="BENCH_obs.json"
{
  go test ./internal/core/ -run '^$' -bench 'BenchmarkSchedObs' -benchtime "$benchtime"
  go test ./internal/obs/ -run '^$' -bench 'BenchmarkRecordSpan' -benchtime "$benchtime"
} | tee "$raw"

awk -v cores="$(nproc 2>/dev/null || echo 1)" -v benchtime="$benchtime" '
/^Benchmark(SchedObs|RecordSpan)/ {
    name = $1
    sub(/-[0-9]+$/, "", name)            # strip the -GOMAXPROCS suffix
    ns = ""; allocs = ""
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op")     ns = $(i - 1)
        if ($i == "allocs/op") allocs = $(i - 1)
    }
    if (ns != "") {
        entries[++n] = sprintf("    \"%s\": {\"ns_per_op\": %s, \"allocs_per_op\": %s}", name, ns, allocs == "" ? 0 : allocs)
    }
}
END {
    printf "{\n"
    printf "  \"cores\": %s,\n", cores
    printf "  \"benchtime\": \"%s\",\n", benchtime
    printf "  \"results\": {\n"
    for (i = 1; i <= n; i++) printf "%s%s\n", entries[i], (i < n ? "," : "")
    printf "  }\n"
    printf "}\n"
}' "$raw" > "$obs_out"

echo "wrote $obs_out"

map_out="BENCH_mapphase.json"
go test ./internal/analytics/ -run '^$' -bench 'BenchmarkMapPhase' -benchmem \
  -benchtime "$benchtime" | tee "$raw"

awk -v cores="$(nproc 2>/dev/null || echo 1)" -v benchtime="$benchtime" '
/^BenchmarkMapPhase/ {
    name = $1
    sub(/-[0-9]+$/, "", name)            # strip the -GOMAXPROCS suffix
    ns = ""; allocs = ""; bytes = ""
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op")     ns = $(i - 1)
        if ($i == "allocs/op") allocs = $(i - 1)
        if ($i == "B/op")      bytes = $(i - 1)
    }
    if (ns != "" && allocs != "") {
        entries[++n] = sprintf("    \"%s\": {\"ns_per_op\": %s, \"allocs_per_op\": %s, \"bytes_per_op\": %s}",
                               name, ns, allocs, bytes == "" ? 0 : bytes)
    }
}
END {
    printf "{\n"
    printf "  \"cores\": %s,\n", cores
    printf "  \"benchtime\": \"%s\",\n", benchtime
    printf "  \"results\": {\n"
    for (i = 1; i <= n; i++) printf "%s%s\n", entries[i], (i < n ? "," : "")
    printf "  }\n"
    printf "}\n"
}' "$raw" > "$map_out"

echo "wrote $map_out"

stream_out="BENCH_stream.json"
go test ./internal/stream/ -run '^$' -bench 'BenchmarkStream' -benchmem \
  -benchtime "$benchtime" | tee "$raw"

awk -v cores="$(nproc 2>/dev/null || echo 1)" -v benchtime="$benchtime" '
/^BenchmarkStream/ {
    name = $1
    sub(/-[0-9]+$/, "", name)            # strip the -GOMAXPROCS suffix
    ns = ""; allocs = ""; wps = ""; lat = ""
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op")         ns = $(i - 1)
        if ($i == "allocs/op")     allocs = $(i - 1)
        if ($i == "windows/sec")   wps = $(i - 1)
        if ($i == "latencyns/win") lat = $(i - 1)
    }
    if (ns != "" && allocs != "") {
        entries[++n] = sprintf("    \"%s\": {\"ns_per_op\": %s, \"allocs_per_op\": %s, \"windows_per_sec\": %s, \"latency_ns_per_window\": %s}",
                               name, ns, allocs, wps == "" ? 0 : wps, lat == "" ? 0 : lat)
    }
}
END {
    printf "{\n"
    printf "  \"cores\": %s,\n", cores
    printf "  \"benchtime\": \"%s\",\n", benchtime
    printf "  \"results\": {\n"
    for (i = 1; i <= n; i++) printf "%s%s\n", entries[i], (i < n ? "," : "")
    printf "  }\n"
    printf "}\n"
}' "$raw" > "$stream_out"

echo "wrote $stream_out"
