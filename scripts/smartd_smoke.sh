#!/usr/bin/env bash
# smartd_smoke.sh — end-to-end smoke: build smartd and the exposition
# linter, boot the daemon, run one job, then verify the two scrape surfaces
# a monitoring stack depends on:
#
#   1. /metrics parses under cmd/obslint (duplicate or malformed families,
#      histogram invariant violations, bad escaping → exit 1);
#   2. /debug/pprof/profile?seconds=1 returns a non-empty CPU profile.
#
# Then the cluster phase: a 3-rank TCP world as three separate smartd
# processes (rank 0 coordinating, ranks 1-2 headless workers joined through
# the -coordinator rendezvous), two WFQ tenants submitting jobs — one of
# them multi-rank — which must all complete, export the smart_cluster_*
# families, and drain cleanly on SIGTERM (all three processes exit 0).
#
# Used by the CI bench-smoke job; runs anywhere with bash + curl.
set -euo pipefail
cd "$(dirname "$0")/.."

addr="${SMARTD_ADDR:-127.0.0.1:18911}"
workdir="$(mktemp -d)"
pids=()
trap 'kill "${pids[@]}" 2>/dev/null || true; wait 2>/dev/null || true; rm -rf "$workdir"' EXIT

go build -o "$workdir/smartd" ./cmd/smartd
go build -o "$workdir/obslint" ./cmd/obslint

"$workdir/smartd" -addr "$addr" -flight 128 &
pid=$!
pids+=("$pid")

# Wait for the daemon to come up.
for i in $(seq 1 50); do
  if curl -fsS "http://$addr/healthz" >/dev/null 2>&1; then
    break
  fi
  if [ "$i" = 50 ]; then
    echo "smartd did not become healthy on $addr" >&2
    exit 1
  fi
  sleep 0.2
done

# One real job so the scrape sees live runtime families, not an empty page.
curl -fsS -X POST "http://$addr/v1/jobs?wait=1" \
  -d '{"app":"histogram","elems":20000,"steps":2,"threads":2}' >/dev/null

# Lint the live exposition.
curl -fsS "http://$addr/metrics" | "$workdir/obslint"

# A 1-second CPU profile must come back non-empty (pprof protobuf, gzipped).
profile="$workdir/profile.pb.gz"
curl -fsS "http://$addr/debug/pprof/profile?seconds=1" -o "$profile"
if [ ! -s "$profile" ]; then
  echo "empty CPU profile from /debug/pprof/profile" >&2
  exit 1
fi

kill "$pid"
wait "$pid" || true
echo "smartd smoke: metrics lint clean, CPU profile captured"

# ---------------------------------------------------------------------------
# Standing-query phase: a continuous windowed histogram over the synthetic
# step stream. The job's NDJSON stream must carry one final "window" record
# per tumbling window; a SIGTERM mid-run must drain the query into a
# pipeline-snapshot checkpoint which a rebooted daemon resumes to
# completion.
saddr="${SMARTD_STANDING_ADDR:-127.0.0.1:18914}"
ckdir="$workdir/ck"

"$workdir/smartd" -addr "$saddr" -ckdir "$ckdir" -grace 50ms &
spid=$!
pids+=("$spid")
for i in $(seq 1 50); do
  if curl -fsS "http://$saddr/healthz" >/dev/null 2>&1; then
    break
  fi
  if [ "$i" = 50 ]; then
    echo "standing-phase smartd did not become healthy on $saddr" >&2
    exit 1
  fi
  sleep 0.2
done

# 12 steps under tumbling windows of 4 -> exactly 3 final window emissions.
sjob="$(curl -fsS -X POST "http://$saddr/v1/jobs" \
  -d '{"app":"histogram","kind":"standing","elems":4096,"steps":12,"params":{"window_size":4,"buckets":16}}')"
sid="$(grep -o '"id": *"[^"]*"' <<<"$sjob" | head -1 | grep -o 'job-[^"]*')"
stream="$(curl -fsS "http://$saddr/v1/jobs/$sid/stream")"
windows="$(grep -c '"type":"window"' <<<"$stream" || true)"
steps="$(grep -c '"type":"step"' <<<"$stream" || true)"
if [ "$windows" != 3 ] || [ "$steps" != 12 ]; then
  echo "standing query streamed $windows window / $steps step records, want 3/12" >&2
  exit 1
fi

# A long-running standing query, drained mid-stream by SIGTERM.
ljob="$(curl -fsS -X POST "http://$saddr/v1/jobs" \
  -d '{"app":"histogram","kind":"standing","elems":4096,"steps":4000,"params":{"window_size":64}}')"
lid="$(grep -o '"id": *"[^"]*"' <<<"$ljob" | head -1 | grep -o 'job-[^"]*')"
for i in $(seq 1 50); do
  if curl -fsS "http://$saddr/v1/jobs/$lid" | grep -q '"status": *"running"'; then
    break
  fi
  if [ "$i" = 50 ]; then
    echo "standing query $lid never started running" >&2
    exit 1
  fi
  sleep 0.1
done
kill -TERM "$spid"
wait "$spid"
if ! ls "$ckdir"/*.ck >/dev/null 2>&1 || ! ls "$ckdir"/*.resume.json >/dev/null 2>&1; then
  echo "drained standing query left no checkpoint in $ckdir" >&2
  ls -l "$ckdir" >&2 || true
  exit 1
fi

# Reboot on the same checkpoint dir: the restored query (readmitted under a
# fresh id) must resume from its snapshot and finish.
"$workdir/smartd" -addr "$saddr" -ckdir "$ckdir" &
spid=$!
pids+=("$spid")
for i in $(seq 1 150); do
  jobs_body="$(curl -fsS "http://$saddr/v1/jobs" 2>/dev/null || true)"
  if grep -q '"kind": *"standing"' <<<"$jobs_body" \
    && grep -q '"status": *"done"' <<<"$jobs_body"; then
    break
  fi
  if [ "$i" = 150 ]; then
    echo "resumed standing query did not finish" >&2
    echo "$jobs_body" >&2
    exit 1
  fi
  sleep 0.2
done
kill "$spid"
wait "$spid" || true
echo "smartd smoke: standing query streamed windows, drained to snapshot, resumed to done"

# ---------------------------------------------------------------------------
# Cluster phase: 3 ranks, 3 processes, 2 tenants.
caddr="${SMARTD_CLUSTER_ADDR:-127.0.0.1:18912}"
rdv="${SMARTD_RDV_ADDR:-127.0.0.1:18913}"

"$workdir/smartd" -addr "$caddr" -world 3 -rank 0 -coordinator "$rdv" \
  -heartbeat 25ms -tenant sim=4 -tenant adhoc=1:1:low &
coord=$!
pids+=("$coord")
"$workdir/smartd" -world 3 -rank 1 -coordinator "$rdv" &
w1=$!
pids+=("$w1")
"$workdir/smartd" -world 3 -rank 2 -coordinator "$rdv" &
w2=$!
pids+=("$w2")

for i in $(seq 1 50); do
  if curl -fsS "http://$caddr/healthz" >/dev/null 2>&1; then
    break
  fi
  if [ "$i" = 50 ]; then
    echo "cluster smartd did not become healthy on $caddr" >&2
    exit 1
  fi
  sleep 0.2
done

# Both tenants submit; the adhoc job spans both worker ranks (global
# combination over the per-job sub-communicator).
for i in 1 2 3; do
  curl -fsS -X POST "http://$caddr/v1/jobs" \
    -d '{"app":"histogram","elems":16384,"steps":2,"tenant":"sim"}' >/dev/null
done
curl -fsS -X POST "http://$caddr/v1/jobs?wait=1" \
  -d '{"app":"histogram","elems":16384,"ranks":2,"tenant":"adhoc"}' \
  | grep -q '"status": *"done"' || { echo "multi-rank adhoc job did not finish" >&2; exit 1; }

# Every submitted job must reach done — fair completion, no tenant stuck.
for i in $(seq 1 100); do
  done_count="$(curl -fsS "http://$caddr/v1/jobs" | grep -o '"status": *"done"' | wc -l)"
  if [ "$done_count" -ge 4 ]; then
    break
  fi
  if [ "$i" = 100 ]; then
    echo "only $done_count/4 cluster jobs completed" >&2
    exit 1
  fi
  sleep 0.2
done

metrics="$(curl -fsS "http://$caddr/metrics")"
for family in smart_cluster_jobs_dispatched_total smart_cluster_workers \
  'smart_cluster_queue_wait_seconds_count{tenant="sim"}' \
  'smart_cluster_queue_wait_seconds_count{tenant="adhoc"}'; do
  if ! grep -qF "$family" <<<"$metrics"; then
    echo "cluster /metrics missing $family" >&2
    exit 1
  fi
done
echo "$metrics" | "$workdir/obslint"

# Clean drain: SIGTERM the coordinator; it gathers cluster metrics and
# releases the workers, and all three processes must exit 0.
kill -TERM "$coord"
wait "$coord"
wait "$w1"
wait "$w2"
echo "smartd smoke: 3-rank cluster completed both tenants' jobs and drained cleanly"
