#!/usr/bin/env bash
# smartd_smoke.sh — end-to-end observability smoke: build smartd and the
# exposition linter, boot the daemon, run one job, then verify the two scrape
# surfaces a monitoring stack depends on:
#
#   1. /metrics parses under cmd/obslint (duplicate or malformed families,
#      histogram invariant violations, bad escaping → exit 1);
#   2. /debug/pprof/profile?seconds=1 returns a non-empty CPU profile.
#
# Used by the CI bench-smoke job; runs anywhere with bash + curl.
set -euo pipefail
cd "$(dirname "$0")/.."

addr="${SMARTD_ADDR:-127.0.0.1:18911}"
workdir="$(mktemp -d)"
trap 'kill "$pid" 2>/dev/null || true; wait "$pid" 2>/dev/null || true; rm -rf "$workdir"' EXIT

go build -o "$workdir/smartd" ./cmd/smartd
go build -o "$workdir/obslint" ./cmd/obslint

"$workdir/smartd" -addr "$addr" -flight 128 &
pid=$!

# Wait for the daemon to come up.
for i in $(seq 1 50); do
  if curl -fsS "http://$addr/healthz" >/dev/null 2>&1; then
    break
  fi
  if [ "$i" = 50 ]; then
    echo "smartd did not become healthy on $addr" >&2
    exit 1
  fi
  sleep 0.2
done

# One real job so the scrape sees live runtime families, not an empty page.
curl -fsS -X POST "http://$addr/v1/jobs?wait=1" \
  -d '{"app":"histogram","elems":20000,"steps":2,"threads":2}' >/dev/null

# Lint the live exposition.
curl -fsS "http://$addr/metrics" | "$workdir/obslint"

# A 1-second CPU profile must come back non-empty (pprof protobuf, gzipped).
profile="$workdir/profile.pb.gz"
curl -fsS "http://$addr/debug/pprof/profile?seconds=1" -o "$profile"
if [ ! -s "$profile" ]; then
  echo "empty CPU profile from /debug/pprof/profile" >&2
  exit 1
fi

kill "$pid"
wait "$pid" || true
echo "smartd smoke: metrics lint clean, CPU profile captured"
