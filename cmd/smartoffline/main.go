// Command smartoffline runs Smart analytics over a spooled dataset — the
// offline (store-first-analyze-after) side of the paper's Section 1.1
// question "can the offline and in-situ analytics codes be (almost)
// identical?". The applications used here are byte-for-byte the same
// implementations the in-situ drivers run; only the data source differs.
//
// Generate a test dataset, then analyze it:
//
//	smartoffline -gen data.bin -elems 1000000 -mean 10 -stddev 3
//	smartoffline -in data.bin -app histogram -buckets 20
//	smartoffline -in data.bin -app moments
//	smartoffline -in data.bin -app topk -k 10
//	smartoffline -in data.bin -app movingavg -window 25
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"math"
	"os"

	"github.com/scipioneer/smart/internal/analytics"
	"github.com/scipioneer/smart/internal/core"
	"github.com/scipioneer/smart/internal/sim"
)

func main() {
	var (
		gen     = flag.String("gen", "", "generate a dataset at this path and exit")
		elems   = flag.Int("elems", 1_000_000, "elements to generate")
		mean    = flag.Float64("mean", 0, "generated distribution mean")
		stddev  = flag.Float64("stddev", 1, "generated distribution stddev")
		seed    = flag.Uint64("seed", 42, "generator seed")
		in      = flag.String("in", "", "input dataset (little-endian float64)")
		app     = flag.String("app", "histogram", "analytics: histogram, moments, topk, movingavg")
		buckets = flag.Int("buckets", 20, "histogram buckets")
		k       = flag.Int("k", 10, "top-k size")
		window  = flag.Int("window", 25, "moving average window (odd)")
		threads = flag.Int("threads", 4, "analytics threads")
	)
	flag.Parse()

	if *gen != "" {
		if err := generate(*gen, *elems, *mean, *stddev, *seed); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d float64 elements to %s\n", *elems, *gen)
		return
	}
	if *in == "" {
		fatal(fmt.Errorf("need -in <file> (or -gen to create one); see -help"))
	}
	data, err := readData(*in)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("loaded %d elements from %s\n", len(data), *in)
	if err := analyze(data, *app, *buckets, *k, *window, *threads); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "smartoffline:", err)
	os.Exit(1)
}

func generate(path string, elems int, mean, stddev float64, seed uint64) error {
	em, err := sim.NewEmulator(sim.EmulatorConfig{StepElems: elems, Mean: mean, StdDev: stddev, Seed: seed})
	if err != nil {
		return err
	}
	if err := em.Step(); err != nil {
		return err
	}
	buf := make([]byte, 8*elems)
	for i, v := range em.Data() {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
	}
	return os.WriteFile(path, buf, 0o644)
}

func readData(path string) ([]float64, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(buf)%8 != 0 || len(buf) == 0 {
		return nil, fmt.Errorf("%s is not a float64 dataset (%d bytes)", path, len(buf))
	}
	data := make([]float64, len(buf)/8)
	for i := range data {
		data[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	return data, nil
}

func analyze(data []float64, app string, buckets, k, window, threads int) error {
	args := core.SchedArgs{NumThreads: threads, ChunkSize: 1, NumIters: 1}
	switch app {
	case "histogram":
		lo, hi := dataRange(data)
		h := analytics.NewHistogram(lo, hi, buckets)
		s := core.MustNewScheduler[float64, int64](h, args)
		out := make([]int64, buckets)
		if err := s.Run(data, out); err != nil {
			return err
		}
		width := (hi - lo) / float64(buckets)
		var peak int64
		for _, c := range out {
			if c > peak {
				peak = c
			}
		}
		for b, c := range out {
			bar := ""
			if peak > 0 {
				for i := int64(0); i < c*40/peak; i++ {
					bar += "#"
				}
			}
			fmt.Printf("  [%12.4f,%12.4f) %9d %s\n", lo+float64(b)*width, lo+float64(b+1)*width, c, bar)
		}
	case "moments":
		m := analytics.NewMoments(0, 0)
		s := core.MustNewScheduler[float64, float64](m, args)
		if err := s.Run(data, nil); err != nil {
			return err
		}
		obj := s.CombinationMap()[0].(*analytics.MomentsObj)
		fmt.Printf("  n        %d\n", obj.N)
		fmt.Printf("  mean     %.6f\n", obj.Mean)
		fmt.Printf("  variance %.6f\n", obj.Variance())
		fmt.Printf("  stddev   %.6f\n", math.Sqrt(obj.Variance()))
		fmt.Printf("  skewness %.6f\n", obj.Skewness())
		fmt.Printf("  kurtosis %.6f (excess)\n", obj.Kurtosis())
	case "topk":
		tk := analytics.NewTopK(k, 0)
		s := core.MustNewScheduler[float64, float64](tk, args)
		if err := s.Run(data, nil); err != nil {
			return err
		}
		for i, e := range tk.Extremes(s.CombinationMap()) {
			fmt.Printf("  #%-3d %.6f at position %d\n", i+1, e.Val, e.Pos)
		}
	case "movingavg":
		ma := analytics.NewMovingAverage(window, len(data), 0, true)
		s := core.MustNewScheduler[float64, float64](ma, args)
		out := make([]float64, len(data))
		if err := s.Run2(data, out); err != nil {
			return err
		}
		n := min(len(out), 10)
		fmt.Printf("  first %d smoothed values:\n", n)
		for i := 0; i < n; i++ {
			fmt.Printf("    out[%d] = %.6f (raw %.6f)\n", i, out[i], data[i])
		}
		st := s.Stats()
		fmt.Printf("  %d windows emitted early; peak live reduction objects %d\n",
			st.EmittedEarly, st.MaxLiveRedObjs)
	default:
		return fmt.Errorf("unknown app %q (want histogram, moments, topk, movingavg)", app)
	}
	return nil
}

func dataRange(data []float64) (lo, hi float64) {
	lo, hi = data[0], data[0]
	for _, v := range data {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	return lo, hi + 1e-9
}
