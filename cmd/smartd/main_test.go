package main

import (
	"context"
	"errors"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"github.com/scipioneer/smart/internal/serve"
	"github.com/scipioneer/smart/internal/serve/client"
)

// longKMeans is a job spec that cannot finish within the test's lifetime
// unless it is cancelled, checkpointed, or the machine is absurdly fast.
var longKMeans = serve.JobSpec{
	App: "kmeans", Steps: 10_000, Elems: 65536,
	Params: serve.Params{K: 8, Dims: 4, Iters: 10},
}

// pollStatus waits for the job to reach status via the HTTP API.
func pollStatus(t *testing.T, c *client.Client, id string, want serve.Status, timeout time.Duration) serve.JobView {
	t.Helper()
	deadline := time.Now().Add(timeout)
	var last serve.JobView
	for time.Now().Before(deadline) {
		v, err := c.Get(context.Background(), id)
		if err == nil {
			last = v
			if v.Status == want {
				return v
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s: status = %q, want %q within %v", id, last.Status, want, timeout)
	return last
}

// TestSmartdEndToEnd drives the daemon through its whole lifecycle: queue
// bounds above the admission limit, chunk-granularity cancellation, an
// early-emission stream, and a SIGTERM drain that checkpoints the in-flight
// job, rejects the queued one, and returns cleanly (exit 0 in main).
func TestSmartdEndToEnd(t *testing.T) {
	ckdir := t.TempDir()
	ready := make(chan string, 1)
	runErr := make(chan error, 1)
	go func() {
		runErr <- run([]string{
			"-addr", "127.0.0.1:0",
			"-workers", "1",
			"-queue", "1",
			"-grace", "50ms",
			"-ckdir", ckdir,
		}, io.Discard, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-runErr:
		t.Fatalf("smartd exited before ready: %v", err)
	}
	c := client.New("http://"+addr, client.WithRetries(0))

	// A job streams early emissions before its result.
	view, err := c.SubmitWait(context.Background(), serve.JobSpec{
		App: "movingavg", Elems: 2048, Params: serve.Params{Window: 25},
	})
	if err != nil {
		t.Fatal(err)
	}
	if view.Status != serve.StatusDone {
		t.Fatalf("movingavg status = %q (error %q)", view.Status, view.Error)
	}
	sawEmitBeforeResult, sawEmit := false, false
	if err := c.Stream(context.Background(), view.ID, func(rec serve.StreamRecord) error {
		if rec.Type == "emit" {
			sawEmit = true
		}
		if rec.Type == "result" && sawEmit {
			sawEmitBeforeResult = true
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !sawEmitBeforeResult {
		t.Fatal("stream had no early emission before the result record")
	}

	// Cancellation stops a running job at chunk granularity — far faster
	// than the job would take to finish.
	cv, err := c.Submit(context.Background(), longKMeans)
	if err != nil {
		t.Fatal(err)
	}
	pollStatus(t, c, cv.ID, serve.StatusRunning, 5*time.Second)
	cancelStart := time.Now()
	if _, err := c.Cancel(context.Background(), cv.ID); err != nil {
		t.Fatal(err)
	}
	pollStatus(t, c, cv.ID, serve.StatusCancelled, 5*time.Second)
	if d := time.Since(cancelStart); d > 2*time.Second {
		t.Errorf("cancel latency %v, want chunk-scale", d)
	}

	// Admission: one running + one queued fills worker and queue; the next
	// submission is a 429.
	running, err := c.Submit(context.Background(), longKMeans)
	if err != nil {
		t.Fatal(err)
	}
	pollStatus(t, c, running.ID, serve.StatusRunning, 5*time.Second)
	queued, err := c.Submit(context.Background(), longKMeans)
	if err != nil {
		t.Fatal(err)
	}
	if got := queued.Status; got != serve.StatusQueued {
		t.Fatalf("second job status = %q, want queued", got)
	}
	_, err = c.Submit(context.Background(), longKMeans)
	var se *client.StatusError
	if !errors.As(err, &se) || se.Code != http.StatusTooManyRequests {
		t.Fatalf("over-limit submit: err = %v, want 429", err)
	}

	// SIGTERM: the daemon drains — the queued job is rejected, the running
	// one is checkpointed once the 50ms grace expires — and run returns nil.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("smartd exited with error: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("smartd did not exit after SIGTERM")
	}

	ck := filepath.Join(ckdir, running.ID+".ck")
	buf, err := os.ReadFile(ck)
	if err != nil {
		t.Fatalf("inflight job was not checkpointed: %v", err)
	}
	if !strings.HasPrefix(string(buf), "SMARTCK1") {
		t.Errorf("checkpoint %s missing the Smart magic", ck)
	}
	// The inflight job leaves exactly its checkpoint plus the resume
	// sidecar a restarted daemon re-admits it from; the queued and
	// cancelled jobs leave nothing.
	entries, err := os.ReadDir(ckdir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Errorf("checkpoint dir has %d entries, want 2 (inflight job's .ck + .resume.json): %v", len(entries), entries)
	}
	if _, err := os.Stat(filepath.Join(ckdir, running.ID+".resume.json")); err != nil {
		t.Errorf("inflight job has no resume sidecar: %v", err)
	}
}

func TestParseTenantFlag(t *testing.T) {
	m := map[string]serve.TenantConfig{}
	good := map[string]serve.TenantConfig{
		"alpha=4":          {Weight: 4},
		"beta=2:3":         {Weight: 2, Quota: 3},
		"gamma=0.5:1:high": {Weight: 0.5, Quota: 1, Class: "high"},
		"batch=::low":      {Class: "low"},
		"plain=":           {},
	}
	for in, want := range good {
		if err := parseTenant(m, in); err != nil {
			t.Errorf("parseTenant(%q): %v", in, err)
			continue
		}
		name := strings.SplitN(in, "=", 2)[0]
		if got := m[name]; got != want {
			t.Errorf("parseTenant(%q) = %+v, want %+v", in, got, want)
		}
	}
	for _, in := range []string{"noequals", "=1", "a=-1", "a=1:x", "a=1:-2", "a=1:1:urgent", "a=1:1:low:extra"} {
		if err := parseTenant(m, in); err == nil {
			t.Errorf("parseTenant(%q) accepted, want error", in)
		}
	}
}

// TestSmartdClusterEndToEnd boots a 3-rank world inside the test process
// (rank 0 coordinating, two worker goroutine ranks executing), submits
// jobs for two configured tenants — one of them spanning both worker ranks
// — and checks the cluster metrics surface on /metrics before a SIGTERM
// drain exits cleanly.
func TestSmartdClusterEndToEnd(t *testing.T) {
	ready := make(chan string, 1)
	runErr := make(chan error, 1)
	go func() {
		runErr <- run([]string{
			"-addr", "127.0.0.1:0",
			"-world", "3",
			"-workers", "2",
			"-grace", "5s",
			"-heartbeat", "20ms",
			"-ckdir", t.TempDir(),
			"-tenant", "alpha=3",
			"-tenant", "beta=1:2:low",
		}, io.Discard, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-runErr:
		t.Fatalf("smartd exited before ready: %v", err)
	}
	c := client.New("http://" + addr)
	ctx := context.Background()

	va, err := c.SubmitWait(ctx, serve.JobSpec{App: "histogram", Elems: 4096, Tenant: "alpha"})
	if err != nil || va.Status != serve.StatusDone {
		t.Fatalf("alpha job: %+v, %v", va, err)
	}
	vb, err := c.SubmitWait(ctx, serve.JobSpec{
		App: "histogram", Elems: 4096, Ranks: 2, Tenant: "beta",
	})
	if err != nil || vb.Status != serve.StatusDone {
		t.Fatalf("beta multi-rank job: %+v, %v", vb, err)
	}
	if m, ok := vb.Result.(map[string]any); !ok || m["buckets"] == nil {
		t.Fatalf("multi-rank result missing buckets: %#v", vb.Result)
	}

	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"smart_cluster_jobs_dispatched_total",
		"smart_cluster_workers 2",
		`smart_cluster_queue_wait_seconds_count{tenant="alpha"}`,
		`smart_cluster_queue_wait_seconds_count{tenant="beta"}`,
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("smartd exited with error: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("smartd did not exit after SIGTERM")
	}
}
