package main

import (
	"context"
	"errors"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"github.com/scipioneer/smart/internal/serve"
	"github.com/scipioneer/smart/internal/serve/client"
)

// longKMeans is a job spec that cannot finish within the test's lifetime
// unless it is cancelled, checkpointed, or the machine is absurdly fast.
var longKMeans = serve.JobSpec{
	App: "kmeans", Steps: 10_000, Elems: 65536,
	Params: serve.Params{K: 8, Dims: 4, Iters: 10},
}

// pollStatus waits for the job to reach status via the HTTP API.
func pollStatus(t *testing.T, c *client.Client, id string, want serve.Status, timeout time.Duration) serve.JobView {
	t.Helper()
	deadline := time.Now().Add(timeout)
	var last serve.JobView
	for time.Now().Before(deadline) {
		v, err := c.Get(context.Background(), id)
		if err == nil {
			last = v
			if v.Status == want {
				return v
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s: status = %q, want %q within %v", id, last.Status, want, timeout)
	return last
}

// TestSmartdEndToEnd drives the daemon through its whole lifecycle: queue
// bounds above the admission limit, chunk-granularity cancellation, an
// early-emission stream, and a SIGTERM drain that checkpoints the in-flight
// job, rejects the queued one, and returns cleanly (exit 0 in main).
func TestSmartdEndToEnd(t *testing.T) {
	ckdir := t.TempDir()
	ready := make(chan string, 1)
	runErr := make(chan error, 1)
	go func() {
		runErr <- run([]string{
			"-addr", "127.0.0.1:0",
			"-workers", "1",
			"-queue", "1",
			"-grace", "50ms",
			"-ckdir", ckdir,
		}, io.Discard, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-runErr:
		t.Fatalf("smartd exited before ready: %v", err)
	}
	c := client.New("http://"+addr, client.WithRetries(0))

	// A job streams early emissions before its result.
	view, err := c.SubmitWait(context.Background(), serve.JobSpec{
		App: "movingavg", Elems: 2048, Params: serve.Params{Window: 25},
	})
	if err != nil {
		t.Fatal(err)
	}
	if view.Status != serve.StatusDone {
		t.Fatalf("movingavg status = %q (error %q)", view.Status, view.Error)
	}
	sawEmitBeforeResult, sawEmit := false, false
	if err := c.Stream(context.Background(), view.ID, func(rec serve.StreamRecord) error {
		if rec.Type == "emit" {
			sawEmit = true
		}
		if rec.Type == "result" && sawEmit {
			sawEmitBeforeResult = true
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !sawEmitBeforeResult {
		t.Fatal("stream had no early emission before the result record")
	}

	// Cancellation stops a running job at chunk granularity — far faster
	// than the job would take to finish.
	cv, err := c.Submit(context.Background(), longKMeans)
	if err != nil {
		t.Fatal(err)
	}
	pollStatus(t, c, cv.ID, serve.StatusRunning, 5*time.Second)
	cancelStart := time.Now()
	if _, err := c.Cancel(context.Background(), cv.ID); err != nil {
		t.Fatal(err)
	}
	pollStatus(t, c, cv.ID, serve.StatusCancelled, 5*time.Second)
	if d := time.Since(cancelStart); d > 2*time.Second {
		t.Errorf("cancel latency %v, want chunk-scale", d)
	}

	// Admission: one running + one queued fills worker and queue; the next
	// submission is a 429.
	running, err := c.Submit(context.Background(), longKMeans)
	if err != nil {
		t.Fatal(err)
	}
	pollStatus(t, c, running.ID, serve.StatusRunning, 5*time.Second)
	queued, err := c.Submit(context.Background(), longKMeans)
	if err != nil {
		t.Fatal(err)
	}
	if got := queued.Status; got != serve.StatusQueued {
		t.Fatalf("second job status = %q, want queued", got)
	}
	_, err = c.Submit(context.Background(), longKMeans)
	var se *client.StatusError
	if !errors.As(err, &se) || se.Code != http.StatusTooManyRequests {
		t.Fatalf("over-limit submit: err = %v, want 429", err)
	}

	// SIGTERM: the daemon drains — the queued job is rejected, the running
	// one is checkpointed once the 50ms grace expires — and run returns nil.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("smartd exited with error: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("smartd did not exit after SIGTERM")
	}

	ck := filepath.Join(ckdir, running.ID+".ck")
	buf, err := os.ReadFile(ck)
	if err != nil {
		t.Fatalf("inflight job was not checkpointed: %v", err)
	}
	if !strings.HasPrefix(string(buf), "SMARTCK1") {
		t.Errorf("checkpoint %s missing the Smart magic", ck)
	}
	entries, err := os.ReadDir(ckdir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("checkpoint dir has %d entries, want 1 (only the inflight job): %v", len(entries), entries)
	}
}
