// Command smartd runs the Smart analytics job service: an HTTP daemon that
// accepts typed analytics jobs, executes them on the in-situ runtime under
// admission control, streams results, and drains gracefully — in-flight
// jobs finish within the grace period or are checkpointed for a future
// server to resume, queued jobs are rejected, and the process exits 0.
//
// Usage:
//
//	smartd [-addr :8080] [-queue 16] [-workers 2] [-mem-bytes 0]
//	       [-deadline 0] [-grace 10s] [-ckdir DIR] [-flight 256]
//	       [-world 1] [-rank 0] [-coordinator HOST:PORT]
//	       [-tenant name=weight[:quota[:class]]] [-retry-budget 2]
//	       [-heartbeat 100ms] [-codec auto]
//
// With -world N (N > 1) smartd runs in cluster mode: rank 0 owns the HTTP
// front door and dispatches jobs to worker ranks 1..N-1, which execute them
// over the rank mesh (multi-rank jobs combine globally across a per-job
// sub-communicator) and stream results back. Without -coordinator all N
// ranks run inside this process; with -coordinator each rank is its own
// smartd process — rank 0 listens at the rendezvous address, the others
// (-rank R -coordinator HOST:PORT) dial it and run headless execution
// loops, no HTTP. A worker rank that dies mid-job is detected by connection
// drop or stale heartbeat; single-rank jobs are retried on a surviving rank
// from their last per-step checkpoint, bounded by -retry-budget.
//
// -tenant assigns weighted-fair-queueing shares, in-flight quotas and
// priority classes ("high", "normal", "low") per tenant; it repeats.
//
// SIGTERM or SIGINT triggers the drain. SIGQUIT dumps the flight recorder
// (the last -flight spans and metric marks) to stderr without exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"github.com/scipioneer/smart/internal/cluster"
	"github.com/scipioneer/smart/internal/codec"
	"github.com/scipioneer/smart/internal/memmodel"
	"github.com/scipioneer/smart/internal/mpi"
	"github.com/scipioneer/smart/internal/obs"
	"github.com/scipioneer/smart/internal/serve"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, nil); err != nil {
		fmt.Fprintln(os.Stderr, "smartd:", err)
		os.Exit(1)
	}
}

// parseTenant parses one -tenant flag value, "name=weight[:quota[:class]]",
// into m. Empty fields keep their defaults: "-tenant batch=::low" is a
// weight-1, uncapped, low-class tenant.
func parseTenant(m map[string]serve.TenantConfig, v string) error {
	name, spec, ok := strings.Cut(v, "=")
	if !ok || name == "" {
		return fmt.Errorf("tenant %q: want name=weight[:quota[:class]]", v)
	}
	parts := strings.Split(spec, ":")
	if len(parts) > 3 {
		return fmt.Errorf("tenant %q: too many fields, want name=weight[:quota[:class]]", v)
	}
	var tc serve.TenantConfig
	if parts[0] != "" {
		w, err := strconv.ParseFloat(parts[0], 64)
		if err != nil || w < 0 {
			return fmt.Errorf("tenant %q: bad weight %q", v, parts[0])
		}
		tc.Weight = w
	}
	if len(parts) > 1 && parts[1] != "" {
		q, err := strconv.Atoi(parts[1])
		if err != nil || q < 0 {
			return fmt.Errorf("tenant %q: bad quota %q", v, parts[1])
		}
		tc.Quota = q
	}
	if len(parts) > 2 && parts[2] != "" {
		tc.Class = parts[2]
	}
	switch tc.Class {
	case "", serve.ClassHigh, serve.ClassNormal, serve.ClassLow:
	default:
		return fmt.Errorf("tenant %q: unknown class %q", v, tc.Class)
	}
	m[name] = tc
	return nil
}

// run is the daemon body, factored out of main so the shutdown path is
// testable in-process: when ready is non-nil it receives the bound listen
// address once the service is up (a headless worker rank sends "").
func run(args []string, out io.Writer, ready chan<- string) error {
	fs := flag.NewFlagSet("smartd", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", ":8080", "listen address")
		queue    = fs.Int("queue", 16, "bounded job-queue capacity")
		workers  = fs.Int("workers", 2, "worker pool size (concurrent jobs)")
		memBytes = fs.Int64("mem-bytes", 0, "virtual memory node capacity for admission control (0 = off)")
		deadline = fs.Duration("deadline", 0, "default per-job execution deadline (0 = none)")
		grace    = fs.Duration("grace", 10*time.Second, "drain grace period before inflight jobs are checkpointed")
		ckdir    = fs.String("ckdir", "", "checkpoint directory for drained jobs (default os temp dir); when set, checkpointed jobs found there are resumed at boot")
		flight   = fs.Int("flight", 256, "flight-recorder capacity in events (0 = off); SIGQUIT dumps it to stderr")
		world    = fs.Int("world", 1, "cluster world size; > 1 enables multi-rank dispatch")
		rank     = fs.Int("rank", 0, "this process's rank in a -coordinator world (0 = coordinator)")
		coord    = fs.String("coordinator", "", "rank 0 rendezvous address for a cross-process world (empty runs every rank in this process)")
		retry    = fs.Int("retry-budget", 2, "re-dispatches of a single-rank job after its worker rank dies")
		beat     = fs.Duration("heartbeat", 100*time.Millisecond, "cluster heartbeat interval (worker beats; coordinator declares silence death at 10x)")
		codecPin = fs.String("codec", "auto", "wire/checkpoint codec: auto (negotiate best), none, flate, or block")
	)
	tenants := map[string]serve.TenantConfig{}
	fs.Func("tenant", "tenant WFQ spec name=weight[:quota[:class]] (repeatable)", func(v string) error {
		return parseTenant(tenants, v)
	})
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *world < 1 {
		return fmt.Errorf("-world must be >= 1, got %d", *world)
	}
	if *rank < 0 || *rank >= *world {
		return fmt.Errorf("-rank %d outside world of size %d", *rank, *world)
	}
	if *rank > 0 && *coord == "" {
		return errors.New("-rank > 0 needs -coordinator to find rank 0")
	}
	if *coord != "" && *world < 2 {
		return errors.New("-coordinator needs -world >= 2")
	}
	if *codecPin != "auto" {
		enc, err := codec.Parse(*codecPin)
		if err != nil {
			return fmt.Errorf("-codec: %w", err)
		}
		// Pinning narrows this process's advertised support to one codec;
		// every transport and control-plane negotiation then lands on it (or
		// falls back to none against a peer that lacks it).
		codec.SetPreferred(enc)
	}

	if *flight > 0 {
		fr := obs.NewFlightRecorder(*flight)
		obs.Default().SetFlightRecorder(fr)
		stopDump := obs.DumpOnSignal(fr, syscall.SIGQUIT, os.Stderr)
		defer stopDump()
	}

	var mem *memmodel.Node
	if *memBytes > 0 {
		mem = memmodel.NewNode(*memBytes)
	}

	// A worker rank is headless: it joins the world, runs the job-execution
	// loop, and exits when the coordinator shuts it down.
	if *rank > 0 {
		return runWorkerRank(*world, *rank, *coord, *beat, mem, out, ready)
	}

	cfg := serve.Config{
		Queue:           *queue,
		Workers:         *workers,
		Tenants:         tenants,
		DefaultDeadline: *deadline,
		CheckpointDir:   *ckdir,
		Mem:             mem,
	}
	if cfg.CheckpointDir == "" {
		cfg.CheckpointDir = os.TempDir()
	} else if err := os.MkdirAll(cfg.CheckpointDir, 0o755); err != nil {
		return fmt.Errorf("checkpoint dir: %w", err)
	}

	// Cluster mode: build the rank world, park the dispatcher between the
	// serving layer and the worker ranks, and (in the single-process form)
	// host the worker loops on goroutines.
	var disp *cluster.Dispatcher
	var comm *mpi.Comm
	var workerComms []*mpi.Comm
	if *world > 1 {
		var err error
		if *coord != "" {
			comm, err = mpi.JoinTCPWorld(*world, 0, *coord)
			if err != nil {
				return fmt.Errorf("join world: %w", err)
			}
		} else {
			comms, err := mpi.NewTCPWorld(*world)
			if err != nil {
				return fmt.Errorf("build world: %w", err)
			}
			comm = comms[0]
			workerComms = comms[1:]
			for _, wc := range workerComms {
				go func(wc *mpi.Comm) {
					if err := cluster.Worker(wc, cluster.WorkerConfig{
						Heartbeat: *beat, Mem: mem,
						WorkDir: cfg.CheckpointDir, Registry: obs.NewRegistry(),
					}); err != nil {
						fmt.Fprintf(out, "smartd: worker rank %d: %v\n", wc.Rank(), err)
					}
				}(wc)
			}
		}
		disp, err = cluster.NewDispatcher(comm, cluster.Config{
			RetryBudget:   *retry,
			Heartbeat:     *beat,
			CheckpointDir: cfg.CheckpointDir,
		})
		if err != nil {
			return err
		}
		cfg.Executor = disp
		fmt.Fprintf(out, "smartd: coordinating a world of %d (%d worker ranks)\n", *world, *world-1)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	srv := serve.NewServer(cfg)
	if *ckdir != "" {
		// An explicit checkpoint dir opts into durable resume: jobs a
		// previous smartd drained restart here, ahead of new submissions.
		ids, err := srv.RestoreCheckpoints()
		if err != nil {
			fmt.Fprintf(out, "smartd: checkpoint restore: %v\n", err)
		}
		if len(ids) > 0 {
			fmt.Fprintf(out, "smartd: restored %d checkpointed job(s): %s\n", len(ids), strings.Join(ids, ", "))
		}
	}
	hs := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 10 * time.Second}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	fmt.Fprintf(out, "smartd: serving on %s (queue=%d workers=%d)\n", ln.Addr(), *queue, *workers)
	if ready != nil {
		ready <- ln.Addr().String()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	select {
	case s := <-sig:
		fmt.Fprintf(out, "smartd: %v: draining (grace %v)\n", s, *grace)
	case err := <-serveErr:
		return fmt.Errorf("http server: %w", err)
	}

	// Drain first — it refuses new work, rejects queued jobs, and gives
	// in-flight jobs the grace period to finish before checkpointing them —
	// then stop the HTTP listener so late status/stream readers still get
	// their terminal records.
	srv.Drain(*grace)
	if disp != nil {
		// The front door is drained, so the dispatch plane is idle: run the
		// final cluster-wide metrics gather and release the worker ranks.
		cs, err := disp.Shutdown()
		switch {
		case err != nil:
			fmt.Fprintf(out, "smartd: cluster metrics gather: %v\n", err)
		case cs != nil:
			fmt.Fprintf(out, "smartd: cluster metrics merged across %d ranks\n", len(cs.Ranks))
		}
		comm.Close()
		for _, wc := range workerComms {
			wc.Close()
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return fmt.Errorf("http shutdown: %w", err)
	}
	for _, line := range jobSummaries(srv.List()) {
		fmt.Fprintln(out, line)
	}
	fmt.Fprintln(out, "smartd: drained, exiting")
	return nil
}

// runWorkerRank is the headless body of a non-zero rank: join the world,
// execute dispatched jobs until the coordinator's shutdown (or the link to
// it drops), answering a local SIGTERM by closing the mesh so the
// coordinator sees the death and retries this rank's jobs elsewhere.
func runWorkerRank(world, rank int, coord string, beat time.Duration, mem *memmodel.Node, out io.Writer, ready chan<- string) error {
	comm, err := mpi.JoinTCPWorld(world, rank, coord)
	if err != nil {
		return fmt.Errorf("join world: %w", err)
	}
	defer comm.Close()
	fmt.Fprintf(out, "smartd: rank %d/%d joined via %s\n", rank, world, coord)
	if ready != nil {
		ready <- ""
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	done := make(chan error, 1)
	go func() {
		done <- cluster.Worker(comm, cluster.WorkerConfig{Heartbeat: beat, Mem: mem})
	}()
	select {
	case err := <-done:
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "smartd: rank %d released by coordinator, exiting\n", rank)
		return nil
	case s := <-sig:
		fmt.Fprintf(out, "smartd: rank %d: %v: leaving the world\n", rank, s)
		comm.Close()
		<-done
		return nil
	}
}

// jobSummaries renders one closing log line per job the server saw, with the
// runtime stats snapshot the serving layer embeds in completed results. The
// snapshot is what makes this safe to print at drain time: it was copied out
// of the scheduler with atomic loads when the job finished, so no drain-time
// read races a worker.
func jobSummaries(jobs []serve.JobView) []string {
	lines := make([]string, 0, len(jobs))
	for _, jv := range jobs {
		line := fmt.Sprintf("smartd: job %s app=%s status=%s", jv.ID, jv.App, jv.Status)
		if m, ok := jv.Result.(map[string]any); ok {
			if st, ok := m["stats"].(map[string]any); ok {
				line += fmt.Sprintf(" chunks=%v reduction_ns=%v local_combine_ns=%v global_combine_ns=%v serialized_bytes=%v",
					st["chunks_processed"], st["reduction_ns"], st["local_combine_ns"],
					st["global_combine_ns"], st["serialized_bytes"])
			}
		}
		if jv.Error != "" {
			line += " error=" + jv.Error
		}
		lines = append(lines, line)
	}
	return lines
}
