// Command smartd runs the Smart analytics job service: an HTTP daemon that
// accepts typed analytics jobs, executes them on the in-situ runtime under
// admission control, streams results, and drains gracefully — in-flight
// jobs finish within the grace period or are checkpointed for a future
// server to resume, queued jobs are rejected, and the process exits 0.
//
// Usage:
//
//	smartd [-addr :8080] [-queue 16] [-workers 2] [-mem-bytes 0]
//	       [-deadline 0] [-grace 10s] [-ckdir DIR] [-flight 256]
//
// SIGTERM or SIGINT triggers the drain. SIGQUIT dumps the flight recorder
// (the last -flight spans and metric marks) to stderr without exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/scipioneer/smart/internal/memmodel"
	"github.com/scipioneer/smart/internal/obs"
	"github.com/scipioneer/smart/internal/serve"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, nil); err != nil {
		fmt.Fprintln(os.Stderr, "smartd:", err)
		os.Exit(1)
	}
}

// run is the daemon body, factored out of main so the shutdown path is
// testable in-process: when ready is non-nil it receives the bound listen
// address once the service is up.
func run(args []string, out io.Writer, ready chan<- string) error {
	fs := flag.NewFlagSet("smartd", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", ":8080", "listen address")
		queue    = fs.Int("queue", 16, "bounded job-queue capacity")
		workers  = fs.Int("workers", 2, "worker pool size (concurrent jobs)")
		memBytes = fs.Int64("mem-bytes", 0, "virtual memory node capacity for admission control (0 = off)")
		deadline = fs.Duration("deadline", 0, "default per-job execution deadline (0 = none)")
		grace    = fs.Duration("grace", 10*time.Second, "drain grace period before inflight jobs are checkpointed")
		ckdir    = fs.String("ckdir", "", "checkpoint directory for drained jobs (default os temp dir)")
		flight   = fs.Int("flight", 256, "flight-recorder capacity in events (0 = off); SIGQUIT dumps it to stderr")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *flight > 0 {
		fr := obs.NewFlightRecorder(*flight)
		obs.Default().SetFlightRecorder(fr)
		stopDump := obs.DumpOnSignal(fr, syscall.SIGQUIT, os.Stderr)
		defer stopDump()
	}

	cfg := serve.Config{
		Queue:           *queue,
		Workers:         *workers,
		DefaultDeadline: *deadline,
		CheckpointDir:   *ckdir,
	}
	if cfg.CheckpointDir == "" {
		cfg.CheckpointDir = os.TempDir()
	}
	if *memBytes > 0 {
		cfg.Mem = memmodel.NewNode(*memBytes)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	srv := serve.NewServer(cfg)
	hs := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 10 * time.Second}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	fmt.Fprintf(out, "smartd: serving on %s (queue=%d workers=%d)\n", ln.Addr(), *queue, *workers)
	if ready != nil {
		ready <- ln.Addr().String()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	select {
	case s := <-sig:
		fmt.Fprintf(out, "smartd: %v: draining (grace %v)\n", s, *grace)
	case err := <-serveErr:
		return fmt.Errorf("http server: %w", err)
	}

	// Drain first — it refuses new work, rejects queued jobs, and gives
	// in-flight jobs the grace period to finish before checkpointing them —
	// then stop the HTTP listener so late status/stream readers still get
	// their terminal records.
	srv.Drain(*grace)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return fmt.Errorf("http shutdown: %w", err)
	}
	for _, line := range jobSummaries(srv.List()) {
		fmt.Fprintln(out, line)
	}
	fmt.Fprintln(out, "smartd: drained, exiting")
	return nil
}

// jobSummaries renders one closing log line per job the server saw, with the
// runtime stats snapshot the serving layer embeds in completed results. The
// snapshot is what makes this safe to print at drain time: it was copied out
// of the scheduler with atomic loads when the job finished, so no drain-time
// read races a worker.
func jobSummaries(jobs []serve.JobView) []string {
	lines := make([]string, 0, len(jobs))
	for _, jv := range jobs {
		line := fmt.Sprintf("smartd: job %s app=%s status=%s", jv.ID, jv.App, jv.Status)
		if m, ok := jv.Result.(map[string]any); ok {
			if st, ok := m["stats"].(map[string]any); ok {
				line += fmt.Sprintf(" chunks=%v reduction_ns=%v local_combine_ns=%v global_combine_ns=%v serialized_bytes=%v",
					st["chunks_processed"], st["reduction_ns"], st["local_combine_ns"],
					st["global_combine_ns"], st["serialized_bytes"])
			}
		}
		if jv.Error != "" {
			line += " error=" + jv.Error
		}
		lines = append(lines, line)
	}
	return lines
}
