// Command smartsim drives a complete in-situ pipeline from the command
// line: pick a simulation, an analytics application, and an execution mode,
// and watch the coupled run. It is the "downstream user" front-end to the
// library — everything it does goes through the public runtime API.
//
//	smartsim -sim heat3d -nx 32 -ny 32 -nz 32 -steps 5 -app histogram
//	smartsim -sim lulesh -edge 24 -app kmeans -mode space
//	smartsim -sim emulator -elems 100000 -app moments -mode offline
//	smartsim -sim heat3d -app movingavg -trace
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/scipioneer/smart/internal/analytics"
	"github.com/scipioneer/smart/internal/core"
	"github.com/scipioneer/smart/internal/insitu"
	"github.com/scipioneer/smart/internal/obs"
	"github.com/scipioneer/smart/internal/sim"
)

type options struct {
	simName string
	nx, ny, nz,
	edge, elems int
	app         string
	mode        string
	steps       int
	threads     int
	window      int
	buckets     int
	k           int
	trace       bool
	metricsAddr string
	linger      time.Duration
	flight      int
}

func main() {
	var o options
	flag.StringVar(&o.simName, "sim", "heat3d", "simulation: heat3d, lulesh, emulator")
	flag.IntVar(&o.nx, "nx", 32, "heat3d x extent")
	flag.IntVar(&o.ny, "ny", 32, "heat3d y extent")
	flag.IntVar(&o.nz, "nz", 32, "heat3d z extent")
	flag.IntVar(&o.edge, "edge", 24, "lulesh cube edge")
	flag.IntVar(&o.elems, "elems", 100_000, "emulator elements per step")
	flag.StringVar(&o.app, "app", "histogram", "analytics: histogram, kmeans, moments, movingavg, topk")
	flag.StringVar(&o.mode, "mode", "time", "execution mode: time, space, offline")
	flag.IntVar(&o.steps, "steps", 5, "time-steps")
	flag.IntVar(&o.threads, "threads", 4, "analytics threads")
	flag.IntVar(&o.window, "window", 25, "moving average window")
	flag.IntVar(&o.buckets, "buckets", 16, "histogram buckets")
	flag.IntVar(&o.k, "k", 4, "clusters / extremes")
	flag.BoolVar(&o.trace, "trace", false, "print per-phase runtime timings")
	flag.StringVar(&o.metricsAddr, "metrics-addr", "", "serve live runtime metrics over HTTP on this address (e.g. :9090)")
	flag.DurationVar(&o.linger, "metrics-linger", 0, "keep the metrics endpoint up this long after the run finishes")
	flag.IntVar(&o.flight, "flight", 0, "flight-recorder capacity in events (0 = off); SIGQUIT dumps it to stderr")
	flag.Parse()

	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "smartsim:", err)
		os.Exit(1)
	}
}

func run(o options) error {
	if o.flight > 0 {
		fr := obs.NewFlightRecorder(o.flight)
		obs.Default().SetFlightRecorder(fr)
		stopDump := obs.DumpOnSignal(fr, syscall.SIGQUIT, os.Stderr)
		defer stopDump()
	}
	if o.metricsAddr != "" {
		srv, err := obs.Serve(o.metricsAddr, obs.DefaultRegistry())
		if err != nil {
			return err
		}
		fmt.Printf("metrics: http://%s/metrics (Prometheus text) and /metrics.json\n", srv.Addr())
		defer func() {
			if o.linger > 0 {
				// Interruptible linger: ctrl-C (or SIGTERM) ends the wait
				// early instead of leaving an unkillable sleep behind.
				fmt.Printf("metrics endpoint stays up for %v (ctrl-C to stop)\n", o.linger)
				sig := make(chan os.Signal, 1)
				signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
				select {
				case <-time.After(o.linger):
				case s := <-sig:
					fmt.Printf("metrics linger interrupted by %v\n", s)
				}
				signal.Stop(sig)
			}
			srv.Close()
		}()
	}

	simulation, err := makeSim(o)
	if err != nil {
		return err
	}
	pipeline, err := makeApp(o, len(simulation.Data()))
	if err != nil {
		return err
	}
	fmt.Printf("running %s + %s in %s sharing mode: %d steps of %d elements on %d threads\n",
		o.simName, o.app, o.mode, o.steps, len(simulation.Data()), o.threads)

	start := time.Now()
	switch o.mode {
	case "time":
		_, err = insitu.TimeSharing(simulation, pipeline.analyze, insitu.TimeSharingConfig{Steps: o.steps})
	case "space":
		_, err = insitu.SpaceSharing(simulation, pipeline.feed, pipeline.consume, pipeline.closeFeed,
			insitu.SpaceSharingConfig{Steps: o.steps})
	case "offline":
		var res insitu.OfflineResult
		res, err = insitu.Offline(simulation, pipeline.analyze, o.steps, insitu.DiskModel{})
		if err == nil {
			fmt.Printf("offline pipeline: sim %v, write %v, read %v, analytics %v (%d bytes spooled)\n",
				res.Sim.Round(time.Microsecond), res.Write.Round(time.Microsecond),
				res.Read.Round(time.Microsecond), res.Analytics.Round(time.Microsecond), res.Bytes)
		}
	default:
		return fmt.Errorf("unknown mode %q (want time, space, offline)", o.mode)
	}
	if err != nil {
		return err
	}
	fmt.Printf("completed in %v\n\n", time.Since(start).Round(time.Microsecond))
	pipeline.report()
	return nil
}

func makeSim(o options) (sim.Simulation, error) {
	switch o.simName {
	case "heat3d":
		return sim.NewHeat3D(sim.Heat3DConfig{NX: o.nx, NY: o.ny, NZ: o.nz, Threads: o.threads, Seed: 1})
	case "lulesh":
		return sim.NewLulesh(sim.LuleshConfig{Edge: o.edge, Threads: o.threads, Seed: 1})
	case "emulator":
		return sim.NewEmulator(sim.EmulatorConfig{StepElems: o.elems, Mean: 10, StdDev: 4, Seed: 1})
	}
	return nil, fmt.Errorf("unknown simulation %q (want heat3d, lulesh, emulator)", o.simName)
}

// pipeline adapts one analytics choice to the three drivers.
type pipeline struct {
	analyze   insitu.AnalyzeFn
	feed      func([]float64) error
	consume   func() error
	closeFeed func()
	report    func()
}

func makeApp(o options, stepElems int) (*pipeline, error) {
	args := core.SchedArgs{NumThreads: o.threads, ChunkSize: 1, NumIters: 1}
	if o.trace {
		args.OnPhase = func(phase string, d time.Duration) {
			fmt.Printf("    [trace] %-14s %v\n", phase, d.Round(time.Microsecond))
		}
	}

	switch o.app {
	case "histogram":
		app := analytics.NewHistogram(-10, 130, o.buckets)
		s := core.MustNewScheduler[float64, int64](app, args)
		acc := make([]int64, o.buckets)
		step := func(data []float64) error {
			s.ResetCombinationMap()
			out := make([]int64, o.buckets)
			if err := s.Run(data, out); err != nil {
				return err
			}
			for i := range acc {
				acc[i] += out[i]
			}
			return nil
		}
		return &pipeline{
			analyze: step,
			feed:    s.Feed,
			consume: func() error {
				s.ResetCombinationMap()
				out := make([]int64, o.buckets)
				if err := s.RunShared(out); err != nil {
					return err
				}
				for i := range acc {
					acc[i] += out[i]
				}
				return nil
			},
			closeFeed: s.CloseFeed,
			report: func() {
				fmt.Println("accumulated histogram:")
				var peak int64
				for _, c := range acc {
					if c > peak {
						peak = c
					}
				}
				for b, c := range acc {
					bar := ""
					if peak > 0 {
						for i := int64(0); i < c*32/peak; i++ {
							bar += "#"
						}
					}
					fmt.Printf("  bucket %2d %9d %s\n", b, c, bar)
				}
			},
		}, nil

	case "kmeans":
		const dims = 4
		app := analytics.NewKMeans(o.k, dims)
		kmArgs := args
		kmArgs.ChunkSize = dims
		kmArgs.NumIters = 5
		init := make([]float64, o.k*dims)
		for c := 0; c < o.k; c++ {
			for d := 0; d < dims; d++ {
				init[c*dims+d] = float64(c) * 120 / float64(o.k)
			}
		}
		kmArgs.Extra = init
		s := core.MustNewScheduler[float64, []float64](app, kmArgs)
		step := func(data []float64) error {
			return s.Run(data[:len(data)/dims*dims], nil)
		}
		return &pipeline{
			analyze:   step,
			feed:      s.Feed,
			consume:   func() error { return s.RunShared(nil) },
			closeFeed: s.CloseFeed,
			report: func() {
				fmt.Println("final centroids (tracked across all time-steps):")
				for c, row := range app.Centroids(s.CombinationMap()) {
					fmt.Printf("  cluster %d: %.3f\n", c, row)
				}
			},
		}, nil

	case "moments":
		app := analytics.NewMoments(0, 0)
		s := core.MustNewScheduler[float64, float64](app, args)
		// Accumulator pattern: a fresh map per step, merged into one
		// cross-step accumulator (non-iterative apps must not carry
		// accumulated state through the per-run distribution).
		acc := &analytics.MomentsObj{}
		fold := func() error {
			acc.Combine(s.CombinationMap()[0].(*analytics.MomentsObj))
			return nil
		}
		step := func(data []float64) error {
			s.ResetCombinationMap()
			if err := s.Run(data, nil); err != nil {
				return err
			}
			return fold()
		}
		return &pipeline{
			analyze: step,
			feed:    s.Feed,
			consume: func() error {
				s.ResetCombinationMap()
				if err := s.RunShared(nil); err != nil {
					return err
				}
				return fold()
			},
			closeFeed: s.CloseFeed,
			report: func() {
				fmt.Printf("field statistics over all steps: n=%d mean=%.4f stddev=%.4f skew=%.4f\n",
					acc.N, acc.Mean, math.Sqrt(acc.Variance()), acc.Skewness())
			},
		}, nil

	case "movingavg":
		app := analytics.NewMovingAverage(o.window, stepElems, 0, true)
		s := core.MustNewScheduler[float64, float64](app, args)
		out := make([]float64, stepElems)
		step := func(data []float64) error {
			s.ResetCombinationMap()
			return s.Run2(data, out)
		}
		return &pipeline{
			analyze: step,
			feed:    s.Feed,
			consume: func() error {
				s.ResetCombinationMap()
				return s.RunShared2(out)
			},
			closeFeed: s.CloseFeed,
			report: func() {
				st := s.Stats()
				fmt.Printf("last step smoothed: out[0..4] = %.4f\n", out[:min(5, len(out))])
				fmt.Printf("early emission: %d windows emitted during reduction, peak live objects %d\n",
					st.EmittedEarly, st.MaxLiveRedObjs)
			},
		}, nil

	case "topk":
		app := analytics.NewTopK(o.k, 0)
		s := core.MustNewScheduler[float64, float64](app, args)
		step := func(data []float64) error { return s.Run(data, nil) }
		return &pipeline{
			analyze:   step,
			feed:      s.Feed,
			consume:   func() error { return s.RunShared(nil) },
			closeFeed: s.CloseFeed,
			report: func() {
				fmt.Printf("top %d values across all steps:\n", o.k)
				for i, e := range app.Extremes(s.CombinationMap()) {
					fmt.Printf("  #%-2d %.4f at position %d\n", i+1, e.Val, e.Pos)
				}
			},
		}, nil
	}
	return nil, fmt.Errorf("unknown app %q (want histogram, kmeans, moments, movingavg, topk)", o.app)
}
