// Command obslint lints a Prometheus text exposition for the defects the
// obs exporter could regress into: duplicate or malformed families,
// duplicate series, bad label escapes, and broken histogram invariants.
// It reads stdin (or a file argument) and exits non-zero on any problem,
// so CI can pipe a live /metrics scrape straight through it.
//
// Usage:
//
//	curl -s localhost:9090/metrics | obslint
//	obslint exposition.txt
package main

import (
	"fmt"
	"io"
	"os"

	"github.com/scipioneer/smart/internal/obs"
)

func main() {
	var in io.Reader = os.Stdin
	if len(os.Args) > 1 && os.Args[1] != "-" {
		f, err := os.Open(os.Args[1])
		if err != nil {
			fmt.Fprintln(os.Stderr, "obslint:", err)
			os.Exit(2)
		}
		defer f.Close()
		in = f
	}
	if err := obs.LintExposition(in); err != nil {
		fmt.Fprintln(os.Stderr, "obslint: exposition problems:")
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println("obslint: exposition OK")
}
