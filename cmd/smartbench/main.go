// Command smartbench regenerates the tables and figures of the paper's
// evaluation (Section 5). Each figure id maps to one experiment of the
// harness package; the output is the same rows/series the paper plots.
//
// Usage:
//
//	smartbench -fig all            # every figure, full scale
//	smartbench -fig 9b             # one figure
//	smartbench -fig 5 -scale small # quick run
//
// Figure ids: 1, 5, 5mem, 6, 6loc, 7, 8, 9a, 9b, 10, 11a, 11b, plus the
// extension experiments ext1 (in-situ vs in-transit vs hybrid), sched
// (static vs work-stealing engine), and stream (continuous windowed
// queries, warm reseed vs per-window rebuild); "all" runs everything.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"github.com/scipioneer/smart/internal/codec"
	"github.com/scipioneer/smart/internal/harness"
	"github.com/scipioneer/smart/internal/obs"
)

// experiment adapts every harness entry point to a common shape.
type experiment struct {
	id  string
	run func(harness.Scale) ([]*harness.Result, error)
}

func one(f func(harness.Scale) (*harness.Result, error)) func(harness.Scale) ([]*harness.Result, error) {
	return func(s harness.Scale) ([]*harness.Result, error) {
		r, err := f(s)
		if err != nil {
			return nil, err
		}
		return []*harness.Result{r}, nil
	}
}

var experiments = []experiment{
	{"1", one(harness.Fig1)},
	{"5", harness.Fig5},
	{"5mem", one(harness.Fig5Mem)},
	{"6", harness.Fig6},
	{"6loc", func(harness.Scale) ([]*harness.Result, error) {
		r, err := harness.Fig6LoC()
		if err != nil {
			return nil, err
		}
		return []*harness.Result{r}, nil
	}},
	{"7", one(harness.Fig7)},
	{"8", one(harness.Fig8)},
	{"9a", one(harness.Fig9a)},
	{"9b", one(harness.Fig9b)},
	{"10", harness.Fig10},
	{"11a", one(harness.Fig11a)},
	{"11b", one(harness.Fig11b)},
	{"ext1", one(harness.FigExt1)},
	{"sched", one(harness.FigSched)},
	{"stream", one(harness.FigStream)},
}

func main() {
	fig := flag.String("fig", "all", "figure id to regenerate (1, 5, 5mem, 6, 6loc, 7, 8, 9a, 9b, 10, 11a, 11b, ext1, sched, stream, all)")
	scaleName := flag.String("scale", "full", "experiment scale: small or full")
	csvDir := flag.String("csv", "", "also write each figure as CSV into this directory")
	metricsFile := flag.String("metrics", "", "write a JSON snapshot of the runtime metrics to this file at exit")
	traceFile := flag.String("trace", "", "stream runtime phase spans to this file as JSON lines")
	chromeFile := flag.String("chrome-trace", "", "also convert the -trace JSONL into Chrome trace_event JSON at this path (open in Perfetto / chrome://tracing)")
	codecPin := flag.String("codec", "auto", "wire/checkpoint codec the experiments run with: auto (negotiate best), none, flate, or block")
	flag.Parse()

	if *codecPin != "auto" {
		enc, err := codec.Parse(*codecPin)
		if err != nil {
			fmt.Fprintln(os.Stderr, "-codec:", err)
			os.Exit(2)
		}
		codec.SetPreferred(enc)
	}

	scale, err := harness.ParseScale(*scaleName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *chromeFile != "" && *traceFile == "" {
		fmt.Fprintln(os.Stderr, "-chrome-trace requires -trace FILE to capture the spans first")
		os.Exit(2)
	}
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		w := bufio.NewWriter(f)
		obs.Default().SetTraceWriter(w)
		defer func() {
			obs.Default().SetTraceWriter(nil)
			w.Flush()
			f.Close()
			if *chromeFile != "" {
				if err := convertChromeTrace(*chromeFile, *traceFile); err != nil {
					fmt.Fprintf(os.Stderr, "chrome-trace: %v\n", err)
				}
			}
		}()
	}
	if *metricsFile != "" {
		defer func() {
			if err := writeMetrics(*metricsFile); err != nil {
				fmt.Fprintf(os.Stderr, "metrics: %v\n", err)
			}
		}()
	}

	ran := 0
	for _, e := range experiments {
		if *fig != "all" && *fig != e.id {
			continue
		}
		ran++
		start := time.Now()
		results, err := e.run(scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fig %s: %v\n", e.id, err)
			os.Exit(1)
		}
		for _, r := range results {
			r.Print(os.Stdout)
			if *csvDir != "" {
				if err := writeCSV(*csvDir, r); err != nil {
					fmt.Fprintf(os.Stderr, "fig %s csv: %v\n", e.id, err)
					os.Exit(1)
				}
			}
		}
		fmt.Printf("  [fig %s regenerated in %v]\n\n", e.id, time.Since(start).Round(time.Millisecond))
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "unknown figure id %q\n", *fig)
		os.Exit(2)
	}
}

// convertChromeTrace reads the JSONL span stream back and rewrites it as a
// Chrome trace_event file, so a single-process bench run gets the same
// viewer-ready artifact the cluster stitcher produces.
func convertChromeTrace(dst, src string) error {
	in, err := os.Open(src)
	if err != nil {
		return err
	}
	defer in.Close()
	out, err := os.Create(dst)
	if err != nil {
		return err
	}
	if err := obs.ConvertJSONLToChrome(out, in); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}

// writeMetrics snapshots the default registry as indented JSON.
func writeMetrics(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.DefaultRegistry().WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeCSV saves one figure's table under dir.
func writeCSV(dir string, r *harness.Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, r.CSVName()))
	if err != nil {
		return err
	}
	defer f.Close()
	return r.WriteCSV(f)
}
