package sparkbaseline

import (
	"fmt"
	"math"
)

// Histogram runs the equi-width histogram workload (Section 5.2, 100
// buckets) over the record stream, returning bucket counts.
func Histogram(e *Engine, data []float64, min, max float64, buckets, parts int) ([]int64, error) {
	width := (max - min) / float64(buckets)
	mapf := func(rec []float64, emit func(KV)) {
		k := int((rec[0] - min) / width)
		if k < 0 {
			k = 0
		}
		if k >= buckets {
			k = buckets - 1
		}
		emit(KV{Key: k, Value: []float64{1}})
	}
	redf := func(_ int, vals [][]float64) []float64 {
		s := 0.0
		for _, v := range vals {
			s += v[0]
		}
		return []float64{s}
	}
	pairs, err := e.RunStage(Partition(data, 1, parts), 1, mapf, redf)
	if err != nil {
		return nil, err
	}
	out := make([]int64, buckets)
	for _, kv := range pairs {
		out[kv.Key] = int64(kv.Value[0])
	}
	return out, nil
}

// KMeans runs the clustering workload (k centroids, dims dimensions, iters
// iterations) and returns the final centroid matrix. Every iteration is a
// fresh stage over a fresh immutable dataset, as the paper observes of
// Spark's iterative execution.
func KMeans(e *Engine, data []float64, init [][]float64, dims, iters, parts int) ([][]float64, error) {
	k := len(init)
	if k == 0 {
		return nil, fmt.Errorf("sparkbaseline: k-means needs initial centroids")
	}
	centroids := make([][]float64, k)
	for i := range centroids {
		centroids[i] = append([]float64(nil), init[i]...)
	}
	partitions := Partition(data, dims, parts)
	for it := 0; it < iters; it++ {
		cs := centroids
		mapf := func(rec []float64, emit func(KV)) {
			best, bestD := 0, math.Inf(1)
			for c := range cs {
				d := 0.0
				for j := range rec {
					diff := rec[j] - cs[c][j]
					d += diff * diff
				}
				if d < bestD {
					best, bestD = c, d
				}
			}
			// Emit (centroid id, point ++ 1) — sum and count travel together.
			v := make([]float64, dims+1)
			copy(v, rec)
			v[dims] = 1
			emit(KV{Key: best, Value: v})
		}
		redf := func(_ int, vals [][]float64) []float64 {
			acc := make([]float64, dims+1)
			for _, v := range vals {
				for j := range acc {
					acc[j] += v[j]
				}
			}
			return acc
		}
		pairs, err := e.RunStage(partitions, dims, mapf, redf)
		if err != nil {
			return nil, err
		}
		next := make([][]float64, k)
		for i := range next {
			next[i] = append([]float64(nil), centroids[i]...)
		}
		for _, kv := range pairs {
			n := kv.Value[dims]
			if n == 0 {
				continue
			}
			c := make([]float64, dims)
			for j := range c {
				c[j] = kv.Value[j] / n
			}
			next[kv.Key] = c
		}
		centroids = next
	}
	return centroids, nil
}

// LogReg runs the logistic regression workload (dims features + label per
// record) for iters gradient steps and returns the weights.
func LogReg(e *Engine, data []float64, dims, iters, parts int, learningRate float64) ([]float64, error) {
	rec := dims + 1
	w := make([]float64, dims)
	partitions := Partition(data, rec, parts)
	records := len(data) / rec
	for it := 0; it < iters; it++ {
		cur := append([]float64(nil), w...)
		mapf := func(r []float64, emit func(KV)) {
			z := 0.0
			for j := 0; j < dims; j++ {
				z += cur[j] * r[j]
			}
			err := 1/(1+math.Exp(-z)) - r[dims]
			g := make([]float64, dims)
			for j := range g {
				g[j] = err * r[j]
			}
			emit(KV{Key: 0, Value: g})
		}
		redf := func(_ int, vals [][]float64) []float64 {
			acc := make([]float64, dims)
			for _, v := range vals {
				for j := range acc {
					acc[j] += v[j]
				}
			}
			return acc
		}
		pairs, err := e.RunStage(partitions, rec, mapf, redf)
		if err != nil {
			return nil, err
		}
		if len(pairs) == 1 {
			for j := range w {
				w[j] -= learningRate / float64(records) * pairs[0].Value[j]
			}
		}
	}
	return w, nil
}
