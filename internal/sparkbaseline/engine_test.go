package sparkbaseline

import (
	"math"
	"testing"

	"github.com/scipioneer/smart/internal/analytics"
	"github.com/scipioneer/smart/internal/core"
)

func synth(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Mod(float64(i)*7.31, 100)
	}
	return out
}

func TestPartitionCoversRecords(t *testing.T) {
	data := synth(103)
	parts := Partition(data, 1, 4)
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	if total != 103 {
		t.Fatalf("partitions cover %d elements", total)
	}
	// Records must not be torn.
	rec3 := Partition(synth(99), 3, 4)
	for i, p := range rec3 {
		if len(p)%3 != 0 {
			t.Fatalf("partition %d tears records: %d elements", i, len(p))
		}
	}
}

func TestHistogramMatchesSmart(t *testing.T) {
	data := synth(5000)
	e := NewEngine(2)
	got, err := Histogram(e, data, 0, 100, 10, 4)
	if err != nil {
		t.Fatal(err)
	}

	app := analytics.NewHistogram(0, 100, 10)
	s := core.MustNewScheduler[float64, int64](app, core.SchedArgs{NumThreads: 2, ChunkSize: 1, NumIters: 1})
	want := make([]int64, 10)
	if err := s.Run(data, want); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket %d: baseline %d smart %d", i, got[i], want[i])
		}
	}
}

func TestKMeansMatchesSmart(t *testing.T) {
	// Two separated 2-D blobs.
	var data []float64
	for i := 0; i < 300; i++ {
		data = append(data, 1+0.1*math.Sin(float64(i)), 1+0.1*math.Cos(float64(i)))
		data = append(data, 9+0.1*math.Sin(float64(i)), 9+0.1*math.Cos(float64(i)))
	}
	init := [][]float64{{0, 0}, {10, 10}}
	e := NewEngine(2)
	got, err := KMeans(e, data, init, 2, 8, 3)
	if err != nil {
		t.Fatal(err)
	}

	app := analytics.NewKMeans(2, 2)
	s := core.MustNewScheduler[float64, []float64](app, core.SchedArgs{
		NumThreads: 2, ChunkSize: 2, NumIters: 8, Extra: []float64{0, 0, 10, 10},
	})
	if err := s.Run(data, nil); err != nil {
		t.Fatal(err)
	}
	want := app.Centroids(s.CombinationMap())
	for k := range want {
		for d := range want[k] {
			if math.Abs(got[k][d]-want[k][d]) > 1e-9 {
				t.Fatalf("centroid %d dim %d: baseline %v smart %v", k, d, got[k][d], want[k][d])
			}
		}
	}
}

func TestLogRegMatchesSmart(t *testing.T) {
	const dims, iters, n = 4, 6, 400
	const lr = 0.4
	rec := dims + 1
	data := make([]float64, n*rec)
	for i := 0; i < n; i++ {
		z := 0.0
		for j := 0; j < dims; j++ {
			v := math.Sin(float64(i*13 + j*7))
			data[i*rec+j] = v
			if j == 0 {
				z += 2 * v
			} else {
				z -= v
			}
		}
		if z > 0 {
			data[i*rec+dims] = 1
		}
	}
	e := NewEngine(2)
	got, err := LogReg(e, data, dims, iters, 3, lr)
	if err != nil {
		t.Fatal(err)
	}

	app := analytics.NewLogReg(dims, lr)
	s := core.MustNewScheduler[float64, float64](app, core.SchedArgs{
		NumThreads: 2, ChunkSize: rec, NumIters: iters,
	})
	if err := s.Run(data, nil); err != nil {
		t.Fatal(err)
	}
	want := app.Weights(s.CombinationMap())
	for j := range want {
		if math.Abs(got[j]-want[j]) > 1e-9 {
			t.Fatalf("weight %d: baseline %v smart %v", j, got[j], want[j])
		}
	}
}

func TestStatsExposeCostMechanisms(t *testing.T) {
	data := synth(1000)
	e := NewEngine(2)
	if _, err := Histogram(e, data, 0, 100, 10, 2); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	// Mechanism 1: one materialized pair per input element.
	if st.PairsEmitted.Load() != 1000 {
		t.Errorf("pairs emitted %d, want 1000", st.PairsEmitted.Load())
	}
	if st.PairBytes.Load() < 1000*16 {
		t.Errorf("pair bytes %d too small", st.PairBytes.Load())
	}
	// Mechanism 3: stage-boundary serialization happened.
	if st.ShuffleBytes.Load() == 0 {
		t.Error("no shuffle bytes recorded")
	}
	if st.StagesRun.Load() != 1 {
		t.Errorf("stages %d", st.StagesRun.Load())
	}
}

func TestIterationCostScalesWithStages(t *testing.T) {
	// Each k-means iteration re-materializes the full intermediate data —
	// the immutability cost the paper calls out.
	data := synth(600)
	e := NewEngine(1)
	if _, err := KMeans(e, data, [][]float64{{10}, {90}}, 1, 5, 2); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.StagesRun.Load() != 5 {
		t.Fatalf("stages %d, want 5", st.StagesRun.Load())
	}
	if st.PairsEmitted.Load() != 5*600 {
		t.Fatalf("pairs %d, want %d", st.PairsEmitted.Load(), 5*600)
	}
}

func TestPairCodec(t *testing.T) {
	pairs := []KV{{Key: 3, Value: []float64{1, 2}}, {Key: -1, Value: nil}}
	buf, err := encodePairs(pairs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodePairs(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Key != 3 || got[0].Value[1] != 2 || got[1].Key != -1 {
		t.Fatalf("roundtrip: %+v", got)
	}
	if _, err := decodePairs([]byte("junk")); err == nil {
		t.Error("decodePairs accepted junk")
	}
}

func TestEngineValidation(t *testing.T) {
	assertPanic := func(fn func()) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic")
			}
		}()
		fn()
	}
	assertPanic(func() { NewEngine(0) })
	assertPanic(func() { Partition(nil, 0, 1) })
	assertPanic(func() { Partition(nil, 1, 0) })
}

func TestEmptyKMeansInit(t *testing.T) {
	e := NewEngine(1)
	if _, err := KMeans(e, synth(10), nil, 1, 1, 1); err == nil {
		t.Fatal("empty init accepted")
	}
}
