// Package sparkbaseline is the comparison engine for the paper's Section 5.2
// experiments: a deliberately conventional MapReduce runtime embodying the
// three cost mechanisms the paper attributes Spark's gap to.
//
//  1. The map phase materializes every intermediate key-value pair before
//     any reduction happens, so intermediate data can exceed the input.
//  2. The shuffle sorts and groups the materialized pairs by key before the
//     reduce function sees them.
//  3. Every stage produces a new immutable dataset, and stage boundaries
//     serialize/deserialize the data (as Spark does even in local mode).
//
// It is a reproduction of those mechanisms, not of the Spark codebase; see
// DESIGN.md. The engine is exercised by the same three workloads the paper
// uses: histogram, k-means, and logistic regression.
package sparkbaseline

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// KV is one intermediate key-value pair. Values are float64 vectors, which
// covers all three comparison workloads.
type KV struct {
	Key   int
	Value []float64
}

// Stats counts the work the engine's cost mechanisms perform.
type Stats struct {
	// PairsEmitted is the total number of intermediate pairs materialized
	// by map phases.
	PairsEmitted atomic.Int64
	// PairBytes is the approximate heap footprint of materialized pairs.
	PairBytes atomic.Int64
	// ShuffleBytes counts bytes serialized at stage boundaries.
	ShuffleBytes atomic.Int64
	// StagesRun counts executed map+shuffle+reduce stages.
	StagesRun atomic.Int64
}

// StageTiming is one stage's measured cost breakdown, consumed by the
// replay performance model: map work parallelizes across workers; the
// shuffle (serialize, sort, group) and reduce are the stage's serial tail.
type StageTiming struct {
	// PartTimes are the per-partition map durations.
	PartTimes []time.Duration
	// ShuffleTime covers stage-boundary serialization, the sort, and
	// grouping.
	ShuffleTime time.Duration
	// ReduceTime covers the reduce folds.
	ReduceTime time.Duration
}

// MaxPart returns the slowest partition's map time.
func (t StageTiming) MaxPart() time.Duration {
	var m time.Duration
	for _, d := range t.PartTimes {
		if d > m {
			m = d
		}
	}
	return m
}

// Engine is the mini runtime: a worker pool plus stage plumbing.
type Engine struct {
	threads int
	stats   Stats

	mu      sync.Mutex
	timings []StageTiming
}

// Timings returns the per-stage timing records accumulated so far.
func (e *Engine) Timings() []StageTiming {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]StageTiming(nil), e.timings...)
}

// NewEngine creates an engine with the given worker count.
func NewEngine(threads int) *Engine {
	if threads <= 0 {
		panic("sparkbaseline: threads must be positive")
	}
	return &Engine{threads: threads}
}

// Stats exposes the engine's counters.
func (e *Engine) Stats() *Stats { return &e.stats }

// Partition splits a record stream into roughly equal partitions of whole
// records (recLen elements each).
func Partition(data []float64, recLen, parts int) [][]float64 {
	if recLen <= 0 || parts <= 0 {
		panic("sparkbaseline: invalid partitioning")
	}
	records := len(data) / recLen
	out := make([][]float64, parts)
	per, rem := records/parts, records%parts
	pos := 0
	for i := range out {
		n := per
		if i < rem {
			n++
		}
		out[i] = data[pos*recLen : (pos+n)*recLen]
		pos += n
	}
	return out
}

// MapFunc emits zero or more pairs for one record.
type MapFunc func(record []float64, emit func(KV))

// ReduceFunc folds a group of values for one key into a single value.
type ReduceFunc func(key int, values [][]float64) []float64

// RunStage executes one full map → shuffle → reduce stage over the
// partitions and returns the reduced pairs sorted by key. Each call pays the
// engine's three costs in full: pair materialization, serialization at the
// map/reduce boundary, and sort+group.
func (e *Engine) RunStage(parts [][]float64, recLen int, mapf MapFunc, redf ReduceFunc) ([]KV, error) {
	e.stats.StagesRun.Add(1)
	timing := StageTiming{PartTimes: make([]time.Duration, len(parts))}

	// Map phase: materialize all intermediate pairs, one output bucket per
	// partition, partitions processed by the worker pool.
	mapped := make([][]KV, len(parts))
	var wg sync.WaitGroup
	sem := make(chan struct{}, e.threads)
	for p := range parts {
		p := p
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			partStart := time.Now()
			defer func() { timing.PartTimes[p] = time.Since(partStart) }()
			var out []KV
			part := parts[p]
			for i := 0; i+recLen <= len(part); i += recLen {
				mapf(part[i:i+recLen], func(kv KV) {
					// The immutability contract: the engine owns a copy.
					v := append([]float64(nil), kv.Value...)
					out = append(out, KV{Key: kv.Key, Value: v})
					e.stats.PairsEmitted.Add(1)
					e.stats.PairBytes.Add(int64(16 + 8*len(v)))
				})
			}
			mapped[p] = out
		}()
	}
	wg.Wait()

	// Stage boundary: serialize and deserialize every partition's pairs,
	// as a new immutable dataset would be formed.
	shuffleStart := time.Now()
	for p := range mapped {
		buf, err := encodePairs(mapped[p])
		if err != nil {
			return nil, err
		}
		e.stats.ShuffleBytes.Add(int64(len(buf)))
		mapped[p], err = decodePairs(buf)
		if err != nil {
			return nil, err
		}
	}

	// Shuffle: concatenate, sort by key, group runs.
	var all []KV
	for _, m := range mapped {
		all = append(all, m...)
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].Key < all[j].Key })
	timing.ShuffleTime = time.Since(shuffleStart)

	// Reduce: fold each key's group.
	reduceStart := time.Now()
	var out []KV
	for i := 0; i < len(all); {
		j := i
		for j < len(all) && all[j].Key == all[i].Key {
			j++
		}
		group := make([][]float64, 0, j-i)
		for _, kv := range all[i:j] {
			group = append(group, kv.Value)
		}
		out = append(out, KV{Key: all[i].Key, Value: redf(all[i].Key, group)})
		i = j
	}
	timing.ReduceTime = time.Since(reduceStart)
	e.mu.Lock()
	e.timings = append(e.timings, timing)
	e.mu.Unlock()
	return out, nil
}

// encodePairs serializes pairs with gob, the stage-boundary cost.
func encodePairs(pairs []KV) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(pairs); err != nil {
		return nil, fmt.Errorf("sparkbaseline: encode: %w", err)
	}
	return buf.Bytes(), nil
}

// decodePairs reverses encodePairs.
func decodePairs(buf []byte) ([]KV, error) {
	var pairs []KV
	if err := gob.NewDecoder(bytes.NewReader(buf)).Decode(&pairs); err != nil {
		return nil, fmt.Errorf("sparkbaseline: decode: %w", err)
	}
	return pairs, nil
}
