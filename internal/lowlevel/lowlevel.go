// Package lowlevel provides the hand-written MPI/OpenMP-style analytics the
// paper compares Smart against in Section 5.3: k-means and logistic
// regression implemented directly on contiguous arrays, with thread-private
// accumulators combined locally and one Allreduce over a flat buffer per
// iteration. These are the implementations whose parallelization boilerplate
// Smart eliminates — and whose contiguous-buffer synchronization is slightly
// cheaper than Smart's serialized reduction-map combination.
package lowlevel

import (
	"fmt"
	"math"
	"sync"

	"github.com/scipioneer/smart/internal/mpi"
)

// threadAccumulate partitions records [0, n) across threads, gives each
// thread a private accumulator of accLen float64s, and sums the thread
// accumulators into one flat buffer — the OpenMP reduction idiom.
func threadAccumulate(n, threads, accLen int, body func(rec int, acc []float64)) []float64 {
	if threads <= 1 {
		acc := make([]float64, accLen)
		for r := 0; r < n; r++ {
			body(r, acc)
		}
		return acc
	}
	accs := make([][]float64, threads)
	var wg sync.WaitGroup
	per, rem := n/threads, n%threads
	start := 0
	for t := 0; t < threads; t++ {
		count := per
		if t < rem {
			count++
		}
		from, to := start, start+count
		start = to
		t := t
		wg.Add(1)
		go func() {
			defer wg.Done()
			acc := make([]float64, accLen)
			for r := from; r < to; r++ {
				body(r, acc)
			}
			accs[t] = acc
		}()
	}
	wg.Wait()
	total := make([]float64, accLen)
	for _, acc := range accs {
		for i, v := range acc {
			total[i] += v
		}
	}
	return total
}

// allreduce sums buf across the communicator (identity when comm is nil).
func allreduce(comm *mpi.Comm, buf []float64) ([]float64, error) {
	if comm == nil || comm.Size() == 1 {
		return buf, nil
	}
	return comm.AllreduceFloat64s(buf, mpi.OpSum)
}

// KMeans clusters dims-dimensional points with the hand-rolled data layout:
// per-iteration accumulators are a flat [k*(dims+1)] buffer (sums then
// count per cluster) synchronized with a single Allreduce.
func KMeans(comm *mpi.Comm, data []float64, init []float64, k, dims, iters, threads int) ([]float64, error) {
	if k <= 0 || dims <= 0 || len(init) != k*dims {
		return nil, fmt.Errorf("lowlevel: bad k-means parameters k=%d dims=%d init=%d", k, dims, len(init))
	}
	centroids := append([]float64(nil), init...)
	n := len(data) / dims
	stride := dims + 1
	for it := 0; it < iters; it++ {
		acc := threadAccumulate(n, threads, k*stride, func(r int, acc []float64) {
			p := data[r*dims : (r+1)*dims]
			best, bestD := 0, math.Inf(1)
			for c := 0; c < k; c++ {
				row := centroids[c*dims : (c+1)*dims]
				d := 0.0
				for j, v := range p {
					diff := v - row[j]
					d += diff * diff
				}
				if d < bestD {
					best, bestD = c, d
				}
			}
			for j := 0; j < dims; j++ {
				acc[best*stride+j] += p[j]
			}
			acc[best*stride+dims]++
		})
		global, err := allreduce(comm, acc)
		if err != nil {
			return nil, err
		}
		for c := 0; c < k; c++ {
			count := global[c*stride+dims]
			if count == 0 {
				continue
			}
			for j := 0; j < dims; j++ {
				centroids[c*dims+j] = global[c*stride+j] / count
			}
		}
	}
	return centroids, nil
}

// LogReg trains logistic regression over (dims features + label) records:
// the per-iteration accumulator is a flat [dims+1] buffer (gradient then
// count) synchronized with a single Allreduce.
func LogReg(comm *mpi.Comm, data []float64, dims, iters, threads int, learningRate float64) ([]float64, error) {
	if dims <= 0 || learningRate <= 0 {
		return nil, fmt.Errorf("lowlevel: bad logistic regression parameters")
	}
	rec := dims + 1
	n := len(data) / rec
	w := make([]float64, dims)
	for it := 0; it < iters; it++ {
		acc := threadAccumulate(n, threads, dims+1, func(r int, acc []float64) {
			x := data[r*rec : r*rec+dims]
			y := data[r*rec+dims]
			z := 0.0
			for j := range w {
				z += w[j] * x[j]
			}
			e := 1/(1+math.Exp(-z)) - y
			for j := 0; j < dims; j++ {
				acc[j] += e * x[j]
			}
			acc[dims]++
		})
		global, err := allreduce(comm, acc)
		if err != nil {
			return nil, err
		}
		if count := global[dims]; count > 0 {
			for j := range w {
				w[j] -= learningRate / count * global[j]
			}
		}
	}
	return w, nil
}
