package lowlevel

import (
	"math"
	"sync"
	"testing"

	"github.com/scipioneer/smart/internal/analytics"
	"github.com/scipioneer/smart/internal/core"
	"github.com/scipioneer/smart/internal/mpi"
)

func blob2D(n int) []float64 {
	var data []float64
	for i := 0; i < n; i++ {
		data = append(data, 1+0.2*math.Sin(float64(i)), 2+0.2*math.Cos(float64(i)))
		data = append(data, 8+0.2*math.Sin(float64(i)), 9+0.2*math.Cos(float64(i)))
	}
	return data
}

func TestKMeansMatchesSmart(t *testing.T) {
	data := blob2D(200)
	init := []float64{0, 0, 10, 10}
	got, err := KMeans(nil, data, init, 2, 2, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	app := analytics.NewKMeans(2, 2)
	s := core.MustNewScheduler[float64, []float64](app, core.SchedArgs{
		NumThreads: 2, ChunkSize: 2, NumIters: 10, Extra: init,
	})
	if err := s.Run(data, nil); err != nil {
		t.Fatal(err)
	}
	want := app.Centroids(s.CombinationMap())
	for c := 0; c < 2; c++ {
		for d := 0; d < 2; d++ {
			if math.Abs(got[c*2+d]-want[c][d]) > 1e-9 {
				t.Fatalf("centroid %d dim %d: lowlevel %v smart %v", c, d, got[c*2+d], want[c][d])
			}
		}
	}
}

func TestLogRegMatchesSmart(t *testing.T) {
	const dims, iters = 3, 8
	const lr = 0.3
	rec := dims + 1
	n := 300
	data := make([]float64, n*rec)
	for i := 0; i < n; i++ {
		z := 0.0
		for j := 0; j < dims; j++ {
			v := math.Sin(float64(i*29 + j*11))
			data[i*rec+j] = v
			z += (float64(j) - 1) * v
		}
		if z > 0 {
			data[i*rec+dims] = 1
		}
	}
	got, err := LogReg(nil, data, dims, iters, 3, lr)
	if err != nil {
		t.Fatal(err)
	}
	app := analytics.NewLogReg(dims, lr)
	s := core.MustNewScheduler[float64, float64](app, core.SchedArgs{
		NumThreads: 3, ChunkSize: rec, NumIters: iters,
	})
	if err := s.Run(data, nil); err != nil {
		t.Fatal(err)
	}
	want := app.Weights(s.CombinationMap())
	for j := range want {
		if math.Abs(got[j]-want[j]) > 1e-9 {
			t.Fatalf("weight %d: lowlevel %v smart %v", j, got[j], want[j])
		}
	}
}

func TestDistributedKMeans(t *testing.T) {
	data := blob2D(200)
	init := []float64{0, 0, 10, 10}
	want, err := KMeans(nil, data, init, 2, 2, 6, 1)
	if err != nil {
		t.Fatal(err)
	}

	const ranks = 4
	per := len(data) / ranks / 2 * 2
	comms := mpi.NewWorld(ranks)
	results := make([][]float64, ranks)
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer comms[r].Close()
			got, err := KMeans(comms[r], data[r*per:(r+1)*per], init, 2, 2, 6, 2)
			if err != nil {
				t.Errorf("rank %d: %v", r, err)
				return
			}
			results[r] = got
		}()
	}
	wg.Wait()
	for r := range results {
		for i := range want {
			if math.Abs(results[r][i]-want[i]) > 1e-9 {
				t.Fatalf("rank %d coord %d: %v vs %v", r, i, results[r][i], want[i])
			}
		}
	}
}

func TestThreadInvariance(t *testing.T) {
	data := blob2D(150)
	init := []float64{0, 0, 10, 10}
	want, _ := KMeans(nil, data, init, 2, 2, 5, 1)
	for _, threads := range []int{2, 4, 7} {
		got, _ := KMeans(nil, data, init, 2, 2, 5, threads)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-9 {
				t.Fatalf("threads=%d coord %d: %v vs %v", threads, i, got[i], want[i])
			}
		}
	}
}

func TestValidation(t *testing.T) {
	if _, err := KMeans(nil, nil, []float64{1}, 2, 2, 1, 1); err == nil {
		t.Error("bad init accepted")
	}
	if _, err := LogReg(nil, nil, 0, 1, 1, 0.1); err == nil {
		t.Error("bad dims accepted")
	}
}
