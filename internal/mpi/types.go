package mpi

import (
	"encoding/binary"
	"fmt"
	"math"
)

// EncodeFloat64s packs xs into a little-endian byte payload.
func EncodeFloat64s(xs []float64) []byte {
	buf := make([]byte, 8*len(xs))
	for i, x := range xs {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(x))
	}
	return buf
}

// DecodeFloat64s reverses EncodeFloat64s.
func DecodeFloat64s(buf []byte) ([]float64, error) {
	if len(buf)%8 != 0 {
		return nil, fmt.Errorf("mpi: float64 payload length %d not a multiple of 8", len(buf))
	}
	xs := make([]float64, len(buf)/8)
	for i := range xs {
		xs[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	return xs, nil
}

// EncodeInt64s packs xs into a little-endian byte payload.
func EncodeInt64s(xs []int64) []byte {
	buf := make([]byte, 8*len(xs))
	for i, x := range xs {
		binary.LittleEndian.PutUint64(buf[8*i:], uint64(x))
	}
	return buf
}

// DecodeInt64s reverses EncodeInt64s.
func DecodeInt64s(buf []byte) ([]int64, error) {
	if len(buf)%8 != 0 {
		return nil, fmt.Errorf("mpi: int64 payload length %d not a multiple of 8", len(buf))
	}
	xs := make([]int64, len(buf)/8)
	for i := range xs {
		xs[i] = int64(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	return xs, nil
}

// Op is an elementwise reduction operator for the typed collectives.
type Op int

// Supported elementwise operators.
const (
	OpSum Op = iota
	OpMin
	OpMax
)

func (o Op) applyFloat64(a, b float64) float64 {
	switch o {
	case OpSum:
		return a + b
	case OpMin:
		return math.Min(a, b)
	case OpMax:
		return math.Max(a, b)
	}
	panic(fmt.Sprintf("mpi: unknown op %d", int(o)))
}

func (o Op) applyInt64(a, b int64) int64 {
	switch o {
	case OpSum:
		return a + b
	case OpMin:
		return min(a, b)
	case OpMax:
		return max(a, b)
	}
	panic(fmt.Sprintf("mpi: unknown op %d", int(o)))
}

func float64ReduceFunc(op Op) ReduceFunc {
	return func(a, b []byte) ([]byte, error) {
		xs, err := DecodeFloat64s(a)
		if err != nil {
			return nil, err
		}
		ys, err := DecodeFloat64s(b)
		if err != nil {
			return nil, err
		}
		if len(xs) != len(ys) {
			return nil, fmt.Errorf("mpi: reduce length mismatch %d vs %d", len(xs), len(ys))
		}
		for i := range xs {
			xs[i] = op.applyFloat64(xs[i], ys[i])
		}
		return EncodeFloat64s(xs), nil
	}
}

func int64ReduceFunc(op Op) ReduceFunc {
	return func(a, b []byte) ([]byte, error) {
		xs, err := DecodeInt64s(a)
		if err != nil {
			return nil, err
		}
		ys, err := DecodeInt64s(b)
		if err != nil {
			return nil, err
		}
		if len(xs) != len(ys) {
			return nil, fmt.Errorf("mpi: reduce length mismatch %d vs %d", len(xs), len(ys))
		}
		for i := range xs {
			xs[i] = op.applyInt64(xs[i], ys[i])
		}
		return EncodeInt64s(xs), nil
	}
}

// AllreduceFloat64s performs an elementwise Allreduce over equal-length
// float64 vectors, the MPI_Allreduce(MPI_DOUBLE) workhorse of the low-level
// baselines.
func (c *Comm) AllreduceFloat64s(xs []float64, op Op) ([]float64, error) {
	out, err := c.Allreduce(EncodeFloat64s(xs), float64ReduceFunc(op))
	if err != nil {
		return nil, err
	}
	return DecodeFloat64s(out)
}

// AllreduceInt64s performs an elementwise Allreduce over equal-length int64
// vectors.
func (c *Comm) AllreduceInt64s(xs []int64, op Op) ([]int64, error) {
	out, err := c.Allreduce(EncodeInt64s(xs), int64ReduceFunc(op))
	if err != nil {
		return nil, err
	}
	return DecodeInt64s(out)
}

// SendFloat64s sends a float64 vector point-to-point.
func (c *Comm) SendFloat64s(dst, tag int, xs []float64) error {
	return c.Send(dst, tag, EncodeFloat64s(xs))
}

// RecvFloat64s receives a float64 vector point-to-point.
func (c *Comm) RecvFloat64s(src, tag int) ([]float64, error) {
	buf, err := c.Recv(src, tag)
	if err != nil {
		return nil, err
	}
	return DecodeFloat64s(buf)
}

// BcastFloat64s broadcasts a float64 vector from root.
func (c *Comm) BcastFloat64s(root int, xs []float64) ([]float64, error) {
	var payload []byte
	if c.Rank() == root {
		payload = EncodeFloat64s(xs)
	}
	out, err := c.Bcast(root, payload)
	if err != nil {
		return nil, err
	}
	return DecodeFloat64s(out)
}
