package mpi

import (
	"encoding/binary"
	"fmt"
)

// ReduceStream is a segmented, streamed reduction to root along the same
// binomial tree as Reduce, built for operands that are expensive to
// re-serialize — combination maps. Where Reduce hands the reduce function
// two opaque serialized payloads per tree level (forcing decode-both +
// re-encode at every hop), ReduceStream keeps each rank's state decoded:
//
//   - a rank that receives takes its children's segments one message at a
//     time and hands each to merge as it arrives, so communication of the
//     next segment overlaps the merging of the previous one;
//   - a rank that sends serializes each of its nseg segments exactly once
//     via enc, immediately before the send.
//
// Segment counts may differ across ranks (each sender prefixes its own
// count), so merge must route incoming entries by content rather than trust
// the segment index to align with local segmentation. The buffer enc returns
// is fully copied out by the transport before the next enc call, so callers
// may serialize every segment into one reusable scratch buffer.
//
// ReduceStream returns true on the rank that holds the fully merged state
// (root) and false elsewhere. Like every collective, it must be entered by
// all ranks of the communicator in the same global order.
func (c *Comm) ReduceStream(root int, nseg int,
	enc func(seg int) ([]byte, error), merge func(seg int, payload []byte) error) (bool, error) {

	if err := c.checkPeer(root); err != nil {
		return false, err
	}
	if nseg < 0 {
		return false, fmt.Errorf("mpi: reduce stream with negative segment count %d", nseg)
	}
	defer c.timeCollective("reducestream")()
	defer c.lock()()
	seq := c.seq.Add(1)
	tag := c.ctag(opReduceStream, seq)

	p := c.Size()
	vr := (c.Rank() - root + p) % p
	for mask := 1; mask < p; mask <<= 1 {
		if vr&mask != 0 {
			// Send this rank's merged state up the tree: a count frame, then
			// one message per segment, serialized on demand.
			dst := (vr - mask + root) % p
			var hdr [4]byte
			binary.LittleEndian.PutUint32(hdr[:], uint32(nseg))
			if err := c.tsend(dst, tag, hdr[:]); err != nil {
				return false, err
			}
			for seg := 0; seg < nseg; seg++ {
				payload, err := enc(seg)
				if err != nil {
					return false, err
				}
				if err := c.tsend(dst, tag, payload); err != nil {
					return false, err
				}
			}
			return false, nil
		}
		srcVR := vr | mask
		if srcVR >= p {
			continue
		}
		src := (srcVR + root) % p
		hdr, err := c.trecv(src, tag)
		if err != nil {
			return false, err
		}
		if len(hdr) != 4 {
			return false, fmt.Errorf("mpi: reduce stream: bad segment-count frame of %d bytes", len(hdr))
		}
		n := int(binary.LittleEndian.Uint32(hdr))
		for seg := 0; seg < n; seg++ {
			payload, err := c.trecv(src, tag)
			if err != nil {
				return false, err
			}
			if err := merge(seg, payload); err != nil {
				return false, err
			}
		}
	}
	return true, nil
}
