package mpi

import (
	"fmt"

	"github.com/scipioneer/smart/internal/codec"
	"github.com/scipioneer/smart/internal/obs"
)

// subTagStride spaces each sub-communicator's tag band. The parent's user
// and internal collective tags all fall below one stride, so traffic on a
// sub-communicator can never match receives on the parent or on a different
// band's sub-communicator.
const subTagStride = 1 << 30

// subTransport restricts a parent transport to a subset of ranks,
// translating sub ranks to world ranks and shifting tags into the
// sub-communicator's band.
type subTransport struct {
	parent     Transport
	worldRanks []int // sub rank -> world rank
	myRank     int   // this endpoint's sub rank
	tagOffset  int
}

// SubComm returns a communicator over the given world ranks (which must
// include this communicator's own rank; its position defines the new rank).
// All members of one logical sub-communicator must pass the same rank list
// and the same band; distinct concurrently-used sub-communicators must use
// distinct bands in [0, 2^32). Point-to-point and collectives on the result
// cannot interfere with traffic on the parent or on other bands. Closing a
// sub-communicator is a no-op; close the parent instead.
func (c *Comm) SubComm(worldRanks []int, band int) (*Comm, error) {
	if len(worldRanks) == 0 {
		return nil, fmt.Errorf("mpi: empty sub-communicator")
	}
	if band < 0 {
		return nil, fmt.Errorf("mpi: negative sub-communicator band %d", band)
	}
	me := -1
	seen := make(map[int]bool, len(worldRanks))
	for i, r := range worldRanks {
		if r < 0 || r >= c.Size() {
			return nil, fmt.Errorf("mpi: sub-communicator rank %d out of range [0,%d)", r, c.Size())
		}
		if seen[r] {
			return nil, fmt.Errorf("mpi: duplicate rank %d in sub-communicator", r)
		}
		seen[r] = true
		if r == c.Rank() {
			me = i
		}
	}
	if me < 0 {
		return nil, fmt.Errorf("mpi: rank %d not a member of the sub-communicator %v", c.Rank(), worldRanks)
	}
	t := &subTransport{
		parent:     c.t,
		worldRanks: append([]int(nil), worldRanks...),
		myRank:     me,
		tagOffset:  (band + 1) * subTagStride,
	}
	return NewComm(t), nil
}

func (t *subTransport) Rank() int { return t.myRank }
func (t *subTransport) Size() int { return len(t.worldRanks) }

// wireEncoding delegates to the parent: a sub-communicator's frames travel
// the parent's connections, so they compress (or don't) exactly as the
// parent pair negotiated.
func (t *subTransport) wireEncoding(peer int) codec.Encoding {
	if we, ok := t.parent.(wireEncoder); ok && peer >= 0 && peer < len(t.worldRanks) {
		return we.wireEncoding(t.worldRanks[peer])
	}
	return codec.None
}

func (t *subTransport) Send(dst, tag int, payload []byte, tc obs.TraceContext) error {
	return t.parent.Send(t.worldRanks[dst], tag+t.tagOffset, payload, tc)
}

func (t *subTransport) Recv(src, tag int) ([]byte, obs.TraceContext, error) {
	buf, tc, err := t.parent.Recv(t.worldRanks[src], tag+t.tagOffset)
	if err != nil {
		return nil, obs.TraceContext{}, err
	}
	return buf, tc, nil
}

// Close is a no-op: the parent endpoint owns the resources.
func (t *subTransport) Close() error { return nil }
