package mpi

import (
	"encoding/json"
	"fmt"
	"net"
	"time"

	"github.com/scipioneer/smart/internal/codec"
)

// joinTimeout bounds the whole rendezvous + mesh wiring; a world whose
// ranks have not all arrived within it fails loudly instead of hanging a
// daemon boot forever.
const joinTimeout = 30 * time.Second

// joinHello is a worker's rendezvous registration; joinTable is the
// coordinator's reply once every rank has arrived.
type joinHello struct {
	Rank int    `json:"rank"`
	Addr string `json:"addr"`
}

type joinTable struct {
	Addrs []string `json:"addrs"`
	Err   string   `json:"err,omitempty"`
}

// JoinTCPWorld wires this process into a size-rank TCP world and returns
// its communicator. Unlike NewTCPWorld — which builds all ranks inside one
// process — every participating process calls JoinTCPWorld with its own
// rank, so a world can span OS processes (and hosts). Rank 0 listens on
// coordAddr as the rendezvous point; the other ranks dial it (retrying
// while it boots), register their data-listener addresses, and receive the
// full address table back. The data mesh is then wired exactly like
// NewTCPWorld's: lower ranks accept from higher ranks, a dialer identifies
// itself with a hello carrying its rank and codec-support mask (the acceptor
// replies with its own mask, fixing the pair's wire codec), and every
// connection gets a reader goroutine feeding the rank's mailbox.
func JoinTCPWorld(size, rank int, coordAddr string) (*Comm, error) {
	if size <= 0 {
		return nil, fmt.Errorf("mpi: invalid world size %d", size)
	}
	if rank < 0 || rank >= size {
		return nil, fmt.Errorf("mpi: rank %d outside world of size %d", rank, size)
	}
	t := &tcpTransport{
		rank:  rank,
		size:  size,
		box:   newMailbox(),
		conns: make([]*tcpConn, size),
		mask:  codec.PreferredMask(),
		encs:  make([]codec.Encoding, size),
	}
	if size == 1 {
		return NewComm(t), nil
	}
	deadline := time.Now().Add(joinTimeout)

	var addrs []string
	var data net.Listener
	var err error
	if rank == 0 {
		addrs, data, err = coordinateJoin(size, coordAddr, deadline)
	} else {
		addrs, data, err = workerJoin(rank, coordAddr, deadline)
	}
	if err != nil {
		return nil, err
	}
	defer data.Close()
	if dl, ok := data.(*net.TCPListener); ok {
		dl.SetDeadline(deadline)
	}

	// Wire the mesh: accept from higher ranks, dial lower ranks.
	errc := make(chan error, size)
	go func() {
		for peer := rank + 1; peer < size; peer++ {
			conn, err := data.Accept()
			if err != nil {
				errc <- fmt.Errorf("mpi: rank %d accept: %w", rank, err)
				return
			}
			from, peerMask, err := readMeshHello(conn)
			if err != nil {
				errc <- fmt.Errorf("mpi: rank %d mesh hello: %w", rank, err)
				return
			}
			if from <= rank || from >= size {
				errc <- fmt.Errorf("mpi: rank %d got invalid mesh hello from %d", rank, from)
				return
			}
			if err := writeMaskReply(conn, t.mask); err != nil {
				errc <- fmt.Errorf("mpi: rank %d mesh hello reply to %d: %w", rank, from, err)
				return
			}
			t.conns[from] = &tcpConn{c: conn}
			t.encs[from] = codec.Negotiate(t.mask, peerMask)
		}
		errc <- nil
	}()
	go func() {
		for peer := 0; peer < rank; peer++ {
			conn, err := net.DialTimeout("tcp", addrs[peer], time.Until(deadline))
			if err != nil {
				errc <- fmt.Errorf("mpi: rank %d dial %d: %w", rank, peer, err)
				return
			}
			peerMask, err := meshHandshake(conn, rank, t.mask)
			if err != nil {
				errc <- fmt.Errorf("mpi: rank %d mesh hello to %d: %w", rank, peer, err)
				return
			}
			t.conns[peer] = &tcpConn{c: conn}
			t.encs[peer] = codec.Negotiate(t.mask, peerMask)
		}
		errc <- nil
	}()
	for i := 0; i < 2; i++ {
		if err := <-errc; err != nil {
			t.Close()
			return nil, err
		}
	}

	for peer, tc := range t.conns {
		if tc == nil {
			continue
		}
		go t.readLoop(peer, tc)
	}
	return NewComm(t), nil
}

// dataListener opens this rank's mesh listener on the interface it shares
// with the rendezvous point, so the advertised address is reachable by the
// other ranks even on multi-homed hosts.
func dataListener(host string) (net.Listener, string, error) {
	l, err := net.Listen("tcp", net.JoinHostPort(host, "0"))
	if err != nil {
		return nil, "", err
	}
	return l, l.Addr().String(), nil
}

// coordinateJoin is rank 0's half of the rendezvous: listen on coordAddr,
// collect every worker's hello, send all of them the completed table.
func coordinateJoin(size int, coordAddr string, deadline time.Time) ([]string, net.Listener, error) {
	host, _, err := net.SplitHostPort(coordAddr)
	if err != nil {
		return nil, nil, fmt.Errorf("mpi: coordinator address %q: %w", coordAddr, err)
	}
	data, dataAddr, err := dataListener(host)
	if err != nil {
		return nil, nil, err
	}
	rdv, err := net.Listen("tcp", coordAddr)
	if err != nil {
		data.Close()
		return nil, nil, fmt.Errorf("mpi: rendezvous listen: %w", err)
	}
	defer rdv.Close()
	if tl, ok := rdv.(*net.TCPListener); ok {
		tl.SetDeadline(deadline)
	}

	addrs := make([]string, size)
	addrs[0] = dataAddr
	conns := make([]net.Conn, 0, size-1)
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()
	for got := 0; got < size-1; got++ {
		conn, err := rdv.Accept()
		if err != nil {
			data.Close()
			return nil, nil, fmt.Errorf("mpi: rendezvous accept (have %d/%d workers): %w", got, size-1, err)
		}
		conn.SetDeadline(deadline)
		var h joinHello
		if err := json.NewDecoder(conn).Decode(&h); err != nil {
			data.Close()
			conn.Close()
			return nil, nil, fmt.Errorf("mpi: rendezvous hello: %w", err)
		}
		if h.Rank <= 0 || h.Rank >= size || addrs[h.Rank] != "" {
			json.NewEncoder(conn).Encode(joinTable{Err: fmt.Sprintf("invalid or duplicate rank %d", h.Rank)})
			data.Close()
			conn.Close()
			return nil, nil, fmt.Errorf("mpi: rendezvous got invalid or duplicate rank %d", h.Rank)
		}
		addrs[h.Rank] = h.Addr
		conns = append(conns, conn)
	}
	for _, conn := range conns {
		if err := json.NewEncoder(conn).Encode(joinTable{Addrs: addrs}); err != nil {
			data.Close()
			return nil, nil, fmt.Errorf("mpi: rendezvous table send: %w", err)
		}
	}
	return addrs, data, nil
}

// workerJoin is a non-zero rank's half of the rendezvous: dial the
// coordinator (retrying while it boots), register, wait for the table.
func workerJoin(rank int, coordAddr string, deadline time.Time) ([]string, net.Listener, error) {
	var conn net.Conn
	var err error
	for {
		conn, err = net.DialTimeout("tcp", coordAddr, time.Until(deadline))
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			return nil, nil, fmt.Errorf("mpi: rank %d could not reach coordinator %s: %w", rank, coordAddr, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	defer conn.Close()
	conn.SetDeadline(deadline)

	host, _, err := net.SplitHostPort(conn.LocalAddr().String())
	if err != nil {
		return nil, nil, err
	}
	data, dataAddr, err := dataListener(host)
	if err != nil {
		return nil, nil, err
	}
	if err := json.NewEncoder(conn).Encode(joinHello{Rank: rank, Addr: dataAddr}); err != nil {
		data.Close()
		return nil, nil, fmt.Errorf("mpi: rank %d register: %w", rank, err)
	}
	var table joinTable
	if err := json.NewDecoder(conn).Decode(&table); err != nil {
		data.Close()
		return nil, nil, fmt.Errorf("mpi: rank %d table: %w", rank, err)
	}
	if table.Err != "" {
		data.Close()
		return nil, nil, fmt.Errorf("mpi: rendezvous rejected rank %d: %s", rank, table.Err)
	}
	return table.Addrs, data, nil
}
