package mpi

import (
	"fmt"

	"github.com/scipioneer/smart/internal/obs"
)

// transportMetrics counts messages and bytes per transport and direction,
// aggregated over every endpoint in the process. Handles are cached at
// package init so the per-message cost is two atomic adds.
type transportMetrics struct {
	sendMsgs, sendBytes *obs.Counter
	recvMsgs, recvBytes *obs.Counter
	// wireRaw/wireEncoded track the payload bytes handed to the socket
	// before and after wire compression (self-sends excluded — they never
	// hit a socket). Their ratio is the codec's honest win: an encoded
	// count equal to the raw count means compression bought nothing.
	wireRaw, wireEncoded *obs.Counter
}

func newTransportMetrics(transport string) transportMetrics {
	r := obs.DefaultRegistry()
	name := func(kind, dir string) string {
		return "smart_mpi_" + kind + `_total{transport="` + transport + `",dir="` + dir + `"}`
	}
	return transportMetrics{
		sendMsgs:    r.Counter(name("messages", "send")),
		sendBytes:   r.Counter(name("bytes", "send")),
		recvMsgs:    r.Counter(name("messages", "recv")),
		recvBytes:   r.Counter(name("bytes", "recv")),
		wireRaw:     r.Counter(`smart_mpi_wire_bytes_raw_total{transport="` + transport + `"}`),
		wireEncoded: r.Counter(`smart_mpi_wire_bytes_encoded_total{transport="` + transport + `"}`),
	}
}

var (
	memMetrics = newTransportMetrics("mem")
	tcpMetrics = newTransportMetrics("tcp")
)

// memTransport is the in-process transport: all ranks share a slice of
// mailboxes and Send is a copy into the destination's mailbox.
type memTransport struct {
	rank  int
	boxes []*mailbox
}

// NewWorld creates an in-process world of size ranks and returns one
// communicator per rank. The communicators share mailboxes; each is intended
// to be driven by its own goroutine ("node").
func NewWorld(size int) []*Comm {
	if size <= 0 {
		panic(fmt.Sprintf("mpi: invalid world size %d", size))
	}
	boxes := make([]*mailbox, size)
	for i := range boxes {
		boxes[i] = newMailbox()
	}
	comms := make([]*Comm, size)
	for i := range comms {
		comms[i] = NewComm(&memTransport{rank: i, boxes: boxes})
	}
	return comms
}

func (t *memTransport) Rank() int { return t.rank }
func (t *memTransport) Size() int { return len(t.boxes) }

func (t *memTransport) Send(dst, tag int, payload []byte, tc obs.TraceContext) error {
	// Copy so that the sender may immediately reuse its buffer, matching
	// MPI's buffered-send semantics that the runtime relies on.
	buf := make([]byte, len(payload))
	copy(buf, payload)
	memMetrics.sendMsgs.Inc()
	memMetrics.sendBytes.Add(int64(len(payload)))
	return t.boxes[dst].put(message{src: t.rank, tag: tag, payload: buf, tc: tc})
}

func (t *memTransport) Recv(src, tag int) ([]byte, obs.TraceContext, error) {
	payload, tc, err := t.boxes[t.rank].get(src, tag)
	if err == nil {
		memMetrics.recvMsgs.Inc()
		memMetrics.recvBytes.Add(int64(len(payload)))
	}
	return payload, tc, err
}

func (t *memTransport) Close() error {
	t.boxes[t.rank].close()
	// A closed endpoint will never send again: fail the peers' pending
	// receives from this rank instead of leaving them blocked (the same
	// semantics the TCP transport gets from connection teardown). Already
	// delivered messages remain receivable.
	for r, box := range t.boxes {
		if r != t.rank {
			box.markDown(t.rank)
		}
	}
	return nil
}
