package mpi

import (
	"encoding/binary"
	"fmt"
	"time"

	"github.com/scipioneer/smart/internal/obs"
)

// collectiveMetrics holds the per-operation invocation counter and latency
// histogram, cached at init so the per-call cost is a clock read and two
// atomic updates.
type collectiveMetrics struct {
	calls   *obs.Counter
	seconds *obs.Histogram
}

var collMetrics = func() map[string]collectiveMetrics {
	r := obs.DefaultRegistry()
	m := make(map[string]collectiveMetrics)
	for _, op := range []string{"barrier", "bcast", "reduce", "reducestream", "allreduce", "gather", "allgather", "scatter"} {
		m[op] = collectiveMetrics{
			calls:   r.Counter(`smart_mpi_collective_total{op="` + op + `"}`),
			seconds: r.Histogram(`smart_mpi_collective_seconds{op="`+op+`"}`, obs.DurationBuckets),
		}
	}
	return m
}()

// timeCollective starts timing one collective call; the returned closer
// records its latency. Usage: defer c.timeCollective("bcast")(). Beyond the
// metrics, it brackets the call on the endpoint's stall watch (so a
// watchdog can name a rank wedged inside) and, when a tracer is attached
// and a trace is active, records the call as a child span of the
// endpoint's current trace context. The context is read at close time, not
// entry: a rank that adopts a trace from the first message it receives
// inside this very collective still parents its span correctly.
func (c *Comm) timeCollective(op string) func() {
	met := collMetrics[op]
	start := time.Now()
	watch := c.obs.watch.Load()
	var token uint64
	if watch != nil {
		token = watch.Enter(c.Rank(), op)
	}
	return func() {
		if watch != nil {
			watch.Exit(token)
		}
		dur := time.Since(start)
		met.calls.Inc()
		met.seconds.Observe(dur.Seconds())
		if tracer := c.obs.tracer.Load(); tracer != nil {
			if tc := c.TraceContext(); tc.Valid() {
				tracer.RecordSpan(obs.Span{
					Cat:    "mpi",
					Name:   op,
					Start:  start,
					Dur:    dur,
					Trace:  tc.TraceID,
					ID:     obs.NewID(),
					Parent: tc.SpanID,
					Rank:   c.Rank(),
				})
			}
		}
	}
}

// Collective operation ids, mixed into internal tags.
const (
	opBarrier = iota
	opBcast
	opGather
	opScatter
	opReduce
	opAllgather
	opReduceStream
	numOps
)

// ctag builds the internal tag for one collective invocation. The sequence
// counter keeps a fast rank's collective n+1 from matching a slow rank's
// collective n: with 4096 in-flight sequence slots, ranks would need to
// drift 4096 collectives apart to alias, which lockstep semantics forbid.
func (c *Comm) ctag(op int, seq uint64) int {
	return maxUserTag + int(seq%4096)*numOps + op
}

// ReduceFunc combines two payloads into one. It must be associative; the
// substrate applies it in rank order along a binomial tree.
type ReduceFunc func(a, b []byte) ([]byte, error)

// Barrier blocks until all ranks of the communicator have entered it.
func (c *Comm) Barrier() error {
	defer c.timeCollective("barrier")()
	_, err := c.allreduce(nil, func(a, b []byte) ([]byte, error) { return nil, nil })
	if err != nil {
		return fmt.Errorf("mpi: barrier: %w", err)
	}
	return nil
}

// Bcast broadcasts data from root along a binomial tree. Every rank returns
// the broadcast payload; the argument is ignored on non-root ranks.
func (c *Comm) Bcast(root int, data []byte) ([]byte, error) {
	if err := c.checkPeer(root); err != nil {
		return nil, err
	}
	defer c.timeCollective("bcast")()
	defer c.lock()()
	seq := c.seq.Add(1)
	return c.bcast(root, data, c.ctag(opBcast, seq))
}

func (c *Comm) bcast(root int, data []byte, tag int) ([]byte, error) {
	p := c.Size()
	vr := (c.Rank() - root + p) % p
	// Receive from the parent in the binomial tree.
	mask := 1
	for mask < p {
		if vr&mask != 0 {
			src := (vr - mask + root) % p
			var err error
			data, err = c.trecv(src, tag)
			if err != nil {
				return nil, err
			}
			break
		}
		mask <<= 1
	}
	// Forward to children: all masks below the bit on which this rank
	// received (or below the tree height for the root).
	for mask >>= 1; mask > 0; mask >>= 1 {
		if vr+mask < p {
			dst := (vr + mask + root) % p
			if err := c.tsend(dst, tag, data); err != nil {
				return nil, err
			}
		}
	}
	return data, nil
}

// Reduce combines every rank's data with fn along a binomial tree rooted at
// root. Only root receives the final value; other ranks return nil.
func (c *Comm) Reduce(root int, data []byte, fn ReduceFunc) ([]byte, error) {
	if err := c.checkPeer(root); err != nil {
		return nil, err
	}
	defer c.timeCollective("reduce")()
	defer c.lock()()
	seq := c.seq.Add(1)
	return c.reduce(root, data, fn, c.ctag(opReduce, seq))
}

func (c *Comm) reduce(root int, data []byte, fn ReduceFunc, tag int) ([]byte, error) {
	p := c.Size()
	vr := (c.Rank() - root + p) % p
	acc := data
	for mask := 1; mask < p; mask <<= 1 {
		if vr&mask == 0 {
			srcVR := vr | mask
			if srcVR < p {
				other, err := c.trecv((srcVR+root)%p, tag)
				if err != nil {
					return nil, err
				}
				acc, err = fn(acc, other)
				if err != nil {
					return nil, err
				}
			}
		} else {
			dst := (vr - mask + root) % p
			if err := c.tsend(dst, tag, acc); err != nil {
				return nil, err
			}
			return nil, nil
		}
	}
	return acc, nil
}

// Allreduce combines every rank's data with fn and returns the result on all
// ranks (reduce to rank 0, then broadcast).
func (c *Comm) Allreduce(data []byte, fn ReduceFunc) ([]byte, error) {
	defer c.timeCollective("allreduce")()
	return c.allreduce(data, fn)
}

// allreduce is Allreduce without the metrics wrapper, shared with Barrier
// so a barrier is not double-counted as an allreduce.
func (c *Comm) allreduce(data []byte, fn ReduceFunc) ([]byte, error) {
	defer c.lock()()
	seq := c.seq.Add(1)
	acc, err := c.reduce(0, data, fn, c.ctag(opReduce, seq))
	if err != nil {
		return nil, err
	}
	return c.bcast(0, acc, c.ctag(opBcast, seq))
}

// Gather collects every rank's payload at root, indexed by rank. Non-root
// ranks return nil.
func (c *Comm) Gather(root int, data []byte) ([][]byte, error) {
	if err := c.checkPeer(root); err != nil {
		return nil, err
	}
	defer c.timeCollective("gather")()
	defer c.lock()()
	seq := c.seq.Add(1)
	return c.gather(root, data, c.ctag(opGather, seq))
}

func (c *Comm) gather(root int, data []byte, tag int) ([][]byte, error) {
	if c.Rank() != root {
		return nil, c.tsend(root, tag, data)
	}
	out := make([][]byte, c.Size())
	out[root] = data
	for r := 0; r < c.Size(); r++ {
		if r == root {
			continue
		}
		buf, err := c.trecv(r, tag)
		if err != nil {
			return nil, err
		}
		out[r] = buf
	}
	return out, nil
}

// Allgather collects every rank's payload on all ranks, indexed by rank.
func (c *Comm) Allgather(data []byte) ([][]byte, error) {
	defer c.timeCollective("allgather")()
	defer c.lock()()
	seq := c.seq.Add(1)
	parts, err := c.gather(0, data, c.ctag(opGather, seq))
	if err != nil {
		return nil, err
	}
	var packed []byte
	if c.Rank() == 0 {
		packed = packParts(parts)
	}
	packed, err = c.bcast(0, packed, c.ctag(opAllgather, seq))
	if err != nil {
		return nil, err
	}
	return unpackParts(packed)
}

// Scatter distributes parts[i] from root to rank i and returns this rank's
// part. On non-root ranks the parts argument is ignored.
func (c *Comm) Scatter(root int, parts [][]byte) ([]byte, error) {
	if err := c.checkPeer(root); err != nil {
		return nil, err
	}
	defer c.timeCollective("scatter")()
	defer c.lock()()
	seq := c.seq.Add(1)
	tag := c.ctag(opScatter, seq)
	if c.Rank() == root {
		if len(parts) != c.Size() {
			return nil, fmt.Errorf("mpi: scatter needs %d parts, got %d", c.Size(), len(parts))
		}
		for r, part := range parts {
			if r == root {
				continue
			}
			if err := c.tsend(r, tag, part); err != nil {
				return nil, err
			}
		}
		return parts[root], nil
	}
	return c.trecv(root, tag)
}

// packParts frames a slice of byte slices into one payload.
func packParts(parts [][]byte) []byte {
	n := 4
	for _, p := range parts {
		n += 4 + len(p)
	}
	buf := make([]byte, 0, n)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(parts)))
	for _, p := range parts {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(p)))
		buf = append(buf, p...)
	}
	return buf
}

// unpackParts reverses packParts.
func unpackParts(buf []byte) ([][]byte, error) {
	if len(buf) < 4 {
		return nil, fmt.Errorf("mpi: truncated part framing")
	}
	n := int(binary.LittleEndian.Uint32(buf))
	buf = buf[4:]
	parts := make([][]byte, n)
	for i := 0; i < n; i++ {
		if len(buf) < 4 {
			return nil, fmt.Errorf("mpi: truncated part header %d", i)
		}
		l := int(binary.LittleEndian.Uint32(buf))
		buf = buf[4:]
		if len(buf) < l {
			return nil, fmt.Errorf("mpi: truncated part body %d", i)
		}
		parts[i] = buf[:l:l]
		buf = buf[l:]
	}
	return parts, nil
}
