package mpi

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"

	"github.com/scipioneer/smart/internal/codec"
	"github.com/scipioneer/smart/internal/obs"
)

// tcpTransport is the networked transport: each rank owns a listener, a full
// mesh of connections is established at startup, and frames carry
// (src, tag, len, payload). It exists so the substrate exercises real
// serialization and flow control, not just channel hand-offs.
type tcpTransport struct {
	rank    int
	size    int
	box     *mailbox
	conns   []*tcpConn // indexed by peer rank; nil at own rank
	mask    uint32     // codec support mask this endpoint advertises
	encs    []codec.Encoding
	closeMu sync.Mutex
	closed  bool
}

type tcpConn struct {
	mu sync.Mutex // serializes frame writes
	c  net.Conn
}

// frame header: src(4) tag(8) len(4) traceID(8) spanID(8) enc(1), little
// endian. tag is int64 because internal collective tags exceed 32 bits of
// useful range headroom; the 16 bytes after len are the sender's trace
// context (zero when no trace is active), which is how a distributed trace
// rides the same frames as the data it describes. The trailing encoding
// byte names the codec the payload was compressed with (codec.None for a
// raw payload); len counts the on-wire — possibly compressed — bytes.
const frameHeaderLen = 16 + obs.TraceContextWireLen + 1

func writeFrame(tc *tcpConn, src, tag int, enc codec.Encoding, payload []byte, trace obs.TraceContext) error {
	hdr := make([]byte, 0, frameHeaderLen)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(src))
	hdr = binary.LittleEndian.AppendUint64(hdr, uint64(tag))
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(len(payload)))
	hdr = trace.AppendWire(hdr)
	hdr = append(hdr, byte(enc))
	tc.mu.Lock()
	defer tc.mu.Unlock()
	if _, err := tc.c.Write(hdr); err != nil {
		return err
	}
	_, err := tc.c.Write(payload)
	return err
}

func readFrame(r io.Reader) (src, tag int, enc codec.Encoding, payload []byte, trace obs.TraceContext, err error) {
	var hdr [frameHeaderLen]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return 0, 0, 0, nil, obs.TraceContext{}, err
	}
	src = int(binary.LittleEndian.Uint32(hdr[0:]))
	tag = int(binary.LittleEndian.Uint64(hdr[4:]))
	n := int(binary.LittleEndian.Uint32(hdr[12:]))
	trace = obs.TraceContextFromWire(hdr[16:])
	enc = codec.Encoding(hdr[16+obs.TraceContextWireLen])
	payload = make([]byte, n)
	_, err = io.ReadFull(r, payload)
	return src, tag, enc, payload, trace, err
}

// TCPWorldOptions tunes NewTCPWorldOpts beyond its defaults.
type TCPWorldOptions struct {
	// CodecMasks, when non-nil, pins each rank's advertised codec-support
	// mask (length must equal the world size). Nil advertises
	// codec.PreferredMask() everywhere — all codecs unless the process
	// pinned one. Mixed masks exercise per-pair negotiation: a pair whose
	// masks share no codec falls back to codec.None.
	CodecMasks []uint32
}

// NewTCPWorld creates a world of size ranks connected over TCP loopback and
// returns one communicator per rank. The full mesh is wired before the call
// returns; lower ranks accept connections from higher ranks. During wiring
// each connection negotiates its wire codec: the dialer's hello carries its
// codec-support mask and the acceptor replies with its own, so both ends
// agree on the best common encoding before the first data frame.
func NewTCPWorld(size int) ([]*Comm, error) {
	return NewTCPWorldOpts(size, TCPWorldOptions{})
}

// tcpDial is swapped by tests to doom specific connection attempts and to
// observe that partially-wired meshes are torn down on failure.
var tcpDial = func(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }

// NewTCPWorldOpts is NewTCPWorld with options.
func NewTCPWorldOpts(size int, opts TCPWorldOptions) ([]*Comm, error) {
	if size <= 0 {
		return nil, fmt.Errorf("mpi: invalid world size %d", size)
	}
	if opts.CodecMasks != nil && len(opts.CodecMasks) != size {
		return nil, fmt.Errorf("mpi: %d codec masks for world size %d", len(opts.CodecMasks), size)
	}
	mask := func(rank int) uint32 {
		if opts.CodecMasks != nil {
			return opts.CodecMasks[rank]
		}
		return codec.PreferredMask()
	}
	listeners := make([]net.Listener, size)
	addrs := make([]string, size)
	for i := range listeners {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for _, ll := range listeners[:i] {
				ll.Close()
			}
			return nil, fmt.Errorf("mpi: listen for rank %d: %w", i, err)
		}
		listeners[i] = l
		addrs[i] = l.Addr().String()
	}

	transports := make([]*tcpTransport, size)
	for i := range transports {
		transports[i] = &tcpTransport{
			rank:  i,
			size:  size,
			box:   newMailbox(),
			conns: make([]*tcpConn, size),
			mask:  mask(i),
			encs:  make([]codec.Encoding, size),
		}
	}

	// Wire the mesh: rank r accepts from ranks > r and dials ranks < r. A
	// dialer identifies itself with a hello carrying its rank and codec
	// mask; the acceptor answers with its own mask, completing negotiation.
	//
	// Failure handling must not leak or hang: the first error closes every
	// listener (unblocking goroutines parked in Accept) and every
	// connection registered so far (unblocking goroutines parked mid
	// handshake — a dialer can connect via the listen backlog and then wait
	// forever for a mask reply no acceptor will send). Connections
	// established after the failure are closed on registration, so once the
	// WaitGroup drains a doomed world holds no sockets at all.
	w := &meshWiring{listeners: listeners}
	var wg sync.WaitGroup
	for r := 0; r < size; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			for peer := r + 1; peer < size; peer++ {
				conn, err := listeners[r].Accept()
				if err != nil {
					w.fail(fmt.Errorf("mpi: rank %d accept: %w", r, err))
					return
				}
				if !w.register(conn) {
					return
				}
				from, peerMask, err := readMeshHello(conn)
				if err != nil {
					w.fail(fmt.Errorf("mpi: rank %d hello: %w", r, err))
					return
				}
				if from <= r || from >= size {
					w.fail(fmt.Errorf("mpi: rank %d got invalid hello from %d", r, from))
					return
				}
				if err := writeMaskReply(conn, transports[r].mask); err != nil {
					w.fail(fmt.Errorf("mpi: rank %d hello reply to %d: %w", r, from, err))
					return
				}
				transports[r].conns[from] = &tcpConn{c: conn}
				transports[r].encs[from] = codec.Negotiate(transports[r].mask, peerMask)
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for peer := 0; peer < r; peer++ {
				conn, err := tcpDial(addrs[peer])
				if err != nil {
					w.fail(fmt.Errorf("mpi: rank %d dial %d: %w", r, peer, err))
					return
				}
				if !w.register(conn) {
					return
				}
				peerMask, err := meshHandshake(conn, r, transports[r].mask)
				if err != nil {
					w.fail(fmt.Errorf("mpi: rank %d hello to %d: %w", r, peer, err))
					return
				}
				transports[r].conns[peer] = &tcpConn{c: conn}
				transports[r].encs[peer] = codec.Negotiate(transports[r].mask, peerMask)
			}
		}()
	}
	wg.Wait()
	if err := w.err(); err != nil {
		return nil, err
	}
	for i := range listeners {
		listeners[i].Close()
	}

	// Start a reader goroutine per connection, feeding each rank's mailbox.
	for _, t := range transports {
		for peer, tc := range t.conns {
			if tc == nil {
				continue
			}
			go t.readLoop(peer, tc)
		}
	}

	comms := make([]*Comm, size)
	for i, t := range transports {
		comms[i] = NewComm(t)
	}
	return comms, nil
}

// meshWiring tracks mesh-setup state so the first failure can tear down
// every socket: closing the listeners unblocks Accept, closing registered
// connections unblocks reads inside the handshake, and registration after
// failure closes the newcomer immediately.
type meshWiring struct {
	mu        sync.Mutex
	failErr   error
	listeners []net.Listener
	conns     []net.Conn
}

// register records an established connection for failure cleanup. It returns
// false — after closing conn — when wiring has already failed.
func (w *meshWiring) register(conn net.Conn) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.failErr != nil {
		conn.Close()
		return false
	}
	w.conns = append(w.conns, conn)
	return true
}

// fail records the first error and closes every listener and every
// registered connection, unblocking all wiring goroutines.
func (w *meshWiring) fail(err error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.failErr != nil {
		return
	}
	w.failErr = err
	for _, l := range w.listeners {
		l.Close()
	}
	for _, c := range w.conns {
		c.Close()
	}
}

func (w *meshWiring) err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.failErr
}

// meshHandshake is the dialer's half of connection setup: send rank + codec
// mask, read the acceptor's mask back.
func meshHandshake(conn net.Conn, rank int, mask uint32) (peerMask uint32, err error) {
	var hello [8]byte
	binary.LittleEndian.PutUint32(hello[:4], uint32(rank))
	binary.LittleEndian.PutUint32(hello[4:], mask)
	if _, err := conn.Write(hello[:]); err != nil {
		return 0, err
	}
	var reply [4]byte
	if _, err := io.ReadFull(conn, reply[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(reply[:]), nil
}

// readMeshHello is the acceptor's half: read the dialer's rank + codec mask.
func readMeshHello(conn net.Conn) (from int, mask uint32, err error) {
	var hello [8]byte
	if _, err := io.ReadFull(conn, hello[:]); err != nil {
		return 0, 0, err
	}
	return int(binary.LittleEndian.Uint32(hello[:4])), binary.LittleEndian.Uint32(hello[4:]), nil
}

func writeMaskReply(conn net.Conn, mask uint32) error {
	var reply [4]byte
	binary.LittleEndian.PutUint32(reply[:], mask)
	_, err := conn.Write(reply[:])
	return err
}

func (t *tcpTransport) readLoop(peer int, tc *tcpConn) {
	for {
		src, tag, enc, payload, trace, err := readFrame(tc.c)
		if err != nil {
			// The peer closed its endpoint (or the local Close tore the
			// connection down). Already-delivered messages stay receivable;
			// only future receives from this peer fail, so an early-exiting
			// rank does not poison unrelated traffic.
			t.box.markDown(peer)
			return
		}
		if src != peer {
			// Frame src must match the connection's peer; a mismatch means
			// corruption, so fail loudly by closing the box.
			t.box.fail(fmt.Errorf("mpi: frame claims src %d on rank %d's connection to %d", src, t.rank, peer))
			return
		}
		if enc != codec.None {
			// The frame's encoding byte is authoritative: decode whatever
			// the sender chose, and fail with a clear error — not a decode
			// panic — on an unknown byte or a corrupt body.
			raw, derr := codec.Decode(enc, nil, payload)
			if derr != nil {
				t.box.fail(fmt.Errorf("mpi: frame from rank %d: %w", peer, derr))
				return
			}
			payload = raw
		}
		if t.box.put(message{src: src, tag: tag, payload: payload, tc: trace}) != nil {
			return
		}
	}
}

func (t *tcpTransport) Rank() int { return t.rank }
func (t *tcpTransport) Size() int { return t.size }

func (t *tcpTransport) wireEncoding(peer int) codec.Encoding {
	if peer < 0 || peer >= len(t.encs) || peer == t.rank {
		return codec.None
	}
	return t.encs[peer]
}

func (t *tcpTransport) Send(dst, tag int, payload []byte, trace obs.TraceContext) error {
	tcpMetrics.sendMsgs.Inc()
	tcpMetrics.sendBytes.Add(int64(len(payload)))
	if dst == t.rank {
		buf := make([]byte, len(payload))
		copy(buf, payload)
		return t.box.put(message{src: t.rank, tag: tag, payload: buf, tc: trace})
	}
	tc := t.conns[dst]
	if tc == nil {
		return fmt.Errorf("mpi: no connection from %d to %d", t.rank, dst)
	}
	// Compress when the pair negotiated a codec and the payload clears the
	// size threshold; fall back to raw whenever the encoded form is not
	// smaller, so compression can only reduce wire bytes. Tiny control
	// frames (barrier tokens, heartbeats) never pay codec overhead.
	enc, wire := codec.None, payload
	if negotiated := t.encs[dst]; negotiated != codec.None && len(payload) >= codec.MinSize {
		scratch := codec.GetScratch()
		defer codec.PutScratch(scratch)
		out, err := codec.Encode(negotiated, (*scratch)[:0], payload)
		if err != nil {
			return fmt.Errorf("mpi: encode frame to %d: %w", dst, err)
		}
		*scratch = out
		if len(out) < len(payload) {
			enc, wire = negotiated, out
		}
	}
	tcpMetrics.wireRaw.Add(int64(len(payload)))
	tcpMetrics.wireEncoded.Add(int64(len(wire)))
	return writeFrame(tc, t.rank, tag, enc, wire, trace)
}

func (t *tcpTransport) Recv(src, tag int) ([]byte, obs.TraceContext, error) {
	payload, trace, err := t.box.get(src, tag)
	if err == nil {
		tcpMetrics.recvMsgs.Inc()
		tcpMetrics.recvBytes.Add(int64(len(payload)))
	}
	return payload, trace, err
}

func (t *tcpTransport) Close() error {
	t.closeMu.Lock()
	t.closed = true
	t.closeMu.Unlock()
	t.box.close()
	for _, tc := range t.conns {
		if tc != nil {
			tc.c.Close()
		}
	}
	return nil
}
