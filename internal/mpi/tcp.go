package mpi

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"

	"github.com/scipioneer/smart/internal/obs"
)

// tcpTransport is the networked transport: each rank owns a listener, a full
// mesh of connections is established at startup, and frames carry
// (src, tag, len, payload). It exists so the substrate exercises real
// serialization and flow control, not just channel hand-offs.
type tcpTransport struct {
	rank    int
	size    int
	box     *mailbox
	conns   []*tcpConn // indexed by peer rank; nil at own rank
	closeMu sync.Mutex
	closed  bool
}

type tcpConn struct {
	mu sync.Mutex // serializes frame writes
	c  net.Conn
}

// frame header: src(4) tag(8) len(4) traceID(8) spanID(8), little endian.
// tag is int64 because internal collective tags exceed 32 bits of useful
// range headroom; the trailing 16 bytes are the sender's trace context
// (zero when no trace is active), which is how a distributed trace rides
// the same frames as the data it describes.
const frameHeaderLen = 16 + obs.TraceContextWireLen

func writeFrame(tc *tcpConn, src, tag int, payload []byte, trace obs.TraceContext) error {
	hdr := make([]byte, 0, frameHeaderLen)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(src))
	hdr = binary.LittleEndian.AppendUint64(hdr, uint64(tag))
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(len(payload)))
	hdr = trace.AppendWire(hdr)
	tc.mu.Lock()
	defer tc.mu.Unlock()
	if _, err := tc.c.Write(hdr); err != nil {
		return err
	}
	_, err := tc.c.Write(payload)
	return err
}

func readFrame(r io.Reader) (src, tag int, payload []byte, trace obs.TraceContext, err error) {
	var hdr [frameHeaderLen]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return 0, 0, nil, obs.TraceContext{}, err
	}
	src = int(binary.LittleEndian.Uint32(hdr[0:]))
	tag = int(binary.LittleEndian.Uint64(hdr[4:]))
	n := int(binary.LittleEndian.Uint32(hdr[12:]))
	trace = obs.TraceContextFromWire(hdr[16:])
	payload = make([]byte, n)
	_, err = io.ReadFull(r, payload)
	return src, tag, payload, trace, err
}

// NewTCPWorld creates a world of size ranks connected over TCP loopback and
// returns one communicator per rank. The full mesh is wired before the call
// returns; lower ranks accept connections from higher ranks.
func NewTCPWorld(size int) ([]*Comm, error) {
	if size <= 0 {
		return nil, fmt.Errorf("mpi: invalid world size %d", size)
	}
	listeners := make([]net.Listener, size)
	addrs := make([]string, size)
	for i := range listeners {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, fmt.Errorf("mpi: listen for rank %d: %w", i, err)
		}
		listeners[i] = l
		addrs[i] = l.Addr().String()
	}

	transports := make([]*tcpTransport, size)
	for i := range transports {
		transports[i] = &tcpTransport{
			rank:  i,
			size:  size,
			box:   newMailbox(),
			conns: make([]*tcpConn, size),
		}
	}

	// Wire the mesh: rank r accepts from ranks > r and dials ranks < r.
	// A dialer identifies itself with a 4-byte hello.
	var wg sync.WaitGroup
	errs := make(chan error, size*size)
	for r := 0; r < size; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			for peer := r + 1; peer < size; peer++ {
				conn, err := listeners[r].Accept()
				if err != nil {
					errs <- fmt.Errorf("mpi: rank %d accept: %w", r, err)
					return
				}
				var hello [4]byte
				if _, err := io.ReadFull(conn, hello[:]); err != nil {
					errs <- fmt.Errorf("mpi: rank %d hello: %w", r, err)
					return
				}
				from := int(binary.LittleEndian.Uint32(hello[:]))
				if from <= r || from >= size {
					errs <- fmt.Errorf("mpi: rank %d got invalid hello from %d", r, from)
					return
				}
				transports[r].conns[from] = &tcpConn{c: conn}
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for peer := 0; peer < r; peer++ {
				conn, err := net.Dial("tcp", addrs[peer])
				if err != nil {
					errs <- fmt.Errorf("mpi: rank %d dial %d: %w", r, peer, err)
					return
				}
				var hello [4]byte
				binary.LittleEndian.PutUint32(hello[:], uint32(r))
				if _, err := conn.Write(hello[:]); err != nil {
					errs <- fmt.Errorf("mpi: rank %d hello to %d: %w", r, peer, err)
					return
				}
				transports[r].conns[peer] = &tcpConn{c: conn}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return nil, err
	}
	for i := range listeners {
		listeners[i].Close()
	}

	// Start a reader goroutine per connection, feeding each rank's mailbox.
	for _, t := range transports {
		for peer, tc := range t.conns {
			if tc == nil {
				continue
			}
			go t.readLoop(peer, tc)
		}
	}

	comms := make([]*Comm, size)
	for i, t := range transports {
		comms[i] = NewComm(t)
	}
	return comms, nil
}

func (t *tcpTransport) readLoop(peer int, tc *tcpConn) {
	for {
		src, tag, payload, trace, err := readFrame(tc.c)
		if err != nil {
			// The peer closed its endpoint (or the local Close tore the
			// connection down). Already-delivered messages stay receivable;
			// only future receives from this peer fail, so an early-exiting
			// rank does not poison unrelated traffic.
			t.box.markDown(peer)
			return
		}
		if src != peer {
			// Frame src must match the connection's peer; a mismatch means
			// corruption, so fail loudly by closing the box.
			t.box.close()
			return
		}
		if t.box.put(message{src: src, tag: tag, payload: payload, tc: trace}) != nil {
			return
		}
	}
}

func (t *tcpTransport) Rank() int { return t.rank }
func (t *tcpTransport) Size() int { return t.size }

func (t *tcpTransport) Send(dst, tag int, payload []byte, trace obs.TraceContext) error {
	tcpMetrics.sendMsgs.Inc()
	tcpMetrics.sendBytes.Add(int64(len(payload)))
	if dst == t.rank {
		buf := make([]byte, len(payload))
		copy(buf, payload)
		return t.box.put(message{src: t.rank, tag: tag, payload: buf, tc: trace})
	}
	tc := t.conns[dst]
	if tc == nil {
		return fmt.Errorf("mpi: no connection from %d to %d", t.rank, dst)
	}
	return writeFrame(tc, t.rank, tag, payload, trace)
}

func (t *tcpTransport) Recv(src, tag int) ([]byte, obs.TraceContext, error) {
	payload, trace, err := t.box.get(src, tag)
	if err == nil {
		tcpMetrics.recvMsgs.Inc()
		tcpMetrics.recvBytes.Add(int64(len(payload)))
	}
	return payload, trace, err
}

func (t *tcpTransport) Close() error {
	t.closeMu.Lock()
	t.closed = true
	t.closeMu.Unlock()
	t.box.close()
	for _, tc := range t.conns {
		if tc != nil {
			tc.c.Close()
		}
	}
	return nil
}
