package mpi

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/scipioneer/smart/internal/codec"
	"github.com/scipioneer/smart/internal/obs"
)

// compressiblePayload is comfortably above codec.MinSize and highly
// redundant, so any real codec must beat raw on it.
func compressiblePayload() []byte {
	return bytes.Repeat([]byte("smart-wire-compression-segment-"), 256)
}

func TestTCPWireCodecNegotiation(t *testing.T) {
	comms, err := NewTCPWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, c := range comms {
			c.Close()
		}
	}()

	// An all-default world negotiates the best codec on every pair, and
	// WireEncoding surfaces it. Self-sends never have a wire.
	want := codec.Pick(codec.SupportedMask())
	for r, c := range comms {
		peer := 1 - r
		if got := c.WireEncoding(peer); got != want {
			t.Fatalf("rank %d WireEncoding(%d) = %s, want %s", r, peer, got, want)
		}
		if got := c.WireEncoding(r); got != codec.None {
			t.Fatalf("rank %d WireEncoding(self) = %s, want none", r, got)
		}
	}

	// A sub-communicator rides the parent's connections, so it reports the
	// parent pair's negotiated codec.
	sub, err := comms[0].SubComm([]int{0, 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := sub.WireEncoding(1); got != want {
		t.Fatalf("sub WireEncoding(1) = %s, want %s", got, want)
	}

	// A large compressible payload round trips and demonstrably shrinks on
	// the wire: the encoded counter advances by less than the raw counter.
	payload := compressiblePayload()
	rawBefore := tcpMetrics.wireRaw.Value()
	encBefore := tcpMetrics.wireEncoded.Value()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := comms[0].Send(1, 7, payload); err != nil {
			t.Error(err)
		}
	}()
	got, err := comms[1].Recv(0, 7)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("compressed round trip mismatch: %d bytes in, %d out", len(payload), len(got))
	}
	rawDelta := tcpMetrics.wireRaw.Value() - rawBefore
	encDelta := tcpMetrics.wireEncoded.Value() - encBefore
	if rawDelta < int64(len(payload)) {
		t.Fatalf("wire raw counter advanced %d, want >= %d", rawDelta, len(payload))
	}
	if encDelta >= rawDelta {
		t.Fatalf("encoded bytes %d not below raw bytes %d for compressible payload", encDelta, rawDelta)
	}
}

func TestTCPMixedCodecWorldFallsBackToNone(t *testing.T) {
	// The two ranks support disjoint codecs, so the pair must agree on raw
	// frames — and traffic must still flow.
	comms, err := NewTCPWorldOpts(2, TCPWorldOptions{
		CodecMasks: []uint32{codec.MaskOf(codec.Flate), codec.MaskOf(codec.Block)},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, c := range comms {
			c.Close()
		}
	}()
	for r, c := range comms {
		if got := c.WireEncoding(1 - r); got != codec.None {
			t.Fatalf("rank %d WireEncoding = %s, want none on a disjoint-codec pair", r, got)
		}
	}
	payload := compressiblePayload()
	rawBefore := tcpMetrics.wireRaw.Value()
	encBefore := tcpMetrics.wireEncoded.Value()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := comms[1].Send(0, 3, payload); err != nil {
			t.Error(err)
		}
	}()
	got, err := comms[0].Recv(1, 3)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("raw-fallback round trip mismatch")
	}
	rawDelta := tcpMetrics.wireRaw.Value() - rawBefore
	encDelta := tcpMetrics.wireEncoded.Value() - encBefore
	if rawDelta != encDelta {
		t.Fatalf("disjoint-codec pair compressed anyway: raw +%d, encoded +%d", rawDelta, encDelta)
	}
}

func TestTCPSubThresholdBypass(t *testing.T) {
	comms, err := NewTCPWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, c := range comms {
			c.Close()
		}
	}()
	// Below codec.MinSize the sender skips the codec entirely: raw and
	// encoded wire counters advance by exactly the payload size.
	payload := make([]byte, codec.MinSize-1)
	rawBefore := tcpMetrics.wireRaw.Value()
	encBefore := tcpMetrics.wireEncoded.Value()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := comms[0].Send(1, 9, payload); err != nil {
			t.Error(err)
		}
	}()
	got, err := comms[1].Recv(0, 9)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(payload) {
		t.Fatalf("sub-threshold round trip length %d, want %d", len(got), len(payload))
	}
	rawDelta := tcpMetrics.wireRaw.Value() - rawBefore
	encDelta := tcpMetrics.wireEncoded.Value() - encBefore
	if rawDelta != int64(len(payload)) || encDelta != int64(len(payload)) {
		t.Fatalf("sub-threshold frame hit the codec: raw +%d, encoded +%d, want +%d each",
			rawDelta, encDelta, len(payload))
	}
}

func TestTCPUnknownFrameEncodingIsCleanError(t *testing.T) {
	comms, err := NewTCPWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, c := range comms {
			c.Close()
		}
	}()
	// Inject a frame claiming a codec this build does not know. The receiver
	// must surface a clear error on Recv, not panic or hang.
	t0 := comms[0].t.(*tcpTransport)
	if err := writeFrame(t0.conns[1], 0, 5, codec.Encoding(0x7f), []byte("junk"), obs.TraceContext{}); err != nil {
		t.Fatal(err)
	}
	_, err = comms[1].Recv(0, 5)
	if err == nil {
		t.Fatal("Recv of unknown-encoding frame succeeded")
	}
	if !errors.Is(err, codec.ErrUnknown) {
		t.Fatalf("Recv error = %v, want to wrap codec.ErrUnknown", err)
	}
}

// trackedConn wraps a dialed connection so the test can assert it was closed
// when mesh wiring fails partway.
type trackedConn struct {
	net.Conn
	closed *atomic.Bool
}

func (c *trackedConn) Close() error {
	c.closed.Store(true)
	return c.Conn.Close()
}

func TestNewTCPWorldCleansUpOnDialFailure(t *testing.T) {
	orig := tcpDial
	defer func() { tcpDial = orig }()

	// Doom one dial partway through wiring a 4-rank mesh (6 dials total) and
	// track every connection handed out before and after the failure.
	var dials atomic.Int64
	var mu sync.Mutex
	var handedOut []*atomic.Bool
	tcpDial = func(addr string) (net.Conn, error) {
		if dials.Add(1) == 3 {
			return nil, fmt.Errorf("injected dial failure")
		}
		c, err := orig(addr)
		if err != nil {
			return nil, err
		}
		closed := new(atomic.Bool)
		mu.Lock()
		handedOut = append(handedOut, closed)
		mu.Unlock()
		return &trackedConn{Conn: c, closed: closed}, nil
	}

	comms, err := NewTCPWorld(4)
	if err == nil {
		for _, c := range comms {
			c.Close()
		}
		t.Fatal("NewTCPWorld succeeded despite a doomed dial")
	}
	if comms != nil {
		t.Fatal("failed NewTCPWorld returned communicators")
	}
	mu.Lock()
	defer mu.Unlock()
	for i, closed := range handedOut {
		if !closed.Load() {
			t.Errorf("connection %d from the doomed world was never closed", i)
		}
	}
}
