package mpi

// Non-blocking point-to-point operations (MPI_Isend/MPI_Irecv): the caller
// starts the operation, keeps computing, and joins it with Wait — the
// communication/computation overlap idiom stencil codes use for halo
// exchange (see sim.Heat3D's overlapped mode).

// Request is a pending non-blocking operation.
type Request struct {
	done    chan struct{}
	payload []byte
	err     error
}

// Wait blocks until the operation completes and returns the received
// payload (nil for sends) and the operation's error. Wait may be called
// multiple times; subsequent calls return the same result.
func (r *Request) Wait() ([]byte, error) {
	<-r.done
	return r.payload, r.err
}

// Done reports whether the operation has completed without blocking.
func (r *Request) Done() bool {
	select {
	case <-r.done:
		return true
	default:
		return false
	}
}

// Isend starts a non-blocking send. The payload is copied immediately, so
// the caller may reuse its buffer as soon as Isend returns.
func (c *Comm) Isend(dst, tag int, payload []byte) *Request {
	buf := make([]byte, len(payload))
	copy(buf, payload)
	r := &Request{done: make(chan struct{})}
	go func() {
		defer close(r.done)
		r.err = c.Send(dst, tag, buf)
	}()
	return r
}

// Irecv starts a non-blocking receive from src with the given tag.
func (c *Comm) Irecv(src, tag int) *Request {
	r := &Request{done: make(chan struct{})}
	go func() {
		defer close(r.done)
		r.payload, r.err = c.Recv(src, tag)
	}()
	return r
}

// IsendFloat64s is Isend for a float64 vector.
func (c *Comm) IsendFloat64s(dst, tag int, xs []float64) *Request {
	r := &Request{done: make(chan struct{})}
	buf := EncodeFloat64s(xs)
	go func() {
		defer close(r.done)
		r.err = c.Send(dst, tag, buf)
	}()
	return r
}

// WaitFloat64s joins a receive request and decodes its payload.
func WaitFloat64s(r *Request) ([]float64, error) {
	buf, err := r.Wait()
	if err != nil {
		return nil, err
	}
	return DecodeFloat64s(buf)
}

// WaitAll joins every request and returns the first error.
func WaitAll(reqs ...*Request) error {
	var first error
	for _, r := range reqs {
		if r == nil {
			continue
		}
		if _, err := r.Wait(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
