package mpi

import (
	"encoding/binary"
	"fmt"
	"sync"
	"testing"
)

// TestReduceStreamSumsAllSegments drives ReduceStream across world sizes
// with per-rank segment counts that differ, the case the count frame exists
// for. Every rank contributes one uint64 per segment; the root must end up
// with the sum of every contribution.
func TestReduceStreamSumsAllSegments(t *testing.T) {
	for p := 1; p <= 5; p++ {
		p := p
		t.Run(fmt.Sprintf("ranks=%d", p), func(t *testing.T) {
			comms := NewWorld(p)
			sums := make([]uint64, p)
			roots := make([]bool, p)
			var want uint64
			for r := 0; r < p; r++ {
				for seg := 0; seg <= r; seg++ {
					want += uint64(100*r + seg)
				}
			}
			var wg sync.WaitGroup
			for r := 0; r < p; r++ {
				r := r
				wg.Add(1)
				go func() {
					defer wg.Done()
					defer comms[r].Close()
					// Rank r contributes r+1 segments valued 100r+seg. The
					// local value is pre-merged into sums[r], mirroring how
					// the scheduler keeps its own state decoded.
					nseg := r + 1
					for seg := 0; seg < nseg; seg++ {
						sums[r] += uint64(100*r + seg)
					}
					isRoot, err := comms[r].ReduceStream(0, nseg,
						func(seg int) ([]byte, error) {
							// Senders ship their full merged state in segment
							// 0 and zeroes after, exercising uneven payloads.
							v := uint64(0)
							if seg == 0 {
								v = sums[r]
							}
							return binary.LittleEndian.AppendUint64(nil, v), nil
						},
						func(seg int, payload []byte) error {
							if len(payload) != 8 {
								return fmt.Errorf("bad payload %d bytes", len(payload))
							}
							sums[r] += binary.LittleEndian.Uint64(payload)
							return nil
						})
					if err != nil {
						t.Errorf("rank %d: %v", r, err)
					}
					roots[r] = isRoot
				}()
			}
			wg.Wait()
			if !roots[0] {
				t.Fatal("root rank did not report holding the result")
			}
			for r := 1; r < p; r++ {
				if roots[r] {
					t.Fatalf("rank %d reported root", r)
				}
			}
			if sums[0] != want {
				t.Fatalf("root sum %d, want %d", sums[0], want)
			}
		})
	}
}

// TestReduceStreamMatchesReduce checks the streamed tree agrees with the
// classic payload-level Reduce for an associative sum.
func TestReduceStreamMatchesReduce(t *testing.T) {
	const p = 4
	sumFn := func(a, b []byte) ([]byte, error) {
		return binary.LittleEndian.AppendUint64(nil,
			binary.LittleEndian.Uint64(a)+binary.LittleEndian.Uint64(b)), nil
	}
	run := func(streamed bool) uint64 {
		comms := NewWorld(p)
		var root uint64
		var wg sync.WaitGroup
		for r := 0; r < p; r++ {
			r := r
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer comms[r].Close()
				val := uint64(1) << r
				if streamed {
					acc := val
					isRoot, err := comms[r].ReduceStream(0, 1,
						func(int) ([]byte, error) {
							return binary.LittleEndian.AppendUint64(nil, acc), nil
						},
						func(_ int, payload []byte) error {
							acc += binary.LittleEndian.Uint64(payload)
							return nil
						})
					if err != nil {
						t.Errorf("rank %d: %v", r, err)
					}
					if isRoot {
						root = acc
					}
					return
				}
				out, err := comms[r].Reduce(0, binary.LittleEndian.AppendUint64(nil, val), sumFn)
				if err != nil {
					t.Errorf("rank %d: %v", r, err)
				}
				if r == 0 {
					root = binary.LittleEndian.Uint64(out)
				}
			}()
		}
		wg.Wait()
		return root
	}
	if s, c := run(true), run(false); s != c {
		t.Fatalf("streamed sum %d != classic sum %d", s, c)
	}
}

func TestReduceStreamRejectsNegativeSegments(t *testing.T) {
	comms := NewWorld(1)
	defer comms[0].Close()
	if _, err := comms[0].ReduceStream(0, -1, nil, nil); err == nil {
		t.Fatal("negative segment count accepted")
	}
}
