package mpi

import (
	"encoding/binary"
	"sync"
	"testing"

	"github.com/scipioneer/smart/internal/obs"
)

// collectiveOps is every op name registered in collMetrics, i.e. every value
// timeCollective is ever called with.
var collectiveOps = []string{"barrier", "bcast", "reduce", "reducestream", "allreduce", "gather", "allgather", "scatter"}

func collectiveCounts() map[string]int64 {
	out := make(map[string]int64, len(collectiveOps))
	for _, op := range collectiveOps {
		out[op] = obs.DefaultRegistry().Counter(`smart_mpi_collective_total{op="` + op + `"}`).Value()
	}
	return out
}

// onWorld runs body on every rank of a fresh in-process world and joins.
func onWorld(t *testing.T, ranks int, body func(c *Comm)) {
	t.Helper()
	comms := NewWorld(ranks)
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		c := comms[r]
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer c.Close()
			body(c)
		}()
	}
	wg.Wait()
}

// TestCollectiveCountersPinned pins the accounting contract of every public
// collective: one call on an N-rank world bumps exactly that op's counter by
// N — internal reuse (Barrier over allreduce, Allreduce over reduce+bcast,
// ReduceStream's per-segment tree exchanges) must not double-count, because
// dashboards divide these counters into the latency histograms for
// per-operation means. The counters live in the process-global registry, so
// everything is asserted as deltas.
func TestCollectiveCountersPinned(t *testing.T) {
	const ranks = 4
	sum := func(a, b []byte) ([]byte, error) {
		out := make([]byte, 8)
		binary.LittleEndian.PutUint64(out,
			binary.LittleEndian.Uint64(a)+binary.LittleEndian.Uint64(b))
		return out, nil
	}
	payload := func() []byte {
		b := make([]byte, 8)
		binary.LittleEndian.PutUint64(b, 1)
		return b
	}

	cases := []struct {
		op   string
		body func(c *Comm)
	}{
		{"barrier", func(c *Comm) {
			if err := c.Barrier(); err != nil {
				t.Errorf("barrier: %v", err)
			}
		}},
		{"bcast", func(c *Comm) {
			if _, err := c.Bcast(0, payload()); err != nil {
				t.Errorf("bcast: %v", err)
			}
		}},
		{"reduce", func(c *Comm) {
			if _, err := c.Reduce(0, payload(), sum); err != nil {
				t.Errorf("reduce: %v", err)
			}
		}},
		{"allreduce", func(c *Comm) {
			if _, err := c.Allreduce(payload(), sum); err != nil {
				t.Errorf("allreduce: %v", err)
			}
		}},
		{"gather", func(c *Comm) {
			if _, err := c.Gather(0, payload()); err != nil {
				t.Errorf("gather: %v", err)
			}
		}},
		{"allgather", func(c *Comm) {
			if _, err := c.Allgather(payload()); err != nil {
				t.Errorf("allgather: %v", err)
			}
		}},
		{"scatter", func(c *Comm) {
			var parts [][]byte
			if c.Rank() == 0 {
				for i := 0; i < ranks; i++ {
					parts = append(parts, payload())
				}
			}
			if _, err := c.Scatter(0, parts); err != nil {
				t.Errorf("scatter: %v", err)
			}
		}},
		{"reducestream", func(c *Comm) {
			// 3 segments exercise the per-segment tree exchange; the call
			// must still count as ONE reducestream per rank no matter how
			// many send/recv legs the binomial tree takes.
			enc := func(seg int) ([]byte, error) { return payload(), nil }
			merge := func(seg int, data []byte) error { return nil }
			isRoot, err := c.ReduceStream(0, 3, enc, merge)
			if err != nil {
				t.Errorf("reducestream: %v", err)
			}
			if isRoot != (c.Rank() == 0) {
				t.Errorf("rank %d: reducestream root flag = %v", c.Rank(), isRoot)
			}
		}},
	}

	for _, tc := range cases {
		before := collectiveCounts()
		onWorld(t, ranks, tc.body)
		after := collectiveCounts()
		for _, op := range collectiveOps {
			want := int64(0)
			if op == tc.op {
				want = ranks
			}
			if got := after[op] - before[op]; got != want {
				t.Errorf("%s: counter %q moved by %d, want %d", tc.op, op, got, want)
			}
		}
	}
}
