package mpi

import (
	"net"
	"sync"
	"testing"
)

// rendezvousAddr reserves a loopback port for a join test's coordinator.
// The listener is closed before use — a tiny reuse window, but the
// coordinator rebinds it immediately.
func rendezvousAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// TestJoinTCPWorld wires a 3-rank world through the cross-process
// rendezvous path (each rank calling JoinTCPWorld independently, as
// separate smartd processes would) and runs point-to-point and collective
// traffic over the resulting mesh. The ranks start concurrently, so the
// workers exercise their dial-retry loop whenever they beat the
// coordinator to the rendezvous address.
func TestJoinTCPWorld(t *testing.T) {
	const size = 3
	addr := rendezvousAddr(t)

	comms := make([]*Comm, size)
	errs := make([]error, size)
	var wg sync.WaitGroup
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			comms[r], errs[r] = JoinTCPWorld(size, r, addr)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d join: %v", r, err)
		}
	}
	defer func() {
		for _, c := range comms {
			c.Close()
		}
	}()

	var work sync.WaitGroup
	for r := 0; r < size; r++ {
		work.Add(1)
		go func(c *Comm) {
			defer work.Done()
			next := (c.Rank() + 1) % size
			prev := (c.Rank() + size - 1) % size
			if err := c.Send(next, 7, []byte{byte(c.Rank())}); err != nil {
				t.Errorf("rank %d send: %v", c.Rank(), err)
				return
			}
			got, err := c.Recv(prev, 7)
			if err != nil || len(got) != 1 || got[0] != byte(prev) {
				t.Errorf("rank %d recv: %v %v", c.Rank(), got, err)
				return
			}
			sum, err := c.AllreduceFloat64s([]float64{float64(c.Rank() + 1)}, OpSum)
			if err != nil || sum[0] != 6 {
				t.Errorf("rank %d allreduce: %v %v", c.Rank(), sum, err)
			}
		}(comms[r])
	}
	work.Wait()
}

// TestJoinTCPWorldSizeOne: a single-rank world needs no rendezvous and no
// listener — the address may even be unroutable.
func TestJoinTCPWorldSizeOne(t *testing.T) {
	c, err := JoinTCPWorld(1, 0, "0.0.0.0:1")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Send(0, 3, []byte("loop")); err != nil {
		t.Fatal(err)
	}
	if got, err := c.Recv(0, 3); err != nil || string(got) != "loop" {
		t.Fatalf("self roundtrip: %q %v", got, err)
	}
}

func TestJoinTCPWorldInvalidArgs(t *testing.T) {
	if _, err := JoinTCPWorld(0, 0, "127.0.0.1:0"); err == nil {
		t.Error("size 0 accepted")
	}
	if _, err := JoinTCPWorld(2, 2, "127.0.0.1:0"); err == nil {
		t.Error("out-of-world rank accepted")
	}
	if _, err := JoinTCPWorld(2, -1, "127.0.0.1:0"); err == nil {
		t.Error("negative rank accepted")
	}
}
