package mpi

import (
	"math"
	"testing"
)

func TestTypedPointToPoint(t *testing.T) {
	runWorld(t, 2, func(c *Comm) {
		if c.Rank() == 0 {
			if err := c.SendFloat64s(1, 4, []float64{1.5, -2.5, math.Pi}); err != nil {
				t.Errorf("send: %v", err)
			}
		} else {
			got, err := c.RecvFloat64s(0, 4)
			if err != nil || len(got) != 3 || got[2] != math.Pi {
				t.Errorf("recv: %v %v", got, err)
			}
		}
	})
}

func TestBcastFloat64s(t *testing.T) {
	runWorld(t, 5, func(c *Comm) {
		var in []float64
		if c.Rank() == 2 {
			in = []float64{9, 8, 7}
		}
		got, err := c.BcastFloat64s(2, in)
		if err != nil || len(got) != 3 || got[0] != 9 {
			t.Errorf("rank %d: %v %v", c.Rank(), got, err)
		}
	})
}

func TestAllreduceOpsBothTypes(t *testing.T) {
	runWorld(t, 4, func(c *Comm) {
		r := float64(c.Rank())
		for _, tc := range []struct {
			op   Op
			want float64
		}{
			{OpSum, 6}, {OpMin, 0}, {OpMax, 3},
		} {
			out, err := c.AllreduceFloat64s([]float64{r}, tc.op)
			if err != nil || out[0] != tc.want {
				t.Errorf("float64 op %d: %v %v", tc.op, out, err)
			}
			outI, err := c.AllreduceInt64s([]int64{int64(r)}, tc.op)
			if err != nil || outI[0] != int64(tc.want) {
				t.Errorf("int64 op %d: %v %v", tc.op, outI, err)
			}
		}
	})
}

func TestUnknownOpPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown op did not panic")
		}
	}()
	Op(99).applyFloat64(1, 2)
}

func TestUnknownIntOpPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown op did not panic")
		}
	}()
	Op(99).applyInt64(1, 2)
}

func TestReduceLengthMismatch(t *testing.T) {
	runWorld(t, 2, func(c *Comm) {
		xs := make([]float64, 1+c.Rank()) // ragged across ranks
		_, err := c.AllreduceFloat64s(xs, OpSum)
		if err == nil {
			t.Error("ragged allreduce succeeded")
		}
	})
}

func TestNonBlockingInPackage(t *testing.T) {
	runWorld(t, 2, func(c *Comm) {
		if c.Rank() == 0 {
			reqs := []*Request{
				c.Isend(1, 1, []byte("a")),
				c.IsendFloat64s(1, 2, []float64{42}),
			}
			if err := WaitAll(reqs...); err != nil {
				t.Errorf("waitall: %v", err)
			}
			if err := WaitAll(nil, reqs[0]); err != nil {
				t.Errorf("waitall with nil: %v", err)
			}
		} else {
			r1 := c.Irecv(0, 1)
			r2 := c.Irecv(0, 2)
			if got, err := r1.Wait(); err != nil || string(got) != "a" {
				t.Errorf("irecv 1: %q %v", got, err)
			}
			xs, err := WaitFloat64s(r2)
			if err != nil || xs[0] != 42 {
				t.Errorf("irecv 2: %v %v", xs, err)
			}
		}
	})
}

func TestWaitAllFirstError(t *testing.T) {
	runWorld(t, 2, func(c *Comm) {
		if c.Rank() != 0 {
			return
		}
		bad := c.Isend(9, 0, nil) // out-of-range destination
		if err := WaitAll(bad); err == nil {
			t.Error("WaitAll swallowed the error")
		}
	})
}

func TestWaitFloat64sError(t *testing.T) {
	runWorld(t, 2, func(c *Comm) {
		if c.Rank() == 0 {
			// An odd-length payload is not a float64 vector.
			if err := c.Send(1, 5, []byte{1, 2, 3}); err != nil {
				t.Error(err)
			}
		} else {
			if _, err := WaitFloat64s(c.Irecv(0, 5)); err == nil {
				t.Error("ragged payload decoded")
			}
		}
	})
}

func TestSubCommClose(t *testing.T) {
	runWorld(t, 2, func(c *Comm) {
		sub, err := c.SubComm([]int{0, 1}, 0)
		if err != nil {
			t.Errorf("subcomm: %v", err)
			return
		}
		// Closing a sub-communicator is a documented no-op; the parent
		// stays usable.
		if err := sub.Close(); err != nil {
			t.Errorf("sub close: %v", err)
		}
		if err := c.Barrier(); err != nil {
			t.Errorf("parent after sub close: %v", err)
		}
	})
}
