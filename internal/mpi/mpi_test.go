package mpi

import (
	"bytes"
	"fmt"
	"math"
	"sync"
	"testing"
	"testing/quick"
)

// runWorld runs fn on every rank of an in-process world and waits for all.
func runWorld(t *testing.T, size int, fn func(c *Comm)) {
	t.Helper()
	comms := NewWorld(size)
	var wg sync.WaitGroup
	for _, c := range comms {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer c.Close()
			fn(c)
		}()
	}
	wg.Wait()
}

// runTCPWorld is runWorld over the TCP transport.
func runTCPWorld(t *testing.T, size int, fn func(c *Comm)) {
	t.Helper()
	comms, err := NewTCPWorld(size)
	if err != nil {
		t.Fatalf("NewTCPWorld(%d): %v", size, err)
	}
	var wg sync.WaitGroup
	for _, c := range comms {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer c.Close()
			fn(c)
		}()
	}
	wg.Wait()
}

func TestSendRecvPair(t *testing.T) {
	runWorld(t, 2, func(c *Comm) {
		if c.Rank() == 0 {
			if err := c.Send(1, 7, []byte("hello")); err != nil {
				t.Errorf("send: %v", err)
			}
		} else {
			got, err := c.Recv(0, 7)
			if err != nil || string(got) != "hello" {
				t.Errorf("recv = %q, %v", got, err)
			}
		}
	})
}

func TestSendRecvNonOvertaking(t *testing.T) {
	// Two messages with the same (src, tag) must arrive in send order.
	runWorld(t, 2, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 3, []byte("first"))
			c.Send(1, 3, []byte("second"))
		} else {
			a, _ := c.Recv(0, 3)
			b, _ := c.Recv(0, 3)
			if string(a) != "first" || string(b) != "second" {
				t.Errorf("overtaking: got %q then %q", a, b)
			}
		}
	})
}

func TestRecvMatchesTag(t *testing.T) {
	// A receiver waiting on tag 2 must not consume a tag-1 message.
	runWorld(t, 2, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 1, []byte("one"))
			c.Send(1, 2, []byte("two"))
		} else {
			two, _ := c.Recv(0, 2)
			one, _ := c.Recv(0, 1)
			if string(two) != "two" || string(one) != "one" {
				t.Errorf("tag matching: got %q / %q", two, one)
			}
		}
	})
}

func TestSendBufferReuse(t *testing.T) {
	// The sender must be free to clobber its buffer right after Send.
	runWorld(t, 2, func(c *Comm) {
		if c.Rank() == 0 {
			buf := []byte("payload")
			c.Send(1, 0, buf)
			copy(buf, "XXXXXXX")
		} else {
			got, _ := c.Recv(0, 0)
			if string(got) != "payload" {
				t.Errorf("buffer aliasing: got %q", got)
			}
		}
	})
}

func TestInvalidArgs(t *testing.T) {
	runWorld(t, 2, func(c *Comm) {
		if err := c.Send(5, 0, nil); err == nil {
			t.Error("send to out-of-range rank succeeded")
		}
		if err := c.Send(0, maxUserTag, nil); err == nil {
			t.Error("send with reserved tag succeeded")
		}
		if _, err := c.Recv(-1, 0); err == nil {
			t.Error("recv from out-of-range rank succeeded")
		}
		if _, err := c.Bcast(9, nil); err == nil {
			t.Error("bcast from out-of-range root succeeded")
		}
	})
}

func TestBarrierAllSizes(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 7, 8, 16} {
		p := p
		t.Run(fmt.Sprintf("p=%d", p), func(t *testing.T) {
			runWorld(t, p, func(c *Comm) {
				for i := 0; i < 3; i++ {
					if err := c.Barrier(); err != nil {
						t.Errorf("barrier %d: %v", i, err)
					}
				}
			})
		})
	}
}

func TestBcast(t *testing.T) {
	for _, p := range []int{1, 2, 3, 5, 8, 13} {
		for root := 0; root < p; root += max(1, p/2) {
			p, root := p, root
			t.Run(fmt.Sprintf("p=%d root=%d", p, root), func(t *testing.T) {
				runWorld(t, p, func(c *Comm) {
					var in []byte
					if c.Rank() == root {
						in = []byte("broadcast-data")
					}
					got, err := c.Bcast(root, in)
					if err != nil {
						t.Errorf("bcast: %v", err)
						return
					}
					if string(got) != "broadcast-data" {
						t.Errorf("rank %d got %q", c.Rank(), got)
					}
				})
			})
		}
	}
}

func TestReduceSumToEveryRoot(t *testing.T) {
	concat := func(a, b []byte) ([]byte, error) {
		xs, _ := DecodeInt64s(a)
		ys, _ := DecodeInt64s(b)
		for i := range xs {
			xs[i] += ys[i]
		}
		return EncodeInt64s(xs), nil
	}
	for _, p := range []int{1, 2, 4, 5, 9} {
		for root := 0; root < p; root++ {
			p, root := p, root
			t.Run(fmt.Sprintf("p=%d root=%d", p, root), func(t *testing.T) {
				runWorld(t, p, func(c *Comm) {
					in := EncodeInt64s([]int64{int64(c.Rank()), 1})
					out, err := c.Reduce(root, in, concat)
					if err != nil {
						t.Errorf("reduce: %v", err)
						return
					}
					if c.Rank() == root {
						xs, _ := DecodeInt64s(out)
						wantSum := int64(p * (p - 1) / 2)
						if xs[0] != wantSum || xs[1] != int64(p) {
							t.Errorf("root got %v, want [%d %d]", xs, wantSum, p)
						}
					} else if out != nil {
						t.Errorf("non-root rank %d got non-nil result", c.Rank())
					}
				})
			})
		}
	}
}

func TestAllreduceFloat64s(t *testing.T) {
	for _, p := range []int{1, 3, 4, 8} {
		p := p
		t.Run(fmt.Sprintf("p=%d", p), func(t *testing.T) {
			runWorld(t, p, func(c *Comm) {
				in := []float64{float64(c.Rank()), -float64(c.Rank()), 1}
				out, err := c.AllreduceFloat64s(in, OpSum)
				if err != nil {
					t.Errorf("allreduce: %v", err)
					return
				}
				wantSum := float64(p*(p-1)) / 2
				if out[0] != wantSum || out[1] != -wantSum || out[2] != float64(p) {
					t.Errorf("rank %d got %v", c.Rank(), out)
				}
			})
		})
	}
}

func TestAllreduceMinMax(t *testing.T) {
	runWorld(t, 5, func(c *Comm) {
		mn, err := c.AllreduceFloat64s([]float64{float64(c.Rank())}, OpMin)
		if err != nil || mn[0] != 0 {
			t.Errorf("min: %v %v", mn, err)
		}
		mx, err := c.AllreduceInt64s([]int64{int64(c.Rank())}, OpMax)
		if err != nil || mx[0] != 4 {
			t.Errorf("max: %v %v", mx, err)
		}
	})
}

func TestGatherScatter(t *testing.T) {
	runWorld(t, 6, func(c *Comm) {
		parts, err := c.Gather(2, []byte{byte(c.Rank())})
		if err != nil {
			t.Errorf("gather: %v", err)
			return
		}
		if c.Rank() == 2 {
			for r, p := range parts {
				if len(p) != 1 || p[0] != byte(r) {
					t.Errorf("gather part %d = %v", r, p)
				}
			}
			// Scatter back doubled values.
			out := make([][]byte, len(parts))
			for r := range out {
				out[r] = []byte{byte(2 * r)}
			}
			mine, err := c.Scatter(2, out)
			if err != nil || mine[0] != 4 {
				t.Errorf("scatter at root: %v %v", mine, err)
			}
		} else {
			mine, err := c.Scatter(2, nil)
			if err != nil || mine[0] != byte(2*c.Rank()) {
				t.Errorf("scatter rank %d: %v %v", c.Rank(), mine, err)
			}
		}
	})
}

func TestAllgather(t *testing.T) {
	for _, p := range []int{1, 2, 5, 8} {
		p := p
		t.Run(fmt.Sprintf("p=%d", p), func(t *testing.T) {
			runWorld(t, p, func(c *Comm) {
				payload := bytes.Repeat([]byte{byte(c.Rank() + 1)}, c.Rank()+1)
				parts, err := c.Allgather(payload)
				if err != nil {
					t.Errorf("allgather: %v", err)
					return
				}
				for r, part := range parts {
					want := bytes.Repeat([]byte{byte(r + 1)}, r+1)
					if !bytes.Equal(part, want) {
						t.Errorf("rank %d: part %d = %v, want %v", c.Rank(), r, part, want)
					}
				}
			})
		})
	}
}

func TestCollectivePipelining(t *testing.T) {
	// Back-to-back collectives must not cross-talk even when ranks drift.
	runWorld(t, 4, func(c *Comm) {
		for i := 0; i < 50; i++ {
			want := fmt.Sprintf("round-%d", i)
			var in []byte
			if c.Rank() == i%4 {
				in = []byte(want)
			}
			got, err := c.Bcast(i%4, in)
			if err != nil || string(got) != want {
				t.Errorf("round %d: got %q, %v", i, got, err)
				return
			}
		}
	})
}

func TestSerializedComm(t *testing.T) {
	// Two concurrent tasks sharing a serialized comm endpoint must both make
	// progress and not corrupt each other's messages.
	runWorld(t, 2, func(c *Comm) {
		s := c.Serialized()
		var wg sync.WaitGroup
		for task := 0; task < 2; task++ {
			task := task
			wg.Add(1)
			go func() {
				defer wg.Done()
				tag := 100 + task
				for i := 0; i < 20; i++ {
					if c.Rank() == 0 {
						if err := s.Send(1, tag, []byte{byte(i)}); err != nil {
							t.Errorf("task %d send: %v", task, err)
							return
						}
					} else {
						got, err := s.Recv(0, tag)
						if err != nil || got[0] != byte(i) {
							t.Errorf("task %d recv %d: %v %v", task, i, got, err)
							return
						}
					}
				}
			}()
		}
		wg.Wait()
	})
}

func TestClosedComm(t *testing.T) {
	comms := NewWorld(2)
	comms[1].Close()
	done := make(chan error, 1)
	go func() {
		_, err := comms[1].Recv(0, 0)
		done <- err
	}()
	if err := <-done; err != ErrClosed {
		t.Fatalf("recv on closed comm: %v, want ErrClosed", err)
	}
}

func TestFloat64Roundtrip(t *testing.T) {
	f := func(xs []float64) bool {
		got, err := DecodeFloat64s(EncodeFloat64s(xs))
		if err != nil || len(got) != len(xs) {
			return false
		}
		for i := range xs {
			if got[i] != xs[i] && !(math.IsNaN(got[i]) && math.IsNaN(xs[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInt64Roundtrip(t *testing.T) {
	f := func(xs []int64) bool {
		got, err := DecodeInt64s(EncodeInt64s(xs))
		if err != nil || len(got) != len(xs) {
			return false
		}
		for i := range xs {
			if got[i] != xs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := DecodeFloat64s(make([]byte, 7)); err == nil {
		t.Error("DecodeFloat64s accepted ragged payload")
	}
	if _, err := DecodeInt64s(make([]byte, 9)); err == nil {
		t.Error("DecodeInt64s accepted ragged payload")
	}
	if _, err := unpackParts(nil); err == nil {
		t.Error("unpackParts accepted empty payload")
	}
	if _, err := unpackParts([]byte{1, 0, 0, 0, 9, 0, 0, 0, 1}); err == nil {
		t.Error("unpackParts accepted truncated body")
	}
}

func TestPackPartsRoundtrip(t *testing.T) {
	f := func(parts [][]byte) bool {
		got, err := unpackParts(packParts(parts))
		if err != nil || len(got) != len(parts) {
			return false
		}
		for i := range parts {
			if !bytes.Equal(got[i], parts[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTCPSendRecv(t *testing.T) {
	runTCPWorld(t, 3, func(c *Comm) {
		next := (c.Rank() + 1) % 3
		prev := (c.Rank() + 2) % 3
		if err := c.Send(next, 9, []byte{byte(c.Rank())}); err != nil {
			t.Errorf("tcp send: %v", err)
			return
		}
		got, err := c.Recv(prev, 9)
		if err != nil || got[0] != byte(prev) {
			t.Errorf("tcp recv: %v %v", got, err)
		}
	})
}

func TestTCPCollectives(t *testing.T) {
	runTCPWorld(t, 4, func(c *Comm) {
		if err := c.Barrier(); err != nil {
			t.Errorf("tcp barrier: %v", err)
		}
		out, err := c.AllreduceFloat64s([]float64{1}, OpSum)
		if err != nil || out[0] != 4 {
			t.Errorf("tcp allreduce: %v %v", out, err)
		}
		parts, err := c.Allgather([]byte{byte(c.Rank())})
		if err != nil {
			t.Errorf("tcp allgather: %v", err)
			return
		}
		for r, p := range parts {
			if p[0] != byte(r) {
				t.Errorf("tcp allgather part %d = %v", r, p)
			}
		}
	})
}

func TestTCPSelfSend(t *testing.T) {
	runTCPWorld(t, 2, func(c *Comm) {
		if err := c.Send(c.Rank(), 5, []byte("self")); err != nil {
			t.Errorf("self send: %v", err)
			return
		}
		got, err := c.Recv(c.Rank(), 5)
		if err != nil || string(got) != "self" {
			t.Errorf("self recv: %q %v", got, err)
		}
	})
}

func TestTCPLargePayload(t *testing.T) {
	runTCPWorld(t, 2, func(c *Comm) {
		const n = 1 << 20
		if c.Rank() == 0 {
			buf := make([]byte, n)
			for i := range buf {
				buf[i] = byte(i * 31)
			}
			if err := c.Send(1, 0, buf); err != nil {
				t.Errorf("large send: %v", err)
			}
		} else {
			got, err := c.Recv(0, 0)
			if err != nil || len(got) != n {
				t.Errorf("large recv: %d bytes, %v", len(got), err)
				return
			}
			for i := 0; i < n; i += 4099 {
				if got[i] != byte(i*31) {
					t.Errorf("large payload corrupt at %d", i)
					return
				}
			}
		}
	})
}
