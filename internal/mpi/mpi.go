// Package mpi is a message-passing substrate that stands in for MPI in this
// reproduction. It provides ranks, tagged point-to-point messaging, and the
// collectives the Smart runtime needs (Barrier, Bcast, Gather, Allgather,
// Reduce, Allreduce, Scatter), over two interchangeable transports:
//
//   - an in-process transport (NewWorld) in which each rank is a goroutine
//     and messages travel through matched mailboxes, and
//   - a TCP loopback transport (NewTCPWorld) in which each rank owns a
//     listener and messages travel through length-prefixed frames, exercising
//     the same serialization paths a networked MPI would.
//
// Semantics follow MPI where it matters for Smart: messages between a (src,
// dst) pair with equal tags are non-overtaking, collectives must be entered
// by all ranks of a communicator in the same order, and a communicator may
// be wrapped in "serialized" mode (see Serialized) to model the
// MPI_THREAD_MULTIPLE funneling the paper describes for space sharing.
package mpi

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/scipioneer/smart/internal/codec"
	"github.com/scipioneer/smart/internal/obs"
)

// ErrClosed is returned by operations on a closed communicator.
var ErrClosed = errors.New("mpi: communicator closed")

// maxUserTag is the highest tag application code may use; larger tags are
// reserved for internal collective sequencing.
const maxUserTag = 1 << 20

// Transport is the point-to-point layer a Comm is built on.
type Transport interface {
	// Rank returns this endpoint's rank in [0, Size).
	Rank() int
	// Size returns the number of ranks in the world.
	Size() int
	// Send delivers payload to rank dst with the given tag, carrying the
	// sender's trace context alongside (zero when no trace is active). Send
	// may block until the destination has buffer space but never until the
	// matching Recv (eager protocol with bounded buffering).
	Send(dst, tag int, payload []byte, tc obs.TraceContext) error
	// Recv blocks until a message from rank src with the given tag is
	// available and returns its payload plus the sender's trace context.
	Recv(src, tag int) ([]byte, obs.TraceContext, error)
	// Close tears the endpoint down; blocked operations return ErrClosed.
	Close() error
}

// Comm is a communicator: a transport plus collectives. The zero value is
// not usable; obtain Comms from NewWorld, NewTCPWorld, or Serialized.
type Comm struct {
	t Transport
	// seq disambiguates successive collective operations so that a fast
	// rank entering collective n+1 cannot match messages of a slow rank
	// still inside collective n. It is shared between a Comm and its
	// Serialized views, so collectives on views of one transport must be
	// issued in a single global order.
	seq *atomic.Uint64
	// serialize, when non-nil, is held for the duration of every operation,
	// modeling the "only one thread inside MPI at a time" funneling cost.
	serialize *sync.Mutex
	// obs is the endpoint's observability state (trace context, tracer,
	// stall watch), shared with Serialized views like seq.
	obs *commObs
}

// commObs holds a communicator's observability attachments. All fields are
// atomics: the trace context is written by the scheduler on one goroutine
// and read on every send, and adopted from incoming messages on receives.
type commObs struct {
	trace  atomic.Pointer[obs.TraceContext]
	tracer atomic.Pointer[obs.Observer]
	watch  atomic.Pointer[obs.StallWatch]
}

// NewComm wraps a transport in a communicator.
func NewComm(t Transport) *Comm {
	return &Comm{t: t, seq: new(atomic.Uint64), obs: new(commObs)}
}

// Serialized returns a view of c in which every operation is funneled
// through a single mutex, as required when concurrent tasks (simulation and
// analytics in space sharing mode) share one MPI endpoint with
// MPI_THREAD_MULTIPLE-style serialization. The returned Comm shares the
// transport, collective sequence and observability state with c.
func (c *Comm) Serialized() *Comm {
	mu := c.serialize
	if mu == nil {
		mu = new(sync.Mutex)
	}
	return &Comm{t: c.t, seq: c.seq, serialize: mu, obs: c.obs}
}

// SetTraceContext pins the trace context this endpoint stamps onto every
// outgoing message (and under which its collective spans are recorded).
// Pass the zero context to clear it; a cleared endpoint adopts the first
// traced context it receives, which is how a job's trace spreads from rank 0
// to the whole world through the first collective.
func (c *Comm) SetTraceContext(tc obs.TraceContext) {
	if !tc.Valid() {
		c.obs.trace.Store(nil)
		return
	}
	c.obs.trace.Store(&tc)
}

// TraceContext returns the endpoint's current trace context (zero if none).
func (c *Comm) TraceContext() obs.TraceContext {
	if p := c.obs.trace.Load(); p != nil {
		return *p
	}
	return obs.TraceContext{}
}

// SetTracer attaches an observer that records one child span per collective
// call (cat "mpi", name = operation, parented under the endpoint's current
// trace context). nil detaches.
func (c *Comm) SetTracer(o *obs.Observer) { c.obs.tracer.Store(o) }

// SetStallWatch attaches the watch that collective calls bracket with
// Enter/Exit, letting a watchdog name ranks wedged in a collective. nil
// detaches. All ranks of an in-process world should share one watch.
func (c *Comm) SetStallWatch(w *obs.StallWatch) { c.obs.watch.Store(w) }

// tsend is the internal send: stamps the current trace context.
func (c *Comm) tsend(dst, tag int, payload []byte) error {
	return c.t.Send(dst, tag, payload, c.TraceContext())
}

// trecv is the internal receive: adopts the sender's trace context when this
// endpoint has none, propagating a trace across the world without any
// out-of-band setup.
func (c *Comm) trecv(src, tag int) ([]byte, error) {
	payload, tc, err := c.t.Recv(src, tag)
	if err == nil && tc.Valid() {
		c.obs.trace.CompareAndSwap(nil, &tc)
	}
	return payload, err
}

func (c *Comm) lock() func() {
	if c.serialize == nil {
		return func() {}
	}
	c.serialize.Lock()
	return c.serialize.Unlock
}

// wireEncoder is implemented by transports that negotiate a per-peer wire
// codec (today only the TCP transport; in-process transports are a memcpy
// and always run uncompressed).
type wireEncoder interface {
	wireEncoding(peer int) codec.Encoding
}

// WireEncoding reports the codec negotiated with peer: what Send may
// compress frames to that rank with. In-process transports (and self-sends)
// always report codec.None — there is no wire to save bytes on.
func (c *Comm) WireEncoding(peer int) codec.Encoding {
	if we, ok := c.t.(wireEncoder); ok && peer >= 0 && peer < c.Size() {
		return we.wireEncoding(peer)
	}
	return codec.None
}

// Rank returns this communicator's rank.
func (c *Comm) Rank() int { return c.t.Rank() }

// Size returns the number of ranks in the communicator.
func (c *Comm) Size() int { return c.t.Size() }

// Close closes the underlying transport endpoint.
func (c *Comm) Close() error { return c.t.Close() }

// Send delivers payload to dst with a user tag in [0, 1<<20).
func (c *Comm) Send(dst, tag int, payload []byte) error {
	if err := c.checkPeer(dst); err != nil {
		return err
	}
	if tag < 0 || tag >= maxUserTag {
		return fmt.Errorf("mpi: user tag %d out of range [0,%d)", tag, maxUserTag)
	}
	defer c.lock()()
	return c.tsend(dst, tag, payload)
}

// Recv blocks for a message from src with the given user tag.
func (c *Comm) Recv(src, tag int) ([]byte, error) {
	if err := c.checkPeer(src); err != nil {
		return nil, err
	}
	if tag < 0 || tag >= maxUserTag {
		return nil, fmt.Errorf("mpi: user tag %d out of range [0,%d)", tag, maxUserTag)
	}
	defer c.lock()()
	return c.trecv(src, tag)
}

func (c *Comm) checkPeer(rank int) error {
	if rank < 0 || rank >= c.Size() {
		return fmt.Errorf("mpi: rank %d out of range [0,%d)", rank, c.Size())
	}
	return nil
}

// message is an in-flight tagged payload plus the sender's trace context.
type message struct {
	src, tag int
	payload  []byte
	tc       obs.TraceContext
}

// mailbox holds undelivered messages for one rank and matches them to
// receivers by (src, tag). Messages from the same (src, tag) are delivered
// in send order (non-overtaking).
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []message
	closed bool
	// err, when non-nil, is the reason the box was failed (wire corruption,
	// an undecodable frame); receives surface it instead of a bare
	// ErrClosed so the caller sees what actually went wrong.
	err error
	// down marks source ranks whose connection has dropped. Messages that
	// arrived before the drop remain receivable; a receive from a down
	// source with nothing queued fails instead of hanging forever.
	down map[int]bool
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

func (m *mailbox) put(msg message) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	m.queue = append(m.queue, msg)
	m.cond.Broadcast()
	return nil
}

func (m *mailbox) get(src, tag int) ([]byte, obs.TraceContext, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		for i, msg := range m.queue {
			if msg.src == src && msg.tag == tag {
				m.queue = append(m.queue[:i], m.queue[i+1:]...)
				return msg.payload, msg.tc, nil
			}
		}
		if m.closed {
			if m.err != nil {
				return nil, obs.TraceContext{}, fmt.Errorf("%w: %w", ErrClosed, m.err)
			}
			return nil, obs.TraceContext{}, ErrClosed
		}
		if m.down[src] {
			return nil, obs.TraceContext{}, fmt.Errorf("mpi: %w: peer %d disconnected", ErrClosed, src)
		}
		m.cond.Wait()
	}
}

// markDown records that no further messages will arrive from src.
func (m *mailbox) markDown(src int) {
	m.mu.Lock()
	if m.down == nil {
		m.down = make(map[int]bool)
	}
	m.down[src] = true
	m.cond.Broadcast()
	m.mu.Unlock()
}

func (m *mailbox) close() {
	m.mu.Lock()
	m.closed = true
	m.cond.Broadcast()
	m.mu.Unlock()
}

// fail closes the box with a reason; pending and future receives return
// the reason wrapped in ErrClosed. The first reason wins.
func (m *mailbox) fail(err error) {
	m.mu.Lock()
	if !m.closed {
		m.closed = true
		m.err = err
	}
	m.cond.Broadcast()
	m.mu.Unlock()
}
