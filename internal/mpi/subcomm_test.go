package mpi

import (
	"sync"
	"testing"
)

func TestSubCommP2PAndCollectives(t *testing.T) {
	// World of 6: ranks {0,1,2,3} form one sub-communicator, {4,5} another.
	runWorld(t, 6, func(c *Comm) {
		if c.Rank() < 4 {
			sub, err := c.SubComm([]int{0, 1, 2, 3}, 0)
			if err != nil {
				t.Errorf("subcomm: %v", err)
				return
			}
			if sub.Size() != 4 || sub.Rank() != c.Rank() {
				t.Errorf("sub rank/size %d/%d", sub.Rank(), sub.Size())
			}
			out, err := sub.AllreduceFloat64s([]float64{1}, OpSum)
			if err != nil || out[0] != 4 {
				t.Errorf("sub allreduce: %v %v", out, err)
			}
		} else {
			sub, err := c.SubComm([]int{4, 5}, 1)
			if err != nil {
				t.Errorf("subcomm: %v", err)
				return
			}
			if sub.Rank() != c.Rank()-4 {
				t.Errorf("sub rank %d for world %d", sub.Rank(), c.Rank())
			}
			out, err := sub.AllreduceFloat64s([]float64{1}, OpSum)
			if err != nil || out[0] != 2 {
				t.Errorf("sub allreduce: %v %v", out, err)
			}
		}
	})
}

func TestSubCommIsolatedFromParent(t *testing.T) {
	// Same user tag on parent and sub-communicator must not cross-match.
	runWorld(t, 2, func(c *Comm) {
		sub, err := c.SubComm([]int{0, 1}, 0)
		if err != nil {
			t.Errorf("subcomm: %v", err)
			return
		}
		const tag = 9
		if c.Rank() == 0 {
			if err := c.Send(1, tag, []byte("parent")); err != nil {
				t.Error(err)
			}
			if err := sub.Send(1, tag, []byte("sub")); err != nil {
				t.Error(err)
			}
		} else {
			got, err := sub.Recv(0, tag)
			if err != nil || string(got) != "sub" {
				t.Errorf("sub recv %q %v", got, err)
			}
			got, err = c.Recv(0, tag)
			if err != nil || string(got) != "parent" {
				t.Errorf("parent recv %q %v", got, err)
			}
		}
	})
}

func TestSubCommRankTranslation(t *testing.T) {
	// A reversed rank list reverses the rank order.
	runWorld(t, 3, func(c *Comm) {
		sub, err := c.SubComm([]int{2, 1, 0}, 0)
		if err != nil {
			t.Errorf("subcomm: %v", err)
			return
		}
		if sub.Rank() != 2-c.Rank() {
			t.Errorf("world %d got sub rank %d", c.Rank(), sub.Rank())
		}
		// Broadcast from sub rank 0 (= world rank 2).
		var in []byte
		if sub.Rank() == 0 {
			in = []byte("from-world-2")
		}
		got, err := sub.Bcast(0, in)
		if err != nil || string(got) != "from-world-2" {
			t.Errorf("sub bcast: %q %v", got, err)
		}
	})
}

func TestSubCommValidation(t *testing.T) {
	comms := NewWorld(3)
	defer func() {
		for _, c := range comms {
			c.Close()
		}
	}()
	c := comms[0]
	if _, err := c.SubComm(nil, 0); err == nil {
		t.Error("empty list accepted")
	}
	if _, err := c.SubComm([]int{0, 5}, 0); err == nil {
		t.Error("out-of-range rank accepted")
	}
	if _, err := c.SubComm([]int{0, 0}, 0); err == nil {
		t.Error("duplicate rank accepted")
	}
	if _, err := c.SubComm([]int{1, 2}, 0); err == nil {
		t.Error("non-member construction accepted")
	}
	if _, err := c.SubComm([]int{0, 1}, -1); err == nil {
		t.Error("negative band accepted")
	}
}

func TestSubCommOverTCP(t *testing.T) {
	runTCPWorld(t, 4, func(c *Comm) {
		members := []int{0, 2}
		if c.Rank()%2 != 0 {
			members = []int{1, 3}
		}
		sub, err := c.SubComm(members, c.Rank()%2)
		if err != nil {
			t.Errorf("subcomm: %v", err)
			return
		}
		out, err := sub.AllreduceInt64s([]int64{int64(c.Rank())}, OpSum)
		if err != nil {
			t.Errorf("allreduce: %v", err)
			return
		}
		want := int64(members[0] + members[1])
		if out[0] != want {
			t.Errorf("sum %d, want %d", out[0], want)
		}
	})
}

func TestConcurrentSubCommTraffic(t *testing.T) {
	// Two disjoint sub-communicators exchanging concurrently with the
	// parent must not interfere.
	runWorld(t, 4, func(c *Comm) {
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if err := c.Barrier(); err != nil {
					t.Errorf("parent barrier: %v", err)
					return
				}
			}
		}()
		members := []int{0, 1}
		if c.Rank() >= 2 {
			members = []int{2, 3}
		}
		sub, err := c.SubComm(members, c.Rank()/2)
		if err != nil {
			t.Errorf("subcomm: %v", err)
			return
		}
		for i := 0; i < 20; i++ {
			out, err := sub.AllreduceInt64s([]int64{1}, OpSum)
			if err != nil || out[0] != 2 {
				t.Errorf("round %d: %v %v", i, out, err)
				return
			}
		}
		wg.Wait()
	})
}
