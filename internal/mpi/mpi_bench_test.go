package mpi

import (
	"fmt"
	"sync"
	"testing"
)

// benchWorld runs fn on every rank and waits; the measured unit is one full
// collective round across all ranks.
func benchWorld(b *testing.B, size int, fn func(c *Comm) error) {
	b.Helper()
	comms := NewWorld(size)
	defer func() {
		for _, c := range comms {
			c.Close()
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for _, c := range comms {
			c := c
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := fn(c); err != nil {
					b.Error(err)
				}
			}()
		}
		wg.Wait()
	}
}

func BenchmarkBarrier(b *testing.B) {
	for _, p := range []int{2, 8, 16} {
		b.Run(fmt.Sprintf("ranks=%d", p), func(b *testing.B) {
			benchWorld(b, p, func(c *Comm) error { return c.Barrier() })
		})
	}
}

func BenchmarkAllreduce(b *testing.B) {
	for _, elems := range []int{8, 1024, 65536} {
		b.Run(fmt.Sprintf("ranks=8/elems=%d", elems), func(b *testing.B) {
			b.SetBytes(int64(8 * elems))
			benchWorld(b, 8, func(c *Comm) error {
				xs := make([]float64, elems)
				_, err := c.AllreduceFloat64s(xs, OpSum)
				return err
			})
		})
	}
}

func BenchmarkSendRecvLatency(b *testing.B) {
	comms := NewWorld(2)
	defer comms[0].Close()
	defer comms[1].Close()
	payload := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		done := make(chan struct{})
		go func() {
			defer close(done)
			if _, err := comms[1].Recv(0, 1); err != nil {
				b.Error(err)
			}
			if err := comms[1].Send(0, 2, payload); err != nil {
				b.Error(err)
			}
		}()
		if err := comms[0].Send(1, 1, payload); err != nil {
			b.Fatal(err)
		}
		if _, err := comms[0].Recv(1, 2); err != nil {
			b.Fatal(err)
		}
		<-done
	}
}

func BenchmarkTCPAllreduce(b *testing.B) {
	comms, err := NewTCPWorld(4)
	if err != nil {
		b.Fatal(err)
	}
	defer func() {
		for _, c := range comms {
			c.Close()
		}
	}()
	xs := make([]float64, 1024)
	b.SetBytes(8 * 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for _, c := range comms {
			c := c
			wg.Add(1)
			go func() {
				defer wg.Done()
				if _, err := c.AllreduceFloat64s(xs, OpSum); err != nil {
					b.Error(err)
				}
			}()
		}
		wg.Wait()
	}
}
