// Package sim provides the simulation programs whose output drives the
// in-situ analytics experiments, standing in for the paper's workloads:
//
//   - Heat3D: an explicit 3-D heat-equation stencil with 1-D domain
//     decomposition and halo exchange over the mpi substrate — the paper's
//     large-output simulation (~400 MB per node per step, scaled down here).
//   - Lulesh: a proxy mini-app on a 3-D cube of elements with an edge-size
//     parameter, reproducing LULESH's two properties the paper relies on:
//     moderate per-step output and cubic-in-edge memory growth.
//   - Emulator: the sequential generator of normally-distributed values used
//     in the Spark comparison (Section 5.2), which consumes almost no
//     memory beyond its output buffer.
//
// All simulations expose their current time-step partition through Data() as
// a read pointer into simulation-owned memory, which is what Smart's time
// sharing mode processes without a copy.
package sim

// Simulation is the surface the in-situ drivers program against.
type Simulation interface {
	// Step advances the simulation by one time-step.
	Step() error
	// Data returns the current time-step's output partition. The returned
	// slice aliases simulation-owned memory and is overwritten by the next
	// Step — exactly the constraint that forces time sharing analytics to
	// run before the simulation resumes.
	Data() []float64
	// StepBytes is the size of one time-step's output in bytes.
	StepBytes() int64
	// MemoryBytes is the simulation's total working-set size in bytes, used
	// to charge the virtual memory model.
	MemoryBytes() int64
}

// rng is a splitmix64 generator: deterministic, seedable, and good enough
// for synthetic workloads.
type rng struct{ state uint64 }

func newRNG(seed uint64) *rng { return &rng{state: seed} }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float64 returns a uniform value in [0, 1).
func (r *rng) float64() float64 {
	return float64(r.next()>>11) / (1 << 53)
}
