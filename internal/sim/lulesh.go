package sim

import "fmt"

// LuleshConfig configures the Lulesh-like proxy on one node.
type LuleshConfig struct {
	// Edge is the element cube's edge; the node simulates Edge^3 elements
	// and memory grows cubically in Edge, the knob Figure 9b sweeps.
	Edge int
	// Threads partitions each step's sweeps across goroutines (default 1).
	Threads int
	// SweepsPerStep is the number of relaxation sweeps one time-step runs
	// (default 1) — the knob for the simulation's compute intensity
	// relative to its output size.
	SweepsPerStep int
	// Seed makes the initial state deterministic.
	Seed uint64
}

// Lulesh is a proxy for the LULESH shock-hydrodynamics mini-app, built to
// reproduce the two properties the paper's experiments depend on: a moderate
// per-step output (one field of Edge^3 elements) and a working set several
// times larger (five fields), growing cubically with the edge size. Each
// step runs a nearest-neighbour relaxation sweep over the energy field,
// driven by a decaying central "shock" source.
type Lulesh struct {
	cfg    LuleshConfig
	n      int // Edge^3
	energy []float64
	scratch,
	pressure,
	velocity,
	volume []float64
	step int
}

// NewLulesh allocates and initializes the proxy.
func NewLulesh(cfg LuleshConfig) (*Lulesh, error) {
	if cfg.Edge < 2 {
		return nil, fmt.Errorf("sim: Lulesh edge %d too small", cfg.Edge)
	}
	if cfg.Threads <= 0 {
		cfg.Threads = 1
	}
	if cfg.SweepsPerStep <= 0 {
		cfg.SweepsPerStep = 1
	}
	n := cfg.Edge * cfg.Edge * cfg.Edge
	l := &Lulesh{
		cfg:      cfg,
		n:        n,
		energy:   make([]float64, n),
		scratch:  make([]float64, n),
		pressure: make([]float64, n),
		velocity: make([]float64, n),
		volume:   make([]float64, n),
	}
	r := newRNG(cfg.Seed)
	for i := range l.energy {
		l.energy[i] = r.float64()
		l.volume[i] = 1
	}
	// Shock energy deposited at the cube center (the classic Sedov setup).
	e := cfg.Edge
	l.energy[(e/2*e+e/2)*e+e/2] += float64(n)
	return l, nil
}

func (l *Lulesh) idx(z, y, x int) int { return (z*l.cfg.Edge+y)*l.cfg.Edge + x }

// Data implements Simulation: the energy field (one Edge^3 array per step).
func (l *Lulesh) Data() []float64 { return l.energy }

// StepBytes implements Simulation.
func (l *Lulesh) StepBytes() int64 { return int64(l.n) * 8 }

// MemoryBytes implements Simulation: all five fields.
func (l *Lulesh) MemoryBytes() int64 { return int64(5*l.n) * 8 }

// StepCount returns the number of completed steps.
func (l *Lulesh) StepCount() int { return l.step }

// Step implements Simulation: update pressure from energy, relax energy
// toward its neighbours scaled by pressure, and integrate a velocity proxy,
// SweepsPerStep times.
func (l *Lulesh) Step() error {
	for s := 0; s < l.cfg.SweepsPerStep; s++ {
		l.sweepOnce()
	}
	l.step++
	return nil
}

func (l *Lulesh) sweepOnce() {
	e := l.cfg.Edge
	// Equation of state proxy: pressure follows energy per volume.
	for i := range l.pressure {
		l.pressure[i] = 0.4 * l.energy[i] / l.volume[i]
	}
	sweep := func(zFrom, zTo int) {
		for z := zFrom; z < zTo; z++ {
			zm, zp := max(z-1, 0), min(z+1, e-1)
			for y := 0; y < e; y++ {
				ym, yp := max(y-1, 0), min(y+1, e-1)
				for x := 0; x < e; x++ {
					xm, xp := max(x-1, 0), min(x+1, e-1)
					c := l.energy[l.idx(z, y, x)]
					avg := (l.energy[l.idx(z, y, xm)] + l.energy[l.idx(z, y, xp)] +
						l.energy[l.idx(z, ym, x)] + l.energy[l.idx(z, yp, x)] +
						l.energy[l.idx(zm, y, x)] + l.energy[l.idx(zp, y, x)]) / 6
					l.scratch[l.idx(z, y, x)] = c + 0.2*(avg-c)
					l.velocity[l.idx(z, y, x)] += 0.01 * (avg - c)
				}
			}
		}
	}
	parallelSweep(e, l.cfg.Threads, sweep)
	l.energy, l.scratch = l.scratch, l.energy
}

// TotalEnergy sums the energy field; the relaxation conserves it (reflected
// boundaries, symmetric averaging), giving the tests an invariant.
func (l *Lulesh) TotalEnergy() float64 {
	s := 0.0
	for _, v := range l.energy {
		s += v
	}
	return s
}

// parallelSweep partitions [0, extent) z-planes across threads.
func parallelSweep(extent, threads int, fn func(from, to int)) {
	if threads <= 1 || extent < threads {
		fn(0, extent)
		return
	}
	type span struct{ from, to int }
	var spans []span
	per, rem := extent/threads, extent%threads
	z := 0
	for t := 0; t < threads; t++ {
		count := per
		if t < rem {
			count++
		}
		spans = append(spans, span{z, z + count})
		z += count
	}
	done := make(chan struct{}, len(spans))
	for _, sp := range spans {
		sp := sp
		go func() {
			fn(sp.from, sp.to)
			done <- struct{}{}
		}()
	}
	for range spans {
		<-done
	}
}
