package sim

import (
	"sync"
	"testing"

	"github.com/scipioneer/smart/internal/mpi"
)

// runHeatWorld advances a distributed Heat3D for `steps` and returns every
// rank's final interior field, concatenated in rank order.
func runHeatWorld(t *testing.T, ranks, nx, ny, nz, steps int, overlap bool) []float64 {
	t.Helper()
	comms := mpi.NewWorld(ranks)
	parts := make([][]float64, ranks)
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer comms[r].Close()
			h, err := NewHeat3D(Heat3DConfig{
				NX: nx, NY: ny, NZ: nz, Seed: 77, Comm: comms[r],
				OverlapHalo: overlap, Threads: 2,
			})
			if err != nil {
				t.Errorf("rank %d: %v", r, err)
				return
			}
			for i := 0; i < steps; i++ {
				if err := h.Step(); err != nil {
					t.Errorf("rank %d step %d: %v", r, i, err)
					return
				}
			}
			parts[r] = append([]float64(nil), h.Data()...)
		}()
	}
	wg.Wait()
	var all []float64
	for _, p := range parts {
		all = append(all, p...)
	}
	return all
}

func TestOverlappedHaloBitIdentical(t *testing.T) {
	for _, tc := range []struct{ ranks, nz int }{
		{2, 8}, {3, 9}, {4, 8}, {4, 11}, // including single-plane ranks
	} {
		plain := runHeatWorld(t, tc.ranks, 6, 6, tc.nz, 6, false)
		over := runHeatWorld(t, tc.ranks, 6, 6, tc.nz, 6, true)
		if len(plain) != len(over) {
			t.Fatalf("ranks=%d nz=%d: lengths differ", tc.ranks, tc.nz)
		}
		for i := range plain {
			if plain[i] != over[i] {
				t.Fatalf("ranks=%d nz=%d: overlap diverges at %d: %v vs %v",
					tc.ranks, tc.nz, i, plain[i], over[i])
			}
		}
	}
}

func TestOverlappedSinglePlaneRanks(t *testing.T) {
	// nz == ranks: every rank owns exactly one plane, so there is no
	// interior to overlap and both boundary updates collapse to one.
	got := runHeatWorld(t, 4, 5, 5, 4, 4, true)
	want := runHeatWorld(t, 1, 5, 5, 4, 4, false)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("single-plane overlap diverges at %d", i)
		}
	}
}

func TestNonBlockingRequests(t *testing.T) {
	comms := mpi.NewWorld(2)
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer comms[r].Close()
			c := comms[r]
			if r == 0 {
				req := c.Isend(1, 3, []byte("nb"))
				if _, err := req.Wait(); err != nil {
					t.Errorf("isend: %v", err)
				}
				// Wait is idempotent.
				if _, err := req.Wait(); err != nil {
					t.Errorf("re-wait: %v", err)
				}
			} else {
				req := c.Irecv(0, 3)
				got, err := req.Wait()
				if err != nil || string(got) != "nb" {
					t.Errorf("irecv: %q %v", got, err)
				}
				if !req.Done() {
					t.Error("Done false after Wait")
				}
			}
		}()
	}
	wg.Wait()
}

func TestIsendBufferReuse(t *testing.T) {
	comms := mpi.NewWorld(2)
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer comms[r].Close()
			c := comms[r]
			if r == 0 {
				buf := []byte("original")
				req := c.Isend(1, 0, buf)
				copy(buf, "CLOBBERED")
				if _, err := req.Wait(); err != nil {
					t.Error(err)
				}
			} else {
				got, err := c.Recv(0, 0)
				if err != nil || string(got) != "original" {
					t.Errorf("payload aliased: %q %v", got, err)
				}
			}
		}()
	}
	wg.Wait()
}
