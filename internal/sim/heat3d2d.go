package sim

import (
	"fmt"

	"github.com/scipioneer/smart/internal/mpi"
)

// Heat3D2DConfig configures one rank's share of a Heat3D run decomposed
// over a 2-D (PY × PZ) process grid — the decomposition production stencil
// codes use once one dimension stops providing enough parallelism.
type Heat3D2DConfig struct {
	// NX, NY, NZ are the global extents.
	NX, NY, NZ int
	// PY and PZ are the process-grid extents; PY*PZ must equal the
	// communicator size (both 1 for a single-process run).
	PY, PZ int
	// Alpha is the diffusion coefficient (zero defaults to 0.1).
	Alpha float64
	// Comm connects the ranks (nil implies PY = PZ = 1).
	Comm *mpi.Comm
	// Seed makes the initial condition deterministic.
	Seed uint64
}

// Heat3D2D integrates the same heat equation as Heat3D under a 2-D domain
// decomposition: rank r owns the (y, z) tile (r%PY, r/PY). Unlike Heat3D's
// embedded ghost planes, the four halos live in side buffers, so Data()
// still returns one contiguous interior block — the invariant Smart's
// zero-copy time sharing depends on.
type Heat3D2D struct {
	cfg            Heat3DConfig2Dresolved
	yStart, yLocal int
	zStart, zLocal int
	cur, next      []float64
	// side buffers: ghost planes/rows received from the four neighbors.
	ghostZLow, ghostZHigh []float64 // [yLocal*NX]
	ghostYLow, ghostYHigh []float64 // [zLocal*NX]
	step                  int
}

// Heat3DConfig2Dresolved is the validated configuration.
type Heat3DConfig2Dresolved struct {
	Heat3D2DConfig
	rank, py, pz int
}

// halo tags for the four directions.
const (
	tagHaloYUp   = 111
	tagHaloYDown = 112
	tagHaloZUp   = 113
	tagHaloZDown = 114
)

// NewHeat3D2D allocates and initializes this rank's tile.
func NewHeat3D2D(cfg Heat3D2DConfig) (*Heat3D2D, error) {
	if cfg.NX <= 0 || cfg.NY <= 0 || cfg.NZ <= 0 {
		return nil, fmt.Errorf("sim: invalid Heat3D2D extents %dx%dx%d", cfg.NX, cfg.NY, cfg.NZ)
	}
	if cfg.Alpha == 0 {
		cfg.Alpha = 0.1
	}
	if cfg.Alpha < 0 || cfg.Alpha > 1.0/6 {
		return nil, fmt.Errorf("sim: Heat3D2D alpha %v outside stable range (0, 1/6]", cfg.Alpha)
	}
	py, pz := cfg.PY, cfg.PZ
	if py <= 0 {
		py = 1
	}
	if pz <= 0 {
		pz = 1
	}
	rank, size := 0, 1
	if cfg.Comm != nil {
		rank, size = cfg.Comm.Rank(), cfg.Comm.Size()
	}
	if py*pz != size {
		return nil, fmt.Errorf("sim: process grid %dx%d does not match world size %d", py, pz, size)
	}
	if cfg.NY < py || cfg.NZ < pz {
		return nil, fmt.Errorf("sim: extents %dx%d smaller than process grid %dx%d", cfg.NY, cfg.NZ, py, pz)
	}

	h := &Heat3D2D{cfg: Heat3DConfig2Dresolved{Heat3D2DConfig: cfg, rank: rank, py: py, pz: pz}}
	h.yStart, h.yLocal = share(cfg.NY, py, rank%py)
	h.zStart, h.zLocal = share(cfg.NZ, pz, rank/py)

	n := h.yLocal * h.zLocal * cfg.NX
	h.cur = make([]float64, n)
	h.next = make([]float64, n)
	h.ghostZLow = make([]float64, h.yLocal*cfg.NX)
	h.ghostZHigh = make([]float64, h.yLocal*cfg.NX)
	h.ghostYLow = make([]float64, h.zLocal*cfg.NX)
	h.ghostYHigh = make([]float64, h.zLocal*cfg.NX)

	// Same global initial condition as Heat3D, so the two decompositions
	// of one problem are comparable.
	for z := 0; z < h.zLocal; z++ {
		for y := 0; y < h.yLocal; y++ {
			for x := 0; x < cfg.NX; x++ {
				gy, gz := h.yStart+y, h.zStart+z
				v := 10 * coordNoise(cfg.Seed, gz, gy, x)
				cx, cy, cz := cfg.NX/2, cfg.NY/2, cfg.NZ/2
				d2 := (x-cx)*(x-cx) + (gy-cy)*(gy-cy) + (gz-cz)*(gz-cz)
				if d2 < (cfg.NX/4)*(cfg.NX/4)+1 {
					v += 100
				}
				h.cur[h.idx(z, y, x)] = v
			}
		}
	}
	return h, nil
}

// share splits n items over parts and returns part p's (start, count).
func share(n, parts, p int) (start, count int) {
	base, rem := n/parts, n%parts
	count = base
	start = p * base
	if p < rem {
		count++
		start += p
	} else {
		start += rem
	}
	return start, count
}

func (h *Heat3D2D) idx(z, y, x int) int { return (z*h.yLocal+y)*h.cfg.NX + x }

// Tile returns the global (yStart, yCount, zStart, zCount) of this rank.
func (h *Heat3D2D) Tile() (yStart, yCount, zStart, zCount int) {
	return h.yStart, h.yLocal, h.zStart, h.zLocal
}

// Data implements Simulation: the contiguous interior tile.
func (h *Heat3D2D) Data() []float64 { return h.cur }

// StepBytes implements Simulation.
func (h *Heat3D2D) StepBytes() int64 { return int64(len(h.cur)) * 8 }

// MemoryBytes implements Simulation.
func (h *Heat3D2D) MemoryBytes() int64 {
	ghosts := len(h.ghostZLow) + len(h.ghostZHigh) + len(h.ghostYLow) + len(h.ghostYHigh)
	return int64(2*len(h.cur)+ghosts) * 8
}

// StepCount returns the number of completed steps.
func (h *Heat3D2D) StepCount() int { return h.step }

// neighbor returns the rank of the (dy, dz) neighbor, or -1 at a physical
// boundary.
func (h *Heat3D2D) neighbor(dy, dz int) int {
	py, pz := h.cfg.py, h.cfg.pz
	ny, nz := h.cfg.rank%py+dy, h.cfg.rank/py+dz
	if ny < 0 || ny >= py || nz < 0 || nz >= pz {
		return -1
	}
	return nz*py + ny
}

// Step implements Simulation.
func (h *Heat3D2D) Step() error {
	if err := h.exchangeHalos(); err != nil {
		return err
	}
	h.applyStencil()
	h.cur, h.next = h.next, h.cur
	h.step++
	return nil
}

// gather* extract the edge faces sent to neighbors.
func (h *Heat3D2D) gatherYFace(y int) []float64 {
	nx := h.cfg.NX
	out := make([]float64, h.zLocal*nx)
	for z := 0; z < h.zLocal; z++ {
		copy(out[z*nx:(z+1)*nx], h.cur[h.idx(z, y, 0):h.idx(z, y, 0)+nx])
	}
	return out
}

func (h *Heat3D2D) gatherZFace(z int) []float64 {
	nx := h.cfg.NX
	out := make([]float64, h.yLocal*nx)
	copy(out, h.cur[h.idx(z, 0, 0):h.idx(z, 0, 0)+h.yLocal*nx])
	return out
}

// exchangeHalos swaps the four faces with the neighbors (reflecting at
// physical boundaries) using non-blocking operations throughout.
func (h *Heat3D2D) exchangeHalos() error {
	c := h.cfg.Comm
	type xfer struct {
		neighbor   int
		sendTag    int
		recvTag    int
		face       func() []float64
		ghost      []float64
		reflectSrc func() []float64
	}
	xfers := []xfer{
		{h.neighbor(-1, 0), tagHaloYUp, tagHaloYDown,
			func() []float64 { return h.gatherYFace(0) }, h.ghostYLow,
			func() []float64 { return h.gatherYFace(0) }},
		{h.neighbor(1, 0), tagHaloYDown, tagHaloYUp,
			func() []float64 { return h.gatherYFace(h.yLocal - 1) }, h.ghostYHigh,
			func() []float64 { return h.gatherYFace(h.yLocal - 1) }},
		{h.neighbor(0, -1), tagHaloZUp, tagHaloZDown,
			func() []float64 { return h.gatherZFace(0) }, h.ghostZLow,
			func() []float64 { return h.gatherZFace(0) }},
		{h.neighbor(0, 1), tagHaloZDown, tagHaloZUp,
			func() []float64 { return h.gatherZFace(h.zLocal - 1) }, h.ghostZHigh,
			func() []float64 { return h.gatherZFace(h.zLocal - 1) }},
	}

	var sends []*mpi.Request
	recvs := make([]*mpi.Request, len(xfers))
	for i, x := range xfers {
		if x.neighbor < 0 {
			copy(x.ghost, x.reflectSrc()) // insulated physical boundary
			continue
		}
		recvs[i] = c.Irecv(x.neighbor, x.recvTag)
		sends = append(sends, c.IsendFloat64s(x.neighbor, x.sendTag, x.face()))
	}
	for i, r := range recvs {
		if r == nil {
			continue
		}
		got, err := mpi.WaitFloat64s(r)
		if err != nil {
			return err
		}
		if len(got) != len(xfers[i].ghost) {
			return fmt.Errorf("sim: halo face length %d, want %d", len(got), len(xfers[i].ghost))
		}
		copy(xfers[i].ghost, got)
	}
	return mpi.WaitAll(sends...)
}

// at reads the field with ghost fallback for out-of-tile (y, z).
func (h *Heat3D2D) at(z, y, x int) float64 {
	switch {
	case y < 0:
		return h.ghostYLow[z*h.cfg.NX+x]
	case y >= h.yLocal:
		return h.ghostYHigh[z*h.cfg.NX+x]
	case z < 0:
		return h.ghostZLow[y*h.cfg.NX+x]
	case z >= h.zLocal:
		return h.ghostZHigh[y*h.cfg.NX+x]
	}
	return h.cur[h.idx(z, y, x)]
}

// applyStencil computes next = cur + alpha*laplacian with insulated physical
// boundaries in every dimension.
func (h *Heat3D2D) applyStencil() {
	nx := h.cfg.NX
	alpha := h.cfg.Alpha
	for z := 0; z < h.zLocal; z++ {
		for y := 0; y < h.yLocal; y++ {
			for x := 0; x < nx; x++ {
				xm, xp := x-1, x+1
				if xm < 0 {
					xm = 0
				}
				if xp >= nx {
					xp = nx - 1
				}
				c := h.cur[h.idx(z, y, x)]
				ym, yp := h.at(z, y-1, x), h.at(z, y+1, x)
				zm, zp := h.at(z-1, y, x), h.at(z+1, y, x)
				// Physical (global) reflection when the tile touches the
				// domain edge is handled by the ghost reflection fills.
				lap := h.cur[h.idx(z, y, xm)] + h.cur[h.idx(z, y, xp)] +
					ym + yp + zm + zp - 6*c
				h.next[h.idx(z, y, x)] = c + alpha*lap
			}
		}
	}
}

// TotalHeat sums the local tile.
func (h *Heat3D2D) TotalHeat() float64 {
	s := 0.0
	for _, v := range h.cur {
		s += v
	}
	return s
}
