package sim

import (
	"fmt"
	"math"
)

// EmulatorConfig configures the sequential data emulator.
type EmulatorConfig struct {
	// StepElems is the number of float64 elements produced per time-step.
	StepElems int
	// Mean and StdDev parameterize the normal distribution (defaults 0, 1).
	Mean, StdDev float64
	// Seed makes the stream deterministic.
	Seed uint64
	// Dims, when > 1, rescales every Dims-th element into [0, 1] and
	// appends a separable 0/1 label, producing logistic-regression records
	// in place of raw scalars. Zero or one leaves the stream scalar.
	Dims int
}

// Emulator reproduces the Spark-comparison setup of Section 5.2: a
// sequential program that outputs double-precision array elements following
// a normal distribution, consuming almost no memory beyond the output
// buffer itself so the downstream engine faces no memory bound.
type Emulator struct {
	cfg  EmulatorConfig
	out  []float64
	r    *rng
	step int
}

// NewEmulator creates the generator.
func NewEmulator(cfg EmulatorConfig) (*Emulator, error) {
	if cfg.StepElems <= 0 {
		return nil, fmt.Errorf("sim: emulator step size %d", cfg.StepElems)
	}
	if cfg.StdDev == 0 {
		cfg.StdDev = 1
	}
	if cfg.StdDev < 0 {
		return nil, fmt.Errorf("sim: emulator stddev %v", cfg.StdDev)
	}
	return &Emulator{cfg: cfg, out: make([]float64, cfg.StepElems), r: newRNG(cfg.Seed)}, nil
}

// normal draws a standard normal value via Box–Muller.
func (e *Emulator) normal() float64 {
	u1 := e.r.float64()
	for u1 == 0 {
		u1 = e.r.float64()
	}
	u2 := e.r.float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Step implements Simulation: fill the output buffer with fresh draws.
func (e *Emulator) Step() error {
	if e.cfg.Dims > 1 {
		e.fillRecords()
	} else {
		for i := range e.out {
			e.out[i] = e.cfg.Mean + e.cfg.StdDev*e.normal()
		}
	}
	e.step++
	return nil
}

// fillRecords produces (Dims features, label) records: the label is 1 when a
// fixed linear functional of the features is positive, giving the
// logistic-regression workload something learnable.
func (e *Emulator) fillRecords() {
	rec := e.cfg.Dims + 1
	for i := 0; i+rec <= len(e.out); i += rec {
		z := 0.0
		for j := 0; j < e.cfg.Dims; j++ {
			v := e.normal()
			e.out[i+j] = v
			w := float64(j%3) - 1
			if j == 0 {
				w = 2
			}
			z += w * v
		}
		if z > 0 {
			e.out[i+e.cfg.Dims] = 1
		} else {
			e.out[i+e.cfg.Dims] = 0
		}
	}
}

// Data implements Simulation.
func (e *Emulator) Data() []float64 { return e.out }

// StepBytes implements Simulation.
func (e *Emulator) StepBytes() int64 { return int64(len(e.out)) * 8 }

// MemoryBytes implements Simulation: only the output buffer.
func (e *Emulator) MemoryBytes() int64 { return e.StepBytes() }

// StepCount returns the number of completed steps.
func (e *Emulator) StepCount() int { return e.step }
