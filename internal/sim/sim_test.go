package sim

import (
	"math"
	"sync"
	"testing"

	"github.com/scipioneer/smart/internal/mpi"
)

func TestHeat3DConservation(t *testing.T) {
	h, err := NewHeat3D(Heat3DConfig{NX: 12, NY: 10, NZ: 16, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	before := h.TotalHeat()
	for i := 0; i < 20; i++ {
		if err := h.Step(); err != nil {
			t.Fatal(err)
		}
	}
	after := h.TotalHeat()
	if math.Abs(after-before) > 1e-6*math.Abs(before) {
		t.Fatalf("heat not conserved: %v -> %v", before, after)
	}
	if h.StepCount() != 20 {
		t.Fatalf("step count %d", h.StepCount())
	}
}

func TestHeat3DDiffusesTowardMean(t *testing.T) {
	h, err := NewHeat3D(Heat3DConfig{NX: 10, NY: 10, NZ: 10, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	maxBefore := 0.0
	for _, v := range h.Data() {
		maxBefore = math.Max(maxBefore, v)
	}
	for i := 0; i < 50; i++ {
		h.Step()
	}
	maxAfter := 0.0
	for _, v := range h.Data() {
		maxAfter = math.Max(maxAfter, v)
	}
	if maxAfter >= maxBefore {
		t.Fatalf("peak did not diffuse: %v -> %v", maxBefore, maxAfter)
	}
}

func TestHeat3DThreadInvariance(t *testing.T) {
	run := func(threads int) []float64 {
		h, err := NewHeat3D(Heat3DConfig{NX: 8, NY: 8, NZ: 12, Threads: threads, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 10; i++ {
			h.Step()
		}
		return append([]float64(nil), h.Data()...)
	}
	a, b := run(1), run(4)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("threaded stencil diverges at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestHeat3DDistributedMatchesSingle(t *testing.T) {
	const nx, ny, nz, steps = 6, 6, 12, 8
	single, err := NewHeat3D(Heat3DConfig{NX: nx, NY: ny, NZ: nz, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < steps; i++ {
		single.Step()
	}
	want := single.Data()

	const ranks = 3
	comms := mpi.NewWorld(ranks)
	parts := make([][]float64, ranks)
	starts := make([]int, ranks)
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer comms[r].Close()
			h, err := NewHeat3D(Heat3DConfig{NX: nx, NY: ny, NZ: nz, Seed: 7, Comm: comms[r]})
			if err != nil {
				t.Errorf("rank %d: %v", r, err)
				return
			}
			starts[r], _ = h.LocalZ()
			for i := 0; i < steps; i++ {
				if err := h.Step(); err != nil {
					t.Errorf("rank %d step: %v", r, err)
					return
				}
			}
			parts[r] = append([]float64(nil), h.Data()...)
		}()
	}
	wg.Wait()
	plane := nx * ny
	for r := 0; r < ranks; r++ {
		off := starts[r] * plane
		for i, v := range parts[r] {
			if math.Abs(v-want[off+i]) > 1e-12 {
				t.Fatalf("rank %d element %d: %v vs single-node %v", r, i, v, want[off+i])
			}
		}
	}
}

func TestHeat3DUnevenDecomposition(t *testing.T) {
	// NZ not divisible by ranks: plane counts must still cover the domain.
	const nz = 11
	comms := mpi.NewWorld(3)
	total := 0
	var mu sync.Mutex
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer comms[r].Close()
			h, err := NewHeat3D(Heat3DConfig{NX: 4, NY: 4, NZ: nz, Comm: comms[r]})
			if err != nil {
				t.Errorf("rank %d: %v", r, err)
				return
			}
			_, count := h.LocalZ()
			mu.Lock()
			total += count
			mu.Unlock()
			if err := h.Step(); err != nil {
				t.Errorf("rank %d: %v", r, err)
			}
		}()
	}
	wg.Wait()
	if total != nz {
		t.Fatalf("planes covered %d, want %d", total, nz)
	}
}

func TestHeat3DValidation(t *testing.T) {
	if _, err := NewHeat3D(Heat3DConfig{NX: 0, NY: 1, NZ: 1}); err == nil {
		t.Error("zero extent accepted")
	}
	if _, err := NewHeat3D(Heat3DConfig{NX: 4, NY: 4, NZ: 4, Alpha: 0.5}); err == nil {
		t.Error("unstable alpha accepted")
	}
}

func TestHeat3DDataAliasesLiveField(t *testing.T) {
	h, _ := NewHeat3D(Heat3DConfig{NX: 4, NY: 4, NZ: 4, Seed: 9})
	d1 := h.Data()
	v := d1[0]
	h.Step()
	// After a step the same read pointer region belongs to the swapped
	// buffer; Data() must still return the *current* field.
	d2 := h.Data()
	if &d1[0] == &d2[0] {
		t.Fatal("buffers did not swap")
	}
	if d2[0] == v {
		t.Log("value coincidentally unchanged; not an error")
	}
	if int64(len(d2))*8 != h.StepBytes() {
		t.Fatalf("StepBytes %d vs data %d", h.StepBytes(), len(d2)*8)
	}
	if h.MemoryBytes() <= h.StepBytes() {
		t.Fatal("working set should exceed one step's output")
	}
}

func TestLuleshConservation(t *testing.T) {
	l, err := NewLulesh(LuleshConfig{Edge: 12, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	before := l.TotalEnergy()
	for i := 0; i < 15; i++ {
		if err := l.Step(); err != nil {
			t.Fatal(err)
		}
	}
	after := l.TotalEnergy()
	if math.Abs(after-before) > 1e-6*math.Abs(before) {
		t.Fatalf("energy not conserved: %v -> %v", before, after)
	}
}

func TestLuleshShockSpreads(t *testing.T) {
	l, _ := NewLulesh(LuleshConfig{Edge: 10, Seed: 5})
	center := l.idx(5, 5, 5)
	peak := l.energy[center]
	for i := 0; i < 30; i++ {
		l.Step()
	}
	if l.energy[center] >= peak {
		t.Fatalf("shock did not spread: %v -> %v", peak, l.energy[center])
	}
}

func TestLuleshCubicMemory(t *testing.T) {
	small, _ := NewLulesh(LuleshConfig{Edge: 10})
	large, _ := NewLulesh(LuleshConfig{Edge: 20})
	if large.MemoryBytes() != 8*small.MemoryBytes() {
		t.Fatalf("memory not cubic in edge: %d vs %d", small.MemoryBytes(), large.MemoryBytes())
	}
	if large.MemoryBytes() != 5*large.StepBytes() {
		t.Fatalf("working set should be 5 fields: %d vs %d", large.MemoryBytes(), large.StepBytes())
	}
}

func TestLuleshThreadInvariance(t *testing.T) {
	run := func(threads int) []float64 {
		l, _ := NewLulesh(LuleshConfig{Edge: 8, Threads: threads, Seed: 6})
		for i := 0; i < 10; i++ {
			l.Step()
		}
		return append([]float64(nil), l.Data()...)
	}
	a, b := run(1), run(3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("threaded sweep diverges at %d", i)
		}
	}
}

func TestLuleshValidation(t *testing.T) {
	if _, err := NewLulesh(LuleshConfig{Edge: 1}); err == nil {
		t.Error("edge 1 accepted")
	}
}

func TestEmulatorNormalDistribution(t *testing.T) {
	e, err := NewEmulator(EmulatorConfig{StepElems: 200000, Mean: 5, StdDev: 2, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	e.Step()
	data := e.Data()
	mean := 0.0
	for _, v := range data {
		mean += v
	}
	mean /= float64(len(data))
	variance := 0.0
	for _, v := range data {
		variance += (v - mean) * (v - mean)
	}
	variance /= float64(len(data))
	if math.Abs(mean-5) > 0.05 {
		t.Fatalf("mean %v, want ~5", mean)
	}
	if math.Abs(math.Sqrt(variance)-2) > 0.05 {
		t.Fatalf("stddev %v, want ~2", math.Sqrt(variance))
	}
}

func TestEmulatorDeterministic(t *testing.T) {
	a, _ := NewEmulator(EmulatorConfig{StepElems: 100, Seed: 42})
	b, _ := NewEmulator(EmulatorConfig{StepElems: 100, Seed: 42})
	a.Step()
	b.Step()
	for i := range a.Data() {
		if a.Data()[i] != b.Data()[i] {
			t.Fatal("same seed produced different streams")
		}
	}
	c, _ := NewEmulator(EmulatorConfig{StepElems: 100, Seed: 43})
	c.Step()
	same := true
	for i := range a.Data() {
		if a.Data()[i] != c.Data()[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestEmulatorRecords(t *testing.T) {
	const dims = 4
	e, err := NewEmulator(EmulatorConfig{StepElems: 1000 * (dims + 1), Dims: dims, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	e.Step()
	data := e.Data()
	ones := 0
	for i := 0; i+dims < len(data); i += dims + 1 {
		label := data[i+dims]
		if label != 0 && label != 1 {
			t.Fatalf("label %v at record %d", label, i/(dims+1))
		}
		if label == 1 {
			ones++
		}
	}
	if ones == 0 || ones == 1000 {
		t.Fatalf("degenerate labels: %d ones of 1000", ones)
	}
}

func TestEmulatorValidation(t *testing.T) {
	if _, err := NewEmulator(EmulatorConfig{StepElems: 0}); err == nil {
		t.Error("zero step size accepted")
	}
	if _, err := NewEmulator(EmulatorConfig{StepElems: 10, StdDev: -1}); err == nil {
		t.Error("negative stddev accepted")
	}
}

func TestSimulationInterfaceCompliance(t *testing.T) {
	h, _ := NewHeat3D(Heat3DConfig{NX: 4, NY: 4, NZ: 4})
	l, _ := NewLulesh(LuleshConfig{Edge: 4})
	e, _ := NewEmulator(EmulatorConfig{StepElems: 16})
	for _, s := range []Simulation{h, l, e} {
		if err := s.Step(); err != nil {
			t.Fatalf("%T step: %v", s, err)
		}
		if len(s.Data()) == 0 || s.StepBytes() <= 0 || s.MemoryBytes() <= 0 {
			t.Fatalf("%T reports empty state", s)
		}
	}
}
