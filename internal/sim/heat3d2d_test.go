package sim

import (
	"math"
	"sync"
	"testing"

	"github.com/scipioneer/smart/internal/mpi"
)

// runHeat2DWorld advances a 2-D-decomposed run and reassembles the global
// field in [z][y][x] order.
func runHeat2DWorld(t *testing.T, py, pz, nx, ny, nz, steps int) []float64 {
	t.Helper()
	ranks := py * pz
	comms := mpi.NewWorld(ranks)
	global := make([]float64, nx*ny*nz)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer comms[r].Close()
			h, err := NewHeat3D2D(Heat3D2DConfig{
				NX: nx, NY: ny, NZ: nz, PY: py, PZ: pz, Comm: comms[r], Seed: 77,
			})
			if err != nil {
				t.Errorf("rank %d: %v", r, err)
				return
			}
			for i := 0; i < steps; i++ {
				if err := h.Step(); err != nil {
					t.Errorf("rank %d step %d: %v", r, i, err)
					return
				}
			}
			ys, yc, zs, zc := h.Tile()
			data := h.Data()
			mu.Lock()
			for z := 0; z < zc; z++ {
				for y := 0; y < yc; y++ {
					for x := 0; x < nx; x++ {
						global[((zs+z)*ny+(ys+y))*nx+x] = data[(z*yc+y)*nx+x]
					}
				}
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	return global
}

func TestHeat3D2DMatchesSingleRank(t *testing.T) {
	const nx, ny, nz, steps = 6, 8, 8, 5
	want := runHeat2DWorld(t, 1, 1, nx, ny, nz, steps)
	for _, grid := range []struct{ py, pz int }{{2, 1}, {1, 2}, {2, 2}, {2, 3}, {4, 2}} {
		got := runHeat2DWorld(t, grid.py, grid.pz, nx, ny, nz, steps)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-12 {
				t.Fatalf("grid %dx%d diverges at %d: %v vs %v", grid.py, grid.pz, i, got[i], want[i])
			}
		}
	}
}

func TestHeat3D2DMatches1DDecomposition(t *testing.T) {
	// The 2-D code with PY=1 must agree with the original 1-D Heat3D,
	// plane for plane (same IC, same stencil, same boundaries).
	const nx, ny, nz, steps = 5, 6, 9, 4
	h1, err := NewHeat3D(Heat3DConfig{NX: nx, NY: ny, NZ: nz, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < steps; i++ {
		h1.Step()
	}
	got := runHeat2DWorld(t, 1, 3, nx, ny, nz, steps)
	want := h1.Data()
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("1-D vs 2-D diverge at %d: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestHeat3D2DConservation(t *testing.T) {
	const ranks = 4
	comms := mpi.NewWorld(ranks)
	totals := make([]float64, ranks, ranks)
	deltas := make([]float64, ranks)
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer comms[r].Close()
			h, err := NewHeat3D2D(Heat3D2DConfig{
				NX: 5, NY: 6, NZ: 6, PY: 2, PZ: 2, Comm: comms[r], Seed: 3,
			})
			if err != nil {
				t.Errorf("rank %d: %v", r, err)
				return
			}
			before := h.TotalHeat()
			for i := 0; i < 10; i++ {
				if err := h.Step(); err != nil {
					t.Errorf("rank %d: %v", r, err)
					return
				}
			}
			totals[r] = before
			deltas[r] = h.TotalHeat() - before
		}()
	}
	wg.Wait()
	var sumBefore, sumDelta float64
	for r := 0; r < ranks; r++ {
		sumBefore += totals[r]
		sumDelta += deltas[r]
	}
	if math.Abs(sumDelta) > 1e-6*math.Abs(sumBefore) {
		t.Fatalf("global heat drifted by %v of %v", sumDelta, sumBefore)
	}
}

func TestHeat3D2DValidation(t *testing.T) {
	comms := mpi.NewWorld(3)
	defer func() {
		for _, c := range comms {
			c.Close()
		}
	}()
	if _, err := NewHeat3D2D(Heat3D2DConfig{NX: 4, NY: 4, NZ: 4, PY: 2, PZ: 2, Comm: comms[0]}); err == nil {
		t.Error("mismatched process grid accepted")
	}
	if _, err := NewHeat3D2D(Heat3D2DConfig{NX: 0, NY: 4, NZ: 4}); err == nil {
		t.Error("zero extent accepted")
	}
	if _, err := NewHeat3D2D(Heat3D2DConfig{NX: 4, NY: 1, NZ: 4, PY: 3, PZ: 1, Comm: comms[0]}); err == nil {
		t.Error("grid larger than extent accepted")
	}
	if _, err := NewHeat3D2D(Heat3D2DConfig{NX: 4, NY: 4, NZ: 4, Alpha: 1}); err == nil {
		t.Error("unstable alpha accepted")
	}
}

func TestHeat3D2DSimulationInterface(t *testing.T) {
	h, err := NewHeat3D2D(Heat3D2DConfig{NX: 4, NY: 4, NZ: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var s Simulation = h
	if err := s.Step(); err != nil {
		t.Fatal(err)
	}
	if s.StepBytes() != int64(len(s.Data()))*8 || s.MemoryBytes() <= s.StepBytes() {
		t.Fatalf("sizes: step %d mem %d", s.StepBytes(), s.MemoryBytes())
	}
}
