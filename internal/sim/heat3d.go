package sim

import (
	"fmt"
	"sync"

	"github.com/scipioneer/smart/internal/mpi"
)

// Heat3DConfig configures one rank's share of a distributed Heat3D run.
type Heat3DConfig struct {
	// NX and NY are the horizontal extents of every plane.
	NX, NY int
	// NZ is the global vertical extent; it is decomposed contiguously
	// across the communicator's ranks.
	NZ int
	// Alpha is the diffusion coefficient; the explicit scheme is stable for
	// alpha <= 1/6 (zero defaults to 0.1).
	Alpha float64
	// Threads partitions each step's plane updates across goroutines
	// (default 1).
	Threads int
	// Comm connects the ranks (nil for a single-process run).
	Comm *mpi.Comm
	// OverlapHalo overlaps the halo exchange with the interior stencil
	// computation using non-blocking sends/receives — the classic
	// communication-hiding optimization. The result is bit-identical to
	// the blocking exchange.
	OverlapHalo bool
	// Seed makes the initial condition deterministic.
	Seed uint64
}

// Heat3D integrates the 3-D heat equation with an explicit 7-point stencil
// on a [z][y][x]-major grid, decomposed in z across ranks with one ghost
// plane on each side. Outer physical boundaries are insulated (zero flux),
// so the total heat is conserved — the invariant the tests check. The
// interior field is contiguous, so Data returns a true read pointer into the
// live field.
type Heat3D struct {
	cfg    Heat3DConfig
	zStart int // global index of the first local interior plane
	zLocal int // local interior plane count
	plane  int // elements per plane
	cur    []float64
	next   []float64
	step   int
}

// halo exchange tags
const (
	tagHaloUp   = 101
	tagHaloDown = 102
)

// NewHeat3D allocates and initializes this rank's partition: a smooth bumpy
// field plus deterministic noise.
func NewHeat3D(cfg Heat3DConfig) (*Heat3D, error) {
	if cfg.NX <= 0 || cfg.NY <= 0 || cfg.NZ <= 0 {
		return nil, fmt.Errorf("sim: invalid Heat3D extents %dx%dx%d", cfg.NX, cfg.NY, cfg.NZ)
	}
	if cfg.Alpha == 0 {
		cfg.Alpha = 0.1
	}
	if cfg.Alpha < 0 || cfg.Alpha > 1.0/6 {
		return nil, fmt.Errorf("sim: Heat3D alpha %v outside stable range (0, 1/6]", cfg.Alpha)
	}
	if cfg.Threads <= 0 {
		cfg.Threads = 1
	}
	rank, size := 0, 1
	if cfg.Comm != nil {
		rank, size = cfg.Comm.Rank(), cfg.Comm.Size()
	}
	if cfg.NZ < size {
		return nil, fmt.Errorf("sim: Heat3D NZ=%d smaller than world size %d", cfg.NZ, size)
	}
	base, rem := cfg.NZ/size, cfg.NZ%size
	zLocal := base
	zStart := rank * base
	if rank < rem {
		zLocal++
		zStart += rank
	} else {
		zStart += rem
	}

	h := &Heat3D{
		cfg:    cfg,
		zStart: zStart,
		zLocal: zLocal,
		plane:  cfg.NX * cfg.NY,
	}
	// Two buffers with ghost planes at z=0 and z=zLocal+1.
	n := (zLocal + 2) * h.plane
	h.cur = make([]float64, n)
	h.next = make([]float64, n)

	// The initial condition is a pure function of global coordinates so
	// that any decomposition of the same global grid starts from the same
	// field (the distributed-equivalence tests rely on this).
	for z := 1; z <= zLocal; z++ {
		gz := zStart + z - 1
		for y := 0; y < cfg.NY; y++ {
			for x := 0; x < cfg.NX; x++ {
				v := 10 * coordNoise(cfg.Seed, gz, y, x)
				cx, cy, cz := cfg.NX/2, cfg.NY/2, cfg.NZ/2
				d2 := (x-cx)*(x-cx) + (y-cy)*(y-cy) + (gz-cz)*(gz-cz)
				if d2 < (cfg.NX/4)*(cfg.NX/4)+1 {
					v += 100
				}
				h.cur[h.idx(z, y, x)] = v
			}
		}
	}
	return h, nil
}

// coordNoise hashes global coordinates into a uniform value in [0, 1).
func coordNoise(seed uint64, z, y, x int) float64 {
	r := newRNG(seed ^ uint64(z)*0x9e3779b97f4a7c15 ^ uint64(y)*0xc2b2ae3d27d4eb4f ^ uint64(x)*0x165667b19e3779f9)
	return r.float64()
}

func (h *Heat3D) idx(z, y, x int) int { return (z*h.cfg.NY+y)*h.cfg.NX + x }

// LocalZ returns the global index of this rank's first interior plane and
// the local plane count.
func (h *Heat3D) LocalZ() (start, count int) { return h.zStart, h.zLocal }

// Data implements Simulation: the contiguous interior field, aliasing live
// simulation memory.
func (h *Heat3D) Data() []float64 {
	return h.cur[h.plane : (h.zLocal+1)*h.plane]
}

// StepBytes implements Simulation.
func (h *Heat3D) StepBytes() int64 { return int64(h.zLocal*h.plane) * 8 }

// MemoryBytes implements Simulation: both buffers including ghosts.
func (h *Heat3D) MemoryBytes() int64 { return int64(2*(h.zLocal+2)*h.plane) * 8 }

// StepCount returns the number of completed steps.
func (h *Heat3D) StepCount() int { return h.step }

// Step implements Simulation: exchange halos, apply the stencil, swap.
func (h *Heat3D) Step() error {
	if h.cfg.OverlapHalo && h.cfg.Comm != nil && h.cfg.Comm.Size() > 1 {
		if err := h.overlappedStep(); err != nil {
			return err
		}
	} else {
		if err := h.exchangeHalos(); err != nil {
			return err
		}
		h.applyStencil(1, h.zLocal+1)
	}
	h.cur, h.next = h.next, h.cur
	h.step++
	return nil
}

// overlappedStep posts the halo exchange, computes the interior planes that
// need no ghosts while it is in flight, then finishes the exchange and
// computes the two boundary planes.
func (h *Heat3D) overlappedStep() error {
	plane := h.plane
	lowEdge := h.cur[plane : 2*plane]
	highEdge := h.cur[h.zLocal*plane : (h.zLocal+1)*plane]
	c := h.cfg.Comm
	rank, size := c.Rank(), c.Size()

	var sendLow, sendHigh, recvLow, recvHigh *mpi.Request
	if rank > 0 {
		recvLow = c.Irecv(rank-1, tagHaloDown)
		sendLow = c.IsendFloat64s(rank-1, tagHaloUp, lowEdge)
	}
	if rank < size-1 {
		recvHigh = c.Irecv(rank+1, tagHaloUp)
		sendHigh = c.IsendFloat64s(rank+1, tagHaloDown, highEdge)
	}

	// Interior planes (needing no ghost data) overlap the exchange.
	if h.zLocal > 2 {
		h.applyStencil(2, h.zLocal)
	}

	// Finish the exchange and fill the ghost planes.
	if recvLow != nil {
		got, err := mpi.WaitFloat64s(recvLow)
		if err != nil {
			return err
		}
		copy(h.cur[0:plane], got)
	} else {
		copy(h.cur[0:plane], lowEdge) // insulated bottom
	}
	if recvHigh != nil {
		got, err := mpi.WaitFloat64s(recvHigh)
		if err != nil {
			return err
		}
		copy(h.cur[(h.zLocal+1)*plane:(h.zLocal+2)*plane], got)
	} else {
		copy(h.cur[(h.zLocal+1)*plane:(h.zLocal+2)*plane], highEdge) // insulated top
	}
	if err := mpi.WaitAll(sendLow, sendHigh); err != nil {
		return err
	}

	// Boundary planes now that the ghosts are in place.
	h.applyStencil(1, min(2, h.zLocal+1))
	if h.zLocal >= 2 {
		h.applyStencil(h.zLocal, h.zLocal+1)
	}
	return nil
}

// exchangeHalos fills the ghost planes from the z-neighbors, or reflects the
// boundary plane at the physical ends (insulated boundary).
func (h *Heat3D) exchangeHalos() error {
	plane := h.plane
	lowGhost := h.cur[0:plane]
	lowEdge := h.cur[plane : 2*plane]
	highEdge := h.cur[h.zLocal*plane : (h.zLocal+1)*plane]
	highGhost := h.cur[(h.zLocal+1)*plane : (h.zLocal+2)*plane]

	c := h.cfg.Comm
	rank, size := 0, 1
	if c != nil {
		rank, size = c.Rank(), c.Size()
	}

	// The mem/tcp transports buffer sends, so a symmetric send-then-receive
	// order cannot deadlock.
	if rank > 0 {
		if err := c.SendFloat64s(rank-1, tagHaloUp, lowEdge); err != nil {
			return err
		}
	}
	if rank < size-1 {
		if err := c.SendFloat64s(rank+1, tagHaloDown, highEdge); err != nil {
			return err
		}
	}
	if rank > 0 {
		got, err := c.RecvFloat64s(rank-1, tagHaloDown)
		if err != nil {
			return err
		}
		copy(lowGhost, got)
	} else {
		copy(lowGhost, lowEdge) // insulated bottom
	}
	if rank < size-1 {
		got, err := c.RecvFloat64s(rank+1, tagHaloUp)
		if err != nil {
			return err
		}
		copy(highGhost, got)
	} else {
		copy(highGhost, highEdge) // insulated top
	}
	return nil
}

// applyStencil computes next = cur + alpha * laplacian(cur) over the local
// planes z in [zFrom, zTo), reflecting at x/y boundaries (insulated).
func (h *Heat3D) applyStencil(zFrom, zTo int) {
	nx, ny := h.cfg.NX, h.cfg.NY
	alpha := h.cfg.Alpha
	update := func(zFrom, zTo int) {
		for z := zFrom; z < zTo; z++ {
			for y := 0; y < ny; y++ {
				ym, yp := y-1, y+1
				if ym < 0 {
					ym = 0
				}
				if yp >= ny {
					yp = ny - 1
				}
				for x := 0; x < nx; x++ {
					xm, xp := x-1, x+1
					if xm < 0 {
						xm = 0
					}
					if xp >= nx {
						xp = nx - 1
					}
					c := h.cur[h.idx(z, y, x)]
					lap := h.cur[h.idx(z, y, xm)] + h.cur[h.idx(z, y, xp)] +
						h.cur[h.idx(z, ym, x)] + h.cur[h.idx(z, yp, x)] +
						h.cur[h.idx(z-1, y, x)] + h.cur[h.idx(z+1, y, x)] - 6*c
					h.next[h.idx(z, y, x)] = c + alpha*lap
				}
			}
		}
	}

	planes := zTo - zFrom
	threads := h.cfg.Threads
	if threads == 1 || planes < threads {
		update(zFrom, zTo)
		return
	}
	var wg sync.WaitGroup
	per := planes / threads
	rem := planes % threads
	z := zFrom
	for t := 0; t < threads; t++ {
		count := per
		if t < rem {
			count++
		}
		from, to := z, z+count
		z = to
		wg.Add(1)
		go func() {
			defer wg.Done()
			update(from, to)
		}()
	}
	wg.Wait()
}

// TotalHeat sums the local interior field — conserved globally under the
// insulated boundaries, which the tests exploit.
func (h *Heat3D) TotalHeat() float64 {
	s := 0.0
	for _, v := range h.Data() {
		s += v
	}
	return s
}
