package perfmodel

import (
	"testing"
	"testing/quick"
	"time"
)

func TestCollectiveScaling(t *testing.T) {
	m := CommModel{Latency: time.Millisecond, BytesPerSec: 1 << 20}
	if m.Collective(1, 1000) != 0 {
		t.Error("single rank should cost nothing")
	}
	// 2 ranks: 1 hop; 8 ranks: 3 hops; 9 ranks: 4 hops.
	c2 := m.Collective(2, 0)
	c8 := m.Collective(8, 0)
	c9 := m.Collective(9, 0)
	if c2 != time.Millisecond || c8 != 3*time.Millisecond || c9 != 4*time.Millisecond {
		t.Fatalf("hops wrong: %v %v %v", c2, c8, c9)
	}
	// Bandwidth term: 1 MiB at 1 MiB/s over 1 hop ~= 1 s + latency.
	c := m.Collective(2, 1<<20)
	if c < time.Second || c > time.Second+10*time.Millisecond {
		t.Fatalf("bandwidth term %v", c)
	}
}

func TestCollectiveMonotone(t *testing.T) {
	m := DefaultComm
	f := func(r1, r2 uint8, b1, b2 uint16) bool {
		ra, rb := int(r1%64)+1, int(r2%64)+1
		ba, bb := int64(b1), int64(b2)
		if ra > rb {
			ra, rb = rb, ra
		}
		if ba > bb {
			ba, bb = bb, ba
		}
		return m.Collective(ra, ba) <= m.Collective(rb, bb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAmdahl(t *testing.T) {
	perfect := Amdahl{}
	if s := perfect.Speedup(8); s != 8 {
		t.Fatalf("perfect speedup %v", s)
	}
	half := Amdahl{SerialFraction: 0.5}
	if s := half.Speedup(1000); s > 2 {
		t.Fatalf("Amdahl limit violated: %v", s)
	}
	sat := Amdahl{SaturationCores: 30}
	if sat.Speedup(60) != sat.Speedup(30) {
		t.Fatal("saturation not applied")
	}
	if sat.Speedup(10) >= sat.Speedup(30) {
		t.Fatal("speedup should grow below saturation")
	}
	if d := perfect.Time(8*time.Second, 8); d != time.Second {
		t.Fatalf("Time = %v", d)
	}
}

func TestAmdahlPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero cores accepted")
		}
	}()
	Amdahl{}.Speedup(0)
}

func TestNodeStepCompute(t *testing.T) {
	n := NodeStep{
		ThreadTimes: []time.Duration{time.Second, 3 * time.Second, 2 * time.Second},
		SerialTime:  time.Second,
		MemSlowdown: 2,
	}
	if c := n.Compute(); c != 8*time.Second {
		t.Fatalf("compute %v, want 8s", c)
	}
	// Zero slowdown treated as 1.
	n.MemSlowdown = 0
	if c := n.Compute(); c != 4*time.Second {
		t.Fatalf("compute %v, want 4s", c)
	}
}

func TestStepTime(t *testing.T) {
	comm := CommModel{Latency: time.Millisecond}
	nodes := []NodeStep{
		{ThreadTimes: []time.Duration{10 * time.Millisecond}},
		{ThreadTimes: []time.Duration{30 * time.Millisecond}},
		{ThreadTimes: []time.Duration{20 * time.Millisecond}},
		{ThreadTimes: []time.Duration{15 * time.Millisecond}},
	}
	// Slowest node 30ms + 2 hops (4 ranks) * 1ms.
	if got := StepTime(nodes, comm); got != 32*time.Millisecond {
		t.Fatalf("step time %v", got)
	}
	if StepTime(nil, comm) != 0 {
		t.Error("empty step should cost nothing")
	}
}

func TestStrongScalingShapeEmerges(t *testing.T) {
	// Synthetic perfectly-divisible work: doubling nodes should halve the
	// compute but pay one more hop, so efficiency ends below 1 and above
	// 0.9 — the regime of the paper's Figure 7.
	comm := DefaultComm
	work := 80 * time.Millisecond
	timeFor := func(nodes int) time.Duration {
		per := work / time.Duration(nodes)
		ns := make([]NodeStep, nodes)
		for i := range ns {
			ns[i] = NodeStep{ThreadTimes: []time.Duration{per}, CommBytes: 4096}
		}
		return StepTime(ns, comm)
	}
	base := timeFor(4)
	for _, p := range []int{8, 16, 32} {
		eff := Efficiency(4, base, p, timeFor(p))
		if eff <= 0.9 || eff >= 1.0 {
			t.Fatalf("efficiency at %d nodes = %v, want (0.9, 1.0)", p, eff)
		}
	}
}

func TestEfficiencyAndSpeedup(t *testing.T) {
	if e := Efficiency(4, 100*time.Millisecond, 8, 50*time.Millisecond); e != 1 {
		t.Fatalf("perfect efficiency %v", e)
	}
	if e := Efficiency(4, 100*time.Millisecond, 8, 100*time.Millisecond); e != 0.5 {
		t.Fatalf("halved efficiency %v", e)
	}
	if Efficiency(0, 0, 0, 0) != 0 {
		t.Error("degenerate efficiency should be 0")
	}
	if s := Speedup(10*time.Second, 2*time.Second); s != 5 {
		t.Fatalf("speedup %v", s)
	}
	if Speedup(time.Second, 0) != 0 {
		t.Error("degenerate speedup should be 0")
	}
}
