// Package perfmodel composes modeled cluster times from measured work, so
// the paper's node- and thread-scaling experiments reproduce on a host with
// fewer cores than the simulated cluster. The method (documented in
// DESIGN.md §6): every simulated thread's and node's real work is executed
// and timed, then one cluster step costs
//
//	T = max over nodes( (max over threads(split time) + serial time)
//	      × memory pressure factor ) + T_collective(P, bytes)
//
// with the global combination charged by a latency–bandwidth (α–β) model
// along a binomial tree of depth ⌈log₂P⌉. Absolute times are not claimed;
// the scaling shapes — parallel efficiency, crossovers, who wins — follow
// from the same work partitioning and overhead ratios as on a real cluster.
package perfmodel

import (
	"fmt"
	"math"
	"time"
)

// CommModel is the α–β cost model for collectives.
type CommModel struct {
	// Latency is the per-tree-hop latency (α).
	Latency time.Duration
	// BytesPerSec is the link bandwidth (β).
	BytesPerSec float64
}

// DefaultComm approximates a commodity cluster interconnect: 25µs per hop,
// 1 GB/s links — deliberately mid-range so synchronization overheads are
// visible but not dominant, matching the paper's ~93% parallel efficiency
// regime.
var DefaultComm = CommModel{Latency: 25 * time.Microsecond, BytesPerSec: 1 << 30}

// Collective charges one tree-structured collective (reduce or broadcast)
// over ranks processes carrying bytes per hop.
func (m CommModel) Collective(ranks int, bytes int64) time.Duration {
	if ranks <= 1 {
		return 0
	}
	hops := int(math.Ceil(math.Log2(float64(ranks))))
	perHop := m.Latency
	if m.BytesPerSec > 0 {
		perHop += time.Duration(float64(bytes) / m.BytesPerSec * float64(time.Second))
	}
	return time.Duration(hops) * perHop
}

// Amdahl models a computation's thread scalability: a serial fraction plus
// a hard core-count saturation (the many-core premise of Section 5.6, where
// the simulation cannot use all Xeon Phi cores effectively).
type Amdahl struct {
	// SerialFraction is the unparallelizable share in [0, 1).
	SerialFraction float64
	// SaturationCores caps the usable parallelism (0 = unlimited).
	SaturationCores int
}

// Speedup returns the modeled speedup on the given core count.
func (a Amdahl) Speedup(cores int) float64 {
	if cores < 1 {
		panic(fmt.Sprintf("perfmodel: invalid core count %d", cores))
	}
	effective := cores
	if a.SaturationCores > 0 && effective > a.SaturationCores {
		effective = a.SaturationCores
	}
	return 1 / (a.SerialFraction + (1-a.SerialFraction)/float64(effective))
}

// Time scales a measured sequential duration onto cores.
func (a Amdahl) Time(seq time.Duration, cores int) time.Duration {
	return time.Duration(float64(seq) / a.Speedup(cores))
}

// NodeStep is one node's measured contribution to a cluster step.
type NodeStep struct {
	// ThreadTimes are the per-thread split durations (from
	// core.Stats.SplitTimes, measured under SchedArgs.Sequential).
	ThreadTimes []time.Duration
	// SerialTime is the node's unparallelized work for the step (local
	// combination, serialization).
	SerialTime time.Duration
	// CommBytes is the node's global combination payload.
	CommBytes int64
	// MemSlowdown is the node's virtual memory pressure factor (>= 1;
	// zero is treated as 1).
	MemSlowdown float64
}

// Compute is the node's modeled local time: slowest thread plus serial
// work, inflated by memory pressure.
func (n NodeStep) Compute() time.Duration {
	var maxThread time.Duration
	for _, t := range n.ThreadTimes {
		if t > maxThread {
			maxThread = t
		}
	}
	slow := n.MemSlowdown
	if slow < 1 {
		slow = 1
	}
	return time.Duration(float64(maxThread+n.SerialTime) * slow)
}

// StepTime composes one cluster step from every node's measurements: the
// slowest node's compute plus one global combination.
func StepTime(nodes []NodeStep, comm CommModel) time.Duration {
	if len(nodes) == 0 {
		return 0
	}
	var compute time.Duration
	var bytes int64
	for _, n := range nodes {
		if c := n.Compute(); c > compute {
			compute = c
		}
		if n.CommBytes > bytes {
			bytes = n.CommBytes
		}
	}
	return compute + comm.Collective(len(nodes), bytes)
}

// Efficiency is strong-scaling parallel efficiency against a baseline
// configuration: (T_base × P_base) / (T × P).
func Efficiency(baseNodes int, baseTime time.Duration, nodes int, t time.Duration) float64 {
	if t <= 0 || nodes <= 0 || baseNodes <= 0 || baseTime <= 0 {
		return 0
	}
	return float64(baseTime) * float64(baseNodes) / (float64(t) * float64(nodes))
}

// Speedup is baseTime / t.
func Speedup(baseTime, t time.Duration) float64 {
	if t <= 0 {
		return 0
	}
	return float64(baseTime) / float64(t)
}
