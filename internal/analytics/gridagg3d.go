package analytics

import (
	"github.com/scipioneer/smart/internal/chunk"
	"github.com/scipioneer/smart/internal/core"
)

// GridAgg3D is structural grid aggregation over a 3-D field: the input is a
// [z][y][x]-major flattened array, and elements are aggregated into
// (GX × GY × GZ)-cell bricks — the SAGA-style "ad-hoc structural
// aggregation" Section 5.8 highlights as natively expressible because
// Smart's unit chunks preserve array positional information. The output is
// one mean per brick, the multi-resolution view visualization pipelines
// downsample with.
type GridAgg3D struct {
	// NX, NY, NZ are the local tile's extents (the full field when the
	// process owns everything).
	NX, NY, NZ int
	// GX, GY, GZ are the brick extents.
	GX, GY, GZ int
	// BaseY and BaseZ are the tile's global offsets, so brick ids are
	// global under 1-D (z) or 2-D (y, z) decompositions.
	BaseY, BaseZ int
	// GlobalNX and GlobalNY are the global field extents that shape the
	// brick grid; they default to NX and NY (no decomposition in x).
	GlobalNX, GlobalNY int
}

// NewGridAgg3D creates the application for a z-decomposed (or undecomposed)
// field; extents and bricks must be positive.
func NewGridAgg3D(nx, ny, nz, gx, gy, gz, baseZ int) *GridAgg3D {
	return NewGridAgg3DTile(nx, ny, nz, gx, gy, gz, 0, baseZ, nx, ny)
}

// NewGridAgg3DTile creates the application for an arbitrary (y, z) tile of
// a globalNX × globalNY × * field — the form the 2-D domain decomposition
// needs.
func NewGridAgg3DTile(nx, ny, nz, gx, gy, gz, baseY, baseZ, globalNX, globalNY int) *GridAgg3D {
	if nx <= 0 || ny <= 0 || nz <= 0 || gx <= 0 || gy <= 0 || gz <= 0 {
		panic("analytics: invalid 3-D grid aggregation extents")
	}
	if globalNX < nx || globalNY < baseY+ny {
		panic("analytics: tile exceeds the global extents")
	}
	return &GridAgg3D{
		NX: nx, NY: ny, NZ: nz, GX: gx, GY: gy, GZ: gz,
		BaseY: baseY, BaseZ: baseZ, GlobalNX: globalNX, GlobalNY: globalNY,
	}
}

// BricksX reports the brick-grid extent along x.
func (g *GridAgg3D) BricksX() int { return (g.GlobalNX + g.GX - 1) / g.GX }

// BricksY reports the brick-grid extent along y.
func (g *GridAgg3D) BricksY() int { return (g.GlobalNY + g.GY - 1) / g.GY }

// BrickID maps a global (x, y, z) coordinate to its brick key.
func (g *GridAgg3D) BrickID(x, y, z int) int {
	bx, by, bz := x/g.GX, y/g.GY, z/g.GZ
	return (bz*g.BricksY()+by)*g.BricksX() + bx
}

// NewRedObj implements core.Analytics.
func (g *GridAgg3D) NewRedObj() core.RedObj { return &SumCountObj{} }

// GenKey implements core.Analytics: recover the global (x, y, z) from the
// flattened tile position and return the global brick id.
func (g *GridAgg3D) GenKey(c chunk.Chunk, _ []float64, _ core.CombMap) int {
	pos := c.Start
	x := pos % g.NX
	y := (pos/g.NX)%g.NY + g.BaseY
	z := pos/(g.NX*g.NY) + g.BaseZ
	return g.BrickID(x, y, z)
}

// Accumulate implements core.Analytics.
func (g *GridAgg3D) Accumulate(c chunk.Chunk, data []float64, obj core.RedObj) {
	o := obj.(*SumCountObj)
	o.Sum += data[c.Start]
	o.Count++
}

// Merge implements core.Analytics.
func (g *GridAgg3D) Merge(src, dst core.RedObj) {
	s, d := src.(*SumCountObj), dst.(*SumCountObj)
	d.Sum += s.Sum
	d.Count += s.Count
}

// Convert implements core.Converter: the brick mean.
func (g *GridAgg3D) Convert(obj core.RedObj, out *float64) {
	o := obj.(*SumCountObj)
	if o.Count > 0 {
		*out = o.Sum / float64(o.Count)
	}
}
