package analytics

import (
	"math"

	"github.com/scipioneer/smart/internal/chunk"
	"github.com/scipioneer/smart/internal/core"
)

// KernelDensity is the Gaussian kernel density estimation application of the
// paper's window-based class (window size 25 in the evaluation). We
// implement the sliding-window Gaussian-kernel estimate: the value at every
// position is re-estimated as the kernel-weighted combination of its window
// (a Nadaraya–Watson smoother with a positional Gaussian kernel). A
// value-space KDE cannot merge across partition boundaries — a contributor
// on one node cannot read a window center on another — so the positional
// kernel is the variant that preserves the paper's memory and communication
// behaviour; see DESIGN.md.
type KernelDensity struct {
	Window
	// Bandwidth is the Gaussian sigma in element positions; zero defaults
	// to Size/5.
	Bandwidth float64
}

// NewKernelDensity creates the estimator; see NewMovingAverage for the
// window parameters.
func NewKernelDensity(size, total, base int, trigger bool, bandwidth float64) *KernelDensity {
	k := &KernelDensity{Window: newWindow(size, total, base, trigger), Bandwidth: bandwidth}
	if k.Bandwidth <= 0 {
		k.Bandwidth = float64(size) / 5
	}
	return k
}

// weight returns the Gaussian kernel weight for an offset from the window
// center.
func (k *KernelDensity) weight(offset int) float64 {
	z := float64(offset) / k.Bandwidth
	return math.Exp(-z * z / 2)
}

// NewRedObj implements core.Analytics.
func (k *KernelDensity) NewRedObj() core.RedObj { return &WeightedObj{} }

// GenKey implements core.Analytics; window applications use GenKeys.
func (k *KernelDensity) GenKey(chunk.Chunk, []float64, core.CombMap) int {
	panic("analytics: kernel density requires Run2 (gen_keys)")
}

// AccumulateKeyed implements core.PositionalAccumulator: the contribution's
// weight depends on its offset from the window center (the key).
func (k *KernelDensity) AccumulateKeyed(key int, c chunk.Chunk, data []float64, obj core.RedObj) {
	o := obj.(*WeightedObj)
	w := k.weight(k.Base + c.Start - key)
	o.WSum += w * data[c.Start]
	o.Weight += w
	o.Count++
	o.Expected = k.expected(key)
}

// Accumulate implements core.Analytics; unreachable because the runtime
// prefers AccumulateKeyed, but required by the interface.
func (k *KernelDensity) Accumulate(chunk.Chunk, []float64, core.RedObj) {
	panic("analytics: kernel density requires positional accumulation")
}

// Merge implements core.Analytics.
func (k *KernelDensity) Merge(src, dst core.RedObj) {
	s, d := src.(*WeightedObj), dst.(*WeightedObj)
	d.WSum += s.WSum
	d.Weight += s.Weight
	d.Count += s.Count
	if s.Expected > d.Expected {
		d.Expected = s.Expected
	}
}

// Convert implements core.Converter: the normalized kernel estimate.
func (k *KernelDensity) Convert(obj core.RedObj, out *float64) {
	o := obj.(*WeightedObj)
	if o.Weight != 0 {
		*out = o.WSum / o.Weight
	}
}
