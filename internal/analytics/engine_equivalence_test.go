package analytics

import (
	"bytes"
	"math"
	"sync"
	"testing"

	"github.com/scipioneer/smart/internal/chunk"
	"github.com/scipioneer/smart/internal/core"
)

// TestEngineByteIdentical is the cross-application equivalence test for the
// execution engines: for each of the paper's nine applications, the static
// schedule and the work-stealing schedule must produce byte-identical
// EncodeCombinationMap output.
//
// Steals regroup a thread's range into extra segments, which is only visible
// where the arithmetic is grouping-sensitive, so every case is configured so
// its reductions are exact: integer counts (histogram, mutualinfo),
// integer-valued sums (gridagg, kmeans, movingavg), per-grid-cell-constant
// values (moments — every Welford delta is zero), dyadic features with zero
// initial weights and a single iteration (logreg — every gradient term is a
// multiple of 2⁻⁴), or order-preserved holistic appends (movingmedian).
// The kernel-weighted apps (kde, savgol) have irrational weights, so their
// stealing run uses Sequential mode, which the engine guarantees degenerates
// to the exact static schedule; TestEngineForcedStealKDEWithinTolerance
// covers their behavior under real steals.
func TestEngineByteIdentical(t *testing.T) {
	const n = 6000
	vals := synth(n, func(i int) float64 { return float64((i*37)%200)/10 - 10 })
	// Integer-valued samples: sums are exact however they are grouped.
	ivals := synth(n, func(i int) float64 { return float64((i*37)%200 - 100) })
	// Constant within each 100-element grid cell, so moments accumulate with
	// zero deltas and merge exactly.
	cellvals := synth(n, func(i int) float64 { return float64((i/100)%7 - 3) })
	// Labeled records for logistic regression: 4 dyadic features (multiples
	// of 1/8) + a 0/1 label. With zero initial weights every sigmoid is
	// exactly 0.5, so gradient terms are multiples of 1/16 and their sums are
	// exact at any grouping — but only for the first iteration.
	recs := synth(n, func(i int) float64 {
		if i%5 == 4 {
			return float64(i % 2)
		}
		return float64((i*13)%16)/8 - 1
	})

	cases := []struct {
		name string
		// seqStealing runs the stealing side in Sequential mode (zero steals
		// by construction) for apps whose arithmetic cannot be made exact.
		seqStealing bool
		encode      func(t *testing.T, a core.SchedArgs) []byte
	}{
		{"histogram", false, func(t *testing.T, a core.SchedArgs) []byte {
			a.ChunkSize = 1
			return runAndEncode[int64](t, NewHistogram(-10, 10, 64), a, vals, 64, false)
		}},
		{"gridagg", false, func(t *testing.T, a core.SchedArgs) []byte {
			a.ChunkSize = 1
			return runAndEncode[float64](t, NewGridAgg(100, 0), a, ivals, 60, false)
		}},
		{"moments", false, func(t *testing.T, a core.SchedArgs) []byte {
			a.ChunkSize = 1
			return runAndEncode[float64](t, NewMoments(100, 0), a, cellvals, 60, false)
		}},
		{"mutualinfo", false, func(t *testing.T, a core.SchedArgs) []byte {
			a.ChunkSize = 2
			return runAndEncode[int64](t, NewMutualInfo(-10, 10, 16, -10, 10, 16), a, vals, 0, false)
		}},
		{"logreg", false, func(t *testing.T, a core.SchedArgs) []byte {
			a.ChunkSize, a.NumIters = 5, 1
			return runAndEncode[float64](t, NewLogReg(4, 0.1), a, recs, 0, false)
		}},
		{"kmeans", false, func(t *testing.T, a core.SchedArgs) []byte {
			// Integer coordinates: centroids after each PostCombine are a
			// deterministic function of exact integer sums, so every
			// iteration's assignments and sums agree across engines.
			a.ChunkSize, a.NumIters, a.Extra = 4, 3, initCentroidsTest(4, 4)
			return runAndEncode[[]float64](t, NewKMeans(4, 4), a, ivals, 0, false)
		}},
		{"movingavg", false, func(t *testing.T, a core.SchedArgs) []byte {
			a.ChunkSize = 1
			return runAndEncode[float64](t, NewMovingAverage(25, n, 0, false), a, ivals, n, true)
		}},
		{"movingmedian", false, func(t *testing.T, a core.SchedArgs) []byte {
			// Holistic: the object preserves every contribution. Front claims
			// plus input-offset segment ordering keep each window's values in
			// ascending chunk order, so even real steals cannot reorder them.
			a.ChunkSize = 1
			return runAndEncode[float64](t, NewMovingMedian(25, n, 0, false), a, vals, n, true)
		}},
		{"kde", true, func(t *testing.T, a core.SchedArgs) []byte {
			a.ChunkSize = 1
			return runAndEncode[float64](t, NewKernelDensity(25, n, 0, false, 1.5), a, vals, n, true)
		}},
		{"savgol", true, func(t *testing.T, a core.SchedArgs) []byte {
			a.ChunkSize = 1
			return runAndEncode[float64](t, NewSavitzkyGolay(25, 2, n, 0, false), a, vals, n, true)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ref := tc.encode(t, core.SchedArgs{NumThreads: 4, Engine: core.EngineStatic})
			if len(ref) <= 4 {
				t.Fatal("reference combination map is empty — the case tests nothing")
			}
			got := tc.encode(t, core.SchedArgs{
				NumThreads: 4, Engine: core.EngineStealing, Sequential: tc.seqStealing,
			})
			if !bytes.Equal(got, ref) {
				t.Errorf("stealing encoding differs from static (%d vs %d bytes)", len(got), len(ref))
			}
		})
	}
}

// gateMedian wraps MovingMedian with the straggler gate of the core engine
// tests: the worker holding chunk 0 parks until some worker reaches the
// guard region, which only a thief can do while the owner is parked — so a
// steal is guaranteed, deterministically, with no timing dependence.
type gateMedian struct {
	*MovingMedian
	gate         chan struct{}
	guard, limit int
	once         sync.Once
}

func (g *gateMedian) AccumulateKeyed(key int, c chunk.Chunk, data []float64, obj core.RedObj) {
	if c.Start >= g.guard && c.Start < g.limit {
		g.once.Do(func() { close(g.gate) })
	}
	if c.Start == 0 {
		<-g.gate
	}
	g.MovingMedian.AccumulateKeyed(key, c, data, obj)
}

// TestEngineForcedStealMedianByteIdentical pins the determinism claim that
// matters most for stealing — per-key contribution order — on the holistic
// application under a guaranteed steal: a moving median whose values arrive
// through stolen segments must still encode byte-for-byte like the static
// schedule, because segments merge in ascending input-offset order.
func TestEngineForcedStealMedianByteIdentical(t *testing.T) {
	const n = 6000
	vals := synth(n, func(i int) float64 { return float64((i*37)%200)/10 - 10 })
	app := &gateMedian{
		MovingMedian: NewMovingMedian(25, n, 0, false),
		gate:         make(chan struct{}),
		guard:        3 * (n / 2) / 4, // past any front batch the parked owner claimed
		limit:        n / 2,           // one past split 0 at nt=2
	}
	s := core.MustNewScheduler[float64, float64](app, core.SchedArgs{
		NumThreads: 2, ChunkSize: 1, Engine: core.EngineStealing,
	})
	out := make([]float64, n)
	if err := s.Run2(vals, out); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats().Snapshot(); st.Steals == 0 {
		t.Fatal("no steal recorded despite a parked straggler")
	}
	got, err := s.EncodeCombinationMap()
	if err != nil {
		t.Fatal(err)
	}
	ref := runAndEncode[float64](t, NewMovingMedian(25, n, 0, false),
		core.SchedArgs{NumThreads: 2, ChunkSize: 1}, vals, n, true)
	if !bytes.Equal(got, ref) {
		t.Errorf("stolen-segment median encoding differs from static (%d vs %d bytes)", len(got), len(ref))
	}
}

// gateKDE is the same straggler gate around the kernel density estimator.
type gateKDE struct {
	*KernelDensity
	gate         chan struct{}
	guard, limit int
	once         sync.Once
}

func (g *gateKDE) AccumulateKeyed(key int, c chunk.Chunk, data []float64, obj core.RedObj) {
	if c.Start >= g.guard && c.Start < g.limit {
		g.once.Do(func() { close(g.gate) })
	}
	if c.Start == 0 {
		<-g.gate
	}
	g.KernelDensity.AccumulateKeyed(key, c, data, obj)
}

// TestEngineForcedStealKDEWithinTolerance bounds the one divergence stealing
// is allowed: the kernel density estimator sums irrational Gaussian weights,
// so a steal boundary regroups a floating-point sum. Under a guaranteed
// steal the outputs must still agree with the static schedule to rounding
// error — a window sums at most 25 weighted terms.
func TestEngineForcedStealKDEWithinTolerance(t *testing.T) {
	const n = 6000
	vals := synth(n, func(i int) float64 { return float64((i*37)%200)/10 - 10 })
	app := &gateKDE{
		KernelDensity: NewKernelDensity(25, n, 0, false, 1.5),
		gate:          make(chan struct{}),
		guard:         3 * (n / 2) / 4,
		limit:         n / 2,
	}
	s := core.MustNewScheduler[float64, float64](app, core.SchedArgs{
		NumThreads: 2, ChunkSize: 1, Engine: core.EngineStealing,
	})
	got := make([]float64, n)
	if err := s.Run2(vals, got); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats().Snapshot(); st.Steals == 0 {
		t.Fatal("no steal recorded despite a parked straggler")
	}
	ref := core.MustNewScheduler[float64, float64](NewKernelDensity(25, n, 0, false, 1.5),
		core.SchedArgs{NumThreads: 2, ChunkSize: 1})
	want := make([]float64, n)
	if err := ref.Run2(vals, want); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if d := math.Abs(got[i] - want[i]); d > 1e-9*(1+math.Abs(want[i])) {
			t.Fatalf("position %d: stealing %v, static %v (diff %g)", i, got[i], want[i], d)
		}
	}
}

// TestEngineTriggeredEmissions pins early-emission semantics across engines
// on a Triggered application. A window emits early exactly when one segment
// sees all of its contributions, so the static schedule suppresses windows
// straddling split boundaries and stealing may suppress more (steal
// boundaries subdivide a split) — but every emission either engine produces
// must carry the final value for its key, each key emits at most once, the
// stealing run's emissions are a subset of the static run's (it has the same
// split boundaries plus possibly more), and the final outputs are identical.
// With zero steals the emission sets must match exactly.
func TestEngineTriggeredEmissions(t *testing.T) {
	const n = 6000
	ivals := synth(n, func(i int) float64 { return float64((i*37)%200 - 100) })

	run := func(engine string) (map[int]float64, []float64, int64) {
		var mu sync.Mutex
		emits := make(map[int]float64)
		s := core.MustNewScheduler[float64, float64](NewMovingAverage(25, n, 0, true),
			core.SchedArgs{NumThreads: 4, ChunkSize: 1, Engine: engine})
		s.SubscribeEarlyEmits(func(key int, value float64) {
			mu.Lock()
			defer mu.Unlock()
			if _, dup := emits[key]; dup {
				t.Errorf("%s: key %d emitted twice", engine, key)
			}
			emits[key] = value
		})
		out := make([]float64, n)
		if err := s.Run2(ivals, out); err != nil {
			t.Fatal(err)
		}
		return emits, out, s.Stats().Snapshot().Steals
	}

	staticEmits, staticOut, _ := run(core.EngineStatic)
	stealEmits, stealOut, steals := run(core.EngineStealing)

	if len(staticEmits) == 0 {
		t.Fatal("static run emitted nothing early — the trigger test is vacuous")
	}
	for i := range staticOut {
		if staticOut[i] != stealOut[i] {
			t.Fatalf("position %d: final output %v (static) vs %v (stealing)", i, staticOut[i], stealOut[i])
		}
	}
	for k, v := range stealEmits {
		ref, ok := staticEmits[k]
		if !ok {
			t.Errorf("stealing emitted key %d which static suppressed", k)
			continue
		}
		if v != ref || v != staticOut[k] {
			t.Errorf("key %d: emitted %v (stealing) vs %v (static), final %v", k, v, ref, staticOut[k])
		}
	}
	if steals == 0 && len(stealEmits) != len(staticEmits) {
		t.Errorf("zero steals but %d emissions vs static's %d", len(stealEmits), len(staticEmits))
	}
}
