package analytics

import (
	"math"

	"github.com/scipioneer/smart/internal/chunk"
	"github.com/scipioneer/smart/internal/core"
)

// Moments extends the statistical-analytics class beyond the paper's
// histogram: streaming central moments (mean, variance, skewness, kurtosis)
// per grid region, using the numerically stable pairwise update and merge
// formulas of Pébay/Chan — the textbook example of a distributive
// reduction that Smart's merge-based combination handles exactly.
type Moments struct {
	// GridSize groups consecutive elements into regions; 0 computes one
	// global set of moments (key 0).
	GridSize int
	// Base is the global index of this process's first element.
	Base int
}

// NewMoments creates the application. gridSize 0 means global moments.
func NewMoments(gridSize, base int) *Moments {
	if gridSize < 0 {
		panic("analytics: negative grid size")
	}
	return &Moments{GridSize: gridSize, Base: base}
}

// MomentsObj accumulates count and the first four centered moment sums.
type MomentsObj struct {
	N          int64
	Mean       float64
	M2, M3, M4 float64
}

// Clone implements core.RedObj.
func (m *MomentsObj) Clone() core.RedObj { cp := *m; return &cp }

// NewSlab implements core.FixedSizeObj.
func (m *MomentsObj) NewSlab(n int) []core.RedObj {
	backing := make([]MomentsObj, n)
	objs := make([]core.RedObj, n)
	for i := range backing {
		objs[i] = &backing[i]
	}
	return objs
}

// Assign implements core.FixedSizeObj.
func (m *MomentsObj) Assign(src core.RedObj) { *m = *src.(*MomentsObj) }

// AppendBinary implements core.Appender.
func (m *MomentsObj) AppendBinary(b []byte) ([]byte, error) {
	b = appendI64(b, m.N)
	b = appendF64(b, m.Mean)
	b = appendF64(b, m.M2)
	b = appendF64(b, m.M3)
	return appendF64(b, m.M4), nil
}

// MarshalBinary implements core.RedObj.
func (m *MomentsObj) MarshalBinary() ([]byte, error) {
	return m.AppendBinary(make([]byte, 0, 40))
}

// UnmarshalBinary implements core.RedObj.
func (m *MomentsObj) UnmarshalBinary(b []byte) error {
	var err error
	if m.N, b, err = readI64(b); err != nil {
		return err
	}
	if m.Mean, b, err = readF64(b); err != nil {
		return err
	}
	if m.M2, b, err = readF64(b); err != nil {
		return err
	}
	if m.M3, b, err = readF64(b); err != nil {
		return err
	}
	if m.M4, b, err = readF64(b); err != nil {
		return err
	}
	if len(b) != 0 {
		return errTrailing("MomentsObj")
	}
	return nil
}

// SizeBytes implements core.Sized.
func (m *MomentsObj) SizeBytes() int { return 48 }

// Add folds a single observation in (Welford/Pébay single-value update).
func (m *MomentsObj) Add(x float64) {
	n1 := float64(m.N)
	m.N++
	n := float64(m.N)
	delta := x - m.Mean
	deltaN := delta / n
	deltaN2 := deltaN * deltaN
	term1 := delta * deltaN * n1
	m.Mean += deltaN
	m.M4 += term1*deltaN2*(n*n-3*n+3) + 6*deltaN2*m.M2 - 4*deltaN*m.M3
	m.M3 += term1*deltaN*(n-2) - 3*deltaN*m.M2
	m.M2 += term1
}

// Combine folds another accumulator in (Chan/Pébay pairwise merge).
func (m *MomentsObj) Combine(o *MomentsObj) {
	if o.N == 0 {
		return
	}
	if m.N == 0 {
		*m = *o
		return
	}
	na, nb := float64(m.N), float64(o.N)
	n := na + nb
	delta := o.Mean - m.Mean
	delta2 := delta * delta
	mean := m.Mean + delta*nb/n
	M2 := m.M2 + o.M2 + delta2*na*nb/n
	M3 := m.M3 + o.M3 +
		delta*delta2*na*nb*(na-nb)/(n*n) +
		3*delta*(na*o.M2-nb*m.M2)/n
	M4 := m.M4 + o.M4 +
		delta2*delta2*na*nb*(na*na-na*nb+nb*nb)/(n*n*n) +
		6*delta2*(na*na*o.M2+nb*nb*m.M2)/(n*n) +
		4*delta*(na*o.M3-nb*m.M3)/n
	m.N += o.N
	m.Mean, m.M2, m.M3, m.M4 = mean, M2, M3, M4
}

// Variance returns the population variance.
func (m *MomentsObj) Variance() float64 {
	if m.N == 0 {
		return 0
	}
	return m.M2 / float64(m.N)
}

// Skewness returns the population skewness (0 for fewer than 2 samples or
// zero variance).
func (m *MomentsObj) Skewness() float64 {
	if m.N < 2 || m.M2 == 0 {
		return 0
	}
	n := float64(m.N)
	return math.Sqrt(n) * m.M3 / math.Pow(m.M2, 1.5)
}

// Kurtosis returns the population excess kurtosis.
func (m *MomentsObj) Kurtosis() float64 {
	if m.N < 2 || m.M2 == 0 {
		return 0
	}
	n := float64(m.N)
	return n*m.M4/(m.M2*m.M2) - 3
}

// NewRedObj implements core.Analytics.
func (mo *Moments) NewRedObj() core.RedObj { return &MomentsObj{} }

// GenKey implements core.Analytics.
func (mo *Moments) GenKey(c chunk.Chunk, _ []float64, _ core.CombMap) int {
	if mo.GridSize == 0 {
		return 0
	}
	return (mo.Base + c.Start) / mo.GridSize
}

// Accumulate implements core.Analytics.
func (mo *Moments) Accumulate(c chunk.Chunk, data []float64, obj core.RedObj) {
	obj.(*MomentsObj).Add(data[c.Start])
}

// Merge implements core.Analytics.
func (mo *Moments) Merge(src, dst core.RedObj) {
	dst.(*MomentsObj).Combine(src.(*MomentsObj))
}

// Convert implements core.Converter: out receives the region's variance;
// richer statistics are read from the combination map's MomentsObj directly.
func (mo *Moments) Convert(obj core.RedObj, out *float64) {
	*out = obj.(*MomentsObj).Variance()
}
