package analytics

import (
	"math"
	"sync"
	"testing"

	"github.com/scipioneer/smart/internal/core"
	"github.com/scipioneer/smart/internal/mpi"
	"github.com/scipioneer/smart/internal/sim"
)

// TestGridAgg3DOn2DDecomposedHeat couples the 2-D-decomposed Heat3D with
// tiled 3-D grid aggregation: four ranks each simulate a (y, z) tile,
// aggregate their tile into global bricks, and global combination must
// reproduce the single-rank result — the full in-situ pipeline across a
// 2-D process grid.
func TestGridAgg3DOn2DDecomposedHeat(t *testing.T) {
	const nx, ny, nz = 6, 8, 8
	const gx, gy, gz = 3, 4, 4
	const steps = 3

	// Reference: single rank.
	single, err := sim.NewHeat3D2D(sim.Heat3D2DConfig{NX: nx, NY: ny, NZ: nz, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < steps; i++ {
		single.Step()
	}
	refApp := NewGridAgg3D(nx, ny, nz, gx, gy, gz, 0)
	bricks := refApp.BricksX() * refApp.BricksY() * ((nz + gz - 1) / gz)
	refSched := core.MustNewScheduler[float64, float64](refApp, core.SchedArgs{
		NumThreads: 1, ChunkSize: 1, NumIters: 1,
	})
	want := make([]float64, bricks)
	if err := refSched.Run(single.Data(), want); err != nil {
		t.Fatal(err)
	}

	// Distributed: a 2x2 process grid.
	const py, pz = 2, 2
	comms := mpi.NewWorld(py * pz)
	results := make([][]float64, py*pz)
	var wg sync.WaitGroup
	for r := 0; r < py*pz; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer comms[r].Close()
			h, err := sim.NewHeat3D2D(sim.Heat3D2DConfig{
				NX: nx, NY: ny, NZ: nz, PY: py, PZ: pz, Comm: comms[r], Seed: 5,
			})
			if err != nil {
				t.Errorf("rank %d: %v", r, err)
				return
			}
			for i := 0; i < steps; i++ {
				if err := h.Step(); err != nil {
					t.Errorf("rank %d: %v", r, err)
					return
				}
			}
			ys, yc, zs, zc := h.Tile()
			app := NewGridAgg3DTile(nx, yc, zc, gx, gy, gz, ys, zs, nx, ny)
			sched := core.MustNewScheduler[float64, float64](app, core.SchedArgs{
				NumThreads: 2, ChunkSize: 1, NumIters: 1, Comm: comms[r],
			})
			out := make([]float64, bricks)
			if err := sched.Run(h.Data(), out); err != nil {
				t.Errorf("rank %d analytics: %v", r, err)
				return
			}
			results[r] = out
		}()
	}
	wg.Wait()

	for r := range results {
		for id := range want {
			if math.Abs(results[r][id]-want[id]) > 1e-9 {
				t.Fatalf("rank %d brick %d = %v, want %v", r, id, results[r][id], want[id])
			}
		}
	}
}
