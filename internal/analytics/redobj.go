// Package analytics implements the nine applications of the paper's
// evaluation (Section 5.1) on top of the Smart runtime, one per class of
// in-situ analytics:
//
//   - visualization: grid aggregation
//   - statistical analytics: histogram
//   - similarity analytics: mutual information
//   - feature analytics: logistic regression
//   - clustering analytics: k-means
//   - window-based analytics: moving average, moving median, Gaussian
//     kernel density estimation, and the Savitzky–Golay filter
//
// Every application is an ordinary implementation of core.Analytics: the
// same code runs in time sharing, space sharing, and offline modes.
package analytics

import (
	"encoding/binary"
	"fmt"
	"math"

	"github.com/scipioneer/smart/internal/core"
)

// --- small binary codec helpers shared by the reduction objects ---

func appendF64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

func appendI64(b []byte, v int64) []byte {
	return binary.LittleEndian.AppendUint64(b, uint64(v))
}

func errTrailing(typ string) error {
	return fmt.Errorf("analytics: %s trailing bytes", typ)
}

func readF64(b []byte) (float64, []byte, error) {
	if len(b) < 8 {
		return 0, nil, fmt.Errorf("analytics: truncated float64")
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b)), b[8:], nil
}

func readI64(b []byte) (int64, []byte, error) {
	if len(b) < 8 {
		return 0, nil, fmt.Errorf("analytics: truncated int64")
	}
	return int64(binary.LittleEndian.Uint64(b)), b[8:], nil
}

func appendF64s(b []byte, vs []float64) []byte {
	b = appendI64(b, int64(len(vs)))
	for _, v := range vs {
		b = appendF64(b, v)
	}
	return b
}

func readF64s(b []byte) ([]float64, []byte, error) {
	n, b, err := readI64(b)
	if err != nil {
		return nil, nil, err
	}
	if n < 0 || int64(len(b)) < 8*n {
		return nil, nil, fmt.Errorf("analytics: truncated float64 slice of %d", n)
	}
	vs := make([]float64, n)
	for i := range vs {
		vs[i], b, _ = readF64(b)
	}
	return vs, b, nil
}

// CountObj counts elements — the bucket of histogram and the cell of grid
// aggregation's counting variant (paper Listing 3).
type CountObj struct {
	Count int64
}

// Clone implements core.RedObj.
func (c *CountObj) Clone() core.RedObj { cp := *c; return &cp }

// AppendBinary implements core.Appender: the MarshalBinary encoding,
// appended in place so the serializer can reuse one buffer across objects.
func (c *CountObj) AppendBinary(b []byte) ([]byte, error) { return appendI64(b, c.Count), nil }

// MarshalBinary implements core.RedObj.
func (c *CountObj) MarshalBinary() ([]byte, error) { return c.AppendBinary(nil) }

// UnmarshalBinary implements core.RedObj.
func (c *CountObj) UnmarshalBinary(b []byte) error {
	v, rest, err := readI64(b)
	if err != nil || len(rest) != 0 {
		return fmt.Errorf("analytics: CountObj payload: %w", err)
	}
	c.Count = v
	return nil
}

// SizeBytes implements core.Sized.
func (c *CountObj) SizeBytes() int { return 16 }

// NewSlab implements core.FixedSizeObj: n counters in one backing array.
func (c *CountObj) NewSlab(n int) []core.RedObj {
	backing := make([]CountObj, n)
	objs := make([]core.RedObj, n)
	for i := range backing {
		objs[i] = &backing[i]
	}
	return objs
}

// Assign implements core.FixedSizeObj.
func (c *CountObj) Assign(src core.RedObj) { *c = *src.(*CountObj) }

// SumCountObj accumulates a sum and a count; it backs grid aggregation and
// moving average (average = Sum/Count) and carries the early-emission
// trigger of paper Listing 5: a full window has Expected contributions.
type SumCountObj struct {
	Sum   float64
	Count int64
	// Expected is the contribution count that finalizes this object; zero
	// disables the trigger.
	Expected int64
}

// Clone implements core.RedObj.
func (o *SumCountObj) Clone() core.RedObj { cp := *o; return &cp }

// AppendBinary implements core.Appender.
func (o *SumCountObj) AppendBinary(b []byte) ([]byte, error) {
	b = appendF64(b, o.Sum)
	b = appendI64(b, o.Count)
	return appendI64(b, o.Expected), nil
}

// MarshalBinary implements core.RedObj.
func (o *SumCountObj) MarshalBinary() ([]byte, error) { return o.AppendBinary(nil) }

// UnmarshalBinary implements core.RedObj.
func (o *SumCountObj) UnmarshalBinary(b []byte) error {
	var err error
	if o.Sum, b, err = readF64(b); err != nil {
		return err
	}
	if o.Count, b, err = readI64(b); err != nil {
		return err
	}
	if o.Expected, b, err = readI64(b); err != nil {
		return err
	}
	if len(b) != 0 {
		return fmt.Errorf("analytics: SumCountObj trailing bytes")
	}
	return nil
}

// Trigger implements core.Triggered.
func (o *SumCountObj) Trigger() bool { return o.Expected > 0 && o.Count == o.Expected }

// SizeBytes implements core.Sized.
func (o *SumCountObj) SizeBytes() int { return 32 }

// NewSlab implements core.FixedSizeObj.
func (o *SumCountObj) NewSlab(n int) []core.RedObj {
	backing := make([]SumCountObj, n)
	objs := make([]core.RedObj, n)
	for i := range backing {
		objs[i] = &backing[i]
	}
	return objs
}

// Assign implements core.FixedSizeObj.
func (o *SumCountObj) Assign(src core.RedObj) { *o = *src.(*SumCountObj) }

// WeightedObj accumulates a weighted sum and the total weight — the object
// behind the position-weighted window convolutions (Savitzky–Golay,
// Gaussian kernel).
type WeightedObj struct {
	WSum     float64
	Weight   float64
	Count    int64
	Expected int64
}

// Clone implements core.RedObj.
func (o *WeightedObj) Clone() core.RedObj { cp := *o; return &cp }

// AppendBinary implements core.Appender.
func (o *WeightedObj) AppendBinary(b []byte) ([]byte, error) {
	b = appendF64(b, o.WSum)
	b = appendF64(b, o.Weight)
	b = appendI64(b, o.Count)
	return appendI64(b, o.Expected), nil
}

// MarshalBinary implements core.RedObj.
func (o *WeightedObj) MarshalBinary() ([]byte, error) { return o.AppendBinary(nil) }

// UnmarshalBinary implements core.RedObj.
func (o *WeightedObj) UnmarshalBinary(b []byte) error {
	var err error
	if o.WSum, b, err = readF64(b); err != nil {
		return err
	}
	if o.Weight, b, err = readF64(b); err != nil {
		return err
	}
	if o.Count, b, err = readI64(b); err != nil {
		return err
	}
	if o.Expected, b, err = readI64(b); err != nil {
		return err
	}
	if len(b) != 0 {
		return fmt.Errorf("analytics: WeightedObj trailing bytes")
	}
	return nil
}

// Trigger implements core.Triggered.
func (o *WeightedObj) Trigger() bool { return o.Expected > 0 && o.Count == o.Expected }

// SizeBytes implements core.Sized.
func (o *WeightedObj) SizeBytes() int { return 48 }

// NewSlab implements core.FixedSizeObj.
func (o *WeightedObj) NewSlab(n int) []core.RedObj {
	backing := make([]WeightedObj, n)
	objs := make([]core.RedObj, n)
	for i := range backing {
		objs[i] = &backing[i]
	}
	return objs
}

// Assign implements core.FixedSizeObj.
func (o *WeightedObj) Assign(src core.RedObj) { *o = *src.(*WeightedObj) }

// ValuesObj preserves every contribution — the Θ(W) holistic object of
// moving median (paper Section 4.1).
type ValuesObj struct {
	Values   []float64
	Expected int64
}

// Clone implements core.RedObj.
func (o *ValuesObj) Clone() core.RedObj {
	cp := &ValuesObj{Expected: o.Expected}
	cp.Values = append([]float64(nil), o.Values...)
	return cp
}

// AppendBinary implements core.Appender.
func (o *ValuesObj) AppendBinary(b []byte) ([]byte, error) {
	b = appendF64s(b, o.Values)
	return appendI64(b, o.Expected), nil
}

// MarshalBinary implements core.RedObj.
func (o *ValuesObj) MarshalBinary() ([]byte, error) {
	return o.AppendBinary(make([]byte, 0, 8*(len(o.Values)+2)))
}

// UnmarshalBinary implements core.RedObj.
func (o *ValuesObj) UnmarshalBinary(b []byte) error {
	var err error
	if o.Values, b, err = readF64s(b); err != nil {
		return err
	}
	if o.Expected, b, err = readI64(b); err != nil {
		return err
	}
	if len(b) != 0 {
		return fmt.Errorf("analytics: ValuesObj trailing bytes")
	}
	return nil
}

// Trigger implements core.Triggered.
func (o *ValuesObj) Trigger() bool { return o.Expected > 0 && int64(len(o.Values)) == o.Expected }

// SizeBytes implements core.Sized.
func (o *ValuesObj) SizeBytes() int { return 32 + 8*cap(o.Values) }

// ClusterObj is the k-means cluster of paper Listing 4: a centroid, the
// component-wise sum of member points, and the member count.
type ClusterObj struct {
	Centroid []float64
	Sum      []float64
	Size     int64
}

// NewClusterObj creates a cluster around the given centroid.
func NewClusterObj(centroid []float64) *ClusterObj {
	return &ClusterObj{
		Centroid: append([]float64(nil), centroid...),
		Sum:      make([]float64, len(centroid)),
	}
}

// Clone implements core.RedObj.
func (o *ClusterObj) Clone() core.RedObj {
	return &ClusterObj{
		Centroid: append([]float64(nil), o.Centroid...),
		Sum:      append([]float64(nil), o.Sum...),
		Size:     o.Size,
	}
}

// AppendBinary implements core.Appender.
func (o *ClusterObj) AppendBinary(b []byte) ([]byte, error) {
	b = appendF64s(b, o.Centroid)
	b = appendF64s(b, o.Sum)
	return appendI64(b, o.Size), nil
}

// MarshalBinary implements core.RedObj.
func (o *ClusterObj) MarshalBinary() ([]byte, error) {
	return o.AppendBinary(make([]byte, 0, 8*(len(o.Centroid)+len(o.Sum)+3)))
}

// UnmarshalBinary implements core.RedObj.
func (o *ClusterObj) UnmarshalBinary(b []byte) error {
	var err error
	if o.Centroid, b, err = readF64s(b); err != nil {
		return err
	}
	if o.Sum, b, err = readF64s(b); err != nil {
		return err
	}
	if o.Size, b, err = readI64(b); err != nil {
		return err
	}
	if len(b) != 0 {
		return fmt.Errorf("analytics: ClusterObj trailing bytes")
	}
	return nil
}

// Update recomputes the centroid from Sum and Size and resets both — the
// update() of paper Listing 4, invoked from PostCombine.
func (o *ClusterObj) Update() {
	if o.Size > 0 {
		for i := range o.Centroid {
			o.Centroid[i] = o.Sum[i] / float64(o.Size)
		}
	}
	for i := range o.Sum {
		o.Sum[i] = 0
	}
	o.Size = 0
}

// SizeBytes implements core.Sized.
func (o *ClusterObj) SizeBytes() int { return 32 + 16*len(o.Centroid) }

// GradObj is logistic regression's reduction object: the current weight
// vector (broadcast state distributed through the combination map) and the
// accumulated gradient.
type GradObj struct {
	Weights []float64
	Grad    []float64
	Count   int64
}

// Clone implements core.RedObj.
func (o *GradObj) Clone() core.RedObj {
	return &GradObj{
		Weights: append([]float64(nil), o.Weights...),
		Grad:    append([]float64(nil), o.Grad...),
		Count:   o.Count,
	}
}

// AppendBinary implements core.Appender.
func (o *GradObj) AppendBinary(b []byte) ([]byte, error) {
	b = appendF64s(b, o.Weights)
	b = appendF64s(b, o.Grad)
	return appendI64(b, o.Count), nil
}

// MarshalBinary implements core.RedObj.
func (o *GradObj) MarshalBinary() ([]byte, error) {
	return o.AppendBinary(make([]byte, 0, 8*(len(o.Weights)+len(o.Grad)+3)))
}

// UnmarshalBinary implements core.RedObj.
func (o *GradObj) UnmarshalBinary(b []byte) error {
	var err error
	if o.Weights, b, err = readF64s(b); err != nil {
		return err
	}
	if o.Grad, b, err = readF64s(b); err != nil {
		return err
	}
	if o.Count, b, err = readI64(b); err != nil {
		return err
	}
	if len(b) != 0 {
		return fmt.Errorf("analytics: GradObj trailing bytes")
	}
	return nil
}

// SizeBytes implements core.Sized.
func (o *GradObj) SizeBytes() int { return 32 + 16*len(o.Weights) }
