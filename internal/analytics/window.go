package analytics

import (
	"github.com/scipioneer/smart/internal/chunk"
	"github.com/scipioneer/smart/internal/core"
)

// Window carries the geometry shared by the window-based applications:
// every element at global position p contributes to the windows centered on
// positions [p-half, p+half], clamped to the array ends (paper Listing 5).
type Window struct {
	// Size is the window length; it must be odd so windows are centered.
	Size int
	// Total is the global array length (window keys are global positions).
	Total int
	// Base is the global position of this process's first local element.
	Base int
	// EnableTrigger turns on early emission of finalized windows
	// (Section 4.2). Disabling it reproduces the baseline of Figure 11.
	EnableTrigger bool
}

func newWindow(size, total, base int, trigger bool) Window {
	if size <= 0 || size%2 == 0 {
		panic("analytics: window size must be positive and odd")
	}
	if total <= 0 {
		panic("analytics: total length must be positive")
	}
	return Window{Size: size, Total: total, Base: base, EnableTrigger: trigger}
}

func (w Window) half() int { return w.Size / 2 }

// GenKeys implements core.MultiKeyer for all window applications.
func (w Window) GenKeys(c chunk.Chunk, _ []float64, _ core.CombMap, keys []int) []int {
	center := w.Base + c.Start
	lo := max(center-w.half(), 0)
	hi := min(center+w.half(), w.Total-1)
	for k := lo; k <= hi; k++ {
		keys = append(keys, k)
	}
	return keys
}

// expected returns the early-emission target contribution count for a
// window, or 0 when the trigger is disabled. A full interior window has Size
// contributions; windows clamped at the array ends have fewer. (The paper's
// Listing 5 uses the constant WIN_SIZE; deriving the clamped count also lets
// boundary windows of the global array emit early.)
func (w Window) expected(key int) int64 {
	if !w.EnableTrigger {
		return 0
	}
	lo := max(key-w.half(), 0)
	hi := min(key+w.half(), w.Total-1)
	return int64(hi - lo + 1)
}

// MovingAverage computes the mean of every window snapshot — the paper's
// canonical window application (Listing 5).
type MovingAverage struct {
	Window
}

// NewMovingAverage creates a moving average over windows of the given size
// on a global array of total elements, of which this process owns the range
// starting at base.
func NewMovingAverage(size, total, base int, trigger bool) *MovingAverage {
	return &MovingAverage{Window: newWindow(size, total, base, trigger)}
}

// NewRedObj implements core.Analytics.
func (m *MovingAverage) NewRedObj() core.RedObj { return &SumCountObj{} }

// GenKey implements core.Analytics; window applications use GenKeys.
func (m *MovingAverage) GenKey(chunk.Chunk, []float64, core.CombMap) int {
	panic("analytics: moving average requires Run2 (gen_keys)")
}

// AccumulateKeyed implements core.PositionalAccumulator.
func (m *MovingAverage) AccumulateKeyed(key int, c chunk.Chunk, data []float64, obj core.RedObj) {
	o := obj.(*SumCountObj)
	o.Sum += data[c.Start]
	o.Count++
	o.Expected = m.expected(key)
}

// Accumulate implements core.Analytics (the non-positional fallback, with
// the paper's constant-size trigger).
func (m *MovingAverage) Accumulate(c chunk.Chunk, data []float64, obj core.RedObj) {
	o := obj.(*SumCountObj)
	o.Sum += data[c.Start]
	o.Count++
	if m.EnableTrigger {
		o.Expected = int64(m.Size)
	}
}

// Merge implements core.Analytics.
func (m *MovingAverage) Merge(src, dst core.RedObj) {
	s, d := src.(*SumCountObj), dst.(*SumCountObj)
	d.Sum += s.Sum
	d.Count += s.Count
	if s.Expected > d.Expected {
		d.Expected = s.Expected
	}
}

// Convert implements core.Converter.
func (m *MovingAverage) Convert(obj core.RedObj, out *float64) {
	o := obj.(*SumCountObj)
	if o.Count > 0 {
		*out = o.Sum / float64(o.Count)
	}
}

// MovingMedian computes the median of every window snapshot. The median is
// holistic — the reduction object must preserve all Θ(W) contributions
// (paper Section 4.1) — which makes this the most memory-hungry application
// and the Figure 11b workload.
type MovingMedian struct {
	Window
}

// NewMovingMedian creates a moving median; see NewMovingAverage for the
// parameters.
func NewMovingMedian(size, total, base int, trigger bool) *MovingMedian {
	return &MovingMedian{Window: newWindow(size, total, base, trigger)}
}

// NewRedObj implements core.Analytics.
func (m *MovingMedian) NewRedObj() core.RedObj { return &ValuesObj{} }

// GenKey implements core.Analytics; window applications use GenKeys.
func (m *MovingMedian) GenKey(chunk.Chunk, []float64, core.CombMap) int {
	panic("analytics: moving median requires Run2 (gen_keys)")
}

// AccumulateKeyed implements core.PositionalAccumulator.
func (m *MovingMedian) AccumulateKeyed(key int, c chunk.Chunk, data []float64, obj core.RedObj) {
	o := obj.(*ValuesObj)
	o.Values = append(o.Values, data[c.Start])
	o.Expected = m.expected(key)
}

// Accumulate implements core.Analytics.
func (m *MovingMedian) Accumulate(c chunk.Chunk, data []float64, obj core.RedObj) {
	o := obj.(*ValuesObj)
	o.Values = append(o.Values, data[c.Start])
	if m.EnableTrigger {
		o.Expected = int64(m.Size)
	}
}

// Merge implements core.Analytics.
func (m *MovingMedian) Merge(src, dst core.RedObj) {
	s, d := src.(*ValuesObj), dst.(*ValuesObj)
	d.Values = append(d.Values, s.Values...)
	if s.Expected > d.Expected {
		d.Expected = s.Expected
	}
}

// Convert implements core.Converter: the median of the preserved values.
func (m *MovingMedian) Convert(obj core.RedObj, out *float64) {
	o := obj.(*ValuesObj)
	if len(o.Values) == 0 {
		return
	}
	*out = median(o.Values)
}

// median returns the median of vs without mutating it.
func median(vs []float64) float64 {
	tmp := append([]float64(nil), vs...)
	// Quickselect would do; insertion sort is fine at window sizes.
	for i := 1; i < len(tmp); i++ {
		v := tmp[i]
		j := i - 1
		for j >= 0 && tmp[j] > v {
			tmp[j+1] = tmp[j]
			j--
		}
		tmp[j+1] = v
	}
	n := len(tmp)
	if n%2 == 1 {
		return tmp[n/2]
	}
	return (tmp[n/2-1] + tmp[n/2]) / 2
}
