package analytics

import (
	"math"
	"testing"

	"github.com/scipioneer/smart/internal/core"
)

func naiveMatMul(a, b []float64, n int) []float64 {
	c := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			aik := a[i*n+k]
			for j := 0; j < n; j++ {
				c[i*n+j] += aik * b[k*n+j]
			}
		}
	}
	return c
}

func matInput(n int, seed float64) []float64 {
	m := make([]float64, n*n)
	for i := range m {
		m[i] = math.Sin(float64(i)*1.3 + seed)
	}
	return m
}

func TestMatMulMatchesNaive(t *testing.T) {
	const n = 24
	a := matInput(n, 0)
	b := matInput(n, 7)
	want := naiveMatMul(a, b, n)
	for _, trigger := range []bool{false, true} {
		app := NewMatMul(n, b, trigger)
		s := core.MustNewScheduler[float64, float64](app, core.SchedArgs{
			NumThreads: 3, ChunkSize: 1, NumIters: 1,
		})
		out := make([]float64, n*n)
		if err := s.Run2(a, out); err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if math.Abs(out[i]-want[i]) > 1e-9 {
				t.Fatalf("trigger=%v: C[%d] = %v, want %v", trigger, i, out[i], want[i])
			}
		}
	}
}

func TestMatMulEarlyEmissionBoundsState(t *testing.T) {
	// The paper's claim: each C element receives exactly N contributions,
	// so with the trigger the live reduction objects stay near one output
	// row's worth instead of the full N^2 matrix.
	const n = 32
	a := matInput(n, 1)
	b := matInput(n, 2)
	run := func(trigger bool) *core.Stats {
		app := NewMatMul(n, b, trigger)
		s := core.MustNewScheduler[float64, float64](app, core.SchedArgs{
			NumThreads: 1, ChunkSize: 1, NumIters: 1,
		})
		out := make([]float64, n*n)
		if err := s.Run2(a, out); err != nil {
			t.Fatal(err)
		}
		return s.Stats()
	}
	off := run(false)
	on := run(true)
	if off.MaxLiveRedObjs != n*n {
		t.Fatalf("no-trigger live objects %d, want %d", off.MaxLiveRedObjs, n*n)
	}
	if on.MaxLiveRedObjs > 2*n {
		t.Fatalf("trigger live objects %d, want <= %d (one row's worth)", on.MaxLiveRedObjs, 2*n)
	}
	if on.EmittedEarly != n*n {
		t.Fatalf("emitted %d, want every element (%d)", on.EmittedEarly, n*n)
	}
}

func TestMatMulIdentity(t *testing.T) {
	const n = 8
	a := matInput(n, 3)
	eye := make([]float64, n*n)
	for i := 0; i < n; i++ {
		eye[i*n+i] = 1
	}
	app := NewMatMul(n, eye, true)
	s := core.MustNewScheduler[float64, float64](app, core.SchedArgs{
		NumThreads: 2, ChunkSize: 1, NumIters: 1,
	})
	out := make([]float64, n*n)
	if err := s.Run2(a, out); err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if math.Abs(out[i]-a[i]) > 1e-12 {
			t.Fatalf("A*I != A at %d: %v vs %v", i, out[i], a[i])
		}
	}
}

func TestMatMulValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched B accepted")
		}
	}()
	NewMatMul(4, make([]float64, 5), false)
}
