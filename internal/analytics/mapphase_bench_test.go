package analytics

import (
	"testing"

	"github.com/scipioneer/smart/internal/core"
)

// BenchmarkMapPhase measures the reduction-store ablation of the map phase:
// the same iterative in-situ workload (one Run per simulation step, the
// combination map carried across steps) under the gomap baseline and the
// arena store. allocs/op is the headline number — the arena recycles its
// segment stores across steps and slab-allocates the FixedSizeObj reduction
// objects, so its steady-state step should allocate far less than the
// per-key map-entry churn of the baseline. The committed BENCH_mapphase.json
// records both (scripts/bench.sh mapphase).
func BenchmarkMapPhase(b *testing.B) {
	const n = 20000
	vals := synth(n, func(i int) float64 { return float64((i*37)%200)/10 - 10 })
	cellvals := synth(n, func(i int) float64 { return float64((i*13)%900)/100 - 4.5 })

	cases := []struct {
		name string
		run  func(b *testing.B, impl string)
	}{
		{"histogram", func(b *testing.B, impl string) {
			s := core.MustNewScheduler[float64, int64](NewHistogram(-10, 10, 256),
				core.SchedArgs{NumThreads: 4, ChunkSize: 1, MapImpl: impl})
			out := make([]int64, 256)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := s.Run(vals, out); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"moments", func(b *testing.B, impl string) {
			s := core.MustNewScheduler[float64, float64](NewMoments(50, 0),
				core.SchedArgs{NumThreads: 4, ChunkSize: 1, MapImpl: impl})
			out := make([]float64, n/50)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := s.Run(vals, out); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"movingavg", func(b *testing.B, impl string) {
			s := core.MustNewScheduler[float64, float64](NewMovingAverage(25, n, 0, false),
				core.SchedArgs{NumThreads: 4, ChunkSize: 1, MapImpl: impl})
			out := make([]float64, n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := s.Run2(cellvals, out); err != nil {
					b.Fatal(err)
				}
			}
		}},
	}
	for _, tc := range cases {
		for _, impl := range []string{core.MapGo, core.MapArena} {
			b.Run(tc.name+"/"+impl, func(b *testing.B) { tc.run(b, impl) })
		}
	}
}
