package analytics

import (
	"github.com/scipioneer/smart/internal/chunk"
	"github.com/scipioneer/smart/internal/core"
)

// GridAgg is the visualization-class application: grid aggregation groups
// the elements within a grid of GridSize consecutive elements into a single
// element (their mean), producing a multi-resolution view of the field
// (paper Section 5.1, grid size 1,000).
type GridAgg struct {
	// GridSize is the number of consecutive elements per grid cell.
	GridSize int
	// Base is the global index of this process's first element, so grid
	// cells are numbered globally across a distributed array.
	Base int
}

// NewGridAgg creates the application; it panics on a non-positive grid.
func NewGridAgg(gridSize, base int) *GridAgg {
	if gridSize <= 0 {
		panic("analytics: grid size must be positive")
	}
	return &GridAgg{GridSize: gridSize, Base: base}
}

// NewRedObj implements core.Analytics.
func (g *GridAgg) NewRedObj() core.RedObj { return &SumCountObj{} }

// GenKey implements core.Analytics: the key is the global grid cell id.
func (g *GridAgg) GenKey(c chunk.Chunk, _ []float64, _ core.CombMap) int {
	return (g.Base + c.Start) / g.GridSize
}

// Accumulate implements core.Analytics.
func (g *GridAgg) Accumulate(c chunk.Chunk, data []float64, obj core.RedObj) {
	o := obj.(*SumCountObj)
	o.Sum += data[c.Start]
	o.Count++
}

// Merge implements core.Analytics.
func (g *GridAgg) Merge(src, dst core.RedObj) {
	s, d := src.(*SumCountObj), dst.(*SumCountObj)
	d.Sum += s.Sum
	d.Count += s.Count
}

// Convert implements core.Converter: the aggregated element is the cell mean.
func (g *GridAgg) Convert(obj core.RedObj, out *float64) {
	o := obj.(*SumCountObj)
	if o.Count > 0 {
		*out = o.Sum / float64(o.Count)
	}
}
