package analytics_test

import (
	"fmt"

	"github.com/scipioneer/smart/internal/analytics"
	"github.com/scipioneer/smart/internal/core"
)

// ExampleKMeans shows iterative clustering: initial centroids travel in as
// extra data, converge over NumIters, and come back out of the combination
// map.
func ExampleKMeans() {
	// Two 1-D clusters around 0 and 10 (Dims=1).
	data := []float64{0, 0.5, -0.5, 10, 10.5, 9.5}
	app := analytics.NewKMeans(2, 1)
	sched := core.MustNewScheduler[float64, []float64](app, core.SchedArgs{
		NumThreads: 1, ChunkSize: 1, NumIters: 5,
		Extra: []float64{1, 9}, // initial centroids
	})
	if err := sched.Run(data, nil); err != nil {
		panic(err)
	}
	for i, c := range app.Centroids(sched.CombinationMap()) {
		fmt.Printf("cluster %d: %.1f\n", i, c[0])
	}
	// Output:
	// cluster 0: 0.0
	// cluster 1: 10.0
}

// ExampleMovingMedian shows a holistic window application with early
// emission: the reduction object keeps all window values, and completed
// windows convert during reduction.
func ExampleMovingMedian() {
	data := []float64{5, 1, 4, 2, 3}
	app := analytics.NewMovingMedian(3, len(data), 0, true)
	sched := core.MustNewScheduler[float64, float64](app, core.SchedArgs{
		NumThreads: 1, ChunkSize: 1,
	})
	out := make([]float64, len(data))
	if err := sched.Run2(data, out); err != nil {
		panic(err)
	}
	fmt.Println(out)
	// Output: [3 4 2 3 2.5]
}

// ExampleTopK shows hotspot detection with a bounded-heap reduction object.
func ExampleTopK() {
	data := []float64{3, 9, 1, 7, 9.5, 2}
	app := analytics.NewTopK(2, 0)
	sched := core.MustNewScheduler[float64, float64](app, core.SchedArgs{
		NumThreads: 2, ChunkSize: 1,
	})
	if err := sched.Run(data, nil); err != nil {
		panic(err)
	}
	for _, e := range app.Extremes(sched.CombinationMap()) {
		fmt.Printf("%.1f at %d\n", e.Val, e.Pos)
	}
	// Output:
	// 9.5 at 4
	// 9.0 at 1
}

// ExampleMoments shows streaming statistics with the numerically stable
// pairwise merge.
func ExampleMoments() {
	data := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	app := analytics.NewMoments(0, 0)
	sched := core.MustNewScheduler[float64, float64](app, core.SchedArgs{
		NumThreads: 4, ChunkSize: 1,
	})
	if err := sched.Run(data, nil); err != nil {
		panic(err)
	}
	obj := sched.CombinationMap()[0].(*analytics.MomentsObj)
	fmt.Printf("mean=%.1f variance=%.1f\n", obj.Mean, obj.Variance())
	// Output: mean=5.0 variance=4.0
}
