package analytics

import (
	"math"

	"github.com/scipioneer/smart/internal/chunk"
	"github.com/scipioneer/smart/internal/core"
)

// MutualInfo is the similarity-analytics application: the mutual information
// between two variables, estimated from their joint equi-width histogram
// (paper Section 5.1: 100 buckets per variable, up to 10,000 joint cells).
// The input is interleaved (x, y) pairs, so ChunkSize must be 2.
type MutualInfo struct {
	// XMin/XWidth and YMin/YWidth define the per-variable bucket grids.
	XMin, XWidth float64
	YMin, YWidth float64
	// XBuckets and YBuckets are the per-variable bucket counts.
	XBuckets, YBuckets int
}

// NewMutualInfo creates the joint histogram over [xmin,xmax) × [ymin,ymax)
// with bx × by cells.
func NewMutualInfo(xmin, xmax float64, bx int, ymin, ymax float64, by int) *MutualInfo {
	if bx <= 0 || by <= 0 || xmax <= xmin || ymax <= ymin {
		panic("analytics: invalid mutual information grid")
	}
	return &MutualInfo{
		XMin: xmin, XWidth: (xmax - xmin) / float64(bx), XBuckets: bx,
		YMin: ymin, YWidth: (ymax - ymin) / float64(by), YBuckets: by,
	}
}

func clampBucket(v, min, width float64, n int) int {
	k := int((v - min) / width)
	if k < 0 {
		return 0
	}
	if k >= n {
		return n - 1
	}
	return k
}

// NewRedObj implements core.Analytics.
func (m *MutualInfo) NewRedObj() core.RedObj { return &CountObj{} }

// GenKey implements core.Analytics: the joint cell id ix*YBuckets + iy.
func (m *MutualInfo) GenKey(c chunk.Chunk, data []float64, _ core.CombMap) int {
	ix := clampBucket(data[c.Start], m.XMin, m.XWidth, m.XBuckets)
	iy := clampBucket(data[c.Start+1], m.YMin, m.YWidth, m.YBuckets)
	return ix*m.YBuckets + iy
}

// Accumulate implements core.Analytics.
func (m *MutualInfo) Accumulate(_ chunk.Chunk, _ []float64, obj core.RedObj) {
	obj.(*CountObj).Count++
}

// Merge implements core.Analytics.
func (m *MutualInfo) Merge(src, dst core.RedObj) {
	dst.(*CountObj).Count += src.(*CountObj).Count
}

// Convert implements core.Converter: the raw joint cell count.
func (m *MutualInfo) Convert(obj core.RedObj, out *int64) {
	*out = obj.(*CountObj).Count
}

// MI computes the mutual information I(X;Y) in nats from a combination map
// holding the joint histogram — the post-processing step a Smart pipeline
// performs on the converged global result.
func (m *MutualInfo) MI(com core.CombMap) float64 {
	joint := make(map[int]float64, len(com))
	px := make([]float64, m.XBuckets)
	py := make([]float64, m.YBuckets)
	var total float64
	for k, obj := range com {
		n := float64(obj.(*CountObj).Count)
		joint[k] = n
		px[k/m.YBuckets] += n
		py[k%m.YBuckets] += n
		total += n
	}
	if total == 0 {
		return 0
	}
	mi := 0.0
	for k, n := range joint {
		if n == 0 {
			continue
		}
		pxy := n / total
		marginal := (px[k/m.YBuckets] / total) * (py[k%m.YBuckets] / total)
		mi += pxy * math.Log(pxy/marginal)
	}
	return mi
}
