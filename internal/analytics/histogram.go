package analytics

import (
	"github.com/scipioneer/smart/internal/chunk"
	"github.com/scipioneer/smart/internal/core"
)

// Histogram is the statistical-analytics application: an equi-width
// histogram over a known value range (paper Listing 3; 100–1,200 buckets in
// the evaluation). Values outside [Min, Max) are clamped into the first or
// last bucket.
type Histogram struct {
	// Min is the lower edge of the first bucket.
	Min float64
	// Width is the bucket width.
	Width float64
	// Buckets is the bucket count.
	Buckets int
}

// NewHistogram creates an equi-width histogram over [min, max) with the
// given number of buckets.
func NewHistogram(min, max float64, buckets int) *Histogram {
	if buckets <= 0 || max <= min {
		panic("analytics: invalid histogram range")
	}
	return &Histogram{Min: min, Width: (max - min) / float64(buckets), Buckets: buckets}
}

// NewRedObj implements core.Analytics.
func (h *Histogram) NewRedObj() core.RedObj { return &CountObj{} }

// GenKey implements core.Analytics: the bucket id of the element's value.
func (h *Histogram) GenKey(c chunk.Chunk, data []float64, _ core.CombMap) int {
	k := int((data[c.Start] - h.Min) / h.Width)
	if k < 0 {
		return 0
	}
	if k >= h.Buckets {
		return h.Buckets - 1
	}
	return k
}

// Accumulate implements core.Analytics.
func (h *Histogram) Accumulate(_ chunk.Chunk, _ []float64, obj core.RedObj) {
	obj.(*CountObj).Count++
}

// Merge implements core.Analytics.
func (h *Histogram) Merge(src, dst core.RedObj) {
	dst.(*CountObj).Count += src.(*CountObj).Count
}

// Convert implements core.Converter.
func (h *Histogram) Convert(obj core.RedObj, out *int64) {
	*out = obj.(*CountObj).Count
}
