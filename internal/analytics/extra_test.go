package analytics

import (
	"math"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"github.com/scipioneer/smart/internal/core"
	"github.com/scipioneer/smart/internal/mpi"
)

// --- moments ---

func naiveMoments(xs []float64) (mean, variance, skew, kurt float64) {
	n := float64(len(xs))
	for _, x := range xs {
		mean += x
	}
	mean /= n
	var m2, m3, m4 float64
	for _, x := range xs {
		d := x - mean
		m2 += d * d
		m3 += d * d * d
		m4 += d * d * d * d
	}
	variance = m2 / n
	if m2 > 0 {
		skew = math.Sqrt(n) * m3 / math.Pow(m2, 1.5)
		kurt = n*m4/(m2*m2) - 3
	}
	return
}

func TestMomentsMatchNaive(t *testing.T) {
	in := synth(5000, func(i int) float64 { return math.Sin(float64(i)/3)*4 + float64(i%11) })
	app := NewMoments(0, 0)
	s := core.MustNewScheduler[float64, float64](app, args(4, 1, 1))
	if err := s.Run(in, nil); err != nil {
		t.Fatal(err)
	}
	got := s.CombinationMap()[0].(*MomentsObj)
	mean, variance, skew, kurt := naiveMoments(in)
	if !almostEqual(got.Mean, mean, 1e-9) {
		t.Errorf("mean %v, want %v", got.Mean, mean)
	}
	if !almostEqual(got.Variance(), variance, 1e-9) {
		t.Errorf("variance %v, want %v", got.Variance(), variance)
	}
	if !almostEqual(got.Skewness(), skew, 1e-9) {
		t.Errorf("skewness %v, want %v", got.Skewness(), skew)
	}
	if !almostEqual(got.Kurtosis(), kurt, 1e-8) {
		t.Errorf("kurtosis %v, want %v", got.Kurtosis(), kurt)
	}
	if got.N != int64(len(in)) {
		t.Errorf("count %d", got.N)
	}
}

func TestMomentsGridded(t *testing.T) {
	// Two regions with different means; per-region moments must separate.
	in := make([]float64, 200)
	for i := range in {
		if i < 100 {
			in[i] = 5
		} else {
			in[i] = 50 + float64(i%2) // variance > 0
		}
	}
	app := NewMoments(100, 0)
	s := core.MustNewScheduler[float64, float64](app, args(2, 1, 1))
	out := make([]float64, 2)
	if err := s.Run(in, out); err != nil {
		t.Fatal(err)
	}
	r0 := s.CombinationMap()[0].(*MomentsObj)
	r1 := s.CombinationMap()[1].(*MomentsObj)
	if r0.Mean != 5 || r0.Variance() != 0 {
		t.Errorf("region 0: mean %v var %v", r0.Mean, r0.Variance())
	}
	if !almostEqual(r1.Mean, 50.5, 1e-9) || !almostEqual(r1.Variance(), 0.25, 1e-9) {
		t.Errorf("region 1: mean %v var %v", r1.Mean, r1.Variance())
	}
	if !almostEqual(out[1], 0.25, 1e-9) {
		t.Errorf("converted variance %v", out[1])
	}
}

func TestMomentsCombineEquivalence(t *testing.T) {
	// Property: accumulating a stream in two halves and combining must
	// match accumulating it whole — the parallel-merge correctness that
	// Smart's combination relies on.
	f := func(raw []float64, split uint8) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e6 {
				xs = append(xs, v)
			}
		}
		if len(xs) < 2 {
			return true
		}
		cut := int(split) % len(xs)
		whole := &MomentsObj{}
		for _, x := range xs {
			whole.Add(x)
		}
		a, b := &MomentsObj{}, &MomentsObj{}
		for _, x := range xs[:cut] {
			a.Add(x)
		}
		for _, x := range xs[cut:] {
			b.Add(x)
		}
		a.Combine(b)
		relClose := func(x, y float64) bool {
			scale := math.Max(math.Abs(x), math.Abs(y))
			return math.Abs(x-y) <= 1e-7*math.Max(scale, 1)
		}
		return a.N == whole.N && relClose(a.Mean, whole.Mean) &&
			relClose(a.M2, whole.M2) && relClose(a.M3, whole.M3) && relClose(a.M4, whole.M4)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMomentsThreadInvariance(t *testing.T) {
	in := synth(3000, func(i int) float64 { return float64((i*i)%97) / 7 })
	run := func(threads int) *MomentsObj {
		app := NewMoments(0, 0)
		s := core.MustNewScheduler[float64, float64](app, args(threads, 1, 1))
		if err := s.Run(in, nil); err != nil {
			t.Fatal(err)
		}
		return s.CombinationMap()[0].(*MomentsObj)
	}
	want := run(1)
	for _, nt := range []int{2, 5} {
		got := run(nt)
		if got.N != want.N || !almostEqual(got.Mean, want.Mean, 1e-9) ||
			!almostEqual(got.Variance(), want.Variance(), 1e-7) {
			t.Fatalf("nt=%d: %+v vs %+v", nt, got, want)
		}
	}
}

// --- top-k ---

func TestTopKMatchesSort(t *testing.T) {
	in := synth(2000, func(i int) float64 { return math.Sin(float64(i)*1.7) * float64(i%131) })
	const k = 10
	app := NewTopK(k, 0)
	s := core.MustNewScheduler[float64, float64](app, args(3, 1, 1))
	if err := s.Run(in, nil); err != nil {
		t.Fatal(err)
	}
	got := app.Extremes(s.CombinationMap())

	type pv struct {
		pos int
		val float64
	}
	all := make([]pv, len(in))
	for i, v := range in {
		all[i] = pv{i, v}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].val != all[j].val {
			return all[i].val > all[j].val
		}
		return all[i].pos < all[j].pos
	})
	if len(got) != k {
		t.Fatalf("got %d extremes, want %d", len(got), k)
	}
	for i := 0; i < k; i++ {
		if got[i].Val != all[i].val {
			t.Fatalf("rank %d: %v@%d, want %v@%d", i, got[i].Val, got[i].Pos, all[i].val, all[i].pos)
		}
	}
}

func TestTopKDistributed(t *testing.T) {
	in := synth(1200, func(i int) float64 { return float64((i * 7919) % 1201) })
	const k, ranks = 5, 3
	per := len(in) / ranks
	comms := mpi.NewWorld(ranks)
	results := make([][]Extreme, ranks)
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer comms[r].Close()
			app := NewTopK(k, r*per)
			s := core.MustNewScheduler[float64, float64](app, core.SchedArgs{
				NumThreads: 2, ChunkSize: 1, NumIters: 1, Comm: comms[r],
			})
			if err := s.Run(in[r*per:(r+1)*per], nil); err != nil {
				t.Errorf("rank %d: %v", r, err)
				return
			}
			results[r] = app.Extremes(s.CombinationMap())
		}()
	}
	wg.Wait()
	// Reference: global top-k with positions.
	vals := append([]float64(nil), in...)
	sort.Sort(sort.Reverse(sort.Float64Slice(vals)))
	for r := 0; r < ranks; r++ {
		for i := 0; i < k; i++ {
			if results[r][i].Val != vals[i] {
				t.Fatalf("rank %d place %d: %v, want %v", r, i, results[r][i].Val, vals[i])
			}
			if in[results[r][i].Pos] != results[r][i].Val {
				t.Fatalf("rank %d place %d: position %d does not hold %v", r, i, results[r][i].Pos, results[r][i].Val)
			}
		}
	}
}

func TestTopKSmallInput(t *testing.T) {
	in := []float64{3, 1}
	app := NewTopK(5, 0)
	s := core.MustNewScheduler[float64, float64](app, args(1, 1, 1))
	if err := s.Run(in, nil); err != nil {
		t.Fatal(err)
	}
	got := app.Extremes(s.CombinationMap())
	if len(got) != 2 || got[0].Val != 3 || got[1].Val != 1 {
		t.Fatalf("extremes %v", got)
	}
}

func TestTopKHeapProperty(t *testing.T) {
	f := func(raw []float64, kRaw uint8) bool {
		k := int(kRaw%8) + 1
		obj := &TopKObj{K: k}
		var clean []float64
		for _, v := range raw {
			if math.IsNaN(v) {
				continue
			}
			clean = append(clean, v)
			obj.Push(int64(len(clean)-1), v)
		}
		if len(obj.Items) > k {
			return false
		}
		got := obj.Sorted()
		sorted := append([]float64(nil), clean...)
		sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
		want := min(k, len(sorted))
		if len(got) != want {
			return false
		}
		for i := 0; i < want; i++ {
			if got[i].Val != sorted[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// --- 3-D structural grid aggregation ---

func TestGridAgg3DMatchesNaive(t *testing.T) {
	const nx, ny, nz = 8, 6, 4
	const gx, gy, gz = 4, 3, 2
	in := make([]float64, nx*ny*nz)
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				in[(z*ny+y)*nx+x] = float64(x + 10*y + 100*z)
			}
		}
	}
	app := NewGridAgg3D(nx, ny, nz, gx, gy, gz, 0)
	bricks := app.BricksX() * app.BricksY() * ((nz + gz - 1) / gz)
	s := core.MustNewScheduler[float64, float64](app, args(3, 1, 1))
	out := make([]float64, bricks)
	if err := s.Run(in, out); err != nil {
		t.Fatal(err)
	}

	sums := make([]float64, bricks)
	counts := make([]float64, bricks)
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				id := app.BrickID(x, y, z)
				sums[id] += in[(z*ny+y)*nx+x]
				counts[id]++
			}
		}
	}
	for id := range sums {
		want := sums[id] / counts[id]
		if !almostEqual(out[id], want, 1e-9) {
			t.Fatalf("brick %d = %v, want %v", id, out[id], want)
		}
		if counts[id] != float64(gx*gy*gz) {
			t.Fatalf("brick %d holds %v elements", id, counts[id])
		}
	}
}

func TestGridAgg3DDistributedZ(t *testing.T) {
	// Two ranks each own half the planes; global combination must fuse
	// bricks that span the decomposition boundary? (Bricks align with the
	// boundary here; the global brick ids must still be consistent.)
	const nx, ny, nzGlobal = 4, 4, 8
	const gx, gy, gz = 2, 2, 2
	in := make([]float64, nx*ny*nzGlobal)
	for i := range in {
		in[i] = float64(i % 37)
	}
	single := NewGridAgg3D(nx, ny, nzGlobal, gx, gy, gz, 0)
	bricks := single.BricksX() * single.BricksY() * (nzGlobal / gz)
	s := core.MustNewScheduler[float64, float64](single, args(1, 1, 1))
	want := make([]float64, bricks)
	if err := s.Run(in, want); err != nil {
		t.Fatal(err)
	}

	const ranks = 2
	per := nzGlobal / ranks
	comms := mpi.NewWorld(ranks)
	results := make([][]float64, ranks)
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer comms[r].Close()
			app := NewGridAgg3D(nx, ny, per, gx, gy, gz, r*per)
			sch := core.MustNewScheduler[float64, float64](app, core.SchedArgs{
				NumThreads: 2, ChunkSize: 1, NumIters: 1, Comm: comms[r],
			})
			out := make([]float64, bricks)
			if err := sch.Run(in[r*per*nx*ny:(r+1)*per*nx*ny], out); err != nil {
				t.Errorf("rank %d: %v", r, err)
				return
			}
			results[r] = out
		}()
	}
	wg.Wait()
	for r := range results {
		for id := range want {
			if !almostEqual(results[r][id], want[id], 1e-9) {
				t.Fatalf("rank %d brick %d = %v, want %v", r, id, results[r][id], want[id])
			}
		}
	}
}

func TestGridAgg3DValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid extents accepted")
		}
	}()
	NewGridAgg3D(0, 1, 1, 1, 1, 1, 0)
}

func TestNewObjCodecs(t *testing.T) {
	for _, obj := range []core.RedObj{
		&MomentsObj{N: 5, Mean: 1.5, M2: 2, M3: -1, M4: 4},
		&TopKObj{K: 3, Items: []Extreme{{Pos: 7, Val: 9.5}, {Pos: 1, Val: 11}}},
	} {
		buf, err := obj.MarshalBinary()
		if err != nil {
			t.Fatalf("%T marshal: %v", obj, err)
		}
		clone := obj.Clone()
		if err := clone.UnmarshalBinary(buf); err != nil {
			t.Fatalf("%T unmarshal: %v", obj, err)
		}
		buf2, _ := clone.MarshalBinary()
		if string(buf) != string(buf2) {
			t.Fatalf("%T roundtrip mismatch", obj)
		}
		if err := clone.UnmarshalBinary(append(buf, 1)); err == nil {
			t.Errorf("%T accepted trailing bytes", obj)
		}
	}
}
