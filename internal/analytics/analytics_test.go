package analytics

import (
	"math"
	"sync"
	"testing"
	"testing/quick"

	"github.com/scipioneer/smart/internal/core"
	"github.com/scipioneer/smart/internal/mpi"
)

// synthetic deterministic input
func synth(n int, f func(i int) float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = f(i)
	}
	return out
}

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func args(threads, chunkSize, iters int) core.SchedArgs {
	return core.SchedArgs{NumThreads: threads, ChunkSize: chunkSize, NumIters: iters}
}

// --- grid aggregation ---

func TestGridAgg(t *testing.T) {
	in := synth(1000, func(i int) float64 { return float64(i) })
	app := NewGridAgg(100, 0)
	s := core.MustNewScheduler[float64, float64](app, args(3, 1, 1))
	out := make([]float64, 10)
	if err := s.Run(in, out); err != nil {
		t.Fatal(err)
	}
	for cell := 0; cell < 10; cell++ {
		want := float64(cell*100) + 49.5
		if !almostEqual(out[cell], want, 1e-9) {
			t.Errorf("cell %d = %v, want %v", cell, out[cell], want)
		}
	}
}

func TestGridAggRaggedTail(t *testing.T) {
	in := synth(250, func(i int) float64 { return 1 })
	app := NewGridAgg(100, 0)
	s := core.MustNewScheduler[float64, float64](app, args(2, 1, 1))
	out := make([]float64, 3)
	if err := s.Run(in, out); err != nil {
		t.Fatal(err)
	}
	for cell := 0; cell < 3; cell++ {
		if !almostEqual(out[cell], 1, 1e-12) {
			t.Errorf("cell %d = %v, want 1", cell, out[cell])
		}
	}
}

// --- histogram ---

func TestHistogram(t *testing.T) {
	in := synth(10000, func(i int) float64 { return float64(i%100) + 0.5 })
	app := NewHistogram(0, 100, 20)
	s := core.MustNewScheduler[float64, int64](app, args(4, 1, 1))
	out := make([]int64, 20)
	if err := s.Run(in, out); err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, c := range out {
		total += c
		if c != 500 {
			t.Errorf("uneven bucket: %d", c)
		}
	}
	if total != 10000 {
		t.Fatalf("total %d", total)
	}
}

func TestHistogramClamping(t *testing.T) {
	in := []float64{-100, -1, 0, 50, 99.9, 100, 1e9}
	app := NewHistogram(0, 100, 10)
	s := core.MustNewScheduler[float64, int64](app, args(1, 1, 1))
	out := make([]int64, 10)
	if err := s.Run(in, out); err != nil {
		t.Fatal(err)
	}
	if out[0] != 3 { // -100, -1, 0
		t.Errorf("first bucket %d, want 3", out[0])
	}
	if out[9] != 3 { // 99.9, 100, 1e9
		t.Errorf("last bucket %d, want 3", out[9])
	}
}

func TestHistogramCountPreservation(t *testing.T) {
	f := func(raw []float64, buckets uint8) bool {
		if len(raw) == 0 {
			return true
		}
		in := make([]float64, len(raw))
		for i, v := range raw {
			if math.IsNaN(v) {
				v = 0
			}
			in[i] = v
		}
		b := int(buckets%50) + 1
		app := NewHistogram(-10, 10, b)
		s := core.MustNewScheduler[float64, int64](app, args(2, 1, 1))
		out := make([]int64, b)
		if err := s.Run(in, out); err != nil {
			return false
		}
		var total int64
		for _, c := range out {
			total += c
		}
		return total == int64(len(in))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// --- mutual information ---

func TestMutualInfoIndependent(t *testing.T) {
	// Independent uniform variables: MI ~ 0.
	n := 20000
	in := make([]float64, 2*n)
	state := uint64(12345)
	next := func() float64 {
		// splitmix64
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		return float64(z%1000000) / 1000000
	}
	for i := 0; i < n; i++ {
		in[2*i] = next()
		in[2*i+1] = next()
	}
	app := NewMutualInfo(0, 1, 10, 0, 1, 10)
	s := core.MustNewScheduler[float64, int64](app, args(2, 2, 1))
	if err := s.Run(in, nil); err != nil {
		t.Fatal(err)
	}
	mi := app.MI(s.CombinationMap())
	if mi < 0 || mi > 0.05 {
		t.Fatalf("independent MI = %v, want ~0", mi)
	}
}

func TestMutualInfoDependent(t *testing.T) {
	// Y = X: MI = H(X) = log(buckets) for uniform X.
	n := 10000
	in := make([]float64, 2*n)
	for i := 0; i < n; i++ {
		x := float64(i%10)/10 + 0.05
		in[2*i] = x
		in[2*i+1] = x
	}
	app := NewMutualInfo(0, 1, 10, 0, 1, 10)
	s := core.MustNewScheduler[float64, int64](app, args(3, 2, 1))
	if err := s.Run(in, nil); err != nil {
		t.Fatal(err)
	}
	mi := app.MI(s.CombinationMap())
	if !almostEqual(mi, math.Log(10), 1e-6) {
		t.Fatalf("dependent MI = %v, want log(10)=%v", mi, math.Log(10))
	}
}

func TestMutualInfoEmpty(t *testing.T) {
	app := NewMutualInfo(0, 1, 4, 0, 1, 4)
	if mi := app.MI(core.CombMap{}); mi != 0 {
		t.Fatalf("empty MI = %v", mi)
	}
}

// --- logistic regression ---

// lrData builds a linearly separable binary dataset with Dims features
// (plus label), decision boundary w·x > 0 with w = (1, -1, 0.5, ...).
func lrData(n, dims int) ([]float64, []float64) {
	w := make([]float64, dims)
	for i := range w {
		w[i] = float64(i%3) - 1 // -1, 0, 1 pattern
	}
	w[0] = 2
	rec := dims + 1
	data := make([]float64, n*rec)
	for i := 0; i < n; i++ {
		z := 0.0
		for j := 0; j < dims; j++ {
			v := math.Sin(float64(i*31 + j*17)) // deterministic pseudo-random in [-1,1]
			data[i*rec+j] = v
			z += w[j] * v
		}
		if z > 0 {
			data[i*rec+dims] = 1
		}
	}
	return data, w
}

func TestLogRegLearnsSeparableData(t *testing.T) {
	const n, dims = 2000, 5
	data, _ := lrData(n, dims)
	app := NewLogReg(dims, 0.5)
	s := core.MustNewScheduler[float64, float64](app, core.SchedArgs{
		NumThreads: 2, ChunkSize: dims + 1, NumIters: 50,
	})
	if err := s.Run(data, nil); err != nil {
		t.Fatal(err)
	}
	w := app.Weights(s.CombinationMap())
	if len(w) != dims {
		t.Fatalf("weights length %d", len(w))
	}
	// Training accuracy should be high on separable data.
	correct := 0
	rec := dims + 1
	for i := 0; i < n; i++ {
		p := Predict(w, data[i*rec:i*rec+dims])
		pred := 0.0
		if p > 0.5 {
			pred = 1
		}
		if pred == data[i*rec+dims] {
			correct++
		}
	}
	if acc := float64(correct) / n; acc < 0.95 {
		t.Fatalf("accuracy %v, want >= 0.95", acc)
	}
}

func TestLogRegMatchesSequentialReference(t *testing.T) {
	// The framework's batch gradient descent must match a hand-rolled
	// sequential implementation bit-for-bit in structure (same updates).
	const n, dims, iters = 500, 3, 5
	const lr = 0.3
	data, _ := lrData(n, dims)
	app := NewLogReg(dims, lr)
	s := core.MustNewScheduler[float64, float64](app, core.SchedArgs{
		NumThreads: 1, ChunkSize: dims + 1, NumIters: iters,
	})
	if err := s.Run(data, nil); err != nil {
		t.Fatal(err)
	}
	got := app.Weights(s.CombinationMap())

	w := make([]float64, dims)
	rec := dims + 1
	for it := 0; it < iters; it++ {
		grad := make([]float64, dims)
		for i := 0; i < n; i++ {
			x := data[i*rec : i*rec+dims]
			y := data[i*rec+dims]
			z := 0.0
			for j := range w {
				z += w[j] * x[j]
			}
			e := 1/(1+math.Exp(-z)) - y
			for j := range grad {
				grad[j] += e * x[j]
			}
		}
		for j := range w {
			w[j] -= lr / n * grad[j]
		}
	}
	for j := range w {
		if !almostEqual(got[j], w[j], 1e-9) {
			t.Fatalf("weight %d = %v, reference %v", j, got[j], w[j])
		}
	}
}

func TestLogRegDistributedMatchesSingleNode(t *testing.T) {
	const n, dims, iters = 800, 4, 10
	data, _ := lrData(n, dims)
	rec := dims + 1

	single := NewLogReg(dims, 0.5)
	s1 := core.MustNewScheduler[float64, float64](single, core.SchedArgs{
		NumThreads: 1, ChunkSize: rec, NumIters: iters,
	})
	if err := s1.Run(data, nil); err != nil {
		t.Fatal(err)
	}
	want := single.Weights(s1.CombinationMap())

	const ranks = 4
	comms := mpi.NewWorld(ranks)
	per := n / ranks * rec
	results := make([][]float64, ranks)
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer comms[r].Close()
			app := NewLogReg(dims, 0.5)
			s := core.MustNewScheduler[float64, float64](app, core.SchedArgs{
				NumThreads: 2, ChunkSize: rec, NumIters: iters, Comm: comms[r],
			})
			if err := s.Run(data[r*per:(r+1)*per], nil); err != nil {
				t.Errorf("rank %d: %v", r, err)
				return
			}
			results[r] = app.Weights(s.CombinationMap())
		}()
	}
	wg.Wait()
	for r := range results {
		for j := range want {
			if !almostEqual(results[r][j], want[j], 1e-9) {
				t.Fatalf("rank %d weight %d = %v, want %v", r, j, results[r][j], want[j])
			}
		}
	}
}

// --- k-means ---

// blob generates points near the given centers, dims-dimensional.
func blobs(perCluster int, centers [][]float64) []float64 {
	dims := len(centers[0])
	var out []float64
	for ci, c := range centers {
		for i := 0; i < perCluster; i++ {
			for d := 0; d < dims; d++ {
				jitter := 0.1 * math.Sin(float64(i*13+ci*7+d*3))
				out = append(out, c[d]+jitter)
			}
		}
	}
	return out
}

func TestKMeansRecoversClusters(t *testing.T) {
	centers := [][]float64{{0, 0}, {10, 10}, {-10, 5}}
	in := blobs(300, centers)
	app := NewKMeans(3, 2)
	init := []float64{1, 1, 8, 8, -8, 4}
	s := core.MustNewScheduler[float64, []float64](app, core.SchedArgs{
		NumThreads: 2, ChunkSize: 2, NumIters: 15, Extra: init,
	})
	if err := s.Run(in, nil); err != nil {
		t.Fatal(err)
	}
	got := app.Centroids(s.CombinationMap())
	for _, c := range centers {
		found := false
		for _, g := range got {
			if almostEqual(g[0], c[0], 0.2) && almostEqual(g[1], c[1], 0.2) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("center %v not recovered; got %v", c, got)
		}
	}
}

func TestKMeansThreadInvariance(t *testing.T) {
	centers := [][]float64{{0, 0, 0, 0}, {5, 5, 5, 5}}
	in := blobs(200, centers)
	init := []float64{1, 1, 1, 1, 4, 4, 4, 4}
	run := func(threads int) [][]float64 {
		app := NewKMeans(2, 4)
		s := core.MustNewScheduler[float64, []float64](app, core.SchedArgs{
			NumThreads: threads, ChunkSize: 4, NumIters: 10, Extra: init,
		})
		if err := s.Run(in, nil); err != nil {
			t.Fatal(err)
		}
		return app.Centroids(s.CombinationMap())
	}
	want := run(1)
	for _, nt := range []int{2, 4} {
		got := run(nt)
		for k := range want {
			for d := range want[k] {
				if !almostEqual(got[k][d], want[k][d], 1e-9) {
					t.Fatalf("nt=%d centroid %d dim %d: %v vs %v", nt, k, d, got[k][d], want[k][d])
				}
			}
		}
	}
}

func TestKMeansConvertOutputsCentroids(t *testing.T) {
	in := blobs(50, [][]float64{{1, 2}, {8, 9}})
	app := NewKMeans(2, 2)
	s := core.MustNewScheduler[float64, []float64](app, core.SchedArgs{
		NumThreads: 1, ChunkSize: 2, NumIters: 5, Extra: []float64{0, 0, 10, 10},
	})
	out := make([][]float64, 2)
	if err := s.Run(in, out); err != nil {
		t.Fatal(err)
	}
	for k, c := range out {
		if len(c) != 2 {
			t.Fatalf("centroid %d: %v", k, c)
		}
	}
}

func TestKMeansBadExtraPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad extra data did not panic")
		}
	}()
	app := NewKMeans(2, 2)
	app.ProcessExtraData([]float64{1}, core.CombMap{})
}

// --- window applications ---

func windowInput(n int) []float64 {
	return synth(n, func(i int) float64 { return math.Sin(float64(i)/9)*5 + float64(i%7) })
}

func naiveMovingAverage(in []float64, w int) []float64 {
	h := w / 2
	out := make([]float64, len(in))
	for i := range in {
		lo, hi := max(i-h, 0), min(i+h, len(in)-1)
		s := 0.0
		for j := lo; j <= hi; j++ {
			s += in[j]
		}
		out[i] = s / float64(hi-lo+1)
	}
	return out
}

func TestMovingAverageMatchesNaive(t *testing.T) {
	in := windowInput(500)
	for _, trigger := range []bool{false, true} {
		app := NewMovingAverage(7, len(in), 0, trigger)
		s := core.MustNewScheduler[float64, float64](app, args(3, 1, 1))
		out := make([]float64, len(in))
		if err := s.Run2(in, out); err != nil {
			t.Fatal(err)
		}
		want := naiveMovingAverage(in, 7)
		for i := range want {
			if !almostEqual(out[i], want[i], 1e-9) {
				t.Fatalf("trigger=%v: out[%d] = %v, want %v", trigger, i, out[i], want[i])
			}
		}
	}
}

func TestMovingAverageTriggerReducesFootprint(t *testing.T) {
	in := windowInput(20000)
	run := func(trigger bool) *core.Stats {
		app := NewMovingAverage(25, len(in), 0, trigger)
		s := core.MustNewScheduler[float64, float64](app, args(2, 1, 1))
		out := make([]float64, len(in))
		if err := s.Run2(in, out); err != nil {
			t.Fatal(err)
		}
		return s.Stats()
	}
	off := run(false)
	on := run(true)
	if on.EmittedEarly == 0 {
		t.Fatal("trigger emitted nothing")
	}
	if on.MaxLiveRedObjs*100 > off.MaxLiveRedObjs {
		t.Fatalf("live objects: trigger %d vs plain %d — want >=100x reduction",
			on.MaxLiveRedObjs, off.MaxLiveRedObjs)
	}
}

func naiveMovingMedian(in []float64, w int) []float64 {
	h := w / 2
	out := make([]float64, len(in))
	for i := range in {
		lo, hi := max(i-h, 0), min(i+h, len(in)-1)
		out[i] = median(in[lo : hi+1])
	}
	return out
}

func TestMovingMedianMatchesNaive(t *testing.T) {
	in := windowInput(400)
	for _, trigger := range []bool{false, true} {
		app := NewMovingMedian(11, len(in), 0, trigger)
		s := core.MustNewScheduler[float64, float64](app, args(2, 1, 1))
		out := make([]float64, len(in))
		if err := s.Run2(in, out); err != nil {
			t.Fatal(err)
		}
		want := naiveMovingMedian(in, 11)
		for i := range want {
			if !almostEqual(out[i], want[i], 1e-9) {
				t.Fatalf("trigger=%v: median[%d] = %v, want %v", trigger, i, out[i], want[i])
			}
		}
	}
}

func TestMedianHelper(t *testing.T) {
	for _, tc := range []struct {
		in   []float64
		want float64
	}{
		{[]float64{3}, 3},
		{[]float64{3, 1}, 2},
		{[]float64{5, 1, 3}, 3},
		{[]float64{4, 2, 1, 3}, 2.5},
	} {
		if got := median(tc.in); !almostEqual(got, tc.want, 1e-12) {
			t.Errorf("median(%v) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestKernelDensityMatchesNaive(t *testing.T) {
	in := windowInput(300)
	const w = 25
	app := NewKernelDensity(w, len(in), 0, false, 0)
	s := core.MustNewScheduler[float64, float64](app, args(2, 1, 1))
	out := make([]float64, len(in))
	if err := s.Run2(in, out); err != nil {
		t.Fatal(err)
	}
	h := w / 2
	sigma := float64(w) / 5
	for i := range in {
		lo, hi := max(i-h, 0), min(i+h, len(in)-1)
		ws, ww := 0.0, 0.0
		for j := lo; j <= hi; j++ {
			z := float64(j-i) / sigma
			wt := math.Exp(-z * z / 2)
			ws += wt * in[j]
			ww += wt
		}
		if !almostEqual(out[i], ws/ww, 1e-9) {
			t.Fatalf("kde[%d] = %v, want %v", i, out[i], ws/ww)
		}
	}
}

func TestKernelDensityTriggerEquivalence(t *testing.T) {
	in := windowInput(2000)
	run := func(trigger bool) []float64 {
		app := NewKernelDensity(25, len(in), 0, trigger, 0)
		s := core.MustNewScheduler[float64, float64](app, args(2, 1, 1))
		out := make([]float64, len(in))
		if err := s.Run2(in, out); err != nil {
			t.Fatal(err)
		}
		return out
	}
	off, on := run(false), run(true)
	for i := range off {
		if !almostEqual(off[i], on[i], 1e-9) {
			t.Fatalf("trigger changed kde at %d: %v vs %v", i, off[i], on[i])
		}
	}
}

func TestSavGolCoeffsKnownValues(t *testing.T) {
	// Classic quadratic, window 5: (-3, 12, 17, 12, -3)/35.
	got := savgolCoeffs(2, 2)
	want := []float64{-3.0 / 35, 12.0 / 35, 17.0 / 35, 12.0 / 35, -3.0 / 35}
	for i := range want {
		if !almostEqual(got[i], want[i], 1e-9) {
			t.Fatalf("coeff %d = %v, want %v", i, got[i], want[i])
		}
	}
	// Coefficients of any smoothing filter sum to 1.
	for _, tc := range []struct{ half, order int }{{3, 2}, {7, 3}, {12, 4}} {
		cs := savgolCoeffs(tc.half, tc.order)
		sum := 0.0
		for _, c := range cs {
			sum += c
		}
		if !almostEqual(sum, 1, 1e-9) {
			t.Errorf("half=%d order=%d: coefficient sum %v", tc.half, tc.order, sum)
		}
	}
}

func TestSavGolPreservesPolynomials(t *testing.T) {
	// A Savitzky-Golay filter of order p reproduces polynomials of degree
	// <= p exactly on interior points.
	n := 100
	in := synth(n, func(i int) float64 { x := float64(i); return 2 + 3*x + 0.5*x*x })
	app := NewSavitzkyGolay(7, 2, n, 0, false)
	s := core.MustNewScheduler[float64, float64](app, args(2, 1, 1))
	out := make([]float64, n)
	if err := s.Run2(in, out); err != nil {
		t.Fatal(err)
	}
	for i := 3; i < n-3; i++ {
		if !almostEqual(out[i], in[i], 1e-6) {
			t.Fatalf("savgol[%d] = %v, want %v", i, out[i], in[i])
		}
	}
}

func TestSavGolSmoothsNoise(t *testing.T) {
	n := 200
	noisy := synth(n, func(i int) float64 {
		return math.Sin(float64(i)/20) + 0.3*math.Sin(float64(i*7919))
	})
	smooth := synth(n, func(i int) float64 { return math.Sin(float64(i) / 20) })
	app := NewSavitzkyGolay(15, 2, n, 0, true)
	s := core.MustNewScheduler[float64, float64](app, args(2, 1, 1))
	out := make([]float64, n)
	if err := s.Run2(noisy, out); err != nil {
		t.Fatal(err)
	}
	// Residual to the clean signal must shrink vs the noisy input.
	var noisyErr, filteredErr float64
	for i := 10; i < n-10; i++ {
		noisyErr += math.Abs(noisy[i] - smooth[i])
		filteredErr += math.Abs(out[i] - smooth[i])
	}
	if filteredErr >= noisyErr/2 {
		t.Fatalf("filter did not smooth: noisy %v filtered %v", noisyErr, filteredErr)
	}
}

func TestSavGolInvalidOrder(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("order >= size accepted")
		}
	}()
	NewSavitzkyGolay(5, 5, 100, 0, false)
}

func TestWindowDistributedMatchesSingleNode(t *testing.T) {
	// Moving average across 4 ranks, each owning a contiguous slice, must
	// reproduce the single-node result including cross-rank windows.
	const n = 400
	in := windowInput(n)
	want := naiveMovingAverage(in, 9)

	const ranks = 4
	per := n / ranks
	comms := mpi.NewWorld(ranks)
	results := make([][]float64, ranks)
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer comms[r].Close()
			app := NewMovingAverage(9, n, r*per, true)
			s := core.MustNewScheduler[float64, float64](app, core.SchedArgs{
				NumThreads: 2, ChunkSize: 1, NumIters: 1, Comm: comms[r], OutBase: r * per,
			})
			out := make([]float64, per)
			if err := s.Run2(in[r*per:(r+1)*per], out); err != nil {
				t.Errorf("rank %d: %v", r, err)
				return
			}
			results[r] = out
		}()
	}
	wg.Wait()
	for r := 0; r < ranks; r++ {
		for i := 0; i < per; i++ {
			if !almostEqual(results[r][i], want[r*per+i], 1e-9) {
				t.Fatalf("rank %d out[%d] = %v, want %v", r, i, results[r][i], want[r*per+i])
			}
		}
	}
}

func TestWindowValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { NewMovingAverage(4, 10, 0, false) }, // even window
		func() { NewMovingAverage(7, 0, 0, false) },  // empty array
		func() { NewGridAgg(0, 0) },
		func() { NewHistogram(5, 5, 10) },
		func() { NewMutualInfo(0, 1, 0, 0, 1, 10) },
		func() { NewLogReg(0, 0.1) },
		func() { NewKMeans(0, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid construction did not panic")
				}
			}()
			fn()
		}()
	}
}

// --- reduction object codecs ---

func TestRedObjCodecs(t *testing.T) {
	objs := []core.RedObj{
		&CountObj{Count: 42},
		&SumCountObj{Sum: 3.5, Count: 7, Expected: 25},
		&WeightedObj{WSum: -1.25, Weight: 0.5, Count: 3, Expected: 9},
		&ValuesObj{Values: []float64{1, 2, 3.5}, Expected: 11},
		&ClusterObj{Centroid: []float64{1, 2}, Sum: []float64{3, 4}, Size: 5},
		&GradObj{Weights: []float64{0.1, -0.2}, Grad: []float64{1, 2}, Count: 9},
	}
	for _, obj := range objs {
		buf, err := obj.MarshalBinary()
		if err != nil {
			t.Fatalf("%T marshal: %v", obj, err)
		}
		clone := obj.Clone()
		if err := clone.UnmarshalBinary(buf); err != nil {
			t.Fatalf("%T unmarshal: %v", obj, err)
		}
		buf2, err := clone.MarshalBinary()
		if err != nil {
			t.Fatalf("%T re-marshal: %v", obj, err)
		}
		if string(buf) != string(buf2) {
			t.Fatalf("%T roundtrip mismatch", obj)
		}
		if err := clone.UnmarshalBinary(append(buf, 0)); err == nil {
			t.Errorf("%T accepted trailing bytes", obj)
		}
		if err := clone.UnmarshalBinary(buf[:len(buf)-1]); err == nil {
			t.Errorf("%T accepted truncation", obj)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	o := &ClusterObj{Centroid: []float64{1}, Sum: []float64{2}, Size: 3}
	c := o.Clone().(*ClusterObj)
	c.Centroid[0] = 99
	c.Sum[0] = 99
	if o.Centroid[0] != 1 || o.Sum[0] != 2 {
		t.Fatal("ClusterObj.Clone shares slices")
	}
	v := &ValuesObj{Values: []float64{1, 2}}
	cv := v.Clone().(*ValuesObj)
	cv.Values[0] = 99
	if v.Values[0] != 1 {
		t.Fatal("ValuesObj.Clone shares slices")
	}
	g := &GradObj{Weights: []float64{1}, Grad: []float64{2}}
	cg := g.Clone().(*GradObj)
	cg.Weights[0], cg.Grad[0] = 99, 99
	if g.Weights[0] != 1 || g.Grad[0] != 2 {
		t.Fatal("GradObj.Clone shares slices")
	}
}

func TestMatrixInverse(t *testing.T) {
	m := [][]float64{{4, 7}, {2, 6}}
	inv := invertMatrix(m)
	want := [][]float64{{0.6, -0.7}, {-0.2, 0.4}}
	for i := range want {
		for j := range want[i] {
			if !almostEqual(inv[i][j], want[i][j], 1e-9) {
				t.Fatalf("inv[%d][%d] = %v, want %v", i, j, inv[i][j], want[i][j])
			}
		}
	}
}

func TestMatrixInverseProperty(t *testing.T) {
	// inv(M) * M == I for random diagonally-dominant matrices.
	f := func(seed uint32) bool {
		n := int(seed%3) + 2
		m := make([][]float64, n)
		x := float64(seed%1000) / 500
		for i := range m {
			m[i] = make([]float64, n)
			for j := range m[i] {
				m[i][j] = math.Sin(float64(i*7+j*13) + x)
			}
			m[i][i] += float64(n) + 1 // diagonally dominant => invertible
		}
		inv := invertMatrix(m)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				s := 0.0
				for k := 0; k < n; k++ {
					s += inv[i][k] * m[k][j]
				}
				want := 0.0
				if i == j {
					want = 1
				}
				if !almostEqual(s, want, 1e-6) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
