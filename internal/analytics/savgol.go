package analytics

import (
	"fmt"
	"math"

	"github.com/scipioneer/smart/internal/chunk"
	"github.com/scipioneer/smart/internal/core"
)

// SavitzkyGolay is the smoothing-filter application of the paper's
// window-based class: a least-squares polynomial smoother expressed as a
// fixed convolution over the window (Schafer, "What is a Savitzky-Golay
// filter?"). The convolution coefficients are derived at construction by
// solving the normal equations of the polynomial fit.
type SavitzkyGolay struct {
	Window
	// Order is the fitted polynomial order.
	Order int
	// coeffs[j+half] is the weight of the contribution at offset j.
	coeffs []float64
}

// NewSavitzkyGolay creates a filter of the given window size and polynomial
// order (order < size required).
func NewSavitzkyGolay(size, order, total, base int, trigger bool) *SavitzkyGolay {
	if order < 1 || order >= size {
		panic("analytics: Savitzky-Golay order must be in [1, size)")
	}
	s := &SavitzkyGolay{Window: newWindow(size, total, base, trigger), Order: order}
	s.coeffs = savgolCoeffs(size/2, order)
	return s
}

// savgolCoeffs computes the smoothing (0th-derivative) convolution weights
// for a window of 2*half+1 points and the given polynomial order: the first
// row of (AᵀA)⁻¹Aᵀ with A[j][p] = jᵖ.
func savgolCoeffs(half, order int) []float64 {
	n := order + 1
	// Normal matrix N[p][q] = Σ_j j^(p+q).
	N := make([][]float64, n)
	for p := range N {
		N[p] = make([]float64, n)
		for q := range N[p] {
			s := 0.0
			for j := -half; j <= half; j++ {
				s += math.Pow(float64(j), float64(p+q))
			}
			N[p][q] = s
		}
	}
	inv := invertMatrix(N)
	coeffs := make([]float64, 2*half+1)
	for j := -half; j <= half; j++ {
		w := 0.0
		for q := 0; q < n; q++ {
			w += inv[0][q] * math.Pow(float64(j), float64(q))
		}
		coeffs[j+half] = w
	}
	return coeffs
}

// invertMatrix inverts a small dense matrix by Gauss-Jordan elimination with
// partial pivoting. It panics on a singular matrix (cannot happen for
// Savitzky-Golay normal matrices with order < window size).
func invertMatrix(m [][]float64) [][]float64 {
	n := len(m)
	// Augmented [m | I].
	a := make([][]float64, n)
	for i := range a {
		a[i] = make([]float64, 2*n)
		copy(a[i], m[i])
		a[i][n+i] = 1
	}
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(a[pivot][col]) < 1e-12 {
			panic(fmt.Sprintf("analytics: singular normal matrix at column %d", col))
		}
		a[col], a[pivot] = a[pivot], a[col]
		p := a[col][col]
		for j := range a[col] {
			a[col][j] /= p
		}
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := a[r][col]
			if f == 0 {
				continue
			}
			for j := range a[r] {
				a[r][j] -= f * a[col][j]
			}
		}
	}
	inv := make([][]float64, n)
	for i := range inv {
		inv[i] = a[i][n:]
	}
	return inv
}

// Coeffs returns a copy of the convolution weights, offset-indexed from
// -half at position 0.
func (s *SavitzkyGolay) Coeffs() []float64 { return append([]float64(nil), s.coeffs...) }

// NewRedObj implements core.Analytics.
func (s *SavitzkyGolay) NewRedObj() core.RedObj { return &WeightedObj{} }

// GenKey implements core.Analytics; window applications use GenKeys.
func (s *SavitzkyGolay) GenKey(chunk.Chunk, []float64, core.CombMap) int {
	panic("analytics: Savitzky-Golay requires Run2 (gen_keys)")
}

// AccumulateKeyed implements core.PositionalAccumulator.
func (s *SavitzkyGolay) AccumulateKeyed(key int, c chunk.Chunk, data []float64, obj core.RedObj) {
	o := obj.(*WeightedObj)
	w := s.coeffs[s.Base+c.Start-key+s.half()]
	o.WSum += w * data[c.Start]
	o.Weight += w
	o.Count++
	o.Expected = s.expected(key)
}

// Accumulate implements core.Analytics; unreachable because the runtime
// prefers AccumulateKeyed, but required by the interface.
func (s *SavitzkyGolay) Accumulate(chunk.Chunk, []float64, core.RedObj) {
	panic("analytics: Savitzky-Golay requires positional accumulation")
}

// Merge implements core.Analytics.
func (s *SavitzkyGolay) Merge(src, dst core.RedObj) {
	a, d := src.(*WeightedObj), dst.(*WeightedObj)
	d.WSum += a.WSum
	d.Weight += a.Weight
	d.Count += a.Count
	if a.Expected > d.Expected {
		d.Expected = a.Expected
	}
}

// Convert implements core.Converter. Interior windows have ΣWeight = 1, so
// the output is the plain convolution; truncated boundary windows are
// renormalized by the weight actually present.
func (s *SavitzkyGolay) Convert(obj core.RedObj, out *float64) {
	o := obj.(*WeightedObj)
	if math.Abs(o.Weight) > 1e-9 {
		*out = o.WSum / o.Weight
	} else {
		*out = o.WSum
	}
}
