package analytics

import (
	"github.com/scipioneer/smart/internal/chunk"
	"github.com/scipioneer/smart/internal/core"
)

// KMeans is the clustering-analytics application of paper Listing 4:
// multi-dimensional k-means whose centroids persist in the combination map
// across iterations (and across time-steps, tracking centroid movement).
// A record is one point of Dims coordinates, so ChunkSize must be Dims. The
// extra data is the flat initial centroid matrix ([]float64 of length
// K*Dims).
type KMeans struct {
	// K is the number of clusters.
	K int
	// Dims is the point dimensionality.
	Dims int
	// centroids caches the current centroid matrix between the combination
	// map updates (ProcessExtraData, PostCombine) so the hot GenKey path
	// avoids per-point map lookups. Both writers run in the scheduler's
	// single-threaded phases.
	centroids []float64
}

// NewKMeans creates the application; it panics on non-positive parameters.
func NewKMeans(k, dims int) *KMeans {
	if k <= 0 || dims <= 0 {
		panic("analytics: invalid k-means parameters")
	}
	return &KMeans{K: k, Dims: dims}
}

// NewRedObj implements core.Analytics.
func (km *KMeans) NewRedObj() core.RedObj {
	return &ClusterObj{Centroid: make([]float64, km.Dims), Sum: make([]float64, km.Dims)}
}

// GenKey implements core.Analytics: the id of the nearest centroid, read
// from the cached centroid matrix (refreshed whenever the combination map
// changes).
func (km *KMeans) GenKey(c chunk.Chunk, data []float64, com core.CombMap) int {
	cs := km.centroids
	if cs == nil {
		cs = km.snapshot(com)
	}
	p := data[c.Start : c.Start+km.Dims]
	best, bestD := 0, -1.0
	for k := 0; k < km.K; k++ {
		d := 0.0
		row := cs[k*km.Dims : (k+1)*km.Dims]
		for i, v := range p {
			diff := v - row[i]
			d += diff * diff
		}
		if bestD < 0 || d < bestD {
			best, bestD = k, d
		}
	}
	return best
}

// snapshot flattens the combination map's centroids.
func (km *KMeans) snapshot(com core.CombMap) []float64 {
	cs := make([]float64, km.K*km.Dims)
	for k := 0; k < km.K; k++ {
		copy(cs[k*km.Dims:(k+1)*km.Dims], com[k].(*ClusterObj).Centroid)
	}
	return cs
}

// Accumulate implements core.Analytics: vector-add the point onto the
// cluster's Sum and bump its Size.
func (km *KMeans) Accumulate(c chunk.Chunk, data []float64, obj core.RedObj) {
	o := obj.(*ClusterObj)
	for i := 0; i < km.Dims; i++ {
		o.Sum[i] += data[c.Start+i]
	}
	o.Size++
}

// Merge implements core.Analytics.
func (km *KMeans) Merge(src, dst core.RedObj) {
	s, d := src.(*ClusterObj), dst.(*ClusterObj)
	for i := range d.Sum {
		d.Sum[i] += s.Sum[i]
	}
	d.Size += s.Size
}

// ProcessExtraData implements core.ExtraDataProcessor: load the initial
// centroids into an empty combination map.
func (km *KMeans) ProcessExtraData(extra any, com core.CombMap) {
	if len(com) > 0 {
		// Already initialized (repeated Runs): just refresh the cache.
		km.centroids = km.snapshot(com)
		return
	}
	flat, ok := extra.([]float64)
	if !ok || len(flat) != km.K*km.Dims {
		panic("analytics: k-means extra data must be a []float64 of length K*Dims")
	}
	for k := 0; k < km.K; k++ {
		com[k] = NewClusterObj(flat[k*km.Dims : (k+1)*km.Dims])
	}
	km.centroids = km.snapshot(com)
}

// PostCombine implements core.PostCombiner: update every centroid for the
// next iteration (ClusterObj.Update resets the accumulators).
func (km *KMeans) PostCombine(com core.CombMap) {
	for _, obj := range com {
		obj.(*ClusterObj).Update()
	}
	km.centroids = km.snapshot(com)
}

// Convert implements core.Converter: the output slot receives a copy of the
// centroid coordinates.
func (km *KMeans) Convert(obj core.RedObj, out *[]float64) {
	o := obj.(*ClusterObj)
	*out = append((*out)[:0], o.Centroid...)
}

// Centroids extracts the centroid matrix from a combination map, indexed by
// cluster id.
func (km *KMeans) Centroids(com core.CombMap) [][]float64 {
	out := make([][]float64, km.K)
	for k := 0; k < km.K; k++ {
		if obj, ok := com[k].(*ClusterObj); ok {
			out[k] = append([]float64(nil), obj.Centroid...)
		}
	}
	return out
}
