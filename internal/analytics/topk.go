package analytics

import (
	"sort"

	"github.com/scipioneer/smart/internal/chunk"
	"github.com/scipioneer/smart/internal/core"
)

// TopK extends the feature-analytics class: track the K largest values in
// the field together with their global positions (hotspot detection — the
// in-situ feature-extraction use case of the paper's Section 2.2). The
// reduction object is a bounded min-heap, so the analytics state is Θ(K)
// regardless of the data size.
type TopK struct {
	// K is the number of extremes to keep.
	K int
	// Base is the global index of this process's first element.
	Base int
}

// NewTopK creates the application; it panics on a non-positive K.
func NewTopK(k, base int) *TopK {
	if k <= 0 {
		panic("analytics: K must be positive")
	}
	return &TopK{K: k, Base: base}
}

// Extreme is one tracked value with its global position.
type Extreme struct {
	Pos int64
	Val float64
}

// TopKObj is the bounded min-heap of the K largest values seen.
type TopKObj struct {
	K     int
	Items []Extreme // min-heap by Val
}

// Clone implements core.RedObj.
func (o *TopKObj) Clone() core.RedObj {
	return &TopKObj{K: o.K, Items: append([]Extreme(nil), o.Items...)}
}

// AppendBinary implements core.Appender.
func (o *TopKObj) AppendBinary(b []byte) ([]byte, error) {
	b = appendI64(b, int64(o.K))
	b = appendI64(b, int64(len(o.Items)))
	for _, it := range o.Items {
		b = appendI64(b, it.Pos)
		b = appendF64(b, it.Val)
	}
	return b, nil
}

// MarshalBinary implements core.RedObj.
func (o *TopKObj) MarshalBinary() ([]byte, error) {
	return o.AppendBinary(make([]byte, 0, 16+16*len(o.Items)))
}

// UnmarshalBinary implements core.RedObj.
func (o *TopKObj) UnmarshalBinary(b []byte) error {
	var k, n int64
	var err error
	if k, b, err = readI64(b); err != nil {
		return err
	}
	if n, b, err = readI64(b); err != nil {
		return err
	}
	o.K = int(k)
	o.Items = make([]Extreme, n)
	for i := range o.Items {
		if o.Items[i].Pos, b, err = readI64(b); err != nil {
			return err
		}
		if o.Items[i].Val, b, err = readF64(b); err != nil {
			return err
		}
	}
	if len(b) != 0 {
		return errTrailing("TopKObj")
	}
	return nil
}

// SizeBytes implements core.Sized.
func (o *TopKObj) SizeBytes() int { return 32 + 16*cap(o.Items) }

// heap helpers: Items is a min-heap ordered by Val so the smallest tracked
// value is evicted first.

func (o *TopKObj) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if o.Items[parent].Val <= o.Items[i].Val {
			return
		}
		o.Items[parent], o.Items[i] = o.Items[i], o.Items[parent]
		i = parent
	}
}

func (o *TopKObj) siftDown(i int) {
	n := len(o.Items)
	for {
		left, right := 2*i+1, 2*i+2
		smallest := i
		if left < n && o.Items[left].Val < o.Items[smallest].Val {
			smallest = left
		}
		if right < n && o.Items[right].Val < o.Items[smallest].Val {
			smallest = right
		}
		if smallest == i {
			return
		}
		o.Items[i], o.Items[smallest] = o.Items[smallest], o.Items[i]
		i = smallest
	}
}

// Push offers a value; the heap keeps only the K largest.
func (o *TopKObj) Push(pos int64, val float64) {
	if len(o.Items) < o.K {
		o.Items = append(o.Items, Extreme{Pos: pos, Val: val})
		o.siftUp(len(o.Items) - 1)
		return
	}
	if val <= o.Items[0].Val {
		return
	}
	o.Items[0] = Extreme{Pos: pos, Val: val}
	o.siftDown(0)
}

// Sorted returns the tracked extremes in descending value order.
func (o *TopKObj) Sorted() []Extreme {
	out := append([]Extreme(nil), o.Items...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Val != out[j].Val {
			return out[i].Val > out[j].Val
		}
		return out[i].Pos < out[j].Pos
	})
	return out
}

// NewRedObj implements core.Analytics.
func (t *TopK) NewRedObj() core.RedObj { return &TopKObj{K: t.K} }

// GenKey implements core.Analytics: a single global key.
func (t *TopK) GenKey(chunk.Chunk, []float64, core.CombMap) int { return 0 }

// Accumulate implements core.Analytics.
func (t *TopK) Accumulate(c chunk.Chunk, data []float64, obj core.RedObj) {
	obj.(*TopKObj).Push(int64(t.Base+c.Start), data[c.Start])
}

// Merge implements core.Analytics: offer every tracked item to the
// destination heap.
func (t *TopK) Merge(src, dst core.RedObj) {
	s, d := src.(*TopKObj), dst.(*TopKObj)
	if d.K == 0 {
		d.K = t.K
	}
	for _, it := range s.Items {
		d.Push(it.Pos, it.Val)
	}
}

// Extremes extracts the final descending-ordered result from a combination
// map.
func (t *TopK) Extremes(com core.CombMap) []Extreme {
	obj, ok := com[0].(*TopKObj)
	if !ok {
		return nil
	}
	return obj.Sorted()
}
