package analytics

import (
	"bytes"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"github.com/scipioneer/smart/internal/codec"
	"github.com/scipioneer/smart/internal/core"
	"github.com/scipioneer/smart/internal/mpi"
)

// runAndEncode builds a scheduler for app with the given shard count, runs
// it over in, and returns the encoded combination map.
func runAndEncode[Out any](t *testing.T, app core.Analytics[float64, Out],
	a core.SchedArgs, in []float64, outLen int, multi bool) []byte {

	t.Helper()
	s, err := core.NewScheduler[float64, Out](app, a)
	if err != nil {
		t.Fatal(err)
	}
	var out []Out
	if outLen > 0 {
		out = make([]Out, outLen)
	}
	if multi {
		err = s.Run2(in, out)
	} else {
		err = s.Run(in, out)
	}
	if err != nil {
		t.Fatal(err)
	}
	buf, err := s.EncodeCombinationMap()
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

// TestShardedCombineByteIdentical is the cross-application property test for
// the sharded combination pipeline: for each of the paper's nine
// applications, running with one combine shard (the serial reference) and
// with the default shard-parallel pipeline must produce byte-identical
// EncodeCombinationMap output.
func TestShardedCombineByteIdentical(t *testing.T) {
	const n = 6000
	vals := synth(n, func(i int) float64 { return float64((i*37)%200)/10 - 10 })
	// Labeled records for logistic regression: 4 features + a 0/1 label.
	recs := synth(n, func(i int) float64 {
		if i%5 == 4 {
			return float64(i % 2)
		}
		return float64((i*13)%100)/50 - 1
	})

	cases := []struct {
		name   string
		encode func(t *testing.T, shards int) []byte
	}{
		{"histogram", func(t *testing.T, shards int) []byte {
			return runAndEncode[int64](t, NewHistogram(-10, 10, 64),
				core.SchedArgs{NumThreads: 4, ChunkSize: 1, CombineShards: shards}, vals, 64, false)
		}},
		{"gridagg", func(t *testing.T, shards int) []byte {
			return runAndEncode[float64](t, NewGridAgg(100, 0),
				core.SchedArgs{NumThreads: 4, ChunkSize: 1, CombineShards: shards}, vals, 60, false)
		}},
		{"moments", func(t *testing.T, shards int) []byte {
			return runAndEncode[float64](t, NewMoments(100, 0),
				core.SchedArgs{NumThreads: 4, ChunkSize: 1, CombineShards: shards}, vals, 60, false)
		}},
		{"mutualinfo", func(t *testing.T, shards int) []byte {
			return runAndEncode[int64](t, NewMutualInfo(-10, 10, 16, -10, 10, 16),
				core.SchedArgs{NumThreads: 4, ChunkSize: 2, CombineShards: shards}, vals, 0, false)
		}},
		{"logreg", func(t *testing.T, shards int) []byte {
			return runAndEncode[float64](t, NewLogReg(4, 0.1),
				core.SchedArgs{NumThreads: 4, ChunkSize: 5, NumIters: 3, CombineShards: shards}, recs, 0, false)
		}},
		{"kmeans", func(t *testing.T, shards int) []byte {
			return runAndEncode[[]float64](t, NewKMeans(4, 4),
				core.SchedArgs{NumThreads: 4, ChunkSize: 4, NumIters: 3, CombineShards: shards,
					Extra: initCentroidsTest(4, 4)}, vals, 0, false)
		}},
		{"movingavg", func(t *testing.T, shards int) []byte {
			return runAndEncode[float64](t, NewMovingAverage(25, n, 0, false),
				core.SchedArgs{NumThreads: 4, ChunkSize: 1, CombineShards: shards}, vals, n, true)
		}},
		{"movingmedian", func(t *testing.T, shards int) []byte {
			return runAndEncode[float64](t, NewMovingMedian(25, n, 0, false),
				core.SchedArgs{NumThreads: 4, ChunkSize: 1, CombineShards: shards}, vals, n, true)
		}},
		{"kde", func(t *testing.T, shards int) []byte {
			return runAndEncode[float64](t, NewKernelDensity(25, n, 0, false, 1.5),
				core.SchedArgs{NumThreads: 4, ChunkSize: 1, CombineShards: shards}, vals, n, true)
		}},
		{"savgol", func(t *testing.T, shards int) []byte {
			return runAndEncode[float64](t, NewSavitzkyGolay(25, 2, n, 0, false),
				core.SchedArgs{NumThreads: 4, ChunkSize: 1, CombineShards: shards}, vals, n, true)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ref := tc.encode(t, 1)
			if len(ref) <= 4 {
				t.Fatal("reference combination map is empty — the case tests nothing")
			}
			for _, shards := range []int{0, 3, 8} {
				if got := tc.encode(t, shards); !bytes.Equal(got, ref) {
					t.Errorf("CombineShards=%d: encoding differs from serial reference (%d vs %d bytes)",
						shards, len(got), len(ref))
				}
			}
		})
	}
}

// initCentroidsTest spreads k deterministic centroids across [-1, 1].
func initCentroidsTest(k, dims int) []float64 {
	flat := make([]float64, k*dims)
	for c := 0; c < k; c++ {
		for d := 0; d < dims; d++ {
			flat[c*dims+d] = -1 + 2*float64(c)/float64(k)
		}
	}
	return flat
}

// TestGlobalCombineModesAgree runs a 4-rank histogram three ways — flat
// gather ablation, single-segment streamed tree, and the default sharded
// streamed tree — and demands identical outputs and identical encoded global
// maps on every rank.
func TestGlobalCombineModesAgree(t *testing.T) {
	const ranks = 4
	const n = 4000
	full := synth(n, func(i int) float64 { return float64((i*31)%200)/10 - 10 })

	run := func(flat bool, shards int) ([][]int64, [][]byte) {
		comms := mpi.NewWorld(ranks)
		outs := make([][]int64, ranks)
		encs := make([][]byte, ranks)
		per := n / ranks
		var wg sync.WaitGroup
		for r := 0; r < ranks; r++ {
			r := r
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer comms[r].Close()
				s, err := core.NewScheduler[float64, int64](NewHistogram(-10, 10, 64), core.SchedArgs{
					NumThreads: 2, ChunkSize: 1, Comm: comms[r],
					FlatGlobalCombine: flat, CombineShards: shards,
				})
				if err != nil {
					t.Error(err)
					return
				}
				out := make([]int64, 64)
				if err := s.Run(full[r*per:(r+1)*per], out); err != nil {
					t.Errorf("rank %d: %v", r, err)
					return
				}
				outs[r] = out
				if encs[r], err = s.EncodeCombinationMap(); err != nil {
					t.Errorf("rank %d: %v", r, err)
				}
			}()
		}
		wg.Wait()
		return outs, encs
	}

	refOuts, refEncs := run(true, 1) // flat ablation is the baseline
	modes := []struct {
		name   string
		flat   bool
		shards int
	}{
		{"tree-one-shard", false, 1},
		{"tree-sharded", false, 0},
		{"tree-odd-shards", false, 5},
	}
	for _, m := range modes {
		outs, encs := run(m.flat, m.shards)
		for r := 0; r < ranks; r++ {
			if !bytes.Equal(encs[r], refEncs[0]) {
				t.Errorf("%s: rank %d encoded map differs from flat baseline", m.name, r)
			}
			for b := range refOuts[0] {
				if outs[r][b] != refOuts[0][b] {
					t.Errorf("%s: rank %d bucket %d = %d, want %d", m.name, r, b, outs[r][b], refOuts[0][b])
				}
			}
		}
	}
}

// TestCheckpointFixturesRoundTrip decodes checkpoints written by the
// pre-shard serializer and re-encodes them bit-for-bit, pinning the wire and
// checkpoint format across the pipeline refactor. Every fixture round-trips
// through each reduction-store implementation: a restored scheduler's next
// checkpoint must be byte-identical no matter which store backs it. The .ck
// fixtures are the raw SMARTCK1 format; histogram_seed_block.ck2 is the same
// histogram state in the SMARTCK2 block-codec format.
func TestCheckpointFixturesRoundTrip(t *testing.T) {
	cases := []struct {
		fixture string
		load    func(impl string) (func(string) error, func(string) error)
	}{
		{"histogram_seed.ck", func(impl string) (func(string) error, func(string) error) {
			s := core.MustNewScheduler[float64, int64](NewHistogram(-1, 1, 64),
				core.SchedArgs{NumThreads: 4, ChunkSize: 1, MapImpl: impl})
			return s.ReadCheckpoint, s.WriteCheckpoint
		}},
		{"kmeans_seed.ck", func(impl string) (func(string) error, func(string) error) {
			s := core.MustNewScheduler[float64, []float64](NewKMeans(4, 4),
				core.SchedArgs{NumThreads: 4, ChunkSize: 4, MapImpl: impl})
			return s.ReadCheckpoint, s.WriteCheckpoint
		}},
		{"moments_seed.ck", func(impl string) (func(string) error, func(string) error) {
			s := core.MustNewScheduler[float64, float64](NewMoments(100, 0),
				core.SchedArgs{NumThreads: 4, ChunkSize: 1, MapImpl: impl})
			return s.ReadCheckpoint, s.WriteCheckpoint
		}},
		{"histogram_seed_block.ck2", func(impl string) (func(string) error, func(string) error) {
			s := core.MustNewScheduler[float64, int64](NewHistogram(-1, 1, 64),
				core.SchedArgs{NumThreads: 4, ChunkSize: 1, MapImpl: impl})
			return s.ReadCheckpoint, func(path string) error {
				return s.WriteCheckpointEnc(path, codec.Block)
			}
		}},
	}
	for _, tc := range cases {
		for _, impl := range []string{core.MapGo, core.MapArena} {
			t.Run(tc.fixture+"/"+impl, func(t *testing.T) {
				src := filepath.Join("testdata", tc.fixture)
				want, err := os.ReadFile(src)
				if err != nil {
					t.Fatal(err)
				}
				read, write := tc.load(impl)
				if err := read(src); err != nil {
					t.Fatalf("committed fixture no longer decodes: %v", err)
				}
				dst := filepath.Join(t.TempDir(), "roundtrip.ck")
				if err := write(dst); err != nil {
					t.Fatal(err)
				}
				got, err := os.ReadFile(dst)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("round trip not bit-identical: %d bytes in, %d bytes out", len(want), len(got))
				}
			})
		}
	}
}

// TestAppendBinaryMatchesMarshal pins the core.Appender contract for every
// shipped reduction object: AppendBinary must produce exactly the
// MarshalBinary encoding, appended after any existing prefix.
func TestAppendBinaryMatchesMarshal(t *testing.T) {
	objs := []core.RedObj{
		&CountObj{Count: 42},
		&SumCountObj{Sum: 3.25, Count: 7, Expected: 9},
		&WeightedObj{WSum: -1.5, Weight: 2.25, Count: 3, Expected: 5},
		&ValuesObj{Values: []float64{1, 2.5, -3}, Expected: 4},
		&ClusterObj{Centroid: []float64{0.5, -0.5}, Sum: []float64{1, 2}, Size: 6},
		&GradObj{Weights: []float64{0.1, 0.2}, Grad: []float64{-0.3, 0.4}, Count: 11},
		&MomentsObj{N: 9, Mean: 1.5, M2: 2.5, M3: -0.5, M4: 4.5},
		&TopKObj{K: 3, Items: []Extreme{{Pos: 4, Val: 9.5}, {Pos: 1, Val: 3.25}}},
	}
	prefix := []byte{0xde, 0xad, 0xbe, 0xef}
	for _, obj := range objs {
		ap, ok := obj.(core.Appender)
		if !ok {
			t.Errorf("%T does not implement core.Appender", obj)
			continue
		}
		want, err := obj.MarshalBinary()
		if err != nil {
			t.Fatalf("%T: %v", obj, err)
		}
		got, err := ap.AppendBinary(append([]byte(nil), prefix...))
		if err != nil {
			t.Fatalf("%T: %v", obj, err)
		}
		if !bytes.Equal(got[:len(prefix)], prefix) {
			t.Errorf("%T: AppendBinary clobbered the prefix", obj)
		}
		if !bytes.Equal(got[len(prefix):], want) {
			t.Errorf("%T: AppendBinary != MarshalBinary", obj)
		}
	}
}
