package analytics

import (
	"math"
	"testing"

	"github.com/scipioneer/smart/internal/core"
)

func naive2DAverage(in []float64, nx, ny, nz, half int) []float64 {
	out := make([]float64, len(in))
	plane := nx * ny
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				sum, n := 0.0, 0
				for yy := max(y-half, 0); yy <= min(y+half, ny-1); yy++ {
					for xx := max(x-half, 0); xx <= min(x+half, nx-1); xx++ {
						sum += in[z*plane+yy*nx+xx]
						n++
					}
				}
				out[z*plane+y*nx+x] = sum / float64(n)
			}
		}
	}
	return out
}

func TestMovingAverage2DMatchesNaive(t *testing.T) {
	const nx, ny, nz, half = 12, 10, 3, 2
	in := synth(nx*ny*nz, func(i int) float64 { return math.Sin(float64(i)/5) + float64(i%7) })
	want := naive2DAverage(in, nx, ny, nz, half)
	for _, trigger := range []bool{false, true} {
		app := NewMovingAverage2D(nx, ny, half, trigger)
		s := core.MustNewScheduler[float64, float64](app, args(3, 1, 1))
		out := make([]float64, len(in))
		if err := s.Run2(in, out); err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if math.Abs(out[i]-want[i]) > 1e-9 {
				t.Fatalf("trigger=%v: out[%d] = %v, want %v", trigger, i, out[i], want[i])
			}
		}
	}
}

func TestMovingAverage2DTriggerBoundsState(t *testing.T) {
	const nx, ny, half = 48, 48, 3
	in := synth(nx*ny, func(i int) float64 { return float64(i % 13) })
	run := func(trigger bool) *core.Stats {
		app := NewMovingAverage2D(nx, ny, half, trigger)
		s := core.MustNewScheduler[float64, float64](app, args(1, 1, 1))
		out := make([]float64, len(in))
		if err := s.Run2(in, out); err != nil {
			t.Fatal(err)
		}
		return s.Stats()
	}
	off := run(false)
	on := run(true)
	if on.EmittedEarly == 0 {
		t.Fatal("nothing emitted early")
	}
	// With row-major traversal a patch completes once its last row's last
	// element arrives, so the live state stays near a band of rows, far
	// below the full plane.
	if on.MaxLiveRedObjs*4 > off.MaxLiveRedObjs {
		t.Fatalf("live objects: trigger %d vs plain %d — want >=4x reduction",
			on.MaxLiveRedObjs, off.MaxLiveRedObjs)
	}
}

func TestMovingAverage2DConstField(t *testing.T) {
	const nx, ny = 9, 7
	in := synth(nx*ny, func(int) float64 { return 4.25 })
	app := NewMovingAverage2D(nx, ny, 2, true)
	s := core.MustNewScheduler[float64, float64](app, args(2, 1, 1))
	out := make([]float64, len(in))
	if err := s.Run2(in, out); err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if math.Abs(v-4.25) > 1e-12 {
			t.Fatalf("constant field changed at %d: %v", i, v)
		}
	}
}

func TestMovingAverage2DValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid geometry accepted")
		}
	}()
	NewMovingAverage2D(0, 4, 1, false)
}
