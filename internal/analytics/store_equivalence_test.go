package analytics

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"github.com/scipioneer/smart/internal/core"
)

// TestStoreByteIdentical is the cross-application equivalence test for the
// reduction-store implementations: for each of the paper's nine applications,
// under each execution engine, the gomap baseline and the arena store must
// produce byte-identical EncodeCombinationMap output.
//
// The same grouping argument as TestEngineByteIdentical applies — the store
// never changes which partial results merge or in what order, only how they
// are laid out — but the stealing engine's steal pattern is timing-dependent,
// so two independent runs may group differently. Every case therefore uses
// the exact-arithmetic configurations of the engine test (any grouping yields
// the same bits); kde and savgol, which cannot be made exact, run their
// stealing side in Sequential mode exactly as the engine test does.
func TestStoreByteIdentical(t *testing.T) {
	const n = 6000
	vals := synth(n, func(i int) float64 { return float64((i*37)%200)/10 - 10 })
	ivals := synth(n, func(i int) float64 { return float64((i*37)%200 - 100) })
	cellvals := synth(n, func(i int) float64 { return float64((i/100)%7 - 3) })
	recs := synth(n, func(i int) float64 {
		if i%5 == 4 {
			return float64(i % 2)
		}
		return float64((i*13)%16)/8 - 1
	})

	cases := []struct {
		name        string
		seqStealing bool
		encode      func(t *testing.T, a core.SchedArgs) []byte
	}{
		{"histogram", false, func(t *testing.T, a core.SchedArgs) []byte {
			a.ChunkSize = 1
			return runAndEncode[int64](t, NewHistogram(-10, 10, 64), a, vals, 64, false)
		}},
		{"gridagg", false, func(t *testing.T, a core.SchedArgs) []byte {
			a.ChunkSize = 1
			return runAndEncode[float64](t, NewGridAgg(100, 0), a, ivals, 60, false)
		}},
		{"moments", false, func(t *testing.T, a core.SchedArgs) []byte {
			a.ChunkSize = 1
			return runAndEncode[float64](t, NewMoments(100, 0), a, cellvals, 60, false)
		}},
		{"mutualinfo", false, func(t *testing.T, a core.SchedArgs) []byte {
			a.ChunkSize = 2
			return runAndEncode[int64](t, NewMutualInfo(-10, 10, 16, -10, 10, 16), a, vals, 0, false)
		}},
		{"logreg", false, func(t *testing.T, a core.SchedArgs) []byte {
			a.ChunkSize, a.NumIters = 5, 1
			return runAndEncode[float64](t, NewLogReg(4, 0.1), a, recs, 0, false)
		}},
		{"kmeans", false, func(t *testing.T, a core.SchedArgs) []byte {
			a.ChunkSize, a.NumIters, a.Extra = 4, 3, initCentroidsTest(4, 4)
			return runAndEncode[[]float64](t, NewKMeans(4, 4), a, ivals, 0, false)
		}},
		{"movingavg", false, func(t *testing.T, a core.SchedArgs) []byte {
			a.ChunkSize = 1
			return runAndEncode[float64](t, NewMovingAverage(25, n, 0, false), a, ivals, n, true)
		}},
		{"movingmedian", false, func(t *testing.T, a core.SchedArgs) []byte {
			a.ChunkSize = 1
			return runAndEncode[float64](t, NewMovingMedian(25, n, 0, false), a, vals, n, true)
		}},
		{"kde", true, func(t *testing.T, a core.SchedArgs) []byte {
			a.ChunkSize = 1
			return runAndEncode[float64](t, NewKernelDensity(25, n, 0, false, 1.5), a, vals, n, true)
		}},
		{"savgol", true, func(t *testing.T, a core.SchedArgs) []byte {
			a.ChunkSize = 1
			return runAndEncode[float64](t, NewSavitzkyGolay(25, 2, n, 0, false), a, vals, n, true)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, engine := range []string{core.EngineStatic, core.EngineStealing} {
				args := core.SchedArgs{NumThreads: 4, Engine: engine,
					Sequential: tc.seqStealing && engine == core.EngineStealing}
				args.MapImpl = core.MapGo
				ref := tc.encode(t, args)
				if len(ref) <= 4 {
					t.Fatal("reference combination map is empty — the case tests nothing")
				}
				args.MapImpl = core.MapArena
				if got := tc.encode(t, args); !bytes.Equal(got, ref) {
					t.Errorf("engine %s: arena encoding differs from gomap (%d vs %d bytes)",
						engine, len(got), len(ref))
				}
			}
		})
	}
}

// TestArenaForcedStealMedianByteIdentical repeats the guaranteed-steal
// determinism test with the arena store: stolen segments then clone-seed
// through arena slabs and recycle across iterations, and the holistic median
// must still encode byte-for-byte like the static gomap schedule.
func TestArenaForcedStealMedianByteIdentical(t *testing.T) {
	const n = 6000
	vals := synth(n, func(i int) float64 { return float64((i*37)%200)/10 - 10 })
	app := &gateMedian{
		MovingMedian: NewMovingMedian(25, n, 0, false),
		gate:         make(chan struct{}),
		guard:        3 * (n / 2) / 4,
		limit:        n / 2,
	}
	s := core.MustNewScheduler[float64, float64](app, core.SchedArgs{
		NumThreads: 2, ChunkSize: 1, Engine: core.EngineStealing, MapImpl: core.MapArena,
	})
	out := make([]float64, n)
	if err := s.Run2(vals, out); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats().Snapshot(); st.Steals == 0 {
		t.Fatal("no steal recorded despite a parked straggler")
	}
	got, err := s.EncodeCombinationMap()
	if err != nil {
		t.Fatal(err)
	}
	ref := runAndEncode[float64](t, NewMovingMedian(25, n, 0, false),
		core.SchedArgs{NumThreads: 2, ChunkSize: 1}, vals, n, true)
	if !bytes.Equal(got, ref) {
		t.Errorf("arena stolen-segment encoding differs from static gomap (%d vs %d bytes)", len(got), len(ref))
	}
}

// TestCheckpointStoreEncodePath pins the store-backed checkpoint encode: a
// scheduler checkpointing right after a Run (store in sync — the encode reads
// the sharded store) and one checkpointing after a restore (store stale — the
// encode reads the flat map) must write byte-identical files, under both
// store implementations.
func TestCheckpointStoreEncodePath(t *testing.T) {
	const n = 4000
	vals := synth(n, func(i int) float64 { return float64((i*37)%200)/10 - 10 })
	var ref []byte
	for _, impl := range []string{core.MapGo, core.MapArena} {
		s := core.MustNewScheduler[float64, int64](NewHistogram(-10, 10, 64),
			core.SchedArgs{NumThreads: 4, ChunkSize: 1, MapImpl: impl})
		out := make([]int64, 64)
		if err := s.Run(vals, out); err != nil {
			t.Fatal(err)
		}
		fresh := filepath.Join(t.TempDir(), "fresh.ck")
		if err := s.WriteCheckpoint(fresh); err != nil {
			t.Fatal(err)
		}
		fb, err := os.ReadFile(fresh)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = fb
		} else if !bytes.Equal(fb, ref) {
			t.Fatalf("%s: store-backed checkpoint differs from gomap's", impl)
		}
		// Restore marks the store stale; the next write must read the flat
		// map and still produce the same bytes.
		r := core.MustNewScheduler[float64, int64](NewHistogram(-10, 10, 64),
			core.SchedArgs{NumThreads: 4, ChunkSize: 1, MapImpl: impl})
		if err := r.ReadCheckpoint(fresh); err != nil {
			t.Fatal(err)
		}
		stale := filepath.Join(t.TempDir(), "stale.ck")
		if err := r.WriteCheckpoint(stale); err != nil {
			t.Fatal(err)
		}
		sb, err := os.ReadFile(stale)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(sb, ref) {
			t.Fatalf("%s: flat-map checkpoint differs from store-backed one", impl)
		}
	}
}

// TestFixedSizeObjContracts pins the core.FixedSizeObj contract for every
// shipped opt-in: NewSlab objects must be indistinguishable from zero-valued
// objects, and Assign must reproduce exactly what Clone would.
func TestFixedSizeObjContracts(t *testing.T) {
	protos := map[string]core.FixedSizeObj{
		"CountObj":    &CountObj{Count: 7},
		"SumCountObj": &SumCountObj{Sum: 1.5, Count: 3, Expected: 25},
		"WeightedObj": &WeightedObj{WSum: 2.25, Weight: 0.5, Count: 2, Expected: 9},
		"MomentsObj":  &MomentsObj{N: 4, Mean: 1.25, M2: 2, M3: -1, M4: 0.5},
	}
	for name, proto := range protos {
		t.Run(name, func(t *testing.T) {
			slab := proto.NewSlab(8)
			if len(slab) != 8 {
				t.Fatalf("NewSlab returned %d objects", len(slab))
			}
			zero := proto.Clone().(core.FixedSizeObj)
			zero.Assign(slab[0]) // slab objects must themselves be assignable
			for i, obj := range slab {
				zb, err := obj.MarshalBinary()
				if err != nil {
					t.Fatal(err)
				}
				want, err := proto.Clone().(core.FixedSizeObj).NewSlab(1)[0].MarshalBinary()
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(zb, want) {
					t.Fatalf("slab object %d not zero-valued", i)
				}
				fo := obj.(core.FixedSizeObj)
				fo.Assign(proto)
				ab, err := fo.MarshalBinary()
				if err != nil {
					t.Fatal(err)
				}
				cb, err := proto.Clone().MarshalBinary()
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(ab, cb) {
					t.Fatalf("slab object %d: Assign differs from Clone", i)
				}
			}
		})
	}
}
