package analytics

import (
	"github.com/scipioneer/smart/internal/chunk"
	"github.com/scipioneer/smart/internal/core"
)

// MovingAverage2D smooths a 2-D field (or each plane of a 3-D field) with a
// square (2H+1)×(2H+1) window — the planar counterpart of the paper's
// sliding-window analytics, natural for simulation output because unit
// chunks preserve array positional information (Section 5.8). Early
// emission applies unchanged: an interior patch has a fixed fan-in.
type MovingAverage2D struct {
	// NX and NY are the plane extents; the input may stack NZ planes.
	NX, NY int
	// Half is the window half-width (window edge = 2*Half+1).
	Half int
	// EnableTrigger turns on early emission of completed patches.
	EnableTrigger bool
}

// NewMovingAverage2D creates the smoother; extents and half-width must be
// positive.
func NewMovingAverage2D(nx, ny, half int, trigger bool) *MovingAverage2D {
	if nx <= 0 || ny <= 0 || half <= 0 {
		panic("analytics: invalid 2-D moving average geometry")
	}
	return &MovingAverage2D{NX: nx, NY: ny, Half: half, EnableTrigger: trigger}
}

// NewRedObj implements core.Analytics.
func (m *MovingAverage2D) NewRedObj() core.RedObj { return &SumCountObj{} }

// GenKey implements core.Analytics; the 2-D window uses GenKeys.
func (m *MovingAverage2D) GenKey(chunk.Chunk, []float64, core.CombMap) int {
	panic("analytics: 2-D moving average requires Run2 (gen_keys)")
}

// GenKeys implements core.MultiKeyer: the element at (x, y) of its plane
// contributes to every patch centered within the clamped square around it.
func (m *MovingAverage2D) GenKeys(c chunk.Chunk, _ []float64, _ core.CombMap, keys []int) []int {
	plane := m.NX * m.NY
	z := c.Start / plane
	rem := c.Start % plane
	x, y := rem%m.NX, rem/m.NX
	for cy := max(y-m.Half, 0); cy <= min(y+m.Half, m.NY-1); cy++ {
		for cx := max(x-m.Half, 0); cx <= min(x+m.Half, m.NX-1); cx++ {
			keys = append(keys, z*plane+cy*m.NX+cx)
		}
	}
	return keys
}

// expected is the fan-in of the patch centered on key (clamped at plane
// borders), or 0 with the trigger disabled.
func (m *MovingAverage2D) expected(key int) int64 {
	if !m.EnableTrigger {
		return 0
	}
	rem := key % (m.NX * m.NY)
	x, y := rem%m.NX, rem/m.NX
	w := min(x+m.Half, m.NX-1) - max(x-m.Half, 0) + 1
	h := min(y+m.Half, m.NY-1) - max(y-m.Half, 0) + 1
	return int64(w * h)
}

// AccumulateKeyed implements core.PositionalAccumulator.
func (m *MovingAverage2D) AccumulateKeyed(key int, c chunk.Chunk, data []float64, obj core.RedObj) {
	o := obj.(*SumCountObj)
	o.Sum += data[c.Start]
	o.Count++
	o.Expected = m.expected(key)
}

// Accumulate implements core.Analytics (non-positional fallback; no early
// emission since border patches have variable fan-in).
func (m *MovingAverage2D) Accumulate(c chunk.Chunk, data []float64, obj core.RedObj) {
	o := obj.(*SumCountObj)
	o.Sum += data[c.Start]
	o.Count++
}

// Merge implements core.Analytics.
func (m *MovingAverage2D) Merge(src, dst core.RedObj) {
	s, d := src.(*SumCountObj), dst.(*SumCountObj)
	d.Sum += s.Sum
	d.Count += s.Count
	if s.Expected > d.Expected {
		d.Expected = s.Expected
	}
}

// Convert implements core.Converter: the patch mean.
func (m *MovingAverage2D) Convert(obj core.RedObj, out *float64) {
	o := obj.(*SumCountObj)
	if o.Count > 0 {
		*out = o.Sum / float64(o.Count)
	}
}
