package analytics

import (
	"math"
	"testing"

	"github.com/scipioneer/smart/internal/core"
)

// benchInput is a deterministic mixed-frequency signal reused across the
// per-application throughput benchmarks.
func benchInput(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = 50 + 40*math.Sin(float64(i)/17) + float64(i%13)
	}
	return out
}

const benchN = 1 << 16

func BenchmarkHistogramThroughput(b *testing.B) {
	in := benchInput(benchN)
	app := NewHistogram(0, 120, 1200)
	s := core.MustNewScheduler[float64, int64](app, core.SchedArgs{NumThreads: 1, ChunkSize: 1, NumIters: 1})
	b.SetBytes(8 * benchN)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ResetCombinationMap()
		if err := s.Run(in, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGridAggThroughput(b *testing.B) {
	in := benchInput(benchN)
	app := NewGridAgg(1000, 0)
	s := core.MustNewScheduler[float64, float64](app, core.SchedArgs{NumThreads: 1, ChunkSize: 1, NumIters: 1})
	b.SetBytes(8 * benchN)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ResetCombinationMap()
		if err := s.Run(in, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKMeansIteration(b *testing.B) {
	const k, dims = 8, 4
	in := benchInput(benchN)
	init := make([]float64, k*dims)
	for c := 0; c < k; c++ {
		for d := 0; d < dims; d++ {
			init[c*dims+d] = float64(c * 15)
		}
	}
	b.SetBytes(8 * benchN)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		app := NewKMeans(k, dims)
		s := core.MustNewScheduler[float64, []float64](app, core.SchedArgs{
			NumThreads: 1, ChunkSize: dims, NumIters: 1, Extra: init,
		})
		if err := s.Run(in, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLogRegIteration(b *testing.B) {
	const dims = 15
	in := benchInput(benchN / (dims + 1) * (dims + 1))
	b.SetBytes(int64(8 * len(in)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		app := NewLogReg(dims, 0.1)
		s := core.MustNewScheduler[float64, float64](app, core.SchedArgs{
			NumThreads: 1, ChunkSize: dims + 1, NumIters: 1,
		})
		if err := s.Run(in, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMovingAverageWindow25(b *testing.B) {
	in := benchInput(benchN)
	out := make([]float64, len(in))
	b.SetBytes(8 * benchN)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		app := NewMovingAverage(25, len(in), 0, true)
		s := core.MustNewScheduler[float64, float64](app, core.SchedArgs{
			NumThreads: 1, ChunkSize: 1, NumIters: 1,
		})
		if err := s.Run2(in, out); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMovingMedianWindow25(b *testing.B) {
	in := benchInput(benchN / 4)
	out := make([]float64, len(in))
	b.SetBytes(int64(8 * len(in)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		app := NewMovingMedian(25, len(in), 0, true)
		s := core.MustNewScheduler[float64, float64](app, core.SchedArgs{
			NumThreads: 1, ChunkSize: 1, NumIters: 1,
		})
		if err := s.Run2(in, out); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSavitzkyGolayWindow25(b *testing.B) {
	in := benchInput(benchN / 2)
	out := make([]float64, len(in))
	b.SetBytes(int64(8 * len(in)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		app := NewSavitzkyGolay(25, 3, len(in), 0, true)
		s := core.MustNewScheduler[float64, float64](app, core.SchedArgs{
			NumThreads: 1, ChunkSize: 1, NumIters: 1,
		})
		if err := s.Run2(in, out); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMomentsThroughput(b *testing.B) {
	in := benchInput(benchN)
	app := NewMoments(0, 0)
	s := core.MustNewScheduler[float64, float64](app, core.SchedArgs{NumThreads: 1, ChunkSize: 1, NumIters: 1})
	b.SetBytes(8 * benchN)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ResetCombinationMap()
		if err := s.Run(in, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTopKThroughput(b *testing.B) {
	in := benchInput(benchN)
	b.SetBytes(8 * benchN)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		app := NewTopK(32, 0)
		s := core.MustNewScheduler[float64, float64](app, core.SchedArgs{NumThreads: 1, ChunkSize: 1, NumIters: 1})
		if err := s.Run(in, nil); err != nil {
			b.Fatal(err)
		}
	}
}
