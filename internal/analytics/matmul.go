package analytics

import (
	"github.com/scipioneer/smart/internal/chunk"
	"github.com/scipioneer/smart/internal/core"
)

// MatMul is the paper's own example of early emission beyond window
// analytics (Section 4.2): dense matrix multiplication C = A×B, where every
// output element receives a fixed number of element-wise contributions —
// exactly N for N×N matrices — so its reduction object can be emitted the
// moment the count is reached. The in-situ input is the flattened
// row-major A (one element per unit chunk); B is static application state.
type MatMul struct {
	// N is the matrix dimension (A, B, and C are all N×N).
	N int
	// B is the flattened row-major right-hand matrix.
	B []float64
	// EnableTrigger turns early emission on.
	EnableTrigger bool
}

// NewMatMul creates the application; B must be N*N elements.
func NewMatMul(n int, b []float64, trigger bool) *MatMul {
	if n <= 0 || len(b) != n*n {
		panic("analytics: B must be an N*N matrix")
	}
	return &MatMul{N: n, B: b, EnableTrigger: trigger}
}

// NewRedObj implements core.Analytics.
func (m *MatMul) NewRedObj() core.RedObj { return &SumCountObj{} }

// GenKey implements core.Analytics; MatMul uses GenKeys.
func (m *MatMul) GenKey(chunk.Chunk, []float64, core.CombMap) int {
	panic("analytics: matrix multiplication requires Run2 (gen_keys)")
}

// GenKeys implements core.MultiKeyer: A[i][k] contributes to the whole
// output row i — keys i*N+j for every column j.
func (m *MatMul) GenKeys(c chunk.Chunk, _ []float64, _ core.CombMap, keys []int) []int {
	i := c.Start / m.N
	for j := 0; j < m.N; j++ {
		keys = append(keys, i*m.N+j)
	}
	return keys
}

// AccumulateKeyed implements core.PositionalAccumulator: add
// A[i][k] * B[k][j] to C[i][j].
func (m *MatMul) AccumulateKeyed(key int, c chunk.Chunk, data []float64, obj core.RedObj) {
	o := obj.(*SumCountObj)
	k := c.Start % m.N
	j := key % m.N
	o.Sum += data[c.Start] * m.B[k*m.N+j]
	o.Count++
	if m.EnableTrigger {
		o.Expected = int64(m.N)
	}
}

// Accumulate implements core.Analytics; unreachable because the runtime
// prefers AccumulateKeyed, but required by the interface.
func (m *MatMul) Accumulate(chunk.Chunk, []float64, core.RedObj) {
	panic("analytics: matrix multiplication requires positional accumulation")
}

// Merge implements core.Analytics.
func (m *MatMul) Merge(src, dst core.RedObj) {
	s, d := src.(*SumCountObj), dst.(*SumCountObj)
	d.Sum += s.Sum
	d.Count += s.Count
	if s.Expected > d.Expected {
		d.Expected = s.Expected
	}
}

// Convert implements core.Converter: the finished C element.
func (m *MatMul) Convert(obj core.RedObj, out *float64) {
	*out = obj.(*SumCountObj).Sum
}
