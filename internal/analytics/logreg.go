package analytics

import (
	"math"

	"github.com/scipioneer/smart/internal/chunk"
	"github.com/scipioneer/smart/internal/core"
)

// LogReg is the feature-analytics application: binary logistic regression
// trained by batch gradient descent (paper Section 5.2: 10 iterations, 15
// dimensions). A record is Dims feature values followed by a 0/1 label, so
// ChunkSize must be Dims+1. The weight vector travels to every thread as the
// broadcast state of the single reduction object (key 0), which is exactly
// the distribution step that makes this the application with "a single
// key-value pair and trivial serialization" in Section 5.3.
type LogReg struct {
	// Dims is the feature dimensionality.
	Dims int
	// LearningRate is the gradient descent step size.
	LearningRate float64
}

// NewLogReg creates the model with the given dimensionality and step size.
func NewLogReg(dims int, learningRate float64) *LogReg {
	if dims <= 0 || learningRate <= 0 {
		panic("analytics: invalid logistic regression parameters")
	}
	return &LogReg{Dims: dims, LearningRate: learningRate}
}

// NewRedObj implements core.Analytics.
func (l *LogReg) NewRedObj() core.RedObj {
	return &GradObj{Weights: make([]float64, l.Dims), Grad: make([]float64, l.Dims)}
}

// GenKey implements core.Analytics: every record folds into key 0.
func (l *LogReg) GenKey(chunk.Chunk, []float64, core.CombMap) int { return 0 }

func sigmoid(z float64) float64 { return 1 / (1 + math.Exp(-z)) }

// Accumulate implements core.Analytics: accumulate the per-record gradient
// of the log loss using the weights carried by the (distributed) object.
func (l *LogReg) Accumulate(c chunk.Chunk, data []float64, obj core.RedObj) {
	o := obj.(*GradObj)
	x := data[c.Start : c.Start+l.Dims]
	y := data[c.Start+l.Dims]
	z := 0.0
	for i, w := range o.Weights {
		z += w * x[i]
	}
	err := sigmoid(z) - y
	for i := range o.Grad {
		o.Grad[i] += err * x[i]
	}
	o.Count++
}

// Merge implements core.Analytics: gradients and counts add; the weights are
// broadcast state and identical on both sides.
func (l *LogReg) Merge(src, dst core.RedObj) {
	s, d := src.(*GradObj), dst.(*GradObj)
	for i := range d.Grad {
		d.Grad[i] += s.Grad[i]
	}
	d.Count += s.Count
}

// ProcessExtraData implements core.ExtraDataProcessor: the extra data is the
// initial weight vector ([]float64 of length Dims, or nil for zeros). It
// only initializes an empty combination map, so repeated Runs continue
// training from the current weights.
func (l *LogReg) ProcessExtraData(extra any, com core.CombMap) {
	if len(com) > 0 {
		return
	}
	obj := l.NewRedObj().(*GradObj)
	if w, ok := extra.([]float64); ok {
		copy(obj.Weights, w)
	}
	com[0] = obj
}

// PostCombine implements core.PostCombiner: take one gradient step and reset
// the accumulators — the reset that keeps distribution sound.
func (l *LogReg) PostCombine(com core.CombMap) {
	o := com[0].(*GradObj)
	if o.Count > 0 {
		scale := l.LearningRate / float64(o.Count)
		for i := range o.Weights {
			o.Weights[i] -= scale * o.Grad[i]
		}
	}
	for i := range o.Grad {
		o.Grad[i] = 0
	}
	o.Count = 0
}

// Weights extracts the trained weight vector from a combination map.
func (l *LogReg) Weights(com core.CombMap) []float64 {
	o, ok := com[0].(*GradObj)
	if !ok {
		return nil
	}
	return append([]float64(nil), o.Weights...)
}

// Predict returns the model probability for a feature vector under weights.
func Predict(weights, x []float64) float64 {
	z := 0.0
	for i := range weights {
		z += weights[i] * x[i]
	}
	return sigmoid(z)
}
