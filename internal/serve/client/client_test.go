package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"github.com/scipioneer/smart/internal/obs"
	"github.com/scipioneer/smart/internal/serve"
)

func newBackend(t *testing.T) (*serve.Server, *httptest.Server) {
	t.Helper()
	s := serve.NewServer(serve.Config{
		Workers: 2, Queue: 4,
		Registry:      obs.NewRegistry(),
		CheckpointDir: t.TempDir(),
	})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Drain(0) })
	return s, ts
}

func TestSubmitWaitReturnsResult(t *testing.T) {
	_, ts := newBackend(t)
	c := New(ts.URL)
	view, err := c.SubmitWait(context.Background(), serve.JobSpec{App: "histogram", Elems: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if view.Status != serve.StatusDone {
		t.Fatalf("status = %q (error %q), want done", view.Status, view.Error)
	}
	if view.Result == nil {
		t.Fatal("done job has no result")
	}
}

func TestRetriesOverloadWithBackoff(t *testing.T) {
	_, ts := newBackend(t)
	// A gate in front of the real service: the first two attempts are
	// turned away with 429 + Retry-After, the third passes through.
	var attempts atomic.Int64
	gate := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if attempts.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			_, _ = w.Write([]byte(`{"error":"synthetic overload"}`))
			return
		}
		resp, err := http.Get(ts.URL + r.URL.String())
		if err != nil {
			w.WriteHeader(http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		// The gate only fronts GETs in this test.
		w.WriteHeader(resp.StatusCode)
		buf := make([]byte, 1<<16)
		for {
			n, err := resp.Body.Read(buf)
			if n > 0 {
				_, _ = w.Write(buf[:n])
			}
			if err != nil {
				return
			}
		}
	}))
	defer gate.Close()

	c := New(gate.URL, WithBackoff(time.Millisecond, 10*time.Millisecond))
	apps, err := c.Apps(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(apps) == 0 {
		t.Fatal("no apps after retries")
	}
	if got := attempts.Load(); got != 3 {
		t.Errorf("attempts = %d, want 3 (two 429s + success)", got)
	}
}

func TestNoRetriesSurfacesStatusError(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusTooManyRequests)
		_, _ = w.Write([]byte(`{"error":"full"}`))
	}))
	defer srv.Close()
	c := New(srv.URL, WithRetries(0))
	_, err := c.Submit(context.Background(), serve.JobSpec{App: "histogram"})
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusTooManyRequests {
		t.Fatalf("err = %v, want StatusError 429", err)
	}
}

func TestRetryBudgetExhausts(t *testing.T) {
	var attempts atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		attempts.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = w.Write([]byte(`{"error":"draining"}`))
	}))
	defer srv.Close()
	c := New(srv.URL, WithRetries(2), WithBackoff(time.Millisecond, 2*time.Millisecond))
	_, err := c.Submit(context.Background(), serve.JobSpec{App: "histogram"})
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusServiceUnavailable {
		t.Fatalf("err = %v, want StatusError 503", err)
	}
	if got := attempts.Load(); got != 3 {
		t.Errorf("attempts = %d, want 3 (initial + 2 retries)", got)
	}
}

func TestBadSpecIsNotRetried(t *testing.T) {
	_, ts := newBackend(t)
	c := New(ts.URL)
	_, err := c.Submit(context.Background(), serve.JobSpec{App: "no-such-app"})
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusBadRequest {
		t.Fatalf("err = %v, want StatusError 400", err)
	}
}

func TestStreamDeliversRecords(t *testing.T) {
	_, ts := newBackend(t)
	c := New(ts.URL)
	view, err := c.SubmitWait(context.Background(), serve.JobSpec{
		App: "movingavg", Elems: 1024, Params: serve.Params{Window: 25},
	})
	if err != nil {
		t.Fatal(err)
	}
	var emits, results int
	err = c.Stream(context.Background(), view.ID, func(rec serve.StreamRecord) error {
		switch rec.Type {
		case "emit":
			emits++
		case "result":
			results++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if emits == 0 || results != 1 {
		t.Errorf("emits = %d, results = %d; want >0 emits and exactly one result", emits, results)
	}
}

func TestCancelViaClient(t *testing.T) {
	_, ts := newBackend(t)
	c := New(ts.URL)
	view, err := c.Submit(context.Background(), serve.JobSpec{
		App: "kmeans", Steps: 10_000, Elems: 65536,
		Params: serve.Params{K: 8, Dims: 4, Iters: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Cancel(context.Background(), view.ID); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		v, err := c.Get(context.Background(), view.ID)
		if err != nil {
			t.Fatal(err)
		}
		if v.Status == serve.StatusCancelled {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q after cancel", v.Status)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestRetryDelayFullJitter pins the desynchronization property of the
// backoff schedule: each delay is drawn uniformly from [0, step] rather
// than being the deterministic step itself, so a herd of clients rejected
// together does not return together.
func TestRetryDelayFullJitter(t *testing.T) {
	c := New("http://unused", WithBackoff(100*time.Millisecond, 2*time.Second))

	distinct := map[time.Duration]bool{}
	for i := 0; i < 200; i++ {
		d := c.retryDelay(0, nil)
		if d < 0 || d > 100*time.Millisecond {
			t.Fatalf("attempt-0 delay %v outside [0, 100ms]", d)
		}
		distinct[d] = true
	}
	if len(distinct) < 20 {
		t.Errorf("200 attempt-0 delays collapsed to %d distinct values; jitter looks broken", len(distinct))
	}

	// Deep attempts cap at maxBackoff — including the shift overflow range.
	for _, attempt := range []int{3, 10, 40, 63} {
		for i := 0; i < 50; i++ {
			if d := c.retryDelay(attempt, nil); d < 0 || d > 2*time.Second {
				t.Fatalf("attempt-%d delay %v outside [0, maxBackoff]", attempt, d)
			}
		}
	}
}

// TestRetryDelayHonorsRetryAfterAsFloor: the server's own estimate is the
// minimum wait (retrying earlier buys another rejection), jitter stacks on
// top, and maxBackoff still bounds the result.
func TestRetryDelayHonorsRetryAfterAsFloor(t *testing.T) {
	c := New("http://unused", WithBackoff(50*time.Millisecond, 5*time.Second))

	resp := &http.Response{Header: http.Header{}}
	resp.Header.Set("Retry-After", "1")
	for i := 0; i < 100; i++ {
		d := c.retryDelay(0, resp)
		if d < time.Second {
			t.Fatalf("delay %v below the 1s Retry-After floor", d)
		}
		if d > 5*time.Second {
			t.Fatalf("delay %v above maxBackoff", d)
		}
	}

	// A hint beyond maxBackoff clamps to it.
	resp.Header.Set("Retry-After", "60")
	if d := c.retryDelay(0, resp); d != 5*time.Second {
		t.Errorf("delay %v with a 60s hint, want the 5s maxBackoff clamp", d)
	}

	// Malformed hints fall back to plain jittered backoff.
	resp.Header.Set("Retry-After", "soon")
	if d := c.retryDelay(0, resp); d > 50*time.Millisecond {
		t.Errorf("delay %v with a malformed hint, want jitter within the 50ms step", d)
	}
}
