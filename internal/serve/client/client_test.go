package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"github.com/scipioneer/smart/internal/obs"
	"github.com/scipioneer/smart/internal/serve"
)

func newBackend(t *testing.T) (*serve.Server, *httptest.Server) {
	t.Helper()
	s := serve.NewServer(serve.Config{
		Workers: 2, Queue: 4,
		Registry:      obs.NewRegistry(),
		CheckpointDir: t.TempDir(),
	})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Drain(0) })
	return s, ts
}

func TestSubmitWaitReturnsResult(t *testing.T) {
	_, ts := newBackend(t)
	c := New(ts.URL)
	view, err := c.SubmitWait(context.Background(), serve.JobSpec{App: "histogram", Elems: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if view.Status != serve.StatusDone {
		t.Fatalf("status = %q (error %q), want done", view.Status, view.Error)
	}
	if view.Result == nil {
		t.Fatal("done job has no result")
	}
}

func TestRetriesOverloadWithBackoff(t *testing.T) {
	_, ts := newBackend(t)
	// A gate in front of the real service: the first two attempts are
	// turned away with 429 + Retry-After, the third passes through.
	var attempts atomic.Int64
	gate := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if attempts.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			_, _ = w.Write([]byte(`{"error":"synthetic overload"}`))
			return
		}
		resp, err := http.Get(ts.URL + r.URL.String())
		if err != nil {
			w.WriteHeader(http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		// The gate only fronts GETs in this test.
		w.WriteHeader(resp.StatusCode)
		buf := make([]byte, 1<<16)
		for {
			n, err := resp.Body.Read(buf)
			if n > 0 {
				_, _ = w.Write(buf[:n])
			}
			if err != nil {
				return
			}
		}
	}))
	defer gate.Close()

	c := New(gate.URL, WithBackoff(time.Millisecond, 10*time.Millisecond))
	apps, err := c.Apps(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(apps) == 0 {
		t.Fatal("no apps after retries")
	}
	if got := attempts.Load(); got != 3 {
		t.Errorf("attempts = %d, want 3 (two 429s + success)", got)
	}
}

func TestNoRetriesSurfacesStatusError(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusTooManyRequests)
		_, _ = w.Write([]byte(`{"error":"full"}`))
	}))
	defer srv.Close()
	c := New(srv.URL, WithRetries(0))
	_, err := c.Submit(context.Background(), serve.JobSpec{App: "histogram"})
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusTooManyRequests {
		t.Fatalf("err = %v, want StatusError 429", err)
	}
}

func TestRetryBudgetExhausts(t *testing.T) {
	var attempts atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		attempts.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = w.Write([]byte(`{"error":"draining"}`))
	}))
	defer srv.Close()
	c := New(srv.URL, WithRetries(2), WithBackoff(time.Millisecond, 2*time.Millisecond))
	_, err := c.Submit(context.Background(), serve.JobSpec{App: "histogram"})
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusServiceUnavailable {
		t.Fatalf("err = %v, want StatusError 503", err)
	}
	if got := attempts.Load(); got != 3 {
		t.Errorf("attempts = %d, want 3 (initial + 2 retries)", got)
	}
}

func TestBadSpecIsNotRetried(t *testing.T) {
	_, ts := newBackend(t)
	c := New(ts.URL)
	_, err := c.Submit(context.Background(), serve.JobSpec{App: "no-such-app"})
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusBadRequest {
		t.Fatalf("err = %v, want StatusError 400", err)
	}
}

func TestStreamDeliversRecords(t *testing.T) {
	_, ts := newBackend(t)
	c := New(ts.URL)
	view, err := c.SubmitWait(context.Background(), serve.JobSpec{
		App: "movingavg", Elems: 1024, Params: serve.Params{Window: 25},
	})
	if err != nil {
		t.Fatal(err)
	}
	var emits, results int
	err = c.Stream(context.Background(), view.ID, func(rec serve.StreamRecord) error {
		switch rec.Type {
		case "emit":
			emits++
		case "result":
			results++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if emits == 0 || results != 1 {
		t.Errorf("emits = %d, results = %d; want >0 emits and exactly one result", emits, results)
	}
}

func TestCancelViaClient(t *testing.T) {
	_, ts := newBackend(t)
	c := New(ts.URL)
	view, err := c.Submit(context.Background(), serve.JobSpec{
		App: "kmeans", Steps: 10_000, Elems: 65536,
		Params: serve.Params{K: 8, Dims: 4, Iters: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Cancel(context.Background(), view.ID); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		v, err := c.Get(context.Background(), view.ID)
		if err != nil {
			t.Fatal(err)
		}
		if v.Status == serve.StatusCancelled {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q after cancel", v.Status)
		}
		time.Sleep(2 * time.Millisecond)
	}
}
