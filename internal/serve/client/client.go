// Package client is the Go client for the smartd analytics job service. It
// speaks the serve HTTP API, retrying overload responses (429, 503) with
// exponential backoff — honoring the server's Retry-After hint — so callers
// see admission control as latency, not failure, until the retry budget runs
// out.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"time"

	"github.com/scipioneer/smart/internal/serve"
)

// StatusError is a non-2xx response that was not retried away: the final
// status code and the server's error message.
type StatusError struct {
	Code    int
	Message string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("client: server returned %d: %s", e.Code, e.Message)
}

// retryable reports whether a status code signals transient overload.
func retryable(code int) bool {
	return code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable
}

// Client talks to one smartd instance.
type Client struct {
	base string
	hc   *http.Client
	// retries is how many times an overloaded request is re-sent before the
	// 429/503 surfaces as a StatusError.
	retries int
	// backoff is the first retry delay; it doubles per attempt up to maxBackoff.
	backoff    time.Duration
	maxBackoff time.Duration
}

// Option customizes a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client.
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// WithRetries sets the overload retry budget (0 disables retrying).
func WithRetries(n int) Option { return func(c *Client) { c.retries = n } }

// WithBackoff sets the initial and maximum retry delays.
func WithBackoff(initial, max time.Duration) Option {
	return func(c *Client) { c.backoff = initial; c.maxBackoff = max }
}

// New creates a client for the service at base (e.g. "http://127.0.0.1:8080").
func New(base string, opts ...Option) *Client {
	c := &Client{
		base:       strings.TrimSuffix(base, "/"),
		hc:         &http.Client{},
		retries:    5,
		backoff:    50 * time.Millisecond,
		maxBackoff: 2 * time.Second,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// retryDelay picks the wait before retry attempt (0-based): full jitter
// (uniform in [0, step]) over the exponential schedule, so clients rejected
// by the same overloaded server fan back out instead of returning as one
// synchronized herd. A Retry-After hint is honored as the floor the jitter
// is added on top of — retrying before the server's own estimate would only
// buy another rejection.
func (c *Client) retryDelay(attempt int, resp *http.Response) time.Duration {
	step := c.backoff << attempt
	if step > c.maxBackoff || step <= 0 {
		step = c.maxBackoff
	}
	jitter := time.Duration(rand.Int63n(int64(step) + 1))
	if resp != nil {
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			if secs, err := strconv.Atoi(ra); err == nil && secs >= 0 {
				d := time.Duration(secs)*time.Second + jitter
				if d > c.maxBackoff {
					d = c.maxBackoff
				}
				return d
			}
		}
	}
	return jitter
}

// do sends one request, retrying overload responses, and decodes a 2xx body
// into out (when non-nil). The request body is re-materialized per attempt.
func (c *Client) do(ctx context.Context, method, path string, body []byte, out any) error {
	var lastErr error
	for attempt := 0; ; attempt++ {
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
		if err != nil {
			return fmt.Errorf("client: %w", err)
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			return fmt.Errorf("client: %s %s: %w", method, path, err)
		}
		if resp.StatusCode < 300 {
			defer resp.Body.Close()
			if out == nil {
				_, _ = io.Copy(io.Discard, resp.Body)
				return nil
			}
			if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
				return fmt.Errorf("client: decode %s %s: %w", method, path, err)
			}
			return nil
		}
		var eb struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&eb)
		resp.Body.Close()
		lastErr = &StatusError{Code: resp.StatusCode, Message: eb.Error}
		if !retryable(resp.StatusCode) || attempt >= c.retries {
			return lastErr
		}
		select {
		case <-time.After(c.retryDelay(attempt, resp)):
		case <-ctx.Done():
			return fmt.Errorf("client: %w (last: %v)", ctx.Err(), lastErr)
		}
	}
}

// Submit enqueues a job and returns its initial view (status "queued").
func (c *Client) Submit(ctx context.Context, spec serve.JobSpec) (serve.JobView, error) {
	buf, err := json.Marshal(spec)
	if err != nil {
		return serve.JobView{}, fmt.Errorf("client: encode spec: %w", err)
	}
	var view serve.JobView
	err = c.do(ctx, http.MethodPost, "/v1/jobs", buf, &view)
	return view, err
}

// SubmitWait enqueues a job and blocks until it reaches a terminal status,
// returning the final view (result included for successful jobs).
func (c *Client) SubmitWait(ctx context.Context, spec serve.JobSpec) (serve.JobView, error) {
	buf, err := json.Marshal(spec)
	if err != nil {
		return serve.JobView{}, fmt.Errorf("client: encode spec: %w", err)
	}
	var view serve.JobView
	err = c.do(ctx, http.MethodPost, "/v1/jobs?wait=1", buf, &view)
	return view, err
}

// Get returns a job's current view.
func (c *Client) Get(ctx context.Context, id string) (serve.JobView, error) {
	var view serve.JobView
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &view)
	return view, err
}

// List returns every job the server knows.
func (c *Client) List(ctx context.Context) ([]serve.JobView, error) {
	var body struct {
		Jobs []serve.JobView `json:"jobs"`
	}
	err := c.do(ctx, http.MethodGet, "/v1/jobs", nil, &body)
	return body.Jobs, err
}

// Cancel stops a job and returns its view after the cancel was filed.
func (c *Client) Cancel(ctx context.Context, id string) (serve.JobView, error) {
	var view serve.JobView
	err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, &view)
	return view, err
}

// Apps returns the server's registered application names.
func (c *Client) Apps(ctx context.Context) ([]string, error) {
	var body struct {
		Apps []string `json:"apps"`
	}
	err := c.do(ctx, http.MethodGet, "/v1/apps", nil, &body)
	return body.Apps, err
}

// Stream attaches to a job's NDJSON stream and invokes fn for every record
// — buffered replay first, then live — until the stream ends (the job
// reached a terminal state), fn returns an error, or ctx is cancelled.
func (c *Client) Stream(ctx context.Context, id string, fn func(serve.StreamRecord) error) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/jobs/"+id+"/stream", nil)
	if err != nil {
		return fmt.Errorf("client: %w", err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("client: stream %s: %w", id, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var eb struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&eb)
		return &StatusError{Code: resp.StatusCode, Message: eb.Error}
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var rec serve.StreamRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return fmt.Errorf("client: bad stream record %q: %w", sc.Text(), err)
		}
		if err := fn(rec); err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil && ctx.Err() == nil {
		return fmt.Errorf("client: stream %s: %w", id, err)
	}
	return nil
}
