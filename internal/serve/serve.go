package serve

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"runtime/pprof"
	"sync"
	"time"

	"github.com/scipioneer/smart/internal/memmodel"
	"github.com/scipioneer/smart/internal/obs"
)

// Admission errors. Submit returns exactly one of these when a well-formed
// job cannot be admitted; any other Submit error means the spec itself is
// invalid (the HTTP layer maps the distinction to 429/503 versus 400).
var (
	// ErrQueueFull reports that the bounded job queue is at capacity.
	ErrQueueFull = errors.New("serve: job queue full")
	// ErrMemPressure reports that the memory node is above its high-water
	// mark — the server refuses work rather than push the node into paging.
	ErrMemPressure = errors.New("serve: node under memory pressure")
	// ErrDraining reports that the server is shutting down.
	ErrDraining = errors.New("serve: server draining")
	// ErrNotFound reports an unknown job id.
	ErrNotFound = errors.New("serve: no such job")
)

// errDrainCheckpoint is the cancellation cause Drain uses when the grace
// period expires: runJob recognizes it and checkpoints the job's state
// instead of discarding it.
var errDrainCheckpoint = errors.New("serve: drain grace expired, checkpointing")

// Status is a job's lifecycle state.
type Status string

const (
	// StatusQueued: admitted, waiting for a worker.
	StatusQueued Status = "queued"
	// StatusRunning: executing on a worker.
	StatusRunning Status = "running"
	// StatusDone: finished successfully; Result holds the output.
	StatusDone Status = "done"
	// StatusFailed: the application returned an error.
	StatusFailed Status = "failed"
	// StatusCancelled: stopped by client cancel or deadline.
	StatusCancelled Status = "cancelled"
	// StatusCheckpointed: stopped by drain with its state persisted.
	StatusCheckpointed Status = "checkpointed"
	// StatusRejected: flushed from the queue by a drain before running.
	StatusRejected Status = "rejected"
)

// terminal reports whether a status is final.
func (st Status) terminal() bool {
	return st != StatusQueued && st != StatusRunning
}

// Config configures a Server.
type Config struct {
	// Queue is the bounded job-queue capacity (default 16). A Submit that
	// finds the queue full fails with ErrQueueFull instead of blocking.
	Queue int
	// Workers is the worker-pool size — how many jobs execute concurrently
	// (default 2).
	Workers int
	// Mem, when non-nil, is the virtual memory node jobs charge their
	// runtime structures against and the admission signal: submissions are
	// rejected while the node is above its high-water mark.
	Mem *memmodel.Node
	// DefaultDeadline caps a job's execution time when its spec does not
	// set one; zero means no default deadline.
	DefaultDeadline time.Duration
	// CheckpointDir receives <job-id>.ck files written when a drain
	// interrupts a checkpointable job (default os.TempDir()).
	CheckpointDir string
	// Registry receives the service metrics (default obs.DefaultRegistry()).
	Registry *obs.Registry
}

// Job is one submitted analytics job. All exported access goes through
// View, Done and the Server methods; fields are guarded by mu.
type Job struct {
	id   string
	spec JobSpec
	prog *jobProgram
	ctx  context.Context
	// cancel cancels the job's context with a cause; runJob classifies the
	// terminal status from it.
	cancel context.CancelCauseFunc
	// done closes when the job reaches a terminal status.
	done chan struct{}
	hub  *streamHub

	mu         sync.Mutex
	status     Status
	result     any
	errMsg     string
	checkpoint string
	submitted  time.Time
	started    time.Time
	finished   time.Time
}

// ID returns the job's identifier.
func (j *Job) ID() string { return j.id }

// Done returns a channel closed when the job reaches a terminal status.
func (j *Job) Done() <-chan struct{} { return j.done }

// JobView is the JSON shape of a job's state.
type JobView struct {
	ID         string  `json:"id"`
	App        string  `json:"app"`
	Status     Status  `json:"status"`
	Spec       JobSpec `json:"spec"`
	Submitted  string  `json:"submitted,omitempty"`
	Started    string  `json:"started,omitempty"`
	Finished   string  `json:"finished,omitempty"`
	Result     any     `json:"result,omitempty"`
	Error      string  `json:"error,omitempty"`
	Checkpoint string  `json:"checkpoint,omitempty"`
}

// View snapshots the job.
func (j *Job) View() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobView{
		ID:         j.id,
		App:        j.spec.App,
		Status:     j.status,
		Spec:       j.spec,
		Submitted:  rfc3339OrEmpty(j.submitted),
		Started:    rfc3339OrEmpty(j.started),
		Finished:   rfc3339OrEmpty(j.finished),
		Result:     j.result,
		Error:      j.errMsg,
		Checkpoint: j.checkpoint,
	}
}

// Server is the multi-tenant analytics job service: admission control in
// Submit, a worker pool draining the bounded queue, per-job cancellation
// through each job's context, and streaming results through per-job hubs.
type Server struct {
	cfg Config
	met serveMetrics

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string
	draining bool
	seq      int

	queue chan *Job
	quit  chan struct{}
	wg    sync.WaitGroup
}

// NewServer creates the service and starts its worker pool.
func NewServer(cfg Config) *Server {
	if cfg.Queue <= 0 {
		cfg.Queue = 16
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.Registry == nil {
		cfg.Registry = obs.DefaultRegistry()
	}
	s := &Server{
		cfg:   cfg,
		met:   newServeMetrics(cfg.Registry),
		jobs:  make(map[string]*Job),
		queue: make(chan *Job, cfg.Queue),
		quit:  make(chan struct{}),
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Submit builds the spec's job and admits it to the queue. It never blocks:
// a full queue returns ErrQueueFull, a pressured memory node ErrMemPressure,
// a draining server ErrDraining, and a bad spec the builder's error. On
// success the job is queued and will run when a worker frees up.
func (s *Server) Submit(spec JobSpec) (*Job, error) {
	norm, prog, err := buildJob(spec, s.cfg.Mem)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		s.met.rejectsDraining.Inc()
		return nil, ErrDraining
	}
	if s.cfg.Mem != nil && s.cfg.Mem.Pressured() {
		s.met.rejectsPressure.Inc()
		return nil, ErrMemPressure
	}
	s.seq++
	ctx, cancel := context.WithCancelCause(context.Background())
	j := &Job{
		id:        fmt.Sprintf("job-%04d", s.seq),
		spec:      norm,
		prog:      prog,
		ctx:       ctx,
		cancel:    cancel,
		done:      make(chan struct{}),
		hub:       newStreamHub(),
		status:    StatusQueued,
		submitted: time.Now(),
	}
	select {
	case s.queue <- j:
	default:
		s.seq--
		cancel(ErrQueueFull)
		s.met.rejectsQueueFull.Inc()
		return nil, ErrQueueFull
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.met.queueDepth.Add(1)
	return j, nil
}

// Get returns a job by id.
func (s *Server) Get(id string) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	return j, nil
}

// List returns every job's view in submission order.
func (s *Server) List() []JobView {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobView, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id].View())
	}
	return out
}

// Cancel stops a job: a queued job is finished immediately (the worker will
// skip it), a running job's context is cancelled and the reduction stops
// within one chunk per thread.
func (s *Server) Cancel(id string, cause error) error {
	j, err := s.Get(id)
	if err != nil {
		return err
	}
	if cause == nil {
		cause = errors.New("serve: cancelled by client")
	}
	j.mu.Lock()
	if j.status.terminal() {
		j.mu.Unlock()
		return nil
	}
	queued := j.status == StatusQueued
	j.mu.Unlock()
	j.cancel(cause)
	if queued {
		s.finish(j, StatusQueued, StatusCancelled, nil, cause.Error(), "")
	}
	return nil
}

// worker drains the queue until Drain closes quit.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.quit:
			return
		case j := <-s.queue:
			s.met.queueDepth.Add(-1)
			s.runJob(j)
		}
	}
}

// deadlineFor resolves a job's execution deadline: spec override, server
// default, or none.
func (s *Server) deadlineFor(j *Job) time.Duration {
	if j.spec.DeadlineMS > 0 {
		return time.Duration(j.spec.DeadlineMS) * time.Millisecond
	}
	if j.spec.DeadlineMS < 0 {
		return 0
	}
	return s.cfg.DefaultDeadline
}

// runJob executes one admitted job and classifies its terminal state.
func (s *Server) runJob(j *Job) {
	j.mu.Lock()
	if j.status != StatusQueued {
		// Cancelled or drain-rejected while still in the queue channel.
		j.mu.Unlock()
		return
	}
	j.status = StatusRunning
	j.started = time.Now()
	queueWait := j.started.Sub(j.submitted)
	j.mu.Unlock()
	s.met.queueSeconds.Observe(queueWait.Seconds())
	s.met.inflight.Add(1)
	defer s.met.inflight.Add(-1)

	ctx := j.ctx
	if d := s.deadlineFor(j); d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	// Run under job-identity pprof labels: every goroutine the program
	// spawns (engine workers included) inherits them, so a CPU or heap
	// profile scraped from /debug/pprof attributes samples to the job,
	// tenant and app — the scheduler adds phase/engine labels underneath.
	tenant := j.spec.Tenant
	if tenant == "" {
		tenant = "default"
	}
	var result any
	var err error
	pprof.Do(ctx, pprof.Labels("job", j.id, "tenant", tenant, "app", j.spec.App),
		func(ctx context.Context) {
			result, err = j.prog.run(ctx, j.hub.emit)
		})
	switch {
	case err == nil:
		s.finish(j, StatusRunning, StatusDone, result, "", "")
	case context.Cause(j.ctx) == errDrainCheckpoint && j.prog.checkpoint != nil:
		path := filepath.Join(s.checkpointDir(), j.id+".ck")
		if ckErr := j.prog.checkpoint(path); ckErr != nil {
			s.finish(j, StatusRunning, StatusFailed, nil,
				fmt.Sprintf("drain checkpoint failed: %v (run: %v)", ckErr, err), "")
			return
		}
		s.finish(j, StatusRunning, StatusCheckpointed, nil, err.Error(), path)
	case ctx.Err() != nil:
		s.finish(j, StatusRunning, StatusCancelled, nil, err.Error(), "")
	default:
		s.finish(j, StatusRunning, StatusFailed, nil, err.Error(), "")
	}
}

func (s *Server) checkpointDir() string {
	if s.cfg.CheckpointDir != "" {
		return s.cfg.CheckpointDir
	}
	return "."
}

// finish moves j from an expected non-terminal status to a terminal one,
// closing its done channel and stream hub and recording the outcome
// metrics. It reports whether the transition applied; it is a no-op when
// the job already left the expected status (e.g. a cancel raced a drain
// flush).
func (s *Server) finish(j *Job, from, to Status, result any, errMsg, ckpath string) bool {
	j.mu.Lock()
	if j.status != from {
		j.mu.Unlock()
		return false
	}
	j.status = to
	j.result = result
	j.errMsg = errMsg
	j.checkpoint = ckpath
	j.finished = time.Now()
	started := j.started
	j.mu.Unlock()

	final := StreamRecord{Job: j.id}
	switch to {
	case StatusDone:
		final.Type = "result"
		final.Value = result
		s.met.jobsDone.Inc()
	case StatusFailed:
		final.Type = "error"
		final.Error = errMsg
		s.met.jobsFailed.Inc()
	case StatusCancelled:
		final.Type = "cancelled"
		final.Error = errMsg
		s.met.jobsCancelled.Inc()
	case StatusCheckpointed:
		final.Type = "checkpointed"
		final.Checkpoint = ckpath
		s.met.jobsCheckpointed.Inc()
	case StatusRejected:
		final.Type = "rejected"
		final.Error = errMsg
	}
	j.hub.close(final)
	s.met.streamDropped.Add(j.hub.droppedCount())
	if !started.IsZero() {
		s.met.jobSeconds.Observe(time.Since(started).Seconds())
	}
	close(j.done)
	return true
}

// Drain gracefully shuts the server down: new submissions are refused,
// queued jobs that never started are rejected, and in-flight jobs get the
// grace period to finish on their own. Jobs still running when it expires
// are cancelled with a checkpoint cause — checkpointable applications
// persist their combination map to CheckpointDir and finish as
// StatusCheckpointed; the rest finish as StatusCancelled. Drain returns
// once every job is terminal and the workers have exited.
func (s *Server) Drain(grace time.Duration) {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.draining = true
	s.mu.Unlock()

	// Flush the queue: anything a worker has not picked up is rejected.
	// A worker may race us to a queued job — it then runs under the grace
	// period like any other in-flight job.
	for {
		select {
		case j := <-s.queue:
			s.met.queueDepth.Add(-1)
			if s.finish(j, StatusQueued, StatusRejected, nil, ErrDraining.Error(), "") {
				s.met.rejectsDraining.Inc()
			}
		default:
			goto flushed
		}
	}
flushed:
	close(s.quit)

	s.mu.Lock()
	var inflight []*Job
	for _, id := range s.order {
		j := s.jobs[id]
		j.mu.Lock()
		if !j.status.terminal() {
			inflight = append(inflight, j)
		}
		j.mu.Unlock()
	}
	s.mu.Unlock()

	allDone := make(chan struct{})
	go func() {
		for _, j := range inflight {
			<-j.done
		}
		close(allDone)
	}()
	select {
	case <-allDone:
	case <-time.After(grace):
		for _, j := range inflight {
			j.cancel(errDrainCheckpoint)
		}
		<-allDone
	}
	s.wg.Wait()
}

// Draining reports whether Drain has been called.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}
