package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"strings"
	"sync"
	"time"

	"github.com/scipioneer/smart/internal/memmodel"
	"github.com/scipioneer/smart/internal/obs"
)

// Admission errors. Submit returns exactly one of these when a well-formed
// job cannot be admitted; any other Submit error means the spec itself is
// invalid (the HTTP layer maps the distinction to 429/503 versus 400).
var (
	// ErrQueueFull reports that the bounded job queue is at capacity.
	ErrQueueFull = errors.New("serve: job queue full")
	// ErrMemPressure reports that the memory node is above its high-water
	// mark — the server refuses work rather than push the node into paging.
	ErrMemPressure = errors.New("serve: node under memory pressure")
	// ErrDraining reports that the server is shutting down.
	ErrDraining = errors.New("serve: server draining")
	// ErrNotFound reports an unknown job id.
	ErrNotFound = errors.New("serve: no such job")
)

// ErrDrainCheckpoint is the cancellation cause Drain uses when the grace
// period expires: runJob (and a cluster Executor) recognizes it and
// checkpoints the job's state instead of discarding it.
var ErrDrainCheckpoint = errors.New("serve: drain grace expired, checkpointing")

// Status is a job's lifecycle state.
type Status string

const (
	// StatusQueued: admitted, waiting for a worker.
	StatusQueued Status = "queued"
	// StatusRunning: executing on a worker.
	StatusRunning Status = "running"
	// StatusDone: finished successfully; Result holds the output.
	StatusDone Status = "done"
	// StatusFailed: the application returned an error.
	StatusFailed Status = "failed"
	// StatusCancelled: stopped by client cancel or deadline.
	StatusCancelled Status = "cancelled"
	// StatusCheckpointed: stopped by drain with its state persisted.
	StatusCheckpointed Status = "checkpointed"
	// StatusRejected: flushed from the queue by a drain before running.
	StatusRejected Status = "rejected"
)

// terminal reports whether a status is final.
func (st Status) terminal() bool {
	return st != StatusQueued && st != StatusRunning
}

// RemoteJob is an admitted job handed to a Config.Executor: everything an
// external execution plane (the cluster dispatcher) needs to run it and
// stream its records back.
type RemoteJob struct {
	// ID is the job's service-wide identifier.
	ID string
	// Spec is the normalized job spec.
	Spec JobSpec
	// Trace is the job's root trace context; the executor should thread it
	// through dispatch and execution so the job's spans across ranks stitch
	// into one trace.
	Trace obs.TraceContext
	// Emit forwards a stream record into the job's NDJSON stream. Safe for
	// concurrent use.
	Emit func(StreamRecord)
	// ResumeCheckpoint, when non-empty, is a checkpoint file the job's
	// combination map must be restored from before running, with
	// ResumeSteps already-analyzed time-steps to skip.
	ResumeCheckpoint string
	// ResumeSteps is the number of completed steps the checkpoint covers.
	ResumeSteps int
}

// Executor runs admitted jobs somewhere other than the local worker pool —
// the cluster dispatcher implements it. Execute blocks until the job is
// terminal: a nil error with the result value, a *CheckpointedError when a
// drain-cancelled job was checkpointed, a context error for cancellation,
// any other error for failure.
type Executor interface {
	Execute(ctx context.Context, job RemoteJob) (any, error)
}

// CheckpointedError is returned by an Executor when a drain-cancelled job
// was persisted instead of discarded.
type CheckpointedError struct {
	// Path is the written checkpoint file.
	Path string
	// StepsDone is the number of completed time-steps the checkpoint covers.
	StepsDone int
}

func (e *CheckpointedError) Error() string {
	return fmt.Sprintf("serve: checkpointed after %d steps to %s", e.StepsDone, e.Path)
}

// Config configures a Server.
type Config struct {
	// Queue is the bounded job-queue capacity (default 16). A Submit that
	// finds the queue full fails with ErrQueueFull instead of blocking.
	Queue int
	// Workers is the worker-pool size — how many jobs execute concurrently
	// (default 2). In cluster mode (Executor set) it caps the jobs in
	// flight on the cluster at once.
	Workers int
	// Tenants maps tenant names to their fair-queueing configuration
	// (weight, in-flight quota, priority class). Tenants absent from the
	// map get weight 1, no quota, class "normal".
	Tenants map[string]TenantConfig
	// Executor, when non-nil, replaces local execution: admitted jobs are
	// handed to it (the cluster dispatcher) instead of running on this
	// process's schedulers. Specs are still fully validated at Submit.
	Executor Executor
	// Mem, when non-nil, is the virtual memory node jobs charge their
	// runtime structures against and the admission signal: submissions are
	// rejected while the node is above its high-water mark.
	Mem *memmodel.Node
	// DefaultDeadline caps a job's execution time when its spec does not
	// set one; zero means no default deadline.
	DefaultDeadline time.Duration
	// CheckpointDir receives <job-id>.ck files written when a drain
	// interrupts a checkpointable job (default os.TempDir()).
	CheckpointDir string
	// Registry receives the service metrics (default obs.DefaultRegistry()).
	Registry *obs.Registry
}

// Job is one submitted analytics job. All exported access goes through
// View, Done and the Server methods; fields are guarded by mu.
type Job struct {
	id     string
	spec   JobSpec
	tenant string
	prog   *jobProgram
	ctx    context.Context
	// cancel cancels the job's context with a cause; runJob classifies the
	// terminal status from it.
	cancel context.CancelCauseFunc
	// done closes when the job reaches a terminal status.
	done chan struct{}
	hub  *streamHub

	// vstart and vfinish are the WFQ virtual time tags stamped at admission.
	vstart, vfinish float64
	// resumeCkpt and resumeSteps carry a restored job's checkpoint: the
	// combination map file to load before running and the completed steps
	// it covers. resumeSidecar is the restart metadata file, deleted with
	// the checkpoint when the job finishes for good.
	resumeCkpt    string
	resumeSteps   int
	resumeSidecar string

	mu         sync.Mutex
	status     Status
	result     any
	errMsg     string
	checkpoint string
	submitted  time.Time
	started    time.Time
	finished   time.Time
}

// ID returns the job's identifier.
func (j *Job) ID() string { return j.id }

// Done returns a channel closed when the job reaches a terminal status.
func (j *Job) Done() <-chan struct{} { return j.done }

// JobView is the JSON shape of a job's state.
type JobView struct {
	ID         string  `json:"id"`
	App        string  `json:"app"`
	Status     Status  `json:"status"`
	Spec       JobSpec `json:"spec"`
	Submitted  string  `json:"submitted,omitempty"`
	Started    string  `json:"started,omitempty"`
	Finished   string  `json:"finished,omitempty"`
	Result     any     `json:"result,omitempty"`
	Error      string  `json:"error,omitempty"`
	Checkpoint string  `json:"checkpoint,omitempty"`
}

// View snapshots the job.
func (j *Job) View() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobView{
		ID:         j.id,
		App:        j.spec.App,
		Status:     j.status,
		Spec:       j.spec,
		Submitted:  rfc3339OrEmpty(j.submitted),
		Started:    rfc3339OrEmpty(j.started),
		Finished:   rfc3339OrEmpty(j.finished),
		Result:     j.result,
		Error:      j.errMsg,
		Checkpoint: j.checkpoint,
	}
}

// Server is the multi-tenant analytics job service: admission control in
// Submit, weighted fair queueing across tenants, a worker pool draining the
// queue (or handing jobs to a cluster Executor), per-job cancellation
// through each job's context, and streaming results through per-job hubs.
type Server struct {
	cfg Config
	met serveMetrics

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string
	draining bool
	seq      int

	queue *wfq
	wg    sync.WaitGroup
}

// NewServer creates the service and starts its worker pool.
func NewServer(cfg Config) *Server {
	if cfg.Queue <= 0 {
		cfg.Queue = 16
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.Registry == nil {
		cfg.Registry = obs.DefaultRegistry()
	}
	s := &Server{
		cfg:   cfg,
		met:   newServeMetrics(cfg.Registry),
		jobs:  make(map[string]*Job),
		queue: newWFQ(cfg.Queue, cfg.Tenants),
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// tenantOf resolves a spec's tenant name (default "default").
func tenantOf(spec JobSpec) string {
	if spec.Tenant == "" {
		return "default"
	}
	return spec.Tenant
}

// Submit builds the spec's job and admits it to the queue. It never blocks:
// a full queue returns ErrQueueFull, a pressured memory node ErrMemPressure,
// a draining server ErrDraining, and a bad spec the builder's error. On
// success the job is queued (stamped with its tenant's fair-queueing tags)
// and will run when a worker frees up and the tenant is under quota.
func (s *Server) Submit(spec JobSpec) (*Job, error) {
	// The spec is compiled even in cluster mode, where the program runs on
	// a worker rank instead: construction is the full validation pass, so a
	// bad spec is a 400 at the front door, not a failure on a remote rank.
	// The validation build charges no memory — the real build happens where
	// the job runs.
	buildMem := s.cfg.Mem
	if s.cfg.Executor != nil {
		buildMem = nil
	}
	norm, prog, err := buildJob(spec, buildMem, nil)
	if err != nil {
		return nil, err
	}
	if s.cfg.Executor != nil {
		// Standing queries hold per-window state on the node that feeds
		// them; dispatching one to a remote rank would strand that state.
		if norm.Kind == KindStanding {
			return nil, fmt.Errorf("serve: standing queries run on the serving node only, not in cluster mode")
		}
		prog = nil
	}
	return s.admit(norm, prog, "", 0, "")
}

// admit registers and enqueues a compiled job.
func (s *Server) admit(norm JobSpec, prog *jobProgram, resumeCkpt string, resumeSteps int, sidecar string) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		s.met.rejectsDraining.Inc()
		return nil, ErrDraining
	}
	if s.cfg.Mem != nil && s.cfg.Mem.Pressured() {
		s.met.rejectsPressure.Inc()
		return nil, ErrMemPressure
	}
	s.seq++
	ctx, cancel := context.WithCancelCause(context.Background())
	j := &Job{
		id:            fmt.Sprintf("job-%04d", s.seq),
		spec:          norm,
		tenant:        tenantOf(norm),
		prog:          prog,
		ctx:           ctx,
		cancel:        cancel,
		done:          make(chan struct{}),
		hub:           newStreamHub(),
		status:        StatusQueued,
		submitted:     time.Now(),
		resumeCkpt:    resumeCkpt,
		resumeSteps:   resumeSteps,
		resumeSidecar: sidecar,
	}
	if err := s.queue.push(j, j.tenant); err != nil {
		s.seq--
		cancel(err)
		switch {
		case errors.Is(err, ErrQueueFull):
			s.met.rejectsQueueFull.Inc()
		case errors.Is(err, ErrDraining):
			s.met.rejectsDraining.Inc()
		}
		return nil, err
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.met.queueDepth.Add(1)
	return j, nil
}

// Get returns a job by id.
func (s *Server) Get(id string) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	return j, nil
}

// List returns every job's view in submission order.
func (s *Server) List() []JobView {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobView, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id].View())
	}
	return out
}

// Cancel stops a job: a queued job is finished immediately (the worker will
// skip it), a running job's context is cancelled and the reduction stops
// within one chunk per thread.
func (s *Server) Cancel(id string, cause error) error {
	j, err := s.Get(id)
	if err != nil {
		return err
	}
	if cause == nil {
		cause = errors.New("serve: cancelled by client")
	}
	j.mu.Lock()
	if j.status.terminal() {
		j.mu.Unlock()
		return nil
	}
	queued := j.status == StatusQueued
	j.mu.Unlock()
	j.cancel(cause)
	if queued {
		s.finish(j, StatusQueued, StatusCancelled, nil, cause.Error(), "")
	}
	return nil
}

// worker drains the queue until Drain closes it. The in-flight quota slot
// charged by pop is released when runJob returns — including the skip path
// for jobs cancelled while queued.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		j := s.queue.pop()
		if j == nil {
			return
		}
		s.met.queueDepth.Add(-1)
		s.runJob(j)
		s.queue.release(j.tenant)
	}
}

// deadlineFor resolves a job's execution deadline: spec override, server
// default, or none.
func (s *Server) deadlineFor(j *Job) time.Duration {
	if j.spec.DeadlineMS > 0 {
		return time.Duration(j.spec.DeadlineMS) * time.Millisecond
	}
	if j.spec.DeadlineMS < 0 {
		return 0
	}
	return s.cfg.DefaultDeadline
}

// runJob executes one admitted job and classifies its terminal state.
func (s *Server) runJob(j *Job) {
	j.mu.Lock()
	if j.status != StatusQueued {
		// Cancelled or drain-rejected while still in the queue.
		j.mu.Unlock()
		return
	}
	j.status = StatusRunning
	j.started = time.Now()
	queueWait := j.started.Sub(j.submitted)
	j.mu.Unlock()
	s.met.queueSeconds.Observe(queueWait.Seconds())
	s.met.tenantQueueWait(j.tenant).Observe(queueWait.Seconds())
	s.met.inflight.Add(1)
	defer s.met.inflight.Add(-1)

	ctx := j.ctx
	if d := s.deadlineFor(j); d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}

	// One root span per job: the scheduler's phase spans (local execution)
	// or the cluster's dispatch/execute/retry spans all parent under it, so
	// a stitched Chrome trace shows each job as one tree across ranks.
	root := obs.Default().StartSpan(obs.TraceContext{}, "serve", "job "+j.id)
	root.SetAttr("app", j.spec.App)
	root.SetAttr("tenant", j.tenant)
	defer root.End()

	var result any
	var err error
	if s.cfg.Executor != nil {
		result, err = s.cfg.Executor.Execute(ctx, RemoteJob{
			ID:               j.id,
			Spec:             j.spec,
			Trace:            root.Context(),
			Emit:             j.hub.emit,
			ResumeCheckpoint: j.resumeCkpt,
			ResumeSteps:      j.resumeSteps,
		})
	} else {
		result, err = s.runLocal(ctx, j, root.Context())
	}

	var ck *CheckpointedError
	switch {
	case err == nil:
		s.gcCheckpoints(j)
		s.finish(j, StatusRunning, StatusDone, result, "", "")
	case errors.As(err, &ck):
		s.finish(j, StatusRunning, StatusCheckpointed, nil, ErrDrainCheckpoint.Error(), ck.Path)
	case context.Cause(j.ctx) == ErrDrainCheckpoint && j.prog != nil && j.prog.checkpoint != nil:
		path := filepath.Join(s.checkpointDir(), j.id+".ck")
		if ckErr := s.writeJobCheckpoint(j, path); ckErr != nil {
			s.finish(j, StatusRunning, StatusFailed, nil,
				fmt.Sprintf("drain checkpoint failed: %v (run: %v)", ckErr, err), "")
			return
		}
		s.finish(j, StatusRunning, StatusCheckpointed, nil, err.Error(), path)
	case ctx.Err() != nil:
		s.finish(j, StatusRunning, StatusCancelled, nil, err.Error(), "")
	default:
		s.gcCheckpoints(j)
		s.finish(j, StatusRunning, StatusFailed, nil, err.Error(), "")
	}
}

// runLocal executes a job on this process's schedulers, restoring a resumed
// job's checkpoint first.
func (s *Server) runLocal(ctx context.Context, j *Job, tc obs.TraceContext) (any, error) {
	if j.resumeCkpt != "" {
		if j.prog.restore == nil {
			return nil, fmt.Errorf("serve: job %s has a checkpoint but app %q cannot restore", j.id, j.spec.App)
		}
		if err := j.prog.restore(j.resumeCkpt); err != nil {
			return nil, err
		}
		if j.prog.setSkip != nil {
			j.prog.setSkip(j.resumeSteps)
		}
	}
	if j.prog.setTrace != nil {
		j.prog.setTrace(tc)
	}
	// Run under job-identity pprof labels: every goroutine the program
	// spawns (engine workers included) inherits them, so a CPU or heap
	// profile scraped from /debug/pprof attributes samples to the job,
	// tenant and app — the scheduler adds phase/engine labels underneath.
	var result any
	var err error
	pprof.Do(ctx, pprof.Labels("job", j.id, "tenant", j.tenant, "app", j.spec.App),
		func(ctx context.Context) {
			result, err = j.prog.run(ctx, j.hub.emit)
		})
	return result, err
}

// writeJobCheckpoint persists a drained job's combination map plus the
// resume sidecar (spec and completed-step count) a future server needs to
// pick the job back up.
func (s *Server) writeJobCheckpoint(j *Job, path string) error {
	if err := j.prog.checkpoint(path); err != nil {
		return err
	}
	steps := 0
	if j.prog.stepsDone != nil {
		steps = j.prog.stepsDone()
	}
	return writeResumeSidecar(sidecarPath(path), j.spec, steps)
}

// resumeSidecar is the restart metadata persisted next to a drain
// checkpoint: everything a future server needs to re-admit the job.
type resumeSidecar struct {
	Spec      JobSpec `json:"spec"`
	StepsDone int     `json:"steps_done"`
	// Checkpoint is the combination-map file, relative to the sidecar.
	Checkpoint string `json:"checkpoint"`
}

// sidecarPath maps a checkpoint path to its sidecar path.
func sidecarPath(ckPath string) string {
	return strings.TrimSuffix(ckPath, ".ck") + ".resume.json"
}

func writeResumeSidecar(path string, spec JobSpec, stepsDone int) error {
	sc := resumeSidecar{Spec: spec, StepsDone: stepsDone,
		Checkpoint: strings.TrimSuffix(filepath.Base(path), ".resume.json") + ".ck"}
	buf, err := json.Marshal(sc)
	if err != nil {
		return fmt.Errorf("serve: encode resume sidecar: %w", err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return fmt.Errorf("serve: write resume sidecar: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("serve: publish resume sidecar: %w", err)
	}
	return nil
}

// WriteResumeArtifacts persists checkpoint bytes received from a remote
// executor as dir/<id>.ck plus the resume sidecar RestoreCheckpoints looks
// for, and returns the checkpoint path. The cluster dispatcher uses it when
// a drained worker uploads its final state: the bytes cross the wire, the
// durable files live on the coordinator.
func WriteResumeArtifacts(dir, id string, spec JobSpec, ck []byte, steps int) (string, error) {
	ckPath := filepath.Join(dir, id+".ck")
	tmp := ckPath + ".tmp"
	if err := os.WriteFile(tmp, ck, 0o644); err != nil {
		return "", err
	}
	if err := os.Rename(tmp, ckPath); err != nil {
		os.Remove(tmp)
		return "", err
	}
	if err := writeResumeSidecar(sidecarPath(ckPath), spec, steps); err != nil {
		return "", err
	}
	return ckPath, nil
}

// RestoreCheckpoints scans the checkpoint directory for jobs a previous
// server drained and re-admits each one at the head of the queue: restored
// jobs carry the earliest virtual-finish tags (the queue is empty when this
// runs), so they execute before anything submitted afterwards. Call it
// right after NewServer, before serving HTTP. Restored jobs resume from
// their checkpointed combination map, skipping the steps already analyzed.
// It returns the restored job ids; unreadable sidecars are skipped with an
// error in the second return.
func (s *Server) RestoreCheckpoints() ([]string, error) {
	dir := s.checkpointDir()
	matches, err := filepath.Glob(filepath.Join(dir, "*.resume.json"))
	if err != nil {
		return nil, err
	}
	var ids []string
	var firstErr error
	for _, sidecar := range matches {
		buf, err := os.ReadFile(sidecar)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		var sc resumeSidecar
		if err := json.Unmarshal(buf, &sc); err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("serve: bad resume sidecar %s: %w", sidecar, err)
			}
			continue
		}
		ckPath := filepath.Join(dir, sc.Checkpoint)
		var prog *jobProgram
		if s.cfg.Executor == nil {
			_, prog, err = buildJob(sc.Spec, s.cfg.Mem, nil)
			if err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("serve: rebuild %s: %w", sidecar, err)
				}
				continue
			}
		}
		j, err := s.admit(sc.Spec, prog, ckPath, sc.StepsDone, sidecar)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		s.met.restored.Inc()
		ids = append(ids, j.id)
	}
	return ids, firstErr
}

// gcCheckpoints deletes a restored job's checkpoint and sidecar once the
// job no longer needs them: it completed, or failed terminally (a failed
// job would fail the same way again — the files only pin disk).
func (s *Server) gcCheckpoints(j *Job) {
	if j.resumeCkpt == "" {
		return
	}
	os.Remove(j.resumeCkpt)
	if j.resumeSidecar != "" {
		os.Remove(j.resumeSidecar)
	}
	s.met.checkpointsGCd.Inc()
}

func (s *Server) checkpointDir() string {
	if s.cfg.CheckpointDir != "" {
		return s.cfg.CheckpointDir
	}
	return "."
}

// finish moves j from an expected non-terminal status to a terminal one,
// closing its done channel and stream hub and recording the outcome
// metrics. It reports whether the transition applied; it is a no-op when
// the job already left the expected status (e.g. a cancel raced a drain
// flush).
func (s *Server) finish(j *Job, from, to Status, result any, errMsg, ckpath string) bool {
	j.mu.Lock()
	if j.status != from {
		j.mu.Unlock()
		return false
	}
	j.status = to
	j.result = result
	j.errMsg = errMsg
	j.checkpoint = ckpath
	j.finished = time.Now()
	started := j.started
	j.mu.Unlock()

	final := StreamRecord{Job: j.id}
	switch to {
	case StatusDone:
		final.Type = "result"
		final.Value = result
		s.met.jobsDone.Inc()
	case StatusFailed:
		final.Type = "error"
		final.Error = errMsg
		s.met.jobsFailed.Inc()
	case StatusCancelled:
		final.Type = "cancelled"
		final.Error = errMsg
		s.met.jobsCancelled.Inc()
	case StatusCheckpointed:
		final.Type = "checkpointed"
		final.Checkpoint = ckpath
		s.met.jobsCheckpointed.Inc()
	case StatusRejected:
		final.Type = "rejected"
		final.Error = errMsg
	}
	j.hub.close(final)
	s.met.streamDropped.Add(j.hub.droppedCount())
	if !started.IsZero() {
		s.met.jobSeconds.Observe(time.Since(started).Seconds())
	}
	close(j.done)
	return true
}

// Drain gracefully shuts the server down: new submissions are refused,
// queued jobs that never started are rejected, and in-flight jobs get the
// grace period to finish on their own. Jobs still running when it expires
// are cancelled with a checkpoint cause — checkpointable applications
// persist their combination map (plus a resume sidecar) to CheckpointDir
// and finish as StatusCheckpointed; the rest finish as StatusCancelled.
// Drain returns once every job is terminal and the workers have exited.
func (s *Server) Drain(grace time.Duration) {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.draining = true
	s.mu.Unlock()

	// Flush the queue: anything a worker has not picked up is rejected.
	// A worker may race us to a queued job — it then runs under the grace
	// period like any other in-flight job.
	for _, j := range s.queue.flush() {
		s.met.queueDepth.Add(-1)
		if s.finish(j, StatusQueued, StatusRejected, nil, ErrDraining.Error(), "") {
			s.met.rejectsDraining.Inc()
		}
	}
	s.queue.close()

	s.mu.Lock()
	var inflight []*Job
	for _, id := range s.order {
		j := s.jobs[id]
		j.mu.Lock()
		if !j.status.terminal() {
			inflight = append(inflight, j)
		}
		j.mu.Unlock()
	}
	s.mu.Unlock()

	allDone := make(chan struct{})
	go func() {
		for _, j := range inflight {
			<-j.done
		}
		close(allDone)
	}()
	select {
	case <-allDone:
	case <-time.After(grace):
		for _, j := range inflight {
			j.cancel(ErrDrainCheckpoint)
		}
		<-allDone
	}
	s.wg.Wait()
}

// Draining reports whether Drain has been called.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}
