package serve

import (
	"fmt"
	"sync"
)

// Priority classes a tenant may be placed in. A class is a weight
// multiplier, not a strict priority level: "high" tenants drain four times
// faster than "normal" ones of equal weight, but a backlogged "low" tenant
// still makes progress at a guaranteed rate. Strict priorities would make
// starvation-freedom depend on the high class going idle; multipliers keep
// it unconditional.
const (
	ClassHigh   = "high"
	ClassNormal = "normal"
	ClassLow    = "low"
)

// classFactor maps a priority class to its weight multiplier.
func classFactor(class string) (float64, error) {
	switch class {
	case "", ClassNormal:
		return 1, nil
	case ClassHigh:
		return 4, nil
	case ClassLow:
		return 0.25, nil
	default:
		return 0, fmt.Errorf("serve: unknown priority class %q (have %q, %q, %q)",
			class, ClassHigh, ClassNormal, ClassLow)
	}
}

// TenantConfig shapes one tenant's share of the service.
type TenantConfig struct {
	// Weight is the tenant's fair-queueing weight; a weight-2 tenant drains
	// twice as fast as a weight-1 tenant when both are backlogged. Zero
	// means the default weight 1. Negative weights are rejected.
	Weight float64 `json:"weight,omitempty"`
	// Quota caps the tenant's in-flight (executing) jobs; its queued jobs
	// beyond the cap wait even when workers are idle. Zero means no cap.
	Quota int `json:"quota,omitempty"`
	// Class is the tenant's priority class: "high", "normal" (default) or
	// "low". The class multiplies the weight (×4, ×1, ×0.25).
	Class string `json:"class,omitempty"`
}

// effectiveWeight resolves the tenant's scheduling weight.
func (tc TenantConfig) effectiveWeight() (float64, error) {
	w := tc.Weight
	if w == 0 {
		w = 1
	}
	if w < 0 {
		return 0, fmt.Errorf("serve: negative tenant weight %v", w)
	}
	f, err := classFactor(tc.Class)
	if err != nil {
		return 0, err
	}
	return w * f, nil
}

// wfqTenant is one tenant's scheduling state inside the queue.
type wfqTenant struct {
	name   string
	weight float64
	quota  int
	// virtualFinish is the finish tag assigned to the tenant's most
	// recently enqueued job; the next job of a busy tenant starts where
	// this one finished, which is what spaces a tenant's jobs 1/weight
	// apart in virtual time.
	virtualFinish float64
	// queue is the tenant's FIFO backlog; fairness is across tenants, not
	// within one.
	queue []*Job
	// inflight counts the tenant's executing jobs against its quota.
	inflight int
}

// wfq is a weighted fair queue over tenants, the replacement for the
// service's old single bounded FIFO. Each job is stamped with a virtual
// finish time F = max(V, tenant.lastFinish) + 1/weight where V is the
// queue's virtual clock; pop takes the eligible job with the smallest
// stamp. The scheme is classic WFQ with unit job cost: when several
// tenants are backlogged their throughput shares converge to their weight
// ratio, and every backlogged tenant's head job has a finite stamp, so no
// tenant starves no matter how adversarial the arrival pattern is.
// Per-tenant quotas gate eligibility only — a tenant at its in-flight cap
// keeps its backlog and its stamps, it just cannot occupy another worker
// until one of its jobs finishes.
type wfq struct {
	mu   sync.Mutex
	cond *sync.Cond
	// capacity bounds the total queued (not in-flight) jobs.
	capacity int
	size     int
	// vtime is the queue's virtual clock; it advances to the start tag of
	// every popped job so idle periods do not build up credit.
	vtime   float64
	tenants map[string]*wfqTenant
	config  map[string]TenantConfig
	closed  bool
}

func newWFQ(capacity int, config map[string]TenantConfig) *wfq {
	q := &wfq{capacity: capacity, tenants: make(map[string]*wfqTenant), config: config}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// tenant returns (creating on first use) the named tenant's state.
func (q *wfq) tenant(name string) (*wfqTenant, error) {
	if t, ok := q.tenants[name]; ok {
		return t, nil
	}
	cfg := q.config[name]
	w, err := cfg.effectiveWeight()
	if err != nil {
		return nil, err
	}
	t := &wfqTenant{name: name, weight: w, quota: cfg.Quota}
	q.tenants[name] = t
	return t, nil
}

// push enqueues j for its tenant, stamping its virtual start and finish
// tags. It fails with ErrQueueFull at capacity and never blocks.
func (q *wfq) push(j *Job, tenantName string) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrDraining
	}
	if q.size >= q.capacity {
		return ErrQueueFull
	}
	t, err := q.tenant(tenantName)
	if err != nil {
		return err
	}
	start := q.vtime
	if t.virtualFinish > start {
		start = t.virtualFinish
	}
	finish := start + 1/t.weight
	t.virtualFinish = finish
	j.vstart, j.vfinish = start, finish
	t.queue = append(t.queue, j)
	q.size++
	q.cond.Signal()
	return nil
}

// pop blocks until an eligible job is available (or the queue is closed and
// empty, returning nil) and dequeues the one with the smallest virtual
// finish tag among tenants under their in-flight quota. The popped job's
// tenant is charged an in-flight slot; the caller must release it with
// (*wfq).release when the job leaves execution.
func (q *wfq) pop() *Job {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if t := q.eligible(); t != nil {
			j := t.queue[0]
			t.queue = t.queue[1:]
			if len(t.queue) == 0 {
				t.queue = nil
			}
			q.size--
			t.inflight++
			if j.vstart > q.vtime {
				q.vtime = j.vstart
			}
			return j
		}
		if q.closed {
			return nil
		}
		q.cond.Wait()
	}
}

// eligible returns the backlogged under-quota tenant whose head job has the
// smallest virtual finish tag, nil when no job may start.
func (q *wfq) eligible() *wfqTenant {
	var best *wfqTenant
	for _, t := range q.tenants {
		if len(t.queue) == 0 {
			continue
		}
		if t.quota > 0 && t.inflight >= t.quota {
			continue
		}
		if best == nil || t.queue[0].vfinish < best.queue[0].vfinish ||
			(t.queue[0].vfinish == best.queue[0].vfinish && t.name < best.name) {
			best = t
		}
	}
	return best
}

// release returns a tenant's in-flight slot when one of its jobs reaches a
// terminal state, waking poppers that were gated on the quota.
func (q *wfq) release(tenantName string) {
	q.mu.Lock()
	if t, ok := q.tenants[tenantName]; ok && t.inflight > 0 {
		t.inflight--
	}
	q.mu.Unlock()
	q.cond.Broadcast()
}

// flush drains every queued job (in pop order, ignoring quotas) without
// charging in-flight slots, for the drain path to reject.
func (q *wfq) flush() []*Job {
	q.mu.Lock()
	defer q.mu.Unlock()
	var out []*Job
	for {
		var best *wfqTenant
		for _, t := range q.tenants {
			if len(t.queue) == 0 {
				continue
			}
			if best == nil || t.queue[0].vfinish < best.queue[0].vfinish {
				best = t
			}
		}
		if best == nil {
			return out
		}
		out = append(out, best.queue[0])
		best.queue = best.queue[1:]
		q.size--
	}
}

// close wakes blocked poppers; pop returns nil once the backlog is empty.
func (q *wfq) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

// depth reports the queued (not in-flight) job count.
func (q *wfq) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.size
}
