// Package serve runs Smart analytics as a multi-tenant service: clients
// submit typed job specs over HTTP, a weighted-fair queue with
// memmodel-backed admission control decides whether and when a job may
// enter, a worker pool executes admitted jobs on core.Scheduler with
// per-job deadlines and cancellation (or hands them to a cluster executor),
// and results stream back as NDJSON — early emissions and phase spans while
// the job runs, the final output when it converges. It is the service layer
// the paper's in-situ runtime lacks: the same node that hosts the simulation
// can answer ad-hoc analytics queries without being pushed into paging.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/scipioneer/smart/internal/analytics"
	"github.com/scipioneer/smart/internal/core"
	"github.com/scipioneer/smart/internal/insitu"
	"github.com/scipioneer/smart/internal/memmodel"
	"github.com/scipioneer/smart/internal/mpi"
	"github.com/scipioneer/smart/internal/obs"
	"github.com/scipioneer/smart/internal/sim"
	"github.com/scipioneer/smart/internal/stream"
)

// Params are the per-application knobs of a JobSpec. Unused fields are
// ignored by applications that do not read them; zero values select
// documented defaults.
type Params struct {
	// K and Dims parameterize k-means (clusters × dimensions) and logistic
	// regression (feature dimensions).
	K    int `json:"k,omitempty"`
	Dims int `json:"dims,omitempty"`
	// Iters is the iteration count per time-step for iterative applications
	// (k-means, logistic regression).
	Iters int `json:"iters,omitempty"`
	// Buckets is the histogram/mutual-information bucket count.
	Buckets int `json:"buckets,omitempty"`
	// Lo and Hi bound the value range for bucketed applications.
	Lo float64 `json:"lo,omitempty"`
	Hi float64 `json:"hi,omitempty"`
	// Window is the window size of the four window-based applications.
	Window int `json:"window,omitempty"`
	// Order is the Savitzky–Golay polynomial order.
	Order int `json:"order,omitempty"`
	// GridSize is the grid-aggregation/moments cell size in elements.
	GridSize int `json:"grid_size,omitempty"`
	// Rate is the logistic-regression learning rate.
	Rate float64 `json:"rate,omitempty"`
	// Bandwidth is the kernel-density bandwidth (0 = triangular default).
	Bandwidth float64 `json:"bandwidth,omitempty"`

	// WindowKind selects a standing query's event-time window assignment:
	// "tumbling" (default), "sliding", "session", or "global". Event time is
	// the simulation step index.
	WindowKind string `json:"window_kind,omitempty"`
	// WindowSize is the window width in steps (default 8); it is the
	// session gap when WindowKind is "session".
	WindowSize int64 `json:"window_size,omitempty"`
	// WindowSlide is the sliding-window stride in steps (default half the
	// size).
	WindowSlide int64 `json:"window_slide,omitempty"`
	// Late selects a standing query's late-data policy: "drop" (default)
	// discards events behind the watermark, "side_output" routes them to
	// "late" stream records.
	Late string `json:"late,omitempty"`
	// AllowedLateness widens the watermark heuristic by this many steps,
	// keeping windows open for out-of-order arrivals within the bound.
	AllowedLateness int64 `json:"allowed_lateness,omitempty"`
}

// JobSpec is a typed analytics job request: which registered application to
// run, over how much emulated simulation data, with what resources.
type JobSpec struct {
	// App names a registered application (see Apps).
	App string `json:"app"`
	// Kind selects the execution mode: "" or "batch" runs Steps time-steps
	// and returns one final result; "standing" compiles the application
	// into a continuous windowed query over the step stream — every fired
	// window streams out as a "window" record and a drain checkpoints the
	// open windows instead of a combination map. Standing jobs run on the
	// serving node only (rejected in cluster mode).
	Kind string `json:"kind,omitempty"`
	// Steps is the number of simulation time-steps to analyze (default 1).
	Steps int `json:"steps,omitempty"`
	// Elems is the number of float64 elements per time-step (default 65536).
	Elems int `json:"elems,omitempty"`
	// Seed makes the emulated data stream deterministic.
	Seed uint64 `json:"seed,omitempty"`
	// Threads is the scheduler's reduction thread count (default 2).
	Threads int `json:"threads,omitempty"`
	// Ranks is how many cluster worker ranks the job spans (default 1).
	// Multi-rank jobs partition the per-step data across their ranks and
	// run the global combination over a per-job sub-communicator; the
	// single-process server accepts but ignores values above 1.
	Ranks int `json:"ranks,omitempty"`
	// DeadlineMS caps the job's wall-clock run time in milliseconds; zero
	// uses the server default, negative means no deadline.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// Engine selects the scheduler's execution engine ("static" or
	// "stealing"); empty uses the scheduler default (static).
	Engine string `json:"engine,omitempty"`
	// MapImpl selects the scheduler's reduction-store implementation
	// ("gomap" or "arena"); empty uses the scheduler default (gomap).
	MapImpl string `json:"map_impl,omitempty"`
	// Tenant attributes the job to a client: it selects the fair-queueing
	// weight/quota/class the job is admitted under and becomes the
	// "tenant" pprof label on everything the job's goroutines do.
	Tenant string `json:"tenant,omitempty"`
	// Params carries the application knobs.
	Params Params `json:"params,omitempty"`
}

// maxElems bounds a single time-step so one spec cannot ask the service to
// materialize an absurd buffer.
const maxElems = 1 << 24

// maxRanks bounds how many worker ranks one job may span.
const maxRanks = 256

// normalize applies spec defaults in place and validates the shared fields.
func (s *JobSpec) normalize() error {
	if s.App == "" {
		return fmt.Errorf("serve: spec missing app name")
	}
	if s.Steps == 0 {
		s.Steps = 1
	}
	if s.Steps < 0 {
		return fmt.Errorf("serve: steps must be positive")
	}
	if s.Elems == 0 {
		s.Elems = 65536
	}
	if s.Elems < 0 || s.Elems > maxElems {
		return fmt.Errorf("serve: elems must be in (0, %d]", maxElems)
	}
	if s.Threads == 0 {
		s.Threads = 2
	}
	if s.Threads < 0 || s.Threads > 256 {
		return fmt.Errorf("serve: threads must be in (0, 256]")
	}
	if s.Ranks == 0 {
		s.Ranks = 1
	}
	if s.Ranks < 0 || s.Ranks > maxRanks {
		return fmt.Errorf("serve: ranks must be in (0, %d]", maxRanks)
	}
	switch s.Engine {
	case "", core.EngineStatic, core.EngineStealing:
	default:
		return fmt.Errorf("serve: unknown engine %q (have %q, %q)",
			s.Engine, core.EngineStatic, core.EngineStealing)
	}
	switch s.MapImpl {
	case "", core.MapGo, core.MapArena:
	default:
		return fmt.Errorf("serve: unknown map implementation %q (have %q, %q)",
			s.MapImpl, core.MapGo, core.MapArena)
	}
	if len(s.Tenant) > 128 {
		return fmt.Errorf("serve: tenant name longer than 128 bytes")
	}
	switch s.Kind {
	case "", KindBatch, KindStanding:
	default:
		return fmt.Errorf("serve: unknown job kind %q (have %q, %q)", s.Kind, KindBatch, KindStanding)
	}
	return nil
}

// jobProgram is a built, ready-to-run job: run executes it (emitting stream
// records as it goes) and returns the final result; checkpoint, when
// non-nil, persists the job's combination-map state so a drained server (or
// the cluster dispatcher, between steps) can hand the job to a future
// executor, and restore loads such a state back. setSkip marks the leading
// time-steps a restored run must consume without re-analyzing (their
// contribution is already in the restored map), stepsDone reports completed
// steps, and setTrace places the job's phase spans in a distributed trace.
// Applications whose state is reset every time-step (the window filters)
// have nil checkpoint/restore — there is nothing durable to save mid-run.
type jobProgram struct {
	run        func(ctx context.Context, emit func(StreamRecord)) (any, error)
	checkpoint func(path string) error
	restore    func(path string) error
	setSkip    func(steps int)
	stepsDone  func() int
	setTrace   func(tc obs.TraceContext)
}

// builder constructs a jobProgram from a normalized spec, charging the
// scheduler's data structures against mem; comm, when non-nil, spans the
// job's global combination across a sub-communicator. Construction performs
// full validation: a builder error means the spec is bad (HTTP 400), never
// that the server is overloaded.
type builder func(spec JobSpec, mem *memmodel.Node, comm *mpi.Comm) (*jobProgram, error)

// builders is the typed job registry: the paper's evaluation applications
// plus an example two-stage pipeline, keyed by the names clients submit.
var builders = map[string]builder{
	"histogram":     buildHistogram,
	"gridagg":       buildGridAgg,
	"moments":       buildMoments,
	"mutualinfo":    buildMutualInfo,
	"logreg":        buildLogReg,
	"kmeans":        buildKMeans,
	"movingavg":     buildWindow("movingavg"),
	"movingmedian":  buildWindow("movingmedian"),
	"kde":           buildWindow("kde"),
	"savgol":        buildWindow("savgol"),
	"pipeline-grid": buildGridHistPipeline,
}

// Apps returns the registered application names, sorted.
func Apps() []string {
	names := make([]string, 0, len(builders))
	for n := range builders {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// buildJob normalizes the spec and dispatches to its application's builder.
func buildJob(spec JobSpec, mem *memmodel.Node, comm *mpi.Comm) (JobSpec, *jobProgram, error) {
	if err := spec.normalize(); err != nil {
		return spec, nil, err
	}
	if spec.Kind == KindStanding {
		prog, err := buildStanding(spec, mem, comm)
		return spec, prog, err
	}
	b, ok := builders[spec.App]
	if !ok {
		return spec, nil, fmt.Errorf("serve: unknown app %q (have %v)", spec.App, Apps())
	}
	prog, err := b(spec, mem, comm)
	return spec, prog, err
}

// Program is a compiled job for an external executor — the cluster worker
// ranks run jobs through this surface instead of the server's local pool.
type Program struct{ p *jobProgram }

// Compile validates and compiles spec into a runnable Program. mem charges
// the runtime's data structures; comm, when non-nil, is the job's
// sub-communicator — the scheduler's global combination then spans its
// ranks every time-step.
func Compile(spec JobSpec, mem *memmodel.Node, comm *mpi.Comm) (JobSpec, *Program, error) {
	norm, p, err := buildJob(spec, mem, comm)
	if err != nil {
		return norm, nil, err
	}
	return norm, &Program{p: p}, nil
}

// Run executes the program, forwarding stream records to emit.
func (pr *Program) Run(ctx context.Context, emit func(StreamRecord)) (any, error) {
	return pr.p.run(ctx, emit)
}

// CanCheckpoint reports whether the application has durable cross-step
// state to persist (the window filters do not).
func (pr *Program) CanCheckpoint() bool { return pr.p.checkpoint != nil }

// Checkpoint persists the job's combination map to path (crash-safe). Call
// only between runs or between time-steps (from the emit callback of a
// "step" record) — never while a reduction is in flight.
func (pr *Program) Checkpoint(path string) error { return pr.p.checkpoint(path) }

// Restore loads a checkpointed combination map and marks the first
// stepsDone time-steps as already analyzed: the run consumes them from the
// deterministic stream without re-reducing, so the restored job's final
// output is byte-identical to an uninterrupted run.
func (pr *Program) Restore(path string, stepsDone int) error {
	if pr.p.restore == nil {
		return fmt.Errorf("serve: application has no checkpoint state to restore")
	}
	if err := pr.p.restore(path); err != nil {
		return err
	}
	pr.p.setSkip(stepsDone)
	return nil
}

// StepsDone reports the completed time-steps (checkpoint-covered steps
// included after a Restore).
func (pr *Program) StepsDone() int { return pr.p.stepsDone() }

// SetTraceContext places the program's phase spans under the given trace
// position (conventionally the job's root span on the coordinator).
func (pr *Program) SetTraceContext(tc obs.TraceContext) { pr.p.setTrace(tc) }

// rangeOr returns the spec's [lo, hi) value range, defaulting to ±4σ of the
// emulator's standard-normal stream.
func rangeOr(p Params) (lo, hi float64) {
	if p.Hi > p.Lo {
		return p.Lo, p.Hi
	}
	return -4, 4
}

// emulator builds the deterministic data source for a spec. dims > 1
// switches the stream to labeled logistic-regression records.
func emulator(spec JobSpec, dims int) (*sim.Emulator, error) {
	return sim.NewEmulator(sim.EmulatorConfig{StepElems: spec.Elems, Seed: spec.Seed, Dims: dims})
}

// wireRunner couples a scheduler and a data source into a jobProgram: every
// time-step the emulator produces is analyzed in place with the job's
// context (so cancellation lands within one chunk), phase spans and early
// emissions are forwarded to the job's stream, and the caller's result
// extractor shapes the final payload. The returned program has run,
// setSkip/stepsDone and setTrace wired; checkpoint/restore are the
// caller's to attach for applications with durable state.
// drainShield returns the context the per-step reductions run on: it
// ignores a drain-class cancellation of ctx but propagates every other
// cause. A drain must stop the run at a step boundary — the checkpoint
// written afterwards has to capture exactly the steps the resume sidecar
// says were analyzed, or the resumed run double-counts the interrupted
// step's partial contributions — so the in-flight step is allowed to
// finish and the loop stops before reducing the next one. Hard cancels and
// deadlines still abort mid-step. The returned stop func releases the
// watcher goroutine.
func drainShield(ctx context.Context) (context.Context, func()) {
	stepCtx, cancel := context.WithCancelCause(context.Background())
	go func() {
		select {
		case <-ctx.Done():
			if cause := context.Cause(ctx); !errors.Is(cause, ErrDrainCheckpoint) {
				cancel(cause)
			}
		case <-stepCtx.Done():
		}
	}()
	return stepCtx, func() { cancel(context.Canceled) }
}

// drainRequested reports whether ctx was cancelled with the drain cause,
// returning that cause for the run loop to surface at the step boundary.
func drainRequested(ctx context.Context) error {
	if ctx.Err() == nil {
		return nil
	}
	if cause := context.Cause(ctx); errors.Is(cause, ErrDrainCheckpoint) {
		return cause
	}
	return nil
}

func wireRunner[Out any](sched *core.Scheduler[float64, Out], em *sim.Emulator,
	spec JobSpec, mem *memmodel.Node, multiKey, resetPerStep bool, outLen int,
	result func(out []Out) any) *jobProgram {

	// Phase/engine pprof labels on the reduction workers, composing with the
	// job/tenant labels runJob sets around the whole program.
	sched.SetPprofLabels(true)
	// emit is installed by run before the first time-step; the subscribers
	// below only ever fire inside a Run, after that write. The guard keeps a
	// scheduler built but never run (build-time validation) inert.
	var emit func(StreamRecord)
	sched.SubscribeSpans(func(sp obs.Span) {
		if emit != nil {
			emit(StreamRecord{Type: "span", Phase: sp.Name, DurNS: sp.Dur.Nanoseconds()})
		}
	})
	sched.SubscribeEarlyEmits(func(key int, v Out) {
		if emit != nil {
			emit(StreamRecord{Type: "emit", Key: key, Value: v})
		}
	})
	var skip int
	var done atomic.Int64
	p := &jobProgram{
		setTrace:  sched.SetTraceContext,
		setSkip:   func(n int) { skip = n },
		stepsDone: func() int { return int(done.Load()) },
	}
	p.run = func(ctx context.Context, e func(StreamRecord)) (any, error) {
		emit = e
		stepCtx, stop := drainShield(ctx)
		defer stop()
		var out []Out
		if outLen > 0 {
			out = make([]Out, outLen)
		}
		step := 0
		done.Store(int64(skip))
		analyze := func(data []float64) error {
			if err := drainRequested(ctx); err != nil {
				return err
			}
			if step < skip {
				// A restored run: this step's contribution is already in
				// the restored combination map. The emulator still produced
				// the data (keeping the deterministic stream aligned); we
				// just do not reduce it again.
				step++
				return nil
			}
			if resetPerStep {
				sched.ResetCombinationMap()
			}
			var err error
			if multiKey {
				err = sched.Run2Context(stepCtx, data, out)
			} else {
				err = sched.RunContext(stepCtx, data, out)
			}
			if err != nil {
				return err
			}
			// The counter advances before the "step" record goes out: a
			// checkpoint taken from that record's callback must already
			// count the step whose state it captures.
			step++
			done.Store(int64(step))
			emit(StreamRecord{Type: "step", Step: step - 1})
			return nil
		}
		if _, err := insitu.TimeSharingContext(ctx, em, analyze, insitu.TimeSharingConfig{Steps: spec.Steps, Mem: mem}); err != nil {
			return nil, err
		}
		res := result(out)
		if m, ok := res.(map[string]any); ok {
			m["stats"] = statsView(sched.Stats().Snapshot())
		}
		return res, nil
	}
	return p
}

// statsView shapes a stats snapshot into the JSON-friendly form embedded in
// job results. It must be fed a Snapshot, never the live Stats pointer: the
// serving layer reads results from goroutines the run loop knows nothing
// about.
func statsView(st core.Stats) map[string]any {
	return map[string]any{
		"reduction_ns":      st.ReductionTime.Nanoseconds(),
		"local_combine_ns":  st.LocalCombineTime.Nanoseconds(),
		"global_combine_ns": st.GlobalCombineTime.Nanoseconds(),
		"serialized_bytes":  st.SerializedBytes,
		"chunks_processed":  st.ChunksProcessed,
		"max_live_redobjs":  st.MaxLiveRedObjs,
		"emitted_early":     st.EmittedEarly,
		"steals":            st.Steals,
		"batches_claimed":   st.BatchesClaimed,
	}
}

func buildHistogram(spec JobSpec, mem *memmodel.Node, comm *mpi.Comm) (*jobProgram, error) {
	p := spec.Params
	lo, hi := rangeOr(p)
	buckets := p.Buckets
	if buckets == 0 {
		buckets = 100
	}
	if buckets < 0 || buckets > spec.Elems {
		return nil, fmt.Errorf("serve: histogram buckets must be in (0, elems]")
	}
	app := analytics.NewHistogram(lo, hi, buckets)
	sched, err := core.NewScheduler[float64, int64](app, core.SchedArgs{
		NumThreads: spec.Threads, ChunkSize: 1, NumIters: 1, Mem: mem, Engine: spec.Engine, MapImpl: spec.MapImpl, Comm: comm,
	})
	if err != nil {
		return nil, err
	}
	em, err := emulator(spec, 0)
	if err != nil {
		return nil, err
	}
	prog := wireRunner(sched, em, spec, mem, false, false, buckets, func(out []int64) any {
		return map[string]any{"buckets": out, "lo": lo, "hi": hi}
	})
	prog.checkpoint, prog.restore = sched.WriteCheckpoint, sched.ReadCheckpoint
	return prog, nil
}

func buildGridAgg(spec JobSpec, mem *memmodel.Node, comm *mpi.Comm) (*jobProgram, error) {
	gs := spec.Params.GridSize
	if gs == 0 {
		gs = 1000
	}
	if gs < 0 || gs > spec.Elems {
		return nil, fmt.Errorf("serve: grid_size must be in (0, elems]")
	}
	cells := (spec.Elems + gs - 1) / gs
	app := analytics.NewGridAgg(gs, 0)
	sched, err := core.NewScheduler[float64, float64](app, core.SchedArgs{
		NumThreads: spec.Threads, ChunkSize: 1, NumIters: 1, Mem: mem, Engine: spec.Engine, MapImpl: spec.MapImpl, Comm: comm,
	})
	if err != nil {
		return nil, err
	}
	em, err := emulator(spec, 0)
	if err != nil {
		return nil, err
	}
	prog := wireRunner(sched, em, spec, mem, false, false, cells, func(out []float64) any {
		return map[string]any{"cells": out, "grid_size": gs}
	})
	prog.checkpoint, prog.restore = sched.WriteCheckpoint, sched.ReadCheckpoint
	return prog, nil
}

func buildMoments(spec JobSpec, mem *memmodel.Node, comm *mpi.Comm) (*jobProgram, error) {
	gs := spec.Params.GridSize
	if gs == 0 {
		gs = 1000
	}
	if gs < 0 || gs > spec.Elems {
		return nil, fmt.Errorf("serve: grid_size must be in (0, elems]")
	}
	cells := (spec.Elems + gs - 1) / gs
	app := analytics.NewMoments(gs, 0)
	sched, err := core.NewScheduler[float64, float64](app, core.SchedArgs{
		NumThreads: spec.Threads, ChunkSize: 1, NumIters: 1, Mem: mem, Engine: spec.Engine, MapImpl: spec.MapImpl, Comm: comm,
	})
	if err != nil {
		return nil, err
	}
	em, err := emulator(spec, 0)
	if err != nil {
		return nil, err
	}
	prog := wireRunner(sched, em, spec, mem, false, false, cells, func(out []float64) any {
		return map[string]any{"variance": out, "grid_size": gs}
	})
	prog.checkpoint, prog.restore = sched.WriteCheckpoint, sched.ReadCheckpoint
	return prog, nil
}

func buildMutualInfo(spec JobSpec, mem *memmodel.Node, comm *mpi.Comm) (*jobProgram, error) {
	p := spec.Params
	lo, hi := rangeOr(p)
	buckets := p.Buckets
	if buckets == 0 {
		buckets = 64
	}
	if buckets < 0 || buckets > 4096 {
		return nil, fmt.Errorf("serve: mutualinfo buckets must be in (0, 4096]")
	}
	spec.Elems = spec.Elems / 2 * 2 // element pairs
	if spec.Elems == 0 {
		return nil, fmt.Errorf("serve: mutualinfo needs at least one element pair")
	}
	app := analytics.NewMutualInfo(lo, hi, buckets, lo, hi, buckets)
	sched, err := core.NewScheduler[float64, int64](app, core.SchedArgs{
		NumThreads: spec.Threads, ChunkSize: 2, NumIters: 1, Mem: mem, Engine: spec.Engine, MapImpl: spec.MapImpl, Comm: comm,
	})
	if err != nil {
		return nil, err
	}
	em, err := emulator(spec, 0)
	if err != nil {
		return nil, err
	}
	prog := wireRunner(sched, em, spec, mem, false, false, 0, func([]int64) any {
		return map[string]any{"mutual_information": app.MI(sched.CombinationMap())}
	})
	prog.checkpoint, prog.restore = sched.WriteCheckpoint, sched.ReadCheckpoint
	return prog, nil
}

func buildLogReg(spec JobSpec, mem *memmodel.Node, comm *mpi.Comm) (*jobProgram, error) {
	p := spec.Params
	dims := p.Dims
	if dims == 0 {
		dims = 8
	}
	if dims < 0 || dims > 1024 {
		return nil, fmt.Errorf("serve: logreg dims must be in (0, 1024]")
	}
	iters := p.Iters
	if iters == 0 {
		iters = 3
	}
	if iters < 0 || iters > 1000 {
		return nil, fmt.Errorf("serve: logreg iters must be in (0, 1000]")
	}
	rate := p.Rate
	if rate == 0 {
		rate = 0.1
	}
	rec := dims + 1
	spec.Elems = spec.Elems / rec * rec // whole records only
	if spec.Elems == 0 {
		return nil, fmt.Errorf("serve: logreg needs at least one record (elems >= dims+1)")
	}
	app := analytics.NewLogReg(dims, rate)
	sched, err := core.NewScheduler[float64, float64](app, core.SchedArgs{
		NumThreads: spec.Threads, ChunkSize: rec, NumIters: iters, Mem: mem, Engine: spec.Engine, MapImpl: spec.MapImpl, Comm: comm,
	})
	if err != nil {
		return nil, err
	}
	em, err := emulator(spec, dims)
	if err != nil {
		return nil, err
	}
	prog := wireRunner(sched, em, spec, mem, false, false, 0, func([]float64) any {
		return map[string]any{"weights": app.Weights(sched.CombinationMap())}
	})
	prog.checkpoint, prog.restore = sched.WriteCheckpoint, sched.ReadCheckpoint
	return prog, nil
}

func buildKMeans(spec JobSpec, mem *memmodel.Node, comm *mpi.Comm) (*jobProgram, error) {
	p := spec.Params
	k, dims := p.K, p.Dims
	if k == 0 {
		k = 4
	}
	if dims == 0 {
		dims = 4
	}
	if k < 0 || k > 4096 || dims < 0 || dims > 1024 {
		return nil, fmt.Errorf("serve: kmeans k must be in (0, 4096], dims in (0, 1024]")
	}
	iters := p.Iters
	if iters == 0 {
		iters = 10
	}
	if iters < 0 || iters > 1000 {
		return nil, fmt.Errorf("serve: kmeans iters must be in (0, 1000]")
	}
	spec.Elems = spec.Elems / dims * dims // whole points only
	if spec.Elems == 0 {
		return nil, fmt.Errorf("serve: kmeans needs at least one point (elems >= dims)")
	}
	lo, hi := rangeOr(p)
	app := analytics.NewKMeans(k, dims)
	sched, err := core.NewScheduler[float64, []float64](app, core.SchedArgs{
		NumThreads: spec.Threads, ChunkSize: dims, NumIters: iters, Mem: mem, Engine: spec.Engine, MapImpl: spec.MapImpl, Comm: comm,
		Extra: initCentroids(k, dims, lo, hi),
	})
	if err != nil {
		return nil, err
	}
	em, err := emulator(spec, 0)
	if err != nil {
		return nil, err
	}
	prog := wireRunner(sched, em, spec, mem, false, false, 0, func([][]float64) any {
		return map[string]any{"centroids": app.Centroids(sched.CombinationMap())}
	})
	prog.checkpoint, prog.restore = sched.WriteCheckpoint, sched.ReadCheckpoint
	return prog, nil
}

// initCentroids spreads k deterministic starting centroids across [lo, hi]
// on every dimension, mirroring the harness's initialization.
func initCentroids(k, dims int, lo, hi float64) []float64 {
	flat := make([]float64, k*dims)
	for c := 0; c < k; c++ {
		v := lo + (hi-lo)*float64(c)/float64(k)
		for d := 0; d < dims; d++ {
			flat[c*dims+d] = v
		}
	}
	return flat
}

// buildWindow constructs one of the four window-based applications. They
// run through the multi-key path (Run2), emit early (every window position
// finalizes and streams as soon as its expected contributions arrive), and
// reset per time-step — so they have no cross-step state to checkpoint.
func buildWindow(kind string) builder {
	return func(spec JobSpec, mem *memmodel.Node, comm *mpi.Comm) (*jobProgram, error) {
		p := spec.Params
		win := p.Window
		if win == 0 {
			win = 25
		}
		if win < 0 || win > spec.Elems {
			return nil, fmt.Errorf("serve: window must be in (0, elems]")
		}
		var app core.Analytics[float64, float64]
		switch kind {
		case "movingavg":
			app = analytics.NewMovingAverage(win, spec.Elems, 0, true)
		case "movingmedian":
			app = analytics.NewMovingMedian(win, spec.Elems, 0, true)
		case "kde":
			app = analytics.NewKernelDensity(win, spec.Elems, 0, true, p.Bandwidth)
		case "savgol":
			order := p.Order
			if order == 0 {
				order = 2
			}
			if order < 0 || order >= win {
				return nil, fmt.Errorf("serve: savgol order must be in (0, window)")
			}
			app = analytics.NewSavitzkyGolay(win, order, spec.Elems, 0, true)
		default:
			return nil, fmt.Errorf("serve: unknown window app %q", kind)
		}
		sched, err := core.NewScheduler[float64, float64](app, core.SchedArgs{
			NumThreads: spec.Threads, ChunkSize: 1, NumIters: 1, Mem: mem, Engine: spec.Engine, MapImpl: spec.MapImpl, Comm: comm,
		})
		if err != nil {
			return nil, err
		}
		em, err := emulator(spec, 0)
		if err != nil {
			return nil, err
		}
		return wireRunner(sched, em, spec, mem, true, true, spec.Elems, func(out []float64) any {
			head := out
			if len(head) > 32 {
				head = head[:32]
			}
			return map[string]any{"len": len(out), "head": head}
		}), nil
	}
}

// buildGridHistPipeline is the example two-stage Smart pipeline from the
// registry: stage one grid-aggregates each time-step into cell means, stage
// two histograms the final step's means over their observed range. It is
// compiled as a stream operator chain — per-step tumbling windows feed the
// grid combiner, ThenMap routes each step's means into a global window, and
// the global combiner learns the bucket range when the stream ends — so the
// cross-stage plumbing (buffering, ordering, flush) is the streaming
// layer's, not this builder's. Both stages run on the job's context;
// cancellation stops either within one chunk.
func buildGridHistPipeline(spec JobSpec, mem *memmodel.Node, comm *mpi.Comm) (*jobProgram, error) {
	p := spec.Params
	gs := p.GridSize
	if gs == 0 {
		gs = 256
	}
	if gs < 0 || gs > spec.Elems {
		return nil, fmt.Errorf("serve: grid_size must be in (0, elems]")
	}
	buckets := p.Buckets
	if buckets == 0 {
		buckets = 32
	}
	if buckets < 0 || buckets > 1<<16 {
		return nil, fmt.Errorf("serve: buckets must be in (0, 65536]")
	}
	cells := (spec.Elems + gs - 1) / gs
	stage1, err := stream.NewSchedCombiner(stream.SchedOptions[float64]{
		Build: func(int) (core.Analytics[float64, float64], error) {
			return analytics.NewGridAgg(gs, 0), nil
		},
		Args: core.SchedArgs{
			NumThreads: spec.Threads, ChunkSize: 1, NumIters: 1, Mem: mem,
			Engine: spec.Engine, MapImpl: spec.MapImpl, Comm: comm,
		},
		OutLen: func(int) int { return cells },
	})
	if err != nil {
		return nil, err
	}
	em, err := emulator(spec, 0)
	if err != nil {
		return nil, err
	}
	var (
		mu    sync.Mutex
		skip  int
		snap  *stream.Snapshot
		pipe  *stream.Pipeline
		trace obs.TraceContext
	)
	var done atomic.Int64
	prog := &jobProgram{
		setSkip:   func(n int) { mu.Lock(); skip = n; mu.Unlock() },
		stepsDone: func() int { return int(done.Load()) },
		setTrace: func(tc obs.TraceContext) {
			mu.Lock()
			trace = tc
			mu.Unlock()
			stage1.SetTraceContext(tc)
		},
	}
	prog.checkpoint = func(path string) error {
		mu.Lock()
		pp := pipe
		mu.Unlock()
		return writeSnapshotCheckpoint(path, pp)
	}
	prog.restore = func(path string) error {
		s, err := readSnapshotCheckpoint(path)
		if err != nil {
			return err
		}
		mu.Lock()
		snap = s
		mu.Unlock()
		return nil
	}
	prog.run = func(ctx context.Context, emit func(StreamRecord)) (any, error) {
		mu.Lock()
		startStep := skip
		restored := snap
		tc := trace
		mu.Unlock()
		done.Store(int64(startStep))
		stepCtx, stop := drainShield(ctx)
		defer stop()

		// A resumed run steps the emulator past the consumed prefix without
		// analyzing it, keeping the deterministic stream aligned; the
		// restored snapshot already holds those steps' contributions.
		for i := 0; i < startStep; i++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if err := em.Step(); err != nil {
				return nil, err
			}
		}
		src := insitu.StreamSource(em, insitu.StreamSourceConfig{
			TimeSharingConfig: insitu.TimeSharingConfig{Steps: spec.Steps - startStep, Mem: mem},
			StartStep:         startStep,
		})
		stepSrc := stream.SourceFunc(func(fctx context.Context, push func(stream.Event) error) error {
			return src.Feed(fctx, func(ev stream.Event) error {
				if err := drainRequested(ctx); err != nil {
					return err
				}
				if err := push(ev); err != nil {
					return err
				}
				step := int(done.Add(1))
				emit(StreamRecord{Type: "step", Step: step - 1})
				return nil
			})
		})

		// Stage two learns its bucket range from stage one's output — the
		// cross-stage dependency that makes this a pipeline rather than two
		// independent jobs. The global window delivers every step's means in
		// step order; the histogram covers the final step's grid.
		stage2 := stream.CombinerFunc(func(cctx context.Context, _ stream.Window, elems []float64) (any, error) {
			means := elems
			if len(means) > cells {
				means = means[len(means)-cells:]
			}
			lo, hi := means[0], means[0]
			for _, v := range means {
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
			}
			if hi <= lo {
				hi = lo + 1
			}
			sched, err := core.NewScheduler[float64, int64](analytics.NewHistogram(lo, hi, buckets), core.SchedArgs{
				NumThreads: spec.Threads, ChunkSize: 1, NumIters: 1, Mem: mem,
				Engine: spec.Engine, MapImpl: spec.MapImpl,
			})
			if err != nil {
				return nil, err
			}
			mu.Lock()
			sched.SetTraceContext(trace)
			mu.Unlock()
			hist := make([]int64, buckets)
			if err := sched.RunContext(cctx, means, hist); err != nil {
				return nil, err
			}
			result := map[string]any{
				"cell_means": cells, "lo": lo, "hi": hi, "buckets": hist,
				"stats": map[string]any{
					"stage2": statsView(sched.Stats().Snapshot()),
				},
			}
			return result, nil
		})

		var result map[string]any
		pl := stream.New().
			From(stepSrc).
			Window(stream.Tumbling(1)).
			Combine(stage1).
			ThenMap(func(res stream.WindowResult) (stream.Event, bool) {
				return stream.Event{Time: res.Window.Start, Data: res.Value.([]float64)}, true
			}).
			Window(stream.Global()).
			Combine(stage2).
			To(stream.CallbackSink(func(res stream.WindowResult) error {
				result = res.Value.(map[string]any)
				return nil
			}))
		if tc.Valid() {
			stage1.SetTraceContext(tc)
		}
		mu.Lock()
		pipe = pl
		mu.Unlock()
		if restored != nil {
			if err := pl.Restore(restored); err != nil {
				return nil, err
			}
		}
		if err := pl.Run(stepCtx); err != nil {
			return nil, err
		}
		if result == nil {
			return nil, fmt.Errorf("serve: pipeline finished without firing its global window")
		}
		if st := stage1.Stats(); st != nil {
			result["stats"].(map[string]any)["stage1"] = statsView(st.Snapshot())
		}
		return result, nil
	}
	return prog, nil
}
