// Package serve runs Smart analytics as a multi-tenant service: clients
// submit typed job specs over HTTP, a bounded queue with memmodel-backed
// admission control decides whether a job may enter, a worker pool executes
// admitted jobs on core.Scheduler with per-job deadlines and cancellation,
// and results stream back as NDJSON — early emissions and phase spans while
// the job runs, the final output when it converges. It is the service layer
// the paper's in-situ runtime lacks: the same node that hosts the simulation
// can answer ad-hoc analytics queries without being pushed into paging.
package serve

import (
	"context"
	"fmt"
	"sort"

	"github.com/scipioneer/smart/internal/analytics"
	"github.com/scipioneer/smart/internal/core"
	"github.com/scipioneer/smart/internal/insitu"
	"github.com/scipioneer/smart/internal/memmodel"
	"github.com/scipioneer/smart/internal/obs"
	"github.com/scipioneer/smart/internal/sim"
)

// Params are the per-application knobs of a JobSpec. Unused fields are
// ignored by applications that do not read them; zero values select
// documented defaults.
type Params struct {
	// K and Dims parameterize k-means (clusters × dimensions) and logistic
	// regression (feature dimensions).
	K    int `json:"k,omitempty"`
	Dims int `json:"dims,omitempty"`
	// Iters is the iteration count per time-step for iterative applications
	// (k-means, logistic regression).
	Iters int `json:"iters,omitempty"`
	// Buckets is the histogram/mutual-information bucket count.
	Buckets int `json:"buckets,omitempty"`
	// Lo and Hi bound the value range for bucketed applications.
	Lo float64 `json:"lo,omitempty"`
	Hi float64 `json:"hi,omitempty"`
	// Window is the window size of the four window-based applications.
	Window int `json:"window,omitempty"`
	// Order is the Savitzky–Golay polynomial order.
	Order int `json:"order,omitempty"`
	// GridSize is the grid-aggregation/moments cell size in elements.
	GridSize int `json:"grid_size,omitempty"`
	// Rate is the logistic-regression learning rate.
	Rate float64 `json:"rate,omitempty"`
	// Bandwidth is the kernel-density bandwidth (0 = triangular default).
	Bandwidth float64 `json:"bandwidth,omitempty"`
}

// JobSpec is a typed analytics job request: which registered application to
// run, over how much emulated simulation data, with what resources.
type JobSpec struct {
	// App names a registered application (see Apps).
	App string `json:"app"`
	// Steps is the number of simulation time-steps to analyze (default 1).
	Steps int `json:"steps,omitempty"`
	// Elems is the number of float64 elements per time-step (default 65536).
	Elems int `json:"elems,omitempty"`
	// Seed makes the emulated data stream deterministic.
	Seed uint64 `json:"seed,omitempty"`
	// Threads is the scheduler's reduction thread count (default 2).
	Threads int `json:"threads,omitempty"`
	// DeadlineMS caps the job's wall-clock run time in milliseconds; zero
	// uses the server default, negative means no deadline.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// Engine selects the scheduler's execution engine ("static" or
	// "stealing"); empty uses the scheduler default (static).
	Engine string `json:"engine,omitempty"`
	// Tenant attributes the job to a client for profiling: it becomes the
	// "tenant" pprof label on everything the job's goroutines do.
	Tenant string `json:"tenant,omitempty"`
	// Params carries the application knobs.
	Params Params `json:"params,omitempty"`
}

// maxElems bounds a single time-step so one spec cannot ask the service to
// materialize an absurd buffer.
const maxElems = 1 << 24

// normalize applies spec defaults in place and validates the shared fields.
func (s *JobSpec) normalize() error {
	if s.App == "" {
		return fmt.Errorf("serve: spec missing app name")
	}
	if s.Steps == 0 {
		s.Steps = 1
	}
	if s.Steps < 0 {
		return fmt.Errorf("serve: steps must be positive")
	}
	if s.Elems == 0 {
		s.Elems = 65536
	}
	if s.Elems < 0 || s.Elems > maxElems {
		return fmt.Errorf("serve: elems must be in (0, %d]", maxElems)
	}
	if s.Threads == 0 {
		s.Threads = 2
	}
	if s.Threads < 0 || s.Threads > 256 {
		return fmt.Errorf("serve: threads must be in (0, 256]")
	}
	switch s.Engine {
	case "", core.EngineStatic, core.EngineStealing:
	default:
		return fmt.Errorf("serve: unknown engine %q (have %q, %q)",
			s.Engine, core.EngineStatic, core.EngineStealing)
	}
	if len(s.Tenant) > 128 {
		return fmt.Errorf("serve: tenant name longer than 128 bytes")
	}
	return nil
}

// jobProgram is a built, ready-to-run job: run executes it (emitting stream
// records as it goes) and returns the final result; checkpoint, when
// non-nil, persists the job's combination-map state so a drained server can
// hand the job back to a future one. Applications whose state is reset every
// time-step (the window filters) have nil checkpoint — there is nothing
// durable to save mid-run.
type jobProgram struct {
	run        func(ctx context.Context, emit func(StreamRecord)) (any, error)
	checkpoint func(path string) error
}

// builder constructs a jobProgram from a normalized spec, charging the
// scheduler's data structures against mem. Construction performs full
// validation: a builder error means the spec is bad (HTTP 400), never that
// the server is overloaded.
type builder func(spec JobSpec, mem *memmodel.Node) (*jobProgram, error)

// builders is the typed job registry: the paper's evaluation applications
// plus an example two-stage pipeline, keyed by the names clients submit.
var builders = map[string]builder{
	"histogram":     buildHistogram,
	"gridagg":       buildGridAgg,
	"moments":       buildMoments,
	"mutualinfo":    buildMutualInfo,
	"logreg":        buildLogReg,
	"kmeans":        buildKMeans,
	"movingavg":     buildWindow("movingavg"),
	"movingmedian":  buildWindow("movingmedian"),
	"kde":           buildWindow("kde"),
	"savgol":        buildWindow("savgol"),
	"pipeline-grid": buildGridHistPipeline,
}

// Apps returns the registered application names, sorted.
func Apps() []string {
	names := make([]string, 0, len(builders))
	for n := range builders {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// buildJob normalizes the spec and dispatches to its application's builder.
func buildJob(spec JobSpec, mem *memmodel.Node) (JobSpec, *jobProgram, error) {
	if err := spec.normalize(); err != nil {
		return spec, nil, err
	}
	b, ok := builders[spec.App]
	if !ok {
		return spec, nil, fmt.Errorf("serve: unknown app %q (have %v)", spec.App, Apps())
	}
	prog, err := b(spec, mem)
	return spec, prog, err
}

// rangeOr returns the spec's [lo, hi) value range, defaulting to ±4σ of the
// emulator's standard-normal stream.
func rangeOr(p Params) (lo, hi float64) {
	if p.Hi > p.Lo {
		return p.Lo, p.Hi
	}
	return -4, 4
}

// emulator builds the deterministic data source for a spec. dims > 1
// switches the stream to labeled logistic-regression records.
func emulator(spec JobSpec, dims int) (*sim.Emulator, error) {
	return sim.NewEmulator(sim.EmulatorConfig{StepElems: spec.Elems, Seed: spec.Seed, Dims: dims})
}

// wireRunner couples a scheduler and a data source into a jobProgram run
// function: every time-step the emulator produces is analyzed in place with
// the job's context (so cancellation lands within one chunk), phase spans
// and early emissions are forwarded to the job's stream, and the caller's
// result extractor shapes the final payload.
func wireRunner[Out any](sched *core.Scheduler[float64, Out], em *sim.Emulator,
	spec JobSpec, mem *memmodel.Node, multiKey, resetPerStep bool, outLen int,
	result func(out []Out) any) func(context.Context, func(StreamRecord)) (any, error) {

	// Phase/engine pprof labels on the reduction workers, composing with the
	// job/tenant labels runJob sets around the whole program.
	sched.SetPprofLabels(true)
	// emit is installed by run before the first time-step; the subscribers
	// below only ever fire inside a Run, after that write. The guard keeps a
	// scheduler built but never run (build-time validation) inert.
	var emit func(StreamRecord)
	sched.SubscribeSpans(func(sp obs.Span) {
		if emit != nil {
			emit(StreamRecord{Type: "span", Phase: sp.Name, DurNS: sp.Dur.Nanoseconds()})
		}
	})
	sched.SubscribeEarlyEmits(func(key int, v Out) {
		if emit != nil {
			emit(StreamRecord{Type: "emit", Key: key, Value: v})
		}
	})
	return func(ctx context.Context, e func(StreamRecord)) (any, error) {
		emit = e
		var out []Out
		if outLen > 0 {
			out = make([]Out, outLen)
		}
		step := 0
		analyze := func(data []float64) error {
			if resetPerStep {
				sched.ResetCombinationMap()
			}
			var err error
			if multiKey {
				err = sched.Run2Context(ctx, data, out)
			} else {
				err = sched.RunContext(ctx, data, out)
			}
			if err != nil {
				return err
			}
			emit(StreamRecord{Type: "step", Step: step})
			step++
			return nil
		}
		if _, err := insitu.TimeSharingContext(ctx, em, analyze, insitu.TimeSharingConfig{Steps: spec.Steps, Mem: mem}); err != nil {
			return nil, err
		}
		res := result(out)
		if m, ok := res.(map[string]any); ok {
			m["stats"] = statsView(sched.Stats().Snapshot())
		}
		return res, nil
	}
}

// statsView shapes a stats snapshot into the JSON-friendly form embedded in
// job results. It must be fed a Snapshot, never the live Stats pointer: the
// serving layer reads results from goroutines the run loop knows nothing
// about.
func statsView(st core.Stats) map[string]any {
	return map[string]any{
		"reduction_ns":      st.ReductionTime.Nanoseconds(),
		"local_combine_ns":  st.LocalCombineTime.Nanoseconds(),
		"global_combine_ns": st.GlobalCombineTime.Nanoseconds(),
		"serialized_bytes":  st.SerializedBytes,
		"chunks_processed":  st.ChunksProcessed,
		"max_live_redobjs":  st.MaxLiveRedObjs,
		"emitted_early":     st.EmittedEarly,
		"steals":            st.Steals,
		"batches_claimed":   st.BatchesClaimed,
	}
}

func buildHistogram(spec JobSpec, mem *memmodel.Node) (*jobProgram, error) {
	p := spec.Params
	lo, hi := rangeOr(p)
	buckets := p.Buckets
	if buckets == 0 {
		buckets = 100
	}
	if buckets < 0 || buckets > spec.Elems {
		return nil, fmt.Errorf("serve: histogram buckets must be in (0, elems]")
	}
	app := analytics.NewHistogram(lo, hi, buckets)
	sched, err := core.NewScheduler[float64, int64](app, core.SchedArgs{
		NumThreads: spec.Threads, ChunkSize: 1, NumIters: 1, Mem: mem, Engine: spec.Engine,
	})
	if err != nil {
		return nil, err
	}
	em, err := emulator(spec, 0)
	if err != nil {
		return nil, err
	}
	run := wireRunner(sched, em, spec, mem, false, false, buckets, func(out []int64) any {
		return map[string]any{"buckets": out, "lo": lo, "hi": hi}
	})
	return &jobProgram{run: run, checkpoint: sched.WriteCheckpoint}, nil
}

func buildGridAgg(spec JobSpec, mem *memmodel.Node) (*jobProgram, error) {
	gs := spec.Params.GridSize
	if gs == 0 {
		gs = 1000
	}
	if gs < 0 || gs > spec.Elems {
		return nil, fmt.Errorf("serve: grid_size must be in (0, elems]")
	}
	cells := (spec.Elems + gs - 1) / gs
	app := analytics.NewGridAgg(gs, 0)
	sched, err := core.NewScheduler[float64, float64](app, core.SchedArgs{
		NumThreads: spec.Threads, ChunkSize: 1, NumIters: 1, Mem: mem, Engine: spec.Engine,
	})
	if err != nil {
		return nil, err
	}
	em, err := emulator(spec, 0)
	if err != nil {
		return nil, err
	}
	run := wireRunner(sched, em, spec, mem, false, false, cells, func(out []float64) any {
		return map[string]any{"cells": out, "grid_size": gs}
	})
	return &jobProgram{run: run, checkpoint: sched.WriteCheckpoint}, nil
}

func buildMoments(spec JobSpec, mem *memmodel.Node) (*jobProgram, error) {
	gs := spec.Params.GridSize
	if gs == 0 {
		gs = 1000
	}
	if gs < 0 || gs > spec.Elems {
		return nil, fmt.Errorf("serve: grid_size must be in (0, elems]")
	}
	cells := (spec.Elems + gs - 1) / gs
	app := analytics.NewMoments(gs, 0)
	sched, err := core.NewScheduler[float64, float64](app, core.SchedArgs{
		NumThreads: spec.Threads, ChunkSize: 1, NumIters: 1, Mem: mem, Engine: spec.Engine,
	})
	if err != nil {
		return nil, err
	}
	em, err := emulator(spec, 0)
	if err != nil {
		return nil, err
	}
	run := wireRunner(sched, em, spec, mem, false, false, cells, func(out []float64) any {
		return map[string]any{"variance": out, "grid_size": gs}
	})
	return &jobProgram{run: run, checkpoint: sched.WriteCheckpoint}, nil
}

func buildMutualInfo(spec JobSpec, mem *memmodel.Node) (*jobProgram, error) {
	p := spec.Params
	lo, hi := rangeOr(p)
	buckets := p.Buckets
	if buckets == 0 {
		buckets = 64
	}
	if buckets < 0 || buckets > 4096 {
		return nil, fmt.Errorf("serve: mutualinfo buckets must be in (0, 4096]")
	}
	spec.Elems = spec.Elems / 2 * 2 // element pairs
	if spec.Elems == 0 {
		return nil, fmt.Errorf("serve: mutualinfo needs at least one element pair")
	}
	app := analytics.NewMutualInfo(lo, hi, buckets, lo, hi, buckets)
	sched, err := core.NewScheduler[float64, int64](app, core.SchedArgs{
		NumThreads: spec.Threads, ChunkSize: 2, NumIters: 1, Mem: mem, Engine: spec.Engine,
	})
	if err != nil {
		return nil, err
	}
	em, err := emulator(spec, 0)
	if err != nil {
		return nil, err
	}
	run := wireRunner(sched, em, spec, mem, false, false, 0, func([]int64) any {
		return map[string]any{"mutual_information": app.MI(sched.CombinationMap())}
	})
	return &jobProgram{run: run, checkpoint: sched.WriteCheckpoint}, nil
}

func buildLogReg(spec JobSpec, mem *memmodel.Node) (*jobProgram, error) {
	p := spec.Params
	dims := p.Dims
	if dims == 0 {
		dims = 8
	}
	if dims < 0 || dims > 1024 {
		return nil, fmt.Errorf("serve: logreg dims must be in (0, 1024]")
	}
	iters := p.Iters
	if iters == 0 {
		iters = 3
	}
	if iters < 0 || iters > 1000 {
		return nil, fmt.Errorf("serve: logreg iters must be in (0, 1000]")
	}
	rate := p.Rate
	if rate == 0 {
		rate = 0.1
	}
	rec := dims + 1
	spec.Elems = spec.Elems / rec * rec // whole records only
	if spec.Elems == 0 {
		return nil, fmt.Errorf("serve: logreg needs at least one record (elems >= dims+1)")
	}
	app := analytics.NewLogReg(dims, rate)
	sched, err := core.NewScheduler[float64, float64](app, core.SchedArgs{
		NumThreads: spec.Threads, ChunkSize: rec, NumIters: iters, Mem: mem, Engine: spec.Engine,
	})
	if err != nil {
		return nil, err
	}
	em, err := emulator(spec, dims)
	if err != nil {
		return nil, err
	}
	run := wireRunner(sched, em, spec, mem, false, false, 0, func([]float64) any {
		return map[string]any{"weights": app.Weights(sched.CombinationMap())}
	})
	return &jobProgram{run: run, checkpoint: sched.WriteCheckpoint}, nil
}

func buildKMeans(spec JobSpec, mem *memmodel.Node) (*jobProgram, error) {
	p := spec.Params
	k, dims := p.K, p.Dims
	if k == 0 {
		k = 4
	}
	if dims == 0 {
		dims = 4
	}
	if k < 0 || k > 4096 || dims < 0 || dims > 1024 {
		return nil, fmt.Errorf("serve: kmeans k must be in (0, 4096], dims in (0, 1024]")
	}
	iters := p.Iters
	if iters == 0 {
		iters = 10
	}
	if iters < 0 || iters > 1000 {
		return nil, fmt.Errorf("serve: kmeans iters must be in (0, 1000]")
	}
	spec.Elems = spec.Elems / dims * dims // whole points only
	if spec.Elems == 0 {
		return nil, fmt.Errorf("serve: kmeans needs at least one point (elems >= dims)")
	}
	lo, hi := rangeOr(p)
	app := analytics.NewKMeans(k, dims)
	sched, err := core.NewScheduler[float64, []float64](app, core.SchedArgs{
		NumThreads: spec.Threads, ChunkSize: dims, NumIters: iters, Mem: mem, Engine: spec.Engine,
		Extra: initCentroids(k, dims, lo, hi),
	})
	if err != nil {
		return nil, err
	}
	em, err := emulator(spec, 0)
	if err != nil {
		return nil, err
	}
	run := wireRunner(sched, em, spec, mem, false, false, 0, func([][]float64) any {
		return map[string]any{"centroids": app.Centroids(sched.CombinationMap())}
	})
	return &jobProgram{run: run, checkpoint: sched.WriteCheckpoint}, nil
}

// initCentroids spreads k deterministic starting centroids across [lo, hi]
// on every dimension, mirroring the harness's initialization.
func initCentroids(k, dims int, lo, hi float64) []float64 {
	flat := make([]float64, k*dims)
	for c := 0; c < k; c++ {
		v := lo + (hi-lo)*float64(c)/float64(k)
		for d := 0; d < dims; d++ {
			flat[c*dims+d] = v
		}
	}
	return flat
}

// buildWindow constructs one of the four window-based applications. They
// run through the multi-key path (Run2), emit early (every window position
// finalizes and streams as soon as its expected contributions arrive), and
// reset per time-step — so they have no cross-step state to checkpoint.
func buildWindow(kind string) builder {
	return func(spec JobSpec, mem *memmodel.Node) (*jobProgram, error) {
		p := spec.Params
		win := p.Window
		if win == 0 {
			win = 25
		}
		if win < 0 || win > spec.Elems {
			return nil, fmt.Errorf("serve: window must be in (0, elems]")
		}
		var app core.Analytics[float64, float64]
		switch kind {
		case "movingavg":
			app = analytics.NewMovingAverage(win, spec.Elems, 0, true)
		case "movingmedian":
			app = analytics.NewMovingMedian(win, spec.Elems, 0, true)
		case "kde":
			app = analytics.NewKernelDensity(win, spec.Elems, 0, true, p.Bandwidth)
		case "savgol":
			order := p.Order
			if order == 0 {
				order = 2
			}
			if order < 0 || order >= win {
				return nil, fmt.Errorf("serve: savgol order must be in (0, window)")
			}
			app = analytics.NewSavitzkyGolay(win, order, spec.Elems, 0, true)
		default:
			return nil, fmt.Errorf("serve: unknown window app %q", kind)
		}
		sched, err := core.NewScheduler[float64, float64](app, core.SchedArgs{
			NumThreads: spec.Threads, ChunkSize: 1, NumIters: 1, Mem: mem, Engine: spec.Engine,
		})
		if err != nil {
			return nil, err
		}
		em, err := emulator(spec, 0)
		if err != nil {
			return nil, err
		}
		run := wireRunner(sched, em, spec, mem, true, true, spec.Elems, func(out []float64) any {
			head := out
			if len(head) > 32 {
				head = head[:32]
			}
			return map[string]any{"len": len(out), "head": head}
		})
		return &jobProgram{run: run}, nil
	}
}

// buildGridHistPipeline is the example two-stage Smart pipeline from the
// registry: stage one grid-aggregates each time-step into cell means, stage
// two histograms those means over their observed range. Both stages run on
// the job's context, so cancellation stops either stage within one chunk.
func buildGridHistPipeline(spec JobSpec, mem *memmodel.Node) (*jobProgram, error) {
	p := spec.Params
	gs := p.GridSize
	if gs == 0 {
		gs = 256
	}
	if gs < 0 || gs > spec.Elems {
		return nil, fmt.Errorf("serve: grid_size must be in (0, elems]")
	}
	buckets := p.Buckets
	if buckets == 0 {
		buckets = 32
	}
	if buckets < 0 || buckets > 1<<16 {
		return nil, fmt.Errorf("serve: buckets must be in (0, 65536]")
	}
	cells := (spec.Elems + gs - 1) / gs
	stage1, err := core.NewScheduler[float64, float64](analytics.NewGridAgg(gs, 0), core.SchedArgs{
		NumThreads: spec.Threads, ChunkSize: 1, NumIters: 1, Mem: mem, Engine: spec.Engine,
	})
	if err != nil {
		return nil, err
	}
	em, err := emulator(spec, 0)
	if err != nil {
		return nil, err
	}
	run := func(ctx context.Context, emit func(StreamRecord)) (any, error) {
		means := make([]float64, cells)
		step := 0
		analyze := func(data []float64) error {
			stage1.ResetCombinationMap()
			if err := stage1.RunContext(ctx, data, means); err != nil {
				return err
			}
			emit(StreamRecord{Type: "step", Step: step})
			step++
			return nil
		}
		if _, err := insitu.TimeSharingContext(ctx, em, analyze, insitu.TimeSharingConfig{Steps: spec.Steps, Mem: mem}); err != nil {
			return nil, err
		}

		// Stage two learns its bucket range from stage one's output — the
		// cross-stage dependency that makes this a pipeline rather than two
		// independent jobs.
		lo, hi := means[0], means[0]
		for _, v := range means {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if hi <= lo {
			hi = lo + 1
		}
		stage2, err := core.NewScheduler[float64, int64](analytics.NewHistogram(lo, hi, buckets), core.SchedArgs{
			NumThreads: spec.Threads, ChunkSize: 1, NumIters: 1, Mem: mem, Engine: spec.Engine,
		})
		if err != nil {
			return nil, err
		}
		hist := make([]int64, buckets)
		if err := stage2.RunContext(ctx, means, hist); err != nil {
			return nil, err
		}
		return map[string]any{
			"cell_means": cells, "lo": lo, "hi": hi, "buckets": hist,
			"stats": map[string]any{
				"stage1": statsView(stage1.Stats().Snapshot()),
				"stage2": statsView(stage2.Stats().Snapshot()),
			},
		}, nil
	}
	return &jobProgram{run: run, checkpoint: stage1.WriteCheckpoint}, nil
}
