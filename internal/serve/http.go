package serve

import (
	"encoding/json"
	"errors"
	"net/http"
	httppprof "net/http/pprof"

	"github.com/scipioneer/smart/internal/obs"
)

// Handler returns the service's HTTP API on a stdlib mux:
//
//	POST   /v1/jobs          submit a JobSpec; ?wait=1 blocks until terminal
//	GET    /v1/jobs          list all jobs
//	GET    /v1/jobs/{id}     one job's state
//	GET    /v1/jobs/{id}/stream  NDJSON result stream (replay + live)
//	DELETE /v1/jobs/{id}     cancel a job
//	GET    /v1/apps          registered application names
//	GET    /healthz          liveness + drain state
//	GET    /metrics[.json]   the obs registry (Prometheus text / JSON)
//	GET    /debug/pprof/*    runtime profiles, labeled by job/tenant/phase
//
// Admission failures map to HTTP: queue full and memory pressure are 429
// with a Retry-After hint, draining is 503; a bad spec is 400.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleStream)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/apps", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"apps": Apps()})
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		if s.Draining() {
			writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining"})
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"status": "ok"})
	})
	metrics := obs.Handler(s.cfg.Registry)
	mux.Handle("GET /metrics", metrics)
	mux.Handle("GET /metrics.json", metrics)
	// Profiling endpoints. Samples carry the job/tenant/app labels runJob
	// sets plus the scheduler's phase/engine labels, so a profile scraped
	// mid-run attributes CPU to individual jobs and phases.
	mux.HandleFunc("GET /debug/pprof/", httppprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", httppprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", httppprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", httppprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", httppprof.Trace)
	return mux
}

// errorBody is the JSON shape of every non-2xx response.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeSubmitError maps a Submit error to its status code.
func writeSubmitError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrMemPressure):
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, errorBody{err.Error()})
	case errors.Is(err, ErrDraining):
		w.Header().Set("Retry-After", "5")
		writeJSON(w, http.StatusServiceUnavailable, errorBody{err.Error()})
	default:
		writeJSON(w, http.StatusBadRequest, errorBody{err.Error()})
	}
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{"bad job spec: " + err.Error()})
		return
	}
	j, err := s.Submit(spec)
	if err != nil {
		writeSubmitError(w, err)
		return
	}
	if r.URL.Query().Get("wait") != "" {
		select {
		case <-j.Done():
			writeJSON(w, http.StatusOK, j.View())
		case <-r.Context().Done():
			// The client went away; the job keeps running.
		}
		return
	}
	writeJSON(w, http.StatusAccepted, j.View())
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.List()})
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	j, err := s.Get(r.PathValue("id"))
	if err != nil {
		writeJSON(w, http.StatusNotFound, errorBody{err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, j.View())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	if err := s.Cancel(r.PathValue("id"), nil); err != nil {
		writeJSON(w, http.StatusNotFound, errorBody{err.Error()})
		return
	}
	j, _ := s.Get(r.PathValue("id"))
	writeJSON(w, http.StatusOK, j.View())
}

// handleStream serves the job's record stream as NDJSON: first a replay of
// everything buffered so far, then live records until the job finishes or
// the client disconnects. Each line is one StreamRecord; a terminal record
// ("result", "error", "cancelled", "checkpointed", "rejected") is always
// the last line of a complete stream.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	j, err := s.Get(r.PathValue("id"))
	if err != nil {
		writeJSON(w, http.StatusNotFound, errorBody{err.Error()})
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	writeRec := func(rec StreamRecord) bool {
		rec.Job = j.id
		if err := enc.Encode(rec); err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}

	replay, live, cancel := j.hub.subscribe()
	defer cancel()
	for _, rec := range replay {
		if !writeRec(rec) {
			return
		}
	}
	for {
		select {
		case rec, ok := <-live:
			if !ok {
				return
			}
			if !writeRec(rec) {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}
