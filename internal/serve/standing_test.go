package serve

import (
	"context"
	"encoding/json"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/scipioneer/smart/internal/obs"
)

// collectRecords subscribes to a job's stream and accumulates every record
// until the hub closes; the returned func waits for that and hands the
// records back.
func collectRecords(j *Job) func() []StreamRecord {
	replay, ch, _ := j.hub.subscribe()
	var mu sync.Mutex
	recs := append([]StreamRecord(nil), replay...)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for rec := range ch {
			mu.Lock()
			recs = append(recs, rec)
			mu.Unlock()
		}
	}()
	return func() []StreamRecord {
		<-done
		mu.Lock()
		defer mu.Unlock()
		return recs
	}
}

// TestStandingJobRunsToCompletion: a standing histogram query fires one
// window record per tumbling window, in order, each final with the batch
// builders' result shape, then finishes with a standing summary result.
func TestStandingJobRunsToCompletion(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	j, err := s.Submit(JobSpec{
		App: "histogram", Kind: KindStanding, Steps: 8, Elems: 2048, Seed: 42,
		Params: Params{WindowSize: 2, Buckets: 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	recs := collectRecords(j)
	waitStatus(t, j, StatusDone, 30*time.Second)

	var windows []StreamRecord
	steps := 0
	for _, rec := range recs() {
		switch rec.Type {
		case "window":
			windows = append(windows, rec)
		case "step":
			steps++
		}
	}
	if steps != 8 {
		t.Errorf("stream carried %d step records, want 8", steps)
	}
	if len(windows) != 4 {
		t.Fatalf("stream carried %d window records, want 4: %+v", len(windows), windows)
	}
	for i, w := range windows {
		if !w.Final {
			t.Errorf("window %d not final: %+v", i, w)
		}
		if w.WinStart != int64(i*2) || w.WinEnd != int64(i*2+2) {
			t.Errorf("window %d spans [%d,%d), want [%d,%d)", i, w.WinStart, w.WinEnd, i*2, i*2+2)
		}
		val, ok := w.Value.(map[string]any)
		if !ok {
			t.Fatalf("window %d value is %T, want map", i, w.Value)
		}
		buckets, ok := val["buckets"].([]int64)
		if !ok || len(buckets) != 16 {
			t.Fatalf("window %d buckets = %v", i, val["buckets"])
		}
		var total int64
		for _, n := range buckets {
			total += n
		}
		// Two 2048-element steps per window; the ±4σ default range can drop
		// a handful of tail values.
		if total < 4000 || total > 4096 {
			t.Errorf("window %d histogram counted %d elements, want ~4096", i, total)
		}
	}

	res, ok := j.View().Result.(map[string]any)
	if !ok {
		t.Fatalf("result is %T, want map", j.View().Result)
	}
	if res["kind"] != KindStanding || res["windows"].(int64) != 4 || res["steps"].(int64) != 8 {
		t.Errorf("standing summary %v", res)
	}
}

// TestStandingDrainResume: a drain checkpoints the standing query's pipeline
// snapshot plus resume sidecar; a fresh server restores it and the resumed
// query fires exactly the windows the first run did not — counted across
// both runs, every window appears once.
func TestStandingDrainResume(t *testing.T) {
	ckdir := t.TempDir()
	s := NewServer(Config{Workers: 1, CheckpointDir: ckdir, Registry: obs.NewRegistry()})
	const steps, winSize = 5000, 64
	spec := JobSpec{
		App: "histogram", Kind: KindStanding, Steps: steps, Elems: 4096, Seed: 7,
		Params: Params{WindowSize: winSize, Buckets: 8},
	}
	j1, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	recs1 := collectRecords(j1)

	// Wait until the query is demonstrably mid-stream, then drain.
	waitStatus(t, j1, StatusRunning, 5*time.Second)
	deadline := time.Now().Add(10 * time.Second)
	for j1.prog.stepsDone() < 10 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	s.Drain(0)
	if got := j1.View().Status; got != StatusCheckpointed {
		t.Fatalf("status after drain = %q (error %q), want %q", got, j1.View().Error, StatusCheckpointed)
	}
	ckPath := j1.View().Checkpoint
	buf, err := os.ReadFile(ckPath)
	if err != nil {
		t.Fatal(err)
	}
	var ck standingCheckpoint
	if err := json.Unmarshal(buf, &ck); err != nil || ck.Snapshot == nil {
		t.Fatalf("checkpoint is not a pipeline snapshot: %v (%s)", err, buf)
	}
	var sc resumeSidecar
	scBuf, err := os.ReadFile(sidecarPath(ckPath))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(scBuf, &sc); err != nil {
		t.Fatal(err)
	}
	if sc.StepsDone == 0 || sc.StepsDone >= steps {
		t.Fatalf("sidecar steps_done = %d, want mid-stream", sc.StepsDone)
	}
	if sc.Spec.Kind != KindStanding {
		t.Fatalf("sidecar kind %q", sc.Spec.Kind)
	}

	firstStarts := map[int64]bool{}
	for _, rec := range recs1() {
		if rec.Type == "window" && rec.Final {
			if firstStarts[rec.WinStart] {
				t.Fatalf("window %d fired twice in the first run", rec.WinStart)
			}
			firstStarts[rec.WinStart] = true
		}
	}

	s2 := NewServer(Config{Workers: 1, CheckpointDir: ckdir, Registry: obs.NewRegistry()})
	t.Cleanup(func() { s2.Drain(0) })
	ids, err := s2.RestoreCheckpoints()
	if err != nil || len(ids) != 1 {
		t.Fatalf("restored %v (err %v), want one job", ids, err)
	}
	j2, err := s2.Get(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, j2, StatusDone, 60*time.Second)
	res := j2.View().Result.(map[string]any)
	if res["steps"].(int64) != steps {
		t.Errorf("resumed run covered %v steps, want %d", res["steps"], steps)
	}
	wantWindows := int64((steps + winSize - 1) / winSize)
	gotTotal := int64(len(firstStarts)) + res["windows"].(int64)
	if gotTotal != wantWindows {
		t.Errorf("windows across drain: first run %d + resumed %d = %d, want %d — duplicated or lost windows",
			len(firstStarts), res["windows"], gotTotal, wantWindows)
	}
	if _, err := os.Stat(ckPath); !os.IsNotExist(err) {
		t.Errorf("checkpoint %s not garbage-collected after completion", ckPath)
	}
}

// TestStandingCancelMidRun: a hard client cancel terminates the query as
// cancelled, with no checkpoint artifacts.
func TestStandingCancelMidRun(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	j, err := s.Submit(JobSpec{
		App: "moments", Kind: KindStanding, Steps: 1 << 20, Elems: 4096,
		Params: Params{WindowSize: 16, GridSize: 256},
	})
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, j, StatusRunning, 5*time.Second)
	if err := s.Cancel(j.ID(), nil); err != nil {
		t.Fatal(err)
	}
	waitStatus(t, j, StatusCancelled, 10*time.Second)
	if ck := j.View().Checkpoint; ck != "" {
		t.Errorf("cancelled standing query left checkpoint %s", ck)
	}
}

type nopExecutor struct{}

func (nopExecutor) Execute(ctx context.Context, job RemoteJob) (any, error) { return nil, nil }

// TestStandingRejectedInClusterMode: standing queries are pinned to the
// serving node; cluster-mode servers refuse them at submission.
func TestStandingRejectedInClusterMode(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, Executor: nopExecutor{}})
	_, err := s.Submit(JobSpec{App: "histogram", Kind: KindStanding, Steps: 4})
	if err == nil || !strings.Contains(err.Error(), "cluster") {
		t.Fatalf("cluster-mode standing submit: err = %v, want cluster rejection", err)
	}
}

// TestStandingBadSpecs: malformed standing specs fail at submission with
// builder errors, never run-time failures.
func TestStandingBadSpecs(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	for name, spec := range map[string]JobSpec{
		"unknown kind":    {App: "histogram", Kind: "perpetual"},
		"unsupported app": {App: "kmeans", Kind: KindStanding, Params: Params{K: 2, Dims: 2}},
		"bad window kind": {App: "histogram", Kind: KindStanding, Params: Params{WindowKind: "hopping"}},
		"bad slide":       {App: "histogram", Kind: KindStanding, Params: Params{WindowKind: "sliding", WindowSize: 4, WindowSlide: 8}},
		"bad late":        {App: "histogram", Kind: KindStanding, Params: Params{Late: "buffer"}},
		"negative late":   {App: "histogram", Kind: KindStanding, Params: Params{AllowedLateness: -1}},
	} {
		if _, err := s.Submit(spec); err == nil {
			t.Errorf("%s: submit succeeded", name)
		}
	}
}

// TestStandingSlidingLateSideOutput: sliding windows over an in-order step
// stream fire in end order with the configured overlap; the side-output
// policy is accepted (the deterministic source produces nothing late).
func TestStandingSlidingLateSideOutput(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	j, err := s.Submit(JobSpec{
		App: "gridagg", Kind: KindStanding, Steps: 12, Elems: 1024, Seed: 3,
		Params: Params{WindowKind: "sliding", WindowSize: 4, WindowSlide: 2, GridSize: 256, Late: "side_output"},
	})
	if err != nil {
		t.Fatal(err)
	}
	recs := collectRecords(j)
	waitStatus(t, j, StatusDone, 30*time.Second)
	var ends []int64
	late := 0
	for _, rec := range recs() {
		switch rec.Type {
		case "window":
			ends = append(ends, rec.WinEnd)
		case "late":
			late++
		}
	}
	for i := 1; i < len(ends); i++ {
		if ends[i] < ends[i-1] {
			t.Fatalf("windows fired out of order: %v", ends)
		}
	}
	// Sliding(4,2) over steps 0..11: starts -2,0,2,...,10.
	if len(ends) != 7 {
		t.Errorf("fired %d sliding windows, want 7: %v", len(ends), ends)
	}
	if late != 0 {
		t.Errorf("%d late records from an in-order stream", late)
	}
}
