package serve

import (
	"fmt"
	"math"
	"testing"
	"time"
)

// wfqJob builds a minimal queued job for direct wfq tests.
func wfqJob(tenant string, n int) *Job {
	return &Job{id: fmt.Sprintf("%s-%d", tenant, n), tenant: tenant}
}

// TestWFQSharesConvergeToWeights is the headline fairness property: with
// three continuously backlogged tenants at weights 4:2:1, the pop sequence
// must hand out service in that ratio, not merely eventually but over any
// reasonably sized window.
func TestWFQSharesConvergeToWeights(t *testing.T) {
	q := newWFQ(4096, map[string]TenantConfig{
		"a": {Weight: 4},
		"b": {Weight: 2},
		"c": {Weight: 1},
	})
	const perTenant = 512
	for i := 0; i < perTenant; i++ {
		for _, tn := range []string{"a", "b", "c"} {
			if err := q.push(wfqJob(tn, i), tn); err != nil {
				t.Fatalf("push %s #%d: %v", tn, i, err)
			}
		}
	}
	const pops = 350 // every tenant stays backlogged throughout
	counts := map[string]int{}
	for i := 0; i < pops; i++ {
		j := q.pop()
		if j == nil {
			t.Fatalf("pop %d returned nil with %d jobs queued", i, q.depth())
		}
		counts[j.tenant]++
		q.release(j.tenant)
	}
	// Expected shares: 4/7, 2/7, 1/7 of the pops. Virtual-time rounding at
	// the window edges shifts a few pops between tenants; anything beyond
	// that means the shares are wrong.
	want := map[string]float64{"a": 4.0 / 7, "b": 2.0 / 7, "c": 1.0 / 7}
	for tn, share := range want {
		expect := share * pops
		if math.Abs(float64(counts[tn])-expect) > 4 {
			t.Errorf("tenant %s got %d pops, want %.0f±4 (counts: %v)", tn, counts[tn], expect, counts)
		}
	}
}

// TestWFQNoStarvationUnderFlood pins the starvation-freedom guarantee: a
// single job from a low-class tenant must be served within a bounded number
// of pops even when a weight-100 tenant keeps its backlog saturated by
// pushing before every pop. With strict priorities the victim would wait
// forever; with WFQ its finish tag (1/0.25 = 4) is overtaken once the
// flooder has consumed 4 units of virtual time, i.e. about 400 pops.
func TestWFQNoStarvationUnderFlood(t *testing.T) {
	q := newWFQ(4096, map[string]TenantConfig{
		"victim": {Class: ClassLow}, // effective weight 0.25
		"flood":  {Weight: 100},
	})
	if err := q.push(wfqJob("victim", 0), "victim"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := q.push(wfqJob("flood", i), "flood"); err != nil {
			t.Fatal(err)
		}
	}
	const bound = 450 // 400 flood pops to pass tag 4.0, plus slack
	servedAt := -1
	for i := 0; i < bound; i++ {
		// Adversarial arrival: the flooder refills before every pop so it is
		// never idle and never loses virtual-time credit.
		if err := q.push(wfqJob("flood", 100+i), "flood"); err != nil {
			t.Fatal(err)
		}
		j := q.pop()
		if j == nil {
			t.Fatalf("pop %d returned nil", i)
		}
		q.release(j.tenant)
		if j.tenant == "victim" {
			servedAt = i
			break
		}
	}
	if servedAt < 0 {
		t.Fatalf("victim job starved: not served within %d pops of a continuous flood", bound)
	}
	// It should also not be served unreasonably early: the flood owns ~400
	// pops of virtual time first. This checks the shares hold under flood,
	// not just that the victim eventually runs.
	if servedAt < 350 {
		t.Errorf("victim served after %d pops, want ≈400: flood is not receiving its weighted share", servedAt)
	}
}

// TestWFQQuotaGatesEligibilityOnly: a tenant at its in-flight quota keeps
// its backlog and its virtual-time stamps but cannot occupy another worker;
// release restores eligibility.
func TestWFQQuotaGatesEligibilityOnly(t *testing.T) {
	q := newWFQ(16, map[string]TenantConfig{
		"a": {Quota: 1},
		"b": {Weight: 0.5},
	})
	for i := 0; i < 2; i++ {
		if err := q.push(wfqJob("a", i), "a"); err != nil {
			t.Fatal(err)
		}
	}
	if err := q.push(wfqJob("b", 0), "b"); err != nil {
		t.Fatal(err)
	}
	// Tags: a → 1.0, 2.0; b → 2.0. First pop is a's head (smallest tag).
	if j := q.pop(); j.tenant != "a" {
		t.Fatalf("first pop from tenant %s, want a", j.tenant)
	}
	// a is now at quota. Its second job ties b's at tag 2.0 and would win
	// the name tiebreak — the quota must divert the pop to b instead.
	if j := q.pop(); j.tenant != "b" {
		t.Fatalf("second pop from tenant %s, want b (a is at its in-flight quota)", j.tenant)
	}
	// Releasing a's slot makes its queued job eligible again.
	q.release("a")
	if j := q.pop(); j.tenant != "a" {
		t.Fatalf("third pop from tenant %s, want a after release", j.tenant)
	}
	if q.depth() != 0 {
		t.Fatalf("queue depth %d after draining, want 0", q.depth())
	}
}

// TestWFQQuotaBlocksPopUntilRelease: with only an over-quota tenant
// backlogged, pop must block (not spin or return nil) until release.
func TestWFQQuotaBlocksPopUntilRelease(t *testing.T) {
	q := newWFQ(16, map[string]TenantConfig{"a": {Quota: 1}})
	for i := 0; i < 2; i++ {
		if err := q.push(wfqJob("a", i), "a"); err != nil {
			t.Fatal(err)
		}
	}
	if j := q.pop(); j == nil || j.tenant != "a" {
		t.Fatalf("first pop = %v, want a job from tenant a", j)
	}
	got := make(chan *Job, 1)
	go func() { got <- q.pop() }()
	select {
	case j := <-got:
		t.Fatalf("pop returned %v while tenant a was at quota", j.id)
	case <-time.After(50 * time.Millisecond):
	}
	q.release("a")
	select {
	case j := <-got:
		if j == nil || j.tenant != "a" {
			t.Fatalf("post-release pop = %v, want tenant a", j)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("pop still blocked after release")
	}
}

// TestWFQConfigValidation: bad tenant configs surface at push time.
func TestWFQConfigValidation(t *testing.T) {
	q := newWFQ(16, map[string]TenantConfig{
		"neg": {Weight: -1},
		"cls": {Class: "urgent"},
	})
	if err := q.push(wfqJob("neg", 0), "neg"); err == nil {
		t.Error("push for negative-weight tenant succeeded, want error")
	}
	if err := q.push(wfqJob("cls", 0), "cls"); err == nil {
		t.Error("push for unknown-class tenant succeeded, want error")
	}
	if err := q.push(wfqJob("ok", 0), "ok"); err != nil {
		t.Errorf("push for unconfigured tenant: %v (defaults should apply)", err)
	}
}

// TestWFQClassFactors pins the class multipliers the docs promise.
func TestWFQClassFactors(t *testing.T) {
	cases := []struct {
		class string
		want  float64
	}{{"", 1}, {ClassNormal, 1}, {ClassHigh, 4}, {ClassLow, 0.25}}
	for _, c := range cases {
		got, err := classFactor(c.class)
		if err != nil || got != c.want {
			t.Errorf("classFactor(%q) = %v, %v; want %v", c.class, got, err, c.want)
		}
	}
	if _, err := classFactor("max"); err == nil {
		t.Error("classFactor accepted unknown class")
	}
}
