package serve

import (
	"sync"
	"time"
)

// StreamRecord is one NDJSON line of a job's result stream. Records arrive
// in emission order; Seq is a per-job sequence number so clients can detect
// gaps (the hub drops records rather than block the reduction hot path when
// a consumer falls behind).
type StreamRecord struct {
	// Type discriminates the record: "emit" (an early-emitted output value,
	// core.Triggered), "span" (a completed runtime phase), "step" (one
	// simulation time-step analyzed), "window" (a standing query's fired
	// pane), "late" (a standing query's late event), "result" (the job's
	// final output, last record of a successful stream), "error",
	// "cancelled", "checkpointed", or "rejected".
	Type string `json:"type"`
	// Job is the emitting job's id.
	Job string `json:"job"`
	// Seq is the per-job sequence number, starting at 0.
	Seq int64 `json:"seq"`
	// Key and Value carry an early emission: the reduction key and the
	// converted output value.
	Key   int `json:"key,omitempty"`
	Value any `json:"value,omitempty"`
	// Phase and DurNS carry a phase span ("reduction", "local combine", ...).
	Phase string `json:"phase,omitempty"`
	DurNS int64  `json:"dur_ns,omitempty"`
	// Step is the completed time-step index for "step" records and the late
	// event's step for "late" records.
	Step int `json:"step,omitempty"`
	// WinStart and WinEnd bound the event-time window of "window", "late"
	// and windowed "emit" records; Pane is the window's firing index and
	// Final marks its closing on-watermark pane ("window" records only).
	WinStart int64 `json:"win_start,omitempty"`
	WinEnd   int64 `json:"win_end,omitempty"`
	Pane     int   `json:"pane,omitempty"`
	Final    bool  `json:"final,omitempty"`
	// Error carries the failure message for "error"/"cancelled" records.
	Error string `json:"error,omitempty"`
	// Checkpoint is the checkpoint path for "checkpointed" records.
	Checkpoint string `json:"checkpoint,omitempty"`
}

// streamBufCap bounds the per-job replay buffer: a late-attaching stream
// client sees at most this many of the job's most recent records (plus every
// record from attach time on).
const streamBufCap = 256

// subChanCap is the per-subscriber channel depth; a subscriber this far
// behind starts losing records instead of stalling the emitting reduction
// worker.
const subChanCap = 128

// streamHub fans a job's records out to any number of attached stream
// clients and keeps a bounded replay buffer for late attachers. Emit is
// called from reduction worker goroutines (early emissions) and the job's
// coordinating goroutine (spans, steps, terminal records); all methods are
// safe for concurrent use.
type streamHub struct {
	mu      sync.Mutex
	seq     int64
	buf     []StreamRecord // ring, oldest first once full
	start   int            // index of oldest record in buf
	subs    map[int]chan StreamRecord
	nextSub int
	dropped int64
	closed  bool
}

func newStreamHub() *streamHub {
	return &streamHub{subs: make(map[int]chan StreamRecord)}
}

// emit stamps the record's sequence number, buffers it, and offers it to
// every live subscriber without blocking.
func (h *streamHub) emit(rec StreamRecord) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	rec.Seq = h.seq
	h.seq++
	if len(h.buf) < streamBufCap {
		h.buf = append(h.buf, rec)
	} else {
		h.buf[h.start] = rec
		h.start = (h.start + 1) % streamBufCap
	}
	for _, ch := range h.subs {
		select {
		case ch <- rec:
		default:
			h.dropped++
		}
	}
}

// subscribe registers a consumer: it returns a replay of the buffered
// records, a channel delivering everything emitted after them (closed when
// the job finishes), and a cancel function.
func (h *streamHub) subscribe() (replay []StreamRecord, ch chan StreamRecord, cancel func()) {
	h.mu.Lock()
	defer h.mu.Unlock()
	replay = make([]StreamRecord, 0, len(h.buf))
	replay = append(replay, h.buf[h.start:]...)
	replay = append(replay, h.buf[:h.start]...)
	ch = make(chan StreamRecord, subChanCap)
	if h.closed {
		close(ch)
		return replay, ch, func() {}
	}
	id := h.nextSub
	h.nextSub++
	h.subs[id] = ch
	return replay, ch, func() {
		h.mu.Lock()
		defer h.mu.Unlock()
		if c, ok := h.subs[id]; ok {
			delete(h.subs, id)
			close(c)
		}
	}
}

// close emits the terminal record and closes every subscriber channel; later
// emits are ignored.
func (h *streamHub) close(final StreamRecord) {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.mu.Unlock()
	h.emit(final)
	h.mu.Lock()
	h.closed = true
	for id, ch := range h.subs {
		delete(h.subs, id)
		close(ch)
	}
	h.mu.Unlock()
}

// droppedCount reports records lost to slow subscribers.
func (h *streamHub) droppedCount() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.dropped
}

// rfc3339OrEmpty formats t for JobView, mapping the zero time to "".
func rfc3339OrEmpty(t time.Time) string {
	if t.IsZero() {
		return ""
	}
	return t.UTC().Format(time.RFC3339Nano)
}
