package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"sync/atomic"

	"github.com/scipioneer/smart/internal/analytics"
	"github.com/scipioneer/smart/internal/core"
	"github.com/scipioneer/smart/internal/memmodel"
	"github.com/scipioneer/smart/internal/mpi"
	"github.com/scipioneer/smart/internal/obs"
	"github.com/scipioneer/smart/internal/stream"
)

// Job kinds. KindBatch runs to one final result; KindStanding is a
// continuous windowed query over the step stream.
const (
	KindBatch    = "batch"
	KindStanding = "standing"
)

// windowSpecOf translates a spec's window params into a stream.WindowSpec,
// validating eagerly so a bad spec is a 400 at the front door.
func windowSpecOf(p Params) (stream.WindowSpec, error) {
	size := p.WindowSize
	if size == 0 {
		size = 8
	}
	if size < 0 {
		return stream.WindowSpec{}, fmt.Errorf("serve: window_size must be positive")
	}
	switch p.WindowKind {
	case "", "tumbling":
		return stream.Tumbling(size), nil
	case "sliding":
		slide := p.WindowSlide
		if slide == 0 {
			slide = (size + 1) / 2
		}
		if slide < 0 || slide > size {
			return stream.WindowSpec{}, fmt.Errorf("serve: window_slide must be in (0, window_size]")
		}
		return stream.Sliding(size, slide), nil
	case "session":
		return stream.Session(size), nil
	case "global":
		return stream.Global(), nil
	default:
		return stream.WindowSpec{}, fmt.Errorf("serve: unknown window_kind %q (have tumbling, sliding, session, global)", p.WindowKind)
	}
}

// latePolicyOf parses the late-data policy param.
func latePolicyOf(p Params) (stream.LatePolicy, error) {
	switch p.Late {
	case "", "drop":
		return stream.LateDrop, nil
	case "side_output":
		return stream.LateSideOutput, nil
	default:
		return 0, fmt.Errorf("serve: unknown late policy %q (have drop, side_output)", p.Late)
	}
}

// standingCombiner compiles the spec's application into a windowed combiner.
// The per-window result payloads mirror the batch builders' result maps so a
// standing query's windows read like a sequence of small batch results.
func standingCombiner(spec JobSpec, mem *memmodel.Node) (stream.Combiner, error) {
	args := core.SchedArgs{
		NumThreads: spec.Threads, ChunkSize: 1, NumIters: 1, Mem: mem,
		Engine: spec.Engine, MapImpl: spec.MapImpl,
	}
	p := spec.Params
	switch spec.App {
	case "histogram":
		lo, hi := rangeOr(p)
		buckets := p.Buckets
		if buckets == 0 {
			buckets = 100
		}
		if buckets < 0 || buckets > 1<<16 {
			return nil, fmt.Errorf("serve: histogram buckets must be in (0, 65536]")
		}
		return stream.NewSchedCombiner(stream.SchedOptions[int64]{
			Build: func(int) (core.Analytics[float64, int64], error) {
				return analytics.NewHistogram(lo, hi, buckets), nil
			},
			Args:   args,
			OutLen: func(int) int { return buckets },
			Result: func(_ *core.Scheduler[float64, int64], out []int64) (any, error) {
				return map[string]any{"buckets": append([]int64(nil), out...), "lo": lo, "hi": hi}, nil
			},
		})
	case "gridagg":
		gs := p.GridSize
		if gs == 0 {
			gs = 1000
		}
		if gs < 0 {
			return nil, fmt.Errorf("serve: grid_size must be positive")
		}
		return stream.NewSchedCombiner(stream.SchedOptions[float64]{
			Build: func(int) (core.Analytics[float64, float64], error) {
				return analytics.NewGridAgg(gs, 0), nil
			},
			Args:   args,
			OutLen: func(n int) int { return (n + gs - 1) / gs },
			Result: func(_ *core.Scheduler[float64, float64], out []float64) (any, error) {
				return map[string]any{"cells": append([]float64(nil), out...), "grid_size": gs}, nil
			},
		})
	case "moments":
		gs := p.GridSize
		if gs == 0 {
			gs = 1000
		}
		if gs < 0 {
			return nil, fmt.Errorf("serve: grid_size must be positive")
		}
		return stream.NewSchedCombiner(stream.SchedOptions[float64]{
			Build: func(int) (core.Analytics[float64, float64], error) {
				return analytics.NewMoments(gs, 0), nil
			},
			Args:   args,
			OutLen: func(n int) int { return (n + gs - 1) / gs },
			Result: func(_ *core.Scheduler[float64, float64], out []float64) (any, error) {
				return map[string]any{"variance": append([]float64(nil), out...), "grid_size": gs}, nil
			},
		})
	case "movingavg":
		win := p.Window
		if win == 0 {
			win = 25
		}
		if win < 0 {
			return nil, fmt.Errorf("serve: window must be positive")
		}
		return stream.NewSchedCombiner(stream.SchedOptions[float64]{
			Build: func(n int) (core.Analytics[float64, float64], error) {
				if win > n {
					return nil, fmt.Errorf("serve: moving-average window %d wider than the %d-element query window", win, n)
				}
				return analytics.NewMovingAverage(win, n, 0, true), nil
			},
			Args:    args,
			PerSize: true,
			Multi:   true,
			OutLen:  func(n int) int { return n },
			Result: func(_ *core.Scheduler[float64, float64], out []float64) (any, error) {
				head := out
				if len(head) > 32 {
					head = head[:32]
				}
				return map[string]any{"len": len(out), "head": append([]float64(nil), head...)}, nil
			},
		})
	default:
		return nil, fmt.Errorf("serve: app %q has no standing-query form (have histogram, gridagg, moments, movingavg)", spec.App)
	}
}

// standingCheckpoint is the durable form of a drained streaming job: the
// pipeline snapshot (open windows, watermarks, ingest sequences). The
// consumed-step count travels in the resume sidecar like every other job.
type standingCheckpoint struct {
	V        int              `json:"v"`
	Snapshot *stream.Snapshot `json:"snapshot"`
}

// writeSnapshotCheckpoint snapshots a pipeline and persists it crash-safely.
func writeSnapshotCheckpoint(path string, p *stream.Pipeline) error {
	if p == nil {
		return fmt.Errorf("serve: streaming job never ran, nothing to checkpoint")
	}
	s, err := p.Snapshot()
	if err != nil {
		return err
	}
	buf, err := json.Marshal(standingCheckpoint{V: 1, Snapshot: s})
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// readSnapshotCheckpoint loads a snapshot checkpoint written by
// writeSnapshotCheckpoint.
func readSnapshotCheckpoint(path string) (*stream.Snapshot, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var ck standingCheckpoint
	if err := json.Unmarshal(buf, &ck); err != nil {
		return nil, fmt.Errorf("serve: bad streaming checkpoint %s: %w", path, err)
	}
	if ck.Snapshot == nil {
		return nil, fmt.Errorf("serve: streaming checkpoint %s has no snapshot", path)
	}
	return ck.Snapshot, nil
}

// buildStanding compiles a standing (continuous windowed) job: the spec's
// application becomes a stream combiner, the deterministic emulator stream
// becomes the source (event time = step index), fired windows stream out as
// "window" records, and a drain checkpoint persists the pipeline snapshot —
// open windows travel across the restart, fired ones do not, so a resumed
// query emits each window exactly once.
func buildStanding(spec JobSpec, mem *memmodel.Node, comm *mpi.Comm) (*jobProgram, error) {
	if comm != nil {
		return nil, fmt.Errorf("serve: standing queries cannot span cluster ranks")
	}
	ws, err := windowSpecOf(spec.Params)
	if err != nil {
		return nil, err
	}
	pol, err := latePolicyOf(spec.Params)
	if err != nil {
		return nil, err
	}
	if spec.Params.AllowedLateness < 0 {
		return nil, fmt.Errorf("serve: allowed_lateness must be non-negative")
	}
	comb, err := standingCombiner(spec, mem)
	if err != nil {
		return nil, err
	}

	var (
		mu    sync.Mutex
		skip  int
		snap  *stream.Snapshot // restored state, applied at run start
		pipe  *stream.Pipeline // live pipeline, for checkpointing
		trace obs.TraceContext
	)
	var done atomic.Int64
	prog := &jobProgram{
		setSkip:   func(n int) { mu.Lock(); skip = n; mu.Unlock() },
		stepsDone: func() int { return int(done.Load()) },
		setTrace: func(tc obs.TraceContext) {
			mu.Lock()
			trace = tc
			mu.Unlock()
			if ts, ok := comb.(interface{ SetTraceContext(obs.TraceContext) }); ok {
				ts.SetTraceContext(tc)
			}
		},
	}
	prog.checkpoint = func(path string) error {
		mu.Lock()
		p := pipe
		mu.Unlock()
		return writeSnapshotCheckpoint(path, p)
	}
	prog.restore = func(path string) error {
		s, err := readSnapshotCheckpoint(path)
		if err != nil {
			return err
		}
		mu.Lock()
		snap = s
		mu.Unlock()
		return nil
	}

	prog.run = func(ctx context.Context, emit func(StreamRecord)) (any, error) {
		mu.Lock()
		startStep := skip
		restored := snap
		mu.Unlock()
		done.Store(int64(startStep))

		// The drain shield lets an in-flight window combine finish; the
		// source stops at the next step boundary, Run surfaces the drain
		// cause with every open window intact, and the checkpoint snapshots
		// exactly that state.
		stepCtx, stop := drainShield(ctx)
		defer stop()

		gen := stream.Generator(stream.GeneratorConfig{
			Steps: spec.Steps - startStep, StepElems: spec.Elems,
			Seed: spec.Seed, StartStep: startStep,
		})
		src := stream.SourceFunc(func(fctx context.Context, push func(stream.Event) error) error {
			return gen.Feed(fctx, func(ev stream.Event) error {
				if err := drainRequested(ctx); err != nil {
					return err
				}
				if err := push(ev); err != nil {
					return err
				}
				step := int(done.Add(1))
				emit(StreamRecord{Type: "step", Step: step - 1})
				return nil
			})
		})

		var windows, panes atomic.Int64
		p := stream.New().
			From(src).
			Window(ws).
			Trigger(stream.Trigger{EarlyEmits: true}).
			OnLate(pol).
			AllowedLateness(spec.Params.AllowedLateness).
			Combine(comb).
			OnEmit(func(w stream.Window, key int, value any) {
				emit(StreamRecord{Type: "emit", Key: key, Value: value, WinStart: w.Start, WinEnd: w.End})
			}).
			SideOutput(func(ev stream.Event, w stream.Window) {
				emit(StreamRecord{Type: "late", Step: int(ev.Time), WinStart: w.Start, WinEnd: w.End})
			}).
			To(stream.CallbackSink(func(res stream.WindowResult) error {
				if res.Final {
					windows.Add(1)
				}
				panes.Add(1)
				emit(StreamRecord{
					Type: "window", WinStart: res.Window.Start, WinEnd: res.Window.End,
					Pane: res.Pane, Final: res.Final, Value: res.Value,
				})
				return nil
			}))
		mu.Lock()
		if trace.Valid() {
			if ts, ok := comb.(interface{ SetTraceContext(obs.TraceContext) }); ok {
				ts.SetTraceContext(trace)
			}
		}
		pipe = p
		mu.Unlock()
		if restored != nil {
			if err := p.Restore(restored); err != nil {
				return nil, err
			}
		}
		if err := p.Run(stepCtx); err != nil {
			return nil, err
		}
		res := map[string]any{
			"kind": KindStanding, "windows": windows.Load(), "panes": panes.Load(),
			"steps": done.Load(),
		}
		if sc, ok := comb.(interface{ Stats() *core.Stats }); ok {
			if st := sc.Stats(); st != nil {
				res["stats"] = statsView(st.Snapshot())
			}
		}
		return res, nil
	}
	return prog, nil
}
