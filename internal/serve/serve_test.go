package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"github.com/scipioneer/smart/internal/memmodel"
	"github.com/scipioneer/smart/internal/mpi"
	"github.com/scipioneer/smart/internal/obs"
)

// registerBlockingApp installs a throwaway "test-block" application whose
// jobs park until the returned channel is closed (or their context ends),
// giving admission tests a job that occupies a worker deterministically.
func registerBlockingApp(t *testing.T) chan struct{} {
	t.Helper()
	release := make(chan struct{})
	builders["test-block"] = func(JobSpec, *memmodel.Node, *mpi.Comm) (*jobProgram, error) {
		return &jobProgram{run: func(ctx context.Context, emit func(StreamRecord)) (any, error) {
			select {
			case <-release:
				return "released", nil
			case <-ctx.Done():
				return nil, context.Cause(ctx)
			}
		}}, nil
	}
	t.Cleanup(func() { delete(builders, "test-block") })
	return release
}

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Registry == nil {
		cfg.Registry = obs.NewRegistry()
	}
	if cfg.CheckpointDir == "" {
		cfg.CheckpointDir = t.TempDir()
	}
	s := NewServer(cfg)
	t.Cleanup(func() { s.Drain(0) })
	return s
}

// waitStatus polls until the job reaches status or the deadline passes.
func waitStatus(t *testing.T, j *Job, want Status, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if j.View().Status == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %s: status = %q, want %q within %v", j.ID(), j.View().Status, want, timeout)
}

func TestSubmitRejectsBadSpecs(t *testing.T) {
	s := newTestServer(t, Config{})
	for _, spec := range []JobSpec{
		{},
		{App: "no-such-app"},
		{App: "histogram", Elems: -1},
		{App: "histogram", Params: Params{Buckets: -5}},
		{App: "kmeans", Params: Params{K: -1}},
	} {
		if _, err := s.Submit(spec); err == nil {
			t.Errorf("Submit(%+v) accepted a bad spec", spec)
		}
	}
}

func TestQueueBoundsAdmission(t *testing.T) {
	release := registerBlockingApp(t)
	reg := obs.NewRegistry()
	s := newTestServer(t, Config{Workers: 1, Queue: 2, Registry: reg})

	// One job occupies the single worker, two fill the queue; the fourth
	// must bounce off the bound.
	first, err := s.Submit(JobSpec{App: "test-block"})
	if err != nil {
		t.Fatalf("submit 0: %v", err)
	}
	waitStatus(t, first, StatusRunning, 2*time.Second)
	jobs := []*Job{first}
	for i := 1; i < 3; i++ {
		j, err := s.Submit(JobSpec{App: "test-block"})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		jobs = append(jobs, j)
	}
	if _, err := s.Submit(JobSpec{App: "test-block"}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("submit over capacity: err = %v, want ErrQueueFull", err)
	}
	if got := reg.Counter(`smart_serve_admission_rejects_total{cause="queue_full"}`).Value(); got != 1 {
		t.Errorf("queue_full rejects = %d, want 1", got)
	}
	if depth := reg.Gauge("smart_serve_queue_depth").Value(); depth != 2 {
		t.Errorf("queue depth = %d, want 2", depth)
	}

	close(release)
	for _, j := range jobs {
		waitStatus(t, j, StatusDone, 5*time.Second)
	}
	if depth := reg.Gauge("smart_serve_queue_depth").Value(); depth != 0 {
		t.Errorf("queue depth after drain-down = %d, want 0", depth)
	}
	if got := reg.Counter(`smart_serve_jobs_total{status="done"}`).Value(); got != 3 {
		t.Errorf("done jobs = %d, want 3", got)
	}
}

func TestMemPressureRejectsSubmission(t *testing.T) {
	node := memmodel.NewNode(1 << 20)
	alloc, err := node.Alloc("resident", 950<<10) // ~91% > default 85% high water
	if err != nil {
		t.Fatal(err)
	}
	defer alloc.Free()
	reg := obs.NewRegistry()
	s := newTestServer(t, Config{Mem: node, Registry: reg})

	if _, err := s.Submit(JobSpec{App: "histogram", Elems: 1024}); !errors.Is(err, ErrMemPressure) {
		t.Fatalf("submit under pressure: err = %v, want ErrMemPressure", err)
	}
	if got := reg.Counter(`smart_serve_admission_rejects_total{cause="mem_pressure"}`).Value(); got != 1 {
		t.Errorf("mem_pressure rejects = %d, want 1", got)
	}

	// Pressure released: the same spec is admitted.
	alloc.Free()
	j, err := s.Submit(JobSpec{App: "histogram", Elems: 1024})
	if err != nil {
		t.Fatalf("submit after release: %v", err)
	}
	waitStatus(t, j, StatusDone, 5*time.Second)
}

func TestCancelStopsRunningJob(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	// A deliberately long job: many steps of iterative k-means.
	j, err := s.Submit(JobSpec{
		App: "kmeans", Steps: 10_000, Elems: 65536,
		Params: Params{K: 8, Dims: 4, Iters: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, j, StatusRunning, 5*time.Second)
	start := time.Now()
	if err := s.Cancel(j.ID(), nil); err != nil {
		t.Fatal(err)
	}
	select {
	case <-j.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled job did not stop")
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Errorf("cancel took %v; chunk-granularity cancellation should be far faster", d)
	}
	if got := j.View().Status; got != StatusCancelled {
		t.Fatalf("status = %q, want %q", got, StatusCancelled)
	}
}

func TestCancelQueuedJob(t *testing.T) {
	release := registerBlockingApp(t)
	s := newTestServer(t, Config{Workers: 1, Queue: 2})
	blocker, err := s.Submit(JobSpec{App: "test-block"})
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, blocker, StatusRunning, 2*time.Second)
	queued, err := s.Submit(JobSpec{App: "test-block"})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Cancel(queued.ID(), nil); err != nil {
		t.Fatal(err)
	}
	waitStatus(t, queued, StatusCancelled, 2*time.Second)
	close(release)
	waitStatus(t, blocker, StatusDone, 5*time.Second)
}

func TestDeadlineCancelsJob(t *testing.T) {
	registerBlockingApp(t)
	s := newTestServer(t, Config{})
	j, err := s.Submit(JobSpec{App: "test-block", DeadlineMS: 20})
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, j, StatusCancelled, 5*time.Second)
	if msg := j.View().Error; !strings.Contains(msg, "deadline") {
		t.Errorf("error = %q, want a deadline message", msg)
	}
}

func TestDrainCheckpointsInflightAndRejectsQueued(t *testing.T) {
	ckdir := t.TempDir()
	reg := obs.NewRegistry()
	s := NewServer(Config{Workers: 1, Queue: 2, CheckpointDir: ckdir, Registry: reg})

	inflight, err := s.Submit(JobSpec{
		App: "kmeans", Steps: 10_000, Elems: 65536,
		Params: Params{K: 8, Dims: 4, Iters: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, inflight, StatusRunning, 5*time.Second)
	queued, err := s.Submit(JobSpec{App: "histogram", Elems: 1024})
	if err != nil {
		t.Fatal(err)
	}

	s.Drain(10 * time.Millisecond)

	if got := inflight.View().Status; got != StatusCheckpointed {
		t.Fatalf("inflight status = %q, want %q (error: %s)", got, StatusCheckpointed, inflight.View().Error)
	}
	ck := inflight.View().Checkpoint
	if ck == "" {
		t.Fatal("checkpointed job has no checkpoint path")
	}
	buf, err := os.ReadFile(ck)
	if err != nil {
		t.Fatalf("checkpoint file: %v", err)
	}
	if !bytes.HasPrefix(buf, []byte("SMARTCK1")) {
		t.Errorf("checkpoint %s does not start with the Smart magic", ck)
	}
	if got := queued.View().Status; got != StatusRejected {
		t.Errorf("queued status = %q, want %q", got, StatusRejected)
	}
	if _, err := s.Submit(JobSpec{App: "histogram"}); !errors.Is(err, ErrDraining) {
		t.Errorf("submit after drain: err = %v, want ErrDraining", err)
	}
	if got := reg.Counter(`smart_serve_jobs_total{status="checkpointed"}`).Value(); got != 1 {
		t.Errorf("checkpointed jobs = %d, want 1", got)
	}
	if got := reg.Counter(`smart_serve_admission_rejects_total{cause="draining"}`).Value(); got < 2 {
		t.Errorf("draining rejects = %d, want >= 2 (queue flush + post-drain submit)", got)
	}
}

func TestDrainLetsShortJobsFinish(t *testing.T) {
	release := registerBlockingApp(t)
	s := NewServer(Config{Workers: 1, Registry: obs.NewRegistry(), CheckpointDir: t.TempDir()})
	j, err := s.Submit(JobSpec{App: "test-block"})
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, j, StatusRunning, 2*time.Second)
	go func() {
		time.Sleep(20 * time.Millisecond)
		close(release)
	}()
	s.Drain(5 * time.Second)
	if got := j.View().Status; got != StatusDone {
		t.Errorf("status after graceful drain = %q, want %q", got, StatusDone)
	}
}

// decodeStream parses an NDJSON body into records.
func decodeStream(t *testing.T, body io.Reader) []StreamRecord {
	t.Helper()
	var recs []StreamRecord
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var rec StreamRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return recs
}

func TestStreamDeliversEarlyEmissionsBeforeResult(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// The moving average runs with early emission on: window positions
	// finalize and stream as soon as their expected contributions arrive,
	// long before the run converges.
	spec, _ := json.Marshal(JobSpec{App: "movingavg", Elems: 2048, Params: Params{Window: 25}})
	resp, err := http.Post(ts.URL+"/v1/jobs?wait=1", "application/json", bytes.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	var view JobView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if view.Status != StatusDone {
		t.Fatalf("job status = %q, want done (error: %s)", view.Status, view.Error)
	}

	sr, err := http.Get(ts.URL + "/v1/jobs/" + view.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Body.Close()
	if ct := sr.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("stream content type = %q", ct)
	}
	recs := decodeStream(t, sr.Body)
	firstEmit, resultAt := -1, -1
	for i, rec := range recs {
		if rec.Type == "emit" && firstEmit < 0 {
			firstEmit = i
		}
		if rec.Type == "result" {
			resultAt = i
		}
	}
	if firstEmit < 0 {
		t.Fatal("stream contains no early-emission records")
	}
	if resultAt < 0 {
		t.Fatal("stream contains no terminal result record")
	}
	if firstEmit >= resultAt {
		t.Errorf("first emit at %d, result at %d: emissions must precede the result", firstEmit, resultAt)
	}
	if last := recs[len(recs)-1]; last.Type != "result" {
		t.Errorf("last stream record = %q, want result", last.Type)
	}
}

func TestHTTPEndToEnd(t *testing.T) {
	release := registerBlockingApp(t)
	reg := obs.NewRegistry()
	s := newTestServer(t, Config{Workers: 1, Queue: 2, Registry: reg})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func(spec JobSpec) *http.Response {
		t.Helper()
		buf, _ := json.Marshal(spec)
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(buf))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// Above the admission limit (1 worker + 2 queue slots), later
	// submissions must see 429 with a retry hint.
	var accepted []string
	var rejected int
	for i := 0; i < 5; i++ {
		resp := post(JobSpec{App: "test-block"})
		switch resp.StatusCode {
		case http.StatusAccepted:
			var view JobView
			if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
				t.Fatal(err)
			}
			accepted = append(accepted, view.ID)
		case http.StatusTooManyRequests:
			rejected++
			if resp.Header.Get("Retry-After") == "" {
				t.Error("429 without Retry-After")
			}
		default:
			t.Fatalf("submit %d: status %d", i, resp.StatusCode)
		}
		resp.Body.Close()
	}
	// The first job may or may not have been picked up by the worker yet,
	// so either 3 or 4 submissions fit (queue + worker slot).
	if len(accepted) < 3 || rejected == 0 || len(accepted)+rejected != 5 {
		t.Fatalf("accepted %d, rejected %d; want >=3 accepted and >=1 rejected of 5", len(accepted), rejected)
	}

	// Bad specs are 400, unknown jobs 404.
	if resp := post(JobSpec{App: "no-such-app"}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown app: status %d, want 400", resp.StatusCode)
	}
	if resp, err := http.Get(ts.URL + "/v1/jobs/nope"); err != nil || resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: %v status %d, want 404", err, resp.StatusCode)
	}

	// DELETE cancels a queued job.
	cancelID := accepted[len(accepted)-1]
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+cancelID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: %v status %d", err, resp.StatusCode)
	}
	resp.Body.Close()

	close(release)
	deadline := time.Now().Add(5 * time.Second)
	for {
		var listing struct {
			Jobs []JobView `json:"jobs"`
		}
		resp, err := http.Get(ts.URL + "/v1/jobs")
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if len(listing.Jobs) != len(accepted) {
			t.Fatalf("listed %d jobs, want %d", len(listing.Jobs), len(accepted))
		}
		terminal := 0
		for _, v := range listing.Jobs {
			if v.Status.terminal() {
				terminal++
			}
		}
		if terminal == len(accepted) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("jobs not terminal: %+v", listing.Jobs)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The service metrics ride the same endpoint as the runtime's.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{
		"smart_serve_queue_depth", "smart_serve_inflight_jobs",
		"smart_serve_admission_rejects_total", "smart_serve_job_seconds",
	} {
		if !strings.Contains(string(mbody), want) {
			t.Errorf("/metrics missing %s", want)
		}
	}

	// Apps listing covers the registry.
	aresp, err := http.Get(ts.URL + "/v1/apps")
	if err != nil {
		t.Fatal(err)
	}
	abody, _ := io.ReadAll(aresp.Body)
	aresp.Body.Close()
	for _, want := range []string{"histogram", "kmeans", "movingavg", "pipeline-grid"} {
		if !strings.Contains(string(abody), fmt.Sprintf("%q", want)) {
			t.Errorf("/v1/apps missing %s: %s", want, abody)
		}
	}
}

func TestEveryRegisteredAppRuns(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})
	specs := map[string]JobSpec{
		"histogram":     {App: "histogram", Elems: 4096},
		"gridagg":       {App: "gridagg", Elems: 4096, Params: Params{GridSize: 256}},
		"moments":       {App: "moments", Elems: 4096, Params: Params{GridSize: 256}},
		"mutualinfo":    {App: "mutualinfo", Elems: 4096, Params: Params{Buckets: 16}},
		"logreg":        {App: "logreg", Elems: 4096, Params: Params{Dims: 8, Iters: 2}},
		"kmeans":        {App: "kmeans", Elems: 4096, Params: Params{K: 4, Dims: 4, Iters: 3}},
		"movingavg":     {App: "movingavg", Elems: 2048},
		"movingmedian":  {App: "movingmedian", Elems: 2048},
		"kde":           {App: "kde", Elems: 2048},
		"savgol":        {App: "savgol", Elems: 2048},
		"pipeline-grid": {App: "pipeline-grid", Elems: 4096},
	}
	for _, name := range Apps() {
		spec, ok := specs[name]
		if !ok {
			t.Fatalf("no test spec for registered app %q", name)
		}
		j, err := s.Submit(spec)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		waitStatus(t, j, StatusDone, 30*time.Second)
		if j.View().Result == nil {
			t.Errorf("%s: done with nil result", name)
		}
	}
}

func TestJobsChargeSharedMemNode(t *testing.T) {
	node := memmodel.NewNode(256 << 20)
	s := newTestServer(t, Config{Mem: node, Workers: 2})
	j, err := s.Submit(JobSpec{App: "histogram", Elems: 65536})
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, j, StatusDone, 10*time.Second)
	if node.Peak() == 0 {
		t.Error("job ran without charging the memory node")
	}
	if node.Used() != 0 {
		t.Errorf("node used = %d after job completion, want 0", node.Used())
	}
}

// TestJobEngineSelection pins per-job execution-engine selection: a spec may
// pick the work-stealing engine, its result stats then report the stealing
// counters, the default spec keeps them at the static engine's zeros, and an
// unknown engine name is rejected at submission (HTTP 400 territory), never
// accepted and failed later.
func TestJobEngineSelection(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})

	stats := func(spec JobSpec) map[string]any {
		t.Helper()
		j, err := s.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		waitStatus(t, j, StatusDone, 30*time.Second)
		res, ok := j.View().Result.(map[string]any)
		if !ok {
			t.Fatalf("result is %T, want map", j.View().Result)
		}
		st, ok := res["stats"].(map[string]any)
		if !ok {
			t.Fatalf("result carries no stats map: %v", res)
		}
		return st
	}

	st := stats(JobSpec{App: "histogram", Elems: 65536, Threads: 4, Engine: "stealing"})
	if got, ok := st["batches_claimed"].(int64); !ok || got == 0 {
		t.Errorf("stealing job claimed %v batches, want > 0", st["batches_claimed"])
	}
	if _, ok := st["steals"].(int64); !ok {
		t.Errorf("stealing job stats missing steals counter: %v", st)
	}

	st = stats(JobSpec{App: "histogram", Elems: 4096, Threads: 4})
	if got, _ := st["batches_claimed"].(int64); got != 0 {
		t.Errorf("default (static) job claimed %d batches, want 0", got)
	}

	if _, err := s.Submit(JobSpec{App: "histogram", Engine: "fifo"}); err == nil {
		t.Error("Submit accepted an unknown engine name")
	}
}

// strippedResult marshals a terminal job's result with the non-deterministic
// "stats" block (timings) removed, for byte-level comparison across runs.
func strippedResult(t *testing.T, j *Job) []byte {
	t.Helper()
	buf, err := json.Marshal(j.View().Result)
	if err != nil {
		t.Fatalf("marshal result of %s: %v", j.ID(), err)
	}
	var m map[string]any
	if err := json.Unmarshal(buf, &m); err != nil {
		t.Fatalf("result of %s is not an object: %v", j.ID(), err)
	}
	delete(m, "stats")
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestRestartRestoresDrainedJobsFirstByteIdentical is the drain-then-restart
// regression: a server drained mid-job leaves a checkpoint + resume sidecar;
// a new server over the same directory must re-admit that job ahead of
// anything submitted after the restart, resume it from the checkpoint
// (skipping the analyzed steps, not re-reducing them), produce a result
// byte-identical to an uninterrupted run, and GC the checkpoint files once
// the job completes.
func TestRestartRestoresDrainedJobsFirstByteIdentical(t *testing.T) {
	spec := JobSpec{
		App: "kmeans", Steps: 400, Elems: 32768, Seed: 7,
		Params: Params{K: 4, Dims: 4, Iters: 6},
	}

	// Reference: the same job, uninterrupted.
	ref := newTestServer(t, Config{Workers: 1})
	rj, err := ref.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, rj, StatusDone, 60*time.Second)
	want := strippedResult(t, rj)

	// Drain a server once the job has analyzed a few steps, so the restore
	// below actually has work to skip.
	ckdir := t.TempDir()
	s1 := NewServer(Config{Workers: 1, CheckpointDir: ckdir, Registry: obs.NewRegistry()})
	j1, err := s1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for j1.prog.stepsDone() < 5 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if n := j1.prog.stepsDone(); n < 5 {
		t.Fatalf("job analyzed %d steps within the deadline, want >= 5", n)
	}
	s1.Drain(time.Millisecond)
	if got := j1.View().Status; got != StatusCheckpointed {
		t.Fatalf("drained job status = %q, want %q", got, StatusCheckpointed)
	}

	// Restart over the same checkpoint dir. A blocker pins the single worker
	// so queue order is observable: the restored job must carry an earlier
	// virtual-finish tag than a job submitted after the restore.
	release := registerBlockingApp(t)
	reg2 := obs.NewRegistry()
	s2 := newTestServer(t, Config{Workers: 1, CheckpointDir: ckdir, Registry: reg2})
	blocker, err := s2.Submit(JobSpec{App: "test-block"})
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, blocker, StatusRunning, 5*time.Second)

	ids, err := s2.RestoreCheckpoints()
	if err != nil {
		t.Fatalf("RestoreCheckpoints: %v", err)
	}
	if len(ids) != 1 {
		t.Fatalf("restored %d jobs (%v), want 1", len(ids), ids)
	}
	restored, err := s2.Get(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	late, err := s2.Submit(JobSpec{App: "histogram", Elems: 512})
	if err != nil {
		t.Fatal(err)
	}
	close(release)

	select {
	case <-restored.Done():
	case <-late.Done():
		t.Fatal("job submitted after restart finished before the restored job")
	case <-time.After(60 * time.Second):
		t.Fatal("restored job did not finish")
	}
	waitStatus(t, late, StatusDone, 10*time.Second)
	if got := restored.View().Status; got != StatusDone {
		t.Fatalf("restored job status = %q (error: %s), want %q", got, restored.View().Error, StatusDone)
	}

	got := strippedResult(t, restored)
	if !bytes.Equal(want, got) {
		t.Errorf("restored result differs from uninterrupted run:\n got %s\nwant %s", got, want)
	}
	if n := reg2.Counter("smart_serve_jobs_restored_total").Value(); n != 1 {
		t.Errorf("restored counter = %d, want 1", n)
	}

	// The checkpoint and its sidecar must be gone now that the job is done.
	entries, err := os.ReadDir(ckdir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		var names []string
		for _, e := range entries {
			names = append(names, e.Name())
		}
		t.Errorf("checkpoint dir not GCd after restored job completed: %v", names)
	}
	if n := reg2.Counter("smart_serve_checkpoints_gc_total").Value(); n < 1 {
		t.Errorf("checkpoint GC counter = %d, want >= 1", n)
	}
}
