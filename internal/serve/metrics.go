package serve

import "github.com/scipioneer/smart/internal/obs"

// serveMetrics is the service's instrumentation, registered alongside the
// runtime's smart_core_*/smart_mem_* families so one scrape of the metrics
// endpoint shows admission behaviour next to the reduction work it gates.
type serveMetrics struct {
	reg *obs.Registry
	// queueDepth tracks jobs admitted but not yet picked up by a worker;
	// its peak is the deepest backlog the server has seen.
	queueDepth *obs.Gauge
	// inflight tracks jobs currently executing on a worker.
	inflight *obs.Gauge
	// rejects counts admission failures by cause.
	rejectsQueueFull *obs.Counter
	rejectsPressure  *obs.Counter
	rejectsDraining  *obs.Counter
	// outcomes count finished jobs by terminal status.
	jobsDone         *obs.Counter
	jobsFailed       *obs.Counter
	jobsCancelled    *obs.Counter
	jobsCheckpointed *obs.Counter
	// restored counts drained jobs re-admitted by RestoreCheckpoints;
	// checkpointsGCd counts checkpoint files deleted after a restored job
	// reached a terminal state that no longer needs them.
	restored       *obs.Counter
	checkpointsGCd *obs.Counter
	// jobSeconds is the per-job run latency (admission to terminal state,
	// excluding queue wait) and queueSeconds the admission-to-start wait.
	jobSeconds   *obs.Histogram
	queueSeconds *obs.Histogram
	// streamDropped counts stream records lost to slow subscribers.
	streamDropped *obs.Counter
}

func newServeMetrics(r *obs.Registry) serveMetrics {
	return serveMetrics{
		reg:              r,
		queueDepth:       r.Gauge("smart_serve_queue_depth"),
		inflight:         r.Gauge("smart_serve_inflight_jobs"),
		rejectsQueueFull: r.Counter(`smart_serve_admission_rejects_total{cause="queue_full"}`),
		rejectsPressure:  r.Counter(`smart_serve_admission_rejects_total{cause="mem_pressure"}`),
		rejectsDraining:  r.Counter(`smart_serve_admission_rejects_total{cause="draining"}`),
		jobsDone:         r.Counter(`smart_serve_jobs_total{status="done"}`),
		jobsFailed:       r.Counter(`smart_serve_jobs_total{status="failed"}`),
		jobsCancelled:    r.Counter(`smart_serve_jobs_total{status="cancelled"}`),
		jobsCheckpointed: r.Counter(`smart_serve_jobs_total{status="checkpointed"}`),
		restored:         r.Counter("smart_serve_jobs_restored_total"),
		checkpointsGCd:   r.Counter("smart_serve_checkpoints_gc_total"),
		jobSeconds:       r.Histogram("smart_serve_job_seconds", obs.DurationBuckets),
		queueSeconds:     r.Histogram("smart_serve_queue_wait_seconds", obs.DurationBuckets),
		streamDropped:    r.Counter("smart_serve_stream_dropped_total"),
	}
}

// tenantQueueWait returns the per-tenant queue-wait histogram. It lives in
// the smart_cluster_* family: per-tenant wait is the fairness signal of the
// cluster front door, scraped next to the dispatcher's dispatch/retry
// counters. The registry dedups by name, so the lookup is cheap after a
// tenant's first job.
func (m *serveMetrics) tenantQueueWait(tenant string) *obs.Histogram {
	return m.reg.Histogram(obs.Label("smart_cluster_queue_wait_seconds", "tenant", tenant),
		obs.DurationBuckets)
}
