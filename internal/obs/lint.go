package obs

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"regexp"
	"strconv"
	"strings"
)

// LintExposition checks a Prometheus text-format stream for the malformations
// a hand-rolled exporter is most likely to produce: duplicate or missing
// TYPE/HELP lines, duplicate series, malformed names, labels or values,
// non-monotonic histogram buckets, and histograms missing the +Inf bucket or
// whose _count disagrees with it. It returns nil for a clean exposition and
// all problems joined into one error otherwise. The CI smoke job pipes a
// live smartd scrape through it (via cmd/obslint).
func LintExposition(r io.Reader) error {
	var probs []error
	addf := func(line int, format string, args ...any) {
		probs = append(probs, fmt.Errorf("line %d: %s", line, fmt.Sprintf(format, args...)))
	}

	typeOf := map[string]string{} // family -> kind
	helpSeen := map[string]bool{} // family
	seriesSeen := map[string]bool{}
	type histState struct {
		lastCum  int64
		hasInf   bool
		infCum   int64
		hasSum   bool
		count    int64
		hasCount bool
		line     int
	}
	hists := map[string]*histState{} // family + sorted non-le labels

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) >= 3 && (fields[1] == "TYPE" || fields[1] == "HELP") {
				family := fields[2]
				if !validMetricName(family) {
					addf(lineNo, "%s for malformed family name %q", fields[1], family)
					continue
				}
				if fields[1] == "TYPE" {
					if _, dup := typeOf[family]; dup {
						addf(lineNo, "duplicate TYPE for family %q", family)
						continue
					}
					kind := ""
					if len(fields) == 4 {
						kind = fields[3]
					}
					switch kind {
					case "counter", "gauge", "histogram", "summary", "untyped":
					default:
						addf(lineNo, "invalid TYPE kind %q for family %q", kind, family)
					}
					typeOf[family] = kind
				} else {
					if helpSeen[family] {
						addf(lineNo, "duplicate HELP for family %q", family)
					}
					helpSeen[family] = true
				}
			}
			continue
		}

		name, labels, value, err := parseSample(line)
		if err != nil {
			addf(lineNo, "%v", err)
			continue
		}
		if !validMetricName(name) {
			addf(lineNo, "malformed metric name %q", name)
			continue
		}
		series := name + "{" + canonicalLabels(labels) + "}"
		if seriesSeen[series] {
			addf(lineNo, "duplicate series %s", series)
		}
		seriesSeen[series] = true

		family, sampleKind := name, ""
		if kind, ok := typeOf[name]; ok {
			sampleKind = kind
		} else {
			for _, suffix := range []string{"_bucket", "_sum", "_count"} {
				base := strings.TrimSuffix(name, suffix)
				if base != name && typeOf[base] == "histogram" {
					family, sampleKind = base, "histogram"
					break
				}
			}
		}
		if sampleKind == "" {
			addf(lineNo, "sample %q has no preceding TYPE line", name)
			continue
		}

		if sampleKind == "histogram" {
			key := family + "{" + canonicalLabelsExcept(labels, "le") + "}"
			st := hists[key]
			if st == nil {
				st = &histState{line: lineNo}
				hists[key] = st
			}
			switch {
			case strings.HasSuffix(name, "_bucket"):
				le, hasLE := labelValue(labels, "le")
				if !hasLE {
					addf(lineNo, "histogram bucket %s without le label", name)
					continue
				}
				cum := int64(value)
				if cum < st.lastCum {
					addf(lineNo, "histogram %s buckets not cumulative: %d after %d", key, cum, st.lastCum)
				}
				st.lastCum = cum
				if le == "+Inf" {
					st.hasInf = true
					st.infCum = cum
				} else if _, err := strconv.ParseFloat(le, 64); err != nil {
					addf(lineNo, "histogram %s has unparsable le=%q", key, le)
				}
			case strings.HasSuffix(name, "_sum"):
				st.hasSum = true
			case strings.HasSuffix(name, "_count"):
				st.hasCount = true
				st.count = int64(value)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("obs: lint read: %w", err)
	}

	for key, st := range hists {
		if !st.hasInf {
			probs = append(probs, fmt.Errorf("histogram %s missing le=\"+Inf\" bucket", key))
			continue
		}
		if !st.hasCount {
			probs = append(probs, fmt.Errorf("histogram %s missing _count", key))
		} else if st.count != st.infCum {
			probs = append(probs, fmt.Errorf("histogram %s _count %d != +Inf bucket %d", key, st.count, st.infCum))
		}
		if !st.hasSum {
			probs = append(probs, fmt.Errorf("histogram %s missing _sum", key))
		}
	}
	return errors.Join(probs...)
}

var metricNameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
var labelNameRE = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)

func validMetricName(name string) bool { return metricNameRE.MatchString(name) }

type labelPair struct{ k, v string }

// parseSample splits one sample line into name, parsed labels and value.
func parseSample(line string) (string, []labelPair, float64, error) {
	rest := line
	nameEnd := strings.IndexAny(rest, "{ ")
	if nameEnd < 0 {
		return "", nil, 0, fmt.Errorf("sample without value: %q", line)
	}
	name := rest[:nameEnd]
	var labels []labelPair
	rest = rest[nameEnd:]
	if rest[0] == '{' {
		var err error
		labels, rest, err = parseLabels(rest[1:])
		if err != nil {
			return "", nil, 0, err
		}
	}
	rest = strings.TrimSpace(rest)
	valStr := rest
	if i := strings.IndexByte(rest, ' '); i >= 0 {
		valStr = rest[:i] // an optional timestamp may follow
	}
	val, err := parseValue(valStr)
	if err != nil {
		return "", nil, 0, fmt.Errorf("bad value %q: %v", valStr, err)
	}
	return name, labels, val, nil
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// parseLabels consumes `k="v",...}` (after the opening brace) honoring the
// \\, \" and \n escapes, returning the pairs and the unconsumed tail.
func parseLabels(s string) ([]labelPair, string, error) {
	var labels []labelPair
	for {
		s = strings.TrimLeft(s, " ")
		if strings.HasPrefix(s, "}") {
			return labels, s[1:], nil
		}
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return nil, "", fmt.Errorf("label without '=' near %q", s)
		}
		key := strings.TrimSpace(s[:eq])
		if !labelNameRE.MatchString(key) {
			return nil, "", fmt.Errorf("malformed label name %q", key)
		}
		s = s[eq+1:]
		if !strings.HasPrefix(s, `"`) {
			return nil, "", fmt.Errorf("unquoted value for label %q", key)
		}
		s = s[1:]
		var val strings.Builder
		for {
			if s == "" {
				return nil, "", fmt.Errorf("unterminated value for label %q", key)
			}
			c := s[0]
			s = s[1:]
			if c == '"' {
				break
			}
			if c == '\\' {
				if s == "" {
					return nil, "", fmt.Errorf("dangling escape in label %q", key)
				}
				e := s[0]
				s = s[1:]
				switch e {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, "", fmt.Errorf("invalid escape \\%c in label %q", e, key)
				}
				continue
			}
			val.WriteByte(c)
		}
		labels = append(labels, labelPair{k: key, v: val.String()})
		if strings.HasPrefix(s, ",") {
			s = s[1:]
		}
	}
}

func labelValue(labels []labelPair, key string) (string, bool) {
	for _, lp := range labels {
		if lp.k == key {
			return lp.v, true
		}
	}
	return "", false
}

func canonicalLabels(labels []labelPair) string {
	return canonicalLabelsExcept(labels, "")
}

func canonicalLabelsExcept(labels []labelPair, drop string) string {
	parts := make([]string, 0, len(labels))
	for _, lp := range labels {
		if lp.k == drop {
			continue
		}
		parts = append(parts, lp.k+`="`+escapeLabelValue(lp.v)+`"`)
	}
	// Stable series identity regardless of label order.
	for i := 1; i < len(parts); i++ {
		for j := i; j > 0 && parts[j] < parts[j-1]; j-- {
			parts[j], parts[j-1] = parts[j-1], parts[j]
		}
	}
	return strings.Join(parts, ",")
}
