package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestRecordSpanBumpsMetrics(t *testing.T) {
	o := New()
	o.RecordSpan(Span{Cat: "core", Name: "reduction", Start: time.Now(), Dur: 3 * time.Millisecond})
	o.RecordSpan(Span{Cat: "core", Name: "reduction", Start: time.Now(), Dur: 5 * time.Millisecond})
	o.RecordSpan(Span{Cat: "core", Name: "convert", Start: time.Now(), Dur: time.Microsecond})

	r := o.Registry()
	if got := r.Counter(SpanCounterName("reduction")).Value(); got != 2 {
		t.Fatalf("reduction span count = %d, want 2", got)
	}
	if got := r.Counter(SpanCounterName("convert")).Value(); got != 1 {
		t.Fatalf("convert span count = %d, want 1", got)
	}
	h := r.Histogram(SpanSecondsName("reduction"), DurationBuckets)
	if h.Count() != 2 || h.Sum() < 0.007 || h.Sum() > 0.009 {
		t.Fatalf("reduction histogram count=%d sum=%g", h.Count(), h.Sum())
	}
}

func TestTraceWriterEmitsJSONLines(t *testing.T) {
	o := New()
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	o.SetTraceWriter(w)

	start := time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)
	o.RecordSpan(Span{Cat: "core", Name: "reduction", Start: start, Dur: 2 * time.Millisecond,
		Attrs: map[string]any{"iter": 0}})
	o.RecordSpan(Span{Cat: "insitu.space", Name: "feed", Start: start.Add(time.Second), Dur: time.Millisecond})
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("trace lines = %d, want 2:\n%s", len(lines), buf.String())
	}
	var ev struct {
		TS    string         `json:"ts"`
		Cat   string         `json:"cat"`
		Name  string         `json:"name"`
		DurNS int64          `json:"dur_ns"`
		Attrs map[string]any `json:"attrs"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil {
		t.Fatalf("line 0 is not JSON: %v", err)
	}
	if ev.Name != "reduction" || ev.Cat != "core" || ev.DurNS != int64(2*time.Millisecond) {
		t.Fatalf("unexpected event: %+v", ev)
	}
	if ev.Attrs["iter"] != float64(0) {
		t.Fatalf("attrs not carried: %+v", ev.Attrs)
	}
	if _, err := time.Parse(time.RFC3339Nano, ev.TS); err != nil {
		t.Fatalf("timestamp not RFC3339Nano: %v", err)
	}
}

func TestSubscribeAndCancel(t *testing.T) {
	o := New()
	var got []string
	cancel := o.Subscribe(func(sp Span) { got = append(got, sp.Name) })
	o.RecordSpan(Span{Name: "a"})
	o.RecordSpan(Span{Name: "b"})
	cancel()
	o.RecordSpan(Span{Name: "c"})
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("subscriber saw %v, want [a b]", got)
	}
}

func TestNilObserverIsSafe(t *testing.T) {
	var o *Observer
	o.RecordSpan(Span{Name: "x"})
	o.SetTraceWriter(io.Discard)
	o.Span("c", "n")()
	o.Subscribe(func(Span) {})()
	if o.Registry() != DefaultRegistry() {
		t.Fatal("nil observer must fall back to the default registry")
	}
}

func TestServeEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("served_total").Add(11)
	srv, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}
	if text := get("/metrics"); !strings.Contains(text, "served_total 11") {
		t.Fatalf("/metrics missing counter:\n%s", text)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(get("/metrics.json")), &snap); err != nil {
		t.Fatalf("/metrics.json not a snapshot: %v", err)
	}
	if snap.Counters["served_total"] != 11 {
		t.Fatalf("snapshot counter = %d, want 11", snap.Counters["served_total"])
	}
}
