package obs

import (
	"bytes"
	"fmt"
	"os"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

func TestFlightRecorderRing(t *testing.T) {
	f := NewFlightRecorder(16)
	for i := 0; i < 40; i++ {
		f.Add(FlightEvent{Time: time.Unix(int64(i), 0), Kind: "span", Name: fmt.Sprintf("ev%d", i)})
	}
	evs := f.Events()
	if len(evs) != 16 {
		t.Fatalf("retained %d events, want capacity 16", len(evs))
	}
	if evs[0].Name != "ev24" || evs[15].Name != "ev39" {
		t.Fatalf("ring retained [%s..%s], want [ev24..ev39]", evs[0].Name, evs[15].Name)
	}
	if got := f.Dropped(); got != 24 {
		t.Fatalf("dropped = %d, want 24", got)
	}

	var buf bytes.Buffer
	n, err := f.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	out := buf.String()
	if !strings.HasPrefix(out, "# flight recorder: 16 events retained, 24 dropped\n") {
		t.Fatalf("dump header wrong:\n%s", out)
	}
	if lines := strings.Count(out, "\n"); lines != 17 {
		t.Fatalf("dump has %d lines, want header + 16 events", lines)
	}
}

func TestFlightRecorderNilSafety(t *testing.T) {
	var f *FlightRecorder
	f.Add(FlightEvent{})
	f.Mark(0, "x", "y")
	if f.Events() != nil || f.Dropped() != 0 {
		t.Fatal("nil recorder not inert")
	}
	if n, err := f.WriteTo(&bytes.Buffer{}); n != 0 || err != nil {
		t.Fatalf("nil WriteTo = (%d, %v)", n, err)
	}
}

func TestObserverFeedsFlightRecorder(t *testing.T) {
	o := New()
	f := NewFlightRecorder(16)
	o.SetFlightRecorder(f)
	o.RecordSpan(Span{Cat: "core", Name: "reduction", Start: time.Now(), Dur: time.Millisecond, Rank: 2})
	evs := f.Events()
	if len(evs) != 1 || evs[0].Kind != "span" || evs[0].Name != "core/reduction" || evs[0].Rank != 2 {
		t.Fatalf("flight events = %+v", evs)
	}
	if o.FlightRecorder() != f {
		t.Fatal("accessor does not return the attached recorder")
	}
	o.SetFlightRecorder(nil)
	o.RecordSpan(Span{Cat: "core", Name: "reduction", Start: time.Now()})
	if len(f.Events()) != 1 {
		t.Fatal("detached recorder still receiving spans")
	}
}

func TestSampleCounters(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("a_total").Add(5)
	f := NewFlightRecorder(16)
	prev := f.SampleCounters(reg, nil)
	if len(f.Events()) != 1 {
		t.Fatalf("first sample recorded %d events, want 1", len(f.Events()))
	}
	// No movement: no event.
	prev = f.SampleCounters(reg, prev)
	if len(f.Events()) != 1 {
		t.Fatal("unchanged counters still produced a metrics event")
	}
	reg.Counter("a_total").Add(3)
	f.SampleCounters(reg, prev)
	evs := f.Events()
	last := evs[len(evs)-1]
	if last.Kind != "metrics" || !strings.Contains(last.Detail, "a_total +3") {
		t.Fatalf("delta event = %+v, want a_total +3", last)
	}
}

// lockedWriter guards a buffer shared between the signal goroutine and the
// test.
type lockedWriter struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (w *lockedWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

func (w *lockedWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

func TestDumpOnSignal(t *testing.T) {
	f := NewFlightRecorder(16)
	f.Mark(1, "checkpoint", "before signal")
	var out lockedWriter
	stop := DumpOnSignal(f, syscall.SIGUSR1, &out)
	defer stop()

	if err := syscall.Kill(os.Getpid(), syscall.SIGUSR1); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		s := out.String()
		if strings.Contains(s, "# flight dump on") && strings.Contains(s, "checkpoint") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no dump after signal; buffer:\n%s", s)
		}
		time.Sleep(5 * time.Millisecond)
	}
	stop()
	stop() // idempotent
}
