package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync"
	"time"
)

// FlightEvent is one entry in the flight recorder: a completed span, a
// watchdog mark, or a sampled batch of metric deltas.
type FlightEvent struct {
	Time   time.Time `json:"ts"`
	Kind   string    `json:"kind"` // "span", "mark", "metrics"
	Rank   int       `json:"rank,omitempty"`
	Name   string    `json:"name,omitempty"`
	Detail string    `json:"detail,omitempty"`
	DurNS  int64     `json:"dur_ns,omitempty"`
}

// FlightRecorder is a bounded in-memory ring of recent events, the "black
// box" a stalled or crashed rank can dump after the fact: the full JSONL
// trace may be disabled or unflushed, but the ring always holds the last N
// completed spans and metric deltas at a few hundred bytes each. All methods
// are safe for concurrent use and safe on a nil receiver.
type FlightRecorder struct {
	mu      sync.Mutex
	buf     []FlightEvent
	next    int    // ring write cursor
	total   uint64 // events ever added
	dumping bool
}

// NewFlightRecorder creates a recorder retaining the most recent capacity
// events (minimum 16).
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity < 16 {
		capacity = 16
	}
	return &FlightRecorder{buf: make([]FlightEvent, 0, capacity)}
}

// Add appends one event, evicting the oldest when full.
func (f *FlightRecorder) Add(ev FlightEvent) {
	if f == nil {
		return
	}
	f.mu.Lock()
	if len(f.buf) < cap(f.buf) {
		f.buf = append(f.buf, ev)
	} else {
		f.buf[f.next] = ev
	}
	f.next = (f.next + 1) % cap(f.buf)
	f.total++
	f.mu.Unlock()
}

// Mark records a point event (kind "mark"), used by the watchdog and signal
// handlers to timestamp why a dump happened.
func (f *FlightRecorder) Mark(rank int, name, detail string) {
	f.Add(FlightEvent{Time: time.Now(), Kind: "mark", Rank: rank, Name: name, Detail: detail})
}

// Events returns a chronological copy of the retained events.
func (f *FlightRecorder) Events() []FlightEvent {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	out := make([]FlightEvent, len(f.buf))
	if len(f.buf) < cap(f.buf) {
		copy(out, f.buf)
	} else {
		n := copy(out, f.buf[f.next:])
		copy(out[n:], f.buf[:f.next])
	}
	f.mu.Unlock()
	// Ring order is insertion order already; sorting by time additionally
	// interleaves events recorded by concurrent goroutines sensibly.
	sort.SliceStable(out, func(i, j int) bool { return out[i].Time.Before(out[j].Time) })
	return out
}

// Dropped returns how many events were evicted from the ring.
func (f *FlightRecorder) Dropped() uint64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if n := uint64(cap(f.buf)); f.total > n {
		return f.total - n
	}
	return 0
}

// countingWriter tracks bytes written so WriteTo can honor its contract.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// WriteTo dumps the ring as a header line followed by one JSON line per
// event, oldest first.
func (f *FlightRecorder) WriteTo(w io.Writer) (int64, error) {
	if f == nil {
		return 0, nil
	}
	events := f.Events()
	cw := &countingWriter{w: w}
	if _, err := fmt.Fprintf(cw, "# flight recorder: %d events retained, %d dropped\n", len(events), f.Dropped()); err != nil {
		return cw.n, err
	}
	enc := json.NewEncoder(cw)
	for _, ev := range events {
		if err := enc.Encode(ev); err != nil {
			return cw.n, err
		}
	}
	return cw.n, nil
}

// SampleCounters records the counter families whose values changed since
// prev as one "metrics" event and returns the new snapshot for the next
// call. It is the watchdog's periodic metric-delta sampler.
func (f *FlightRecorder) SampleCounters(reg *Registry, prev map[string]int64) map[string]int64 {
	if reg == nil {
		return prev
	}
	cur := reg.Snapshot().Counters
	if f == nil {
		return cur
	}
	var deltas []string
	for _, name := range sortedKeys(cur) {
		if d := cur[name] - prev[name]; d != 0 {
			deltas = append(deltas, fmt.Sprintf("%s +%d", name, d))
		}
	}
	if len(deltas) > 0 {
		const maxDetail = 512
		detail := strings.Join(deltas, ", ")
		if len(detail) > maxDetail {
			detail = detail[:maxDetail] + "..."
		}
		f.Add(FlightEvent{Time: time.Now(), Kind: "metrics", Name: "counter deltas", Detail: detail})
	}
	return cur
}

// DumpOnSignal installs a handler that dumps the recorder to w every time
// sig arrives (conventionally SIGQUIT, mirroring the Go runtime's own
// thread-dump signal). The returned stop function uninstalls it. Dumps are
// serialized; the signal is not forwarded.
func DumpOnSignal(f *FlightRecorder, sig os.Signal, w io.Writer) (stop func()) {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, sig)
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-ch:
				fmt.Fprintf(w, "# flight dump on %v at %s\n", sig, time.Now().UTC().Format(time.RFC3339Nano))
				_, _ = f.WriteTo(w)
			case <-done:
				return
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			signal.Stop(ch)
			close(done)
		})
	}
}
