package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// recordTraced writes a traced span through a real Observer so the tests
// parse exactly what production writes.
func recordTraced(o *Observer, cat, name string, trace, id, parent uint64, rank int) {
	o.RecordSpan(Span{
		Cat: cat, Name: name,
		Start: time.Date(2026, 8, 8, 12, 0, 0, int(id)*1_000_000, time.UTC),
		Dur:   3 * time.Millisecond,
		Trace: trace, ID: id, Parent: parent, Rank: rank,
	})
}

func TestTraceJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	o := New()
	o.SetTraceWriter(&buf)
	recordTraced(o, "job", "root", 0xabc, 1, 0, 0)
	recordTraced(o, "mpi", "barrier", 0xabc, 2, 1, 3)
	// An untraced span keeps the legacy wire form and must survive the read
	// with zero trace identity.
	o.RecordSpan(Span{Cat: "core", Name: "reduction", Start: time.Now(), Dur: time.Millisecond})

	evs, err := ReadTraceJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 3 {
		t.Fatalf("parsed %d events, want 3", len(evs))
	}
	b := evs[1]
	if b.Trace != 0xabc || b.ID != 2 || b.Parent != 1 || b.Rank != 3 || b.Name != "barrier" {
		t.Fatalf("barrier event decoded wrong: %+v", b)
	}
	if got := evs[2]; got.Trace != 0 || got.ID != 0 || got.Parent != 0 {
		t.Fatalf("untraced span grew trace identity: %+v", got)
	}
}

func TestReadTraceJSONLToleratesTornTail(t *testing.T) {
	var buf bytes.Buffer
	o := New()
	o.SetTraceWriter(&buf)
	recordTraced(o, "job", "root", 0xabc, 1, 0, 0)
	// Simulate a crash mid-write: a truncated final line.
	buf.WriteString(`{"ts":"2026-08-08T12:00:00Z","cat":"mpi","na`)

	evs, err := ReadTraceJSONL(&buf)
	if err != nil {
		t.Fatalf("torn tail should be tolerated, got %v", err)
	}
	if len(evs) != 1 || evs[0].Name != "root" {
		t.Fatalf("events = %+v, want just the intact line", evs)
	}

	// The same corruption mid-stream (more lines follow) is an error.
	var bad bytes.Buffer
	bad.WriteString(`{"ts":"2026-08-08T12:00:00Z","cat":"mpi","na` + "\n")
	bad.WriteString(`{"ts":"2026-08-08T12:00:01Z","cat":"mpi","name":"barrier","dur_ns":5}` + "\n")
	if _, err := ReadTraceJSONL(&bad); err == nil {
		t.Fatal("mid-stream corruption not reported")
	}
}

func TestStitchTracesFiltersAndOrders(t *testing.T) {
	r0 := []TraceEvent{
		{Name: "late", Trace: 7, ID: 3, Start: time.Unix(0, 300)},
		{Name: "root", Trace: 7, ID: 1, Start: time.Unix(0, 100)},
	}
	r1 := []TraceEvent{
		{Name: "other-job", Trace: 9, ID: 4, Start: time.Unix(0, 50)},
		{Name: "mid", Trace: 7, ID: 2, Start: time.Unix(0, 200)},
		{Name: "untraced", Trace: 0, ID: 0, Start: time.Unix(0, 10)},
	}
	got := StitchTraces(7, r0, r1)
	var names []string
	for _, ev := range got {
		names = append(names, ev.Name)
	}
	if strings.Join(names, ",") != "root,mid,late" {
		t.Fatalf("stitched order = %v, want [root mid late]", names)
	}
	if all := StitchTraces(0, r0, r1); len(all) != 5 {
		t.Fatalf("unfiltered stitch kept %d events, want all 5", len(all))
	}
}

func TestConvertJSONLToChrome(t *testing.T) {
	mk := func(rank int, id uint64) *bytes.Buffer {
		var buf bytes.Buffer
		o := New()
		o.SetTraceWriter(&buf)
		recordTraced(o, "core", "reduction", 0xf00, id, 0, rank)
		return &buf
	}
	var out bytes.Buffer
	if err := ConvertJSONLToChrome(&out, mk(0, 1), mk(1, 2)); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(out.Bytes(), &parsed); err != nil {
		t.Fatalf("chrome output is not valid JSON: %v", err)
	}
	var meta, complete int
	var sawZeroTS bool
	for _, ev := range parsed.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
		case "X":
			complete++
			if ev.TS == 0 {
				sawZeroTS = true
			}
			if ev.Args["span"] == "" {
				t.Fatalf("X event lost its span id: %+v", ev)
			}
		}
	}
	if meta != 2 || complete != 2 {
		t.Fatalf("chrome trace has %d meta + %d complete events, want 2 + 2", meta, complete)
	}
	if !sawZeroTS {
		t.Fatal("timestamps are not rebased to the earliest event")
	}
}
