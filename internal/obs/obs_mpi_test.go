// Tests coupling obs to the mpi substrate live in the external test package:
// mpi imports obs for trace propagation, so obs's own test binary is the only
// place the two can meet without an import cycle.
package obs_test

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/scipioneer/smart/internal/mpi"
	"github.com/scipioneer/smart/internal/obs"
)

// lockedBuffer is an io.Writer the watchdog goroutine and the test goroutine
// can share under -race.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestWatchdogNamesStalledRank wedges one rank of a 4-rank world outside a
// barrier and checks the watchdog names both sides within the deadline: the
// ranks blocked inside the collective and the rank everybody is waiting for —
// with a flight-recorder dump written at detection time.
func TestWatchdogNamesStalledRank(t *testing.T) {
	const ranks = 4
	const stallFor = 400 * time.Millisecond
	comms := mpi.NewWorld(ranks)
	watch := obs.NewStallWatch(ranks)
	for _, c := range comms {
		c.SetStallWatch(watch)
	}

	flight := obs.NewFlightRecorder(64)
	reg := obs.NewRegistry()
	var dump lockedBuffer
	reports := make(chan obs.StallReport, 8)
	stop := watch.Watch(obs.WatchdogConfig{
		Deadline: 50 * time.Millisecond,
		Interval: 10 * time.Millisecond,
		OnStall:  func(r obs.StallReport) { reports <- r },
		Recorder: flight,
		Registry: reg,
		DumpTo:   &dump,
	})
	defer stop()

	release := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer comms[r].Close()
			if r == ranks-1 {
				// The straggler: everybody else blocks in the barrier until
				// this rank finally shows up.
				<-release
			}
			if err := comms[r].Barrier(); err != nil {
				t.Errorf("rank %d barrier: %v", r, err)
			}
		}()
	}

	var rep obs.StallReport
	select {
	case rep = <-reports:
	case <-time.After(stallFor):
		close(release)
		wg.Wait()
		t.Fatal("watchdog reported no stall before the straggler was released")
	}
	close(release)
	wg.Wait()

	if rep.Op != "barrier" {
		t.Fatalf("stalled op = %q, want barrier", rep.Op)
	}
	wantBlocked := []int{0, 1, 2}
	if len(rep.Blocked) != len(wantBlocked) {
		t.Fatalf("blocked ranks = %v, want %v", rep.Blocked, wantBlocked)
	}
	for i, r := range wantBlocked {
		if rep.Blocked[i] != r {
			t.Fatalf("blocked ranks = %v, want %v", rep.Blocked, wantBlocked)
		}
	}
	if len(rep.Missing) != 1 || rep.Missing[0] != ranks-1 {
		t.Fatalf("missing ranks = %v, want [%d]", rep.Missing, ranks-1)
	}
	if rep.Age < 50*time.Millisecond {
		t.Fatalf("report age %v below the deadline", rep.Age)
	}

	out := dump.String()
	if !strings.Contains(out, `collective "barrier"`) || !strings.Contains(out, "missing ranks [3]") {
		t.Fatalf("dump does not name the stall:\n%s", out)
	}
	if !strings.Contains(out, "# flight recorder:") {
		t.Fatalf("dump carries no flight-recorder contents:\n%s", out)
	}
	// The stall left a "mark" event per blocked rank in the ring.
	marks := 0
	for _, ev := range flight.Events() {
		if ev.Kind == "mark" && ev.Name == "stall" {
			marks++
			if !strings.Contains(ev.Detail, "missing ranks [3]") {
				t.Fatalf("stall mark does not name the straggler: %q", ev.Detail)
			}
		}
	}
	if marks != len(wantBlocked) {
		t.Fatalf("flight recorder holds %d stall marks, want %d", marks, len(wantBlocked))
	}

	// Fire-once semantics: the same stall must not be re-reported while the
	// world sits in later collectives.
	select {
	case extra := <-reports:
		t.Fatalf("stall re-reported: %+v", extra)
	case <-time.After(60 * time.Millisecond):
	}
}

// TestGatherClusterSnapshot checks the metrics collective on a plain world:
// every rank contributes its private registry and rank 0 gets per-rank
// snapshots plus a merged view with counters summed and gauges labeled.
func TestGatherClusterSnapshot(t *testing.T) {
	const ranks = 4
	comms := mpi.NewWorld(ranks)
	var (
		wg      sync.WaitGroup
		cluster *obs.ClusterSnapshot
	)
	for r := 0; r < ranks; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer comms[r].Close()
			reg := obs.NewRegistry()
			reg.Counter("work_total").Add(int64(r + 1))
			reg.Gauge("depth").Set(int64(10 * r))
			reg.Histogram("lat_seconds", []float64{0.1, 1}).Observe(float64(r))
			snap, err := obs.Gather(comms[r], reg)
			if err != nil {
				t.Errorf("rank %d: %v", r, err)
				return
			}
			if r == 0 {
				cluster = snap
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	if cluster == nil || len(cluster.Ranks) != ranks {
		t.Fatalf("rank 0 snapshot missing or wrong world size: %+v", cluster)
	}
	if got := cluster.Merged.Counters["work_total"]; got != 1+2+3+4 {
		t.Fatalf("merged counter = %d, want 10", got)
	}
	if got := cluster.Merged.Gauges["depth"].Value; got != 30 {
		t.Fatalf("merged gauge max = %d, want 30", got)
	}
	if got := cluster.Merged.Gauges[`depth{rank="2"}`].Value; got != 20 {
		t.Fatalf(`per-rank gauge depth{rank="2"} = %d, want 20`, got)
	}
	h, ok := cluster.Merged.Histograms["lat_seconds"]
	if !ok || h.Count != ranks {
		t.Fatalf("merged histogram count = %+v, want %d observations", h, ranks)
	}
}
