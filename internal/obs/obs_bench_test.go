package obs

import (
	"io"
	"testing"
	"time"
)

// BenchmarkRecordSpanMetricsOnly is the disabled-tracing hot path: counter
// plus histogram update, no writer, no flight ring, no subscribers.
func BenchmarkRecordSpanMetricsOnly(b *testing.B) {
	o := New()
	sp := Span{Cat: "core", Name: "reduction", Start: time.Now(), Dur: time.Millisecond}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.RecordSpan(sp)
	}
}

// BenchmarkRecordSpanTraced is the trace-write cost: one JSONL encode per
// span, identity fields populated, sink discarded.
func BenchmarkRecordSpanTraced(b *testing.B) {
	o := New()
	o.SetTraceWriter(io.Discard)
	sp := Span{Cat: "core", Name: "reduction", Start: time.Now(), Dur: time.Millisecond,
		Trace: 0xabc, ID: 0xdef, Parent: 0xabc, Rank: 3}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.RecordSpan(sp)
	}
}

// BenchmarkRecordSpanFlight measures the flight-recorder ring append on top
// of the metrics-only path.
func BenchmarkRecordSpanFlight(b *testing.B) {
	o := New()
	o.SetFlightRecorder(NewFlightRecorder(256))
	sp := Span{Cat: "core", Name: "reduction", Start: time.Now(), Dur: time.Millisecond}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.RecordSpan(sp)
	}
}
