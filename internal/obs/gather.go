package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Label builds a registry metric name with an inline label set, escaping
// values per the Prometheus text exposition rules (backslash, quote,
// newline). Pairs are alternating key, value:
//
//	Label("smart_job_seconds", "app", "kmeans", "tenant", "acme")
//	// -> smart_job_seconds{app="kmeans",tenant="acme"}
func Label(family string, pairs ...string) string {
	if len(pairs) == 0 {
		return family
	}
	var b strings.Builder
	b.WriteString(family)
	b.WriteByte('{')
	for i := 0; i+1 < len(pairs); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(pairs[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(pairs[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func escapeLabelValue(v string) string { return labelEscaper.Replace(v) }

// withLabel returns name with one more label appended to its inline label
// set (creating the set if absent). It is how the merge stamps rank= onto
// per-rank gauge entries.
func withLabel(name, key, value string) string {
	pair := key + `="` + escapeLabelValue(value) + `"`
	if strings.HasSuffix(name, "}") {
		if i := strings.IndexByte(name, '{'); i >= 0 {
			inner := name[i+1 : len(name)-1]
			if inner == "" {
				return name[:i] + "{" + pair + "}"
			}
			return name[:len(name)-1] + "," + pair + "}"
		}
	}
	return name + "{" + pair + "}"
}

// GatherComm is the slice of a communicator the metrics gather needs. It is
// satisfied by *mpi.Comm; obs cannot import mpi (mpi's instrumentation
// imports obs), so the dependency points this way structurally.
type GatherComm interface {
	Rank() int
	Size() int
	Gather(root int, data []byte) ([][]byte, error)
}

// ClusterSnapshot is the outcome of a metrics gather at rank 0: every rank's
// raw snapshot plus the cluster-wide merge.
type ClusterSnapshot struct {
	// Ranks holds each rank's snapshot, indexed by rank.
	Ranks []Snapshot `json:"ranks"`
	// Merged is the cluster view: counters summed, gauges max with
	// rank-labeled per-rank entries, histograms bucket-merged.
	Merged Snapshot `json:"merged"`
}

// Gather is a collective over c: every rank snapshots reg and sends it to
// rank 0, which merges and returns the cluster snapshot. Non-zero ranks
// return (nil, nil). Like any collective it must be entered by all ranks in
// the same order.
func Gather(c GatherComm, reg *Registry) (*ClusterSnapshot, error) {
	payload, err := json.Marshal(reg.Snapshot())
	if err != nil {
		return nil, fmt.Errorf("obs: gather encode: %w", err)
	}
	parts, err := c.Gather(0, payload)
	if err != nil {
		return nil, fmt.Errorf("obs: gather: %w", err)
	}
	if c.Rank() != 0 {
		return nil, nil
	}
	cs := &ClusterSnapshot{Ranks: make([]Snapshot, len(parts))}
	for r, part := range parts {
		if err := json.Unmarshal(part, &cs.Ranks[r]); err != nil {
			return nil, fmt.Errorf("obs: gather decode rank %d: %w", r, err)
		}
	}
	cs.Merged = MergeSnapshots(cs.Ranks)
	return cs, nil
}

// MergeSnapshots merges per-rank snapshots into one cluster view:
//
//   - counters: summed under the unchanged name (totals are additive);
//   - gauges: the unchanged name holds the max across ranks (a cluster
//     high-water is the interesting cluster fact) and each rank's value is
//     kept under the name with a rank="<r>" label appended;
//   - histograms: buckets merged by upper bound, counts and sums added.
func MergeSnapshots(ranks []Snapshot) Snapshot {
	m := Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]GaugeSnapshot),
		Histograms: make(map[string]HistogramSnapshot),
	}
	seenGauge := make(map[string]bool)
	histBuckets := make(map[string]map[float64]int64)
	for r, s := range ranks {
		for name, v := range s.Counters {
			m.Counters[name] += v
		}
		for name, g := range s.Gauges {
			m.Gauges[withLabel(name, "rank", strconv.Itoa(r))] = g
			if !seenGauge[name] {
				seenGauge[name] = true
				m.Gauges[name] = g
				continue
			}
			base := m.Gauges[name]
			if g.Value > base.Value {
				base.Value = g.Value
			}
			if g.Peak > base.Peak {
				base.Peak = g.Peak
			}
			m.Gauges[name] = base
		}
		for name, h := range s.Histograms {
			agg := m.Histograms[name]
			agg.Count += h.Count
			agg.Sum += h.Sum
			buckets := histBuckets[name]
			if buckets == nil {
				buckets = make(map[float64]int64)
				histBuckets[name] = buckets
			}
			for _, b := range h.Buckets {
				buckets[b.UpperBound] += b.Count
			}
			m.Histograms[name] = agg
		}
	}
	for name, buckets := range histBuckets {
		bounds := make([]float64, 0, len(buckets))
		for ub := range buckets {
			bounds = append(bounds, ub)
		}
		sort.Float64s(bounds)
		agg := m.Histograms[name]
		agg.Buckets = make([]BucketSnapshot, 0, len(bounds))
		for _, ub := range bounds {
			agg.Buckets = append(agg.Buckets, BucketSnapshot{UpperBound: ub, Count: buckets[ub]})
		}
		// Guarantee the +Inf tail even if no input snapshot had one.
		if n := len(agg.Buckets); n == 0 || !math.IsInf(agg.Buckets[n-1].UpperBound, 1) {
			agg.Buckets = append(agg.Buckets, BucketSnapshot{UpperBound: math.Inf(1)})
		}
		m.Histograms[name] = agg
	}
	return m
}
