package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"
)

// TraceEvent is one parsed JSONL trace line: the decoded form of what
// RecordSpan writes. It is what rank 0 stitches across ranks.
type TraceEvent struct {
	Start  time.Time
	Cat    string
	Name   string
	Dur    time.Duration
	Trace  uint64
	ID     uint64
	Parent uint64
	Rank   int
	Attrs  map[string]any
}

// ReadTraceJSONL parses a JSON-lines trace stream (one span per line, the
// format SetTraceWriter produces). Blank lines are skipped; a torn final
// line (crashed writer) is ignored rather than failing the whole read.
func ReadTraceJSONL(r io.Reader) ([]TraceEvent, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var out []TraceEvent
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var ev traceEvent
		if err := json.Unmarshal(raw, &ev); err != nil {
			// A torn tail line marks a crashed run; anything earlier is
			// corruption worth reporting.
			if !sc.Scan() {
				break
			}
			return nil, fmt.Errorf("obs: trace line %d: %w", line, err)
		}
		te := TraceEvent{
			Cat:   ev.Cat,
			Name:  ev.Name,
			Dur:   time.Duration(ev.DurNS),
			Rank:  ev.Rank,
			Attrs: ev.Attrs,
		}
		var err error
		if te.Start, err = time.Parse(time.RFC3339Nano, ev.TS); err != nil {
			return nil, fmt.Errorf("obs: trace line %d: bad ts: %w", line, err)
		}
		if te.Trace, err = parseHexID(ev.Trace); err != nil {
			return nil, fmt.Errorf("obs: trace line %d: bad trace id: %w", line, err)
		}
		if te.ID, err = parseHexID(ev.Span); err != nil {
			return nil, fmt.Errorf("obs: trace line %d: bad span id: %w", line, err)
		}
		if te.Parent, err = parseHexID(ev.Parent); err != nil {
			return nil, fmt.Errorf("obs: trace line %d: bad parent id: %w", line, err)
		}
		out = append(out, te)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: trace read: %w", err)
	}
	return out, nil
}

func parseHexID(s string) (uint64, error) {
	if s == "" {
		return 0, nil
	}
	return strconv.ParseUint(s, 16, 64)
}

// StitchTraces merges per-rank trace streams into one chronological event
// list. A non-zero traceID filters to that trace (dropping untraced local
// spans and other jobs' spans); zero keeps everything.
func StitchTraces(traceID uint64, perRank ...[]TraceEvent) []TraceEvent {
	var all []TraceEvent
	for _, evs := range perRank {
		for _, ev := range evs {
			if traceID != 0 && ev.Trace != traceID {
				continue
			}
			all = append(all, ev)
		}
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].Start.Before(all[j].Start) })
	return all
}

// chromeEvent is one Chrome trace_event entry ("X" complete events plus "M"
// metadata). Timestamps and durations are microseconds per the format.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  string         `json:"tid,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace exports events as Chrome trace_event JSON (the
// {"traceEvents": [...]} object form), loadable in Perfetto or
// chrome://tracing. Each rank becomes one process row (pid = rank, named by
// a metadata event); timestamps are microseconds relative to the earliest
// event so the viewer opens at t=0.
func WriteChromeTrace(w io.Writer, events []TraceEvent) error {
	var base time.Time
	ranks := make(map[int]bool)
	for i, ev := range events {
		if i == 0 || ev.Start.Before(base) {
			base = ev.Start
		}
		ranks[ev.Rank] = true
	}
	out := make([]chromeEvent, 0, len(events)+len(ranks))
	for _, r := range sortedInts(ranks) {
		out = append(out, chromeEvent{
			Name: "process_name",
			Ph:   "M",
			PID:  r,
			Args: map[string]any{"name": fmt.Sprintf("rank %d", r)},
		})
	}
	for _, ev := range events {
		args := make(map[string]any, len(ev.Attrs)+3)
		for k, v := range ev.Attrs {
			args[k] = v
		}
		if ev.Trace != 0 {
			args["trace"] = strconv.FormatUint(ev.Trace, 16)
			args["span"] = strconv.FormatUint(ev.ID, 16)
			if ev.Parent != 0 {
				args["parent"] = strconv.FormatUint(ev.Parent, 16)
			}
		}
		out = append(out, chromeEvent{
			Name: ev.Name,
			Cat:  ev.Cat,
			Ph:   "X",
			TS:   float64(ev.Start.Sub(base).Nanoseconds()) / 1e3,
			Dur:  float64(ev.Dur.Nanoseconds()) / 1e3,
			PID:  ev.Rank,
			TID:  ev.Cat,
			Args: args,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{"traceEvents": out})
}

// ConvertJSONLToChrome reads one or more JSONL trace streams (typically one
// per rank) and writes the merged Chrome trace. It is what
// `smartbench -chrome-trace` calls after a run.
func ConvertJSONLToChrome(w io.Writer, readers ...io.Reader) error {
	perRank := make([][]TraceEvent, 0, len(readers))
	for _, r := range readers {
		evs, err := ReadTraceJSONL(r)
		if err != nil {
			return err
		}
		perRank = append(perRank, evs)
	}
	return WriteChromeTrace(w, StitchTraces(0, perRank...))
}

func sortedInts(set map[int]bool) []int {
	out := make([]int, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
