package obs

import (
	"testing"
	"time"
)

func TestStallWatchScan(t *testing.T) {
	w := NewStallWatch(4)
	t0 := w.Enter(0, "barrier")
	t1 := w.Enter(1, "barrier")
	w.Enter(2, "reduce")

	time.Sleep(15 * time.Millisecond)
	reports := w.scan(10 * time.Millisecond)
	if len(reports) != 2 {
		t.Fatalf("got %d reports, want one per blocked op: %+v", len(reports), reports)
	}
	// Sorted by op: barrier first.
	bar, red := reports[0], reports[1]
	if bar.Op != "barrier" || len(bar.Blocked) != 2 || bar.Blocked[0] != 0 || bar.Blocked[1] != 1 {
		t.Fatalf("barrier report = %+v", bar)
	}
	if len(bar.Missing) != 2 || bar.Missing[0] != 2 || bar.Missing[1] != 3 {
		t.Fatalf("barrier missing = %v, want [2 3]", bar.Missing)
	}
	if red.Op != "reduce" || len(red.Missing) != 3 {
		t.Fatalf("reduce report = %+v", red)
	}
	if bar.Age < 10*time.Millisecond {
		t.Fatalf("age %v below deadline", bar.Age)
	}

	// Fire-once: the same entries are not re-reported.
	if again := w.scan(10 * time.Millisecond); len(again) != 0 {
		t.Fatalf("stall re-reported: %+v", again)
	}

	// A fresh entry for the same op stalls independently.
	w.Exit(t0)
	w.Exit(t1)
	w.Enter(3, "barrier")
	time.Sleep(15 * time.Millisecond)
	again := w.scan(10 * time.Millisecond)
	if len(again) != 1 || again[0].Op != "barrier" || again[0].Blocked[0] != 3 {
		t.Fatalf("fresh stall not reported: %+v", again)
	}
}

func TestStallWatchNilSafety(t *testing.T) {
	var w *StallWatch
	w.Exit(w.Enter(0, "barrier"))
	if w.scan(0) != nil {
		t.Fatal("nil watch produced reports")
	}
	stop := w.Watch(WatchdogConfig{Deadline: time.Millisecond})
	stop()
}
