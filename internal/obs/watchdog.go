package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// StallWatch tracks which ranks are currently inside which collective so a
// watchdog can name the rank that never showed up. Collectives bracket
// themselves with Enter/Exit; a rank blocked in a collective keeps its entry
// alive, and the stall report is the set theory of the two: ranks with an
// old live entry are blocked, ranks with no entry for that collective are
// the ones everybody is waiting for. A nil *StallWatch is valid and records
// nothing, so the mpi hot path needs no branches beyond one nil check.
type StallWatch struct {
	world int

	mu     sync.Mutex
	nextTk uint64
	active map[uint64]*stallEntry
}

type stallEntry struct {
	rank     int
	op       string
	start    time.Time
	reported bool
}

// NewStallWatch creates a watch for a world of worldSize ranks. All ranks of
// an in-process world share one watch; each process of a TCP world owns its
// own (and can then only see its local ranks block, not who is missing
// remotely — naming remote stragglers needs the shared-watch topology).
func NewStallWatch(worldSize int) *StallWatch {
	if worldSize < 1 {
		worldSize = 1
	}
	return &StallWatch{world: worldSize, active: make(map[uint64]*stallEntry)}
}

// Enter records that rank is entering collective op and returns a token for
// Exit. Safe on a nil receiver (returns 0; Exit(0) is a no-op).
func (w *StallWatch) Enter(rank int, op string) uint64 {
	if w == nil {
		return 0
	}
	w.mu.Lock()
	w.nextTk++
	tk := w.nextTk
	w.active[tk] = &stallEntry{rank: rank, op: op, start: time.Now()}
	w.mu.Unlock()
	return tk
}

// Exit removes the entry created by Enter.
func (w *StallWatch) Exit(token uint64) {
	if w == nil || token == 0 {
		return
	}
	w.mu.Lock()
	delete(w.active, token)
	w.mu.Unlock()
}

// StallReport names one blocked collective: which ranks are stuck inside it
// and which ranks never entered it.
type StallReport struct {
	// Op is the collective operation, e.g. "barrier" or "reducestream".
	Op string
	// Blocked are the ranks inside the collective past the deadline.
	Blocked []int
	// Missing are the ranks of the world with no live entry for Op — the
	// ranks the blocked ones are waiting for.
	Missing []int
	// Age is the oldest blocked entry's time inside the collective.
	Age time.Duration
}

// String formats the report the way it appears in logs and dumps.
func (r StallReport) String() string {
	return fmt.Sprintf("stall: collective %q blocked %v on ranks %v; missing ranks %v",
		r.Op, r.Age.Round(time.Millisecond), r.Blocked, r.Missing)
}

// scan returns one report per collective op that has entries older than
// deadline not yet reported, marking them reported so each stall fires once.
func (w *StallWatch) scan(deadline time.Duration) []StallReport {
	if w == nil {
		return nil
	}
	now := time.Now()
	w.mu.Lock()
	defer w.mu.Unlock()

	overdue := make(map[string][]*stallEntry)
	inOp := make(map[string]map[int]bool)
	for _, e := range w.active {
		if inOp[e.op] == nil {
			inOp[e.op] = make(map[int]bool)
		}
		inOp[e.op][e.rank] = true
		if !e.reported && now.Sub(e.start) >= deadline {
			overdue[e.op] = append(overdue[e.op], e)
		}
	}

	var reports []StallReport
	for op, entries := range overdue {
		rep := StallReport{Op: op}
		for _, e := range entries {
			e.reported = true
			rep.Blocked = append(rep.Blocked, e.rank)
			if age := now.Sub(e.start); age > rep.Age {
				rep.Age = age
			}
		}
		for rank := 0; rank < w.world; rank++ {
			if !inOp[op][rank] {
				rep.Missing = append(rep.Missing, rank)
			}
		}
		sort.Ints(rep.Blocked)
		sort.Ints(rep.Missing)
		reports = append(reports, rep)
	}
	sort.Slice(reports, func(i, j int) bool { return reports[i].Op < reports[j].Op })
	return reports
}

// WatchdogConfig configures the background stall scanner started by Watch.
type WatchdogConfig struct {
	// Deadline is how long a rank may sit inside one collective before the
	// watchdog reports a stall. Required.
	Deadline time.Duration
	// Interval is the scan period; defaults to Deadline/4, floor 10ms.
	Interval time.Duration
	// OnStall, when set, receives each stall report (called from the
	// watchdog goroutine).
	OnStall func(StallReport)
	// Recorder, when set, gets a "mark" event per stall and — when Registry
	// is also set — periodic counter-delta samples.
	Recorder *FlightRecorder
	// Registry is the registry to delta-sample into Recorder each scan.
	Registry *Registry
	// DumpTo, when set, receives the stall report plus a full flight dump
	// the moment a stall is detected.
	DumpTo io.Writer
}

// Watch starts a goroutine that periodically scans for collectives blocked
// past cfg.Deadline. On a stall it marks the flight recorder, dumps it, and
// calls OnStall, naming the stuck collective and the missing ranks. The
// returned stop function terminates the goroutine (idempotent).
func (w *StallWatch) Watch(cfg WatchdogConfig) (stop func()) {
	if w == nil || cfg.Deadline <= 0 {
		return func() {}
	}
	interval := cfg.Interval
	if interval <= 0 {
		interval = cfg.Deadline / 4
	}
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	done := make(chan struct{})
	go func() {
		tick := time.NewTicker(interval)
		defer tick.Stop()
		var lastCounters map[string]int64
		if cfg.Recorder != nil && cfg.Registry != nil {
			lastCounters = cfg.Registry.Snapshot().Counters
		}
		for {
			select {
			case <-done:
				return
			case <-tick.C:
			}
			if cfg.Recorder != nil && cfg.Registry != nil {
				lastCounters = cfg.Recorder.SampleCounters(cfg.Registry, lastCounters)
			}
			for _, rep := range w.scan(cfg.Deadline) {
				if cfg.Recorder != nil {
					for _, rank := range rep.Blocked {
						cfg.Recorder.Mark(rank, "stall", rep.String())
					}
				}
				if cfg.DumpTo != nil {
					fmt.Fprintf(cfg.DumpTo, "# %s\n", rep)
					_, _ = cfg.Recorder.WriteTo(cfg.DumpTo)
				}
				if cfg.OnStall != nil {
					cfg.OnStall(rep)
				}
			}
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(done) }) }
}
