package obs

import (
	"encoding/binary"
	"encoding/json"
	"io"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Span is one completed, named interval of runtime work: a scheduler phase
// ("reduction", "local combine", ...), a per-step simulation or analytics
// interval, or an I/O leg of the offline pipeline. Cat names the emitting
// subsystem ("core", "insitu.space", ...) so a merged trace file from a
// coupled run can be split back per layer.
type Span struct {
	// Cat is the emitting subsystem, e.g. "core" or "insitu.time".
	Cat string `json:"cat"`
	// Name is the phase name, e.g. "reduction".
	Name string `json:"name"`
	// Start is when the interval began.
	Start time.Time `json:"ts"`
	// Dur is the interval's length.
	Dur time.Duration `json:"dur_ns"`
	// Trace, ID and Parent place the span in a distributed trace tree: all
	// spans of one job share Trace, Parent is the span ID of the enclosing
	// span (0 for a root). Zero values mean "not part of a trace"; such spans
	// keep the pre-tracing wire form.
	Trace  uint64 `json:"-"`
	ID     uint64 `json:"-"`
	Parent uint64 `json:"-"`
	// Rank is the mpi rank that recorded the span (0 outside rank worlds).
	Rank int `json:"-"`
	// Attrs carries optional small structured payload (step index, byte
	// counts, ...). Values must be JSON-encodable.
	Attrs map[string]any `json:"attrs,omitempty"`
}

// TraceContext identifies a position in a distributed trace: the trace a
// span belongs to plus the span that new child work should parent under. It
// is small enough to ride in every mpi frame header. The zero value means
// "no trace active"; Valid reports that.
type TraceContext struct {
	TraceID uint64
	SpanID  uint64
}

// Valid reports whether the context carries a live trace.
func (tc TraceContext) Valid() bool { return tc.TraceID != 0 }

// TraceContextWireLen is the encoded size of a TraceContext.
const TraceContextWireLen = 16

// AppendWire appends the 16-byte little-endian wire form to buf.
func (tc TraceContext) AppendWire(buf []byte) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, tc.TraceID)
	return binary.LittleEndian.AppendUint64(buf, tc.SpanID)
}

// TraceContextFromWire decodes the wire form produced by AppendWire.
func TraceContextFromWire(buf []byte) TraceContext {
	if len(buf) < TraceContextWireLen {
		return TraceContext{}
	}
	return TraceContext{
		TraceID: binary.LittleEndian.Uint64(buf),
		SpanID:  binary.LittleEndian.Uint64(buf[8:]),
	}
}

// idCounter hands out process-unique span and trace IDs. Seeding with the
// boot time and pid keeps IDs from colliding across the ranks of a TCP
// world, where every rank is its own process writing its own trace file.
var idCounter = func() *atomic.Uint64 {
	var c atomic.Uint64
	c.Store(uint64(time.Now().UnixNano()) ^ uint64(os.Getpid())<<40)
	return &c
}()

// NewID returns a fresh non-zero span or trace ID.
func NewID() uint64 {
	for {
		if id := idCounter.Add(1); id != 0 {
			return id
		}
	}
}

// Observer couples a metrics Registry with a span sink. Recording a span
// does three things: bumps the per-phase counter and latency histogram in
// the registry, appends one JSON line to the trace writer (if set), and
// fans the span out to subscribers. A nil *Observer is valid and records
// nothing, so instrumented code never needs a nil check.
type Observer struct {
	reg *Registry

	traceMu sync.Mutex
	traceW  io.Writer
	enc     *json.Encoder

	// flight, when set, receives a bounded event per recorded span so the
	// last moments before a stall or crash can be dumped post hoc.
	flight atomic.Pointer[FlightRecorder]

	subMu   sync.RWMutex
	subs    map[int]func(Span)
	nextSub int
}

// New creates an Observer with its own fresh registry.
func New() *Observer { return NewWithRegistry(NewRegistry()) }

// NewWithRegistry creates an Observer recording metrics into reg.
func NewWithRegistry(reg *Registry) *Observer {
	return &Observer{reg: reg, subs: make(map[int]func(Span))}
}

// defaultObserver is the process-wide observer, sharing DefaultRegistry.
var defaultObserver = NewWithRegistry(defaultRegistry)

// Default returns the process-wide observer: the sink for every runtime
// layer that has no explicitly configured Observer.
func Default() *Observer { return defaultObserver }

// Registry returns the observer's metrics registry (the default registry
// for a nil observer, so callers can cache metric handles unconditionally).
func (o *Observer) Registry() *Registry {
	if o == nil {
		return defaultRegistry
	}
	return o.reg
}

// SetTraceWriter directs span trace output to w as JSON lines, one span per
// line (nil disables tracing). The observer serializes writes; hand it a
// *bufio.Writer for high-rate traces and flush it at the end of the run.
func (o *Observer) SetTraceWriter(w io.Writer) {
	if o == nil {
		return
	}
	o.traceMu.Lock()
	defer o.traceMu.Unlock()
	o.traceW = w
	if w == nil {
		o.enc = nil
	} else {
		o.enc = json.NewEncoder(w)
	}
}

// Subscribe registers fn to receive every recorded span and returns a
// cancel function. fn is called synchronously from the recording goroutine
// and must be fast and concurrency-safe.
func (o *Observer) Subscribe(fn func(Span)) (cancel func()) {
	if o == nil {
		return func() {}
	}
	o.subMu.Lock()
	id := o.nextSub
	o.nextSub++
	o.subs[id] = fn
	o.subMu.Unlock()
	return func() {
		o.subMu.Lock()
		delete(o.subs, id)
		o.subMu.Unlock()
	}
}

// traceEvent is the JSON-lines wire form of a span. Trace identifiers are
// hex strings because JSON numbers lose precision above 2^53; they are
// omitted entirely for spans outside any trace so the pre-tracing wire form
// is unchanged.
type traceEvent struct {
	TS     string         `json:"ts"`
	Cat    string         `json:"cat"`
	Name   string         `json:"name"`
	DurNS  int64          `json:"dur_ns"`
	Trace  string         `json:"trace,omitempty"`
	Span   string         `json:"span,omitempty"`
	Parent string         `json:"parent,omitempty"`
	Rank   int            `json:"rank,omitempty"`
	Attrs  map[string]any `json:"attrs,omitempty"`
}

// RecordSpan records one completed span: per-phase counter + latency
// histogram, trace line, flight-recorder event, subscriber fanout.
func (o *Observer) RecordSpan(sp Span) {
	if o == nil {
		return
	}
	o.reg.Counter(SpanCounterName(sp.Name)).Inc()
	o.reg.Histogram(SpanSecondsName(sp.Name), DurationBuckets).Observe(sp.Dur.Seconds())

	o.traceMu.Lock()
	if o.enc != nil {
		ev := traceEvent{
			TS:    sp.Start.UTC().Format(time.RFC3339Nano),
			Cat:   sp.Cat,
			Name:  sp.Name,
			DurNS: int64(sp.Dur),
			Attrs: sp.Attrs,
		}
		if sp.Trace != 0 {
			ev.Trace = strconv.FormatUint(sp.Trace, 16)
			ev.Span = strconv.FormatUint(sp.ID, 16)
			if sp.Parent != 0 {
				ev.Parent = strconv.FormatUint(sp.Parent, 16)
			}
			ev.Rank = sp.Rank
		}
		// Encode errors are swallowed by design: tracing must never fail
		// the traced computation. A torn tail line marks a crashed run.
		_ = o.enc.Encode(ev)
	}
	o.traceMu.Unlock()

	if f := o.flight.Load(); f != nil {
		f.Add(FlightEvent{
			Time:  sp.Start.Add(sp.Dur),
			Kind:  "span",
			Rank:  sp.Rank,
			Name:  sp.Cat + "/" + sp.Name,
			DurNS: int64(sp.Dur),
		})
	}

	o.subMu.RLock()
	for _, fn := range o.subs {
		fn(sp)
	}
	o.subMu.RUnlock()
}

// SetFlightRecorder attaches f (nil detaches): every recorded span is also
// appended to the flight ring, so a stall or crash dump shows the most
// recent completed work alongside the blocked collective.
func (o *Observer) SetFlightRecorder(f *FlightRecorder) {
	if o == nil {
		return
	}
	o.flight.Store(f)
}

// FlightRecorder returns the attached flight recorder, if any.
func (o *Observer) FlightRecorder() *FlightRecorder {
	if o == nil {
		return nil
	}
	return o.flight.Load()
}

// ActiveSpan is an in-progress span started with StartSpan. Its Context
// parents child work (local phases or remote collectives via mpi trace
// propagation); End records the completed span. A nil *ActiveSpan is valid
// and does nothing, mirroring the nil-Observer contract.
type ActiveSpan struct {
	o  *Observer
	sp Span
}

// StartSpan begins a span under parent (pass TraceContext{} to start a new
// root trace) and returns the in-progress handle. The heavy work — metric
// updates, trace write — happens at End.
func (o *Observer) StartSpan(parent TraceContext, cat, name string) *ActiveSpan {
	if o == nil {
		return nil
	}
	tid := parent.TraceID
	if tid == 0 {
		tid = NewID()
	}
	return &ActiveSpan{o: o, sp: Span{
		Cat:    cat,
		Name:   name,
		Start:  time.Now(),
		Trace:  tid,
		ID:     NewID(),
		Parent: parent.SpanID,
	}}
}

// Context returns the trace context under which children of this span
// should be recorded.
func (a *ActiveSpan) Context() TraceContext {
	if a == nil {
		return TraceContext{}
	}
	return TraceContext{TraceID: a.sp.Trace, SpanID: a.sp.ID}
}

// SetRank stamps the recording rank onto the span.
func (a *ActiveSpan) SetRank(rank int) {
	if a != nil {
		a.sp.Rank = rank
	}
}

// SetAttr attaches one attribute to the span (value must be JSON-encodable).
func (a *ActiveSpan) SetAttr(key string, value any) {
	if a == nil {
		return
	}
	if a.sp.Attrs == nil {
		a.sp.Attrs = make(map[string]any)
	}
	a.sp.Attrs[key] = value
}

// End completes and records the span. End must be called at most once.
func (a *ActiveSpan) End() {
	if a == nil {
		return
	}
	a.sp.Dur = time.Since(a.sp.Start)
	a.o.RecordSpan(a.sp)
}

// Span starts an interval and returns its closer; call the closer when the
// interval completes to record it:
//
//	done := o.Span("core", "reduction")
//	... work ...
//	done()
func (o *Observer) Span(cat, name string) (done func()) {
	if o == nil {
		return func() {}
	}
	start := time.Now()
	return func() {
		o.RecordSpan(Span{Cat: cat, Name: name, Start: start, Dur: time.Since(start)})
	}
}

// SpanCounterName returns the registry name under which spans with the
// given phase name are counted.
func SpanCounterName(phase string) string {
	return `smart_span_total{phase="` + phase + `"}`
}

// SpanSecondsName returns the registry name of the latency histogram for
// spans with the given phase name.
func SpanSecondsName(phase string) string {
	return `smart_span_seconds{phase="` + phase + `"}`
}
