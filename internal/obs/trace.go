package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Span is one completed, named interval of runtime work: a scheduler phase
// ("reduction", "local combine", ...), a per-step simulation or analytics
// interval, or an I/O leg of the offline pipeline. Cat names the emitting
// subsystem ("core", "insitu.space", ...) so a merged trace file from a
// coupled run can be split back per layer.
type Span struct {
	// Cat is the emitting subsystem, e.g. "core" or "insitu.time".
	Cat string `json:"cat"`
	// Name is the phase name, e.g. "reduction".
	Name string `json:"name"`
	// Start is when the interval began.
	Start time.Time `json:"ts"`
	// Dur is the interval's length.
	Dur time.Duration `json:"dur_ns"`
	// Attrs carries optional small structured payload (step index, byte
	// counts, ...). Values must be JSON-encodable.
	Attrs map[string]any `json:"attrs,omitempty"`
}

// Observer couples a metrics Registry with a span sink. Recording a span
// does three things: bumps the per-phase counter and latency histogram in
// the registry, appends one JSON line to the trace writer (if set), and
// fans the span out to subscribers. A nil *Observer is valid and records
// nothing, so instrumented code never needs a nil check.
type Observer struct {
	reg *Registry

	traceMu sync.Mutex
	traceW  io.Writer
	enc     *json.Encoder

	subMu   sync.RWMutex
	subs    map[int]func(Span)
	nextSub int
}

// New creates an Observer with its own fresh registry.
func New() *Observer { return NewWithRegistry(NewRegistry()) }

// NewWithRegistry creates an Observer recording metrics into reg.
func NewWithRegistry(reg *Registry) *Observer {
	return &Observer{reg: reg, subs: make(map[int]func(Span))}
}

// defaultObserver is the process-wide observer, sharing DefaultRegistry.
var defaultObserver = NewWithRegistry(defaultRegistry)

// Default returns the process-wide observer: the sink for every runtime
// layer that has no explicitly configured Observer.
func Default() *Observer { return defaultObserver }

// Registry returns the observer's metrics registry (the default registry
// for a nil observer, so callers can cache metric handles unconditionally).
func (o *Observer) Registry() *Registry {
	if o == nil {
		return defaultRegistry
	}
	return o.reg
}

// SetTraceWriter directs span trace output to w as JSON lines, one span per
// line (nil disables tracing). The observer serializes writes; hand it a
// *bufio.Writer for high-rate traces and flush it at the end of the run.
func (o *Observer) SetTraceWriter(w io.Writer) {
	if o == nil {
		return
	}
	o.traceMu.Lock()
	defer o.traceMu.Unlock()
	o.traceW = w
	if w == nil {
		o.enc = nil
	} else {
		o.enc = json.NewEncoder(w)
	}
}

// Subscribe registers fn to receive every recorded span and returns a
// cancel function. fn is called synchronously from the recording goroutine
// and must be fast and concurrency-safe.
func (o *Observer) Subscribe(fn func(Span)) (cancel func()) {
	if o == nil {
		return func() {}
	}
	o.subMu.Lock()
	id := o.nextSub
	o.nextSub++
	o.subs[id] = fn
	o.subMu.Unlock()
	return func() {
		o.subMu.Lock()
		delete(o.subs, id)
		o.subMu.Unlock()
	}
}

// traceEvent is the JSON-lines wire form of a span.
type traceEvent struct {
	TS    string         `json:"ts"`
	Cat   string         `json:"cat"`
	Name  string         `json:"name"`
	DurNS int64          `json:"dur_ns"`
	Attrs map[string]any `json:"attrs,omitempty"`
}

// RecordSpan records one completed span: per-phase counter + latency
// histogram, trace line, subscriber fanout.
func (o *Observer) RecordSpan(sp Span) {
	if o == nil {
		return
	}
	o.reg.Counter(SpanCounterName(sp.Name)).Inc()
	o.reg.Histogram(SpanSecondsName(sp.Name), DurationBuckets).Observe(sp.Dur.Seconds())

	o.traceMu.Lock()
	if o.enc != nil {
		// Encode errors are swallowed by design: tracing must never fail
		// the traced computation. A torn tail line marks a crashed run.
		_ = o.enc.Encode(traceEvent{
			TS:    sp.Start.UTC().Format(time.RFC3339Nano),
			Cat:   sp.Cat,
			Name:  sp.Name,
			DurNS: int64(sp.Dur),
			Attrs: sp.Attrs,
		})
	}
	o.traceMu.Unlock()

	o.subMu.RLock()
	for _, fn := range o.subs {
		fn(sp)
	}
	o.subMu.RUnlock()
}

// Span starts an interval and returns its closer; call the closer when the
// interval completes to record it:
//
//	done := o.Span("core", "reduction")
//	... work ...
//	done()
func (o *Observer) Span(cat, name string) (done func()) {
	if o == nil {
		return func() {}
	}
	start := time.Now()
	return func() {
		o.RecordSpan(Span{Cat: cat, Name: name, Start: start, Dur: time.Since(start)})
	}
}

// SpanCounterName returns the registry name under which spans with the
// given phase name are counted.
func SpanCounterName(phase string) string {
	return `smart_span_total{phase="` + phase + `"}`
}

// SpanSecondsName returns the registry name of the latency histogram for
// spans with the given phase name.
func SpanSecondsName(phase string) string {
	return `smart_span_seconds{phase="` + phase + `"}`
}
