// Package obs is the Smart runtime's observability subsystem: a metrics
// registry with lock-free counters, gauges and fixed-bucket histograms, a
// span-based phase trace stream, and exporters (Prometheus text, one-shot
// JSON snapshot, live HTTP endpoint). The paper's entire evaluation hinges
// on where time and memory go — reduction vs. local vs. global combination,
// buffer stalls under space sharing, live reduction-map size with and
// without early emission — and this package is the measurement layer every
// runtime phase reports into.
//
// Hot-path discipline: Counter.Add, Gauge.Set/Add and Histogram.Observe are
// single atomic operations (plus a short CAS loop for peaks and float sums)
// and never take a lock; registration (Registry.Counter, ...) takes a lock
// only on first use of a name, so instrumented code caches the returned
// pointers. Snapshot readers see each metric atomically but the snapshot as
// a whole is not a consistent cut — fine for monitoring, meaningless for
// invariant checking across metrics.
//
// Names follow the Prometheus convention, optionally with one inline label
// set: "smart_span_seconds{phase=\"reduction\"}". The registry treats the
// whole string as the key; the Prometheus exporter splits it back into
// family and labels.
package obs

import (
	"encoding/json"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing 64-bit counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (n must be >= 0 for the Prometheus
// exposition to stay meaningful; the counter does not enforce it).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a 64-bit value that can go up and down. It additionally tracks
// the peak (high-water mark) of every value it has held, which is what the
// memory and occupancy experiments actually read: a drained ring buffer ends
// at occupancy zero, but its peak proves the buffer was exercised.
type Gauge struct {
	v    atomic.Int64
	peak atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	g.v.Store(v)
	g.bumpPeak(v)
}

// Add adjusts the gauge by delta and returns the new value.
func (g *Gauge) Add(delta int64) int64 {
	v := g.v.Add(delta)
	g.bumpPeak(v)
	return v
}

func (g *Gauge) bumpPeak(v int64) {
	for {
		p := g.peak.Load()
		if v <= p || g.peak.CompareAndSwap(p, v) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Peak returns the largest value the gauge has held.
func (g *Gauge) Peak() int64 { return g.peak.Load() }

// Histogram is a fixed-bucket histogram of float64 observations. Bucket
// bounds are upper limits in ascending order; one implicit +Inf bucket
// catches the tail. Observations update per-bucket atomic counters and a
// CAS-maintained float sum, so concurrent writers never block each other.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Int64 // len(bounds)+1; last is +Inf
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits of the running sum
}

// DurationBuckets is the default bucket layout for phase and collective
// latencies, in seconds: 1µs .. 10s, decades.
var DurationBuckets = []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10}

// SizeBuckets is the default bucket layout for cardinalities (reduction-map
// entries, live objects): decades from 1 to 10M.
var SizeBuckets = []float64{1, 10, 100, 1e3, 1e4, 1e5, 1e6, 1e7}

func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Registry is a named collection of metrics. The zero value is not usable;
// use NewRegistry. All methods are safe for concurrent use.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	helps    map[string]string
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		helps:    make(map[string]string),
	}
}

// SetHelp records the help text for a metric family (the name without its
// inline label set); the Prometheus exporter emits it as a # HELP line.
func (r *Registry) SetHelp(family, text string) {
	r.mu.Lock()
	r.helps[family] = text
	r.mu.Unlock()
}

// defaultRegistry backs Default(); package-level instrumentation (ringbuf,
// memmodel, mpi) registers against it at init time.
var defaultRegistry = NewRegistry()

// DefaultRegistry returns the process-wide registry, the sink for all
// instrumentation that has no explicit Observer threaded to it.
func DefaultRegistry() *Registry { return defaultRegistry }

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// bounds on first use (later calls ignore bounds).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// GaugeSnapshot is one gauge's state at snapshot time.
type GaugeSnapshot struct {
	Value int64 `json:"value"`
	Peak  int64 `json:"peak"`
}

// BucketSnapshot is one histogram bucket: the count of observations at or
// below the upper bound (non-cumulative; the Prometheus exporter cumulates).
type BucketSnapshot struct {
	UpperBound float64 `json:"le"`
	Count      int64   `json:"count"`
}

// bucketJSON is the wire form: the bound is a string because encoding/json
// cannot represent the final +Inf bucket as a number.
type bucketJSON struct {
	LE    string `json:"le"`
	Count int64  `json:"count"`
}

// MarshalJSON encodes the bound as a string ("0.001", "+Inf").
func (b BucketSnapshot) MarshalJSON() ([]byte, error) {
	return json.Marshal(bucketJSON{LE: formatFloat(b.UpperBound), Count: b.Count})
}

// UnmarshalJSON reverses MarshalJSON.
func (b *BucketSnapshot) UnmarshalJSON(data []byte) error {
	var w bucketJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	ub, err := strconv.ParseFloat(w.LE, 64)
	if err != nil {
		return err
	}
	b.UpperBound = ub
	b.Count = w.Count
	return nil
}

// HistogramSnapshot is one histogram's state at snapshot time.
type HistogramSnapshot struct {
	Count   int64            `json:"count"`
	Sum     float64          `json:"sum"`
	Buckets []BucketSnapshot `json:"buckets"`
}

// Snapshot is a point-in-time copy of every metric in a registry. Each
// metric is read atomically; the set as a whole is not a consistent cut.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]GaugeSnapshot     `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
	Help       map[string]string            `json:"help,omitempty"`
}

// Snapshot copies the registry's current state.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]GaugeSnapshot, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	if len(r.helps) > 0 {
		s.Help = make(map[string]string, len(r.helps))
		for family, text := range r.helps {
			s.Help[family] = text
		}
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = GaugeSnapshot{Value: g.Value(), Peak: g.Peak()}
	}
	for name, h := range r.hists {
		hs := HistogramSnapshot{Count: h.Count(), Sum: h.Sum()}
		hs.Buckets = make([]BucketSnapshot, len(h.counts))
		for i := range h.counts {
			ub := math.Inf(1)
			if i < len(h.bounds) {
				ub = h.bounds[i]
			}
			hs.Buckets[i] = BucketSnapshot{UpperBound: ub, Count: h.counts[i].Load()}
		}
		s.Histograms[name] = hs
	}
	return s
}
