package obs

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// conformanceRegistry builds a registry exercising every exposition feature:
// plain and labeled counters, label values needing all three escapes, help
// text, gauges (with their _peak companion), and histograms.
func conformanceRegistry() *Registry {
	r := NewRegistry()
	r.SetHelp("smart_jobs_total", "Jobs admitted, by application.")
	r.SetHelp("smart_queue_depth", `Queue depth; help with backslash \ intact.`)
	r.Counter("smart_jobs_total").Add(7)
	r.Counter(Label("smart_jobs_total", "app", "kmeans")).Add(3)
	r.Counter(Label("smart_jobs_total", "app", `we"ird\name`+"\n")).Add(1)
	r.Gauge("smart_queue_depth").Set(4)
	g := r.Gauge(Label("smart_queue_depth", "rank", "1"))
	g.Set(9)
	g.Set(2)
	h := r.Histogram("smart_job_seconds", []float64{0.1, 1, 10})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(50)
	return r
}

// TestPrometheusConformance feeds the exporter's own output to the lint:
// escaping, HELP/TYPE ordering, histogram invariants — the exporter must be
// its own cleanest customer.
func TestPrometheusConformance(t *testing.T) {
	var buf bytes.Buffer
	if err := conformanceRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if err := LintExposition(strings.NewReader(out)); err != nil {
		t.Fatalf("exporter output fails its own lint:\n%v\n--- exposition ---\n%s", err, out)
	}

	for _, want := range []string{
		"# HELP smart_jobs_total Jobs admitted, by application.\n# TYPE smart_jobs_total counter",
		`# HELP smart_queue_depth Queue depth; help with backslash \\ intact.`,
		`smart_jobs_total{app="we\"ird\\name\n"} 1`,
		`smart_job_seconds_bucket{le="+Inf"} 4`,
		"smart_job_seconds_count 4",
		"smart_queue_depth_peak 4",
		`smart_queue_depth_peak{rank="1"} 9`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestPrometheusGolden pins the exact exposition bytes so accidental format
// drift (ordering, float rendering, escaping) is caught, not just schema
// violations. Regenerate with: go test ./internal/obs -run Golden -update
func TestPrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := conformanceRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "exposition.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("exposition drifted from golden file\n--- got ---\n%s--- want ---\n%s", buf.Bytes(), want)
	}
}

// TestMergedSnapshotExposesCleanly runs a merged cluster snapshot (gauge
// rank labels, merged histograms) through the exporter and the lint.
func TestMergedSnapshotExposesCleanly(t *testing.T) {
	var ranks []Snapshot
	for r := 0; r < 3; r++ {
		reg := NewRegistry()
		reg.Counter("c_total").Add(int64(r))
		reg.Gauge("depth").Set(int64(r * 5))
		reg.Histogram("lat_seconds", []float64{1}).Observe(float64(r))
		ranks = append(ranks, reg.Snapshot())
	}
	merged := MergeSnapshots(ranks)
	var buf bytes.Buffer
	if err := merged.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if err := LintExposition(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("merged exposition fails lint:\n%v\n%s", err, buf.String())
	}
}

func TestLintExposition(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want string // substring of the error, "" = must pass
	}{
		{"clean", "# TYPE a_total counter\na_total 1\n", ""},
		{"clean labeled", "# TYPE a_total counter\na_total{x=\"1\"} 1\na_total{x=\"2\"} 2\n", ""},
		{"duplicate type", "# TYPE a_total counter\n# TYPE a_total counter\na_total 1\n", "duplicate TYPE"},
		{"duplicate help", "# HELP a_total x\n# HELP a_total y\n# TYPE a_total counter\na_total 1\n", "duplicate HELP"},
		{"bad kind", "# TYPE a_total widget\na_total 1\n", "invalid TYPE kind"},
		{"no type", "a_total 1\n", "no preceding TYPE"},
		{"duplicate series", "# TYPE a_total counter\na_total{x=\"1\"} 1\na_total{x=\"1\"} 2\n", "duplicate series"},
		{"duplicate series reordered labels", "# TYPE a_total counter\na_total{a=\"1\",b=\"2\"} 1\na_total{b=\"2\",a=\"1\"} 2\n", "duplicate series"},
		{"malformed name", "# TYPE a_total counter\na_total 1\n0bad 2\n", "malformed metric name"},
		{"bad value", "# TYPE a_total counter\na_total one\n", "bad value"},
		{"unquoted label", "# TYPE a_total counter\na_total{x=1} 1\n", "unquoted value"},
		{"non-cumulative buckets", "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n", "not cumulative"},
		{"missing inf", "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_sum 1\nh_count 5\n", "missing le=\"+Inf\""},
		{"count mismatch", "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 4\n", "_count 4 != +Inf bucket 5"},
		{"missing sum", "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 5\nh_count 5\n", "missing _sum"},
		{"bad le", "# TYPE h histogram\nh_bucket{le=\"wat\"} 5\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n", "unparsable le"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := LintExposition(strings.NewReader(tc.in))
			if tc.want == "" {
				if err != nil {
					t.Fatalf("clean input flagged: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error = %v, want substring %q", err, tc.want)
			}
		})
	}
}

// TestServerRestartSamePort is the shutdown-semantics regression test: Close
// must leave the port immediately rebindable, repeatedly, and the context
// cancellation path must tear down just as completely.
func TestServerRestartSamePort(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("up_total").Inc()

	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	body := httpGet(t, "http://"+addr+"/metrics")
	if !strings.Contains(body, "up_total 1") {
		t.Fatalf("metrics body missing counter:\n%s", body)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	// Rebind the exact port several times in a row; any leaked listener or
	// straggling accept goroutine turns this into "address already in use".
	for i := 0; i < 3; i++ {
		s2, err := Serve(addr, reg)
		if err != nil {
			t.Fatalf("restart %d on %s: %v", i, addr, err)
		}
		httpGet(t, "http://"+addr+"/metrics")
		if err := s2.Close(); err != nil {
			t.Fatal(err)
		}
		// Close is idempotent.
		if err := s2.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestServerContextCancelReleasesPort(t *testing.T) {
	reg := NewRegistry()
	ctx, cancel := context.WithCancel(context.Background())
	srv, err := ServeContext(ctx, "127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	cancel()
	select {
	case <-srv.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("server did not shut down after context cancel")
	}
	s2, err := Serve(addr, reg)
	if err != nil {
		t.Fatalf("rebind after cancel: %v", err)
	}
	s2.Close()
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	return string(b)
}

// TestServeHandlerHasPprof confirms the standalone metrics server mounts the
// profiling endpoints next to /metrics.
func TestServeHandlerHasPprof(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	body := httpGet(t, fmt.Sprintf("http://%s/debug/pprof/cmdline", srv.Addr()))
	if body == "" {
		t.Fatal("pprof cmdline endpoint returned nothing")
	}
}
