package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"time"
)

// WriteJSON writes a one-shot JSON snapshot of the registry, indented for
// human reading. This is what `smartbench -metrics <file>` emits.
func (r *Registry) WriteJSON(w io.Writer) error {
	return r.Snapshot().WriteJSON(w)
}

// WriteJSON writes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// splitName separates an optional inline label set from a metric name:
// `smart_span_total{phase="reduction"}` -> ("smart_span_total",
// `phase="reduction"`). Names without braces return empty labels.
func splitName(name string) (family, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 || !strings.HasSuffix(name, "}") {
		return name, ""
	}
	return name[:i], name[i+1 : len(name)-1]
}

// promLine formats one sample, merging extra labels (e.g. le) into the
// name's inline label set.
func promLine(w io.Writer, family, labels, extra string, value any) {
	all := labels
	if extra != "" {
		if all != "" {
			all += ","
		}
		all += extra
	}
	if all != "" {
		fmt.Fprintf(w, "%s{%s} %v\n", family, all, value)
	} else {
		fmt.Fprintf(w, "%s %v\n", family, value)
	}
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format (version 0.0.4): counters and gauges as single samples (gauges
// additionally expose a <family>_peak high-water sample), histograms as
// cumulative _bucket/_sum/_count families.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return r.Snapshot().WritePrometheus(w)
}

// WritePrometheus writes the snapshot in the text exposition format. It also
// serializes merged cluster snapshots (see MergeSnapshots), which is why it
// lives on Snapshot rather than Registry.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	typed := map[string]bool{}
	writeType := func(family, kind string) {
		if !typed[family] {
			typed[family] = true
			if help := s.Help[family]; help != "" {
				fmt.Fprintf(w, "# HELP %s %s\n", family, escapeHelp(help))
			}
			fmt.Fprintf(w, "# TYPE %s %s\n", family, kind)
		}
	}

	for _, name := range sortedKeys(s.Counters) {
		family, labels := splitName(name)
		writeType(family, "counter")
		promLine(w, family, labels, "", s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		family, labels := splitName(name)
		g := s.Gauges[name]
		writeType(family, "gauge")
		promLine(w, family, labels, "", g.Value)
		writeType(family+"_peak", "gauge")
		promLine(w, family+"_peak", labels, "", g.Peak)
	}
	for _, name := range sortedKeys(s.Histograms) {
		family, labels := splitName(name)
		h := s.Histograms[name]
		writeType(family, "histogram")
		var cum int64
		for _, b := range h.Buckets {
			cum += b.Count
			promLine(w, family+"_bucket", labels, `le="`+formatFloat(b.UpperBound)+`"`, cum)
		}
		promLine(w, family+"_sum", labels, "", formatFloat(h.Sum))
		promLine(w, family+"_count", labels, "", h.Count)
	}
	return nil
}

// escapeHelp escapes help text per the exposition format (backslash and
// newline; quotes are legal in help).
var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

func escapeHelp(s string) string { return helpEscaper.Replace(s) }

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Server is a live observability endpoint: GET /metrics serves the
// Prometheus text format, GET /metrics.json the JSON snapshot, and
// /debug/pprof/* the standard Go profiles (so CPU profiles of a rank can be
// taken mid-run and filtered by the runtime's pprof labels). Close shuts it
// down and waits for the serving goroutines to exit, so a port freed by
// Close can be rebound immediately — including by a subsequent test.
type Server struct {
	ln     net.Listener
	srv    *http.Server
	cancel context.CancelFunc
	done   chan struct{}
}

// Handler returns an http.Handler exposing reg in both exposition formats:
// paths ending in ".json" receive the JSON snapshot, everything else the
// Prometheus text format. It lets other subsystems (the analytics job
// service among them) mount the metrics endpoint on their own mux instead of
// running a second listener.
func Handler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, ".json") {
			w.Header().Set("Content-Type", "application/json")
			_ = reg.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = reg.WritePrometheus(w)
	})
}

// Serve starts an HTTP metrics server for reg on addr (e.g. ":9090" or
// "127.0.0.1:0"). It returns once the listener is bound; requests are
// served on a background goroutine until Close.
func Serve(addr string, reg *Registry) (*Server, error) {
	return ServeContext(context.Background(), addr, reg)
}

// ServeContext is Serve bound to a context: when ctx is cancelled the server
// shuts down exactly as if Close had been called. Close (or Done) can still
// be used to wait for the teardown to finish.
func ServeContext(ctx context.Context, addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	h := Handler(reg)
	mux.Handle("/metrics", h)
	mux.Handle("/metrics.json", h)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "smart metrics endpoint: /metrics (Prometheus text), /metrics.json (snapshot), /debug/pprof/ (profiles)")
	})
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	sctx, cancel := context.WithCancel(ctx)
	s := &Server{ln: ln, srv: srv, cancel: cancel, done: make(chan struct{})}

	served := make(chan struct{})
	go func() {
		defer close(served)
		_ = srv.Serve(ln)
	}()
	go func() {
		defer close(s.done)
		<-sctx.Done()
		// Graceful drain with a bound: a client sitting on a streaming
		// profile must not wedge Close forever.
		shCtx, shCancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer shCancel()
		if srv.Shutdown(shCtx) != nil {
			_ = srv.Close()
		}
		<-served
	}()
	return s, nil
}

// Addr returns the bound listen address (useful with port 0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Done is closed once the server has fully shut down (after Close or
// context cancellation), with the port released.
func (s *Server) Done() <-chan struct{} { return s.done }

// Close stops the server and waits until the listener and all serving
// goroutines are gone. It is idempotent and safe to call concurrently.
func (s *Server) Close() error {
	s.cancel()
	<-s.done
	return nil
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
