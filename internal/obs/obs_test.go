package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("c_total") != c {
		t.Fatal("get-or-create returned a different counter for the same name")
	}

	g := r.Gauge("g")
	g.Set(7)
	g.Add(-3)
	if g.Value() != 4 || g.Peak() != 7 {
		t.Fatalf("gauge value=%d peak=%d, want 4/7", g.Value(), g.Peak())
	}
	g.Add(10)
	if g.Peak() != 14 {
		t.Fatalf("peak after add = %d, want 14", g.Peak())
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_seconds", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.001, 0.01, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-5.561) > 1e-9 {
		t.Fatalf("sum = %g, want 5.561", h.Sum())
	}
	s := r.Snapshot().Histograms["h_seconds"]
	wantCounts := []int64{2, 1, 1, 1} // le=0.01 (0.001 and 0.01), 0.1, 1, +Inf
	for i, b := range s.Buckets {
		if b.Count != wantCounts[i] {
			t.Fatalf("bucket %d (le=%g) count = %d, want %d", i, b.UpperBound, b.Count, wantCounts[i])
		}
	}
	if !math.IsInf(s.Buckets[3].UpperBound, 1) {
		t.Fatalf("last bucket bound = %g, want +Inf", s.Buckets[3].UpperBound)
	}
}

// TestRegistryConcurrentStress is the -race gate for the lock-free hot
// path: N writer goroutines hammer one counter, one gauge and one histogram
// through the get-or-create path while a reader snapshots continuously;
// the final totals must be exact.
func TestRegistryConcurrentStress(t *testing.T) {
	const (
		writers = 8
		perG    = 20_000
	)
	r := NewRegistry()
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := r.Snapshot()
			if c := s.Counters["stress_total"]; c < 0 || c > writers*perG {
				t.Errorf("snapshot counter out of range: %d", c)
				return
			}
			var buf bytes.Buffer
			_ = r.WritePrometheus(&buf)
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				// Re-resolve by name every iteration to stress the
				// registration fast path, not just the atomics.
				r.Counter("stress_total").Inc()
				r.Gauge("stress_gauge").Add(1)
				r.Gauge("stress_gauge").Add(-1)
				r.Histogram("stress_seconds", DurationBuckets).Observe(float64(seed*perG+i) * 1e-7)
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	readers.Wait()

	if got := r.Counter("stress_total").Value(); got != writers*perG {
		t.Fatalf("counter = %d, want %d", got, writers*perG)
	}
	if got := r.Gauge("stress_gauge").Value(); got != 0 {
		t.Fatalf("gauge = %d, want 0", got)
	}
	h := r.Histogram("stress_seconds", DurationBuckets)
	if h.Count() != writers*perG {
		t.Fatalf("histogram count = %d, want %d", h.Count(), writers*perG)
	}
	// Sum of 0..writers*perG-1 scaled by 1e-7, exact in float64 CAS-add up
	// to rounding: check to a relative tolerance.
	n := float64(writers * perG)
	want := n * (n - 1) / 2 * 1e-7
	if math.Abs(h.Sum()-want)/want > 1e-9 {
		t.Fatalf("histogram sum = %g, want %g", h.Sum(), want)
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter(`smart_span_total{phase="reduction"}`).Add(3)
	r.Gauge("smart_ringbuf_occupancy").Set(2)
	r.Histogram(`lat_seconds{op="bcast"}`, []float64{0.1}).Observe(0.05)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE smart_span_total counter",
		`smart_span_total{phase="reduction"} 3`,
		"smart_ringbuf_occupancy 2",
		"smart_ringbuf_occupancy_peak 2",
		`lat_seconds_bucket{op="bcast",le="0.1"} 1`,
		`lat_seconds_bucket{op="bcast",le="+Inf"} 1`,
		`lat_seconds_sum{op="bcast"} 0.05`,
		`lat_seconds_count{op="bcast"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestJSONSnapshotRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total").Add(9)
	r.Gauge("b").Set(-4)
	r.Histogram("c_seconds", DurationBuckets).Observe(0.2)

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	if err := json.Unmarshal(buf.Bytes(), &s); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	if s.Counters["a_total"] != 9 || s.Gauges["b"].Value != -4 || s.Histograms["c_seconds"].Count != 1 {
		t.Fatalf("round-trip mismatch: %+v", s)
	}
}
