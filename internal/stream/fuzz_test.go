package stream

import (
	"testing"
)

// FuzzWindowAssign checks Assign's invariants for arbitrary specs and
// ticks: every returned window contains t, widths match the spec, starts
// ascend by the slide, the count matches the closed-form number of slide
// multiples in (t−size, t], and tumbling assignment is consistent with
// sliding at slide == size.
func FuzzWindowAssign(f *testing.F) {
	f.Add(uint8(0), int64(10), int64(10), int64(0))
	f.Add(uint8(1), int64(10), int64(3), int64(-7))
	f.Add(uint8(2), int64(0), int64(0), int64(42))
	f.Add(uint8(1), int64(1), int64(1), int64(-1))
	f.Add(uint8(0), int64(7), int64(7), int64(-1000000007))
	f.Fuzz(func(t *testing.T, kindRaw uint8, sizeRaw, slideRaw, tick int64) {
		// Clamp raw inputs into valid spec space; keep tick far from the
		// int64 edges so Start/End arithmetic cannot overflow.
		size := sizeRaw%1000 + 1
		if size < 1 {
			size += 1000
		}
		slide := slideRaw%size + 1
		if slide < 1 {
			slide += size
		}
		const lim = int64(1) << 40
		if tick > lim || tick < -lim {
			tick %= lim
		}

		var spec WindowSpec
		switch kindRaw % 3 {
		case 0:
			spec = Tumbling(size)
		case 1:
			spec = Sliding(size, slide)
		case 2:
			spec = Session(size)
		}

		got := spec.Assign(tick, nil)
		if len(got) == 0 {
			t.Fatalf("%v: no window for t=%d", spec, tick)
		}
		width := size
		if spec.Kind == KindSession {
			width = spec.Gap
		}
		for i, w := range got {
			if tick < w.Start || tick >= w.End {
				t.Fatalf("%v: t=%d outside window %+v", spec, tick, w)
			}
			if w.End-w.Start != width {
				t.Fatalf("%v: window %+v has width %d, want %d", spec, w, w.End-w.Start, width)
			}
			if i > 0 && w.Start != got[i-1].Start+spec.Slide {
				t.Fatalf("%v: starts not ascending by slide: %+v", spec, got)
			}
		}

		switch spec.Kind {
		case KindTumbling, KindSession:
			if len(got) != 1 {
				t.Fatalf("%v: %d windows for one tick", spec, len(got))
			}
			if spec.Kind == KindTumbling {
				if got[0].Start != floorDiv(tick, size)*size {
					t.Fatalf("tumbling start %d, want floor-aligned %d", got[0].Start, floorDiv(tick, size)*size)
				}
				// Tumbling must agree with sliding at slide == size.
				slid := Sliding(size, size).Assign(tick, nil)
				if len(slid) != 1 || slid[0] != got[0] {
					t.Fatalf("tumbling %+v != sliding(size,size) %+v", got, slid)
				}
			} else if got[0].Start != tick {
				t.Fatalf("session seed starts at %d, want t=%d", got[0].Start, tick)
			}
		case KindSliding:
			// Closed form: multiples of slide in (t-size, t].
			want := int(floorDiv(tick, spec.Slide) - floorDiv(tick-size, spec.Slide))
			if len(got) != want {
				t.Fatalf("%v: %d windows for t=%d, want %d", spec, len(got), tick, want)
			}
		}

		// Reuse path: assigning into a dirty scratch slice yields the same
		// windows.
		scratch := make([]Window, 3, 8)
		reused := spec.Assign(tick, scratch[:0])
		if len(reused) != len(got) {
			t.Fatalf("%v: reuse path returned %d windows, want %d", spec, len(reused), len(got))
		}
		for i := range got {
			if reused[i] != got[i] {
				t.Fatalf("%v: reuse path diverged at %d: %+v vs %+v", spec, i, reused[i], got[i])
			}
		}
	})
}
