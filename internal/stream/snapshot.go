package stream

import (
	"errors"
	"fmt"
)

// Snapshot is the serializable state of a paused pipeline: per-source
// watermark marks and every stage's open (buffered, unfired) windows. A
// standing smartd query checkpoints one at a drain boundary and restores it
// into a fresh pipeline on resume — fired windows are gone from the
// snapshot and the resumed source skips consumed steps, so no window is
// duplicated or lost across the restart.
type Snapshot struct {
	// Sources holds one mark per pipeline source, in From order.
	Sources []SourceMark `json:"sources"`
	// Stages holds one entry per Window/Combine stage, in chain order.
	Stages []StageSnapshot `json:"stages"`
}

// SourceMark is one source's watermark bookkeeping.
type SourceMark struct {
	Started bool  `json:"started"`
	Done    bool  `json:"done"`
	MaxSeen int64 `json:"max_seen"`
}

// StageSnapshot is one stage's watermark, ingest sequence, and open
// windows.
type StageSnapshot struct {
	WM   int64            `json:"wm"`
	Seq  int64            `json:"seq"`
	Open []WindowSnapshot `json:"open,omitempty"`
}

// WindowSnapshot is one open window's buffered events.
type WindowSnapshot struct {
	Window    Window          `json:"window"`
	SincePane int             `json:"since_pane"`
	Panes     int             `json:"panes"`
	Events    []EventSnapshot `json:"events,omitempty"`
}

// EventSnapshot is one buffered event with its canonical-order sequence.
type EventSnapshot struct {
	Time int64     `json:"t"`
	Seq  int64     `json:"seq"`
	Data []float64 `json:"data"`
}

// Snapshot captures the pipeline's current state. Call it only after Run
// has returned (a drain surfaces as a source error, leaving open windows
// intact); calling it before any Run yields an error.
func (p *Pipeline) Snapshot() (*Snapshot, error) {
	if p.state == nil {
		return nil, errors.New("stream: nothing to snapshot — pipeline never ran")
	}
	st := p.state
	snap := &Snapshot{}
	for i := range st.maxSeen {
		snap.Sources = append(snap.Sources, SourceMark{
			Started: st.started[i], Done: st.done[i], MaxSeen: st.maxSeen[i],
		})
	}
	for _, ss := range st.stages {
		s := StageSnapshot{WM: ss.wm, Seq: ss.seq}
		for _, ow := range ss.open {
			w := WindowSnapshot{Window: ow.win, SincePane: ow.sincePane, Panes: ow.panes}
			for i := range ow.times {
				w.Events = append(w.Events, EventSnapshot{
					Time: ow.times[i], Seq: ow.seqs[i],
					Data: append([]float64(nil), ow.data[i]...),
				})
			}
			s.Open = append(s.Open, w)
		}
		snap.Stages = append(snap.Stages, s)
	}
	return snap, nil
}

// Restore seeds a not-yet-run pipeline with a snapshot. The pipeline must
// have the same shape (source and stage counts) as the one that produced
// it.
func (p *Pipeline) Restore(snap *Snapshot) error {
	if p.ran || p.state != nil {
		return errors.New("stream: Restore after the pipeline ran")
	}
	if err := p.validate(); err != nil {
		return err
	}
	if len(snap.Sources) != len(p.sources) {
		return fmt.Errorf("stream: snapshot has %d sources, pipeline %d", len(snap.Sources), len(p.sources))
	}
	if len(snap.Stages) != len(p.stages) {
		return fmt.Errorf("stream: snapshot has %d stages, pipeline %d", len(snap.Stages), len(p.stages))
	}
	st := p.newState()
	for i, m := range snap.Sources {
		st.started[i], st.done[i], st.maxSeen[i] = m.Started, m.Done, m.MaxSeen
		if m.Started && m.MaxSeen > st.globalMax {
			st.globalMax = m.MaxSeen
		}
	}
	for si, s := range snap.Stages {
		ss := st.stages[si]
		ss.wm, ss.seq = s.WM, s.Seq
		for _, w := range s.Open {
			ow := &openWin{win: w.Window, sincePane: w.SincePane, panes: w.Panes}
			for _, ev := range w.Events {
				ow.times = append(ow.times, ev.Time)
				ow.seqs = append(ow.seqs, ev.Seq)
				ow.data = append(ow.data, ev.Data)
				ow.elems += len(ev.Data)
			}
			ss.open = append(ss.open, ow)
		}
	}
	p.state = st
	return nil
}
