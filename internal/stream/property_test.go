package stream

import (
	"context"
	"encoding/json"
	"math"
	"reflect"
	"testing"

	"github.com/scipioneer/smart/internal/obs"
)

func countComb() Combiner {
	return CombinerFunc(func(_ context.Context, _ Window, elems []float64) (any, error) {
		return len(elems), nil
	})
}

// TestWatermarkMonotonic: the first stage's watermark never regresses and
// never overtakes maxSeen−lateness, and windows fire in non-decreasing
// end-time order — even when event times arrive out of order.
func TestWatermarkMonotonic(t *testing.T) {
	times := []int64{3, 1, 7, 5, 12, 9, 20, 14, 33, 21, 40}
	const lateness = 4
	evs := stepEvents(times, 4)

	p := New()
	var wms []int64
	var maxSeen int64 = math.MinInt64
	probe := SourceFunc(func(ctx context.Context, push func(Event) error) error {
		for _, ev := range evs {
			if err := push(ev); err != nil {
				return err
			}
			if ev.Time > maxSeen {
				maxSeen = ev.Time
			}
			wm := p.state.stages[0].wm
			if wm != math.MinInt64 && wm > maxSeen-lateness {
				t.Errorf("watermark %d overtook maxSeen-lateness %d", wm, maxSeen-lateness)
			}
			wms = append(wms, wm)
		}
		return nil
	})

	var ends []int64
	err := p.
		From(probe).
		Window(Tumbling(5)).
		AllowedLateness(lateness).
		Combine(countComb()).
		To(CallbackSink(func(res WindowResult) error { ends = append(ends, res.Window.End); return nil })).
		Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(wms); i++ {
		if wms[i] < wms[i-1] {
			t.Fatalf("watermark regressed: %v", wms)
		}
	}
	for i := 1; i < len(ends); i++ {
		if ends[i] < ends[i-1] {
			t.Fatalf("windows fired out of end-time order: %v", ends)
		}
	}
	if len(ends) == 0 {
		t.Fatal("no windows fired")
	}
}

// TestMultiSourceWatermark: the merged watermark is the minimum across
// unfinished sources, so a slow source holds every window open until it
// catches up — no element from the fast source is ever marked late.
func TestMultiSourceWatermark(t *testing.T) {
	fast := stepEvents([]int64{0, 1, 2, 3, 4, 5, 6, 7}, 4)
	slow := stepEvents([]int64{0, 1, 2, 3}, 4)
	reg := obs.NewRegistry()
	var got []WindowResult
	err := New().
		From(SliceSource(fast), SliceSource(slow)).
		Window(Tumbling(2)).
		Combine(countComb()).
		To(CallbackSink(func(res WindowResult) error { got = append(got, res); return nil })).
		WithObserver(obs.NewWithRegistry(reg)).
		Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if n := reg.Counter(`smart_stream_events_late_total{policy="drop"}`).Value(); n != 0 {
		t.Fatalf("%d events dropped as late despite min-merged watermark", n)
	}
	want := map[Window]int{
		{0, 2}: 16, {2, 4}: 16, // both sources contribute
		{4, 6}: 8, {6, 8}: 8, // fast source only
	}
	if len(got) != len(want) {
		t.Fatalf("fired %d windows, want %d", len(got), len(want))
	}
	for _, res := range got {
		if res.Value.(int) != want[res.Window] {
			t.Fatalf("window %+v combined %d elems, want %d", res.Window, res.Value, want[res.Window])
		}
	}
}

// TestLateDataPolicies: an event behind the watermark is dropped under
// LateDrop and routed (with its missed window) under LateSideOutput; on-time
// results are identical either way and match the no-late-events oracle.
func TestLateDataPolicies(t *testing.T) {
	// Time 12 advances the watermark past the ends of [0,4), [4,8), and
	// [8,12): the stragglers at t=2 and t=9 behind it are both late.
	times := []int64{0, 1, 5, 12, 2, 9, 13}
	evs := stepEvents(times, 4)
	run := func(pol LatePolicy, onLate func(Event, Window)) (map[Window]int, *obs.Registry) {
		reg := obs.NewRegistry()
		got := map[Window]int{}
		p := New().
			From(SliceSource(evs)).
			Window(Tumbling(4)).
			OnLate(pol).
			Combine(countComb()).
			To(CallbackSink(func(res WindowResult) error { got[res.Window] = res.Value.(int); return nil })).
			WithObserver(obs.NewWithRegistry(reg))
		if onLate != nil {
			p.SideOutput(onLate)
		}
		if err := p.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		return got, reg
	}

	dropped, dreg := run(LateDrop, nil)
	var side []struct {
		ev Event
		w  Window
	}
	routed, sreg := run(LateSideOutput, func(ev Event, w Window) {
		side = append(side, struct {
			ev Event
			w  Window
		}{ev, w})
	})

	want := map[Window]int{{0, 4}: 8, {4, 8}: 4, {12, 16}: 8}
	if !reflect.DeepEqual(dropped, want) {
		t.Fatalf("drop-policy windows %v, want %v", dropped, want)
	}
	if !reflect.DeepEqual(routed, want) {
		t.Fatalf("side-output windows %v, want %v (policies must not change on-time output)", routed, want)
	}
	if n := dreg.Counter(`smart_stream_events_late_total{policy="drop"}`).Value(); n != 2 {
		t.Fatalf("drop counter = %d, want 2", n)
	}
	if n := sreg.Counter(`smart_stream_events_late_total{policy="side_output"}`).Value(); n != 2 {
		t.Fatalf("side-output counter = %d, want 2", n)
	}
	if len(side) != 2 ||
		side[0].ev.Time != 2 || side[0].w != (Window{0, 4}) ||
		side[1].ev.Time != 9 || side[1].w != (Window{8, 12}) {
		t.Fatalf("side output got %+v, want the t=2 and t=9 stragglers", side)
	}
}

// TestSessionMergeMetrics: an out-of-order event bridging two open sessions
// fuses them (counted once) and the fused window fires with every element.
func TestSessionMergeMetrics(t *testing.T) {
	// 0 and 6 open two sessions (gap 4); the out-of-order 3 seeds [3,7),
	// which overlaps both and fuses them into [0,10); 30 closes it. The
	// allowed lateness keeps the watermark behind so both stay open.
	evs := stepEvents([]int64{0, 6, 3, 30}, 4)
	reg := obs.NewRegistry()
	var got []WindowResult
	err := New().
		From(SliceSource(evs)).
		Window(Session(4)).
		AllowedLateness(10).
		Combine(countComb()).
		To(CallbackSink(func(res WindowResult) error { got = append(got, res); return nil })).
		WithObserver(obs.NewWithRegistry(reg)).
		Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if n := reg.Counter("smart_stream_windows_merged_total").Value(); n != 1 {
		t.Fatalf("merged counter = %d, want 1", n)
	}
	if len(got) != 2 {
		t.Fatalf("fired %d sessions, want 2: %+v", len(got), got)
	}
	if got[0].Window != (Window{0, 10}) || got[0].Value.(int) != 12 {
		t.Fatalf("fused session %+v, want [0,10) with 12 elems", got[0])
	}
	if got[1].Window != (Window{30, 34}) || got[1].Value.(int) != 4 {
		t.Fatalf("tail session %+v", got[1])
	}
}

// TestSnapshotResume: cancel a pipeline mid-stream, snapshot it, restore
// into a fresh pipeline whose source resumes past the consumed prefix, and
// check the union of fired windows is exactly the uninterrupted run's — no
// duplicates, no gaps, same per-window values. This is the property smartd
// standing-query drain/restart is built on.
func TestSnapshotResume(t *testing.T) {
	cfg := GeneratorConfig{Steps: 10, StepElems: 32, Seed: 11}
	build := func(src Source, collect *[]WindowResult) *Pipeline {
		return New().
			From(src).
			Window(Sliding(4, 2)).
			Combine(CombinerFunc(func(_ context.Context, _ Window, elems []float64) (any, error) {
				var sum float64
				for _, v := range elems {
					sum += v
				}
				return sum, nil
			})).
			To(CallbackSink(func(res WindowResult) error { *collect = append(*collect, res); return nil }))
	}

	// Uninterrupted reference run.
	var ref []WindowResult
	if err := build(Generator(cfg), &ref).Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Interrupted run: cut the generator off after 6 steps (a drain).
	const cut = 6
	var first []WindowResult
	pushed := 0
	cutSrc := SourceFunc(func(ctx context.Context, push func(Event) error) error {
		return Generator(GeneratorConfig{Steps: cut, StepElems: cfg.StepElems, Seed: cfg.Seed}).
			Feed(ctx, func(ev Event) error {
				pushed++
				return push(ev)
			})
	})
	p1 := build(cutSrc, &first)
	if err := p1.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	// A finished source flushes everything, which a drain must not do —
	// snapshot state after the windows still open at the cut would have
	// fired. Re-run with a source that errors out instead.
	first = first[:0]
	pushed = 0
	sentinel := context.Canceled
	drainSrc := SourceFunc(func(ctx context.Context, push func(Event) error) error {
		err := Generator(GeneratorConfig{Steps: cut, StepElems: cfg.StepElems, Seed: cfg.Seed}).
			Feed(ctx, func(ev Event) error {
				pushed++
				return push(ev)
			})
		if err != nil {
			return err
		}
		return sentinel
	})
	p1 = build(drainSrc, &first)
	if err := p1.Run(context.Background()); err == nil {
		t.Fatal("drained run reported success")
	}
	snap, err := p1.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if pushed != cut {
		t.Fatalf("consumed %d steps before drain, want %d", pushed, cut)
	}

	// Round-trip the snapshot through JSON like the smartd checkpoint does.
	blob, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var loaded Snapshot
	if err := json.Unmarshal(blob, &loaded); err != nil {
		t.Fatal(err)
	}

	var second []WindowResult
	p2 := build(Generator(GeneratorConfig{
		Steps: cfg.Steps - cut, StepElems: cfg.StepElems, Seed: cfg.Seed, StartStep: cut,
	}), &second)
	if err := p2.Restore(&loaded); err != nil {
		t.Fatal(err)
	}
	if err := p2.Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	combined := map[Window]float64{}
	for _, res := range append(append([]WindowResult(nil), first...), second...) {
		if _, dup := combined[res.Window]; dup {
			t.Fatalf("window %+v fired in both halves", res.Window)
		}
		combined[res.Window] = res.Value.(float64)
	}
	if len(combined) != len(ref) {
		t.Fatalf("resumed run fired %d windows, reference fired %d", len(combined), len(ref))
	}
	for _, res := range ref {
		got, ok := combined[res.Window]
		if !ok {
			t.Fatalf("window %+v missing after resume", res.Window)
		}
		if got != res.Value.(float64) {
			t.Fatalf("window %+v = %v after resume, want %v", res.Window, got, res.Value)
		}
	}
}

// TestRunContextCancel: cancellation mid-stream surfaces promptly as the
// context error without firing a final flush.
func TestRunContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	fired := 0
	n := 0
	src := SourceFunc(func(ctx context.Context, push func(Event) error) error {
		for i := int64(0); i < 100; i++ {
			if err := push(Event{Time: i, Data: []float64{1}}); err != nil {
				return err
			}
			n++
			if i == 10 {
				cancel()
			}
		}
		return nil
	})
	err := New().
		From(src).
		Window(Tumbling(1000)).
		Combine(countComb()).
		To(CallbackSink(func(WindowResult) error { fired++; return nil })).
		Run(ctx)
	if err == nil {
		t.Fatal("cancelled run reported success")
	}
	if fired != 0 {
		t.Fatalf("cancelled run flushed %d windows", fired)
	}
	if n > 12 {
		t.Fatalf("source pushed %d events after cancel", n)
	}
}
