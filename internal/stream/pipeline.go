package stream

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"github.com/scipioneer/smart/internal/obs"
)

// Pipeline is the operator chain builder. Methods chain; the first error
// latches and surfaces from Run. A pipeline runs at most once.
//
//	err := stream.New().
//		From(src).
//		Window(stream.Tumbling(4)).
//		Combine(comb).
//		To(stream.NDJSONSink(w)).
//		Run(ctx)
type Pipeline struct {
	sources  []Source
	mapFn    func(Event) Event
	stages   []*stageSpec
	sink     Sink
	onEmit   func(w Window, key int, value any)
	onLate   func(ev Event, w Window)
	lateness int64
	observer *obs.Observer
	err      error
	state    *runnerState
	ran      bool
}

// stageSpec is one Window→Combine operator pair plus its policies.
type stageSpec struct {
	spec  WindowSpec
	trig  Trigger
	late  LatePolicy
	comb  Combiner
	remap func(WindowResult) (Event, bool) // nil on the last stage
}

// New returns an empty pipeline.
func New() *Pipeline { return &Pipeline{} }

func (p *Pipeline) fail(err error) *Pipeline {
	if p.err == nil {
		p.err = err
	}
	return p
}

// From appends sources. Sources are drained sequentially in the given
// order; each keeps its own watermark and the pipeline's watermark is their
// minimum, so windows stay open until every source has passed them. In-situ
// pipelines have exactly one source.
func (p *Pipeline) From(srcs ...Source) *Pipeline {
	for _, s := range srcs {
		if s == nil {
			return p.fail(errors.New("stream: nil source"))
		}
	}
	p.sources = append(p.sources, srcs...)
	return p
}

// Map transforms every event before windowing (at most one per pipeline,
// applied ahead of the first stage).
func (p *Pipeline) Map(fn func(Event) Event) *Pipeline {
	if p.mapFn != nil {
		return p.fail(errors.New("stream: Map set twice"))
	}
	p.mapFn = fn
	return p
}

// Window opens a new operator stage with the given window assignment.
func (p *Pipeline) Window(ws WindowSpec) *Pipeline {
	if err := ws.validate(); err != nil {
		return p.fail(err)
	}
	if n := len(p.stages); n > 0 && p.stages[n-1].remap == nil {
		return p.fail(errors.New("stream: Window after an unterminated stage — chain stages with ThenMap"))
	}
	p.stages = append(p.stages, &stageSpec{spec: ws})
	return p
}

func (p *Pipeline) cur() *stageSpec {
	if len(p.stages) == 0 {
		return nil
	}
	return p.stages[len(p.stages)-1]
}

// Trigger sets the current stage's trigger policy.
func (p *Pipeline) Trigger(tr Trigger) *Pipeline {
	st := p.cur()
	if st == nil {
		return p.fail(errors.New("stream: Trigger before Window"))
	}
	if tr.EveryCount < 0 {
		return p.fail(fmt.Errorf("stream: trigger count %d", tr.EveryCount))
	}
	st.trig = tr
	return p
}

// OnLate sets the current stage's late-data policy (default LateDrop).
func (p *Pipeline) OnLate(pol LatePolicy) *Pipeline {
	st := p.cur()
	if st == nil {
		return p.fail(errors.New("stream: OnLate before Window"))
	}
	st.late = pol
	return p
}

// AllowedLateness widens the watermark heuristic: a source's watermark
// trails its maximum seen event time by l ticks, keeping windows open for
// out-of-order arrivals within that bound.
func (p *Pipeline) AllowedLateness(l int64) *Pipeline {
	if l < 0 {
		return p.fail(fmt.Errorf("stream: allowed lateness %d", l))
	}
	p.lateness = l
	return p
}

// Combine attaches the current stage's combiner.
func (p *Pipeline) Combine(c Combiner) *Pipeline {
	st := p.cur()
	if st == nil {
		return p.fail(errors.New("stream: Combine before Window"))
	}
	if st.comb != nil {
		return p.fail(errors.New("stream: Combine set twice for one Window"))
	}
	if c == nil {
		return p.fail(errors.New("stream: nil combiner"))
	}
	st.comb = c
	return p
}

// ThenMap terminates the current stage and routes its fired panes into the
// next one: each WindowResult is remapped to an event (return false to
// drop). The remapped Time must lie inside the fired window — that bound is
// what lets the downstream watermark advance before end of stream.
func (p *Pipeline) ThenMap(fn func(WindowResult) (Event, bool)) *Pipeline {
	st := p.cur()
	if st == nil || st.comb == nil {
		return p.fail(errors.New("stream: ThenMap before a completed Window/Combine stage"))
	}
	if st.remap != nil {
		return p.fail(errors.New("stream: ThenMap set twice for one stage"))
	}
	if fn == nil {
		return p.fail(errors.New("stream: nil ThenMap"))
	}
	st.remap = fn
	return p
}

// OnEmit receives forwarded per-key early emissions from stages with
// Trigger.EarlyEmits. Like core.Scheduler.SubscribeEarlyEmits it fires from
// reduction worker goroutines — the callback must be safe for concurrent
// use.
func (p *Pipeline) OnEmit(fn func(w Window, key int, value any)) *Pipeline {
	p.onEmit = fn
	return p
}

// SideOutput receives late events from stages with the LateSideOutput
// policy, along with the already-closed window each would have joined.
func (p *Pipeline) SideOutput(fn func(ev Event, w Window)) *Pipeline {
	p.onLate = fn
	return p
}

// To sets the terminal sink consuming the last stage's fired panes.
func (p *Pipeline) To(s Sink) *Pipeline {
	if p.sink != nil {
		return p.fail(errors.New("stream: To set twice"))
	}
	p.sink = s
	return p
}

// WithObserver routes the pipeline's smart_stream_* metrics to the given
// observer (default: the process-wide one).
func (p *Pipeline) WithObserver(o *obs.Observer) *Pipeline {
	p.observer = o
	return p
}

func (p *Pipeline) validate() error {
	if p.err != nil {
		return p.err
	}
	if p.ran {
		return errors.New("stream: pipeline already ran")
	}
	if len(p.sources) == 0 {
		return errors.New("stream: no sources (From)")
	}
	if len(p.stages) == 0 {
		return errors.New("stream: no stages (Window/Combine)")
	}
	for i, st := range p.stages {
		if st.comb == nil {
			return fmt.Errorf("stream: stage %d has no combiner", i)
		}
		if i < len(p.stages)-1 && st.remap == nil {
			return fmt.Errorf("stream: stage %d is not last but has no ThenMap", i)
		}
		if i == len(p.stages)-1 && st.remap != nil {
			return errors.New("stream: last stage has a ThenMap but no following Window")
		}
		if i < len(p.stages)-1 && st.trig.EveryCount > 0 {
			return fmt.Errorf("stream: stage %d: count triggers are only supported on the last stage — early panes of an inner stage would duplicate downstream input", i)
		}
		if st.trig.EarlyEmits {
			if _, ok := st.comb.(emitSubscriber); !ok {
				return fmt.Errorf("stream: stage %d: EarlyEmits needs a combiner that exposes early emissions (SchedCombiner)", i)
			}
		}
	}
	if p.sink == nil {
		return errors.New("stream: no sink (To)")
	}
	return nil
}

// openWin is one buffered, not-yet-fired window.
type openWin struct {
	win       Window
	times     []int64
	seqs      []int64
	data      [][]float64
	elems     int
	sincePane int // elements since the last early pane
	panes     int // early panes fired so far
}

func (ow *openWin) add(ev Event, seq int64) {
	ow.times = append(ow.times, ev.Time)
	ow.seqs = append(ow.seqs, seq)
	ow.data = append(ow.data, ev.Data)
	ow.elems += len(ev.Data)
	ow.sincePane += len(ev.Data)
}

// stageState is one stage's runtime state.
type stageState struct {
	spec    *stageSpec
	open    []*openWin
	wm      int64
	seq     int64
	scratch []float64
}

// runnerState is the executor state, kept on the pipeline so standing
// queries can Snapshot it after a drained Run.
type runnerState struct {
	stages    []*stageState
	maxSeen   []int64 // per-source maximum event time
	started   []bool  // per-source: has it produced at least one event
	done      []bool  // per-source: Feed returned nil
	globalMax int64   // max event time across sources, for the lag gauge
}

type runner struct {
	p      *Pipeline
	st     *runnerState
	met    *metrics
	ctx    context.Context
	curWin Window // window whose combine is in flight (OnEmit forwarding)
}

func (p *Pipeline) newState() *runnerState {
	st := &runnerState{
		maxSeen:   make([]int64, len(p.sources)),
		started:   make([]bool, len(p.sources)),
		done:      make([]bool, len(p.sources)),
		globalMax: math.MinInt64,
	}
	for i := range st.maxSeen {
		st.maxSeen[i] = math.MinInt64
	}
	for _, spec := range p.stages {
		st.stages = append(st.stages, &stageState{spec: spec, wm: math.MinInt64})
	}
	return st
}

// Run drains the sources through the operator chain. On success every
// remaining window has fired (the end-of-stream watermark flushes all
// stages in order) and the sink is closed. On error — including a source
// aborting for a drain checkpoint — open windows are preserved and
// Snapshot captures them.
func (p *Pipeline) Run(ctx context.Context) error {
	if err := p.validate(); err != nil {
		return err
	}
	p.ran = true
	if p.state == nil {
		p.state = p.newState()
	} else if len(p.state.stages) != len(p.stages) {
		return fmt.Errorf("stream: restored snapshot has %d stages, pipeline %d", len(p.state.stages), len(p.stages))
	}
	var o *obs.Observer
	if o = p.observer; o == nil {
		o = obs.Default()
	}
	r := &runner{p: p, st: p.state, met: newMetrics(o.Registry()), ctx: ctx}

	// Wire early-emit forwarding once, before any combine runs.
	for si, spec := range p.stages {
		if spec.trig.EarlyEmits && p.onEmit != nil {
			sub := spec.comb.(emitSubscriber)
			fn := p.onEmit
			_ = si
			sub.subscribeEmits(func(key int, value any) { fn(r.curWin, key, value) })
		}
	}

	for i, src := range p.sources {
		if r.st.done[i] {
			continue // restored snapshot already drained this source
		}
		i := i
		err := src.Feed(ctx, func(ev Event) error { return r.onEvent(i, ev) })
		if err != nil {
			return err
		}
		r.st.done[i] = true
		// A finished source no longer holds the merged watermark back.
		if err := r.advance(0, r.mergedWM()); err != nil {
			return err
		}
	}

	// End of stream: flush every stage in order, then close the sink.
	for si := range r.st.stages {
		if err := r.advanceStage(si, math.MaxInt64); err != nil {
			return err
		}
	}
	return p.sink.Close()
}

// onEvent ingests one source event: advance the source watermark, fire
// anything now due, then assign and buffer the event.
func (r *runner) onEvent(srcIdx int, ev Event) error {
	if err := r.ctx.Err(); err != nil {
		return err
	}
	if r.p.mapFn != nil {
		ev = r.p.mapFn(ev)
	}
	st := r.st
	st.started[srcIdx] = true
	if ev.Time > st.maxSeen[srcIdx] {
		st.maxSeen[srcIdx] = ev.Time
	}
	if ev.Time > st.globalMax {
		st.globalMax = ev.Time
	}
	if err := r.advance(0, r.mergedWM()); err != nil {
		return err
	}
	return r.ingest(0, ev)
}

// mergedWM is the pipeline watermark: the minimum per-source watermark,
// where a source's watermark trails its max seen time by the allowed
// lateness and a finished source no longer participates.
func (r *runner) mergedWM() int64 {
	wm := int64(math.MaxInt64)
	for i := range r.st.maxSeen {
		if r.st.done[i] {
			continue
		}
		srcWM := int64(math.MinInt64)
		if r.st.started[i] {
			srcWM = r.st.maxSeen[i] - r.p.lateness
		}
		if srcWM < wm {
			wm = srcWM
		}
	}
	return wm
}

// advance moves stage 0's watermark and cascades bounded advances
// downstream.
func (r *runner) advance(si int, wm int64) error {
	for ; si < len(r.st.stages); si++ {
		st := r.st.stages[si]
		if wm <= st.wm {
			return nil
		}
		if err := r.advanceStage(si, wm); err != nil {
			return err
		}
		if wm == math.MaxInt64 {
			// End of stream propagates exactly; per-stage flushing is
			// driven by Run's final loop instead.
			return nil
		}
		bound, ok := st.spec.spec.cascadeBound()
		if !ok {
			return nil
		}
		// Future fired windows end after wm, so their remapped events —
		// constrained to lie inside the window — are newer than wm-bound.
		wm = wm - bound + 1
	}
	return nil
}

// advanceStage raises one stage's watermark and fires every window now past
// it, in deterministic (End, Start) order.
func (r *runner) advanceStage(si int, wm int64) error {
	st := r.st.stages[si]
	if wm <= st.wm {
		return nil
	}
	st.wm = wm
	if si == 0 && st.wm > math.MinInt64 && r.st.globalMax > math.MinInt64 {
		lag := r.st.globalMax - st.wm
		if lag < 0 {
			lag = 0
		}
		r.met.wmLag.Set(lag)
	}
	var due []*openWin
	rest := st.open[:0]
	for _, ow := range st.open {
		if ow.win.End <= wm {
			due = append(due, ow)
		} else {
			rest = append(rest, ow)
		}
	}
	st.open = rest
	sort.Slice(due, func(i, j int) bool {
		if due[i].win.End != due[j].win.End {
			return due[i].win.End < due[j].win.End
		}
		return due[i].win.Start < due[j].win.Start
	})
	for _, ow := range due {
		if err := r.fire(si, ow, true); err != nil {
			return err
		}
	}
	return nil
}

// ingest assigns one event to a stage's windows, buffering it in each open
// one, applying the late policy for already-closed ones, and firing any
// count-trigger panes that the new elements complete.
func (r *runner) ingest(si int, ev Event) error {
	st := r.st.stages[si]
	spec := st.spec
	st.seq++
	seq := st.seq

	if spec.spec.Kind == KindSession {
		return r.ingestSession(si, ev, seq)
	}
	wins := spec.spec.Assign(ev.Time, nil)
	for _, w := range wins {
		if w.End <= st.wm {
			r.late(si, ev, w)
			continue
		}
		ow := findOpen(st.open, w)
		if ow == nil {
			ow = &openWin{win: w}
			st.open = append(st.open, ow)
			r.met.opened.Inc()
		}
		ow.add(ev, seq)
		if err := r.maybeCountPane(si, ow); err != nil {
			return err
		}
	}
	return nil
}

// ingestSession merges the event's seed interval [t, t+gap) into the
// overlapping open sessions (fusing them if it bridges several) or opens a
// new one; an expired seed with nothing to merge into is late.
func (r *runner) ingestSession(si int, ev Event, seq int64) error {
	st := r.st.stages[si]
	seed := Window{Start: ev.Time, End: ev.Time + st.spec.spec.Gap}
	var merged *openWin
	rest := st.open[:0]
	for _, ow := range st.open {
		if !ow.win.overlaps(seed) {
			rest = append(rest, ow)
			continue
		}
		if merged == nil {
			merged = ow
			if seed.Start < ow.win.Start {
				ow.win.Start = seed.Start
			}
			if seed.End > ow.win.End {
				ow.win.End = seed.End
			}
			rest = append(rest, ow)
			continue
		}
		// The seed bridges two sessions: fuse ow into merged.
		if ow.win.Start < merged.win.Start {
			merged.win.Start = ow.win.Start
		}
		if ow.win.End > merged.win.End {
			merged.win.End = ow.win.End
		}
		merged.times = append(merged.times, ow.times...)
		merged.seqs = append(merged.seqs, ow.seqs...)
		merged.data = append(merged.data, ow.data...)
		merged.elems += ow.elems
		merged.sincePane += ow.sincePane
		merged.panes += ow.panes
		r.met.merged.Inc()
	}
	st.open = rest
	if merged == nil {
		if seed.End <= st.wm {
			r.late(si, ev, seed)
			return nil
		}
		merged = &openWin{win: seed}
		st.open = append(st.open, merged)
		r.met.opened.Inc()
	}
	merged.add(ev, seq)
	return r.maybeCountPane(si, merged)
}

func findOpen(open []*openWin, w Window) *openWin {
	for _, ow := range open {
		if ow.win == w {
			return ow
		}
	}
	return nil
}

// late applies the stage's late-data policy to one (event, window) pair.
func (r *runner) late(si int, ev Event, w Window) {
	if r.st.stages[si].spec.late == LateSideOutput {
		r.met.lateSide.Inc()
		if r.p.onLate != nil {
			r.p.onLate(ev, w)
		}
		return
	}
	r.met.lateDrop.Inc()
}

// maybeCountPane fires early panes for every count-trigger threshold the
// window's buffer has crossed.
func (r *runner) maybeCountPane(si int, ow *openWin) error {
	n := r.st.stages[si].spec.trig.EveryCount
	if n <= 0 {
		return nil
	}
	for ow.sincePane >= n {
		ow.sincePane -= n
		if err := r.fire(si, ow, false); err != nil {
			return err
		}
	}
	return nil
}

// fire runs one pane: order the window's events canonically, concatenate
// their elements, combine, and hand the result to the sink (last stage) or
// the next stage (ThenMap).
func (r *runner) fire(si int, ow *openWin, final bool) error {
	if err := r.ctx.Err(); err != nil {
		return err
	}
	st := r.st.stages[si]
	start := time.Now()

	// Canonical element order: (event time, ingest sequence). Buffers are
	// appended in sequence order, so only session fusions and allowed-late
	// arrivals actually move anything.
	order := make([]int, len(ow.times))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		i, j := order[a], order[b]
		if ow.times[i] != ow.times[j] {
			return ow.times[i] < ow.times[j]
		}
		return ow.seqs[i] < ow.seqs[j]
	})
	st.scratch = st.scratch[:0]
	for _, i := range order {
		st.scratch = append(st.scratch, ow.data[i]...)
	}

	r.curWin = ow.win
	value, err := st.spec.comb.Combine(r.ctx, ow.win, st.scratch)
	if err != nil {
		return err
	}
	res := WindowResult{
		Window: ow.win,
		Pane:   ow.panes,
		Final:  final,
		Events: len(ow.times),
		Elems:  len(st.scratch),
		Value:  value,
	}
	ow.panes++
	if final {
		r.met.fired.Inc()
	} else {
		r.met.early.Inc()
	}

	if si == len(r.st.stages)-1 {
		res.Latency = time.Since(start)
		r.met.latency.Observe(res.Latency.Seconds())
		return r.p.sink.Emit(res)
	}
	res.Latency = time.Since(start)
	r.met.latency.Observe(res.Latency.Seconds())
	ev, ok := st.spec.remap(res)
	if !ok {
		return nil
	}
	if ev.Time < ow.win.Start || ev.Time >= ow.win.End {
		return fmt.Errorf("stream: stage %d remapped time %d outside fired window [%d,%d)",
			si, ev.Time, ow.win.Start, ow.win.End)
	}
	return r.ingest(si+1, ev)
}
