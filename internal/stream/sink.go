package stream

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"github.com/scipioneer/smart/internal/obs"
)

// WindowResult is one fired pane of one window: the combiner's output over
// the window's elements as buffered at firing time.
type WindowResult struct {
	// Window is the event-time interval the pane covers.
	Window Window
	// Pane numbers the firings of this window: early panes count from 0,
	// the final on-watermark pane is the last.
	Pane int
	// Final marks the on-watermark pane — the window's complete contents.
	Final bool
	// Events and Elems count the buffered events and their total elements
	// at firing time.
	Events int
	Elems  int
	// Value is the combiner's result; NDJSONSink marshals it as-is.
	Value any
	// Latency is the firing cost: combine plus downstream handoff.
	Latency time.Duration
}

// Sink consumes fired window panes at the end of a pipeline. Emit is called
// from the pipeline's driving goroutine, in deterministic firing order;
// Close is called once after the final flush.
type Sink interface {
	Emit(res WindowResult) error
	Close() error
}

// CallbackSink adapts a function to the Sink interface.
func CallbackSink(fn func(WindowResult) error) Sink { return callbackSink(fn) }

type callbackSink func(WindowResult) error

func (f callbackSink) Emit(res WindowResult) error { return f(res) }
func (callbackSink) Close() error                  { return nil }

// NDJSONSink writes one JSON line per fired pane:
//
//	{"type":"window","start":0,"end":4,"pane":0,"final":true,"events":4,"elems":4096,"value":...}
//
// matching the NDJSON framing smartd's job stream uses.
func NDJSONSink(w io.Writer) Sink { return &ndjsonSink{w: w} }

type ndjsonSink struct{ w io.Writer }

type ndjsonWindow struct {
	Type   string `json:"type"`
	Start  int64  `json:"start"`
	End    int64  `json:"end"`
	Pane   int    `json:"pane"`
	Final  bool   `json:"final"`
	Events int    `json:"events"`
	Elems  int    `json:"elems"`
	Value  any    `json:"value,omitempty"`
}

func (s *ndjsonSink) Emit(res WindowResult) error {
	line, err := json.Marshal(ndjsonWindow{
		Type:  "window",
		Start: res.Window.Start, End: res.Window.End,
		Pane: res.Pane, Final: res.Final,
		Events: res.Events, Elems: res.Elems,
		Value: res.Value,
	})
	if err != nil {
		return fmt.Errorf("stream: marshal window result: %w", err)
	}
	if _, err := s.w.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("stream: write window result: %w", err)
	}
	return nil
}

func (s *ndjsonSink) Close() error { return nil }

// CounterSink counts panes into the observability registry — a fire-and-
// forget sink for queries whose only consumer is a metrics dashboard. It
// bumps smart_stream_sink_panes_total{sink="<name>"} per pane and
// smart_stream_sink_elems_total{sink="<name>"} per combined element.
func CounterSink(reg *obs.Registry, name string) Sink {
	if reg == nil {
		reg = obs.DefaultRegistry()
	}
	return &counterSink{
		panes: reg.Counter(fmt.Sprintf("smart_stream_sink_panes_total{sink=%q}", name)),
		elems: reg.Counter(fmt.Sprintf("smart_stream_sink_elems_total{sink=%q}", name)),
	}
}

type counterSink struct{ panes, elems *obs.Counter }

func (s *counterSink) Emit(res WindowResult) error {
	s.panes.Inc()
	s.elems.Add(int64(res.Elems))
	return nil
}

func (s *counterSink) Close() error { return nil }

// Tee fans each pane out to every sink in order, stopping on the first
// error; Close closes all of them, returning the first error.
func Tee(sinks ...Sink) Sink { return teeSink(sinks) }

type teeSink []Sink

func (t teeSink) Emit(res WindowResult) error {
	for _, s := range t {
		if err := s.Emit(res); err != nil {
			return err
		}
	}
	return nil
}

func (t teeSink) Close() error {
	var first error
	for _, s := range t {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
