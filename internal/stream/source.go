package stream

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"

	"github.com/scipioneer/smart/internal/sim"
)

// SliceSource replays a fixed event slice — the workhorse of tests.
func SliceSource(events []Event) Source {
	return SourceFunc(func(ctx context.Context, push func(Event) error) error {
		for _, ev := range events {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := push(ev); err != nil {
				return err
			}
		}
		return nil
	})
}

// GeneratorConfig configures the synthetic step-stream source.
type GeneratorConfig struct {
	// Steps is the number of events (one per simulated time-step).
	Steps int
	// StepElems, Mean, StdDev, Seed, Dims parameterize the underlying
	// sim.Emulator.
	StepElems    int
	Mean, StdDev float64
	Seed         uint64
	Dims         int
	// StartStep offsets the first event's time — the resume path of
	// standing queries skips this many already-consumed steps while still
	// advancing the emulator's generator state through them, so replayed
	// and original streams agree element for element.
	StartStep int
}

// Generator returns a synthetic in-situ stream: one event per emulator
// time-step, Time = step index, Data = a private copy of the step's
// elements. Fully deterministic for a given config.
func Generator(cfg GeneratorConfig) Source {
	return SourceFunc(func(ctx context.Context, push func(Event) error) error {
		if cfg.Steps <= 0 {
			return fmt.Errorf("stream: generator steps %d", cfg.Steps)
		}
		em, err := sim.NewEmulator(sim.EmulatorConfig{
			StepElems: cfg.StepElems, Mean: cfg.Mean, StdDev: cfg.StdDev,
			Seed: cfg.Seed, Dims: cfg.Dims,
		})
		if err != nil {
			return err
		}
		for step := 0; step < cfg.StartStep+cfg.Steps; step++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := em.Step(); err != nil {
				return err
			}
			if step < cfg.StartStep {
				continue // align generator state without replaying
			}
			if err := push(Event{Time: int64(step), Data: append([]float64(nil), em.Data()...)}); err != nil {
				return err
			}
		}
		return nil
	})
}

// replayRecord is the NDJSON replay line: {"t":3,"data":[...]}.
type replayRecord struct {
	T    int64     `json:"t"`
	Data []float64 `json:"data"`
}

// Replay reads an NDJSON event log — one {"t":...,"data":[...]} object per
// line, blank lines skipped — and pushes the events in file order, which
// may be out of event-time order: replay is how the late-data paths are
// exercised deterministically.
func Replay(r io.Reader) Source {
	return SourceFunc(func(ctx context.Context, push func(Event) error) error {
		sc := bufio.NewScanner(r)
		sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
		line := 0
		for sc.Scan() {
			line++
			if err := ctx.Err(); err != nil {
				return err
			}
			raw := sc.Bytes()
			if len(raw) == 0 {
				continue
			}
			var rec replayRecord
			if err := json.Unmarshal(raw, &rec); err != nil {
				return fmt.Errorf("stream: replay line %d: %w", line, err)
			}
			if err := push(Event{Time: rec.T, Data: rec.Data}); err != nil {
				return err
			}
		}
		if err := sc.Err(); err != nil {
			return fmt.Errorf("stream: replay: %w", err)
		}
		return nil
	})
}
