package stream

// Trigger is a stage's trigger policy. The zero value is the default
// policy: fire each window exactly once, when the watermark passes its end
// (the final pane). The optional knobs add early panes on top — the final
// on-watermark pane always fires.
type Trigger struct {
	// EveryCount, when positive, fires an early pane each time a window
	// has buffered this many more elements since its previous pane. Early
	// panes run the combiner over the elements seen so far and emit
	// WindowResults with Final=false.
	EveryCount int
	// EarlyEmits forwards the runtime's per-key early emissions — the
	// paper's Triggered reduction objects — from every window combine to
	// the pipeline's OnEmit callback. It requires a combiner that exposes
	// the scheduler's SubscribeEarlyEmits (SchedCombiner does).
	EarlyEmits bool
}

// LatePolicy says what a stage does with an event that arrives after the
// watermark has closed every window that would contain it.
type LatePolicy int

const (
	// LateDrop discards late events (counted in
	// smart_stream_events_late_total{policy="drop"}).
	LateDrop LatePolicy = iota
	// LateSideOutput routes late events to the pipeline's SideOutput
	// callback instead of silently dropping them.
	LateSideOutput
)

func (p LatePolicy) String() string {
	if p == LateSideOutput {
		return "side_output"
	}
	return "drop"
}
