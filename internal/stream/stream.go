// Package stream is the streaming operator layer over the Smart runtime:
// continuous windowed queries compiled down to batch Scheduler runs.
//
// A pipeline is a typed chain
//
//	Source → Map → Window → Combine → Sink
//
// in the Dataflow/Akidau style: event-time windows (tumbling, sliding,
// session, global), per-source watermarks merged by minimum, trigger
// policies (on-watermark final panes, count-based early panes, forwarded
// per-key early emissions), and a late-data policy (drop or side-output).
// The paper's early-emission optimization (core.Triggered) is the special
// case the trigger layer generalizes.
//
// The compiler is deliberately thin: every fired window becomes one batch
// reduction over exactly that window's elements, lowered onto an existing
// core.Scheduler through the re-entrant RunWindowContext entry point. The
// sharded stores, execution engines, and codec'd global combination are
// reused unchanged, so a window's output is byte-identical to a one-shot
// batch run over the same elements — the property the oracle tests pin.
//
// Stages chain: a fired window's result can be remapped into an event for a
// downstream Window/Combine stage (ThenMap), which is how the two-stage
// grid→histogram pipeline is expressed without bespoke glue.
package stream

import "context"

// Event is one timestamped element batch on a stream. Time is the event
// time in abstract ticks — for in-situ analytics, the simulation step
// index. Data is the batch payload (one simulation step's elements, one
// replayed record, ...).
type Event struct {
	Time int64
	Data []float64
}

// Source feeds events into a pipeline. Feed pushes events until the stream
// ends (return nil), the context is cancelled, or push returns an error
// (return it unwrapped so the pipeline can classify it).
//
// The pipeline buffers Data by reference until the covering windows fire: a
// source that reuses its output buffer between pushes (an in-situ
// simulation handing out its live field) must push a copy.
//
// Event times should be non-decreasing up to the pipeline's allowed
// lateness; events older than the watermark are handled by the stage's
// late-data policy.
type Source interface {
	Feed(ctx context.Context, push func(Event) error) error
}

// SourceFunc adapts a function to the Source interface.
type SourceFunc func(ctx context.Context, push func(Event) error) error

// Feed implements Source.
func (f SourceFunc) Feed(ctx context.Context, push func(Event) error) error {
	return f(ctx, push)
}
