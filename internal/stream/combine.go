package stream

import (
	"context"
	"fmt"

	"github.com/scipioneer/smart/internal/chunk"
	"github.com/scipioneer/smart/internal/core"
	"github.com/scipioneer/smart/internal/obs"
)

// Combiner lowers one fired window onto a batch reduction: Combine runs
// over exactly the window's elements (in the pipeline's canonical event
// order) and returns the sink-visible value. Calls arrive one at a time
// from the pipeline's driving goroutine.
type Combiner interface {
	Combine(ctx context.Context, w Window, elems []float64) (any, error)
}

// CombinerFunc adapts a function to the Combiner interface.
type CombinerFunc func(ctx context.Context, w Window, elems []float64) (any, error)

// Combine implements Combiner.
func (f CombinerFunc) Combine(ctx context.Context, w Window, elems []float64) (any, error) {
	return f(ctx, w, elems)
}

// emitSubscriber is the optional capability of combiners that can forward
// the runtime's per-key early emissions (Trigger.EarlyEmits).
type emitSubscriber interface {
	subscribeEmits(fn func(key int, value any))
}

// traceSettable is the optional capability of combiners whose phase spans
// can be parented under a distributed trace (standing smartd jobs).
type traceSettable interface {
	SetTraceContext(tc obs.TraceContext)
}

// SchedOptions configures a SchedCombiner — the bridge from a registered
// reduction app to the streaming layer.
type SchedOptions[Out any] struct {
	// Build constructs the analytics application for a window of n
	// elements. Apps whose key space is independent of n (histogram,
	// k-means, grid aggregation) ignore n; the window family (moving
	// average and friends) sizes its key space by it.
	Build func(n int) (core.Analytics[float64, Out], error)
	// Args are the scheduler arguments every window's run shares.
	Args core.SchedArgs
	// PerSize marks Build as n-dependent: the scheduler is rebuilt
	// whenever the fired window's element count differs from the previous
	// one. Fixed-size tumbling windows still recycle every fire; only a
	// size change pays the rebuild.
	PerSize bool
	// Multi selects the gen_keys (Run2) path for MultiKeyer apps.
	Multi bool
	// OutLen gives the converted-output length for a window of n elements;
	// nil or a zero return skips conversion (Result then typically reads
	// the combination map).
	OutLen func(n int) int
	// Result extracts the sink-visible value after a run. nil defaults to
	// a copy of the converted output slice.
	Result func(s *core.Scheduler[float64, Out], out []Out) (any, error)
}

// SchedCombiner compiles windows onto a core.Scheduler. One scheduler
// instance is kept warm across fires and re-entered through
// RunWindowContext, so the combination map's buckets, the sharded store's
// shards or arena slabs, and the engine survive from window to window; the
// output of every fire is byte-identical to a fresh scheduler run over the
// same elements.
type SchedCombiner[Out any] struct {
	opts    SchedOptions[Out]
	sched   *core.Scheduler[float64, Out]
	schedN  int
	out     []Out
	emitFns []func(key int, value any)
	trace   obs.TraceContext
}

// NewSchedCombiner validates the options and returns a combiner; the
// scheduler itself is built lazily on the first fired window.
func NewSchedCombiner[Out any](opts SchedOptions[Out]) (*SchedCombiner[Out], error) {
	if opts.Build == nil {
		return nil, fmt.Errorf("stream: SchedOptions.Build is required")
	}
	// Surface argument errors at pipeline-build time, not first fire.
	if _, err := core.NewScheduler[float64, Out](nullApp[Out]{}, opts.Args); err != nil {
		return nil, err
	}
	return &SchedCombiner[Out]{opts: opts}, nil
}

// nullApp is a do-nothing analytics used to validate SchedArgs eagerly.
type nullApp[Out any] struct{}

func (nullApp[Out]) NewRedObj() core.RedObj { return &nullObj{} }
func (nullApp[Out]) GenKey(c chunk.Chunk, data []float64, com core.CombMap) int {
	return 0
}
func (nullApp[Out]) Accumulate(c chunk.Chunk, data []float64, obj core.RedObj) {}
func (nullApp[Out]) Merge(src, dst core.RedObj)                                {}

type nullObj struct{}

func (o *nullObj) Clone() core.RedObj             { return &nullObj{} }
func (o *nullObj) MarshalBinary() ([]byte, error) { return nil, nil }
func (o *nullObj) UnmarshalBinary(b []byte) error { return nil }

// Combine implements Combiner: recycle (or rebuild, on a size change of a
// PerSize app) and run one batch reduction over the window's elements.
func (c *SchedCombiner[Out]) Combine(ctx context.Context, w Window, elems []float64) (any, error) {
	n := len(elems)
	if c.sched == nil || (c.opts.PerSize && n != c.schedN) {
		app, err := c.opts.Build(n)
		if err != nil {
			return nil, err
		}
		s, err := core.NewScheduler[float64, Out](app, c.opts.Args)
		if err != nil {
			return nil, err
		}
		for _, fn := range c.emitFns {
			s.SubscribeEarlyEmits(wrapEmit[Out](fn))
		}
		if c.trace.Valid() {
			s.SetTraceContext(c.trace)
		}
		c.sched, c.schedN = s, n
	}
	outLen := 0
	if c.opts.OutLen != nil {
		outLen = c.opts.OutLen(n)
	}
	if cap(c.out) < outLen {
		c.out = make([]Out, outLen)
	} else {
		c.out = c.out[:outLen]
		clear(c.out)
	}
	var err error
	if c.opts.Multi {
		err = c.sched.RunWindow2Context(ctx, elems, c.out)
	} else {
		err = c.sched.RunWindowContext(ctx, elems, c.out)
	}
	if err != nil {
		return nil, err
	}
	if c.opts.Result != nil {
		return c.opts.Result(c.sched, c.out)
	}
	return append([]Out(nil), c.out...), nil
}

// wrapEmit erases the scheduler's typed early-emit callback.
func wrapEmit[Out any](fn func(key int, value any)) func(key int, value Out) {
	return func(key int, value Out) { fn(key, value) }
}

// subscribeEmits implements the pipeline's early-emit capability.
func (c *SchedCombiner[Out]) subscribeEmits(fn func(key int, value any)) {
	c.emitFns = append(c.emitFns, fn)
	if c.sched != nil {
		c.sched.SubscribeEarlyEmits(wrapEmit[Out](fn))
	}
}

// SetTraceContext parents every window run's phase spans under the given
// trace (applies to the current scheduler and any rebuilt later).
func (c *SchedCombiner[Out]) SetTraceContext(tc obs.TraceContext) {
	c.trace = tc
	if c.sched != nil {
		c.sched.SetTraceContext(tc)
	}
}

// Stats exposes the live counters of the most recent window's run (nil
// before the first fire). See core.Scheduler.Stats for the concurrency
// caveat.
func (c *SchedCombiner[Out]) Stats() *core.Stats {
	if c.sched == nil {
		return nil
	}
	return c.sched.Stats()
}
