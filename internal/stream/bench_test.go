package stream

import (
	"context"
	"testing"
	"time"

	"github.com/scipioneer/smart/internal/analytics"
	"github.com/scipioneer/smart/internal/core"
)

// Benchmark shape: every op is one fired tumbling window of
// benchStepsPerWin steps x benchElemsPerStep elements, driven end to end
// through the pipeline (ingest, watermark advance, fire, combine, sink).
// Reseed keeps one warm SchedCombiner across windows (the production path:
// the combination map is recycled in place); Rebuild constructs a fresh
// scheduler per window — the allocation delta between the two is the price
// RunWindowContext exists to avoid. Ingest swaps the scheduler for a
// trivial counting combiner and measures the operator layer's own floor.
const (
	benchStepsPerWin  = 4
	benchElemsPerStep = 1024
)

var benchArgs = core.SchedArgs{NumThreads: 2, ChunkSize: 1, CombineShards: 4}

func benchSource(nWindows int) Source {
	data := make([]float64, benchElemsPerStep)
	for i := range data {
		data[i] = float64((i*37)%200)/10 - 5
	}
	return SourceFunc(func(ctx context.Context, push func(Event) error) error {
		for t := 0; t < nWindows*benchStepsPerWin; t++ {
			if err := push(Event{Time: int64(t), Data: data}); err != nil {
				return err
			}
		}
		return nil
	})
}

func benchWindows(b *testing.B, comb Combiner) {
	b.ReportAllocs()
	fired := 0
	var latency time.Duration
	err := New().
		From(benchSource(b.N)).
		Window(Tumbling(benchStepsPerWin)).
		Combine(comb).
		To(CallbackSink(func(r WindowResult) error {
			fired++
			latency += r.Latency
			return nil
		})).
		Run(context.Background())
	if err != nil {
		b.Fatal(err)
	}
	if fired != b.N {
		b.Fatalf("fired %d windows, want %d", fired, b.N)
	}
	b.ReportMetric(float64(fired)/b.Elapsed().Seconds(), "windows/sec")
	b.ReportMetric(float64(latency.Nanoseconds())/float64(fired), "latencyns/win")
}

func BenchmarkStreamWindowReseed(b *testing.B) {
	comb, err := NewSchedCombiner[int64](SchedOptions[int64]{
		Build: func(int) (core.Analytics[float64, int64], error) {
			return analytics.NewHistogram(-5, 5, 32), nil
		},
		Args: benchArgs,
	})
	if err != nil {
		b.Fatal(err)
	}
	benchWindows(b, comb)
}

func BenchmarkStreamWindowRebuild(b *testing.B) {
	benchWindows(b, CombinerFunc(func(ctx context.Context, w Window, elems []float64) (any, error) {
		s, err := core.NewScheduler[float64, int64](analytics.NewHistogram(-5, 5, 32), benchArgs)
		if err != nil {
			return nil, err
		}
		if err := s.RunContext(ctx, elems, nil); err != nil {
			return nil, err
		}
		return nil, nil
	}))
}

func BenchmarkStreamWindowIngest(b *testing.B) {
	benchWindows(b, CombinerFunc(func(_ context.Context, _ Window, elems []float64) (any, error) {
		return len(elems), nil
	}))
}
