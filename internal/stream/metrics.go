package stream

import "github.com/scipioneer/smart/internal/obs"

// metrics is the smart_stream_* instrument block one pipeline reports into.
// Handles are resolved once per Run against the pipeline's observer
// registry (instrument lookups are interned by name, so concurrent
// pipelines share the process-wide series).
type metrics struct {
	opened   *obs.Counter   // windows opened (first event buffered)
	fired    *obs.Counter   // final on-watermark panes fired
	merged   *obs.Counter   // session windows fused into a neighbor
	early    *obs.Counter   // early (count-trigger) panes fired
	lateDrop *obs.Counter   // late events dropped
	lateSide *obs.Counter   // late events routed to the side output
	wmLag    *obs.Gauge     // max event time seen minus current watermark
	latency  *obs.Histogram // per-window firing latency (combine + handoff)
}

func newMetrics(reg *obs.Registry) *metrics {
	return &metrics{
		opened:   reg.Counter("smart_stream_windows_opened_total"),
		fired:    reg.Counter("smart_stream_windows_fired_total"),
		merged:   reg.Counter("smart_stream_windows_merged_total"),
		early:    reg.Counter("smart_stream_panes_early_total"),
		lateDrop: reg.Counter(`smart_stream_events_late_total{policy="drop"}`),
		lateSide: reg.Counter(`smart_stream_events_late_total{policy="side_output"}`),
		wmLag:    reg.Gauge("smart_stream_watermark_lag"),
		latency:  reg.Histogram("smart_stream_window_seconds", obs.DurationBuckets),
	}
}
