package stream

import (
	"fmt"
	"math"
)

// Window is one event-time interval [Start, End) in ticks.
type Window struct {
	Start int64 `json:"start"`
	End   int64 `json:"end"`
}

// span returns the window's width.
func (w Window) span() int64 { return w.End - w.Start }

// overlaps reports whether two half-open intervals intersect.
func (w Window) overlaps(o Window) bool { return w.Start < o.End && o.Start < w.End }

// WindowKind enumerates the supported window families.
type WindowKind int

const (
	// KindTumbling partitions time into fixed, non-overlapping intervals.
	KindTumbling WindowKind = iota
	// KindSliding assigns each tick to every window of width Size whose
	// start is a multiple of Slide.
	KindSliding
	// KindSession grows data-driven windows: an event opens [t, t+Gap),
	// and overlapping sessions merge.
	KindSession
	// KindGlobal is one all-time window that fires at end of stream.
	KindGlobal
)

func (k WindowKind) String() string {
	switch k {
	case KindTumbling:
		return "tumbling"
	case KindSliding:
		return "sliding"
	case KindSession:
		return "session"
	case KindGlobal:
		return "global"
	}
	return fmt.Sprintf("WindowKind(%d)", int(k))
}

// WindowSpec describes how a stage assigns events to event-time windows.
// Construct with Tumbling, Sliding, Session, or Global.
type WindowSpec struct {
	Kind  WindowKind
	Size  int64 // tumbling/sliding width
	Slide int64 // sliding step
	Gap   int64 // session inactivity gap
}

// Tumbling returns non-overlapping windows of the given width.
func Tumbling(size int64) WindowSpec { return WindowSpec{Kind: KindTumbling, Size: size} }

// Sliding returns overlapping windows of the given width, one starting
// every slide ticks.
func Sliding(size, slide int64) WindowSpec {
	return WindowSpec{Kind: KindSliding, Size: size, Slide: slide}
}

// Session returns data-driven windows separated by at least gap ticks of
// inactivity.
func Session(gap int64) WindowSpec { return WindowSpec{Kind: KindSession, Gap: gap} }

// Global returns the single all-time window, fired at end of stream — the
// batch special case.
func Global() WindowSpec { return WindowSpec{Kind: KindGlobal} }

func (ws WindowSpec) validate() error {
	switch ws.Kind {
	case KindTumbling:
		if ws.Size <= 0 {
			return fmt.Errorf("stream: tumbling window size %d", ws.Size)
		}
	case KindSliding:
		if ws.Size <= 0 || ws.Slide <= 0 {
			return fmt.Errorf("stream: sliding window size %d slide %d", ws.Size, ws.Slide)
		}
		if ws.Slide > ws.Size {
			return fmt.Errorf("stream: sliding slide %d exceeds size %d (gaps would drop events)", ws.Slide, ws.Size)
		}
	case KindSession:
		if ws.Gap <= 0 {
			return fmt.Errorf("stream: session gap %d", ws.Gap)
		}
	case KindGlobal:
	default:
		return fmt.Errorf("stream: unknown window kind %d", int(ws.Kind))
	}
	return nil
}

// floorDiv is integer division rounding toward negative infinity, so window
// arithmetic stays correct for negative ticks.
func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

// Assign appends to dst every window of the spec that contains tick t, in
// ascending start order. Session windows return the seed interval
// [t, t+Gap) — merging is the windower's job. Exported for the
// window-assignment fuzzer and the oracle tests.
func (ws WindowSpec) Assign(t int64, dst []Window) []Window {
	switch ws.Kind {
	case KindTumbling:
		start := floorDiv(t, ws.Size) * ws.Size
		return append(dst, Window{Start: start, End: start + ws.Size})
	case KindSliding:
		// Starts are the multiples of Slide in (t-Size, t].
		first := (floorDiv(t-ws.Size, ws.Slide) + 1) * ws.Slide
		for s := first; s <= t; s += ws.Slide {
			dst = append(dst, Window{Start: s, End: s + ws.Size})
		}
		return dst
	case KindSession:
		return append(dst, Window{Start: t, End: t + ws.Gap})
	case KindGlobal:
		return append(dst, globalWindow)
	}
	return dst
}

// globalWindow is the single window of KindGlobal; its End is MaxInt64 so
// it only ever fires at the end-of-stream watermark.
var globalWindow = Window{Start: math.MinInt64, End: math.MaxInt64}

// cascadeBound returns how far behind a stage's watermark its downstream
// stage's watermark may safely advance: a future fired window has
// End > wm, so a result remapped anywhere inside its window has
// Time > wm - span. Session and global windows are unbounded — downstream
// only advances at end of stream.
func (ws WindowSpec) cascadeBound() (int64, bool) {
	switch ws.Kind {
	case KindTumbling, KindSliding:
		return ws.Size, true
	}
	return 0, false
}
