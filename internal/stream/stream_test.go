package stream

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"

	"github.com/scipioneer/smart/internal/analytics"
	"github.com/scipioneer/smart/internal/core"
)

// stepEvents builds deterministic per-step events: one event per time in
// times, each with elemsPer elements drawn from a fixed integer formula.
func stepEvents(times []int64, elemsPer int) []Event {
	evs := make([]Event, len(times))
	for i, t := range times {
		data := make([]float64, elemsPer)
		for j := range data {
			data[j] = float64((int(t)*31+j*7)%101)/10 - 5
		}
		evs[i] = Event{Time: t, Data: data}
	}
	return evs
}

func schedMatrix() []core.SchedArgs {
	var args []core.SchedArgs
	for _, eng := range []string{core.EngineStatic, core.EngineStealing} {
		for _, impl := range []string{core.MapGo, core.MapArena} {
			args = append(args, core.SchedArgs{
				NumThreads: 2, ChunkSize: 1, NumIters: 1, CombineShards: 4,
				Engine: eng, MapImpl: impl,
			})
		}
	}
	return args
}

// oracleVal is what the oracle combiners return per pane: the encoded
// combination map (the byte-identity evidence) plus the converted output.
type oracleVal struct {
	enc []byte
	out any
}

// expectedWindows recomputes, outside the streaming machinery, which
// windows the events form and each window's elements in canonical
// (time, ingest-sequence) order. Events are assumed on time (no lateness).
func expectedWindows(spec WindowSpec, evs []Event) map[Window][]float64 {
	type slot struct {
		t   int64
		seq int
		d   []float64
	}
	buf := map[Window][]slot{}
	if spec.Kind == KindSession {
		// Merge seed intervals into sessions.
		sorted := append([]Event(nil), evs...)
		sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Time < sorted[j].Time })
		var sessions []Window
		for _, ev := range sorted {
			seed := Window{Start: ev.Time, End: ev.Time + spec.Gap}
			if n := len(sessions); n > 0 && sessions[n-1].overlaps(seed) {
				if seed.End > sessions[n-1].End {
					sessions[n-1].End = seed.End
				}
			} else {
				sessions = append(sessions, seed)
			}
		}
		for seq, ev := range evs {
			for _, s := range sessions {
				if ev.Time >= s.Start && ev.Time < s.End {
					buf[s] = append(buf[s], slot{ev.Time, seq, ev.Data})
				}
			}
		}
	} else {
		for seq, ev := range evs {
			for _, w := range spec.Assign(ev.Time, nil) {
				buf[w] = append(buf[w], slot{ev.Time, seq, ev.Data})
			}
		}
	}
	out := map[Window][]float64{}
	for w, slots := range buf {
		sort.SliceStable(slots, func(i, j int) bool {
			if slots[i].t != slots[j].t {
				return slots[i].t < slots[j].t
			}
			return slots[i].seq < slots[j].seq
		})
		var elems []float64
		for _, s := range slots {
			elems = append(elems, s.d...)
		}
		out[w] = elems
	}
	return out
}

// runOracle streams evs through a one-stage pipeline and checks every fired
// window against a brute-force batch recomputation: same window set, and
// per window a byte-identical combination map plus equal converted output
// from a fresh scheduler over exactly that window's elements.
func runOracle[Out any](t *testing.T, opts SchedOptions[Out], spec WindowSpec, evs []Event) {
	t.Helper()
	opts.Result = func(s *core.Scheduler[float64, Out], out []Out) (any, error) {
		enc, err := s.EncodeCombinationMap()
		if err != nil {
			return nil, err
		}
		return oracleVal{enc: enc, out: append([]Out(nil), out...)}, nil
	}
	comb, err := NewSchedCombiner(opts)
	if err != nil {
		t.Fatal(err)
	}
	var got []WindowResult
	err = New().
		From(SliceSource(evs)).
		Window(spec).
		Combine(comb).
		To(CallbackSink(func(res WindowResult) error { got = append(got, res); return nil })).
		Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	want := expectedWindows(spec, evs)
	if len(got) != len(want) {
		t.Fatalf("fired %d windows, want %d", len(got), len(want))
	}
	seen := map[Window]bool{}
	for _, res := range got {
		if !res.Final {
			t.Fatalf("window %+v fired a non-final pane without a trigger", res.Window)
		}
		if seen[res.Window] {
			t.Fatalf("window %+v fired twice", res.Window)
		}
		seen[res.Window] = true
		elems, ok := want[res.Window]
		if !ok {
			t.Fatalf("unexpected window %+v", res.Window)
		}
		if res.Elems != len(elems) {
			t.Fatalf("window %+v combined %d elements, want %d", res.Window, res.Elems, len(elems))
		}

		// Brute-force batch run over exactly this window's elements.
		app, err := opts.Build(len(elems))
		if err != nil {
			t.Fatal(err)
		}
		fresh := core.MustNewScheduler[float64, Out](app, opts.Args)
		outLen := 0
		if opts.OutLen != nil {
			outLen = opts.OutLen(len(elems))
		}
		out := make([]Out, outLen)
		if opts.Multi {
			err = fresh.Run2(elems, out)
		} else {
			err = fresh.Run(elems, out)
		}
		if err != nil {
			t.Fatal(err)
		}
		enc, err := fresh.EncodeCombinationMap()
		if err != nil {
			t.Fatal(err)
		}
		val := res.Value.(oracleVal)
		if !bytes.Equal(val.enc, enc) {
			t.Errorf("window %+v: streamed combination map differs from batch run", res.Window)
		}
		if !reflect.DeepEqual(val.out, out) {
			t.Errorf("window %+v: streamed output differs from batch run", res.Window)
		}
	}
}

func histOpts(args core.SchedArgs) SchedOptions[int64] {
	return SchedOptions[int64]{
		Build: func(int) (core.Analytics[float64, int64], error) {
			return analytics.NewHistogram(-5, 6, 11), nil
		},
		Args:   args,
		OutLen: func(int) int { return 11 },
	}
}

func momentsOpts(args core.SchedArgs) SchedOptions[float64] {
	const gs = 16
	return SchedOptions[float64]{
		Build: func(int) (core.Analytics[float64, float64], error) {
			return analytics.NewMoments(gs, 0), nil
		},
		Args:   args,
		OutLen: func(n int) int { return (n + gs - 1) / gs },
	}
}

func movingAvgOpts(args core.SchedArgs) SchedOptions[float64] {
	return SchedOptions[float64]{
		Build: func(n int) (core.Analytics[float64, float64], error) {
			return analytics.NewMovingAverage(5, n, 0, true), nil
		},
		Args:    args,
		PerSize: true,
		Multi:   true,
		OutLen:  func(n int) int { return n },
	}
}

// TestOracle pins the acceptance criterion: every fired window, under every
// window kind, app, engine, and map implementation, is byte-identical to a
// one-shot batch Scheduler run over exactly that window's elements.
func TestOracle(t *testing.T) {
	inOrder := []int64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}
	gappy := []int64{0, 1, 2, 3, 10, 11, 20, 27, 28, 29}
	specs := []struct {
		name  string
		spec  WindowSpec
		times []int64
	}{
		{"tumbling", Tumbling(4), inOrder},
		{"sliding", Sliding(4, 2), inOrder},
		{"session", Session(3), gappy},
	}
	for _, args := range schedMatrix() {
		for _, sc := range specs {
			evs := stepEvents(sc.times, 64)
			label := fmt.Sprintf("%s/%s/%s", args.Engine, args.MapImpl, sc.name)
			t.Run("histogram/"+label, func(t *testing.T) { runOracle(t, histOpts(args), sc.spec, evs) })
			if args.Engine == core.EngineStealing {
				// Steals regroup floating-point arithmetic, so two
				// independent stealing runs over the same elements are only
				// byte-identical when the arithmetic is exact (the engine's
				// documented contract). Histogram's integer counts qualify;
				// the FP apps are pinned on the static engine.
				continue
			}
			t.Run("moments/"+label, func(t *testing.T) { runOracle(t, momentsOpts(args), sc.spec, evs) })
			t.Run("movingavg/"+label, func(t *testing.T) { runOracle(t, movingAvgOpts(args), sc.spec, evs) })
		}
	}
}

// TestGlobalWindow: the batch special case — one window, fired at end of
// stream.
func TestGlobalWindow(t *testing.T) {
	evs := stepEvents([]int64{0, 1, 2}, 32)
	var got []WindowResult
	comb := CombinerFunc(func(_ context.Context, w Window, elems []float64) (any, error) {
		return len(elems), nil
	})
	err := New().
		From(SliceSource(evs)).
		Window(Global()).
		Combine(comb).
		To(CallbackSink(func(res WindowResult) error { got = append(got, res); return nil })).
		Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Value.(int) != 96 || !got[0].Final {
		t.Fatalf("global window results %+v", got)
	}
}

// TestTwoStagePipeline chains grid aggregation into a histogram through
// ThenMap — the shape the serve registry's pipeline-grid job compiles to —
// and checks the final histogram equals a hand-computed one.
func TestTwoStagePipeline(t *testing.T) {
	const elems, gs = 64, 16
	evs := stepEvents([]int64{0, 1, 2, 3}, elems)
	gridComb, err := NewSchedCombiner(SchedOptions[float64]{
		Build: func(int) (core.Analytics[float64, float64], error) {
			return analytics.NewGridAgg(gs, 0), nil
		},
		Args:   core.SchedArgs{NumThreads: 1, ChunkSize: 1, NumIters: 1},
		OutLen: func(n int) int { return (n + gs - 1) / gs },
	})
	if err != nil {
		t.Fatal(err)
	}
	histComb := CombinerFunc(func(_ context.Context, w Window, elems []float64) (any, error) {
		lo, hi := elems[0], elems[0]
		for _, v := range elems {
			lo, hi = min(lo, v), max(hi, v)
		}
		if hi <= lo {
			hi = lo + 1
		}
		s := core.MustNewScheduler[float64, int64](analytics.NewHistogram(lo, hi, 8),
			core.SchedArgs{NumThreads: 1, ChunkSize: 1, NumIters: 1})
		out := make([]int64, 8)
		if err := s.Run(elems, out); err != nil {
			return nil, err
		}
		return out, nil
	})
	var got []WindowResult
	err = New().
		From(SliceSource(evs)).
		Window(Tumbling(1)).
		Combine(gridComb).
		ThenMap(func(res WindowResult) (Event, bool) {
			return Event{Time: res.Window.Start, Data: res.Value.([]float64)}, true
		}).
		Window(Global()).
		Combine(histComb).
		To(CallbackSink(func(res WindowResult) error { got = append(got, res); return nil })).
		Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("fired %d final windows, want 1", len(got))
	}
	// 4 steps × 4 cells of grid means feed the global histogram.
	if got[0].Elems != 16 {
		t.Fatalf("second stage combined %d elements, want 16", got[0].Elems)
	}
	var total int64
	for _, n := range got[0].Value.([]int64) {
		total += n
	}
	if total != 16 {
		t.Fatalf("histogram counted %d means, want 16", total)
	}
}

// TestCountTrigger: early panes fire every N elements, then the final
// on-watermark pane carries the complete window.
func TestCountTrigger(t *testing.T) {
	evs := stepEvents([]int64{0, 1, 2, 3}, 32) // one tumbling window of 128 elems
	var panes []WindowResult
	comb := CombinerFunc(func(_ context.Context, w Window, elems []float64) (any, error) {
		return len(elems), nil
	})
	err := New().
		From(SliceSource(evs)).
		Window(Tumbling(4)).
		Trigger(Trigger{EveryCount: 50}).
		Combine(comb).
		To(CallbackSink(func(res WindowResult) error { panes = append(panes, res); return nil })).
		Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// 128 elements cross the 50-element threshold after 64 and 128 buffered.
	if len(panes) != 3 {
		t.Fatalf("fired %d panes, want 3 (2 early + final): %+v", len(panes), panes)
	}
	if panes[0].Final || panes[0].Value.(int) != 64 || panes[0].Pane != 0 {
		t.Fatalf("first early pane %+v", panes[0])
	}
	if panes[1].Final || panes[1].Value.(int) != 128 || panes[1].Pane != 1 {
		t.Fatalf("second early pane %+v", panes[1])
	}
	last := panes[2]
	if !last.Final || last.Value.(int) != 128 || last.Pane != 2 {
		t.Fatalf("final pane %+v", last)
	}
}

// TestEarlyEmitForwarding: the runtime's per-key triggered emissions flow
// through the combiner to the pipeline's OnEmit callback, tagged with the
// firing window.
func TestEarlyEmitForwarding(t *testing.T) {
	evs := stepEvents([]int64{0, 1}, 64)
	comb, err := NewSchedCombiner(movingAvgOpts(core.SchedArgs{NumThreads: 1, ChunkSize: 1, NumIters: 1}))
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	emits := map[Window]int{}
	err = New().
		From(SliceSource(evs)).
		Window(Tumbling(1)).
		Trigger(Trigger{EarlyEmits: true}).
		Combine(comb).
		OnEmit(func(w Window, key int, value any) {
			mu.Lock()
			emits[w]++
			mu.Unlock()
		}).
		To(CallbackSink(func(WindowResult) error { return nil })).
		Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(emits) != 2 {
		t.Fatalf("early emissions tagged %d windows, want 2: %v", len(emits), emits)
	}
	for w, n := range emits {
		// The moving average triggers every interior window of the step.
		if n == 0 {
			t.Fatalf("window %+v forwarded no emissions", w)
		}
	}
}

// TestNDJSONSink pins the line format smartd's standing queries emit.
func TestNDJSONSink(t *testing.T) {
	var buf bytes.Buffer
	sink := NDJSONSink(&buf)
	if err := sink.Emit(WindowResult{
		Window: Window{Start: 4, End: 8}, Pane: 1, Final: true,
		Events: 4, Elems: 256, Value: []int64{1, 2},
	}); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatal(err)
	}
	for k, want := range map[string]any{
		"type": "window", "start": 4.0, "end": 8.0, "pane": 1.0,
		"final": true, "events": 4.0, "elems": 256.0,
	} {
		if rec[k] != want {
			t.Fatalf("field %q = %v, want %v (line %s)", k, rec[k], want, buf.String())
		}
	}
}

// TestReplaySource round-trips events through the NDJSON replay format,
// including out-of-order times.
func TestReplaySource(t *testing.T) {
	ndjson := strings.Join([]string{
		`{"t":0,"data":[1,2]}`,
		``,
		`{"t":2,"data":[3]}`,
		`{"t":1,"data":[4]}`,
	}, "\n")
	var got []Event
	err := Replay(strings.NewReader(ndjson)).Feed(context.Background(), func(ev Event) error {
		got = append(got, ev)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []Event{{0, []float64{1, 2}}, {2, []float64{3}}, {1, []float64{4}}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("replayed %+v, want %+v", got, want)
	}
}

// TestGeneratorDeterministicResume: a generator started at step k replays
// exactly the suffix of the full stream — the property standing-query
// resume depends on.
func TestGeneratorDeterministicResume(t *testing.T) {
	collect := func(cfg GeneratorConfig) []Event {
		var evs []Event
		if err := Generator(cfg).Feed(context.Background(), func(ev Event) error {
			evs = append(evs, ev)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return evs
	}
	full := collect(GeneratorConfig{Steps: 6, StepElems: 32, Seed: 7})
	tail := collect(GeneratorConfig{Steps: 3, StepElems: 32, Seed: 7, StartStep: 3})
	if !reflect.DeepEqual(full[3:], tail) {
		t.Fatal("resumed generator diverged from the original stream")
	}
}

// TestBuilderErrors: builder misuse surfaces as one latched error from Run.
func TestBuilderErrors(t *testing.T) {
	sinkOK := CallbackSink(func(WindowResult) error { return nil })
	comb := CombinerFunc(func(_ context.Context, _ Window, _ []float64) (any, error) { return nil, nil })
	cases := map[string]*Pipeline{
		"no source":      New().Window(Tumbling(2)).Combine(comb).To(sinkOK),
		"no stage":       New().From(SliceSource(nil)).To(sinkOK),
		"no sink":        New().From(SliceSource(nil)).Window(Tumbling(2)).Combine(comb),
		"bad window":     New().From(SliceSource(nil)).Window(Tumbling(0)).Combine(comb).To(sinkOK),
		"bad slide":      New().From(SliceSource(nil)).Window(Sliding(2, 3)).Combine(comb).To(sinkOK),
		"dangling stage": New().From(SliceSource(nil)).Window(Tumbling(2)).Combine(comb).Window(Tumbling(4)).Combine(comb).To(sinkOK),
		"early no-sched": New().From(SliceSource(nil)).Window(Tumbling(2)).Trigger(Trigger{EarlyEmits: true}).Combine(comb).To(sinkOK),
		"negative late":  New().From(SliceSource(nil)).Window(Tumbling(2)).Combine(comb).AllowedLateness(-1).To(sinkOK),
		"trigger no win": New().Trigger(Trigger{EveryCount: 5}),
		"combine no win": New().Combine(comb),
		"inner count":    New().From(SliceSource(nil)).Window(Tumbling(2)).Trigger(Trigger{EveryCount: 1}).Combine(comb).ThenMap(func(WindowResult) (Event, bool) { return Event{}, false }).Window(Global()).Combine(comb).To(sinkOK),
	}
	for name, p := range cases {
		if err := p.Run(context.Background()); err == nil {
			t.Errorf("%s: Run succeeded", name)
		}
	}
}
