package core

import (
	"fmt"
	"os"
)

// checkpointMagic guards against restoring a file that is not a Smart
// checkpoint.
var checkpointMagic = []byte("SMARTCK1")

// WriteCheckpoint persists the combination map to a file. For iterative
// analytics whose state lives entirely in the combination map (k-means
// centroids, regression weights), this checkpoints the job: a restored
// scheduler continues exactly where the saved one stopped.
func (s *Scheduler[In, Out]) WriteCheckpoint(path string) error {
	payload, err := encodeMap(s.comMap)
	if err != nil {
		return fmt.Errorf("core: checkpoint encode: %w", err)
	}
	buf := make([]byte, 0, len(checkpointMagic)+len(payload))
	buf = append(buf, checkpointMagic...)
	buf = append(buf, payload...)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return fmt.Errorf("core: checkpoint write: %w", err)
	}
	// Atomic publish: a crash mid-write never leaves a torn checkpoint.
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("core: checkpoint publish: %w", err)
	}
	return nil
}

// ReadCheckpoint replaces the combination map with a previously saved one.
func (s *Scheduler[In, Out]) ReadCheckpoint(path string) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("core: checkpoint read: %w", err)
	}
	if len(buf) < len(checkpointMagic) || string(buf[:len(checkpointMagic)]) != string(checkpointMagic) {
		return fmt.Errorf("core: %s is not a Smart checkpoint", path)
	}
	m, err := decodeMap(buf[len(checkpointMagic):], s.app.NewRedObj)
	if err != nil {
		return fmt.Errorf("core: checkpoint decode: %w", err)
	}
	s.comMap = m
	return nil
}
