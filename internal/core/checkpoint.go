package core

import (
	"fmt"
	"os"
	"path/filepath"

	"github.com/scipioneer/smart/internal/codec"
)

// checkpointMagic guards against restoring a file that is not a Smart
// checkpoint. Version 1 is the raw (uncompressed) format; version 2 carries
// an encoding byte and a codec frame after the magic. Readers accept both,
// so checkpoints written by older builds — and the committed test fixtures —
// restore unchanged.
var (
	checkpointMagic  = []byte("SMARTCK1")
	checkpointMagic2 = []byte("SMARTCK2")
)

// WriteCheckpoint persists the combination map to a file using the encoding
// configured in SchedArgs.CheckpointEncoding (codec.None — the byte-stable
// legacy format — by default). For iterative analytics whose state lives
// entirely in the combination map (k-means centroids, regression weights),
// this checkpoints the job: a restored scheduler continues exactly where the
// saved one stopped.
func (s *Scheduler[In, Out]) WriteCheckpoint(path string) error {
	return s.WriteCheckpointEnc(path, s.args.CheckpointEncoding)
}

// WriteCheckpointEnc is WriteCheckpoint with an explicit payload encoding.
// codec.None writes the legacy SMARTCK1 format bit-for-bit; any other codec
// writes SMARTCK2 with the map compressed into a codec frame — unless the
// image is tiny or incompressible, in which case the writer quietly falls
// back to the raw format (decode cost without byte savings helps nobody).
//
// The publish is crash-safe and safe against concurrent writers to the same
// path: the payload is staged in a uniquely-named temp file in the target
// directory which is fsynced before being renamed over path, and the
// directory entry is synced after the rename. A crash at any point leaves
// either the previous checkpoint or the new one — never a torn or empty
// file posing as a valid checkpoint; concurrent writers each publish a
// complete image, last rename wins. Do not call while a Run is in progress;
// the map is read without synchronization against the reduction workers.
func (s *Scheduler[In, Out]) WriteCheckpointEnc(path string, enc codec.Encoding) error {
	if !enc.Valid() {
		return fmt.Errorf("core: checkpoint encoding: %w 0x%02x", codec.ErrUnknown, byte(enc))
	}
	// The checkpoint image is serialized into a pooled buffer: its lifetime
	// ends when the file write below returns, so the buffer goes straight
	// back to the pool for the next checkpoint or global-combine round.
	bufp, reused := getEncBuf()
	if reused {
		s.met.encBufReuse.Add(1)
	}
	defer putEncBuf(bufp)
	// Encode from the sharded store when it is in sync with the flat map —
	// the common steady state between Runs — and from the flat map otherwise.
	// Both produce identical bytes (canonical ascending-key framing); reading
	// whichever view is current keeps this path strictly read-only, which
	// concurrent checkpoint writers to different paths rely on.
	var raw []byte
	var err error
	if s.storeFresh {
		raw, err = appendStore((*bufp)[:0], s.store)
	} else {
		raw, err = appendMap((*bufp)[:0], s.comMap)
	}
	*bufp = raw
	if err != nil {
		return fmt.Errorf("core: checkpoint encode: %w", err)
	}

	buf := make([]byte, 0, len(checkpointMagic)+len(raw))
	if enc != codec.None && len(raw) >= codec.MinSize {
		framep := codec.GetScratch()
		defer codec.PutScratch(framep)
		frame, err := codec.AppendFrame((*framep)[:0], enc, raw)
		if err != nil {
			return fmt.Errorf("core: checkpoint compress: %w", err)
		}
		*framep = frame
		if len(frame) < len(raw) {
			buf = append(buf, checkpointMagic2...)
			buf = append(buf, frame...)
		}
	}
	if len(buf) == 0 {
		buf = append(buf, checkpointMagic...)
		buf = append(buf, raw...)
	}
	s.met.ckRawBytes.Add(int64(len(raw)))
	s.met.ckEncodedBytes.Add(int64(len(buf) - len(checkpointMagic)))

	// Stage under a unique name so concurrent writers to the same path never
	// share (and mutually truncate) one staging file.
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("core: checkpoint stage: %w", err)
	}
	tmp := f.Name()
	if _, err := f.Write(buf); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("core: checkpoint write: %w", err)
	}
	// The rename only publishes atomically if the staged bytes are durable
	// first; without this fsync a crash can rename an empty or torn file
	// into place.
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("core: checkpoint sync: %w", err)
	}
	// CreateTemp opens mode 0600; published checkpoints keep the legacy
	// world-readable mode.
	if err := f.Chmod(0o644); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("core: checkpoint chmod: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("core: checkpoint close: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("core: checkpoint publish: %w", err)
	}
	// Sync the directory so the rename itself survives a crash. Some
	// platforms (and some filesystems) refuse to fsync a directory; the
	// rename is already atomic there, so this is best-effort.
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
	return nil
}

// ReadCheckpoint replaces the scheduler's accumulated state with a
// previously saved one, accepting both the raw SMARTCK1 format and the
// encoded SMARTCK2 format regardless of how this scheduler is configured to
// write. Beyond swapping in the decoded combination map it resets the
// per-Run statistics, so counters from a partial run before the restore
// cannot leak into post-restore accounting. Per-thread reduction maps and
// iteration counters need no reset: both are created fresh at the start of
// every Run, so a restore-then-continue sequence cannot double-count (the
// restore-resume k-means test pins this invariant).
func (s *Scheduler[In, Out]) ReadCheckpoint(path string) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("core: checkpoint read: %w", err)
	}
	image, err := checkpointImage(path, buf)
	if err != nil {
		return err
	}
	m, err := decodeMap(image, s.app.NewRedObj)
	if err != nil {
		return fmt.Errorf("core: checkpoint decode: %w", err)
	}
	s.comMap = m
	s.storeFresh = false
	s.stats = Stats{}
	return nil
}

// checkpointImage strips the magic and, for SMARTCK2 files, decodes the
// codec frame, returning the raw serialized map. An unrecognized magic or an
// unknown encoding byte is a clear error, never a panic.
func checkpointImage(path string, buf []byte) ([]byte, error) {
	switch {
	case len(buf) >= len(checkpointMagic) && string(buf[:len(checkpointMagic)]) == string(checkpointMagic):
		return buf[len(checkpointMagic):], nil
	case len(buf) >= len(checkpointMagic2) && string(buf[:len(checkpointMagic2)]) == string(checkpointMagic2):
		raw, err := codec.DecodeFrame(nil, buf[len(checkpointMagic2):])
		if err != nil {
			return nil, fmt.Errorf("core: checkpoint %s: %w", path, err)
		}
		return raw, nil
	default:
		return nil, fmt.Errorf("core: %s is not a Smart checkpoint", path)
	}
}
