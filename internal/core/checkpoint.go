package core

import (
	"fmt"
	"os"
	"path/filepath"
)

// checkpointMagic guards against restoring a file that is not a Smart
// checkpoint.
var checkpointMagic = []byte("SMARTCK1")

// WriteCheckpoint persists the combination map to a file. For iterative
// analytics whose state lives entirely in the combination map (k-means
// centroids, regression weights), this checkpoints the job: a restored
// scheduler continues exactly where the saved one stopped.
//
// The publish is crash-safe: the payload is written to a staging file which
// is fsynced before being renamed over path, and the directory entry is
// synced after the rename. A crash at any point leaves either the previous
// checkpoint or the new one — never a torn or empty file posing as a valid
// checkpoint. Do not call while a Run is in progress; the map is read
// without synchronization against the reduction workers.
func (s *Scheduler[In, Out]) WriteCheckpoint(path string) error {
	// The checkpoint image is serialized into a pooled buffer: its lifetime
	// ends when the file write below returns, so the buffer goes straight
	// back to the pool for the next checkpoint or global-combine round.
	bufp, reused := getEncBuf()
	if reused {
		s.met.encBufReuse.Add(1)
	}
	defer putEncBuf(bufp)
	buf := append(*bufp, checkpointMagic...)
	buf, err := appendMap(buf, s.comMap)
	*bufp = buf
	if err != nil {
		return fmt.Errorf("core: checkpoint encode: %w", err)
	}
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("core: checkpoint write: %w", err)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("core: checkpoint write: %w", err)
	}
	// The rename only publishes atomically if the staged bytes are durable
	// first; without this fsync a crash can rename an empty or torn file
	// into place.
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("core: checkpoint sync: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("core: checkpoint close: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("core: checkpoint publish: %w", err)
	}
	// Sync the directory so the rename itself survives a crash. Some
	// platforms (and some filesystems) refuse to fsync a directory; the
	// rename is already atomic there, so this is best-effort.
	if d, err := os.Open(filepath.Dir(path)); err == nil {
		_ = d.Sync()
		d.Close()
	}
	return nil
}

// ReadCheckpoint replaces the scheduler's accumulated state with a
// previously saved one. Beyond swapping in the decoded combination map it
// resets the per-Run statistics, so counters from a partial run before the
// restore cannot leak into post-restore accounting. Per-thread reduction
// maps and iteration counters need no reset: both are created fresh at the
// start of every Run, so a restore-then-continue sequence cannot
// double-count (the restore-resume k-means test pins this invariant).
func (s *Scheduler[In, Out]) ReadCheckpoint(path string) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("core: checkpoint read: %w", err)
	}
	if len(buf) < len(checkpointMagic) || string(buf[:len(checkpointMagic)]) != string(checkpointMagic) {
		return fmt.Errorf("core: %s is not a Smart checkpoint", path)
	}
	m, err := decodeMap(buf[len(checkpointMagic):], s.app.NewRedObj)
	if err != nil {
		return fmt.Errorf("core: checkpoint decode: %w", err)
	}
	s.comMap = m
	s.shardsFresh = false
	s.stats = Stats{}
	return nil
}
