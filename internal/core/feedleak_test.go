package core

import (
	"errors"
	"testing"

	"github.com/scipioneer/smart/internal/memmodel"
)

// TestDrainFeedReleasesBufferedCells pins the space-sharing leak fix: cells
// still sitting in the circular buffer when the consumer abandons the
// stream hold memmodel allocations, and DrainFeed must free every one.
func TestDrainFeedReleasesBufferedCells(t *testing.T) {
	node := memmodel.NewNode(1 << 20)
	s := MustNewScheduler[int, int64](bucketApp{width: 10}, SchedArgs{
		NumThreads: 1, ChunkSize: 1, Mem: node, BufferCells: 4,
	})
	for i := 0; i < 3; i++ {
		if err := s.Feed(histInput(64)); err != nil {
			t.Fatal(err)
		}
	}
	if node.Used() == 0 {
		t.Fatal("buffered cells carry no memmodel charge; the regression test is vacuous")
	}
	if n := s.DrainFeed(); n != 3 {
		t.Fatalf("DrainFeed dropped %d steps, want 3", n)
	}
	if used := node.Used(); used != 0 {
		t.Fatalf("%d bytes still charged after DrainFeed", used)
	}
	// Draining also closed the feed: the consumer sees end-of-stream, and a
	// second drain finds nothing.
	if err := s.RunShared(nil); !errors.Is(err, ErrFeedClosed) {
		t.Fatalf("RunShared after DrainFeed = %v, want ErrFeedClosed", err)
	}
	if n := s.DrainFeed(); n != 0 {
		t.Fatalf("second DrainFeed dropped %d steps, want 0", n)
	}
}

// TestFeedPutErrorFreesAllocation pins the Put error path: a Feed rejected
// by a closed buffer must free the cell allocation it just charged.
func TestFeedPutErrorFreesAllocation(t *testing.T) {
	node := memmodel.NewNode(1 << 20)
	s := MustNewScheduler[int, int64](bucketApp{width: 10}, SchedArgs{
		NumThreads: 1, ChunkSize: 1, Mem: node, BufferCells: 2,
	})
	s.CloseFeed()
	if err := s.Feed(histInput(64)); err == nil {
		t.Fatal("Feed succeeded on a closed buffer")
	}
	if used := node.Used(); used != 0 {
		t.Fatalf("%d bytes leaked by the rejected Feed", used)
	}
}

// TestRunSharedFailureFreesCell pins the consumer error path: when the run
// over a buffered time-step fails (here: the reduction maps blow the
// virtual memory budget), the cell's allocation and the run's tracker must
// both unwind, leaving the node's charge at zero.
func TestRunSharedFailureFreesCell(t *testing.T) {
	node := memmodel.NewNode(4096)
	s := MustNewScheduler[int, int64](bucketApp{width: 10}, SchedArgs{
		NumThreads: 1, ChunkSize: 1, Mem: node,
		// One reduction object nominally costs more than the node holds, so
		// the first tracker sync inside the run reports OOM.
		RedObjBytes: 1 << 20,
	})
	if err := s.Feed(histInput(64)); err != nil {
		t.Fatal(err)
	}
	err := s.RunShared(nil)
	if err == nil {
		t.Fatal("RunShared succeeded past an OOM-sized reduction map")
	}
	var oom *memmodel.OOMError
	if !errors.As(err, &oom) {
		t.Fatalf("want an OOM error, got %v", err)
	}
	if used := node.Used(); used != 0 {
		t.Fatalf("%d bytes still charged after the failed RunShared", used)
	}
}
