package core

import (
	"sync/atomic"
	"time"

	"github.com/scipioneer/smart/internal/obs"
)

// Stats reports counters from the most recent Run. The replay cluster
// simulator consumes SplitTimes to compose modeled parallel times; the
// experiments use the memory counters to reproduce the paper's footprint
// comparisons.
type Stats struct {
	// SplitTimes holds the measured processing duration of each thread's
	// split for the last block of the last iteration, indexed by thread.
	SplitTimes []time.Duration
	// ReductionTime is the total time spent in the reduction phase, summed
	// over splits (CPU time, not wall time).
	ReductionTime time.Duration
	// LocalCombineTime is the time spent merging reduction maps into the
	// local combination map.
	LocalCombineTime time.Duration
	// GlobalCombineTime is the time spent in the global combination phase,
	// including serialization.
	GlobalCombineTime time.Duration
	// SerializedBytes counts the bytes this process contributed to global
	// combination wire traffic.
	SerializedBytes int64
	// ChunksProcessed counts unit chunks consumed by the reduction phase.
	ChunksProcessed int64
	// MaxLiveRedObjs is the peak number of reduction objects alive across
	// all threads' reduction maps at once — the quantity the early emission
	// optimization bounds.
	MaxLiveRedObjs int64
	// EmittedEarly counts reduction objects converted and erased by the
	// trigger mechanism during reduction.
	EmittedEarly int64
	// Steals counts ranges taken from another thread's deque by the
	// stealing engine (always zero under the static engine).
	Steals int64
	// BatchesClaimed counts chunk batches claimed from the deques by the
	// stealing engine; the static engine does not claim batches.
	BatchesClaimed int64
}

// Snapshot returns a copy of the stats that is safe to read while a Run may
// still be mutating the original. The run loop updates ReductionTime,
// SerializedBytes, ChunksProcessed, and EmittedEarly with atomic adds, so
// those fields are loaded atomically here; SplitTimes is deep-copied. Use
// this — not the raw pointer from Scheduler.Stats — whenever the reader is
// on a different goroutine than the run (result reporting, serving,
// monitoring).
func (s *Stats) Snapshot() Stats {
	out := Stats{
		ReductionTime:     time.Duration(atomic.LoadInt64((*int64)(&s.ReductionTime))),
		LocalCombineTime:  s.LocalCombineTime,
		GlobalCombineTime: s.GlobalCombineTime,
		SerializedBytes:   atomic.LoadInt64(&s.SerializedBytes),
		ChunksProcessed:   atomic.LoadInt64(&s.ChunksProcessed),
		MaxLiveRedObjs:    s.MaxLiveRedObjs,
		EmittedEarly:      atomic.LoadInt64(&s.EmittedEarly),
		Steals:            atomic.LoadInt64(&s.Steals),
		BatchesClaimed:    atomic.LoadInt64(&s.BatchesClaimed),
	}
	if s.SplitTimes != nil {
		out.SplitTimes = make([]time.Duration, len(s.SplitTimes))
		copy(out.SplitTimes, s.SplitTimes)
	}
	return out
}

// reset clears per-Run counters.
func (s *Stats) reset(threads int) {
	if cap(s.SplitTimes) < threads {
		s.SplitTimes = make([]time.Duration, threads)
	}
	s.SplitTimes = s.SplitTimes[:threads]
	for i := range s.SplitTimes {
		s.SplitTimes[i] = 0
	}
	s.ReductionTime = 0
	s.LocalCombineTime = 0
	s.GlobalCombineTime = 0
	s.SerializedBytes = 0
	s.ChunksProcessed = 0
	s.MaxLiveRedObjs = 0
	s.EmittedEarly = 0
	s.Steals = 0
	s.BatchesClaimed = 0
}

// schedMetrics caches the scheduler's registry handles so the per-phase and
// per-split paths never pay a name lookup.
type schedMetrics struct {
	// keysTouched counts (key, chunk) pairs consumed by the reduction
	// phase — the map-side workload the paper's Section 5.3 overhead
	// analysis reasons about.
	keysTouched *obs.Counter
	// earlyEmit counts reduction objects converted and erased by the
	// Trigger mechanism (Section 4 early emission).
	earlyEmit *obs.Counter
	// gcBytes counts bytes this process serialized into global combination.
	gcBytes *obs.Counter
	// redmapSize samples each thread's reduction-map entry count at the end
	// of every reduction phase — the live-map-size quantity of Figure 11.
	redmapSize *obs.Histogram
	// livePeak tracks the peak number of live reduction objects across all
	// threads (gauge value = latest Run's peak, gauge peak = all-time).
	livePeak *obs.Gauge
	// runs counts completed Run/RunShared executions.
	runs *obs.Counter
	// gcDecodeAvoided counts incoming global-combine segments merged directly
	// into the decoded local shards — each one is a decode-both+re-encode
	// cycle the legacy whole-map reduce would have paid.
	gcDecodeAvoided *obs.Counter
	// encBufReuse counts serialization rounds that ran in a recycled buffer
	// (pooled checkpoint/broadcast encodes plus warm global-combine scratch)
	// instead of a fresh allocation.
	encBufReuse *obs.Counter
	// ckRawBytes/ckEncodedBytes count checkpoint image bytes before and
	// after the checkpoint codec (magic excluded). Equal counters mean
	// checkpoints are going to disk raw — either by configuration or because
	// compression failed to shrink them.
	ckRawBytes     *obs.Counter
	ckEncodedBytes *obs.Counter
	// steals counts work-stealing engine range steals.
	steals *obs.Counter
	// batches counts chunk batches claimed from the stealing engine's deques.
	batches *obs.Counter
	// queueDepth samples the remaining units of the deque a worker just
	// claimed from (gauge value = latest sample, gauge peak = deepest queue
	// observed — the workload size at the start of a block).
	queueDepth *obs.Gauge
	// arenaBytes gauges the bytes resident in the combination store's arena
	// storage (index tables + key/object arrays) under MapImpl "arena";
	// stays zero under the gomap baseline.
	arenaBytes *obs.Gauge
	// storeProbeLen samples the mean open-addressing probe length per store
	// lookup, flushed once per local-combine phase. A healthy arena table
	// stays near 1; sustained growth means the load factor or hash is wrong
	// for the workload. Zero samples under the gomap baseline.
	storeProbeLen *obs.Histogram
}

func (m *schedMetrics) init(r *obs.Registry) {
	m.keysTouched = r.Counter("smart_core_keys_touched_total")
	m.earlyEmit = r.Counter("smart_core_early_emissions_total")
	m.gcBytes = r.Counter("smart_core_global_combine_bytes_total")
	m.redmapSize = r.Histogram("smart_core_redmap_entries", obs.SizeBuckets)
	m.livePeak = r.Gauge("smart_core_live_redobjs")
	m.runs = r.Counter("smart_core_runs_total")
	m.gcDecodeAvoided = r.Counter("smart_core_gc_decode_avoided_total")
	m.encBufReuse = r.Counter("smart_core_enc_buf_reuse_total")
	m.ckRawBytes = r.Counter("smart_core_ck_raw_bytes_total")
	m.ckEncodedBytes = r.Counter("smart_core_ck_encoded_bytes_total")
	m.steals = r.Counter("smart_core_steals_total")
	m.batches = r.Counter("smart_core_batches_total")
	m.queueDepth = r.Gauge("smart_core_queue_depth")
	m.arenaBytes = r.Gauge("smart_core_arena_bytes")
	m.storeProbeLen = r.Histogram("smart_core_store_probe_len", obs.SizeBuckets)
}

// liveCounter tracks the number of live reduction objects across threads and
// remembers the peak.
type liveCounter struct {
	live atomic.Int64
	peak atomic.Int64
}

func (c *liveCounter) add(n int64) int64 {
	v := c.live.Add(n)
	for {
		p := c.peak.Load()
		if v <= p || c.peak.CompareAndSwap(p, v) {
			return v
		}
	}
}
