package core

import (
	"context"
	"errors"
	"fmt"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"

	"github.com/scipioneer/smart/internal/chunk"
	"github.com/scipioneer/smart/internal/memmodel"
	"github.com/scipioneer/smart/internal/obs"
)

// Run executes the analytics over one partition in time sharing mode using
// gen_key (one key per unit chunk). in is read through directly — typically
// the simulation's own output buffer — and is never copied or mutated. The
// final result is converted into out (which may be nil to skip conversion).
// This is Algorithm 1 of the paper.
func (s *Scheduler[In, Out]) Run(in []In, out []Out) error {
	return s.run(context.Background(), in, out, false)
}

// Run2 is Run using gen_keys (multiple keys per unit chunk), the path used
// by window-based analytics.
func (s *Scheduler[In, Out]) Run2(in []In, out []Out) error {
	return s.run(context.Background(), in, out, true)
}

// RunContext is Run with deadline/cancellation support. Cancellation is
// observed at chunk granularity: every reduction worker checks a flag raised
// by ctx's completion before consuming the next unit chunk, so a cancelled
// run stops within one chunk per thread (within cancelPollMask+1 chunks on a
// host where the watcher goroutine is starved) and returns an error wrapping
// context.Cause(ctx). The combination map is left as of the last completed
// phase — callers that checkpoint after cancellation persist a consistent
// (if not fully converged) state.
func (s *Scheduler[In, Out]) RunContext(ctx context.Context, in []In, out []Out) error {
	return s.run(ctx, in, out, false)
}

// Run2Context is RunContext using gen_keys.
func (s *Scheduler[In, Out]) Run2Context(ctx context.Context, in []In, out []Out) error {
	return s.run(ctx, in, out, true)
}

// RunWindowContext recycles the scheduler's accumulated state in place
// (RecycleCombinationMap) and runs the analytics over exactly one window's
// elements. It is the narrow re-entrant entry point the streaming layer
// compiles each fired window onto: the result is byte-identical to a fresh
// scheduler run over the same elements, but the combination map's buckets,
// the sharded store's shards or arena slabs, and the engine stay warm from
// window to window.
func (s *Scheduler[In, Out]) RunWindowContext(ctx context.Context, in []In, out []Out) error {
	s.RecycleCombinationMap()
	return s.run(ctx, in, out, false)
}

// RunWindow2Context is RunWindowContext using gen_keys, for window-family
// (MultiKeyer) analytics.
func (s *Scheduler[In, Out]) RunWindow2Context(ctx context.Context, in []In, out []Out) error {
	s.RecycleCombinationMap()
	return s.run(ctx, in, out, true)
}

// errCancelled is the internal sentinel the reduction workers return when
// they observe the cancellation flag; run translates it into an error that
// wraps the context's cause.
var errCancelled = errors.New("core: run cancelled")

// cancelPollMask sets how often (in chunks, power of two minus one) a
// reduction worker pays a direct ctx.Err() — a mutex acquisition — on top of
// the free per-chunk atomic flag check. 255 keeps the direct check off the
// hot path while bounding cancellation latency even when the watcher
// goroutine is starved.
const cancelPollMask = 255

// cancelErr wraps the context's cancellation cause so callers can match it
// with errors.Is(err, context.Canceled) / context.DeadlineExceeded.
func cancelErr(ctx context.Context) error {
	return fmt.Errorf("core: run cancelled: %w", context.Cause(ctx))
}

func (s *Scheduler[In, Out]) run(ctx context.Context, in []In, out []Out, multi bool) error {
	if multi && s.multi == nil {
		return errors.New("core: Run2 requires the application to implement MultiKeyer")
	}
	// The chunk loops poll s.cancelled (one uncontended atomic load per
	// chunk) instead of ctx.Err(), so cancellation support costs the hot
	// path nothing measurable; an AfterFunc watcher raises the flag. The
	// watcher runs on its own goroutine, which a tight reduction loop on a
	// GOMAXPROCS=1 host can starve — so the workers also consult the
	// context directly every cancelPollChunks chunks as a backstop.
	s.cancelled.Store(false)
	s.runCtx = ctx
	if ctx.Done() != nil {
		if err := ctx.Err(); err != nil {
			return cancelErr(ctx)
		}
		stop := context.AfterFunc(ctx, func() { s.cancelled.Store(true) })
		defer stop()
	}
	nt := s.args.NumThreads
	s.stats.reset(nt)

	tracker, err := newMemTracker(s.args.Mem)
	if err != nil {
		return err
	}
	defer tracker.release()

	// process_extra_data: initialize the combination map if needed.
	if s.extraProc != nil {
		s.extraProc.ProcessExtraData(s.args.Extra, s.comMap)
	}

	live := &liveCounter{}
	env := &runEnv[In, Out]{in: in, out: out, multi: multi, live: live, tracker: tracker}
	// Application code may have mutated the combination map since the last
	// sync point (between Runs, anything holding CombinationMap may write).
	s.storeFresh = false

	for iter := 0; iter < s.args.NumIters; iter++ {
		if s.cancelled.Load() || ctx.Err() != nil {
			return cancelErr(ctx)
		}
		// Distribute the (local or, after the first iteration's global
		// combination, global) combination map into the engine's segment
		// reduction stores (shard-parallel deep clones; see distributeInto).
		s.syncStore()
		s.eng.distribute(env)
		if err := tracker.sync(); err != nil {
			return err
		}

		// Reduction phase, block by block, scheduled by the engine.
		redStart := time.Now()
		var redErr error
		chunk.Blocks(len(in), s.args.BlockSize, s.args.ChunkSize, func(block chunk.Split) {
			if redErr != nil {
				return
			}
			redErr = s.eng.reduceBlock(block, env)
		})
		if redErr != nil {
			if errors.Is(redErr, errCancelled) {
				return cancelErr(ctx)
			}
			return redErr
		}
		s.phaseEvent("reduction", redStart)
		segs := s.eng.segments()
		for _, m := range segs {
			s.met.redmapSize.Observe(float64(m.size()))
		}

		// Local combination: merge every segment the engine produced into
		// the combination map, shard-parallel — worker w merges shard w of
		// every segment, so no two workers ever touch the same key and the
		// merge needs no locks. Segments arrive in ascending input-offset
		// order (the engine contract), so each key's partials merge in input
		// order no matter which thread produced them. Objects for unseen
		// keys are moved; objects for existing keys are merged and die.
		start := time.Now()
		durs := forShards(s.store.numShards(), s.phaseWorkers(), func(si int) {
			for _, seg := range segs {
				seg.forEachIn(si, func(k int, obj RedObj) {
					if dst, ok := s.store.lookup(k); ok {
						s.app.Merge(obj, dst)
						tracker.add(-int64(s.sizeOfRedObj(obj)))
					} else {
						s.store.insert(k, obj)
					}
					live.add(-1)
				})
			}
		})
		s.flushStoreStats(segs)
		for i := range segs {
			segs[i] = nil
		}
		s.syncFlat()
		s.stats.LocalCombineTime += time.Since(start)
		s.shardSpans("local combine shard", start, durs)
		s.phaseEvent("local combine", start)
		if err := tracker.sync(); err != nil {
			return err
		}

		// A cancelled job must not enter the collective: peers would block
		// on a rank that is about to abandon the communicator.
		if s.cancelled.Load() || ctx.Err() != nil {
			return cancelErr(ctx)
		}
		// Global combination: merge node combination maps across the
		// communicator; every process ends up with the global map, which
		// doubles as the "distribute global map" step of the next iteration.
		if s.globalComb && s.args.Comm != nil && s.args.Comm.Size() > 1 {
			gcStart := time.Now()
			gcID, restore := s.pushPhaseTrace()
			err := s.globalCombine()
			restore()
			if err != nil {
				return err
			}
			s.phaseEventID("global combine", gcStart, gcID)
		}

		if s.postComb != nil {
			pcStart := time.Now()
			s.postComb.PostCombine(s.comMap)
			// PostCombine may have inserted, erased, or replaced entries in
			// the flat map; reseed before the next phase that needs the store.
			s.storeFresh = false
			s.phaseEvent("post combine", pcStart)
		}
	}

	s.stats.MaxLiveRedObjs = live.peak.Load()
	s.met.livePeak.Set(s.stats.MaxLiveRedObjs)
	convStart := time.Now()
	err = s.convert(out)
	s.phaseEvent("convert", convStart)
	s.met.runs.Inc()
	return err
}

// phaseEvent records a completed phase as an obs span — metrics + trace via
// the observer, then the scheduler's subscribers (the OnPhase shim among
// them). Called only from the coordinating goroutine.
func (s *Scheduler[In, Out]) phaseEvent(name string, start time.Time) {
	s.phaseEventID(name, start, 0)
}

// phaseEventID is phaseEvent for phases whose span ID was pre-allocated so
// child work (collectives during global combination) could parent under the
// phase before the phase span itself is recorded. id 0 allocates on demand.
func (s *Scheduler[In, Out]) phaseEventID(name string, start time.Time, id uint64) {
	sp := obs.Span{Cat: "core", Name: name, Start: start, Dur: time.Since(start)}
	if tc := s.traceCtx; tc.Valid() {
		if id == 0 {
			id = obs.NewID()
		}
		sp.Trace, sp.ID, sp.Parent, sp.Rank = tc.TraceID, id, tc.SpanID, s.rank()
	}
	s.obs.RecordSpan(sp)
	for _, fn := range s.spanSubs {
		fn(sp)
	}
}

// rank is this scheduler's mpi rank, 0 without a communicator.
func (s *Scheduler[In, Out]) rank() int {
	if s.args.Comm != nil {
		return s.args.Comm.Rank()
	}
	return 0
}

// pushPhaseTrace allocates the span ID of a phase that is about to run
// collectives and re-points the communicator's trace context at it, so the
// collective child spans recorded by mpi nest under the phase span instead
// of the job root. The returned restore puts the previous context back; the
// returned id goes to phaseEventID. With tracing off both are no-ops.
func (s *Scheduler[In, Out]) pushPhaseTrace() (id uint64, restore func()) {
	tc := s.traceCtx
	if !tc.Valid() || s.args.Comm == nil {
		return 0, func() {}
	}
	id = obs.NewID()
	comm := s.args.Comm
	prev := comm.TraceContext()
	comm.SetTraceContext(obs.TraceContext{TraceID: tc.TraceID, SpanID: id})
	return id, func() { comm.SetTraceContext(prev) }
}

// shardSpans records one observer span per shard of a shard-parallel phase,
// carrying the shard index as an attribute. Like the producer-side "feed"
// span, these go to the observer only, not to SubscribeSpans/OnPhase — the
// subscribers get the single phase-level event, the trace gets the per-shard
// breakdown (each span's Start is the phase start; Dur is that shard's own
// processing time).
func (s *Scheduler[In, Out]) shardSpans(name string, start time.Time, durs []time.Duration) {
	if len(durs) <= 1 {
		return
	}
	for si, d := range durs {
		s.obs.RecordSpan(obs.Span{Cat: "core", Name: name, Start: start, Dur: d,
			Attrs: map[string]any{"shard": si}})
	}
}

// labelWorker runs one engine worker body, under runtime/pprof labels
// attributing its samples to the reduction phase and engine when
// SetPprofLabels is on. Worker goroutines inherit the coordinating
// goroutine's labels (job, tenant, app — set by the serve layer), so the
// phase/engine labels compose with rather than replace them.
func (s *Scheduler[In, Out]) labelWorker(engine string, work func()) {
	if !s.pprofLabels {
		work()
		return
	}
	pprof.Do(s.runCtx, pprof.Labels("phase", "reduction", "engine", engine),
		func(context.Context) { work() })
}

// phaseWorkers is the goroutine budget of the shard-parallel phases: the
// thread count, except under Sequential where every phase stays on the
// coordinating goroutine (the replay simulator measures per-thread work on
// hosts with fewer cores than simulated threads).
func (s *Scheduler[In, Out]) phaseWorkers() int {
	if s.args.Sequential {
		return 1
	}
	return s.args.NumThreads
}

// syncStore reseeds the store (the sharded working view) from the flat
// combination map if application code may have mutated the flat view since
// the last sync.
func (s *Scheduler[In, Out]) syncStore() {
	if s.storeFresh {
		return
	}
	s.store.reseed(s.comMap)
	s.storeFresh = true
}

// syncFlat rebuilds the flat combination map from the store after a
// shard-parallel phase mutated it. The flat map's identity is preserved —
// holders of CombinationMap keep seeing the current state.
func (s *Scheduler[In, Out]) syncFlat() {
	s.store.flattenInto(s.comMap)
	s.storeFresh = true
}

// flushStoreStats drains the probe/footprint counters the stores accumulated
// during the iteration into the registry — one flush per phase boundary, so
// the per-chunk hot path never touches an atomic. Called from the
// coordinating goroutine after the phase workers have joined.
func (s *Scheduler[In, Out]) flushStoreStats(segs []redStore) {
	st := s.store.takeStats()
	for _, seg := range segs {
		t := seg.takeStats()
		st.probes += t.probes
		st.lookups += t.lookups
		st.arenaBytes += t.arenaBytes
	}
	if st.lookups > 0 {
		s.met.storeProbeLen.Observe(float64(st.probes) / float64(st.lookups))
	}
	if st.arenaBytes > 0 {
		s.met.arenaBytes.Set(st.arenaBytes)
	}
}

// processSplit consumes one split chunk by chunk: generate key(s), locate or
// create the reduction object, accumulate, and — when the object's trigger
// fires — emit it early (Algorithm 2).
func (s *Scheduler[In, Out]) processSplit(sp chunk.Split, in []In, out []Out,
	redMap redStore, multi bool, live *liveCounter, tracker *memTracker) error {

	var keys []int
	var chunks, touched int64
	chunkSize := s.args.ChunkSize
	end := sp.End()
	// cache short-circuits the reduction-map lookup for consecutive chunks
	// sharing one key — the common case for single-key applications
	// (logistic regression) and value-clustered data.
	var cache chunkCache
	cache.key = -1 << 62
	// The chunk loop is written out inline: this is the framework's hot
	// path and a per-chunk closure dispatch is measurable against the
	// hand-coded baselines of Section 5.3.
	for start := sp.Start; start < end; start += chunkSize {
		if s.cancelled.Load() || (chunks&cancelPollMask == cancelPollMask && s.runCtx.Err() != nil) {
			atomic.AddInt64(&s.stats.ChunksProcessed, chunks)
			return errCancelled
		}
		length := chunkSize
		if start+length > end {
			length = end - start
		}
		c := chunk.Chunk{Start: start, Length: length}
		chunks++
		if multi {
			keys = s.multi.GenKeys(c, in, s.comMap, keys[:0])
			touched += int64(len(keys))
			for _, k := range keys {
				s.consumeChunk(k, c, in, out, redMap, live, tracker, &cache)
			}
		} else {
			k := s.app.GenKey(c, in, s.comMap)
			touched++
			s.consumeChunk(k, c, in, out, redMap, live, tracker, &cache)
		}
		if tracker != nil && chunks%4096 == 0 {
			if err := tracker.maybeSync(); err != nil {
				return err
			}
		}
	}
	atomic.AddInt64(&s.stats.ChunksProcessed, chunks)
	// One registry update per split, not per chunk: the counters stay off
	// the hot loop that Section 5.3 benchmarks against hand-coded baselines.
	s.met.keysTouched.Add(touched)
	return tracker.maybeSync()
}

// chunkCache remembers the last (key, object) pair touched by a split.
type chunkCache struct {
	key int
	obj RedObj
}

// consumeChunk accumulates one (key, chunk) pair into the reduction map,
// creating the reduction object on first touch and emitting it early when
// its trigger fires (Algorithm 2).
func (s *Scheduler[In, Out]) consumeChunk(k int, c chunk.Chunk, in []In, out []Out,
	redMap redStore, live *liveCounter, tracker *memTracker, cache *chunkCache) {

	obj := cache.obj
	if cache.key != k || obj == nil {
		var created bool
		obj, created = redMap.lookupOrCreate(k)
		if created {
			live.add(1)
			tracker.add(int64(s.sizeOfRedObj(obj)))
		}
		cache.key, cache.obj = k, obj
	}
	if tracker == nil {
		if s.posAcc != nil {
			s.posAcc.AccumulateKeyed(k, c, in, obj)
		} else {
			s.app.Accumulate(c, in, obj)
		}
	} else {
		// Variable-size reduction objects (e.g. the holistic moving-median
		// object) grow as they accumulate; charge the growth.
		before := s.sizeOfRedObj(obj)
		if s.posAcc != nil {
			s.posAcc.AccumulateKeyed(k, c, in, obj)
		} else {
			s.app.Accumulate(c, in, obj)
		}
		tracker.add(int64(s.sizeOfRedObj(obj) - before))
	}
	if s.hasTrigger && obj.(Triggered).Trigger() {
		// Early emission: convert and erase immediately, so the reduction
		// map never holds more than the window's worth of unfinished
		// objects.
		s.emit(k, obj, out)
		if len(s.emitSubs) > 0 {
			s.notifyEmit(k, out)
		}
		redMap.remove(k)
		live.add(-1)
		tracker.add(-int64(s.sizeOfRedObj(obj)))
		atomic.AddInt64(&s.stats.EmittedEarly, 1)
		s.met.earlyEmit.Inc()
		cache.obj = nil
	}
}

// notifyEmit forwards one freshly converted early emission to the emission
// subscribers. It runs on the reduction worker that fired the trigger, so
// subscribers must be safe for concurrent use.
func (s *Scheduler[In, Out]) notifyEmit(key int, out []Out) {
	if s.converter == nil || out == nil {
		return
	}
	idx := key - s.args.OutBase
	if idx < 0 || idx >= len(out) {
		return
	}
	v := out[idx]
	for _, fn := range s.emitSubs {
		fn(key, v)
	}
}

// emit converts a finalized reduction object into its output slot if the key
// falls inside this process's output window.
func (s *Scheduler[In, Out]) emit(key int, obj RedObj, out []Out) {
	if s.converter == nil || out == nil {
		return
	}
	idx := key - s.args.OutBase
	if idx >= 0 && idx < len(out) {
		s.converter.Convert(obj, &out[idx])
	}
}

// convert materializes the combination map into the output array,
// shard-parallel: every key owns a distinct output slot, so shards convert
// concurrently without synchronization. Converter implementations must
// therefore tolerate concurrent calls for distinct keys (all shipped
// applications do — Convert reads the object and writes its slot).
func (s *Scheduler[In, Out]) convert(out []Out) error {
	if out == nil || s.converter == nil {
		return nil
	}
	s.syncStore()
	forShards(s.store.numShards(), s.phaseWorkers(), func(si int) {
		s.store.forEachIn(si, func(k int, obj RedObj) {
			s.emit(k, obj, out)
		})
	})
	return nil
}

// EncodeCombinationMap serializes the combination map in the wire format
// global combination uses. Besides checkpointing, it lets the experiment
// harness measure the serialization cost Smart pays over a contiguous-buffer
// Allreduce (Section 5.3) without running a live communicator.
func (s *Scheduler[In, Out]) EncodeCombinationMap() ([]byte, error) {
	return encodeMap(s.comMap)
}

// DecodeCombinationMap replaces the combination map with one decoded from
// EncodeCombinationMap's format.
func (s *Scheduler[In, Out]) DecodeCombinationMap(buf []byte) error {
	m, err := decodeMap(buf, s.newObj)
	if err != nil {
		return err
	}
	s.comMap = m
	s.storeFresh = false
	return nil
}

// MergeCombinationMap folds another combination map into this scheduler's
// map with the application's Merge — the building block for hybrid
// processing, where staging processes merge maps shipped from simulation
// processes. Objects for unseen keys are adopted directly (the caller must
// not reuse them afterwards).
func (s *Scheduler[In, Out]) MergeCombinationMap(m CombMap) {
	for k, obj := range m {
		if dst, ok := s.comMap[k]; ok {
			s.app.Merge(obj, dst)
		} else {
			s.comMap[k] = obj
		}
	}
	s.storeFresh = false
}

// MergeEncodedCombinationMap decodes a map serialized with
// EncodeCombinationMap and folds it in.
func (s *Scheduler[In, Out]) MergeEncodedCombinationMap(buf []byte) error {
	m, err := decodeMap(buf, s.newObj)
	if err != nil {
		return err
	}
	s.MergeCombinationMap(m)
	return nil
}

// GlobalCombine runs only the global combination phase over the current
// combination map (honoring SetGlobalCombination), applies PostCombine, and
// converts into out. It is the final step of the accumulator pattern: a
// throwaway scheduler reduces each partition with a fresh map, an
// accumulator folds the per-partition maps in with MergeCombinationMap, and
// GlobalCombine performs the one cluster-wide merge at the end. (Running
// the partitions through one scheduler without resets would replicate
// accumulated state through the per-iteration distribution step.)
func (s *Scheduler[In, Out]) GlobalCombine(out []Out) error {
	if s.globalComb && s.args.Comm != nil && s.args.Comm.Size() > 1 {
		gcStart := time.Now()
		gcID, restore := s.pushPhaseTrace()
		err := s.globalCombine()
		restore()
		if err != nil {
			return err
		}
		s.phaseEventID("global combine", gcStart, gcID)
	}
	if s.postComb != nil {
		s.postComb.PostCombine(s.comMap)
	}
	return s.convert(out)
}

// globalCombine merges the per-process combination maps into one global map
// on every process. The merge runs along the communicator's binomial
// reduction tree using the application's own Merge, then the result is
// broadcast — the same structure as the paper's global combination followed
// by the distribution of the global map at the next iteration.
//
// The tree operates per shard in decoded form (mpi.ReduceStream): a rank
// serializes each of its shards exactly once — into a reusable scratch
// buffer — when it sends to its parent, and merges incoming serialized
// shards straight into its already-decoded local shards. The
// decode-both-reencode cost the old whole-map reduce paid at every tree
// level (the Section 5.3 serialization tax, log P times over) is gone; the
// per-merge savings surface as smart_core_gc_decode_avoided_total.
func (s *Scheduler[In, Out]) globalCombine() error {
	start := time.Now()
	comm := s.args.Comm
	if s.args.FlatGlobalCombine {
		// Ablation baseline: whole-map gather at root, sequential
		// decode-both-reencode merges — the paper's flat comparison point.
		payload, err := encodeMap(s.comMap)
		if err != nil {
			return fmt.Errorf("core: global combination encode: %w", err)
		}
		atomic.AddInt64(&s.stats.SerializedBytes, int64(len(payload)))
		s.met.gcBytes.Add(int64(len(payload)))
		merged, err := s.flatCombine(payload)
		if err != nil {
			return fmt.Errorf("core: global combination reduce: %w", err)
		}
		global, err := comm.Bcast(0, merged)
		if err != nil {
			return fmt.Errorf("core: global combination bcast: %w", err)
		}
		s.comMap, err = decodeMap(global, s.newObj)
		if err != nil {
			return fmt.Errorf("core: global combination decode: %w", err)
		}
		s.storeFresh = false
		s.stats.GlobalCombineTime += time.Since(start)
		return nil
	}

	s.syncStore()
	var sent int64
	enc := func(seg int) ([]byte, error) {
		if cap(s.gcScratch) > 0 {
			s.met.encBufReuse.Add(1)
		}
		buf, err := appendShardOf(s.gcScratch[:0], s.store, seg)
		if err != nil {
			return nil, fmt.Errorf("core: global combination encode: %w", err)
		}
		s.gcScratch = buf
		sent += int64(len(buf))
		return buf, nil
	}
	// Incoming entries for keys this rank already holds are unmarshaled into
	// one reusable scratch object and merged from there — no allocation.
	// UnmarshalBinary fully replaces an object's state (the format fuzzer
	// pins this), so scratch reuse across entries is sound; Merge must not
	// retain its src, which the CombMap distribution contract already
	// requires (local combination merges and drops objects the same way).
	var scratch RedObj
	merge := func(_ int, payload []byte) error {
		s.met.gcDecodeAvoided.Inc()
		return walkEntries(payload, func(k int, body []byte) error {
			dst, ok := s.store.lookup(k)
			if !ok {
				obj := s.newObj()
				if err := obj.UnmarshalBinary(body); err != nil {
					return fmt.Errorf("core: unmarshal reduction object for key %d: %w", k, err)
				}
				s.store.insert(k, obj)
				return nil
			}
			if scratch == nil {
				scratch = s.newObj()
			}
			if err := scratch.UnmarshalBinary(body); err != nil {
				return fmt.Errorf("core: unmarshal reduction object for key %d: %w", k, err)
			}
			s.app.Merge(scratch, dst)
			return nil
		})
	}
	isRoot, err := comm.ReduceStream(0, s.store.numShards(), enc, merge)
	if err != nil {
		return fmt.Errorf("core: global combination reduce: %w", err)
	}

	// Broadcast the global map. The root holds it decoded already — it
	// serializes once into a pooled buffer (canonical sorted whole-map
	// framing) and keeps its in-place merged store; the other ranks decode
	// the broadcast straight into their stores.
	if isRoot {
		buf, reused := getEncBuf()
		if reused {
			s.met.encBufReuse.Add(1)
		}
		b, err := appendStore(*buf, s.store)
		if err != nil {
			return fmt.Errorf("core: global combination encode: %w", err)
		}
		*buf = b
		sent += int64(len(b))
		if _, err := comm.Bcast(0, b); err != nil {
			return fmt.Errorf("core: global combination bcast: %w", err)
		}
		putEncBuf(buf)
	} else {
		global, err := comm.Bcast(0, nil)
		if err != nil {
			return fmt.Errorf("core: global combination bcast: %w", err)
		}
		// Decode the global map over the local store in place. The global
		// key set is a superset of every rank's local one (merging never
		// drops a key), so overwriting present objects and inserting the
		// rest yields exactly the global state — without clearing the store
		// or allocating an object per already-known key.
		err = walkEntries(global, func(k int, body []byte) error {
			if dst, ok := s.store.lookup(k); ok {
				if err := dst.UnmarshalBinary(body); err != nil {
					return fmt.Errorf("core: unmarshal reduction object for key %d: %w", k, err)
				}
				return nil
			}
			obj := s.newObj()
			if err := obj.UnmarshalBinary(body); err != nil {
				return fmt.Errorf("core: unmarshal reduction object for key %d: %w", k, err)
			}
			s.store.insert(k, obj)
			return nil
		})
		if err != nil {
			return fmt.Errorf("core: global combination decode: %w", err)
		}
	}
	s.syncFlat()
	atomic.AddInt64(&s.stats.SerializedBytes, sent)
	s.met.gcBytes.Add(sent)
	s.stats.GlobalCombineTime += time.Since(start)
	return nil
}

// mergeEncoded decodes two serialized maps and merges the second into the
// first with the application's Merge.
func (s *Scheduler[In, Out]) mergeEncoded(a, b []byte) (CombMap, error) {
	am, err := decodeMap(a, s.app.NewRedObj)
	if err != nil {
		return nil, err
	}
	bm, err := decodeMap(b, s.app.NewRedObj)
	if err != nil {
		return nil, err
	}
	for k, obj := range bm {
		if dst, ok := am[k]; ok {
			s.app.Merge(obj, dst)
		} else {
			am[k] = obj
		}
	}
	return am, nil
}

// flatCombine is the ablation path: gather every rank's serialized map at
// rank 0 and merge them there sequentially (P-1 merges at the root instead
// of log P along the tree).
func (s *Scheduler[In, Out]) flatCombine(payload []byte) ([]byte, error) {
	parts, err := s.args.Comm.Gather(0, payload)
	if err != nil {
		return nil, err
	}
	if s.args.Comm.Rank() != 0 {
		return nil, nil
	}
	acc := parts[0]
	for _, part := range parts[1:] {
		m, err := s.mergeEncoded(acc, part)
		if err != nil {
			return nil, err
		}
		if acc, err = encodeMap(m); err != nil {
			return nil, err
		}
	}
	return acc, nil
}

// memTracker charges the runtime's transient data structures against a
// virtual memory node, so experiments can observe pressure and OOM.
type memTracker struct {
	alloc  *memmodel.Allocation
	bytes  atomic.Int64
	synced atomic.Int64
	mu     sync.Mutex
}

// memSyncSlack is how far accounted bytes may drift from the virtual
// allocation before a resync.
const memSyncSlack = 64 << 10

func newMemTracker(node *memmodel.Node) (*memTracker, error) {
	if node == nil {
		return nil, nil
	}
	alloc, err := node.Alloc("smart reduction maps", 0)
	if err != nil {
		return nil, err
	}
	return &memTracker{alloc: alloc}, nil
}

func (m *memTracker) add(delta int64) {
	if m == nil {
		return
	}
	m.bytes.Add(delta)
}

func (m *memTracker) maybeSync() error {
	if m == nil {
		return nil
	}
	drift := m.bytes.Load() - m.synced.Load()
	if drift < -memSyncSlack || drift > memSyncSlack {
		return m.sync()
	}
	return nil
}

func (m *memTracker) sync() error {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	b := m.bytes.Load()
	if b < 0 {
		b = 0
	}
	if err := m.alloc.Resize(b); err != nil {
		return err
	}
	m.synced.Store(b)
	return nil
}

func (m *memTracker) release() {
	if m == nil {
		return
	}
	m.alloc.Free()
}
