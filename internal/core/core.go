// Package core implements Smart, the in-situ MapReduce-like runtime of the
// paper. Unlike conventional MapReduce, Smart never emits intermediate
// key-value pairs: the user declares a reduction object (RedObj) and the
// runtime accumulates every unit chunk in place inside per-thread reduction
// maps, merges those into a per-node combination map (local combination), and
// merges node maps across the communicator (global combination). This keeps
// the analytics' memory footprint near the size of the final result — the
// property that makes co-location with a memory-bound simulation viable.
//
// The package offers the paper's two in-situ modes. In time sharing mode the
// caller passes the simulation's own output buffer to Run/Run2 — the runtime
// only ever reads through that pointer, so no extra copy of the time-step is
// made. In space sharing mode the caller Feeds time-steps (which are copied
// into a bounded circular buffer) while a concurrent analytics task drains
// them with RunShared/RunShared2.
package core

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"github.com/scipioneer/smart/internal/chunk"
	"github.com/scipioneer/smart/internal/codec"
	"github.com/scipioneer/smart/internal/memmodel"
	"github.com/scipioneer/smart/internal/mpi"
	"github.com/scipioneer/smart/internal/obs"
	"github.com/scipioneer/smart/internal/ringbuf"
)

// RedObj is the reduction object: the mutable value that accumulates all
// elements sharing one key (paper Section 3.1). Implementations must support
// deep copying and a binary wire format, which the runtime uses when
// distributing the combination map to reduction maps and when serializing
// maps for global combination.
type RedObj interface {
	// Clone returns a deep copy of the object.
	Clone() RedObj
	// MarshalBinary encodes the object for global combination.
	MarshalBinary() ([]byte, error)
	// UnmarshalBinary decodes into the receiver.
	UnmarshalBinary(data []byte) error
}

// Triggered is implemented by reduction objects that support the early
// emission optimization of Section 4: when Trigger reports true right after
// an accumulate, the runtime converts the object to output immediately and
// erases it from the reduction map, bounding the live map by the window size
// instead of the input size.
type Triggered interface {
	Trigger() bool
}

// Sized is optionally implemented by reduction objects to report their
// approximate in-memory footprint for virtual memory accounting.
type Sized interface {
	SizeBytes() int
}

// CombMap is a combination (or reduction) map: reduction objects keyed by
// the integer keys the application generates.
type CombMap = map[int]RedObj

// Analytics is the application-facing API (the paper's "functions
// implemented by the user", Table 1). The same implementation runs unchanged
// in time sharing, space sharing, and offline modes.
type Analytics[In, Out any] interface {
	// NewRedObj returns a fresh zero-valued reduction object. The runtime
	// uses it both to lazily create objects for unseen keys and to decode
	// serialized maps during global combination.
	NewRedObj() RedObj
	// GenKey generates the single key for a unit chunk (gen_key).
	GenKey(c chunk.Chunk, data []In, com CombMap) int
	// Accumulate folds the unit chunk into the reduction object (accumulate).
	Accumulate(c chunk.Chunk, data []In, obj RedObj)
	// Merge folds src into dst, the combination object (merge).
	Merge(src, dst RedObj)
}

// MultiKeyer is implemented by applications whose unit chunks map to
// multiple keys (gen_keys; the flatmap-like path used by run2 for
// window-based analytics). GenKeys appends to keys and returns the extended
// slice so the runtime can reuse one buffer across chunks.
type MultiKeyer[In any] interface {
	GenKeys(c chunk.Chunk, data []In, com CombMap, keys []int) []int
}

// PositionalAccumulator is an optional refinement of Accumulate for
// applications whose accumulation depends on the key itself — e.g. the
// position-weighted window convolutions (Savitzky–Golay, Gaussian kernel
// smoothing), where the weight of a contribution is a function of the
// element's offset from the window center (the key). When implemented, the
// runtime calls AccumulateKeyed instead of Accumulate. This is a minimal
// extension over the paper's API, which would otherwise require reduction
// objects to rediscover their own key.
type PositionalAccumulator[In any] interface {
	AccumulateKeyed(key int, c chunk.Chunk, data []In, obj RedObj)
}

// ExtraDataProcessor is implemented by applications that initialize the
// combination map from extra input (process_extra_data), e.g. the initial
// centroids of k-means.
type ExtraDataProcessor interface {
	ProcessExtraData(extra any, com CombMap)
}

// PostCombiner is implemented by iterative applications that update the
// combination map after each combination phase (post_combine), e.g.
// recomputing centroids from sums and counts. Implementations that seed
// per-iteration state through the combination map must reset their
// accumulator fields here, exactly as the paper's k-means update() does.
type PostCombiner interface {
	PostCombine(com CombMap)
}

// Converter is implemented by applications that transform reduction objects
// into final output values (convert). The integer key selects the output
// slot: out[key-OutBase].
type Converter[Out any] interface {
	Convert(obj RedObj, out *Out)
}

// SchedArgs configures a Scheduler (the paper's SchedArgs).
type SchedArgs struct {
	// NumThreads is the number of analytics threads per process. It should
	// equal the simulation's thread count in time sharing mode.
	NumThreads int
	// ChunkSize is the unit chunk length in elements (e.g. the feature
	// vector length).
	ChunkSize int
	// Extra is the extra analytics input (e.g. initial centroids); it is
	// handed to ProcessExtraData at the start of every Run.
	Extra any
	// NumIters is the number of iterations per Run (>= 1).
	NumIters int
	// BlockSize caps how many elements one block holds; a block is split
	// across threads. Zero means the whole partition is a single block.
	BlockSize int
	// Comm connects the processes of the analytics job. Nil means
	// single-process execution (no global combination traffic).
	Comm *mpi.Comm
	// Mem, when non-nil, charges the runtime's data structures (circular
	// buffer cells, reduction maps) against a virtual memory node and makes
	// Run fail with an OOM error when they exceed its capacity.
	Mem *memmodel.Node
	// OutBase is subtracted from a key to obtain the output slot, letting a
	// node own a window of a globally-indexed output array. Keys mapping
	// outside [0, len(out)) are skipped during conversion.
	OutBase int
	// Sequential forces splits to be processed one after another on the
	// calling goroutine while still recording per-split times. The replay
	// cluster simulator uses this to measure per-thread work on a machine
	// with fewer physical cores than simulated threads.
	Sequential bool
	// BufferCells is the circular buffer capacity for space sharing mode
	// (default 4).
	BufferCells int
	// RedObjBytes estimates the footprint of one reduction object for
	// virtual memory accounting when the object does not implement Sized
	// (default 64).
	RedObjBytes int
	// FlatGlobalCombine switches global combination from the default
	// binomial-tree reduction to a flat gather-at-root followed by a
	// sequential merge. The tree is asymptotically better (log P merge
	// depth); the flag exists for the ablation benchmarks.
	FlatGlobalCombine bool
	// CombineShards is the shard count S of the combination pipeline. The
	// key space is hash-partitioned into S shards so local combination, the
	// per-iteration distribution step, conversion, and the global
	// combination tree all run shard-parallel. Zero defaults to NumThreads;
	// 1 recovers the serial single-map pipeline (the reference the
	// equivalence tests and ablation benchmarks compare against). The
	// encoded byte format and all results are independent of S. Ranks of one
	// job should agree on S — differing counts stay correct (incoming
	// entries are routed by key, not segment) but lose the one-segment-per-
	// shard alignment of the streamed global combine.
	CombineShards int
	// Engine selects the reduction-phase execution engine. EngineStatic
	// (the default) fixes one equal chunk-aligned split per thread up front
	// — the paper's schedule, kept as the ablation baseline. EngineStealing
	// starts from the same splits but lets threads claim adaptive chunk
	// batches from per-range deques and steal the back half of a
	// straggler's remainder, so skewed per-chunk costs no longer leave
	// threads idle behind the slowest split. Results are semantically
	// identical under both; see docs/ARCHITECTURE.md ("Execution engine")
	// for the exact determinism guarantees.
	Engine string
	// MapImpl selects the reduction-store implementation behind the engine:
	// the storage every reduction and combination map lives in. MapGo (the
	// default) keeps state in Go's built-in map — the pre-store behavior,
	// kept as the ablation baseline. MapArena keys state with a
	// Fibonacci-hashed open-addressing index over contiguous per-shard
	// arenas: no per-key map allocation, storage recycled across iterations,
	// and slab-allocated objects for FixedSizeObj applications. Results,
	// wire bytes, and checkpoint bytes are byte-identical under both (the
	// store equivalence tests pin this across all nine applications and
	// both engines); see docs/ARCHITECTURE.md ("Reduction stores").
	MapImpl string
	// PinThreads dedicates an OS thread to every reduction worker for the
	// duration of its split (runtime.LockOSThread), the Go analogue of the
	// paper's per-core thread binding; the OS scheduler then keeps each
	// thread on its core. Core-numbered affinity masks would need
	// platform-specific syscalls, which this stdlib-only build avoids.
	PinThreads bool
	// OnPhase, when non-nil, receives one event per completed runtime phase
	// per iteration ("reduction", "local combine", "global combine",
	// "post combine", "convert", and — in space sharing mode — "read" for
	// the circular-buffer wait) with its duration. It is called from the
	// scheduler's coordinating goroutine, never concurrently.
	//
	// Deprecated: OnPhase is kept as a back-compat shim, reimplemented as a
	// subscriber of the scheduler's obs span stream. New code should pass an
	// obs.Observer via Obs (or use the process default) and call
	// SubscribeSpans for callbacks: spans carry the category, start time and
	// attributes that this callback drops.
	OnPhase func(phase string, d time.Duration)
	// Obs is the observability sink for phase spans and runtime metrics
	// (reduction-map sizes, keys touched, early emissions, serialized
	// bytes). Nil means obs.Default(), so instrumentation is always on; the
	// hot-path cost is a handful of atomic adds per phase, not per chunk.
	Obs *obs.Observer
	// CheckpointEncoding selects the codec WriteCheckpoint compresses
	// checkpoint images with. The zero value (codec.None) keeps the legacy
	// byte-stable SMARTCK1 format; ReadCheckpoint accepts every format
	// regardless of this setting.
	CheckpointEncoding codec.Encoding
}

func (a *SchedArgs) validate() error {
	if a.NumThreads <= 0 {
		return errors.New("core: NumThreads must be positive")
	}
	if a.ChunkSize <= 0 {
		return errors.New("core: ChunkSize must be positive")
	}
	if a.NumIters <= 0 {
		return errors.New("core: NumIters must be positive")
	}
	if a.CombineShards <= 0 {
		return errors.New("core: CombineShards must be positive")
	}
	switch a.Engine {
	case EngineStatic, EngineStealing:
	default:
		return fmt.Errorf("core: unknown engine %q (want %q or %q)",
			a.Engine, EngineStatic, EngineStealing)
	}
	switch a.MapImpl {
	case MapGo, MapArena:
	default:
		return fmt.Errorf("core: unknown map implementation %q (want %q or %q)",
			a.MapImpl, MapGo, MapArena)
	}
	return nil
}

// withDefaults is the single place zero-valued SchedArgs fields acquire
// their documented defaults; NewScheduler applies it exactly once before
// validate, so every entry point sees identical effective arguments.
func (a *SchedArgs) withDefaults() SchedArgs {
	out := *a
	if out.NumIters == 0 {
		out.NumIters = 1
	}
	if out.BufferCells == 0 {
		out.BufferCells = 4
	}
	if out.RedObjBytes == 0 {
		out.RedObjBytes = 64
	}
	if out.CombineShards == 0 {
		out.CombineShards = out.NumThreads
	}
	if out.Engine == "" {
		out.Engine = EngineStatic
	}
	if out.MapImpl == "" {
		out.MapImpl = MapGo
	}
	return out
}

// feedItem is one buffered time-step in space sharing mode.
type feedItem[In any] struct {
	data []In
	mem  *memmodel.Allocation
}

// Scheduler is the Smart runtime scheduler (the paper's Scheduler class).
// Construct one per analytics job with NewScheduler. A Scheduler is not safe
// for concurrent Run calls; space sharing's single producer (Feed) and
// single consumer (RunShared) pair is the supported concurrency.
type Scheduler[In, Out any] struct {
	app        Analytics[In, Out]
	args       SchedArgs
	comMap     CombMap
	globalComb bool
	// store is the sharded working view of comMap driving the parallel
	// combination pipeline — the redStore selected by args.MapImpl. It
	// aliases comMap's objects; storeFresh records whether the two views are
	// currently in sync (application code — ProcessExtraData, PostCombine,
	// arbitrary callers of CombinationMap between Runs — only ever mutates
	// the flat view, so the scheduler reseeds lazily at the phase boundaries
	// that need the sharded form).
	store      redStore
	storeFresh bool
	// newObj is app.NewRedObj bound once, so store factories and decode
	// paths never rebuild the method value.
	newObj func() RedObj
	// gcScratch is the reusable per-shard serialization buffer of the global
	// combination phase: both transports copy payloads out during Send, so
	// one buffer serves every segment of every round.
	gcScratch []byte
	buf       *ringbuf.Buffer[feedItem[In]]
	stats     Stats
	obs       *obs.Observer
	met       schedMetrics
	// spanSubs receives every phase span this scheduler emits from its
	// coordinating goroutine; the OnPhase shim is the first subscriber.
	// Append via SubscribeSpans before the first Run — the slice is read
	// without a lock on the phase path.
	spanSubs []func(obs.Span)
	// emitSubs receives every early emission (SubscribeEarlyEmits); like
	// spanSubs it is appended before the first Run and read without a lock,
	// but it fires from reduction worker goroutines.
	emitSubs []func(key int, value Out)
	// cancelled is raised by RunContext's watcher when the run's context
	// completes; the chunk loops poll it so a cancelled run stops within one
	// chunk per thread.
	cancelled atomic.Bool
	// runCtx is the active run's context; reduction workers consult it
	// directly every cancelPollMask+1 chunks as a backstop when the watcher
	// goroutine is starved. Written by the coordinating goroutine before
	// workers spawn.
	runCtx context.Context
	// eng is the reduction-phase execution engine selected by args.Engine.
	eng engine[In, Out]
	// traceCtx, when valid, is the distributed-trace context every phase
	// span of this scheduler parents under (SetTraceContext). Written
	// between runs by the coordinating goroutine.
	traceCtx obs.TraceContext
	// pprofLabels gates wrapping the engines' reduction workers in
	// runtime/pprof labels (phase, engine) so CPU profiles attribute
	// samples to phases. Off by default: label push/pop is cheap but not
	// free, and the bench harness measures the unlabeled hot path.
	pprofLabels bool

	// cached optional capabilities of app
	multi     MultiKeyer[In]
	extraProc ExtraDataProcessor
	postComb  PostCombiner
	converter Converter[Out]
	posAcc    PositionalAccumulator[In]
	// hasTrigger caches whether the app's reduction objects implement
	// Triggered, keeping the type assertion out of the per-chunk hot loop
	// for the applications that never emit early.
	hasTrigger bool
}

// NewScheduler creates a scheduler for the given application and arguments.
func NewScheduler[In, Out any](app Analytics[In, Out], args SchedArgs) (*Scheduler[In, Out], error) {
	a := args.withDefaults()
	if err := a.validate(); err != nil {
		return nil, err
	}
	s := &Scheduler[In, Out]{
		app:        app,
		args:       a,
		comMap:     make(CombMap),
		newObj:     app.NewRedObj,
		globalComb: true,
		buf:        ringbuf.New[feedItem[In]](a.BufferCells),
		obs:        a.Obs,
	}
	s.store = newRedStore(a.MapImpl, a.CombineShards, s.newObj)
	if s.obs == nil {
		s.obs = obs.Default()
	}
	s.met.init(s.obs.Registry())
	if a.OnPhase != nil {
		hook := a.OnPhase
		s.SubscribeSpans(func(sp obs.Span) { hook(sp.Name, sp.Dur) })
	}
	var anyApp any = app
	if m, ok := anyApp.(MultiKeyer[In]); ok {
		s.multi = m
	}
	if e, ok := anyApp.(ExtraDataProcessor); ok {
		s.extraProc = e
	}
	if p, ok := anyApp.(PostCombiner); ok {
		s.postComb = p
	}
	if c, ok := anyApp.(Converter[Out]); ok {
		s.converter = c
	}
	if p, ok := anyApp.(PositionalAccumulator[In]); ok {
		s.posAcc = p
	}
	_, s.hasTrigger = app.NewRedObj().(Triggered)
	s.eng = newEngine(s)
	return s, nil
}

// MustNewScheduler is NewScheduler that panics on invalid arguments, for
// examples and tests.
func MustNewScheduler[In, Out any](app Analytics[In, Out], args SchedArgs) *Scheduler[In, Out] {
	s, err := NewScheduler[In, Out](app, args)
	if err != nil {
		panic(err)
	}
	return s
}

// SetGlobalCombination enables or disables the global combination phase
// (enabled by default). With it disabled, each process retrieves its local
// result in the parallel code region — the building block for MapReduce
// pipelines of Smart jobs.
func (s *Scheduler[In, Out]) SetGlobalCombination(on bool) { s.globalComb = on }

// CombinationMap exposes the combination map (the paper's
// get_combination_map). After a Run with global combination it holds the
// global result on every process.
func (s *Scheduler[In, Out]) CombinationMap() CombMap { return s.comMap }

// ResetCombinationMap clears accumulated state so the scheduler can be
// reused for an unrelated time-step, mirroring Listing 1's fresh scheduler
// per time-step without reallocating the runtime.
func (s *Scheduler[In, Out]) ResetCombinationMap() {
	s.comMap = make(CombMap)
	s.storeFresh = false
}

// RecycleCombinationMap clears accumulated state like ResetCombinationMap
// but keeps every allocation the previous run built up: the flat map's
// buckets and the sharded store's structures (per-shard maps, or the arena
// store's index and slabs) are cleared in place rather than dropped. This
// is the re-entrant per-window entry point the streaming layer
// (internal/stream) runs on — a standing query fires many windows through
// one scheduler, and recycling keeps the per-window cost at clear-and-reuse
// instead of reallocate-and-reseed. Output is identical either way; only
// the allocation profile differs.
func (s *Scheduler[In, Out]) RecycleCombinationMap() {
	clear(s.comMap)
	s.store.clear()
	// The two views are both empty, hence in sync; the next run's initial
	// syncStore is forced regardless (run marks the flat view dirty), but
	// reseeding an empty map into a cleared store allocates nothing.
	s.storeFresh = true
}

// Stats returns counters describing the most recent Run.
//
// The returned pointer is the scheduler's live counter block: the run loop
// mutates it (partly via atomics, partly plain stores), so reading through
// it while a Run, RunShared, or a served job is in flight is a data race.
// Use Stats().Snapshot() for a copy that is safe to read, serialize, or
// report while the scheduler may still be running.
func (s *Scheduler[In, Out]) Stats() *Stats { return &s.stats }

// Observer returns the observability sink this scheduler reports into
// (SchedArgs.Obs, or the process default).
func (s *Scheduler[In, Out]) Observer() *obs.Observer { return s.obs }

// SetTraceContext places this scheduler's phase spans in a distributed
// trace: every phase span records tc.TraceID as its trace and tc.SpanID as
// its parent (conventionally the job's root span, started on rank 0 with
// Observer.StartSpan and spread to the other ranks by the first collective
// — read it off the communicator with Comm.TraceContext after a barrier).
// During global combination the scheduler temporarily re-points the
// communicator's context at the phase's own span, so collective spans nest
// under the phase rather than the root. Passing the zero context disables
// tracing again. Call between runs, not mid-run; as a convenience it also
// attaches the scheduler's observer as the communicator's collective tracer.
func (s *Scheduler[In, Out]) SetTraceContext(tc obs.TraceContext) {
	s.traceCtx = tc
	if s.args.Comm != nil && tc.Valid() {
		s.args.Comm.SetTracer(s.obs)
	}
}

// SetPprofLabels toggles runtime/pprof labels ("phase", "engine") around the
// reduction worker goroutines, letting CPU and goroutine profiles attribute
// samples per phase and engine. Job-level labels (job, tenant, app) are the
// caller's to set via pprof.Do around Run — worker goroutines inherit them.
func (s *Scheduler[In, Out]) SetPprofLabels(on bool) { s.pprofLabels = on }

// Engine reports the effective execution engine name (EngineStatic or
// EngineStealing) this scheduler runs its reduction phase on.
func (s *Scheduler[In, Out]) Engine() string { return s.eng.name() }

// MapImpl reports the effective reduction-store implementation (MapGo or
// MapArena) this scheduler keeps its reduction and combination state in.
func (s *Scheduler[In, Out]) MapImpl() string { return s.args.MapImpl }

// SubscribeSpans registers fn to receive every phase span this scheduler
// emits ("reduction", "local combine", "global combine", "post combine",
// "convert", and "read" in space sharing mode). fn is invoked synchronously
// from the scheduler's coordinating goroutine. Subscribe before the first
// Run; the subscriber list is not synchronized against concurrent phases.
func (s *Scheduler[In, Out]) SubscribeSpans(fn func(obs.Span)) {
	s.spanSubs = append(s.spanSubs, fn)
}

// SubscribeEarlyEmits registers fn to receive every early-emitted output
// value — a reduction object whose Trigger fired, already converted into its
// output slot (Section 4's early emission). Final conversions at the end of
// a Run are not delivered; this is the live stream of results that finalize
// mid-run, which the serving layer forwards to clients before the run
// converges. fn is invoked from reduction worker goroutines, potentially
// concurrently, and must be fast and safe for concurrent use. Subscribe
// before the first Run. Emissions for keys outside [OutBase, OutBase+len(out))
// or on schedulers without a Converter are not observable and are skipped.
func (s *Scheduler[In, Out]) SubscribeEarlyEmits(fn func(key int, value Out)) {
	s.emitSubs = append(s.emitSubs, fn)
}

// sizeOfRedObj returns the accounted footprint of one reduction object.
func (s *Scheduler[In, Out]) sizeOfRedObj(obj RedObj) int {
	if sz, ok := obj.(Sized); ok {
		return sz.SizeBytes()
	}
	return s.args.RedObjBytes
}
