package core

import (
	"io"
	"testing"

	"github.com/scipioneer/smart/internal/obs"
)

// benchSchedObs measures one full scheduler Run with the given observability
// configuration; the disabled/tracing pair is the scheduler-overhead number
// recorded in BENCH_obs.json (the disabled path must stay within noise of
// the pre-tracing scheduler).
func benchSchedObs(b *testing.B, traced bool, flight bool) {
	b.Helper()
	in := histInput(1 << 14)
	o := obs.New()
	if traced {
		o.SetTraceWriter(io.Discard)
	}
	if flight {
		o.SetFlightRecorder(obs.NewFlightRecorder(256))
	}
	s := MustNewScheduler[int, int64](bucketApp{width: 10}, SchedArgs{
		NumThreads: 4, ChunkSize: 1, NumIters: 1, Obs: o,
	})
	if traced {
		root := o.StartSpan(obs.TraceContext{}, "job", "bench")
		defer root.End()
		s.SetTraceContext(root.Context())
	}
	out := make([]int64, 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Run(in, out); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSchedObsDisabled is the baseline: metrics only, no trace writer,
// no trace context, no flight recorder — the default production path.
func BenchmarkSchedObsDisabled(b *testing.B) { benchSchedObs(b, false, false) }

// BenchmarkSchedObsTracing runs the same job with full distributed tracing:
// every phase span carries trace identity and is encoded to the JSONL sink.
func BenchmarkSchedObsTracing(b *testing.B) { benchSchedObs(b, true, false) }

// BenchmarkSchedObsFlight adds the flight-recorder ring to the baseline.
func BenchmarkSchedObsFlight(b *testing.B) { benchSchedObs(b, false, true) }
