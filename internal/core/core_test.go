package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"
	"testing/quick"

	"github.com/scipioneer/smart/internal/chunk"
	"github.com/scipioneer/smart/internal/memmodel"
	"github.com/scipioneer/smart/internal/mpi"
)

// countObj is a minimal reduction object: an int64 counter.
type countObj struct{ n int64 }

func (c *countObj) Clone() RedObj { cp := *c; return &cp }
func (c *countObj) MarshalBinary() ([]byte, error) {
	return binary.LittleEndian.AppendUint64(nil, uint64(c.n)), nil
}
func (c *countObj) AppendBinary(b []byte) ([]byte, error) {
	return binary.LittleEndian.AppendUint64(b, uint64(c.n)), nil
}
func (c *countObj) UnmarshalBinary(b []byte) error {
	if len(b) != 8 {
		return fmt.Errorf("countObj: bad length %d", len(b))
	}
	c.n = int64(binary.LittleEndian.Uint64(b))
	return nil
}

// countObj opts into the arena's fixed-width layout so the core tests
// exercise the slab path end to end.
func (c *countObj) NewSlab(n int) []RedObj {
	backing := make([]countObj, n)
	objs := make([]RedObj, n)
	for i := range backing {
		objs[i] = &backing[i]
	}
	return objs
}
func (c *countObj) Assign(src RedObj) { *c = *src.(*countObj) }

// bucketApp is an equi-width histogram over int inputs: key = value / width.
type bucketApp struct{ width int }

func (a bucketApp) NewRedObj() RedObj { return &countObj{} }
func (a bucketApp) GenKey(c chunk.Chunk, data []int, _ CombMap) int {
	return data[c.Start] / a.width
}
func (a bucketApp) Accumulate(c chunk.Chunk, _ []int, obj RedObj) { obj.(*countObj).n++ }
func (a bucketApp) Merge(src, dst RedObj)                         { dst.(*countObj).n += src.(*countObj).n }
func (a bucketApp) Convert(obj RedObj, out *int64)                { *out = obj.(*countObj).n }

// meanObj accumulates a running sum and count.
type meanObj struct {
	sum   float64
	count int64
}

func (m *meanObj) Clone() RedObj { cp := *m; return &cp }
func (m *meanObj) MarshalBinary() ([]byte, error) {
	buf := binary.LittleEndian.AppendUint64(nil, math.Float64bits(m.sum))
	return binary.LittleEndian.AppendUint64(buf, uint64(m.count)), nil
}
func (m *meanObj) UnmarshalBinary(b []byte) error {
	if len(b) != 16 {
		return fmt.Errorf("meanObj: bad length %d", len(b))
	}
	m.sum = math.Float64frombits(binary.LittleEndian.Uint64(b))
	m.count = int64(binary.LittleEndian.Uint64(b[8:]))
	return nil
}

// winObj is a window accumulator with an early-emission trigger.
type winObj struct {
	meanObj
	target int64
}

func (w *winObj) Clone() RedObj { cp := *w; return &cp }
func (w *winObj) Trigger() bool { return w.target > 0 && w.count == w.target }

// movingSumApp computes, for every element index i, the sum of elements in
// the window [i-half, i+half] — via gen_keys like the paper's moving average.
type movingSumApp struct {
	half    int
	total   int
	trigger bool
	base    int
}

func (a movingSumApp) NewRedObj() RedObj { return &winObj{} }
func (a movingSumApp) GenKey(chunk.Chunk, []float64, CombMap) int {
	panic("movingSumApp uses gen_keys")
}
func (a movingSumApp) GenKeys(c chunk.Chunk, _ []float64, _ CombMap, keys []int) []int {
	center := a.base + c.Start
	lo := max(center-a.half, 0)
	hi := min(center+a.half, a.total-1)
	for k := lo; k <= hi; k++ {
		keys = append(keys, k)
	}
	return keys
}
func (a movingSumApp) Accumulate(c chunk.Chunk, data []float64, obj RedObj) {
	w := obj.(*winObj)
	w.sum += data[c.Start]
	w.count++
	if a.trigger {
		// Full windows have 2*half+1 contributions; truncated boundary
		// windows fewer — they can never trigger and flow to combination.
		w.target = int64(2*a.half + 1)
	}
}
func (a movingSumApp) Merge(src, dst RedObj) {
	s, d := src.(*winObj), dst.(*winObj)
	d.sum += s.sum
	d.count += s.count
}
func (a movingSumApp) Convert(obj RedObj, out *float64) { *out = obj.(*winObj).sum }

// kmeans1D is a one-dimensional k-means used to exercise the iterative path:
// extra data carries initial centroids, post_combine recomputes them.
type kmeans1D struct{ k int }

type clusterObj struct {
	centroid float64
	sum      float64
	count    int64
}

func (c *clusterObj) Clone() RedObj { cp := *c; return &cp }
func (c *clusterObj) MarshalBinary() ([]byte, error) {
	buf := binary.LittleEndian.AppendUint64(nil, math.Float64bits(c.centroid))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(c.sum))
	return binary.LittleEndian.AppendUint64(buf, uint64(c.count)), nil
}
func (c *clusterObj) UnmarshalBinary(b []byte) error {
	if len(b) != 24 {
		return fmt.Errorf("clusterObj: bad length %d", len(b))
	}
	c.centroid = math.Float64frombits(binary.LittleEndian.Uint64(b))
	c.sum = math.Float64frombits(binary.LittleEndian.Uint64(b[8:]))
	c.count = int64(binary.LittleEndian.Uint64(b[16:]))
	return nil
}

func (a kmeans1D) NewRedObj() RedObj { return &clusterObj{} }
func (a kmeans1D) GenKey(c chunk.Chunk, data []float64, com CombMap) int {
	x := data[c.Start]
	best, bestD := 0, math.Inf(1)
	for k := 0; k < a.k; k++ {
		cl := com[k].(*clusterObj)
		if d := math.Abs(x - cl.centroid); d < bestD {
			best, bestD = k, d
		}
	}
	return best
}
func (a kmeans1D) Accumulate(c chunk.Chunk, data []float64, obj RedObj) {
	cl := obj.(*clusterObj)
	cl.sum += data[c.Start]
	cl.count++
}
func (a kmeans1D) Merge(src, dst RedObj) {
	s, d := src.(*clusterObj), dst.(*clusterObj)
	d.sum += s.sum
	d.count += s.count
}
func (a kmeans1D) ProcessExtraData(extra any, com CombMap) {
	if len(com) > 0 {
		return // already initialized (iterating)
	}
	for i, c := range extra.([]float64) {
		com[i] = &clusterObj{centroid: c}
	}
}
func (a kmeans1D) PostCombine(com CombMap) {
	for _, obj := range com {
		cl := obj.(*clusterObj)
		if cl.count > 0 {
			cl.centroid = cl.sum / float64(cl.count)
		}
		cl.sum, cl.count = 0, 0
	}
}
func (a kmeans1D) Convert(obj RedObj, out *float64) { *out = obj.(*clusterObj).centroid }

func histInput(n int) []int {
	in := make([]int, n)
	for i := range in {
		in[i] = (i * 7) % 100
	}
	return in
}

func TestRunHistogramSingleThread(t *testing.T) {
	in := histInput(1000)
	s := MustNewScheduler[int, int64](bucketApp{width: 10}, SchedArgs{NumThreads: 1, ChunkSize: 1, NumIters: 1})
	out := make([]int64, 10)
	if err := s.Run(in, out); err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, c := range out {
		total += c
	}
	if total != 1000 {
		t.Fatalf("histogram total %d, want 1000", total)
	}
	// Sequential reference.
	want := make([]int64, 10)
	for _, v := range in {
		want[v/10]++
	}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, out[i], want[i])
		}
	}
}

func TestRunThreadCountInvariance(t *testing.T) {
	in := histInput(997) // prime length to exercise ragged splits
	ref := make([]int64, 10)
	s := MustNewScheduler[int, int64](bucketApp{width: 10}, SchedArgs{NumThreads: 1, ChunkSize: 1, NumIters: 1})
	if err := s.Run(in, ref); err != nil {
		t.Fatal(err)
	}
	for _, nt := range []int{2, 3, 4, 8} {
		out := make([]int64, 10)
		s := MustNewScheduler[int, int64](bucketApp{width: 10}, SchedArgs{NumThreads: nt, ChunkSize: 1, NumIters: 1})
		if err := s.Run(in, out); err != nil {
			t.Fatalf("nt=%d: %v", nt, err)
		}
		for i := range ref {
			if out[i] != ref[i] {
				t.Errorf("nt=%d bucket %d = %d, want %d", nt, i, out[i], ref[i])
			}
		}
	}
}

func TestRunBlockSizeInvariance(t *testing.T) {
	in := histInput(512)
	for _, bs := range []int{0, 64, 100, 511, 512, 1024} {
		out := make([]int64, 10)
		s := MustNewScheduler[int, int64](bucketApp{width: 10}, SchedArgs{NumThreads: 3, ChunkSize: 1, NumIters: 1, BlockSize: bs})
		if err := s.Run(in, out); err != nil {
			t.Fatalf("bs=%d: %v", bs, err)
		}
		var total int64
		for _, c := range out {
			total += c
		}
		if total != 512 {
			t.Errorf("bs=%d total %d", bs, total)
		}
	}
}

func TestRunSequentialMatchesParallel(t *testing.T) {
	in := histInput(500)
	par := make([]int64, 10)
	seq := make([]int64, 10)
	sp := MustNewScheduler[int, int64](bucketApp{width: 10}, SchedArgs{NumThreads: 4, ChunkSize: 1, NumIters: 1})
	ss := MustNewScheduler[int, int64](bucketApp{width: 10}, SchedArgs{NumThreads: 4, ChunkSize: 1, NumIters: 1, Sequential: true})
	if err := sp.Run(in, par); err != nil {
		t.Fatal(err)
	}
	if err := ss.Run(in, seq); err != nil {
		t.Fatal(err)
	}
	for i := range par {
		if par[i] != seq[i] {
			t.Errorf("bucket %d: parallel %d sequential %d", i, par[i], seq[i])
		}
	}
	// Sequential mode must still record per-split times.
	st := ss.Stats()
	if len(st.SplitTimes) != 4 {
		t.Fatalf("split times %d, want 4", len(st.SplitTimes))
	}
}

func TestKMeansIterativeConverges(t *testing.T) {
	// Two well-separated 1-D clusters around 0 and 100.
	var in []float64
	for i := 0; i < 200; i++ {
		in = append(in, float64(i%10))        // near 0..9
		in = append(in, 100+float64(i%10)/10) // near 100
	}
	app := kmeans1D{k: 2}
	s := MustNewScheduler[float64, float64](app, SchedArgs{
		NumThreads: 2, ChunkSize: 1, NumIters: 10, Extra: []float64{10, 60},
	})
	out := make([]float64, 2)
	if err := s.Run(in, out); err != nil {
		t.Fatal(err)
	}
	lo, hi := out[0], out[1]
	if lo > hi {
		lo, hi = hi, lo
	}
	if math.Abs(lo-4.5) > 0.01 || math.Abs(hi-100.45) > 0.01 {
		t.Fatalf("centroids %v, want ~[4.5 100.45]", out)
	}
}

func TestRun2MovingSumMatchesNaive(t *testing.T) {
	const n, half = 200, 3
	in := make([]float64, n)
	for i := range in {
		in[i] = float64(i%13) - 6
	}
	app := movingSumApp{half: half, total: n}
	s := MustNewScheduler[float64, float64](app, SchedArgs{NumThreads: 4, ChunkSize: 1, NumIters: 1})
	out := make([]float64, n)
	if err := s.Run2(in, out); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		want := 0.0
		for j := max(i-half, 0); j <= min(i+half, n-1); j++ {
			want += in[j]
		}
		if math.Abs(out[i]-want) > 1e-9 {
			t.Fatalf("moving sum at %d = %v, want %v", i, out[i], want)
		}
	}
}

func TestRun2RequiresMultiKeyer(t *testing.T) {
	s := MustNewScheduler[int, int64](bucketApp{width: 10}, SchedArgs{NumThreads: 1, ChunkSize: 1, NumIters: 1})
	if err := s.Run2([]int{1}, nil); err == nil {
		t.Fatal("Run2 without MultiKeyer succeeded")
	}
}

func TestEarlyEmissionSameResultLowerFootprint(t *testing.T) {
	const n, half = 4000, 5
	in := make([]float64, n)
	for i := range in {
		in[i] = math.Sin(float64(i) / 7)
	}
	run := func(trigger bool) ([]float64, *Stats) {
		app := movingSumApp{half: half, total: n, trigger: trigger}
		s := MustNewScheduler[float64, float64](app, SchedArgs{NumThreads: 2, ChunkSize: 1, NumIters: 1})
		out := make([]float64, n)
		if err := s.Run2(in, out); err != nil {
			t.Fatal(err)
		}
		return out, s.Stats()
	}
	plain, plainStats := run(false)
	trig, trigStats := run(true)
	for i := range plain {
		if math.Abs(plain[i]-trig[i]) > 1e-9 {
			t.Fatalf("early emission changed result at %d: %v vs %v", i, plain[i], trig[i])
		}
	}
	if trigStats.EmittedEarly == 0 {
		t.Fatal("no early emissions recorded")
	}
	if plainStats.EmittedEarly != 0 {
		t.Fatal("trigger fired while disabled")
	}
	// The optimization's whole point: live objects bounded near the window
	// size rather than the input size.
	if trigStats.MaxLiveRedObjs >= plainStats.MaxLiveRedObjs/10 {
		t.Fatalf("footprint not reduced: trigger %d vs plain %d live objects",
			trigStats.MaxLiveRedObjs, plainStats.MaxLiveRedObjs)
	}
}

func TestGlobalCombinationAcrossRanks(t *testing.T) {
	const ranks = 4
	comms := mpi.NewWorld(ranks)
	full := histInput(1200)
	per := len(full) / ranks
	results := make([][]int64, ranks)
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer comms[r].Close()
			s := MustNewScheduler[int, int64](bucketApp{width: 10},
				SchedArgs{NumThreads: 2, ChunkSize: 1, NumIters: 1, Comm: comms[r]})
			out := make([]int64, 10)
			if err := s.Run(full[r*per:(r+1)*per], out); err != nil {
				t.Errorf("rank %d: %v", r, err)
				return
			}
			results[r] = out
		}()
	}
	wg.Wait()
	want := make([]int64, 10)
	for _, v := range full {
		want[v/10]++
	}
	for r := 0; r < ranks; r++ {
		for i := range want {
			if results[r][i] != want[i] {
				t.Errorf("rank %d bucket %d = %d, want %d", r, i, results[r][i], want[i])
			}
		}
	}
}

func TestGlobalCombinationDisabled(t *testing.T) {
	const ranks = 2
	comms := mpi.NewWorld(ranks)
	full := histInput(200)
	per := len(full) / ranks
	results := make([][]int64, ranks)
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer comms[r].Close()
			s := MustNewScheduler[int, int64](bucketApp{width: 10},
				SchedArgs{NumThreads: 1, ChunkSize: 1, NumIters: 1, Comm: comms[r]})
			s.SetGlobalCombination(false)
			out := make([]int64, 10)
			if err := s.Run(full[r*per:(r+1)*per], out); err != nil {
				t.Errorf("rank %d: %v", r, err)
				return
			}
			results[r] = out
		}()
	}
	wg.Wait()
	for r := 0; r < ranks; r++ {
		want := make([]int64, 10)
		for _, v := range full[r*per : (r+1)*per] {
			want[v/10]++
		}
		for i := range want {
			if results[r][i] != want[i] {
				t.Errorf("rank %d local bucket %d = %d, want %d", r, i, results[r][i], want[i])
			}
		}
	}
}

func TestDistributedKMeansMatchesSingleNode(t *testing.T) {
	var in []float64
	for i := 0; i < 400; i++ {
		in = append(in, float64(i%17), 50+float64(i%11))
	}
	single := MustNewScheduler[float64, float64](kmeans1D{k: 2},
		SchedArgs{NumThreads: 1, ChunkSize: 1, NumIters: 5, Extra: []float64{5, 40}})
	wantOut := make([]float64, 2)
	if err := single.Run(in, wantOut); err != nil {
		t.Fatal(err)
	}

	const ranks = 4
	comms := mpi.NewWorld(ranks)
	per := len(in) / ranks
	results := make([][]float64, ranks)
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer comms[r].Close()
			s := MustNewScheduler[float64, float64](kmeans1D{k: 2},
				SchedArgs{NumThreads: 2, ChunkSize: 1, NumIters: 5, Extra: []float64{5, 40}, Comm: comms[r]})
			out := make([]float64, 2)
			if err := s.Run(in[r*per:(r+1)*per], out); err != nil {
				t.Errorf("rank %d: %v", r, err)
				return
			}
			results[r] = out
		}()
	}
	wg.Wait()
	for r := 0; r < ranks; r++ {
		for i := range wantOut {
			if math.Abs(results[r][i]-wantOut[i]) > 1e-9 {
				t.Errorf("rank %d centroid %d = %v, want %v", r, i, results[r][i], wantOut[i])
			}
		}
	}
}

func TestOutBaseWindowing(t *testing.T) {
	in := histInput(100)
	// Output window covers buckets [3, 7); other keys must be skipped.
	s := MustNewScheduler[int, int64](bucketApp{width: 10},
		SchedArgs{NumThreads: 1, ChunkSize: 1, NumIters: 1, OutBase: 3})
	out := make([]int64, 4)
	if err := s.Run(in, out); err != nil {
		t.Fatal(err)
	}
	want := make([]int64, 10)
	for _, v := range in {
		want[v/10]++
	}
	for i := 0; i < 4; i++ {
		if out[i] != want[3+i] {
			t.Errorf("windowed bucket %d = %d, want %d", i, out[i], want[3+i])
		}
	}
}

func TestMemoryOOM(t *testing.T) {
	node := memmodel.NewNode(4 << 10) // tiny virtual node
	in := make([]float64, 20000)
	app := movingSumApp{half: 2, total: len(in)}
	s := MustNewScheduler[float64, float64](app, SchedArgs{
		NumThreads: 1, ChunkSize: 1, NumIters: 1, Mem: node, RedObjBytes: 48,
	})
	err := s.Run2(in, make([]float64, len(in)))
	var oom *memmodel.OOMError
	if !errors.As(err, &oom) {
		t.Fatalf("want OOM error, got %v", err)
	}
	// With the trigger enabled the same workload must fit.
	node2 := memmodel.NewNode(4 << 10)
	app2 := movingSumApp{half: 2, total: len(in), trigger: true}
	s2 := MustNewScheduler[float64, float64](app2, SchedArgs{
		NumThreads: 1, ChunkSize: 1, NumIters: 1, Mem: node2, RedObjBytes: 48,
	})
	if err := s2.Run2(in, make([]float64, len(in))); err != nil {
		t.Fatalf("triggered run OOMed: %v", err)
	}
}

func TestSpaceSharingMatchesTimeSharing(t *testing.T) {
	in := histInput(600)
	ts := MustNewScheduler[int, int64](bucketApp{width: 10}, SchedArgs{NumThreads: 2, ChunkSize: 1, NumIters: 1})
	want := make([]int64, 10)
	if err := ts.Run(in, want); err != nil {
		t.Fatal(err)
	}

	ss := MustNewScheduler[int, int64](bucketApp{width: 10},
		SchedArgs{NumThreads: 2, ChunkSize: 1, NumIters: 1, BufferCells: 2})
	const steps = 5
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // simulation task
		defer wg.Done()
		for i := 0; i < steps; i++ {
			if err := ss.Feed(in); err != nil {
				t.Errorf("feed %d: %v", i, err)
				return
			}
		}
		ss.CloseFeed()
	}()
	// analytics task: one fresh result per time-step, as in Listing 1 where
	// a scheduler is constructed per step.
	got := make([]int64, 10)
	steps2 := 0
	for {
		ss.ResetCombinationMap()
		err := ss.RunShared(got)
		if err == ErrFeedClosed {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		steps2++
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("step %d bucket %d = %d, want %d", steps2, i, got[i], want[i])
			}
		}
	}
	wg.Wait()
	if steps2 != steps {
		t.Fatalf("consumed %d steps, want %d", steps2, steps)
	}
	produced, consumed, _ := ss.BufferStats()
	if produced != steps || consumed != steps {
		t.Fatalf("buffer stats %d/%d", produced, consumed)
	}
}

func TestFeedCopiesData(t *testing.T) {
	// The circular buffer must snapshot the fed partition: mutating the
	// source afterwards (as the simulation's next time-step does) must not
	// change the analytics result.
	in := histInput(100)
	s := MustNewScheduler[int, int64](bucketApp{width: 10},
		SchedArgs{NumThreads: 1, ChunkSize: 1, NumIters: 1, BufferCells: 2})
	if err := s.Feed(in); err != nil {
		t.Fatal(err)
	}
	want := make([]int64, 10)
	for _, v := range in {
		want[v/10]++
	}
	for i := range in {
		in[i] = 0 // simulation overwrites its buffer
	}
	got := make([]int64, 10)
	if err := s.RunShared(got); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket %d = %d, want %d (fed data not snapshotted)", i, got[i], want[i])
		}
	}
}

func TestFeedMemAccounting(t *testing.T) {
	node := memmodel.NewNode(1 << 20)
	s := MustNewScheduler[int, int64](bucketApp{width: 10},
		SchedArgs{NumThreads: 1, ChunkSize: 1, NumIters: 1, Mem: node, BufferCells: 2})
	if err := s.Feed(make([]int, 1000)); err != nil {
		t.Fatal(err)
	}
	if node.Used() < 8000 {
		t.Fatalf("buffer cell not accounted: used %d", node.Used())
	}
	if err := s.RunShared(nil); err != nil {
		t.Fatal(err)
	}
	if node.Used() != 0 {
		t.Fatalf("cell not released after consumption: %d", node.Used())
	}
	// A feed that cannot fit must fail with OOM.
	tiny := memmodel.NewNode(100)
	s2 := MustNewScheduler[int, int64](bucketApp{width: 10},
		SchedArgs{NumThreads: 1, ChunkSize: 1, NumIters: 1, Mem: tiny, BufferCells: 2})
	var oom *memmodel.OOMError
	if err := s2.Feed(make([]int, 1000)); !errors.As(err, &oom) {
		t.Fatalf("want OOM on oversized feed, got %v", err)
	}
}

func TestInvalidSchedArgs(t *testing.T) {
	for _, args := range []SchedArgs{
		{NumThreads: 0, ChunkSize: 1, NumIters: 1},
		{NumThreads: 1, ChunkSize: 0, NumIters: 1},
		{NumThreads: 1, ChunkSize: 1, NumIters: -1},
	} {
		if _, err := NewScheduler[int, int64](bucketApp{width: 10}, args); err == nil {
			t.Errorf("args %+v accepted", args)
		}
	}
	// NumIters 0 defaults to 1.
	if _, err := NewScheduler[int, int64](bucketApp{width: 10}, SchedArgs{NumThreads: 1, ChunkSize: 1}); err != nil {
		t.Errorf("defaulted args rejected: %v", err)
	}
}

func TestMapCodecRoundtrip(t *testing.T) {
	f := func(keys []int16, vals []int64) bool {
		m := make(CombMap)
		for i, k := range keys {
			if i >= len(vals) {
				break
			}
			m[int(k)] = &countObj{n: vals[i]}
		}
		buf, err := encodeMap(m)
		if err != nil {
			return false
		}
		got, err := decodeMap(buf, func() RedObj { return &countObj{} })
		if err != nil || len(got) != len(m) {
			return false
		}
		for k, obj := range m {
			g, ok := got[k]
			if !ok || g.(*countObj).n != obj.(*countObj).n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMapCodecErrors(t *testing.T) {
	factory := func() RedObj { return &countObj{} }
	if _, err := decodeMap(nil, factory); err == nil {
		t.Error("decodeMap accepted empty buffer")
	}
	if _, err := decodeMap([]byte{2, 0, 0, 0}, factory); err == nil {
		t.Error("decodeMap accepted truncated entries")
	}
	m := CombMap{1: &countObj{n: 5}}
	buf, _ := encodeMap(m)
	if _, err := decodeMap(append(buf, 0xFF), factory); err == nil {
		t.Error("decodeMap accepted trailing bytes")
	}
}

func TestStatsPopulated(t *testing.T) {
	in := histInput(5000)
	s := MustNewScheduler[int, int64](bucketApp{width: 10}, SchedArgs{NumThreads: 2, ChunkSize: 1, NumIters: 1})
	if err := s.Run(in, make([]int64, 10)); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.ChunksProcessed != 5000 {
		t.Errorf("chunks %d, want 5000", st.ChunksProcessed)
	}
	if st.MaxLiveRedObjs == 0 || st.MaxLiveRedObjs > 20 {
		t.Errorf("live objects %d, want within (0,20]", st.MaxLiveRedObjs)
	}
	if len(st.SplitTimes) != 2 {
		t.Errorf("split times %d entries", len(st.SplitTimes))
	}
}

func TestCombinationMapAccessAndReset(t *testing.T) {
	in := histInput(100)
	s := MustNewScheduler[int, int64](bucketApp{width: 10}, SchedArgs{NumThreads: 1, ChunkSize: 1, NumIters: 1})
	if err := s.Run(in, nil); err != nil {
		t.Fatal(err)
	}
	if len(s.CombinationMap()) == 0 {
		t.Fatal("combination map empty after run")
	}
	s.ResetCombinationMap()
	if len(s.CombinationMap()) != 0 {
		t.Fatal("combination map not cleared")
	}
}

func TestRepeatedRunsWithReset(t *testing.T) {
	// Non-iterative applications process each time-step with a fresh
	// combination map (Listing 1 constructs a scheduler per step); the
	// cheap equivalent is ResetCombinationMap between Runs.
	in := histInput(100)
	s := MustNewScheduler[int, int64](bucketApp{width: 10}, SchedArgs{NumThreads: 1, ChunkSize: 1, NumIters: 1})
	for step := 0; step < 3; step++ {
		s.ResetCombinationMap()
		out := make([]int64, 10)
		if err := s.Run(in, out); err != nil {
			t.Fatal(err)
		}
		var total int64
		for _, v := range out {
			total += v
		}
		if total != 100 {
			t.Fatalf("step %d total %d, want 100", step, total)
		}
	}
}

func TestRepeatedRunsCarryIterativeState(t *testing.T) {
	// Iterative applications whose PostCombine resets accumulators (the
	// paper's contract for distributed combination maps) carry state across
	// Runs without a reset: k-means centroids track across time-steps.
	var in []float64
	for i := 0; i < 200; i++ {
		in = append(in, float64(i%10), 100+float64(i%10)/10)
	}
	app := kmeans1D{k: 2}
	// One scheduler, two runs of 5 iterations each, must converge like a
	// single run of 10 iterations.
	s2 := MustNewScheduler[float64, float64](app, SchedArgs{
		NumThreads: 1, ChunkSize: 1, NumIters: 5, Extra: []float64{10, 60},
	})
	out := make([]float64, 2)
	if err := s2.Run(in, out); err != nil {
		t.Fatal(err)
	}
	if err := s2.Run(in, out); err != nil {
		t.Fatal(err)
	}

	s10 := MustNewScheduler[float64, float64](app, SchedArgs{
		NumThreads: 1, ChunkSize: 1, NumIters: 10, Extra: []float64{10, 60},
	})
	want := make([]float64, 2)
	if err := s10.Run(in, want); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(out[i]-want[i]) > 1e-9 {
			t.Fatalf("centroid %d: two 5-iter runs %v vs one 10-iter run %v", i, out[i], want[i])
		}
	}
}

func TestChunkSizeVectors(t *testing.T) {
	// Feature vectors of length 4: a single key, accumulate sums whole
	// chunks. Verifies chunk positional information.
	in := make([]float64, 400)
	for i := range in {
		in[i] = float64(i)
	}
	app := vecSumApp{}
	s := MustNewScheduler[float64, float64](app, SchedArgs{NumThreads: 2, ChunkSize: 4, NumIters: 1})
	out := make([]float64, 1)
	if err := s.Run(in, out); err != nil {
		t.Fatal(err)
	}
	want := 0.0
	for _, v := range in {
		want += v
	}
	if math.Abs(out[0]-want) > 1e-6 {
		t.Fatalf("vector sum %v, want %v", out[0], want)
	}
}

// vecSumApp sums whole chunks under a single key.
type vecSumApp struct{}

func (vecSumApp) NewRedObj() RedObj                          { return &meanObj{} }
func (vecSumApp) GenKey(chunk.Chunk, []float64, CombMap) int { return 0 }
func (vecSumApp) Accumulate(c chunk.Chunk, data []float64, obj RedObj) {
	m := obj.(*meanObj)
	for i := c.Start; i < c.End(); i++ {
		m.sum += data[i]
	}
	m.count++
}
func (vecSumApp) Merge(src, dst RedObj) {
	s, d := src.(*meanObj), dst.(*meanObj)
	d.sum += s.sum
	d.count += s.count
}
func (vecSumApp) Convert(obj RedObj, out *float64) { *out = obj.(*meanObj).sum }
