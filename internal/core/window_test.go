package core

import (
	"bytes"
	"context"
	"reflect"
	"testing"
)

// TestRunWindowByteIdentical pins the streaming contract of the re-entrant
// window entry point: one scheduler recycled across a sequence of windows
// must produce, for every window, exactly the bytes a fresh scheduler
// produces over that window's elements — both engines, both map
// implementations, with window lengths that shrink and grow so the arena
// store's retained arrays are exercised at both transitions.
func TestRunWindowByteIdentical(t *testing.T) {
	full := histInput(6000)
	windows := [][2]int{{0, 1000}, {1000, 3000}, {3000, 3100}, {3100, 6000}}
	for _, engine := range []string{EngineStatic, EngineStealing} {
		for _, impl := range storeImpls() {
			t.Run(engine+"/"+impl, func(t *testing.T) {
				args := SchedArgs{NumThreads: 3, ChunkSize: 1, NumIters: 1,
					CombineShards: 4, Engine: engine, MapImpl: impl}
				recycled := MustNewScheduler[int, int64](bucketApp{width: 10}, args)
				for wi, w := range windows {
					in := full[w[0]:w[1]]
					outR := make([]int64, 10)
					if err := recycled.RunWindowContext(context.Background(), in, outR); err != nil {
						t.Fatal(err)
					}
					encR, err := recycled.EncodeCombinationMap()
					if err != nil {
						t.Fatal(err)
					}
					fresh := MustNewScheduler[int, int64](bucketApp{width: 10}, args)
					outF := make([]int64, 10)
					if err := fresh.Run(in, outF); err != nil {
						t.Fatal(err)
					}
					encF, err := fresh.EncodeCombinationMap()
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(encR, encF) {
						t.Errorf("window %d: recycled encoding differs from fresh scheduler", wi)
					}
					if !reflect.DeepEqual(outR, outF) {
						t.Errorf("window %d: recycled output %v, fresh %v", wi, outR, outF)
					}
				}
			})
		}
	}
}

// TestRunWindow2ByteIdentical is the gen_keys (window-analytics) variant:
// fixed-size tumbling windows through one recycled scheduler versus a fresh
// scheduler per window.
func TestRunWindow2ByteIdentical(t *testing.T) {
	const winLen = 500
	full := make([]float64, 4*winLen)
	for i := range full {
		full[i] = float64((i*13)%97) / 7
	}
	for _, engine := range []string{EngineStatic, EngineStealing} {
		for _, impl := range storeImpls() {
			t.Run(engine+"/"+impl, func(t *testing.T) {
				args := SchedArgs{NumThreads: 2, ChunkSize: 1, NumIters: 1,
					CombineShards: 4, Engine: engine, MapImpl: impl}
				app := movingSumApp{half: 3, total: winLen}
				recycled := MustNewScheduler[float64, float64](app, args)
				for wi := 0; wi < len(full)/winLen; wi++ {
					in := full[wi*winLen : (wi+1)*winLen]
					outR := make([]float64, winLen)
					if err := recycled.RunWindow2Context(context.Background(), in, outR); err != nil {
						t.Fatal(err)
					}
					encR, err := recycled.EncodeCombinationMap()
					if err != nil {
						t.Fatal(err)
					}
					fresh := MustNewScheduler[float64, float64](app, args)
					outF := make([]float64, winLen)
					if err := fresh.Run2(in, outF); err != nil {
						t.Fatal(err)
					}
					encF, err := fresh.EncodeCombinationMap()
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(encR, encF) {
						t.Errorf("window %d: recycled encoding differs from fresh scheduler", wi)
					}
					if !reflect.DeepEqual(outR, outF) {
						t.Errorf("window %d: recycled output differs from fresh", wi)
					}
				}
			})
		}
	}
}

// TestRecycleKeepsMapIdentity: holders of CombinationMap keep observing the
// live map across a recycle — the map is cleared in place, never replaced.
func TestRecycleKeepsMapIdentity(t *testing.T) {
	s := MustNewScheduler[int, int64](bucketApp{width: 10},
		SchedArgs{NumThreads: 1, ChunkSize: 1, NumIters: 1})
	if err := s.Run(histInput(100), nil); err != nil {
		t.Fatal(err)
	}
	held := s.CombinationMap()
	if len(held) == 0 {
		t.Fatal("run left an empty combination map")
	}
	s.RecycleCombinationMap()
	if len(held) != 0 {
		t.Fatalf("recycle left %d entries visible through a held reference", len(held))
	}
	if reflect.ValueOf(s.CombinationMap()).Pointer() != reflect.ValueOf(held).Pointer() {
		t.Fatal("recycle replaced the combination map instead of clearing it")
	}
}
