package core

import (
	"context"
	"errors"
	"time"

	"github.com/scipioneer/smart/internal/memmodel"
	"github.com/scipioneer/smart/internal/obs"
)

// Feed hands one time-step's output partition to the analytics task in
// space sharing mode (the paper's feed). The partition is copied into a cell
// of the internal circular buffer — the one-copy cost that distinguishes
// space sharing from time sharing — and Feed blocks while the buffer is
// full, back-pressuring the simulation exactly as Section 3.2 describes.
func (s *Scheduler[In, Out]) Feed(in []In) error {
	start := time.Now()
	cell := make([]In, len(in))
	copy(cell, in)
	var alloc *memmodel.Allocation
	if s.args.Mem != nil {
		var err error
		alloc, err = s.args.Mem.Alloc("circular buffer cell", int64(len(in))*int64(elemSize[In]()))
		if err != nil {
			return err
		}
	}
	if err := s.buf.Put(feedItem[In]{data: cell, mem: alloc}); err != nil {
		alloc.Free()
		return err
	}
	// The feed span (copy + any blocked-on-full wait) goes to the observer
	// only, not to SubscribeSpans/OnPhase: it fires on the producer
	// goroutine, and the subscriber contract promises the coordinating
	// goroutine. The consumer-side "read" span covers the other end.
	s.obs.RecordSpan(obs.Span{Cat: "core", Name: "feed", Start: start, Dur: time.Since(start),
		Attrs: map[string]any{"elems": len(in)}})
	return nil
}

// CloseFeed signals that no further time-steps will be fed. Pending
// RunShared calls drain the buffer and then return ErrFeedClosed.
func (s *Scheduler[In, Out]) CloseFeed() {
	if s.buf != nil {
		s.buf.Close()
	}
}

// ErrFeedClosed is returned by RunShared once the feed is closed and the
// circular buffer drained.
var ErrFeedClosed = errors.New("core: feed closed")

// RunShared consumes the oldest buffered time-step and runs the analytics
// over it using gen_key — the space sharing counterpart of Run.
func (s *Scheduler[In, Out]) RunShared(out []Out) error {
	return s.runShared(out, false)
}

// RunShared2 is RunShared using gen_keys.
func (s *Scheduler[In, Out]) RunShared2(out []Out) error {
	return s.runShared(out, true)
}

func (s *Scheduler[In, Out]) runShared(out []Out, multi bool) error {
	start := time.Now()
	item, err := s.buf.Get()
	if err != nil {
		return ErrFeedClosed
	}
	// "read" is the phase the plain Run path never has: waiting on (and
	// dequeuing from) the circular buffer. Delivered on the consumer — the
	// coordinating goroutine — so it reaches OnPhase/SubscribeSpans too.
	s.phaseEvent("read", start)
	defer item.mem.Free()
	return s.run(context.Background(), item.data, out, multi)
}

// DrainFeed closes the feed and discards every time-step still buffered,
// releasing each cell's virtual memory allocation, and reports how many
// steps were dropped. Call it when the consumer abandons a fed stream early
// (an analytics error, a cancelled job): a consumed item's allocation is
// always freed by RunShared — even when the run fails — but items still
// sitting in the circular buffer would otherwise keep their memmodel charge
// alive for the scheduler's lifetime. Closing first means a concurrent
// producer cannot refill the buffer mid-drain; its Feed fails and frees its
// own allocation on the Put error path.
func (s *Scheduler[In, Out]) DrainFeed() int {
	if s.buf == nil {
		return 0
	}
	s.buf.Close()
	n := 0
	for {
		item, err := s.buf.Get()
		if err != nil {
			return n
		}
		item.mem.Free()
		n++
	}
}

// BufferStats exposes the circular buffer's produced/consumed counters and
// how often the producer blocked (zero values before the first Feed).
func (s *Scheduler[In, Out]) BufferStats() (produced, consumed, producerWaits int) {
	if s.buf == nil {
		return 0, 0, 0
	}
	return s.buf.Stats()
}

// BufferBlockedTime reports how long the space-sharing producer (Feed) has
// cumulatively blocked on a full circular buffer and the consumer
// (RunShared) on an empty one — the backpressure signal of Section 3.2.
func (s *Scheduler[In, Out]) BufferBlockedTime() (producer, consumer time.Duration) {
	if s.buf == nil {
		return 0, 0
	}
	return s.buf.BlockedTime()
}

// elemSize conservatively estimates the in-memory size of one element of
// type T for virtual memory accounting.
func elemSize[T any]() int {
	var v T
	switch any(v).(type) {
	case float64, int64, uint64, int, uint, complex64:
		return 8
	case float32, int32, uint32:
		return 4
	case int16, uint16:
		return 2
	case int8, uint8, bool:
		return 1
	default:
		return 16
	}
}
