package core

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/scipioneer/smart/internal/chunk"
)

// staticEngine is the paper's reference schedule (Section 3.2): each block is
// partitioned into one equal chunk-aligned split per thread, assigned up
// front. It is optimal when every unit chunk costs the same and is kept as
// the ablation baseline for the stealing engine; the default, so existing
// results are preserved bit for bit.
type staticEngine[In, Out any] struct {
	s *Scheduler[In, Out]
	// redMaps holds one segment store per thread; thread t's splits of every
	// block of the iteration accumulate into redMaps[t], exactly the
	// pre-engine behavior. The slots persist across iterations so recyclable
	// store implementations reuse their storage (see newSegStore).
	redMaps []redStore
}

func (e *staticEngine[In, Out]) name() string { return EngineStatic }

func (e *staticEngine[In, Out]) distribute(env *runEnv[In, Out]) {
	s := e.s
	if e.redMaps == nil {
		e.redMaps = make([]redStore, s.args.NumThreads)
	}
	for t := range e.redMaps {
		e.redMaps[t] = s.newSegStore(e.redMaps[t])
	}
	s.distributeInto(e.redMaps, env)
}

// reduceBlock partitions one block into per-thread splits and processes them
// in parallel (or sequentially under SchedArgs.Sequential, timing each split
// for the replay simulator).
func (e *staticEngine[In, Out]) reduceBlock(block chunk.Split, env *runEnv[In, Out]) error {
	s := e.s
	nt := s.args.NumThreads
	splits := chunk.Partition(block.Length, nt, s.args.ChunkSize)
	for i := range splits {
		splits[i].Start += block.Start
	}

	if s.args.Sequential || nt == 1 {
		for t, sp := range splits {
			start := time.Now()
			err := s.processSplit(sp, env.in, env.out, e.redMaps[t], env.multi, env.live, env.tracker)
			d := time.Since(start)
			s.stats.SplitTimes[t] += d
			s.stats.ReductionTime += d
			if err != nil {
				return err
			}
		}
		return nil
	}

	var wg sync.WaitGroup
	errs := make([]error, nt)
	for t := 0; t < nt; t++ {
		t := t
		wg.Add(1)
		go func() {
			defer wg.Done()
			if s.args.PinThreads {
				runtime.LockOSThread()
				defer runtime.UnlockOSThread()
			}
			work := func() {
				start := time.Now()
				errs[t] = s.processSplit(splits[t], env.in, env.out, e.redMaps[t], env.multi, env.live, env.tracker)
				d := time.Since(start)
				s.stats.SplitTimes[t] += d
				atomic.AddInt64((*int64)(&s.stats.ReductionTime), int64(d))
			}
			s.labelWorker(EngineStatic, work)
		}()
	}
	wg.Wait()
	return errors.Join(errs...)
}

func (e *staticEngine[In, Out]) segments() []redStore {
	segs := make([]redStore, len(e.redMaps))
	copy(segs, e.redMaps)
	return segs
}
