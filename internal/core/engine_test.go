package core

import (
	"bytes"
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"github.com/scipioneer/smart/internal/chunk"
)

func TestEngineSelection(t *testing.T) {
	s := MustNewScheduler[int, int64](bucketApp{width: 10}, SchedArgs{NumThreads: 2, ChunkSize: 1})
	if s.Engine() != EngineStatic {
		t.Fatalf("default engine = %q, want %q", s.Engine(), EngineStatic)
	}
	s = MustNewScheduler[int, int64](bucketApp{width: 10},
		SchedArgs{NumThreads: 2, ChunkSize: 1, Engine: EngineStealing})
	if s.Engine() != EngineStealing {
		t.Fatalf("engine = %q, want %q", s.Engine(), EngineStealing)
	}
	if _, err := NewScheduler[int, int64](bucketApp{width: 10},
		SchedArgs{NumThreads: 2, ChunkSize: 1, Engine: "fifo"}); err == nil {
		t.Fatal("unknown engine name accepted")
	}
}

// runBoth runs the same input through a static and a stealing scheduler and
// returns both schedulers plus their outputs.
func runBoth(t *testing.T, args SchedArgs, n int) (st, sl *Scheduler[int, int64], outStatic, outStealing []int64) {
	t.Helper()
	in := histInput(n)
	args.Engine = EngineStatic
	st = MustNewScheduler[int, int64](bucketApp{width: 10}, args)
	outStatic = make([]int64, 10)
	if err := st.Run(in, outStatic); err != nil {
		t.Fatal(err)
	}
	args.Engine = EngineStealing
	sl = MustNewScheduler[int, int64](bucketApp{width: 10}, args)
	outStealing = make([]int64, 10)
	if err := sl.Run(in, outStealing); err != nil {
		t.Fatal(err)
	}
	return st, sl, outStatic, outStealing
}

func TestStealingMatchesStatic(t *testing.T) {
	for _, nt := range []int{1, 2, 4, 7} {
		st, sl, a, b := runBoth(t, SchedArgs{NumThreads: nt, ChunkSize: 1}, 50_000)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("nt=%d bucket %d: static %d, stealing %d", nt, i, a[i], b[i])
			}
		}
		ea, err := st.EncodeCombinationMap()
		if err != nil {
			t.Fatal(err)
		}
		eb, err := sl.EncodeCombinationMap()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ea, eb) {
			t.Fatalf("nt=%d: encoded maps differ between engines", nt)
		}
		if got := sl.Stats().ChunksProcessed; got != 50_000 {
			t.Fatalf("nt=%d: stealing processed %d chunks, want 50000", nt, got)
		}
	}
}

func TestStealingMatchesStaticWithBlocks(t *testing.T) {
	args := SchedArgs{NumThreads: 4, ChunkSize: 1, BlockSize: 4096}
	_, sl, a, b := runBoth(t, args, 30_000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("bucket %d: static %d, stealing %d", i, a[i], b[i])
		}
	}
	if sl.Stats().BatchesClaimed == 0 {
		t.Fatal("stealing engine claimed no batches")
	}
}

// gateApp forces a deterministic steal: the worker that owns chunk 0 blocks
// on the gate, so its deque stays nearly full while the other worker drains
// its own split and must steal the blocked range's back half. Only a thief
// can reach the guard region of split 0 while the owner is parked, and its
// first stolen chunk opens the gate.
type gateApp struct {
	bucketApp
	gate  chan struct{}
	guard int // first chunk of the region only a thief can reach
	limit int // one past split 0 (chunks >= limit belong to other splits)
	once  sync.Once
}

func (a *gateApp) Accumulate(c chunk.Chunk, data []int, obj RedObj) {
	if c.Start >= a.guard && c.Start < a.limit {
		a.once.Do(func() { close(a.gate) })
	}
	if c.Start == 0 {
		<-a.gate
	}
	a.bucketApp.Accumulate(c, data, obj)
}

func TestStealingStealsFromStraggler(t *testing.T) {
	const n = 4096 // two splits of 2048 units at nt=2
	app := &gateApp{
		bucketApp: bucketApp{width: 10},
		gate:      make(chan struct{}),
		guard:     3 * (n / 2) / 4, // past any front batch the parked owner claimed
		limit:     n / 2,
	}
	s := MustNewScheduler[int, int64](app, SchedArgs{
		NumThreads: 2, ChunkSize: 1, Engine: EngineStealing,
	})
	out := make([]int64, 10)
	if err := s.Run(histInput(n), out); err != nil {
		t.Fatal(err)
	}
	st := s.Stats().Snapshot()
	if st.Steals == 0 {
		t.Fatal("no steal recorded despite a parked straggler")
	}
	if st.ChunksProcessed != n {
		t.Fatalf("processed %d chunks, want %d", st.ChunksProcessed, n)
	}
	// The result must be unaffected by who processed what.
	want := make([]int64, 10)
	ref := MustNewScheduler[int, int64](bucketApp{width: 10}, SchedArgs{NumThreads: 2, ChunkSize: 1})
	if err := ref.Run(histInput(n), want); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("bucket %d: stealing %d, static reference %d", i, out[i], want[i])
		}
	}
}

// TestStealingIterativeMatchesStatic runs the iterative k-means helper on
// integer-valued coordinates (exact float sums, so grouping cannot show)
// through both engines and requires identical centroids after every
// PostCombine round — the distributed-state path (stolen segments must see
// the iteration's centroids) is what this pins.
func TestStealingIterativeMatchesStatic(t *testing.T) {
	n := 12_000
	in := make([]float64, n)
	for i := range in {
		in[i] = float64((i*13)%97 + (i%3)*100)
	}
	run := func(engine string) []byte {
		s := MustNewScheduler[float64, float64](kmeans1D{k: 3}, SchedArgs{
			NumThreads: 4, ChunkSize: 1, NumIters: 4, Engine: engine,
			Extra: []float64{10, 100, 250},
		})
		if err := s.Run(in, nil); err != nil {
			t.Fatal(err)
		}
		enc, err := s.EncodeCombinationMap()
		if err != nil {
			t.Fatal(err)
		}
		return enc
	}
	if a, b := run(EngineStatic), run(EngineStealing); !bytes.Equal(a, b) {
		t.Fatal("k-means combination maps differ between engines after 4 iterations")
	}
}

// TestStealingCancelMidSteal cancels a stealing run while deques are still
// full and checks the contract: the run stops within a batch per thread
// (nothing near the full input is consumed) and no worker goroutine leaks.
// Run under -race this also exercises the abort/steal interleaving.
func TestStealingCancelMidSteal(t *testing.T) {
	const n = 400_000
	const cancelAt = 500
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	app := &cancellingApp{bucketApp: bucketApp{width: 10}, at: cancelAt, cancel: cancel}
	s := MustNewScheduler[int, int64](app, SchedArgs{
		NumThreads: 4, ChunkSize: 1, Engine: EngineStealing,
	})
	err := s.RunContext(ctx, histInput(n), nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if got := s.Stats().ChunksProcessed; got >= n/2 {
		t.Fatalf("run consumed %d of %d chunks after cancellation at %d", got, n, cancelAt)
	}
	// All reduction workers must have exited; give the runtime a moment to
	// retire them before declaring a leak.
	for i := 0; ; i++ {
		if runtime.NumGoroutine() <= before {
			break
		}
		if i > 100 {
			t.Fatalf("goroutines leaked: %d before run, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestStealingSequentialBitIdentical pins the Sequential degeneration: with
// one worker the stealing engine follows the static schedule exactly, so
// even grouping-sensitive arithmetic cannot diverge.
func TestStealingSequentialBitIdentical(t *testing.T) {
	in := histInput(10_000)
	enc := func(engine string) []byte {
		s := MustNewScheduler[int, int64](bucketApp{width: 7}, SchedArgs{
			NumThreads: 4, ChunkSize: 1, Sequential: true, Engine: engine,
		})
		if err := s.Run(in, nil); err != nil {
			t.Fatal(err)
		}
		b, err := s.EncodeCombinationMap()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	if a, b := enc(EngineStatic), enc(EngineStealing); !bytes.Equal(a, b) {
		t.Fatal("Sequential runs differ between engines")
	}
}

// TestStealingPartsExceedUnits covers the degenerate schedule where there
// are more threads than unit chunks: surplus deques are empty from the
// start and their segments carry only distribution clones.
func TestStealingPartsExceedUnits(t *testing.T) {
	in := histInput(3)
	s := MustNewScheduler[int, int64](bucketApp{width: 10}, SchedArgs{
		NumThreads: 8, ChunkSize: 1, Engine: EngineStealing,
	})
	out := make([]int64, 10)
	if err := s.Run(in, out); err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, v := range out {
		total += v
	}
	if total != 3 {
		t.Fatalf("counted %d elements, want 3", total)
	}
}
