package core

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/scipioneer/smart/internal/obs"
)

// TestRunRecordsPhaseSpansAndMetrics runs a scheduler against a private
// Observer and checks the span counters, latency histograms, and core
// metrics land in its registry.
func TestRunRecordsPhaseSpansAndMetrics(t *testing.T) {
	o := obs.New()
	s := MustNewScheduler[int, int64](bucketApp{width: 10}, SchedArgs{
		NumThreads: 2, ChunkSize: 1, NumIters: 3, Obs: o,
	})
	if err := s.Run(histInput(500), make([]int64, 10)); err != nil {
		t.Fatal(err)
	}

	r := o.Registry()
	if got := r.Counter(obs.SpanCounterName("reduction")).Value(); got != 3 {
		t.Fatalf("reduction spans = %d, want 3 (one per iteration)", got)
	}
	if got := r.Counter(obs.SpanCounterName("local combine")).Value(); got != 3 {
		t.Fatalf("local combine spans = %d, want 3", got)
	}
	if got := r.Counter(obs.SpanCounterName("convert")).Value(); got != 1 {
		t.Fatalf("convert spans = %d, want 1", got)
	}
	if got := r.Counter(obs.SpanCounterName("global combine")).Value(); got != 0 {
		t.Fatalf("global combine spans without a communicator = %d, want 0", got)
	}
	if h := r.Histogram(obs.SpanSecondsName("reduction"), obs.DurationBuckets); h.Count() != 3 {
		t.Fatalf("reduction latency samples = %d, want 3", h.Count())
	}
	// 500 single-key chunks per iteration, 3 iterations.
	if got := r.Counter("smart_core_keys_touched_total").Value(); got != 1500 {
		t.Fatalf("keys touched = %d, want 1500", got)
	}
	// Reduction-map sizes are sampled per thread per iteration.
	if h := r.Histogram("smart_core_redmap_entries", obs.SizeBuckets); h.Count() != 6 {
		t.Fatalf("redmap size samples = %d, want 6", h.Count())
	}
	if got := r.Counter("smart_core_runs_total").Value(); got != 1 {
		t.Fatalf("runs = %d, want 1", got)
	}
	if peak := r.Gauge("smart_core_live_redobjs").Peak(); peak <= 0 {
		t.Fatalf("live redobj peak = %d, want > 0", peak)
	}
}

// TestOnPhaseShimMatchesSpanStream checks the deprecated OnPhase callback
// — now a span-stream subscriber — still fires with the same phases and
// durations as SubscribeSpans.
func TestOnPhaseShimMatchesSpanStream(t *testing.T) {
	type ev struct {
		phase string
		d     time.Duration
	}
	var hook []ev
	var spans []obs.Span
	s := MustNewScheduler[int, int64](bucketApp{width: 10}, SchedArgs{
		NumThreads: 1, ChunkSize: 1, NumIters: 2, Obs: obs.New(),
		OnPhase: func(phase string, d time.Duration) { hook = append(hook, ev{phase, d}) },
	})
	s.SubscribeSpans(func(sp obs.Span) { spans = append(spans, sp) })
	if err := s.Run(histInput(100), make([]int64, 10)); err != nil {
		t.Fatal(err)
	}
	if len(hook) != len(spans) {
		t.Fatalf("OnPhase saw %d events, span stream %d", len(hook), len(spans))
	}
	for i := range hook {
		if hook[i].phase != spans[i].Name || hook[i].d != spans[i].Dur {
			t.Fatalf("event %d: OnPhase (%s, %v) != span (%s, %v)",
				i, hook[i].phase, hook[i].d, spans[i].Name, spans[i].Dur)
		}
	}
}

// TestSpaceSharingEmitsReadAndFeedSpans drives the Feed/RunShared path and
// checks the previously-unreported phases now show up: "feed" on the
// observer (producer side) and "read" on the full span stream (consumer
// side, so the OnPhase shim sees it too).
func TestSpaceSharingEmitsReadAndFeedSpans(t *testing.T) {
	o := obs.New()
	phases := map[string]int{}
	var mu sync.Mutex
	s := MustNewScheduler[int, int64](bucketApp{width: 10}, SchedArgs{
		NumThreads: 1, ChunkSize: 1, NumIters: 1, BufferCells: 2, Obs: o,
		OnPhase: func(phase string, _ time.Duration) {
			mu.Lock()
			phases[phase]++
			mu.Unlock()
		},
	})

	const steps = 3
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < steps; i++ {
			if err := s.Feed(histInput(50)); err != nil {
				t.Error(err)
				return
			}
		}
		s.CloseFeed()
	}()
	out := make([]int64, 10)
	for {
		err := s.RunShared(out)
		if err == ErrFeedClosed {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()

	if phases["read"] != steps {
		t.Fatalf("OnPhase read events = %d, want %d", phases["read"], steps)
	}
	r := o.Registry()
	if got := r.Counter(obs.SpanCounterName("feed")).Value(); got != steps {
		t.Fatalf("feed spans = %d, want %d", got, steps)
	}
	if got := r.Counter(obs.SpanCounterName("read")).Value(); got != steps {
		t.Fatalf("read spans = %d, want %d", got, steps)
	}
}

// TestTraceFileFromScheduler runs with a trace writer attached and checks
// the JSONL stream replays the phase sequence.
func TestTraceFileFromScheduler(t *testing.T) {
	o := obs.New()
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	o.SetTraceWriter(w)
	s := MustNewScheduler[int, int64](bucketApp{width: 10}, SchedArgs{
		NumThreads: 1, ChunkSize: 1, NumIters: 1, Obs: o,
	})
	if err := s.Run(histInput(200), make([]int64, 10)); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	var names []string
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var ev struct {
			Cat   string `json:"cat"`
			Name  string `json:"name"`
			DurNS int64  `json:"dur_ns"`
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("trace line %q: %v", line, err)
		}
		if ev.Cat != "core" || ev.DurNS < 0 {
			t.Fatalf("bad event: %+v", ev)
		}
		names = append(names, ev.Name)
	}
	want := []string{"reduction", "local combine", "convert"}
	if len(names) != len(want) {
		t.Fatalf("trace phases = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("trace phases = %v, want %v", names, want)
		}
	}
}
