package core

import (
	"encoding/binary"
	"testing"
	"testing/quick"

	"github.com/scipioneer/smart/internal/chunk"
)

// monoidApp folds values into per-key (sum, count, min, max) — a
// commutative monoid, which is exactly the algebraic class the Smart
// combination model promises to evaluate correctly under any partitioning.
type monoidApp struct{ keys int }

type monoidObj struct {
	sum, count, min, max int64
	init                 bool
}

func (o *monoidObj) Clone() RedObj { cp := *o; return &cp }
func (o *monoidObj) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 0, 33)
	for _, v := range []int64{o.sum, o.count, o.min, o.max} {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(v))
	}
	if o.init {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	return buf, nil
}
func (o *monoidObj) UnmarshalBinary(b []byte) error {
	o.sum = int64(binary.LittleEndian.Uint64(b))
	o.count = int64(binary.LittleEndian.Uint64(b[8:]))
	o.min = int64(binary.LittleEndian.Uint64(b[16:]))
	o.max = int64(binary.LittleEndian.Uint64(b[24:]))
	o.init = b[32] == 1
	return nil
}

func (o *monoidObj) add(v int64) {
	if !o.init {
		o.min, o.max, o.init = v, v, true
	} else {
		o.min = min(o.min, v)
		o.max = max(o.max, v)
	}
	o.sum += v
	o.count++
}

func (o *monoidObj) combine(p *monoidObj) {
	if !p.init {
		return
	}
	if !o.init {
		*o = *p
		return
	}
	o.sum += p.sum
	o.count += p.count
	o.min = min(o.min, p.min)
	o.max = max(o.max, p.max)
}

func (a monoidApp) NewRedObj() RedObj { return &monoidObj{} }
func (a monoidApp) GenKey(c chunk.Chunk, data []int64, _ CombMap) int {
	k := int(data[c.Start]) % a.keys
	if k < 0 {
		k += a.keys
	}
	return k
}
func (a monoidApp) Accumulate(c chunk.Chunk, data []int64, obj RedObj) {
	obj.(*monoidObj).add(data[c.Start])
}
func (a monoidApp) Merge(src, dst RedObj) { dst.(*monoidObj).combine(src.(*monoidObj)) }

// TestSchedulerMonoidProperty: for any input and any (threads, blockSize)
// configuration, the scheduler's per-key fold equals a direct sequential
// fold. This is the core correctness contract of the reduction-map design.
func TestSchedulerMonoidProperty(t *testing.T) {
	f := func(data []int64, threadsRaw, blockRaw, keysRaw uint8) bool {
		threads := int(threadsRaw%8) + 1
		blockSize := int(blockRaw) * 4
		keys := int(keysRaw%5) + 1
		app := monoidApp{keys: keys}
		s := MustNewScheduler[int64, int64](app, SchedArgs{
			NumThreads: threads, ChunkSize: 1, NumIters: 1, BlockSize: blockSize,
		})
		if err := s.Run(data, nil); err != nil {
			return false
		}

		want := make(map[int]*monoidObj)
		for _, v := range data {
			k := int(v) % keys
			if k < 0 {
				k += keys
			}
			if want[k] == nil {
				want[k] = &monoidObj{}
			}
			want[k].add(v)
		}
		got := s.CombinationMap()
		if len(got) != len(want) {
			return false
		}
		for k, w := range want {
			g, ok := got[k].(*monoidObj)
			if !ok {
				return false
			}
			if g.sum != w.sum || g.count != w.count || g.min != w.min || g.max != w.max {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestSchedulerMergeOrderIndependence: merging per-partition maps in any
// order yields the same result as one whole-input run — the property the
// tree and flat global combinations both rely on.
func TestSchedulerMergeOrderIndependence(t *testing.T) {
	f := func(data []int64, cuts [2]uint8) bool {
		if len(data) == 0 {
			return true
		}
		app := monoidApp{keys: 3}
		whole := MustNewScheduler[int64, int64](app, SchedArgs{NumThreads: 2, ChunkSize: 1, NumIters: 1})
		if err := whole.Run(data, nil); err != nil {
			return false
		}

		// Split into three parts at random cut points.
		c1 := int(cuts[0]) % (len(data) + 1)
		c2 := c1 + int(cuts[1])%(len(data)-c1+1)
		parts := [][]int64{data[:c1], data[c1:c2], data[c2:]}
		// Merge in reversed order.
		acc := MustNewScheduler[int64, int64](app, SchedArgs{NumThreads: 2, ChunkSize: 1, NumIters: 1})
		for i := len(parts) - 1; i >= 0; i-- {
			step := MustNewScheduler[int64, int64](app, SchedArgs{NumThreads: 2, ChunkSize: 1, NumIters: 1})
			if err := step.Run(parts[i], nil); err != nil {
				return false
			}
			acc.MergeCombinationMap(step.CombinationMap())
		}

		w, g := whole.CombinationMap(), acc.CombinationMap()
		if len(w) != len(g) {
			return false
		}
		for k, wo := range w {
			gobj, ok := g[k].(*monoidObj)
			if !ok {
				return false
			}
			wobj := wo.(*monoidObj)
			if gobj.sum != wobj.sum || gobj.count != wobj.count ||
				gobj.min != wobj.min || gobj.max != wobj.max {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
