package core

import (
	"bytes"
	"os"
	"testing"
)

// FuzzDecodeMap hardens the global-combination wire decoder: arbitrary
// bytes must produce either a valid map or an error — never a panic, a
// hang, or an absurd allocation (the entry-count bound).
func FuzzDecodeMap(f *testing.F) {
	// Seed with valid encodings and their mutations.
	m := CombMap{1: &countObj{n: 7}, -3: &countObj{n: 0}, 1 << 20: &countObj{n: 42}}
	valid, err := encodeMap(m)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{255, 255, 255, 255})
	f.Add(valid[:len(valid)-3])
	f.Add(append(append([]byte{}, valid...), 9))

	f.Fuzz(func(t *testing.T, data []byte) {
		decoded, err := decodeMap(data, func() RedObj { return &countObj{} })
		if err != nil {
			return
		}
		// Valid decodes must re-encode to a decodable payload of the same
		// content.
		re, err := encodeMap(decoded)
		if err != nil {
			t.Fatalf("re-encode of valid decode failed: %v", err)
		}
		back, err := decodeMap(re, func() RedObj { return &countObj{} })
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(back) != len(decoded) {
			t.Fatalf("roundtrip changed size: %d vs %d", len(back), len(decoded))
		}
	})
}

// FuzzCheckpointMagic ensures the checkpoint reader never mistakes
// arbitrary content for a checkpoint (and never panics on one that has the
// magic but garbage after it).
func FuzzCheckpointMagic(f *testing.F) {
	f.Add([]byte("SMARTCK1"))
	f.Add([]byte("SMARTCK1junk"))
	f.Add([]byte("not a checkpoint"))
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := dir + "/f"
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		s := MustNewScheduler[int, int64](bucketApp{width: 10},
			SchedArgs{NumThreads: 1, ChunkSize: 1, NumIters: 1})
		if err := s.ReadCheckpoint(path); err == nil {
			// Acceptable only if the payload after the magic is a valid map.
			if !bytes.HasPrefix(data, checkpointMagic) {
				t.Fatal("accepted a file without the magic")
			}
		}
	})
}
