package core

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"

	"github.com/scipioneer/smart/internal/mpi"
	"github.com/scipioneer/smart/internal/obs"
)

// TestClusterTraceStitching is the end-to-end acceptance run for distributed
// tracing: a 4-rank in-process world executes a global-combine job under a
// root span started on rank 0. The trace context spreads to the other ranks
// through the first collective's frames, every rank records its phase and
// collective spans into its own JSONL buffer, and rank 0 stitches the four
// streams into one tree — every span must walk its parent links back to the
// single root, and the Chrome export must be valid trace_event JSON.
func TestClusterTraceStitching(t *testing.T) {
	const ranks = 4
	comms := mpi.NewWorld(ranks)
	full := histInput(1200)
	per := len(full) / ranks

	observers := make([]*obs.Observer, ranks)
	bufs := make([]bytes.Buffer, ranks)
	for r := range observers {
		observers[r] = obs.New()
		observers[r].SetTraceWriter(&bufs[r])
	}

	// Rank 0 opens the root job span and stamps its context on its
	// communicator before any collective runs.
	root := observers[0].StartSpan(obs.TraceContext{}, "job", "cluster-run")
	root.SetRank(0)
	comms[0].SetTraceContext(root.Context())
	traceID := root.Context().TraceID

	var (
		wg       sync.WaitGroup
		gatherMu sync.Mutex
		cluster  *obs.ClusterSnapshot
		perRank  = make([]int64, ranks)
	)
	for r := 0; r < ranks; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer comms[r].Close()
			comms[r].SetTracer(observers[r])
			// The barrier carries the trace context from rank 0 to the rest
			// of the world; afterwards every rank parents its scheduler
			// phases under the root span it adopted.
			if err := comms[r].Barrier(); err != nil {
				t.Errorf("rank %d barrier: %v", r, err)
				return
			}
			tc := comms[r].TraceContext()
			if !tc.Valid() || tc.TraceID != traceID {
				t.Errorf("rank %d did not adopt the trace: got %+v", r, tc)
				return
			}
			s := MustNewScheduler[int, int64](bucketApp{width: 10},
				SchedArgs{NumThreads: 2, ChunkSize: 1, NumIters: 1, Comm: comms[r], Obs: observers[r]})
			s.SetTraceContext(tc)
			out := make([]int64, 10)
			if err := s.Run(full[r*per:(r+1)*per], out); err != nil {
				t.Errorf("rank %d run: %v", r, err)
				return
			}
			perRank[r] = observers[r].Registry().Counter(obs.SpanCounterName("reduction")).Value()
			snap, err := obs.Gather(comms[r], observers[r].Registry())
			if err != nil {
				t.Errorf("rank %d gather: %v", r, err)
				return
			}
			if r == 0 {
				gatherMu.Lock()
				cluster = snap
				gatherMu.Unlock()
				root.End()
			} else if snap != nil {
				t.Errorf("rank %d: non-root Gather returned a snapshot", r)
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Cluster metrics: the merged counter must equal the per-rank sum.
	if cluster == nil {
		t.Fatal("rank 0 Gather returned no cluster snapshot")
	}
	if got := len(cluster.Ranks); got != ranks {
		t.Fatalf("cluster snapshot has %d ranks, want %d", got, ranks)
	}
	var wantSum int64
	for _, v := range perRank {
		if v == 0 {
			t.Fatal("a rank recorded zero reduction spans")
		}
		wantSum += v
	}
	if got := cluster.Merged.Counters[obs.SpanCounterName("reduction")]; got != wantSum {
		t.Fatalf("merged reduction counter = %d, want per-rank sum %d", got, wantSum)
	}

	// Stitch the four JSONL streams into one tree.
	events := make([][]obs.TraceEvent, ranks)
	for r := range bufs {
		evs, err := obs.ReadTraceJSONL(&bufs[r])
		if err != nil {
			t.Fatalf("rank %d trace parse: %v", r, err)
		}
		events[r] = evs
	}
	stitched := obs.StitchTraces(traceID, events...)
	if len(stitched) == 0 {
		t.Fatal("stitched trace is empty")
	}

	byID := make(map[uint64]obs.TraceEvent, len(stitched))
	roots := 0
	for _, ev := range stitched {
		if ev.Trace != traceID {
			t.Fatalf("event %s/%s has trace %x, want %x", ev.Cat, ev.Name, ev.Trace, traceID)
		}
		byID[ev.ID] = ev
		if ev.Parent == 0 {
			roots++
			if ev.Name != "cluster-run" {
				t.Fatalf("unexpected root span %s/%s", ev.Cat, ev.Name)
			}
		}
	}
	if roots != 1 {
		t.Fatalf("stitched trace has %d roots, want exactly 1", roots)
	}
	// Every span must reach the root through resolvable parent links.
	for _, ev := range stitched {
		cur, hops := ev, 0
		for cur.Parent != 0 {
			next, ok := byID[cur.Parent]
			if !ok {
				t.Fatalf("span %s/%s (rank %d) has dangling parent %x", ev.Cat, ev.Name, ev.Rank, cur.Parent)
			}
			cur = next
			if hops++; hops > len(stitched) {
				t.Fatalf("parent cycle reached from span %s/%s", ev.Cat, ev.Name)
			}
		}
		if cur.Name != "cluster-run" {
			t.Fatalf("span %s/%s does not chain to the job root", ev.Cat, ev.Name)
		}
	}
	// Every rank must have contributed collective child spans and its
	// global-combine phase span.
	for r := 0; r < ranks; r++ {
		var mpiSpans, gc int
		for _, ev := range stitched {
			if ev.Rank != r {
				continue
			}
			if ev.Cat == "mpi" {
				mpiSpans++
			}
			if ev.Name == "global combine" {
				gc++
			}
		}
		if mpiSpans == 0 {
			t.Errorf("rank %d contributed no collective spans", r)
		}
		if gc == 0 {
			t.Errorf("rank %d contributed no global combine span", r)
		}
	}

	// The Chrome export must be valid trace_event JSON with process metadata
	// for each rank and one complete ("X") event per stitched span.
	var chrome bytes.Buffer
	if err := obs.WriteChromeTrace(&chrome, stitched); err != nil {
		t.Fatalf("chrome export: %v", err)
	}
	var parsed struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			PID  int    `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(chrome.Bytes(), &parsed); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	var meta, complete int
	pids := make(map[int]bool)
	for _, ev := range parsed.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
		case "X":
			complete++
			pids[ev.PID] = true
		default:
			t.Fatalf("unexpected chrome phase %q", ev.Ph)
		}
	}
	if complete != len(stitched) {
		t.Fatalf("chrome trace has %d X events, want %d", complete, len(stitched))
	}
	if meta < ranks || len(pids) != ranks {
		t.Fatalf("chrome trace covers %d pids with %d metadata events, want %d ranks", len(pids), meta, ranks)
	}
}
