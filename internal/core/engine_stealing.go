package core

import (
	"errors"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/scipioneer/smart/internal/chunk"
	"github.com/scipioneer/smart/internal/obs"
)

// stealMinBatch floors the adaptive batch size (in unit chunks). Below this
// the deque CAS per claim starts to show against the static engine's free
// pointer increment on chunk-per-element workloads.
const stealMinBatch = 8

// stealingEngine executes the reduction phase with work stealing: every
// block starts from the exact ranges the static engine would use (one
// chunk-aligned split per thread), but each range lives in a BatchDeque.
// Owners claim adaptive batches from the front of their own deque — coarse
// while the queue is full, shrinking toward stealMinBatch as it drains
// (chunk.AdaptiveBatch) — and process them in chunk order. A thread whose
// deque runs dry steals the back half of the fullest remaining range into a
// new deque (stealable in turn) and a new segment seeded with its own clone
// of the combination map, then continues as that range's owner.
//
// Determinism: front claims keep every segment's accumulation in ascending
// chunk order, and a steal splits a contiguous range into two contiguous
// halves — so ordering segments by their first input offset (see segments)
// makes each key's partials merge in ascending input order, the same order
// the static engine produces. A run with zero steals groups contributions
// exactly as the static engine's splits and is therefore bit-identical to
// it; runs with steals add segment boundaries inside a range, which only
// shows where the arithmetic is grouping-sensitive (floating-point rounding,
// early-emission triggers that straddle a boundary convert at the end of the
// run instead).
type stealingEngine[In, Out any] struct {
	s *Scheduler[In, Out]
	// primary holds the nt per-thread segments created at distribute.
	primary []stealSeg
	// primed records whether primary start keys were set (first block).
	primed bool
	// mu guards stolen, which worker goroutines append to at steal time.
	mu     sync.Mutex
	stolen []stealSeg
}

// stealSeg is one reduction-store segment plus the element offset of the
// first unit it owned, which orders segments for local combination.
type stealSeg struct {
	m        redStore
	startKey int
}

func (e *stealingEngine[In, Out]) name() string { return EngineStealing }

func (e *stealingEngine[In, Out]) distribute(env *runEnv[In, Out]) {
	s := e.s
	nt := s.args.NumThreads
	if e.primary == nil {
		e.primary = make([]stealSeg, nt)
	}
	stores := make([]redStore, nt)
	for t := range stores {
		stores[t] = s.newSegStore(e.primary[t].m)
		e.primary[t] = stealSeg{m: stores[t]}
	}
	e.stolen = nil
	e.primed = false
	s.distributeInto(stores, env)
}

func (e *stealingEngine[In, Out]) reduceBlock(block chunk.Split, env *runEnv[In, Out]) error {
	s := e.s
	nt := s.args.NumThreads
	cs := s.args.ChunkSize
	splits := chunk.Partition(block.Length, nt, cs)
	for i := range splits {
		splits[i].Start += block.Start
	}
	if !e.primed {
		for t := range e.primary {
			e.primary[t].startKey = splits[t].Start
		}
		e.primed = true
	}

	if s.args.Sequential || nt == 1 {
		// One worker has nobody to steal from: drain each range in order on
		// the calling goroutine — exactly the static schedule, so results
		// are bit-identical — while still timing each split for the replay
		// simulator. Each split counts as one claimed batch.
		for t, sp := range splits {
			start := time.Now()
			err := s.processSplit(sp, env.in, env.out, e.primary[t].m, env.multi, env.live, env.tracker)
			d := time.Since(start)
			s.stats.SplitTimes[t] += d
			s.stats.ReductionTime += d
			atomic.AddInt64(&s.stats.BatchesClaimed, 1)
			s.met.batches.Add(1)
			if err != nil {
				return err
			}
		}
		return nil
	}

	// Unit indices are block-global: unit u covers elements
	// [block.Start+u·cs, block.Start+(u+1)·cs) ∩ block, so a stolen unit
	// range translates to an element span with block.UnitRange regardless of
	// which split it came from.
	// own is read after workers spawn, so it must not alias reg.deques —
	// a concurrent steal appends to the registry and may move its backing
	// array.
	own := make([]*chunk.BatchDeque, nt)
	for t, sp := range splits {
		u0 := (sp.Start - block.Start) / cs
		own[t] = chunk.NewBatchDeque(u0, u0+sp.NumChunks(cs))
	}
	reg := &stealRegistry{deques: append(make([]*chunk.BatchDeque, 0, 2*nt), own...)}

	var abort atomic.Bool
	var wg sync.WaitGroup
	errs := make([]error, nt)
	for t := 0; t < nt; t++ {
		t := t
		wg.Add(1)
		go func() {
			defer wg.Done()
			if s.args.PinThreads {
				runtime.LockOSThread()
				defer runtime.UnlockOSThread()
			}
			s.labelWorker(EngineStealing, func() {
				errs[t] = e.runWorker(t, block, own[t], e.primary[t].m, reg, &abort, env)
			})
		}()
	}
	wg.Wait()
	return errors.Join(errs...)
}

// runWorker is one reduction worker: drain the owned deque in adaptive
// batches, then steal; repeat until no deque holds stealable work. Ranges
// only shrink, so an empty scan is a stable exit condition. On error the
// worker raises abort, which stops every worker within one batch.
func (e *stealingEngine[In, Out]) runWorker(t int, block chunk.Split, d *chunk.BatchDeque,
	seg redStore, reg *stealRegistry, abort *atomic.Bool, env *runEnv[In, Out]) error {

	s := e.s
	nt := s.args.NumThreads
	cs := s.args.ChunkSize
	wallStart := time.Now()
	var busy time.Duration
	var batches, steals int64
	var err error

steal:
	for {
		for {
			if abort.Load() {
				break steal
			}
			u0, n := d.PopFront(chunk.AdaptiveBatch(d.Remaining(), nt, stealMinBatch))
			if n == 0 {
				break
			}
			batches++
			s.met.queueDepth.Set(int64(d.Remaining()))
			start := time.Now()
			perr := s.processSplit(block.UnitRange(cs, u0, n), env.in, env.out, seg,
				env.multi, env.live, env.tracker)
			busy += time.Since(start)
			if perr != nil {
				err = perr
				abort.Store(true)
				break steal
			}
		}
		// Own deque dry: steal the back half of the fullest range into a new
		// deque (other threads may steal from it in turn) and a new segment
		// seeded with a fresh combination-map clone — stolen ranges need the
		// same distributed state (centroids, weights) the primary segments
		// received. Cloning reads the combination map concurrently with
		// reduction, which is safe: reduction never mutates its objects.
		victim := reg.richest()
		if victim == nil {
			break
		}
		u0, n := victim.StealHalf()
		if n == 0 {
			continue // lost the race to another thief or the owner; rescan
		}
		steals++
		seg = s.cloneComSegment(env)
		d = chunk.NewBatchDeque(u0, u0+n)
		e.mu.Lock()
		e.stolen = append(e.stolen, stealSeg{m: seg, startKey: block.Start + u0*cs})
		e.mu.Unlock()
		reg.add(d)
	}

	s.stats.SplitTimes[t] += busy
	atomic.AddInt64((*int64)(&s.stats.ReductionTime), int64(busy))
	atomic.AddInt64(&s.stats.BatchesClaimed, batches)
	atomic.AddInt64(&s.stats.Steals, steals)
	s.met.batches.Add(batches)
	s.met.steals.Add(steals)
	wall := time.Since(wallStart)
	// One busy/idle span per worker per block, to the observer only (this
	// runs on the worker goroutine; SubscribeSpans promises the coordinating
	// goroutine). Dur is busy time; idle_ns is the wall remainder spent on
	// deque operations, steal scans, and waiting out the block.
	s.obs.RecordSpan(obs.Span{Cat: "core", Name: "reduction worker", Start: wallStart, Dur: busy,
		Attrs: map[string]any{"thread": t, "idle_ns": (wall - busy).Nanoseconds(),
			"batches": batches, "steals": steals}})
	return err
}

func (e *stealingEngine[In, Out]) segments() []redStore {
	segs := make([]stealSeg, 0, len(e.primary)+len(e.stolen))
	segs = append(segs, e.primary...)
	segs = append(segs, e.stolen...)
	// Ascending first-owned-offset order; the stable sort keeps the empty
	// trailing primaries (parts > units) in thread order. With BlockSize > 0
	// primaries are keyed by their first block's range, so cross-block order
	// is per-segment, not global — merge semantics do not depend on it.
	sort.SliceStable(segs, func(i, j int) bool { return segs[i].startKey < segs[j].startKey })
	out := make([]redStore, len(segs))
	for i := range segs {
		out[i] = segs[i].m
	}
	// Primary stores stay in their slots for recycling at the next
	// distribute; stolen segments are one-iteration objects.
	e.stolen = nil
	return out
}

// cloneComSegment builds a fresh segment reduction store seeded with a deep
// clone of the combination map, charging the clones to the live-object and
// memory accounting exactly as the distribute step does. It runs on a
// stealing worker concurrently with reduction, which is safe: forEachIn only
// reads the combination store, and reduction never mutates it.
func (s *Scheduler[In, Out]) cloneComSegment(env *runEnv[In, Out]) redStore {
	m := s.newSegStore(nil)
	for si := 0; si < s.store.numShards(); si++ {
		s.store.forEachIn(si, func(k int, obj RedObj) {
			c := m.insertClone(k, obj)
			env.live.add(1)
			env.tracker.add(int64(s.sizeOfRedObj(c)))
		})
	}
	return m
}

// stealRegistry is the set of live deques of one block. Appends and scans
// take a mutex — steals are rare by design, so the lock never sees the
// per-batch hot path.
type stealRegistry struct {
	mu     sync.Mutex
	deques []*chunk.BatchDeque
}

func (r *stealRegistry) add(d *chunk.BatchDeque) {
	r.mu.Lock()
	r.deques = append(r.deques, d)
	r.mu.Unlock()
}

// richest returns the deque with the most remaining units, or nil when no
// deque holds at least 2·stealMinBatch. Smaller tails are left to their
// owner: stealing one costs a combination-map clone plus a new segment in
// the local combine for at most stealMinBatch units of relief, which is a
// net loss — it is where the stealing engine's uniform-workload overhead
// came from before the floor.
func (r *stealRegistry) richest() *chunk.BatchDeque {
	r.mu.Lock()
	defer r.mu.Unlock()
	var best *chunk.BatchDeque
	bestRem := 2*stealMinBatch - 1
	for _, d := range r.deques {
		if rem := d.Remaining(); rem > bestRem {
			best, bestRem = d, rem
		}
	}
	return best
}
