package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Map implementation names accepted by SchedArgs.MapImpl.
const (
	// MapGo keys reduction and combination state with Go's built-in map —
	// the pre-store behavior, kept bit- and allocation-compatible as the
	// ablation baseline.
	MapGo = "gomap"
	// MapArena keys state with a Fibonacci-hashed open-addressing index over
	// a contiguous per-shard arena of objects: no per-key map allocation,
	// recycled segment storage across iterations, and slab-allocated objects
	// for FixedSizeObj applications.
	MapArena = "arena"
)

// redStore is the reduction/combination-map storage layer behind the engine:
// everything between the scheduler and the bytes — lookup-or-insert on the
// reduction hot path, the clone-seed of the per-iteration distribution step,
// the shard-parallel combine-into, iterate-in-key-order for the canonical
// serialization, and the flat-view resync at application boundaries.
//
// Sharding is part of the contract, not an implementation detail: every
// implementation partitions keys with shardIndex over the same shard count,
// so shard si of any two stores of one scheduler covers the same key set and
// the shard-parallel phases stay lock-free. Per-shard state must therefore be
// independent: concurrent calls are allowed as long as no two goroutines
// touch keys of the same shard (the forShards discipline).
//
// Iteration order inside a shard is unspecified — the pipeline never depends
// on it (serialization sorts keys, per-key phases are order-independent) —
// which is exactly the freedom that lets arenaStore lay objects out in
// insertion order.
type redStore interface {
	// numShards is the shard count S every store of one scheduler shares.
	numShards() int
	// shardLen is the live entry count of one shard (capacity hints).
	shardLen(si int) int
	// size is the total live entry count.
	size() int
	// lookup returns the object stored under key.
	lookup(key int) (RedObj, bool)
	// lookupOrCreate returns the object under key, creating one with the
	// store's factory on first touch; created reports a fresh object.
	lookupOrCreate(key int) (obj RedObj, created bool)
	// insert stores obj under key, replacing any present object. The store
	// aliases obj; it does not copy.
	insert(key int, obj RedObj)
	// insertClone stores a deep copy of src under key — the distribution
	// step's clone-seed — and returns the stored copy for accounting.
	insertClone(key int, src RedObj) RedObj
	// remove erases key (early emission).
	remove(key int)
	// clear empties the store, retaining internal capacity for reuse.
	clear()
	// reseed replaces the contents with flat's entries (aliased, not cloned),
	// pre-sizing storage from len(flat) where the implementation can.
	reseed(flat CombMap)
	// flattenInto rebuilds the flat view in dst, preserving dst's identity
	// (holders of CombinationMap keep seeing current state). dst's capacity
	// is retained across the clear+refill, so steady-state resyncs do not
	// re-grow it.
	flattenInto(dst CombMap)
	// forEachIn calls fn for every live entry of shard si, in unspecified
	// order. fn must not mutate the store.
	forEachIn(si int, fn func(key int, obj RedObj))
	// orderedKeys returns every live key in ascending order, reusing dst's
	// capacity (dst may be nil) — the serialization contract that keeps wire
	// and checkpoint bytes independent of the store implementation.
	orderedKeys(dst []int) []int
	// orderedShardKeys is orderedKeys restricted to shard si, feeding the
	// per-shard global-combination segments.
	orderedShardKeys(si int, dst []int) []int
	// takeStats drains the store's counters accumulated since the last call.
	// Counters are maintained per shard without atomics; callers must drain
	// only from the coordinating goroutine, after phase workers joined.
	takeStats() redStoreStats
}

// redStoreStats is the per-phase counter block a store surrenders via
// takeStats; the scheduler flushes it into the obs registry at phase ends so
// the per-chunk hot path never touches an atomic.
type redStoreStats struct {
	// probes/lookups accumulate open-addressing probe steps per keyed
	// operation; probes/lookups is the mean probe sequence length
	// (smart_core_store_probe_len). Zero for gomap.
	probes, lookups int64
	// arenaBytes is the current footprint of the store's index and arena
	// arrays (smart_core_arena_bytes); the objects themselves are charged
	// through the memmodel tracker like any other implementation's.
	arenaBytes int64
}

// FixedSizeObj is an opt-in capability of reduction objects whose in-memory
// state has a fixed width (no variable-length payload: histogram buckets,
// moments, sum/count windows). The arena store exploits it for an inline
// SoA-style layout: fresh objects are carved from slabs — one backing
// allocation serving many objects, laid out contiguously — and the
// per-iteration distribution step copies state with Assign instead of
// allocating through Clone.
//
// Contracts: NewSlab's objects must be indistinguishable from zero-valued
// objects of the receiver's concrete type, and Assign must leave the receiver
// exactly equal to what src.Clone() would have produced. Applications opting
// in must keep every object in their maps the one concrete type (the Merge
// contract already demands this in practice).
type FixedSizeObj interface {
	RedObj
	// NewSlab returns n fresh objects of the receiver's concrete type backed
	// by one contiguous allocation. The receiver is only a prototype; its
	// state is not read.
	NewSlab(n int) []RedObj
	// Assign replaces the receiver's state with a deep copy of src, which
	// must have the receiver's concrete type.
	Assign(src RedObj)
}

// newRedStore constructs the store selected by a validated SchedArgs.MapImpl
// value. create is the application's reduction-object factory, bound once so
// lookupOrCreate never builds a method value on the hot path.
func newRedStore(impl string, nshards int, create func() RedObj) redStore {
	switch impl {
	case MapArena:
		return newArenaStore(nshards, create)
	case MapGo:
		m := newShardedMap(nshards)
		m.create = create
		return m
	}
	// validate has already rejected anything else.
	panic(fmt.Sprintf("core: unknown map implementation %q", impl))
}

// forShards runs fn(shard index) for every one of n shards on up to workers
// goroutines and reports each shard's duration — the parallel driver of every
// shard-parallel phase, independent of which store implementation backs the
// shards. With workers <= 1 the shards run serially on the calling goroutine
// (the Sequential-mode and single-thread path). The goroutine count is
// additionally clamped to GOMAXPROCS: the shard work is pure CPU, so
// goroutines beyond the schedulable parallelism only add handoff overhead
// (unlike the reduction workers, whose count is part of the configured
// execution model).
func forShards(n, workers int, fn func(shard int)) []time.Duration {
	if p := runtime.GOMAXPROCS(0); workers > p {
		workers = p
	}
	durs := make([]time.Duration, n)
	if workers <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			start := time.Now()
			fn(i)
			durs[i] = time.Since(start)
		}
		return durs
	}
	if workers > n {
		workers = n
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				start := time.Now()
				fn(i)
				durs[i] = time.Since(start)
			}
		}()
	}
	wg.Wait()
	return durs
}
