package core

import (
	"fmt"

	"github.com/scipioneer/smart/internal/chunk"
)

// Engine names accepted by SchedArgs.Engine.
const (
	// EngineStatic is the paper's reference schedule: every block is cut
	// into one equal chunk-aligned split per thread, fixed up front.
	EngineStatic = "static"
	// EngineStealing is the work-stealing schedule: the same initial ranges,
	// but threads claim adaptive chunk batches from a deque and steal the
	// back half of a straggler's remaining range when their own runs dry.
	EngineStealing = "stealing"
)

// runEnv bundles the per-run state the scheduler threads through its
// execution engine: the input and output arrays, the key-generation mode,
// and the live-object and memory accounting shared by every worker.
type runEnv[In, Out any] struct {
	in      []In
	out     []Out
	multi   bool
	live    *liveCounter
	tracker *memTracker
}

// engine is the pluggable reduction-phase executor. The scheduler's run loop
// owns the phase sequence (distribute → reduce blocks → local combine →
// global combine → post-combine → convert); the engine owns how reduction
// work is assigned to threads and which reduction maps ("segments") it
// accumulates into. Everything downstream of reduction is engine-agnostic:
// local combination folds whatever segments the engine produced.
type engine[In, Out any] interface {
	// name reports the SchedArgs.Engine value that selected this engine.
	name() string
	// distribute prepares the engine's segment reduction maps for one
	// iteration, deep-cloning the combination map into each (the paper's
	// per-iteration distribution step). Called once per iteration, before
	// the first reduceBlock.
	distribute(env *runEnv[In, Out])
	// reduceBlock consumes one block of the input, accumulating into the
	// engine's segments. Called serially, once per block.
	reduceBlock(block chunk.Split, env *runEnv[In, Out]) error
	// segments surrenders every reduction map populated since distribute,
	// ordered by the input offset of the range that fed it — local
	// combination merges them in this order, so each key's partial results
	// merge in ascending input order regardless of which thread produced
	// them. The engine drops its own references; the caller owns the maps.
	segments() []*shardedMap
}

// newEngine constructs the engine selected by the (defaulted, validated)
// scheduler arguments.
func newEngine[In, Out any](s *Scheduler[In, Out]) engine[In, Out] {
	switch s.args.Engine {
	case EngineStealing:
		return &stealingEngine[In, Out]{s: s}
	case EngineStatic:
		return &staticEngine[In, Out]{s: s}
	}
	// validate has already rejected anything else.
	panic(fmt.Sprintf("core: unknown engine %q", s.args.Engine))
}

// distributeInto deep-clones the combination map into every target reduction
// map, shard-parallel: each worker clones its shard for every target, so the
// per-iteration clone cost scales with cores instead of riding the
// coordinating goroutine. Shared by both engines for their primary segments.
func (s *Scheduler[In, Out]) distributeInto(maps []*shardedMap, env *runEnv[In, Out]) {
	s.shards.forEachShard(s.phaseWorkers(), func(si int) {
		for k, obj := range s.shards.shards[si] {
			for t := range maps {
				c := obj.Clone()
				maps[t].shards[si][k] = c
				env.live.add(1)
				env.tracker.add(int64(s.sizeOfRedObj(c)))
			}
		}
	})
}
