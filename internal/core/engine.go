package core

import (
	"fmt"

	"github.com/scipioneer/smart/internal/chunk"
)

// Engine names accepted by SchedArgs.Engine.
const (
	// EngineStatic is the paper's reference schedule: every block is cut
	// into one equal chunk-aligned split per thread, fixed up front.
	EngineStatic = "static"
	// EngineStealing is the work-stealing schedule: the same initial ranges,
	// but threads claim adaptive chunk batches from a deque and steal the
	// back half of a straggler's remaining range when their own runs dry.
	EngineStealing = "stealing"
)

// runEnv bundles the per-run state the scheduler threads through its
// execution engine: the input and output arrays, the key-generation mode,
// and the live-object and memory accounting shared by every worker.
type runEnv[In, Out any] struct {
	in      []In
	out     []Out
	multi   bool
	live    *liveCounter
	tracker *memTracker
}

// engine is the pluggable reduction-phase executor. The scheduler's run loop
// owns the phase sequence (distribute → reduce blocks → local combine →
// global combine → post-combine → convert); the engine owns how reduction
// work is assigned to threads and which reduction maps ("segments") it
// accumulates into. Everything downstream of reduction is engine-agnostic:
// local combination folds whatever segments the engine produced.
type engine[In, Out any] interface {
	// name reports the SchedArgs.Engine value that selected this engine.
	name() string
	// distribute prepares the engine's segment reduction maps for one
	// iteration, deep-cloning the combination map into each (the paper's
	// per-iteration distribution step). Called once per iteration, before
	// the first reduceBlock.
	distribute(env *runEnv[In, Out])
	// reduceBlock consumes one block of the input, accumulating into the
	// engine's segments. Called serially, once per block.
	reduceBlock(block chunk.Split, env *runEnv[In, Out]) error
	// segments surrenders every reduction store populated since distribute,
	// ordered by the input offset of the range that fed it — local
	// combination merges them in this order, so each key's partial results
	// merge in ascending input order regardless of which thread produced
	// them. The caller owns the stores until the next distribute; the engine
	// may retain references to its per-thread slots so a recyclable store
	// implementation (arena) can reuse their storage next iteration.
	segments() []redStore
}

// newEngine constructs the engine selected by the (defaulted, validated)
// scheduler arguments.
func newEngine[In, Out any](s *Scheduler[In, Out]) engine[In, Out] {
	switch s.args.Engine {
	case EngineStealing:
		return &stealingEngine[In, Out]{s: s}
	case EngineStatic:
		return &staticEngine[In, Out]{s: s}
	}
	// validate has already rejected anything else.
	panic(fmt.Sprintf("core: unknown engine %q", s.args.Engine))
}

// distributeInto deep-clones the combination map into every target reduction
// store, shard-parallel: each worker clones its shard for every target, so
// the per-iteration clone cost scales with cores instead of riding the
// coordinating goroutine. Shared by both engines for their primary segments.
// insertClone is the store's clone-seed: gomap clones through RedObj.Clone,
// arena assigns into slab slots for FixedSizeObj applications.
func (s *Scheduler[In, Out]) distributeInto(stores []redStore, env *runEnv[In, Out]) {
	forShards(s.store.numShards(), s.phaseWorkers(), func(si int) {
		s.store.forEachIn(si, func(k int, obj RedObj) {
			for t := range stores {
				c := stores[t].insertClone(k, obj)
				env.live.add(1)
				env.tracker.add(int64(s.sizeOfRedObj(c)))
			}
		})
	})
}

// newSegStore builds one engine segment store, recycling prev where the
// implementation supports it. The gomap baseline keeps allocating fresh maps
// every distribute — the pre-store behavior the ablation benchmarks compare
// against — though each shard is now pre-sized to the combination shard it
// is about to receive a clone of. The arena implementation instead clears
// prev in place, reusing its index, arena, and slab storage.
func (s *Scheduler[In, Out]) newSegStore(prev redStore) redStore {
	if s.args.MapImpl == MapArena {
		if a, ok := prev.(*arenaStore); ok {
			a.clear()
			return a
		}
		return newArenaStore(s.store.numShards(), s.newObj)
	}
	m := newShardedMap(s.store.numShards())
	m.create = s.newObj
	if s.storeFresh {
		for si := range m.shards {
			if l := s.store.shardLen(si); l > 0 {
				m.shards[si] = make(CombMap, l)
			}
		}
	}
	return m
}
