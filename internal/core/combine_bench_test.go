package core

import (
	"fmt"
	"sync"
	"testing"

	"github.com/scipioneer/smart/internal/mpi"
)

// benchApp is the merge used by the combination benchmarks: countObj
// addition, the cheapest shipped merge — so the benchmarks measure pipeline
// overhead, not application arithmetic.
var benchApp = bucketApp{width: 1}

// buildRedMaps fills one sharded reduction map per thread, every thread
// holding every key — the worst-case local-combine workload (all keys
// collide and must merge).
func buildRedMaps(threads, keys, shards int) []*shardedMap {
	redMaps := make([]*shardedMap, threads)
	for t := range redMaps {
		redMaps[t] = newShardedMap(shards)
		for k := 0; k < keys; k++ {
			redMaps[t].shardFor(k)[k] = &countObj{n: int64(t + k)}
		}
	}
	return redMaps
}

// BenchmarkLocalCombine compares the pre-refactor serial local combine (one
// goroutine walking every thread's whole reduction map) against the
// shard-parallel pipeline at the same thread counts.
func BenchmarkLocalCombine(b *testing.B) {
	const keys = 16384
	for _, threads := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("threads=%d/serial", threads), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				redMaps := buildRedMaps(threads, keys, 1)
				com := make(CombMap, keys)
				b.StartTimer()
				for t := range redMaps {
					for k, obj := range redMaps[t].shards[0] {
						if dst, ok := com[k]; ok {
							benchApp.Merge(obj, dst)
						} else {
							com[k] = obj
						}
					}
				}
			}
		})
		b.Run(fmt.Sprintf("threads=%d/sharded", threads), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				redMaps := buildRedMaps(threads, keys, threads)
				com := newShardedMap(threads)
				// Pre-size like the serial baseline's make(CombMap, keys):
				// both modes then measure merging, not map growth.
				for si := range com.shards {
					com.shards[si] = make(CombMap, keys/threads+1)
				}
				b.StartTimer()
				forShards(threads, threads, func(si int) {
					shard := com.shards[si]
					for t := range redMaps {
						for k, obj := range redMaps[t].shards[si] {
							if dst, ok := shard[k]; ok {
								benchApp.Merge(obj, dst)
							} else {
								shard[k] = obj
							}
						}
					}
				})
			}
		})
	}
}

// legacyGlobalCombine is the pre-refactor global combination: whole-map
// binomial reduce where every tree level decodes both operands, merges, and
// re-encodes, then a broadcast every rank decodes.
func legacyGlobalCombine(s *Scheduler[int, int64]) error {
	comm := s.args.Comm
	payload, err := encodeMap(s.comMap)
	if err != nil {
		return err
	}
	merged, err := comm.Reduce(0, payload, func(a, bb []byte) ([]byte, error) {
		m, err := s.mergeEncoded(a, bb)
		if err != nil {
			return nil, err
		}
		return encodeMap(m)
	})
	if err != nil {
		return err
	}
	global, err := comm.Bcast(0, merged)
	if err != nil {
		return err
	}
	s.comMap, err = decodeMap(global, s.app.NewRedObj)
	s.storeFresh = false
	return err
}

// BenchmarkGlobalCombine runs a 4-rank in-process tree over an 8192-key map
// and compares the legacy decode-both-reencode reduce against the sharded
// decode-once streamed reduce. allocs/op is the headline number: the sharded
// path re-serializes nothing at interior tree levels and reuses its scratch
// buffer across rounds.
func BenchmarkGlobalCombine(b *testing.B) {
	const ranks = 4
	const keys = 8192
	template := make(CombMap, keys)
	for k := 0; k < keys; k++ {
		template[k] = &countObj{n: int64(k)}
	}
	for _, mode := range []string{"legacy", "sharded"} {
		b.Run(mode, func(b *testing.B) {
			comms := mpi.NewWorld(ranks)
			scheds := make([]*Scheduler[int, int64], ranks)
			for r := range scheds {
				scheds[r] = MustNewScheduler[int, int64](benchApp,
					SchedArgs{NumThreads: 2, ChunkSize: 1, Comm: comms[r]})
			}
			reset := func() {
				for _, s := range scheds {
					m := make(CombMap, keys)
					for k, obj := range template {
						m[k] = obj.Clone()
					}
					s.comMap = m
					s.storeFresh = false
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				reset()
				b.StartTimer()
				var wg sync.WaitGroup
				errs := make([]error, ranks)
				for r := range scheds {
					r := r
					wg.Add(1)
					go func() {
						defer wg.Done()
						if mode == "legacy" {
							errs[r] = legacyGlobalCombine(scheds[r])
						} else {
							errs[r] = scheds[r].globalCombine()
						}
					}()
				}
				wg.Wait()
				for r, err := range errs {
					if err != nil {
						b.Fatalf("rank %d: %v", r, err)
					}
				}
			}
			b.StopTimer()
			for _, c := range comms {
				c.Close()
			}
		})
	}
}
