package core

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// shardedMap is the combination pipeline's internal representation of a
// reduction or combination map: the key space is hash-partitioned into S
// shards so that local combination, the per-iteration distribution step,
// conversion, and the per-shard global-combination tree all parallelize
// over shards with no locks — two keys never share a shard across maps, so
// a worker that owns shard i of every map touches a disjoint key set.
//
// The sharded form is a runtime detail: the application-facing CombMap
// (GenKey's argument, CombinationMap's return, PostCombine's argument) stays
// a plain map, and the scheduler resynchronizes the two views at the phase
// boundaries where application code may have mutated the flat map.
type shardedMap struct {
	shards []CombMap
}

// shardIndex maps a key to its shard. The multiplicative mix (Fibonacci
// hashing) spreads the dense sequential keys most applications generate, and
// the multiply-shift range reduction avoids an integer division on the
// per-chunk reduction hot path.
func shardIndex(key, nshards int) int {
	h := uint64(key) * 0x9E3779B97F4A7C15
	return int((uint64(uint32(h>>32)) * uint64(nshards)) >> 32)
}

func newShardedMap(nshards int) *shardedMap {
	m := &shardedMap{shards: make([]CombMap, nshards)}
	for i := range m.shards {
		m.shards[i] = make(CombMap)
	}
	return m
}

// n returns the shard count.
func (m *shardedMap) n() int { return len(m.shards) }

// shardFor returns the shard that owns key.
func (m *shardedMap) shardFor(key int) CombMap {
	return m.shards[shardIndex(key, len(m.shards))]
}

// size returns the total entry count across shards.
func (m *shardedMap) size() int {
	total := 0
	for _, sh := range m.shards {
		total += len(sh)
	}
	return total
}

// insertFlat reshards a flat map: every entry is inserted into its shard.
// The objects are shared, not cloned — the sharded view aliases the flat one.
func (m *shardedMap) insertFlat(flat CombMap) {
	for k, obj := range flat {
		m.shardFor(k)[k] = obj
	}
}

// clearShards empties every shard in place.
func (m *shardedMap) clearShards() {
	for i := range m.shards {
		clear(m.shards[i])
	}
}

// flattenInto rebuilds a flat map from the shards, reusing dst's storage
// (callers of CombinationMap may hold a reference to it, so identity is
// preserved).
func (m *shardedMap) flattenInto(dst CombMap) {
	clear(dst)
	for _, sh := range m.shards {
		for k, obj := range sh {
			dst[k] = obj
		}
	}
}

// forEachShard runs fn(shard index) for every shard on up to workers
// goroutines and reports each shard's duration. With workers <= 1 the shards
// run serially on the calling goroutine — the Sequential-mode and
// single-thread path. The goroutine count is additionally clamped to
// GOMAXPROCS: the shard work is pure CPU, so goroutines beyond the
// schedulable parallelism only add handoff overhead (unlike the reduction
// workers, whose count is part of the configured execution model).
func (m *shardedMap) forEachShard(workers int, fn func(shard int)) []time.Duration {
	if p := runtime.GOMAXPROCS(0); workers > p {
		workers = p
	}
	durs := make([]time.Duration, len(m.shards))
	if workers <= 1 || len(m.shards) == 1 {
		for i := range m.shards {
			start := time.Now()
			fn(i)
			durs[i] = time.Since(start)
		}
		return durs
	}
	if workers > len(m.shards) {
		workers = len(m.shards)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(m.shards) {
					return
				}
				start := time.Now()
				fn(i)
				durs[i] = time.Since(start)
			}
		}()
	}
	wg.Wait()
	return durs
}
