package core

import "sort"

// shardedMap is the gomap redStore: the key space is hash-partitioned into S
// shards of Go's built-in map so that local combination, the per-iteration
// distribution step, conversion, and the per-shard global-combination tree
// all parallelize over shards with no locks — two keys never share a shard
// across maps, so a worker that owns shard i of every store touches a
// disjoint key set. It is the pre-store-layer behavior kept as the ablation
// baseline for SchedArgs.MapImpl.
//
// The sharded form is a runtime detail: the application-facing CombMap
// (GenKey's argument, CombinationMap's return, PostCombine's argument) stays
// a plain map, and the scheduler resynchronizes the two views at the phase
// boundaries where application code may have mutated the flat map.
type shardedMap struct {
	shards []CombMap
	// create is the application's reduction-object factory for
	// lookupOrCreate; nil in contexts that never create (benchmarks).
	create func() RedObj
	// seeded records whether the shards were ever filled: the first reseed
	// replaces the zero-capacity maps with right-sized ones, later reseeds
	// clear in place so steady-state capacity is retained.
	seeded bool
}

// shardIndex maps a key to its shard. The multiplicative mix (Fibonacci
// hashing) spreads the dense sequential keys most applications generate, and
// the multiply-shift range reduction avoids an integer division on the
// per-chunk reduction hot path.
func shardIndex(key, nshards int) int {
	h := uint64(key) * 0x9E3779B97F4A7C15
	return int((uint64(uint32(h>>32)) * uint64(nshards)) >> 32)
}

func newShardedMap(nshards int) *shardedMap {
	m := &shardedMap{shards: make([]CombMap, nshards)}
	for i := range m.shards {
		m.shards[i] = make(CombMap)
	}
	return m
}

func (m *shardedMap) numShards() int      { return len(m.shards) }
func (m *shardedMap) shardLen(si int) int { return len(m.shards[si]) }

// shardFor returns the shard that owns key.
func (m *shardedMap) shardFor(key int) CombMap {
	return m.shards[shardIndex(key, len(m.shards))]
}

// size returns the total entry count across shards.
func (m *shardedMap) size() int {
	total := 0
	for _, sh := range m.shards {
		total += len(sh)
	}
	return total
}

func (m *shardedMap) lookup(key int) (RedObj, bool) {
	obj, ok := m.shardFor(key)[key]
	return obj, ok
}

func (m *shardedMap) lookupOrCreate(key int) (RedObj, bool) {
	sh := m.shardFor(key)
	if obj, ok := sh[key]; ok {
		return obj, false
	}
	obj := m.create()
	sh[key] = obj
	return obj, true
}

func (m *shardedMap) insert(key int, obj RedObj) { m.shardFor(key)[key] = obj }

func (m *shardedMap) insertClone(key int, src RedObj) RedObj {
	c := src.Clone()
	m.shardFor(key)[key] = c
	return c
}

func (m *shardedMap) remove(key int) { delete(m.shardFor(key), key) }

// clear empties every shard in place, retaining each map's grown capacity.
func (m *shardedMap) clear() {
	for i := range m.shards {
		clear(m.shards[i])
	}
}

// insertFlat reshards a flat map: every entry is inserted into its shard.
// The objects are shared, not cloned — the sharded view aliases the flat one.
func (m *shardedMap) insertFlat(flat CombMap) {
	for k, obj := range flat {
		m.shardFor(k)[k] = obj
	}
}

// reseed replaces the contents with flat's entries. The first seeding of a
// fresh store recreates the shards with a len(flat)-derived size hint, so a
// large restored or application-built map reshards without incremental map
// growth; after that, clearing in place retains the capacity the shards have
// already grown to, which a re-make would discard.
func (m *shardedMap) reseed(flat CombMap) {
	if !m.seeded && len(flat) > 0 {
		hint := len(flat)/len(m.shards) + 1
		for i := range m.shards {
			m.shards[i] = make(CombMap, hint)
		}
	} else {
		m.clear()
	}
	m.seeded = true
	m.insertFlat(flat)
}

// flattenInto rebuilds a flat map from the shards, reusing dst's storage
// (callers of CombinationMap may hold a reference to it, so identity is
// preserved — which also means dst cannot be pre-sized here; clearing keeps
// whatever capacity it already grew).
func (m *shardedMap) flattenInto(dst CombMap) {
	clear(dst)
	for _, sh := range m.shards {
		for k, obj := range sh {
			dst[k] = obj
		}
	}
}

func (m *shardedMap) forEachIn(si int, fn func(key int, obj RedObj)) {
	for k, obj := range m.shards[si] {
		fn(k, obj)
	}
}

func (m *shardedMap) orderedKeys(dst []int) []int {
	dst = dst[:0]
	if cap(dst) < m.size() {
		dst = make([]int, 0, m.size())
	}
	for _, sh := range m.shards {
		for k := range sh {
			dst = append(dst, k)
		}
	}
	sort.Ints(dst)
	return dst
}

func (m *shardedMap) orderedShardKeys(si int, dst []int) []int {
	sh := m.shards[si]
	dst = dst[:0]
	if cap(dst) < len(sh) {
		dst = make([]int, 0, len(sh))
	}
	for k := range sh {
		dst = append(dst, k)
	}
	sort.Ints(dst)
	return dst
}

// takeStats reports nothing: Go's map hides its probe behavior, and the
// store has no arena. The zeros are themselves the ablation baseline.
func (m *shardedMap) takeStats() redStoreStats { return redStoreStats{} }
