package core

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// encodeMap serializes a combination map as
// count | (key, len, payload)* with little-endian fixed-width framing.
// This is the serialization the paper charges to global combination — the
// price of keeping reduction objects in a flexible map rather than the
// contiguous arrays of a hand-written MPI_Allreduce (Section 5.3). Entries
// are written in ascending key order, so equal maps encode byte-identically:
// checkpoints of the same state round-trip bit-for-bit and global-combination
// payloads are reproducible across runs.
func encodeMap(m CombMap) ([]byte, error) {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	buf := make([]byte, 0, 16+32*len(m))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(m)))
	for _, k := range keys {
		payload, err := m[k].MarshalBinary()
		if err != nil {
			return nil, fmt.Errorf("core: marshal reduction object for key %d: %w", k, err)
		}
		buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(k)))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
		buf = append(buf, payload...)
	}
	return buf, nil
}

// decodeMap reverses encodeMap, materializing objects with the factory.
func decodeMap(buf []byte, factory func() RedObj) (CombMap, error) {
	if len(buf) < 4 {
		return nil, fmt.Errorf("core: truncated map header")
	}
	n := int(binary.LittleEndian.Uint32(buf))
	buf = buf[4:]
	// Every entry needs at least its 12-byte header; a count beyond that is
	// a corrupt frame, and sizing the map from it would blow the heap.
	if n < 0 || n > len(buf)/12 {
		return nil, fmt.Errorf("core: implausible map entry count %d for %d bytes", n, len(buf))
	}
	m := make(CombMap, n)
	for i := 0; i < n; i++ {
		if len(buf) < 12 {
			return nil, fmt.Errorf("core: truncated entry header %d", i)
		}
		k := int(int64(binary.LittleEndian.Uint64(buf)))
		l := int(binary.LittleEndian.Uint32(buf[8:]))
		buf = buf[12:]
		if len(buf) < l {
			return nil, fmt.Errorf("core: truncated entry payload %d", i)
		}
		obj := factory()
		if err := obj.UnmarshalBinary(buf[:l:l]); err != nil {
			return nil, fmt.Errorf("core: unmarshal reduction object for key %d: %w", k, err)
		}
		m[k] = obj
		buf = buf[l:]
	}
	if len(buf) != 0 {
		return nil, fmt.Errorf("core: %d trailing bytes after map", len(buf))
	}
	return m, nil
}
