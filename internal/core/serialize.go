package core

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
)

// Appender is an optional fast path on RedObj for the serialization hot
// path: AppendBinary appends exactly the bytes MarshalBinary would return to
// b and returns the extended slice. With it, the runtime serializes a whole
// combination map into one pooled buffer without a per-object allocation —
// the Section 5.3 serialization tax shrinks to the framing itself.
// Implementations must keep AppendBinary and MarshalBinary byte-identical;
// the analytics test suite pins this for every shipped reduction object.
type Appender interface {
	AppendBinary(b []byte) ([]byte, error)
}

// encBufPool recycles serialization buffers across checkpoint writes and
// global-combination rounds. Both transports copy payloads out during Send,
// so a buffer may be returned to the pool as soon as the send or file write
// that used it completes.
var encBufPool = sync.Pool{New: func() any { return new([]byte) }}

// getEncBuf draws a zero-length buffer from the pool; reused reports whether
// it carries capacity from a previous round (the pooled-buffer reuse signal
// surfaced via smart_core_enc_buf_reuse_total).
func getEncBuf() (buf *[]byte, reused bool) {
	buf = encBufPool.Get().(*[]byte)
	reused = cap(*buf) > 0
	*buf = (*buf)[:0]
	return buf, reused
}

// maxPooledEncBuf caps the capacity putEncBuf will retain. One outlier round
// (a huge checkpoint, a skewed shard) would otherwise park its buffer in the
// pool forever, ratcheting the process's floor memory up to the largest
// serialization it ever performed.
const maxPooledEncBuf = 1 << 20

// putEncBuf returns a buffer to the pool, discarding oversized ones so the
// pool's resident capacity stays bounded by typical — not peak — rounds.
func putEncBuf(buf *[]byte) {
	if cap(*buf) > maxPooledEncBuf {
		return
	}
	encBufPool.Put(buf)
}

// appendObj appends one reduction object's key | len | payload frame,
// preferring the Appender fast path over MarshalBinary.
func appendObj(buf []byte, k int, obj RedObj) ([]byte, error) {
	buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(k)))
	if ap, ok := obj.(Appender); ok {
		// Reserve the length word, append in place, then patch it — one
		// buffer, no per-object allocation.
		lenOff := len(buf)
		buf = append(buf, 0, 0, 0, 0)
		out, err := ap.AppendBinary(buf)
		if err != nil {
			return nil, fmt.Errorf("core: marshal reduction object for key %d: %w", k, err)
		}
		binary.LittleEndian.PutUint32(out[lenOff:], uint32(len(out)-lenOff-4))
		return out, nil
	}
	payload, err := obj.MarshalBinary()
	if err != nil {
		return nil, fmt.Errorf("core: marshal reduction object for key %d: %w", k, err)
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	return append(buf, payload...), nil
}

// appendMap serializes a combination map as
// count | (key, len, payload)* with little-endian fixed-width framing,
// appending to buf. This is the serialization the paper charges to global
// combination — the price of keeping reduction objects in a flexible map
// rather than the contiguous arrays of a hand-written MPI_Allreduce
// (Section 5.3). Entries are written in ascending key order, so equal maps
// encode byte-identically: checkpoints of the same state round-trip
// bit-for-bit and global-combination payloads are reproducible across runs.
func appendMap(buf []byte, m CombMap) ([]byte, error) {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(m)))
	var err error
	for _, k := range keys {
		if buf, err = appendObj(buf, k, m[k]); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// encodeMap is appendMap into a fresh right-sized buffer.
func encodeMap(m CombMap) ([]byte, error) {
	return appendMap(make([]byte, 0, 16+32*len(m)), m)
}

// storeEntry pairs a key with its live object while an encode re-sorts a
// store's contents into canonical ascending-key order.
type storeEntry struct {
	k   int
	obj RedObj
}

// appendEntriesSorted sorts the collected entries by key and appends the
// count | (key, len, payload)* frame.
func appendEntriesSorted(buf []byte, ents []storeEntry) ([]byte, error) {
	sort.Slice(ents, func(i, j int) bool { return ents[i].k < ents[j].k })
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(ents)))
	var err error
	for _, e := range ents {
		if buf, err = appendObj(buf, e.k, e.obj); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// appendStore serializes a reduction store in the exact encodeMap format:
// every live key across every shard, re-sorted into one ascending sequence
// and framed identically — so the wire and checkpoint byte format is
// independent of the store implementation behind the engine. It only reads
// the store through forEachIn (no lookups, no counter writes), so it is safe
// to run concurrently with other readers — the checkpoint writer depends on
// this.
func appendStore(buf []byte, st redStore) ([]byte, error) {
	ents := make([]storeEntry, 0, st.size())
	for si := 0; si < st.numShards(); si++ {
		st.forEachIn(si, func(k int, obj RedObj) {
			ents = append(ents, storeEntry{k, obj})
		})
	}
	return appendEntriesSorted(buf, ents)
}

// appendShardOf serializes one shard of a reduction store as a standalone
// encodeMap frame (the global-combination streamed segments). Keys within a
// shard are written in ascending order, so the per-shard payload bytes are
// implementation-independent too.
func appendShardOf(buf []byte, st redStore, si int) ([]byte, error) {
	ents := make([]storeEntry, 0, st.shardLen(si))
	st.forEachIn(si, func(k int, obj RedObj) {
		ents = append(ents, storeEntry{k, obj})
	})
	return appendEntriesSorted(buf, ents)
}

// decodeMap reverses encodeMap, materializing objects with the factory. The
// destination map is pre-sized from the frame's count header (bounded by what
// the payload could plausibly hold, mirroring walkEntries' corruption guard)
// so decoding a large checkpoint or broadcast does not grow the map
// incrementally.
func decodeMap(buf []byte, factory func() RedObj) (CombMap, error) {
	hint := 0
	if len(buf) >= 4 {
		if n := int(binary.LittleEndian.Uint32(buf)); n >= 0 && n <= len(buf[4:])/12 {
			hint = n
		}
	}
	m := make(CombMap, hint)
	if err := decodeEntries(buf, factory, func(k int, obj RedObj) { m[k] = obj }); err != nil {
		return nil, err
	}
	return m, nil
}

// decodeEntries walks an encodeMap frame, materializing each object with the
// factory and handing it to sink — shared by flat-map decoding and the
// decode-once global-combination merge, which routes entries straight into
// the local decoded shards instead of building an intermediate map.
func decodeEntries(buf []byte, factory func() RedObj, sink func(k int, obj RedObj)) error {
	return walkEntries(buf, func(k int, payload []byte) error {
		obj := factory()
		if err := obj.UnmarshalBinary(payload); err != nil {
			return fmt.Errorf("core: unmarshal reduction object for key %d: %w", k, err)
		}
		sink(k, obj)
		return nil
	})
}

// walkEntries streams an encodeMap frame entry by entry without
// materializing anything: sink receives each key and its raw payload (a
// sub-slice of buf, valid only during the call). The global-combination
// paths build on this to unmarshal payloads into already-live objects —
// merge scratch and broadcast updates — instead of allocating a fresh object
// per entry.
func walkEntries(buf []byte, sink func(k int, payload []byte) error) error {
	if len(buf) < 4 {
		return fmt.Errorf("core: truncated map header")
	}
	n := int(binary.LittleEndian.Uint32(buf))
	buf = buf[4:]
	// Every entry needs at least its 12-byte header; a count beyond that is
	// a corrupt frame, and trusting it would blow the heap.
	if n < 0 || n > len(buf)/12 {
		return fmt.Errorf("core: implausible map entry count %d for %d bytes", n, len(buf))
	}
	for i := 0; i < n; i++ {
		if len(buf) < 12 {
			return fmt.Errorf("core: truncated entry header %d", i)
		}
		k := int(int64(binary.LittleEndian.Uint64(buf)))
		l := int(binary.LittleEndian.Uint32(buf[8:]))
		buf = buf[12:]
		if len(buf) < l {
			return fmt.Errorf("core: truncated entry payload %d", i)
		}
		if err := sink(k, buf[:l:l]); err != nil {
			return err
		}
		buf = buf[l:]
	}
	if len(buf) != 0 {
		return fmt.Errorf("core: %d trailing bytes after map", len(buf))
	}
	return nil
}
