package core

import (
	"sync"
	"testing"

	"github.com/scipioneer/smart/internal/memmodel"
	"github.com/scipioneer/smart/internal/obs"
)

// TestConcurrentSchedulersSharedRegistryAndNode is the invariant the serving
// layer depends on: independent Scheduler instances running simultaneously
// against the shared default registry and one memmodel node must produce
// metric totals equal to the sum of per-job expectations, with no lost or
// double-counted updates (run under -race in CI).
func TestConcurrentSchedulersSharedRegistryAndNode(t *testing.T) {
	reg := obs.DefaultRegistry()
	keys := reg.Counter("smart_core_keys_touched_total")
	runs := reg.Counter("smart_core_runs_total")
	keysBefore, runsBefore := keys.Value(), runs.Value()

	node := memmodel.NewNode(64 << 20)
	usedBefore := node.Used()

	sizes := []int{40_000, 30_000}
	var wg sync.WaitGroup
	errs := make([]error, len(sizes))
	for i, n := range sizes {
		wg.Add(1)
		go func(i, n int) {
			defer wg.Done()
			s := MustNewScheduler[int, int64](bucketApp{width: 10}, SchedArgs{
				NumThreads: 4, ChunkSize: 1, NumIters: 1, Mem: node,
			})
			errs[i] = s.Run(histInput(n), make([]int64, 10))
		}(i, n)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
	}

	wantKeys := int64(0)
	for _, n := range sizes {
		wantKeys += int64(n)
	}
	if got := keys.Value() - keysBefore; got != wantKeys {
		t.Fatalf("keys touched: %d jobs summed to %d, want %d", len(sizes), got, wantKeys)
	}
	if got := runs.Value() - runsBefore; got != int64(len(sizes)) {
		t.Fatalf("runs counted: %d, want %d", got, len(sizes))
	}
	// Both runs released their trackers: the shared node is back to its
	// pre-test level, and the peak proves both charged it.
	if got := node.Used(); got != usedBefore {
		t.Fatalf("node usage leaked: %d bytes (was %d)", got, usedBefore)
	}
	if node.Peak() == 0 {
		t.Fatal("memory tracker never charged the shared node")
	}
}
