package core

import (
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestCheckpointRestoreResumesTraining(t *testing.T) {
	var in []float64
	for i := 0; i < 200; i++ {
		in = append(in, float64(i%10), 100+float64(i%10)/10)
	}
	dir := t.TempDir()
	ck := filepath.Join(dir, "kmeans.ck")

	// Run 5 iterations, checkpoint, then resume in a fresh scheduler for 5
	// more; must equal an uninterrupted 10-iteration run.
	first := MustNewScheduler[float64, float64](kmeans1D{k: 2}, SchedArgs{
		NumThreads: 1, ChunkSize: 1, NumIters: 5, Extra: []float64{10, 60},
	})
	if err := first.Run(in, nil); err != nil {
		t.Fatal(err)
	}
	if err := first.WriteCheckpoint(ck); err != nil {
		t.Fatal(err)
	}

	resumed := MustNewScheduler[float64, float64](kmeans1D{k: 2}, SchedArgs{
		NumThreads: 1, ChunkSize: 1, NumIters: 5, Extra: []float64{10, 60},
	})
	if err := resumed.ReadCheckpoint(ck); err != nil {
		t.Fatal(err)
	}
	got := make([]float64, 2)
	if err := resumed.Run(in, got); err != nil {
		t.Fatal(err)
	}

	reference := MustNewScheduler[float64, float64](kmeans1D{k: 2}, SchedArgs{
		NumThreads: 1, ChunkSize: 1, NumIters: 10, Extra: []float64{10, 60},
	})
	want := make([]float64, 2)
	if err := reference.Run(in, want); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("centroid %d: resumed %v, uninterrupted %v", i, got[i], want[i])
		}
	}
}

func TestCheckpointRoundTripsByteIdentically(t *testing.T) {
	dir := t.TempDir()
	ck1 := filepath.Join(dir, "first.ck")
	ck2 := filepath.Join(dir, "second.ck")

	s := MustNewScheduler[float64, float64](kmeans1D{k: 2}, SchedArgs{
		NumThreads: 2, ChunkSize: 1, NumIters: 3, Extra: []float64{10, 60},
	})
	var in []float64
	for i := 0; i < 300; i++ {
		in = append(in, float64(i%10), 100+float64(i%10)/10)
	}
	if err := s.Run(in, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteCheckpoint(ck1); err != nil {
		t.Fatal(err)
	}

	restored := MustNewScheduler[float64, float64](kmeans1D{k: 2}, SchedArgs{
		NumThreads: 2, ChunkSize: 1, NumIters: 3, Extra: []float64{10, 60},
	})
	if err := restored.ReadCheckpoint(ck1); err != nil {
		t.Fatal(err)
	}
	if err := restored.WriteCheckpoint(ck2); err != nil {
		t.Fatal(err)
	}
	a, err := os.ReadFile(ck1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(ck2)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatalf("restored checkpoint re-encodes differently: %d vs %d bytes", len(a), len(b))
	}
}

func TestCheckpointRestoreOverwritesDivergedState(t *testing.T) {
	var in []float64
	for i := 0; i < 200; i++ {
		in = append(in, float64(i%10), 100+float64(i%10)/10)
	}
	dir := t.TempDir()
	ck := filepath.Join(dir, "kmeans.ck")

	// Run 5 iterations and checkpoint that state.
	s := MustNewScheduler[float64, float64](kmeans1D{k: 2}, SchedArgs{
		NumThreads: 1, ChunkSize: 1, NumIters: 5, Extra: []float64{10, 60},
	})
	if err := s.Run(in, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteCheckpoint(ck); err != nil {
		t.Fatal(err)
	}

	// A second scheduler first diverges (5 iterations of its own), then
	// restores the checkpoint mid-life. The restore must fully replace the
	// diverged combination map and reset run statistics — no double-counted
	// accumulators, no stale residue — so 5 post-restore iterations must
	// equal an uninterrupted 10-iteration run.
	cont := MustNewScheduler[float64, float64](kmeans1D{k: 2}, SchedArgs{
		NumThreads: 1, ChunkSize: 1, NumIters: 5, Extra: []float64{30, 90},
	})
	if err := cont.Run(in, nil); err != nil {
		t.Fatal(err)
	}
	if err := cont.ReadCheckpoint(ck); err != nil {
		t.Fatal(err)
	}
	if cont.Stats().ChunksProcessed != 0 {
		t.Fatalf("restore left stale stats: %d chunks", cont.Stats().ChunksProcessed)
	}
	got := make([]float64, 2)
	if err := cont.Run(in, got); err != nil {
		t.Fatal(err)
	}

	reference := MustNewScheduler[float64, float64](kmeans1D{k: 2}, SchedArgs{
		NumThreads: 1, ChunkSize: 1, NumIters: 10, Extra: []float64{10, 60},
	})
	want := make([]float64, 2)
	if err := reference.Run(in, want); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("centroid %d: restored-after-divergence %v, uninterrupted %v", i, got[i], want[i])
		}
	}
}

func TestCheckpointRejectsForeignFiles(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "junk")
	if err := os.WriteFile(path, []byte("not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := MustNewScheduler[int, int64](bucketApp{width: 10}, SchedArgs{NumThreads: 1, ChunkSize: 1, NumIters: 1})
	if err := s.ReadCheckpoint(path); err == nil {
		t.Fatal("foreign file accepted")
	}
	if err := s.ReadCheckpoint(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestCheckpointNoTornFiles(t *testing.T) {
	dir := t.TempDir()
	ck := filepath.Join(dir, "state.ck")
	s := MustNewScheduler[int, int64](bucketApp{width: 10}, SchedArgs{NumThreads: 1, ChunkSize: 1, NumIters: 1})
	if err := s.Run(histInput(100), nil); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteCheckpoint(ck); err != nil {
		t.Fatal(err)
	}
	// The temporary staging file must not survive a successful publish.
	if _, err := os.Stat(ck + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("staging file left behind: %v", err)
	}
}

func TestOnPhaseHook(t *testing.T) {
	events := map[string]int{}
	s := MustNewScheduler[int, int64](bucketApp{width: 10}, SchedArgs{
		NumThreads: 2, ChunkSize: 1, NumIters: 3,
		OnPhase: func(phase string, d time.Duration) {
			if d < 0 {
				t.Errorf("negative duration for %s", phase)
			}
			events[phase]++
		},
	})
	if err := s.Run(histInput(500), make([]int64, 10)); err != nil {
		t.Fatal(err)
	}
	if events["reduction"] != 3 || events["local combine"] != 3 {
		t.Fatalf("per-iteration phases: %v", events)
	}
	if events["convert"] != 1 {
		t.Fatalf("convert events: %v", events)
	}
	if events["global combine"] != 0 {
		t.Fatalf("global combine without a communicator: %v", events)
	}
}
