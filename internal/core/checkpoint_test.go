package core

import (
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestCheckpointRestoreResumesTraining(t *testing.T) {
	var in []float64
	for i := 0; i < 200; i++ {
		in = append(in, float64(i%10), 100+float64(i%10)/10)
	}
	dir := t.TempDir()
	ck := filepath.Join(dir, "kmeans.ck")

	// Run 5 iterations, checkpoint, then resume in a fresh scheduler for 5
	// more; must equal an uninterrupted 10-iteration run.
	first := MustNewScheduler[float64, float64](kmeans1D{k: 2}, SchedArgs{
		NumThreads: 1, ChunkSize: 1, NumIters: 5, Extra: []float64{10, 60},
	})
	if err := first.Run(in, nil); err != nil {
		t.Fatal(err)
	}
	if err := first.WriteCheckpoint(ck); err != nil {
		t.Fatal(err)
	}

	resumed := MustNewScheduler[float64, float64](kmeans1D{k: 2}, SchedArgs{
		NumThreads: 1, ChunkSize: 1, NumIters: 5, Extra: []float64{10, 60},
	})
	if err := resumed.ReadCheckpoint(ck); err != nil {
		t.Fatal(err)
	}
	got := make([]float64, 2)
	if err := resumed.Run(in, got); err != nil {
		t.Fatal(err)
	}

	reference := MustNewScheduler[float64, float64](kmeans1D{k: 2}, SchedArgs{
		NumThreads: 1, ChunkSize: 1, NumIters: 10, Extra: []float64{10, 60},
	})
	want := make([]float64, 2)
	if err := reference.Run(in, want); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("centroid %d: resumed %v, uninterrupted %v", i, got[i], want[i])
		}
	}
}

func TestCheckpointRejectsForeignFiles(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "junk")
	if err := os.WriteFile(path, []byte("not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := MustNewScheduler[int, int64](bucketApp{width: 10}, SchedArgs{NumThreads: 1, ChunkSize: 1, NumIters: 1})
	if err := s.ReadCheckpoint(path); err == nil {
		t.Fatal("foreign file accepted")
	}
	if err := s.ReadCheckpoint(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestCheckpointNoTornFiles(t *testing.T) {
	dir := t.TempDir()
	ck := filepath.Join(dir, "state.ck")
	s := MustNewScheduler[int, int64](bucketApp{width: 10}, SchedArgs{NumThreads: 1, ChunkSize: 1, NumIters: 1})
	if err := s.Run(histInput(100), nil); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteCheckpoint(ck); err != nil {
		t.Fatal(err)
	}
	// The temporary staging file must not survive a successful publish.
	if _, err := os.Stat(ck + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("staging file left behind: %v", err)
	}
}

func TestOnPhaseHook(t *testing.T) {
	events := map[string]int{}
	s := MustNewScheduler[int, int64](bucketApp{width: 10}, SchedArgs{
		NumThreads: 2, ChunkSize: 1, NumIters: 3,
		OnPhase: func(phase string, d time.Duration) {
			if d < 0 {
				t.Errorf("negative duration for %s", phase)
			}
			events[phase]++
		},
	})
	if err := s.Run(histInput(500), make([]int64, 10)); err != nil {
		t.Fatal(err)
	}
	if events["reduction"] != 3 || events["local combine"] != 3 {
		t.Fatalf("per-iteration phases: %v", events)
	}
	if events["convert"] != 1 {
		t.Fatalf("convert events: %v", events)
	}
	if events["global combine"] != 0 {
		t.Fatalf("global combine without a communicator: %v", events)
	}
}
