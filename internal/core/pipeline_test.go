package core

import (
	"math"
	"sync"
	"testing"

	"github.com/scipioneer/smart/internal/mpi"
)

func TestMergeCombinationMap(t *testing.T) {
	app := bucketApp{width: 10}
	a := MustNewScheduler[int, int64](app, SchedArgs{NumThreads: 1, ChunkSize: 1, NumIters: 1})
	b := MustNewScheduler[int, int64](app, SchedArgs{NumThreads: 1, ChunkSize: 1, NumIters: 1})
	if err := a.Run(histInput(100), nil); err != nil {
		t.Fatal(err)
	}
	if err := b.Run(histInput(100), nil); err != nil {
		t.Fatal(err)
	}
	a.MergeCombinationMap(b.CombinationMap())
	var total int64
	for _, obj := range a.CombinationMap() {
		total += obj.(*countObj).n
	}
	if total != 200 {
		t.Fatalf("merged total %d, want 200", total)
	}
}

func TestMergeEncodedCombinationMap(t *testing.T) {
	app := bucketApp{width: 10}
	a := MustNewScheduler[int, int64](app, SchedArgs{NumThreads: 1, ChunkSize: 1, NumIters: 1})
	b := MustNewScheduler[int, int64](app, SchedArgs{NumThreads: 1, ChunkSize: 1, NumIters: 1})
	a.Run(histInput(50), nil)
	b.Run(histInput(50), nil)
	buf, err := b.EncodeCombinationMap()
	if err != nil {
		t.Fatal(err)
	}
	if err := a.MergeEncodedCombinationMap(buf); err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, obj := range a.CombinationMap() {
		total += obj.(*countObj).n
	}
	if total != 100 {
		t.Fatalf("merged total %d, want 100", total)
	}
	if err := a.MergeEncodedCombinationMap([]byte("junk")); err == nil {
		t.Error("junk payload accepted")
	}
}

func TestGlobalCombineStandalone(t *testing.T) {
	// Accumulate per-rank state with global combination off, then one
	// GlobalCombine produces the cluster-wide result everywhere.
	const ranks = 3
	comms := mpi.NewWorld(ranks)
	full := histInput(300)
	per := len(full) / ranks
	results := make([][]int64, ranks)
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer comms[r].Close()
			// Accumulator pattern: a throwaway scheduler reduces each local
			// partition; the accumulator merges the per-partition maps and
			// performs the one global combination at the end.
			step := MustNewScheduler[int, int64](bucketApp{width: 10},
				SchedArgs{NumThreads: 2, ChunkSize: 1, NumIters: 1})
			acc := MustNewScheduler[int, int64](bucketApp{width: 10},
				SchedArgs{NumThreads: 2, ChunkSize: 1, NumIters: 1, Comm: comms[r]})
			half := per / 2
			for _, part := range [][]int{full[r*per : r*per+half], full[r*per+half : (r+1)*per]} {
				step.ResetCombinationMap()
				if err := step.Run(part, nil); err != nil {
					t.Errorf("rank %d: %v", r, err)
					return
				}
				acc.MergeCombinationMap(step.CombinationMap())
			}
			out := make([]int64, 10)
			if err := acc.GlobalCombine(out); err != nil {
				t.Errorf("rank %d combine: %v", r, err)
				return
			}
			results[r] = out
		}()
	}
	wg.Wait()
	want := make([]int64, 10)
	for _, v := range full {
		want[v/10]++
	}
	for r := range results {
		for b := range want {
			if results[r][b] != want[b] {
				t.Fatalf("rank %d bucket %d = %d, want %d", r, b, results[r][b], want[b])
			}
		}
	}
}

func TestGlobalCombineSingleProcess(t *testing.T) {
	// Without a communicator, GlobalCombine is PostCombine + convert.
	s := MustNewScheduler[int, int64](bucketApp{width: 10}, SchedArgs{NumThreads: 1, ChunkSize: 1, NumIters: 1})
	if err := s.Run(histInput(100), nil); err != nil {
		t.Fatal(err)
	}
	out := make([]int64, 10)
	if err := s.GlobalCombine(out); err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, v := range out {
		total += v
	}
	if total != 100 {
		t.Fatalf("total %d", total)
	}
}

func TestFlatGlobalCombineMatchesTree(t *testing.T) {
	const ranks = 5
	full := histInput(500)
	per := len(full) / ranks

	run := func(flat bool) [][]int64 {
		comms := mpi.NewWorld(ranks)
		results := make([][]int64, ranks)
		var wg sync.WaitGroup
		for r := 0; r < ranks; r++ {
			r := r
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer comms[r].Close()
				s := MustNewScheduler[int, int64](bucketApp{width: 10}, SchedArgs{
					NumThreads: 2, ChunkSize: 1, NumIters: 1, Comm: comms[r],
					FlatGlobalCombine: flat,
				})
				out := make([]int64, 10)
				if err := s.Run(full[r*per:(r+1)*per], out); err != nil {
					t.Errorf("rank %d: %v", r, err)
					return
				}
				results[r] = out
			}()
		}
		wg.Wait()
		return results
	}

	tree := run(false)
	flat := run(true)
	for r := 0; r < ranks; r++ {
		for b := range tree[r] {
			if tree[r][b] != flat[r][b] {
				t.Fatalf("rank %d bucket %d: tree %d flat %d", r, b, tree[r][b], flat[r][b])
			}
		}
	}
}

func TestIterativeFlatCombine(t *testing.T) {
	// The flat path must behave across iterations too (k-means).
	var in []float64
	for i := 0; i < 200; i++ {
		in = append(in, float64(i%10), 100+float64(i%10)/10)
	}
	const ranks = 4
	comms := mpi.NewWorld(ranks)
	per := len(in) / ranks
	results := make([][]float64, ranks)
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer comms[r].Close()
			s := MustNewScheduler[float64, float64](kmeans1D{k: 2}, SchedArgs{
				NumThreads: 1, ChunkSize: 1, NumIters: 8, Extra: []float64{10, 60},
				Comm: comms[r], FlatGlobalCombine: true,
			})
			out := make([]float64, 2)
			if err := s.Run(in[r*per:(r+1)*per], out); err != nil {
				t.Errorf("rank %d: %v", r, err)
				return
			}
			results[r] = out
		}()
	}
	wg.Wait()

	single := MustNewScheduler[float64, float64](kmeans1D{k: 2}, SchedArgs{
		NumThreads: 1, ChunkSize: 1, NumIters: 8, Extra: []float64{10, 60},
	})
	want := make([]float64, 2)
	if err := single.Run(in, want); err != nil {
		t.Fatal(err)
	}
	for r := range results {
		for i := range want {
			// The flat merge applies Merge in a different order than the
			// tree, so results agree only up to floating-point rounding.
			if math.Abs(results[r][i]-want[i]) > 1e-9 {
				t.Fatalf("rank %d centroid %d: %v vs %v", r, i, results[r][i], want[i])
			}
		}
	}
}
