package core

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/scipioneer/smart/internal/chunk"
)

// cancellingApp wraps bucketApp and cancels the run's context on the at-th
// GenKey call across all threads — a mid-run cancel that fires early no
// matter which worker the runtime schedules first. (Keying on a fixed chunk
// index is not early under work stealing on few cores: thieves take the
// *back* halves of a starved owner's deque, so nearly the whole input can
// drain before the owner ever touches its front chunk.)
type cancellingApp struct {
	bucketApp
	at     int64
	calls  atomic.Int64
	cancel context.CancelFunc
}

func (a *cancellingApp) GenKey(c chunk.Chunk, data []int, m CombMap) int {
	if a.calls.Add(1) == a.at {
		a.cancel()
	}
	return a.bucketApp.GenKey(c, data, m)
}

func TestRunContextCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s := MustNewScheduler[int, int64](bucketApp{width: 10}, SchedArgs{NumThreads: 1, ChunkSize: 1, NumIters: 1})
	err := s.RunContext(ctx, histInput(1000), nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if s.Stats().ChunksProcessed != 0 {
		t.Fatalf("processed %d chunks under a pre-cancelled context", s.Stats().ChunksProcessed)
	}
}

func TestRunContextCancelStopsMidRun(t *testing.T) {
	const n = 200_000
	const cancelAt = 1000
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	app := &cancellingApp{bucketApp: bucketApp{width: 10}, at: cancelAt, cancel: cancel}
	s := MustNewScheduler[int, int64](app, SchedArgs{NumThreads: 1, ChunkSize: 1, NumIters: 1})
	err := s.RunContext(ctx, histInput(n), nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	// The cancellation flag is raised by a watcher goroutine, so a handful
	// of chunks may still slip through after cancel() — but nothing close to
	// the remainder of the input.
	if got := s.Stats().ChunksProcessed; got >= n/2 {
		t.Fatalf("run consumed %d of %d chunks after cancellation at %d", got, n, cancelAt)
	}
}

func TestRunContextDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond) // let the deadline pass
	s := MustNewScheduler[int, int64](bucketApp{width: 10}, SchedArgs{NumThreads: 2, ChunkSize: 1, NumIters: 3})
	err := s.RunContext(ctx, histInput(1000), nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want context.DeadlineExceeded, got %v", err)
	}
}

func TestRunContextCancelCause(t *testing.T) {
	cause := errors.New("drained for shutdown")
	ctx, cancel := context.WithCancelCause(context.Background())
	cancel(cause)
	s := MustNewScheduler[int, int64](bucketApp{width: 10}, SchedArgs{NumThreads: 1, ChunkSize: 1, NumIters: 1})
	err := s.RunContext(ctx, histInput(100), nil)
	if !errors.Is(err, cause) {
		t.Fatalf("cancellation cause lost: %v", err)
	}
}

func TestRunContextSuccessMatchesRun(t *testing.T) {
	in := histInput(5000)
	want := make([]int64, 10)
	s1 := MustNewScheduler[int, int64](bucketApp{width: 10}, SchedArgs{NumThreads: 2, ChunkSize: 1, NumIters: 1})
	if err := s1.Run(in, want); err != nil {
		t.Fatal(err)
	}
	got := make([]int64, 10)
	s2 := MustNewScheduler[int, int64](bucketApp{width: 10}, SchedArgs{NumThreads: 2, ChunkSize: 1, NumIters: 1})
	if err := s2.RunContext(context.Background(), in, got); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket %d: RunContext %d, Run %d", i, got[i], want[i])
		}
	}
}

func TestSubscribeEarlyEmitsDeliversTriggeredValues(t *testing.T) {
	const n, half = 512, 2
	in := make([]float64, n)
	for i := range in {
		in[i] = float64(i)
	}
	app := movingSumApp{half: half, total: n, trigger: true}
	s := MustNewScheduler[float64, float64](app, SchedArgs{NumThreads: 2, ChunkSize: 1, NumIters: 1})
	var mu sync.Mutex
	emitted := map[int]float64{}
	s.SubscribeEarlyEmits(func(key int, v float64) {
		mu.Lock()
		emitted[key] = v
		mu.Unlock()
	})
	out := make([]float64, n)
	if err := s.Run2(in, out); err != nil {
		t.Fatal(err)
	}
	if int64(len(emitted)) != s.Stats().EmittedEarly {
		t.Fatalf("subscriber saw %d emissions, stats counted %d", len(emitted), s.Stats().EmittedEarly)
	}
	if len(emitted) == 0 {
		t.Fatal("no early emissions delivered")
	}
	for k, v := range emitted {
		if v != out[k] {
			t.Fatalf("key %d: emitted %v, output slot holds %v", k, v, out[k])
		}
	}
}
