package core

import (
	"bytes"
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// newTestStore builds a store of the given implementation with the countObj
// factory the core tests share.
func newTestStore(t testing.TB, impl string, nshards int) redStore {
	t.Helper()
	return newRedStore(impl, nshards, func() RedObj { return &countObj{} })
}

func storeImpls() []string { return []string{MapGo, MapArena} }

func TestStoreBasicOps(t *testing.T) {
	for _, impl := range storeImpls() {
		t.Run(impl, func(t *testing.T) {
			st := newTestStore(t, impl, 4)
			if st.size() != 0 {
				t.Fatalf("fresh store size %d", st.size())
			}
			if _, ok := st.lookup(7); ok {
				t.Fatal("lookup on empty store succeeded")
			}
			obj, created := st.lookupOrCreate(7)
			if !created {
				t.Fatal("first lookupOrCreate did not create")
			}
			obj.(*countObj).n = 70
			if again, created := st.lookupOrCreate(7); created || again != obj {
				t.Fatal("second lookupOrCreate did not return the same object")
			}
			if got, ok := st.lookup(7); !ok || got != obj {
				t.Fatal("lookup did not return the created object")
			}
			st.insert(7, &countObj{n: 1})
			if got, _ := st.lookup(7); got.(*countObj).n != 1 {
				t.Fatal("insert did not replace")
			}
			src := &countObj{n: 42}
			c := st.insertClone(9, src)
			if c == nil || c == RedObj(src) || c.(*countObj).n != 42 {
				t.Fatalf("insertClone returned %v", c)
			}
			src.n = 0
			if got, _ := st.lookup(9); got.(*countObj).n != 42 {
				t.Fatal("insertClone aliased its source")
			}
			if st.size() != 2 {
				t.Fatalf("size %d, want 2", st.size())
			}
			st.remove(7)
			if _, ok := st.lookup(7); ok || st.size() != 1 {
				t.Fatal("remove left the key visible")
			}
			st.remove(7) // idempotent
			st.clear()
			if st.size() != 0 {
				t.Fatalf("size %d after clear", st.size())
			}
			if _, ok := st.lookup(9); ok {
				t.Fatal("lookup found a cleared key")
			}
		})
	}
}

func TestStoreReseedFlattenRoundTrip(t *testing.T) {
	for _, impl := range storeImpls() {
		t.Run(impl, func(t *testing.T) {
			flat := CombMap{}
			for k := -50; k < 50; k += 3 {
				flat[k] = &countObj{n: int64(k)}
			}
			st := newTestStore(t, impl, 5)
			st.reseed(flat)
			if st.size() != len(flat) {
				t.Fatalf("size %d, want %d", st.size(), len(flat))
			}
			// reseed aliases, never clones.
			for k, obj := range flat {
				if got, ok := st.lookup(k); !ok || got != obj {
					t.Fatalf("key %d not aliased", k)
				}
			}
			// flattenInto refills the same map value.
			dst := flat
			st.insert(999, &countObj{n: 999})
			st.flattenInto(dst)
			if !reflect.DeepEqual(dst, flat) || len(dst) != 35 || dst[999].(*countObj).n != 999 {
				t.Fatalf("flattenInto result has %d keys", len(dst))
			}
		})
	}
}

func TestStoreOrderedKeys(t *testing.T) {
	keys := []int{31, -7, 0, 1024, 2, -900, 77, 78, 79}
	for _, impl := range storeImpls() {
		t.Run(impl, func(t *testing.T) {
			st := newTestStore(t, impl, 3)
			for _, k := range keys {
				st.insert(k, &countObj{n: int64(k)})
			}
			want := append([]int(nil), keys...)
			sort.Ints(want)
			if got := st.orderedKeys(nil); !reflect.DeepEqual(got, want) {
				t.Fatalf("orderedKeys = %v, want %v", got, want)
			}
			// Shard keys partition the full key set and are each sorted.
			var all []int
			for si := 0; si < st.numShards(); si++ {
				sk := st.orderedShardKeys(si, nil)
				if !sort.IntsAreSorted(sk) {
					t.Fatalf("shard %d keys not sorted: %v", si, sk)
				}
				if len(sk) != st.shardLen(si) {
					t.Fatalf("shard %d: %d keys, shardLen %d", si, len(sk), st.shardLen(si))
				}
				all = append(all, sk...)
			}
			sort.Ints(all)
			if !reflect.DeepEqual(all, want) {
				t.Fatalf("shard keys union = %v, want %v", all, want)
			}
			// Capacity reuse: a big scratch comes back re-filled, not re-allocated.
			scratch := make([]int, 0, 1024)
			got := st.orderedKeys(scratch)
			if !reflect.DeepEqual(got, want) || cap(got) != cap(scratch) {
				t.Fatal("orderedKeys did not reuse the scratch capacity")
			}
		})
	}
}

// TestArenaCompaction drives one shard through enough churn to force
// tombstone accumulation, rebuilds, and dead-entry compaction, checking the
// live view after every phase.
func TestArenaCompaction(t *testing.T) {
	a := newArenaStore(1, func() RedObj { return &countObj{} })
	const n = 1000
	for k := 0; k < n; k++ {
		obj, _ := a.lookupOrCreate(k)
		obj.(*countObj).n = int64(k)
	}
	// Hold pointers across rebuilds: the arena must never move objects.
	held := make(map[int]*countObj)
	for k := 0; k < n; k += 97 {
		obj, _ := a.lookup(k)
		held[k] = obj.(*countObj)
	}
	for k := 0; k < n; k++ {
		if k%3 != 0 {
			a.remove(k)
		}
	}
	if got, want := a.size(), (n+2)/3; got != want {
		t.Fatalf("size %d after removes, want %d", got, want)
	}
	// Re-insert into the churned table; this crosses the load factor with
	// tombstones present and must trigger compacting rebuilds.
	for k := n; k < 2*n; k++ {
		obj, created := a.lookupOrCreate(k)
		if !created {
			t.Fatalf("key %d already present", k)
		}
		obj.(*countObj).n = int64(k)
	}
	for k := 0; k < 2*n; k++ {
		obj, ok := a.lookup(k)
		switch {
		case k < n && k%3 == 0, k >= n:
			if !ok || obj.(*countObj).n != int64(k) {
				t.Fatalf("key %d: ok=%v obj=%v", k, ok, obj)
			}
		default:
			if ok {
				t.Fatalf("removed key %d still present", k)
			}
		}
	}
	for k, p := range held {
		if k%3 == 0 {
			if obj, _ := a.lookup(k); obj.(*countObj) != p {
				t.Fatalf("key %d moved across rebuilds", k)
			}
		}
	}
	st := a.takeStats()
	if st.lookups <= 0 || st.probes < st.lookups || st.arenaBytes <= 0 {
		t.Fatalf("implausible stats %+v", st)
	}
	if again := a.takeStats(); again.lookups != 0 || again.probes != 0 {
		t.Fatalf("takeStats did not drain: %+v", again)
	}
}

// TestArenaSlab pins the FixedSizeObj fast path: created objects come from
// contiguous slabs in factory-fresh state, and clear retains the unused
// remainder without resurrecting handed-out objects.
func TestArenaSlab(t *testing.T) {
	a := newArenaStore(1, func() RedObj { return &countObj{n: -5} })
	if a.proto == nil {
		t.Fatal("countObj did not register as FixedSizeObj")
	}
	obj, _ := a.lookupOrCreate(1)
	if obj.(*countObj).n != -5 {
		t.Fatalf("slab object not factory-fresh: %+v", obj)
	}
	obj.(*countObj).n = 11
	// A second create must come from the same slab block while it lasts.
	obj2, _ := a.lookupOrCreate(2)
	if obj2.(*countObj).n != -5 {
		t.Fatalf("second slab object not factory-fresh: %+v", obj2)
	}
	// insertClone through the slab path copies state without allocating a
	// standalone object.
	c := a.insertClone(3, &countObj{n: 33})
	if c.(*countObj).n != 33 {
		t.Fatalf("insertClone state %+v", c)
	}
	a.clear()
	// Recycled slab objects must come back factory-fresh, and must not be
	// the objects previously handed out (those escaped to the caller).
	seen := map[RedObj]bool{obj: true, obj2: true, c: true}
	for k := 10; k < 10+2*arenaSlabObjs; k++ {
		o, created := a.lookupOrCreate(k)
		if !created || o.(*countObj).n != -5 {
			t.Fatalf("post-clear object for %d: created=%v %+v", k, created, o)
		}
		if seen[o] {
			t.Fatalf("key %d resurrected a handed-out object", k)
		}
		seen[o] = true
	}
}

// storeOps applies a deterministic pseudo-random operation sequence to a
// store; the differential tests run the same sequence against both
// implementations and compare every observable.
func storeOps(st redStore, seed int64, n int) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		k := rng.Intn(200) - 100
		switch rng.Intn(10) {
		case 0:
			st.remove(k)
		case 1:
			st.insert(k, &countObj{n: int64(i)})
		case 2:
			st.insertClone(k, &countObj{n: int64(-i)})
		case 3:
			st.clear()
		default:
			obj, _ := st.lookupOrCreate(k)
			obj.(*countObj).n += int64(k)
		}
	}
}

func encodeStore(t testing.TB, st redStore) []byte {
	t.Helper()
	buf, err := appendStore(nil, st)
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

func TestStoreDifferentialRandomOps(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		g := newTestStore(t, MapGo, 7)
		a := newTestStore(t, MapArena, 7)
		storeOps(g, seed, 500)
		storeOps(a, seed, 500)
		if g.size() != a.size() {
			t.Fatalf("seed %d: sizes %d vs %d", seed, g.size(), a.size())
		}
		for si := 0; si < 7; si++ {
			if g.shardLen(si) != a.shardLen(si) {
				t.Fatalf("seed %d: shard %d lens %d vs %d", seed, si, g.shardLen(si), a.shardLen(si))
			}
			gb, err := appendShardOf(nil, g, si)
			if err != nil {
				t.Fatal(err)
			}
			ab, err := appendShardOf(nil, a, si)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(gb, ab) {
				t.Fatalf("seed %d: shard %d encodes differ", seed, si)
			}
		}
		if !bytes.Equal(encodeStore(t, g), encodeStore(t, a)) {
			t.Fatalf("seed %d: whole-store encodes differ", seed)
		}
	}
}

// TestSchedulerArenaByteIdentical runs the same workload under both map
// implementations and both engines; the encoded combination maps must match
// byte for byte — the store is invisible to results and wire format.
func TestSchedulerArenaByteIdentical(t *testing.T) {
	in := histInput(4000)
	encode := func(impl, engine string) []byte {
		s := MustNewScheduler[int, int64](bucketApp{width: 3},
			SchedArgs{NumThreads: 4, ChunkSize: 1, NumIters: 2, CombineShards: 4,
				Engine: engine, MapImpl: impl})
		out := make([]int64, 34)
		if err := s.Run(in, out); err != nil {
			t.Fatal(err)
		}
		buf, err := s.EncodeCombinationMap()
		if err != nil {
			t.Fatal(err)
		}
		return buf
	}
	for _, engine := range []string{EngineStatic, EngineStealing} {
		ref := encode(MapGo, engine)
		if got := encode(MapArena, engine); !bytes.Equal(got, ref) {
			t.Errorf("engine %s: arena encoding differs from gomap", engine)
		}
	}
}

// FuzzStoreRoundTrip drives both store implementations through a fuzzed
// operation sequence and requires identical observable state, then checks the
// canonical encoding survives a decode/re-encode round trip.
func FuzzStoreRoundTrip(f *testing.F) {
	f.Add([]byte{1, 2, 3}, uint8(3))
	f.Add([]byte{0xff, 0x00, 0x41, 0x41, 0x10, 0x80, 7, 7, 7}, uint8(1))
	f.Add(bytes.Repeat([]byte{5, 250, 17}, 40), uint8(8))
	f.Fuzz(func(t *testing.T, ops []byte, nsh uint8) {
		nshards := int(nsh%8) + 1
		g := newRedStore(MapGo, nshards, func() RedObj { return &countObj{} })
		a := newRedStore(MapArena, nshards, func() RedObj { return &countObj{} })
		apply := func(st redStore) {
			for i := 0; i+1 < len(ops); i += 2 {
				k := int(int8(ops[i+1])) * 3
				switch ops[i] % 8 {
				case 0:
					st.remove(k)
				case 1:
					st.insert(k, &countObj{n: int64(i)})
				case 2:
					st.insertClone(k, &countObj{n: int64(i) * 7})
				case 3:
					st.clear()
				default:
					obj, _ := st.lookupOrCreate(k)
					obj.(*countObj).n += int64(k + i)
				}
			}
		}
		apply(g)
		apply(a)
		if g.size() != a.size() {
			t.Fatalf("sizes %d vs %d", g.size(), a.size())
		}
		gb, err := appendStore(nil, g)
		if err != nil {
			t.Fatal(err)
		}
		ab, err := appendStore(nil, a)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gb, ab) {
			t.Fatal("store encodes differ")
		}
		m, err := decodeMap(gb, func() RedObj { return &countObj{} })
		if err != nil {
			t.Fatal(err)
		}
		rt, err := encodeMap(m)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(rt, gb) {
			t.Fatal("decode/re-encode round trip changed bytes")
		}
	})
}
