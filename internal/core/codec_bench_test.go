package core

import (
	"encoding/binary"
	"fmt"
	"sync"
	"testing"

	"github.com/scipioneer/smart/internal/chunk"
	"github.com/scipioneer/smart/internal/codec"
	"github.com/scipioneer/smart/internal/mpi"
	"github.com/scipioneer/smart/internal/obs"
)

// vecObj is a k-means-shaped reduction object: per-cluster coordinate sums
// plus a member count, the state shape the paper's k-means (and any centroid
// method) ships through global combination.
type vecObj struct {
	sums  []float64
	count int64
}

func (v *vecObj) Clone() RedObj {
	cp := &vecObj{sums: append([]float64(nil), v.sums...), count: v.count}
	return cp
}

func (v *vecObj) MarshalBinary() ([]byte, error) { return v.AppendBinary(nil) }

func (v *vecObj) AppendBinary(b []byte) ([]byte, error) {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(v.sums)))
	for _, s := range v.sums {
		b = binary.LittleEndian.AppendUint64(b, uint64(int64(s*16)))
	}
	return binary.LittleEndian.AppendUint64(b, uint64(v.count)), nil
}

func (v *vecObj) UnmarshalBinary(data []byte) error {
	if len(data) < 4 {
		return fmt.Errorf("vecObj: short payload")
	}
	n := int(binary.LittleEndian.Uint32(data))
	data = data[4:]
	if len(data) != 8*n+8 {
		return fmt.Errorf("vecObj: %d bytes for %d dims", len(data), n)
	}
	v.sums = make([]float64, n)
	for i := range v.sums {
		v.sums[i] = float64(int64(binary.LittleEndian.Uint64(data[8*i:]))) / 16
	}
	v.count = int64(binary.LittleEndian.Uint64(data[8*n:]))
	return nil
}

// vecApp exists to give vecObj maps a merge for the codec benchmarks; its
// reduction-side hooks are never exercised there.
type vecApp struct{ dims int }

func (a vecApp) NewRedObj() RedObj                                    { return &vecObj{} }
func (a vecApp) GenKey(c chunk.Chunk, data []float64, _ CombMap) int  { return 0 }
func (a vecApp) Accumulate(c chunk.Chunk, data []float64, obj RedObj) {}
func (a vecApp) Merge(src, dst RedObj) {
	s, d := src.(*vecObj), dst.(*vecObj)
	if len(d.sums) < len(s.sums) {
		d.sums = append(d.sums, make([]float64, len(s.sums)-len(d.sums))...)
	}
	for i := range s.sums {
		d.sums[i] += s.sums[i]
	}
	d.count += s.count
}

// BenchmarkCombineCodec measures the 4-rank streamed global combine over the
// TCP transport under every wire codec, on the two map shapes the paper's
// evaluation leans on: a histogram (many integer-count objects) and k-means
// cluster state (coordinate-sum vectors on a data grid). Beyond ns/op it
// reports the honest wire cost per operation — rawbytes/op handed to the
// sockets and wirebytes/op after encoding — so BENCH_combine.json records
// the compressed-vs-raw ratio, not just the speed.
func BenchmarkCombineCodec(b *testing.B) {
	const ranks = 4
	histTemplate := make(CombMap, 8192)
	for k := 0; k < 8192; k++ {
		histTemplate[k] = &countObj{n: int64(k % 97)}
	}
	kmTemplate := make(CombMap, 256)
	for k := 0; k < 256; k++ {
		v := &vecObj{sums: make([]float64, 16), count: int64(100 + k)}
		for d := range v.sums {
			// Coordinates on a 1/16 grid, as simulation meshes produce —
			// structured data the codec must actually exploit.
			v.sums[d] = float64((k*d)%128) / 16
		}
		kmTemplate[k] = v
	}

	for _, enc := range []codec.Encoding{codec.None, codec.Flate, codec.Block} {
		masks := make([]uint32, ranks)
		for i := range masks {
			masks[i] = codec.MaskOf(enc)
		}
		run := func(b *testing.B, combine func(r int) error, reset func()) {
			b.Helper()
			b.ReportAllocs()
			rawBefore, wireBefore := tcpWireCounters()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				reset()
				b.StartTimer()
				var wg sync.WaitGroup
				errs := make([]error, ranks)
				for r := 0; r < ranks; r++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						errs[r] = combine(r)
					}()
				}
				wg.Wait()
				for r, err := range errs {
					if err != nil {
						b.Fatalf("rank %d: %v", r, err)
					}
				}
			}
			b.StopTimer()
			rawAfter, wireAfter := tcpWireCounters()
			b.ReportMetric(float64(rawAfter-rawBefore)/float64(b.N), "rawbytes/op")
			b.ReportMetric(float64(wireAfter-wireBefore)/float64(b.N), "wirebytes/op")
		}

		b.Run(fmt.Sprintf("map=histogram/codec=%s", enc), func(b *testing.B) {
			comms, err := mpi.NewTCPWorldOpts(ranks, mpi.TCPWorldOptions{CodecMasks: masks})
			if err != nil {
				b.Fatal(err)
			}
			defer closeAll(comms)
			scheds := make([]*Scheduler[int, int64], ranks)
			for r := range scheds {
				scheds[r] = MustNewScheduler[int, int64](benchApp,
					SchedArgs{NumThreads: 2, ChunkSize: 1, Comm: comms[r]})
			}
			run(b,
				func(r int) error { return scheds[r].globalCombine() },
				func() {
					for _, s := range scheds {
						s.comMap = cloneMap(histTemplate)
						s.storeFresh = false
					}
				})
		})
		b.Run(fmt.Sprintf("map=kmeans/codec=%s", enc), func(b *testing.B) {
			comms, err := mpi.NewTCPWorldOpts(ranks, mpi.TCPWorldOptions{CodecMasks: masks})
			if err != nil {
				b.Fatal(err)
			}
			defer closeAll(comms)
			scheds := make([]*Scheduler[float64, float64], ranks)
			for r := range scheds {
				scheds[r] = MustNewScheduler[float64, float64](vecApp{dims: 16},
					SchedArgs{NumThreads: 2, ChunkSize: 1, Comm: comms[r]})
			}
			run(b,
				func(r int) error { return scheds[r].globalCombine() },
				func() {
					for _, s := range scheds {
						s.comMap = cloneMap(kmTemplate)
						s.storeFresh = false
					}
				})
		})
	}
}

func cloneMap(template CombMap) CombMap {
	m := make(CombMap, len(template))
	for k, obj := range template {
		m[k] = obj.Clone()
	}
	return m
}

func closeAll(comms []*mpi.Comm) {
	for _, c := range comms {
		c.Close()
	}
}

// tcpWireCounters reads the mpi package's tcp wire byte counters out of the
// default registry, where the transport registers them.
func tcpWireCounters() (raw, wire int64) {
	r := obs.DefaultRegistry()
	return r.Counter(`smart_mpi_wire_bytes_raw_total{transport="tcp"}`).Value(),
		r.Counter(`smart_mpi_wire_bytes_encoded_total{transport="tcp"}`).Value()
}
