package core

import "sort"

// Arena store tuning constants.
const (
	// arenaMinTable is the smallest open-addressing table a shard allocates
	// (power of two). Tables are built lazily: an untouched shard costs
	// three nil slices.
	arenaMinTable = 16
	// arenaMaxLoad is the occupancy numerator over 4: a shard rebuilds its
	// table when live+tombstone cells exceed 3/4 of it. Linear probing stays
	// short below this load, and the rebuild drops tombstones for free.
	arenaMaxLoadNum = 3
	// arenaSlabObjs is how many reduction objects one slab carves at a time
	// for FixedSizeObj applications — large enough to amortize the two
	// allocations per slab (backing array + headers) over many keys, small
	// enough that a sparse shard does not strand much memory.
	arenaSlabObjs = 64
	// arenaTomb marks a deleted cell in the index; live cells hold slot+1
	// and empty cells hold 0, so a zeroed table is an empty table.
	arenaTomb = -1
)

// arenaShard is one shard of an arenaStore: an open-addressing index over a
// contiguous arena of entries in insertion order. The index holds slot+1
// (0 = empty, arenaTomb = deleted), so growing the table never moves an
// object — pointers handed out by lookup stay valid across every operation,
// which the scheduler's chunkCache depends on.
type arenaShard struct {
	index []int32
	// keys and objs are the arena, parallel arrays in insertion order. A
	// removed entry keeps its slot with objs[slot] = nil (dead) until the
	// next rebuild compacts it away.
	keys []int
	objs []RedObj
	// dead counts nil objs slots; tombs counts arenaTomb index cells.
	dead, tombs int
	// slab holds fresh, never-handed-out objects for the FixedSizeObj fast
	// path. Handed-out objects may escape to the combination map, so clear
	// keeps only this remainder.
	slab []RedObj
	// probes/lookups feed smart_core_store_probe_len; plain counters are
	// safe because all operations on a shard are single-goroutine by the
	// forShards discipline.
	probes, lookups int64
}

// arenaStore is the MapArena redStore: per shard, a Fibonacci-hashed
// open-addressing index plus a contiguous arena of reduction objects. Against
// the gomap baseline it removes the per-key map-entry allocation, keeps
// iteration cache-friendly (two flat arrays instead of bucket chains), reuses
// all storage across iterations via clear, and — for FixedSizeObj
// applications — allocates objects in contiguous slabs and clone-seeds with
// Assign instead of Clone, so the per-iteration distribution step allocates
// O(keys/slab) instead of O(keys).
type arenaStore struct {
	shards []arenaShard
	create func() RedObj
	// proto is non-nil when the factory's objects opt into the fixed-width
	// inline layout; it doubles as the Assign source that puts recycled slab
	// objects into exactly the factory-fresh state.
	proto FixedSizeObj
}

func newArenaStore(nshards int, create func() RedObj) *arenaStore {
	a := &arenaStore{shards: make([]arenaShard, nshards), create: create}
	if create != nil {
		a.proto, _ = create().(FixedSizeObj)
	}
	return a
}

// hashKey is the in-shard hash. Shard selection consumes the high bits of
// the same Fibonacci product (shardIndex), so the table index uses the low
// 32 bits — an odd multiplier is a bijection mod 2^32, so the dense
// sequential keys applications generate land collision-free.
func hashKey(key int) uint32 {
	return uint32(uint64(key) * 0x9E3779B97F4A7C15)
}

func (a *arenaStore) numShards() int { return len(a.shards) }

func (a *arenaStore) shardOf(key int) *arenaShard {
	return &a.shards[shardIndex(key, len(a.shards))]
}

func (a *arenaStore) shardLen(si int) int {
	sh := &a.shards[si]
	return len(sh.keys) - sh.dead
}

func (a *arenaStore) size() int {
	total := 0
	for i := range a.shards {
		sh := &a.shards[i]
		total += len(sh.keys) - sh.dead
	}
	return total
}

// find probes for key. It returns the arena slot (-1 if absent) and the
// index cell where an insert of key should write — the first tombstone on
// the probe path if one was crossed, else the empty cell that ended it.
func (sh *arenaShard) find(key int) (slot, cell int) {
	mask := uint32(len(sh.index) - 1)
	i := hashKey(key) & mask
	first := -1
	sh.lookups++
	for {
		sh.probes++
		switch v := sh.index[i]; {
		case v == 0:
			if first >= 0 {
				return -1, first
			}
			return -1, int(i)
		case v == arenaTomb:
			if first < 0 {
				first = int(i)
			}
		default:
			if s := int(v - 1); sh.keys[s] == key {
				return s, int(i)
			}
		}
		i = (i + 1) & mask
	}
}

// place stores the (key, obj) entry in a new arena slot and links it from
// the index, rebuilding the table first when occupancy would cross the load
// factor. The caller has already established that key is absent.
func (sh *arenaShard) place(key int, obj RedObj) {
	if len(sh.index) == 0 {
		sh.index = make([]int32, arenaMinTable)
	}
	live := len(sh.keys) - sh.dead
	if (live+sh.tombs+1)*4 >= len(sh.index)*arenaMaxLoadNum {
		sh.rebuild()
	}
	_, cell := sh.find(key)
	// The caller's find already counted this keyed operation; the re-probe
	// after a possible rebuild is part of it, not a second lookup.
	sh.lookups--
	if sh.index[cell] == arenaTomb {
		sh.tombs--
	}
	sh.keys = append(sh.keys, key)
	sh.objs = append(sh.objs, obj)
	sh.index[cell] = int32(len(sh.keys))
}

// rebuild compacts the arena (dropping dead entries) and rehashes the index
// without tombstones, sizing the table for twice the live count. Compaction
// moves interface values between slots, never the objects they point to, so
// object pointers held by callers stay valid.
func (sh *arenaShard) rebuild() {
	if sh.dead > 0 {
		w := 0
		for r, obj := range sh.objs {
			if obj == nil {
				continue
			}
			sh.keys[w], sh.objs[w] = sh.keys[r], obj
			w++
		}
		clear(sh.objs[w:])
		sh.keys, sh.objs = sh.keys[:w], sh.objs[:w]
		sh.dead = 0
	}
	want := arenaMinTable
	for want*arenaMaxLoadNum <= len(sh.keys)*4 {
		want *= 2
	}
	if want <= len(sh.index) {
		clear(sh.index)
	} else {
		sh.index = make([]int32, want)
	}
	sh.tombs = 0
	mask := uint32(len(sh.index) - 1)
	for slot, key := range sh.keys {
		i := hashKey(key) & mask
		for sh.index[i] != 0 {
			i = (i + 1) & mask
		}
		sh.index[i] = int32(slot + 1)
	}
}

// fresh hands out one factory-state object, drawing from the shard's slab
// when the application opted into FixedSizeObj.
func (a *arenaStore) fresh(sh *arenaShard) RedObj {
	if a.proto == nil {
		return a.create()
	}
	if len(sh.slab) == 0 {
		sh.slab = a.proto.NewSlab(arenaSlabObjs)
	}
	obj := sh.slab[len(sh.slab)-1]
	sh.slab = sh.slab[:len(sh.slab)-1]
	// Slab objects are zero-valued; factories may construct non-zero state
	// (pre-armed triggers), so copy the factory prototype in.
	obj.(FixedSizeObj).Assign(a.proto)
	return obj
}

func (a *arenaStore) lookup(key int) (RedObj, bool) {
	sh := a.shardOf(key)
	if len(sh.index) == 0 {
		return nil, false
	}
	slot, _ := sh.find(key)
	if slot < 0 {
		return nil, false
	}
	return sh.objs[slot], true
}

func (a *arenaStore) lookupOrCreate(key int) (RedObj, bool) {
	sh := a.shardOf(key)
	if len(sh.index) > 0 {
		if slot, _ := sh.find(key); slot >= 0 {
			return sh.objs[slot], false
		}
	}
	obj := a.fresh(sh)
	sh.place(key, obj)
	return obj, true
}

func (a *arenaStore) insert(key int, obj RedObj) {
	sh := a.shardOf(key)
	if len(sh.index) > 0 {
		if slot, _ := sh.find(key); slot >= 0 {
			sh.objs[slot] = obj
			return
		}
	}
	sh.place(key, obj)
}

func (a *arenaStore) insertClone(key int, src RedObj) RedObj {
	if a.proto != nil {
		if fo, ok := src.(FixedSizeObj); ok {
			sh := a.shardOf(key)
			dst := a.fresh(sh).(FixedSizeObj)
			dst.Assign(fo)
			// Replace in place when the key is present (matching insert's
			// semantics); the distribute path only ever clones into empty
			// stores, so this find usually ends at an empty cell.
			if len(sh.index) > 0 {
				if slot, _ := sh.find(key); slot >= 0 {
					sh.objs[slot] = dst
					return dst
				}
			}
			sh.place(key, dst)
			return dst
		}
	}
	c := src.Clone()
	a.insert(key, c)
	return c
}

func (a *arenaStore) remove(key int) {
	sh := a.shardOf(key)
	if len(sh.index) == 0 {
		return
	}
	slot, cell := sh.find(key)
	if slot < 0 {
		return
	}
	sh.index[cell] = arenaTomb
	sh.tombs++
	sh.objs[slot] = nil
	sh.dead++
}

func (a *arenaStore) clear() {
	for i := range a.shards {
		sh := &a.shards[i]
		clear(sh.index)
		// Nil the object references so moved-out objects are reachable only
		// from their new owner; the arrays themselves are retained — that
		// reuse is the store's main allocation win across iterations.
		clear(sh.objs)
		sh.keys, sh.objs = sh.keys[:0], sh.objs[:0]
		sh.dead, sh.tombs = 0, 0
	}
}

func (a *arenaStore) reseed(flat CombMap) {
	a.clear()
	for k, obj := range flat {
		a.insert(k, obj)
	}
}

func (a *arenaStore) flattenInto(dst CombMap) {
	clear(dst)
	for i := range a.shards {
		sh := &a.shards[i]
		for slot, obj := range sh.objs {
			if obj != nil {
				dst[sh.keys[slot]] = obj
			}
		}
	}
}

func (a *arenaStore) forEachIn(si int, fn func(key int, obj RedObj)) {
	sh := &a.shards[si]
	for slot, obj := range sh.objs {
		if obj != nil {
			fn(sh.keys[slot], obj)
		}
	}
}

func (a *arenaStore) orderedKeys(dst []int) []int {
	dst = dst[:0]
	if n := a.size(); cap(dst) < n {
		dst = make([]int, 0, n)
	}
	for i := range a.shards {
		sh := &a.shards[i]
		for slot, obj := range sh.objs {
			if obj != nil {
				dst = append(dst, sh.keys[slot])
			}
		}
	}
	sort.Ints(dst)
	return dst
}

func (a *arenaStore) orderedShardKeys(si int, dst []int) []int {
	sh := &a.shards[si]
	dst = dst[:0]
	if n := len(sh.keys) - sh.dead; cap(dst) < n {
		dst = make([]int, 0, n)
	}
	for slot, obj := range sh.objs {
		if obj != nil {
			dst = append(dst, sh.keys[slot])
		}
	}
	sort.Ints(dst)
	return dst
}

func (a *arenaStore) takeStats() redStoreStats {
	var st redStoreStats
	for i := range a.shards {
		sh := &a.shards[i]
		st.probes += sh.probes
		st.lookups += sh.lookups
		sh.probes, sh.lookups = 0, 0
		st.arenaBytes += int64(cap(sh.index))*4 + int64(cap(sh.keys))*8 + int64(cap(sh.objs))*16
	}
	return st
}
