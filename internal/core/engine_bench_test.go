package core

import (
	"fmt"
	"testing"

	"github.com/scipioneer/smart/internal/chunk"
)

// spinApp is a histogram whose per-chunk cost is tunable: chunks below
// heavyBelow spin heavyIters, the rest spin baseIters. A skewed profile
// (heavy head) starves the static schedule — the thread owning the head
// finishes last while the others idle — which is exactly the imbalance the
// stealing engine exists to absorb.
type spinApp struct {
	bucketApp
	heavyBelow int
	heavyIters int
	baseIters  int
}

func (a *spinApp) Accumulate(c chunk.Chunk, data []int, obj RedObj) {
	iters := a.baseIters
	if c.Start < a.heavyBelow {
		iters = a.heavyIters
	}
	x := uint64(c.Start) | 1
	for i := 0; i < iters; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
	}
	if x == 0 { // never true; keeps the spin from being optimized away
		panic("xorshift reached zero")
	}
	a.bucketApp.Accumulate(c, data, obj)
}

// benchEngine measures one full Run of the given engine over n unit chunks
// with the given cost profile.
func benchEngine(b *testing.B, engine string, n, heavyBelow int) {
	b.Helper()
	in := histInput(n)
	app := &spinApp{bucketApp: bucketApp{width: 10},
		heavyBelow: heavyBelow, heavyIters: 1600, baseIters: 100}
	s := MustNewScheduler[int, int64](app, SchedArgs{
		NumThreads: 4, ChunkSize: 1, Engine: engine,
	})
	out := make([]int64, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Run(in, out); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	st := s.Stats().Snapshot()
	b.ReportMetric(float64(st.Steals), "steals/run")
	b.ReportMetric(float64(st.BatchesClaimed), "batches/run")
}

// BenchmarkEngineSkewed is the scheduler figure's headline workload: the
// first eighth of the chunks cost 16× the rest, so the static equal-split
// schedule leaves three of four threads idle while thread 0 grinds the head.
// Stealing should approach the balanced runtime; on a single-core host both
// engines serialize and the comparison measures scheduling overhead only.
func BenchmarkEngineSkewed(b *testing.B) {
	const n = 1 << 15
	for _, engine := range []string{EngineStatic, EngineStealing} {
		b.Run(fmt.Sprintf("engine=%s", engine), func(b *testing.B) {
			benchEngine(b, engine, n, n/8)
		})
	}
}

// BenchmarkEngineUniform is the no-skew control: every chunk costs the same,
// so stealing has nothing to win and must stay within a few percent of the
// static schedule (the deque claims are its only extra cost).
func BenchmarkEngineUniform(b *testing.B) {
	const n = 1 << 15
	for _, engine := range []string{EngineStatic, EngineStealing} {
		b.Run(fmt.Sprintf("engine=%s", engine), func(b *testing.B) {
			benchEngine(b, engine, n, 0)
		})
	}
}
