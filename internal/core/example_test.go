package core_test

import (
	"fmt"

	"github.com/scipioneer/smart/internal/analytics"
	"github.com/scipioneer/smart/internal/core"
)

// ExampleScheduler_Run shows the minimal in-situ job: an equi-width
// histogram over one time-step's output, reduced in place with no
// intermediate key-value pairs.
func ExampleScheduler_Run() {
	data := []float64{0.5, 1.5, 1.7, 2.2, 2.4, 2.9, 0.1}
	app := analytics.NewHistogram(0, 3, 3)
	sched := core.MustNewScheduler[float64, int64](app, core.SchedArgs{
		NumThreads: 2, ChunkSize: 1,
	})
	out := make([]int64, 3)
	if err := sched.Run(data, out); err != nil {
		panic(err)
	}
	fmt.Println(out)
	// Output: [2 2 3]
}

// ExampleScheduler_Run2 shows a window application: gen_keys maps every
// element to all the windows covering it, and the early-emission trigger
// finalizes each window during reduction.
func ExampleScheduler_Run2() {
	data := []float64{1, 2, 3, 4, 5}
	app := analytics.NewMovingAverage(3, len(data), 0, true)
	sched := core.MustNewScheduler[float64, float64](app, core.SchedArgs{
		NumThreads: 1, ChunkSize: 1,
	})
	out := make([]float64, len(data))
	if err := sched.Run2(data, out); err != nil {
		panic(err)
	}
	fmt.Println(out)
	// Output: [1.5 2 3 4 4.5]
}

// ExampleScheduler_Feed shows space sharing: the simulation task feeds
// time-steps into the circular buffer while the analytics task drains them.
func ExampleScheduler_Feed() {
	app := analytics.NewHistogram(0, 10, 2)
	sched := core.MustNewScheduler[float64, int64](app, core.SchedArgs{
		NumThreads: 1, ChunkSize: 1, BufferCells: 2,
	})
	go func() {
		sched.Feed([]float64{1, 2, 8})
		sched.Feed([]float64{3, 9, 9})
		sched.CloseFeed()
	}()
	total := make([]int64, 2)
	for {
		sched.ResetCombinationMap()
		out := make([]int64, 2)
		if err := sched.RunShared(out); err != nil {
			break
		}
		total[0] += out[0]
		total[1] += out[1]
	}
	fmt.Println(total)
	// Output: [3 3]
}

// ExampleScheduler_MergeCombinationMap shows the accumulator pattern for
// aggregating across partitions: fresh maps per partition, one merge target,
// one final combine.
func ExampleScheduler_MergeCombinationMap() {
	app := analytics.NewHistogram(0, 10, 2)
	step := core.MustNewScheduler[float64, int64](app, core.SchedArgs{NumThreads: 1, ChunkSize: 1})
	acc := core.MustNewScheduler[float64, int64](app, core.SchedArgs{NumThreads: 1, ChunkSize: 1})
	for _, part := range [][]float64{{1, 2, 8}, {3, 9, 9}} {
		step.ResetCombinationMap()
		if err := step.Run(part, nil); err != nil {
			panic(err)
		}
		acc.MergeCombinationMap(step.CombinationMap())
	}
	out := make([]int64, 2)
	if err := acc.GlobalCombine(out); err != nil {
		panic(err)
	}
	fmt.Println(out)
	// Output: [3 3]
}
