package core

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"github.com/scipioneer/smart/internal/codec"
	"github.com/scipioneer/smart/internal/mpi"
)

// bigStateScheduler returns a scheduler whose combination map serializes
// well past codec.MinSize (one bucket per input value), ready to checkpoint.
func bigStateScheduler(t *testing.T) *Scheduler[int, int64] {
	t.Helper()
	s := MustNewScheduler[int, int64](bucketApp{width: 1}, SchedArgs{
		NumThreads: 2, ChunkSize: 1, NumIters: 1,
	})
	if err := s.Run(histInput(5000), nil); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestEncBufPoolCapDoesNotRatchet(t *testing.T) {
	// One oversized round must not park its buffer in the pool: after
	// returning a giant buffer, repeated get/put cycles must never hand the
	// giant capacity back out.
	huge := make([]byte, maxPooledEncBuf+1)
	hp := &huge
	putEncBuf(hp)
	for i := 0; i < 64; i++ {
		buf, _ := getEncBuf()
		if cap(*buf) > maxPooledEncBuf {
			t.Fatalf("oversized buffer (cap %d) survived in the enc pool", cap(*buf))
		}
		putEncBuf(buf)
	}
}

func TestCheckpointEncodedRoundTrip(t *testing.T) {
	s := bigStateScheduler(t)
	wantRaw, err := encodeMap(s.CombinationMap())
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	sizes := map[codec.Encoding]int{}
	for e := codec.None; e.Valid(); e++ {
		ck := filepath.Join(dir, e.String()+".ck")
		if err := s.WriteCheckpointEnc(ck, e); err != nil {
			t.Fatalf("%s: %v", e, err)
		}
		blob, err := os.ReadFile(ck)
		if err != nil {
			t.Fatal(err)
		}
		sizes[e] = len(blob)
		wantMagic := checkpointMagic
		if e != codec.None {
			wantMagic = checkpointMagic2
		}
		if !bytes.HasPrefix(blob, wantMagic) {
			t.Fatalf("%s checkpoint starts with %q", e, blob[:8])
		}
		restored := MustNewScheduler[int, int64](bucketApp{width: 1}, SchedArgs{
			NumThreads: 2, ChunkSize: 1, NumIters: 1,
		})
		if err := restored.ReadCheckpoint(ck); err != nil {
			t.Fatalf("%s restore: %v", e, err)
		}
		gotRaw, err := encodeMap(restored.CombinationMap())
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gotRaw, wantRaw) {
			t.Fatalf("%s: restored state differs from saved state", e)
		}
	}
	for _, e := range []codec.Encoding{codec.Flate, codec.Block} {
		if sizes[e] >= sizes[codec.None] {
			t.Errorf("%s checkpoint is %d bytes, raw is %d — no reduction", e, sizes[e], sizes[codec.None])
		}
	}
}

func TestCheckpointEncodingViaSchedArgs(t *testing.T) {
	s := MustNewScheduler[int, int64](bucketApp{width: 1}, SchedArgs{
		NumThreads: 2, ChunkSize: 1, NumIters: 1, CheckpointEncoding: codec.Flate,
	})
	if err := s.Run(histInput(5000), nil); err != nil {
		t.Fatal(err)
	}
	ck := filepath.Join(t.TempDir(), "state.ck")
	if err := s.WriteCheckpoint(ck); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(ck)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(blob, checkpointMagic2) {
		t.Fatalf("configured encoding ignored: file starts with %q", blob[:8])
	}
}

func TestCheckpointTinyImageStaysLegacyFormat(t *testing.T) {
	// A sub-threshold image skips the codec even when one is configured, so
	// small checkpoints keep the byte-stable legacy format.
	s := MustNewScheduler[float64, float64](kmeans1D{k: 2}, SchedArgs{
		NumThreads: 1, ChunkSize: 1, NumIters: 2, Extra: []float64{10, 60},
	})
	var in []float64
	for i := 0; i < 100; i++ {
		in = append(in, float64(i%10), 100+float64(i%10)/10)
	}
	if err := s.Run(in, nil); err != nil {
		t.Fatal(err)
	}
	ck := filepath.Join(t.TempDir(), "tiny.ck")
	if err := s.WriteCheckpointEnc(ck, codec.Block); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(ck)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(blob, checkpointMagic) {
		t.Fatalf("tiny checkpoint not in legacy format: starts with %q", blob[:8])
	}
}

func TestCheckpointUnknownEncodingIsCleanError(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "future.ck")
	blob := append(append([]byte{}, checkpointMagic2...), 0x7f, 1, 2, 3)
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	s := MustNewScheduler[int, int64](bucketApp{width: 10}, SchedArgs{NumThreads: 1, ChunkSize: 1, NumIters: 1})
	err := s.ReadCheckpoint(path)
	if err == nil {
		t.Fatal("checkpoint with unknown encoding byte accepted")
	}
	if !errors.Is(err, codec.ErrUnknown) {
		t.Fatalf("error = %v, want to wrap codec.ErrUnknown", err)
	}
	if err := s.WriteCheckpointEnc(filepath.Join(dir, "out.ck"), codec.Encoding(0x7f)); !errors.Is(err, codec.ErrUnknown) {
		t.Fatalf("WriteCheckpointEnc(unknown) = %v, want to wrap codec.ErrUnknown", err)
	}
}

func TestCheckpointConcurrentWritersSamePath(t *testing.T) {
	// Writers racing on one path must each stage privately: whichever rename
	// lands last, the published file is one complete, restorable image and
	// no staging litter survives.
	dir := t.TempDir()
	ck := filepath.Join(dir, "shared.ck")
	const writers = 8
	scheds := make([]*Scheduler[int, int64], writers)
	for i := range scheds {
		s := MustNewScheduler[int, int64](bucketApp{width: 1}, SchedArgs{
			NumThreads: 1, ChunkSize: 1, NumIters: 1,
		})
		if err := s.Run(histInput(1000+i), nil); err != nil {
			t.Fatal(err)
		}
		scheds[i] = s
	}
	var wg sync.WaitGroup
	for i, s := range scheds {
		wg.Add(1)
		go func() {
			defer wg.Done()
			enc := codec.Encoding(i % 3)
			for round := 0; round < 10; round++ {
				if err := s.WriteCheckpointEnc(ck, enc); err != nil {
					t.Errorf("writer %d: %v", i, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	restored := MustNewScheduler[int, int64](bucketApp{width: 1}, SchedArgs{
		NumThreads: 1, ChunkSize: 1, NumIters: 1,
	})
	if err := restored.ReadCheckpoint(ck); err != nil {
		t.Fatalf("published checkpoint is torn: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Errorf("staging file left behind: %s", e.Name())
		}
	}
}

func TestDistributedCombineByteIdenticalAcrossCodecs(t *testing.T) {
	// The global result of a 4-rank combine must not depend on the wire
	// codec: every rank's output and final serialized state must be
	// byte-identical whether segments travel raw, flate- or block-encoded.
	// bucketApp{width:1} over thousands of values keeps the streamed
	// segments comfortably above codec.MinSize, so compression really runs.
	const ranks = 4
	run := func(masks []uint32) (outs [][]int64, states [][]byte) {
		t.Helper()
		comms, err := mpi.NewTCPWorldOpts(ranks, mpi.TCPWorldOptions{CodecMasks: masks})
		if err != nil {
			t.Fatal(err)
		}
		full := histInput(4000)
		per := len(full) / ranks
		outs = make([][]int64, ranks)
		states = make([][]byte, ranks)
		var wg sync.WaitGroup
		for r := 0; r < ranks; r++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer comms[r].Close()
				s := MustNewScheduler[int, int64](bucketApp{width: 1},
					SchedArgs{NumThreads: 2, ChunkSize: 1, NumIters: 1, Comm: comms[r]})
				out := make([]int64, 100)
				if err := s.Run(full[r*per:(r+1)*per], out); err != nil {
					t.Errorf("rank %d: %v", r, err)
					return
				}
				state, err := encodeMap(s.CombinationMap())
				if err != nil {
					t.Errorf("rank %d: %v", r, err)
					return
				}
				outs[r] = out
				states[r] = state
			}()
		}
		wg.Wait()
		return outs, states
	}

	uniform := func(e codec.Encoding) []uint32 {
		masks := make([]uint32, ranks)
		for i := range masks {
			masks[i] = codec.MaskOf(e)
		}
		return masks
	}
	refOuts, refStates := run(uniform(codec.None))
	for _, e := range []codec.Encoding{codec.Flate, codec.Block} {
		outs, states := run(uniform(e))
		for r := 0; r < ranks; r++ {
			if refOuts[r] == nil || outs[r] == nil {
				t.Fatalf("%s: rank %d produced no output", e, r)
			}
			for b := range refOuts[r] {
				if outs[r][b] != refOuts[r][b] {
					t.Fatalf("%s: rank %d bucket %d = %d, raw run says %d", e, r, b, outs[r][b], refOuts[r][b])
				}
			}
			if !bytes.Equal(states[r], refStates[r]) {
				t.Fatalf("%s: rank %d final state differs from the raw run", e, r)
			}
		}
	}
}
