package core

import (
	"bytes"
	"reflect"
	"sync/atomic"
	"testing"
)

func TestShardIndexInRange(t *testing.T) {
	keys := []int{0, 1, -1, 7, 63, 64, 1 << 20, -(1 << 20), 1<<62 - 1, -(1 << 62)}
	for _, n := range []int{1, 2, 3, 8, 17} {
		for _, k := range keys {
			si := shardIndex(k, n)
			if si < 0 || si >= n {
				t.Fatalf("shardIndex(%d, %d) = %d, out of range", k, n, si)
			}
		}
	}
}

func TestShardIndexSpreads(t *testing.T) {
	// Sequential keys — the common dense-key case — must not pile into a
	// few shards, or the shard-parallel phases degenerate to serial.
	const n, keys = 8, 10000
	counts := make([]int, n)
	for k := 0; k < keys; k++ {
		counts[shardIndex(k, n)]++
	}
	for si, c := range counts {
		if c < keys/n/2 || c > keys/n*2 {
			t.Errorf("shard %d holds %d of %d keys — poor spread: %v", si, c, keys, counts)
		}
	}
}

func TestShardedMapFlattenPreservesIdentity(t *testing.T) {
	flat := CombMap{1: &countObj{n: 10}, 2: &countObj{n: 20}, 77: &countObj{n: 30}}
	sm := newShardedMap(4)
	sm.insertFlat(flat)
	if sm.size() != len(flat) {
		t.Fatalf("sharded size %d, want %d", sm.size(), len(flat))
	}
	// The sharded view aliases the same objects.
	for k, obj := range flat {
		if sm.shardFor(k)[k] != obj {
			t.Fatalf("key %d not aliased in its shard", k)
		}
	}
	// flattenInto must refill the same map value, not replace it.
	dst := flat
	sm.shardFor(5)[5] = &countObj{n: 50}
	sm.flattenInto(dst)
	if len(dst) != 4 || dst[5].(*countObj).n != 50 {
		t.Fatalf("flattenInto result: %v", dst)
	}
	if !reflect.DeepEqual(dst, flat) {
		t.Fatal("flattenInto replaced the map identity")
	}
}

func TestForShardsCoversEveryShardOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 5, 16} {
		var visits [5]atomic.Int64
		durs := forShards(5, workers, func(si int) { visits[si].Add(1) })
		for si := range visits {
			if v := visits[si].Load(); v != 1 {
				t.Fatalf("workers=%d: shard %d visited %d times", workers, si, v)
			}
		}
		if len(durs) != 5 {
			t.Fatalf("workers=%d: %d durations, want 5", workers, len(durs))
		}
	}
}

// TestSchedArgsDefaultingSingleSource pins the satellite fix: defaulting
// happens in withDefaults only, so every constructor entry point resolves
// zero-value SchedArgs identically.
func TestSchedArgsDefaultingSingleSource(t *testing.T) {
	in := SchedArgs{NumThreads: 3, ChunkSize: 1} // NumIters, CombineShards zero
	a, err := NewScheduler[int, int64](bucketApp{width: 10}, in)
	if err != nil {
		t.Fatal(err)
	}
	b := MustNewScheduler[int, int64](bucketApp{width: 10}, in)
	if !reflect.DeepEqual(a.args, b.args) {
		t.Fatalf("entry points resolved args differently:\n  NewScheduler:     %+v\n  MustNewScheduler: %+v", a.args, b.args)
	}
	if a.args.NumIters != 1 {
		t.Errorf("NumIters defaulted to %d, want 1", a.args.NumIters)
	}
	if a.args.CombineShards != a.args.NumThreads {
		t.Errorf("CombineShards defaulted to %d, want NumThreads=%d", a.args.CombineShards, a.args.NumThreads)
	}
	if a.store.numShards() != a.args.CombineShards {
		t.Errorf("scheduler built %d shards, want %d", a.store.numShards(), a.args.CombineShards)
	}
}

// TestShardedEncodingMatchesSerialReference: the sharded pipeline must be an
// implementation detail — one shard (the serial reference) and many shards
// produce byte-identical encoded combination maps.
func TestShardedEncodingMatchesSerialReference(t *testing.T) {
	in := histInput(5000)
	encode := func(shards int) []byte {
		s := MustNewScheduler[int, int64](bucketApp{width: 3},
			SchedArgs{NumThreads: 4, ChunkSize: 1, NumIters: 1, CombineShards: shards})
		out := make([]int64, 34)
		if err := s.Run(in, out); err != nil {
			t.Fatal(err)
		}
		buf, err := s.EncodeCombinationMap()
		if err != nil {
			t.Fatal(err)
		}
		return buf
	}
	ref := encode(1)
	for _, shards := range []int{2, 3, 4, 16} {
		if got := encode(shards); !bytes.Equal(got, ref) {
			t.Errorf("CombineShards=%d encoding differs from serial reference", shards)
		}
	}
}
